// Command argoedit is the interactive what-if client of the ARGO
// analysis daemon (argod): it opens (or reuses) a /v1/session and
// applies typed edits, printing per edit what the incremental
// re-analysis changed — the WCET bound delta, the tasks that moved, and
// how many pipeline passes were skipped vs re-ran.
//
// Edit operations (positional arguments, applied in order):
//
//	set-param:PATH=VALUE        change one ADL platform parameter
//	toggle:PASS=off|on          disable / re-enable a transformation
//	policy=aware|oblivious|exact switch the scheduling policy
//	replace-func:NAME=@FILE     replace one scil function body
//	faults:KEY=V[,KEY=V...]     set the fault spec (seed, access_jitter,
//	                            exec_inflation, noc_stall)
//
// Exit codes: 0 on success, 1 on server/edit failure, 2 on flag misuse.
//
// Examples:
//
//	argoedit -usecase polka -platform xentium4 set-param:shared.access_cycles=30
//	argoedit -session s-4f1d9f21ab03 toggle:fission=off policy=exact
//	argoedit -usecase weaa -verify -stream replace-func:weaa_filter=@filter.sci
//	argoedit -usecase polka -json set-param:bus.slot_cycles=12 | jq .bound_delta
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"argo/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole client, separated from main so tests can exercise it
// in-process against an httptest server.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("argoedit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "http://localhost:8321", "argod base URL")
		sessID   = fs.String("session", "", "existing session id (default: create a new session)")
		usecase  = fs.String("usecase", "", "built-in use case for a new session: egpws, weaa, polka")
		source   = fs.String("source", "", "scil source file for a new session (needs -entry)")
		entry    = fs.String("entry", "", "entry function of -source")
		platform = fs.String("platform", "xentium4", "target platform of a new session")
		policy   = fs.String("policy", "", "initial scheduling policy of a new session")
		verify   = fs.Bool("verify", false, "differentially verify every edit against a cold compile")
		stream   = fs.Bool("stream", false, "stream pass-by-pass progress (SSE) for each edit")
		jsonOut  = fs.Bool("json", false, "emit each result as JSON instead of the summary line")
		del      = fs.Bool("delete", false, "delete the session when done")
		timeout  = fs.Duration("timeout", 2*time.Minute, "per-request client timeout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usagef := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "argoedit: "+format+"\n", a...)
		return 2
	}
	fatalf := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "argoedit: "+format+"\n", a...)
		return 1
	}

	edits := make([]service.SessionEditRequest, 0, fs.NArg())
	for _, arg := range fs.Args() {
		req, err := parseOp(arg)
		if err != nil {
			return usagef("%v", err)
		}
		req.Verify = *verify
		req.Stream = *stream
		edits = append(edits, req)
	}

	c := &client{base: strings.TrimRight(*addr, "/"), hc: &http.Client{Timeout: *timeout}}

	id := *sessID
	if id == "" {
		create := service.SessionCreateRequest{Verify: *verify}
		create.Platform = *platform
		create.Policy = *policy
		switch {
		case *usecase != "" && *source != "":
			return usagef("set exactly one of -usecase and -source")
		case *usecase != "":
			create.UseCase = *usecase
		case *source != "":
			if *entry == "" {
				return usagef("-source needs -entry")
			}
			data, err := os.ReadFile(*source)
			if err != nil {
				return fatalf("%v", err)
			}
			create.Source = string(data)
			create.Entry = *entry
		default:
			return usagef("need -session, -usecase, or -source")
		}
		sum, err := c.create(&create)
		if err != nil {
			return fatalf("create: %v", err)
		}
		id = sum.Session
		report(stdout, "create", sum, *jsonOut)
	}

	for _, e := range edits {
		var (
			sum *service.SessionSummary
			err error
		)
		if e.Stream {
			sum, err = c.editStream(id, &e, stdout)
		} else {
			sum, err = c.edit(id, &e)
		}
		if err != nil {
			return fatalf("%s: %v", opLabel(&e), err)
		}
		report(stdout, opLabel(&e), sum, *jsonOut)
	}

	if *del {
		if err := c.delete(id); err != nil {
			return fatalf("delete: %v", err)
		}
		fmt.Fprintf(stdout, "session %s deleted\n", id)
	} else if *sessID == "" {
		fmt.Fprintf(stdout, "session %s kept (reuse with -session %s)\n", id, id)
	}
	return 0
}

// parseOp parses one positional edit-operation argument.
func parseOp(arg string) (service.SessionEditRequest, error) {
	var r service.SessionEditRequest
	switch {
	case strings.HasPrefix(arg, "set-param:"):
		path, val, ok := strings.Cut(arg[len("set-param:"):], "=")
		if !ok {
			return r, fmt.Errorf("set-param wants set-param:PATH=VALUE, got %q", arg)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return r, fmt.Errorf("set-param %s: %v", path, err)
		}
		r.Op, r.Param, r.Value = "set-param", path, v
	case strings.HasPrefix(arg, "toggle:"):
		name, state, ok := strings.Cut(arg[len("toggle:"):], "=")
		if !ok || (state != "on" && state != "off") {
			return r, fmt.Errorf("toggle wants toggle:PASS=on|off, got %q", arg)
		}
		r.Op, r.Transform, r.Disable = "toggle-transform", name, state == "off"
	case strings.HasPrefix(arg, "policy="):
		r.Op, r.Policy = "set-policy", arg[len("policy="):]
	case strings.HasPrefix(arg, "replace-func:"):
		name, file, ok := strings.Cut(arg[len("replace-func:"):], "=")
		if !ok || !strings.HasPrefix(file, "@") {
			return r, fmt.Errorf("replace-func wants replace-func:NAME=@FILE, got %q", arg)
		}
		data, err := os.ReadFile(file[1:])
		if err != nil {
			return r, fmt.Errorf("replace-func %s: %v", name, err)
		}
		r.Op, r.Func, r.Source = "replace-func", name, string(data)
	case strings.HasPrefix(arg, "faults:"):
		spec := &service.FaultSpecJSON{}
		for _, kv := range strings.Split(arg[len("faults:"):], ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return r, fmt.Errorf("faults wants faults:KEY=V[,KEY=V...], got %q", arg)
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return r, fmt.Errorf("faults %s: %v", key, err)
			}
			switch key {
			case "seed":
				spec.Seed = int64(v)
			case "access_jitter":
				spec.AccessJitter = v
			case "exec_inflation":
				spec.ExecInflation = v
			case "noc_stall":
				spec.NoCStall = v
			default:
				return r, fmt.Errorf("unknown fault key %q (seed, access_jitter, exec_inflation, noc_stall)", key)
			}
		}
		r.Op, r.Faults = "set-faults", spec
	default:
		return r, fmt.Errorf("unknown edit op %q (set-param:, toggle:, policy=, replace-func:, faults:)", arg)
	}
	return r, nil
}

func opLabel(e *service.SessionEditRequest) string {
	switch e.Op {
	case "set-param":
		return fmt.Sprintf("set-param %s=%v", e.Param, e.Value)
	case "toggle-transform":
		state := "on"
		if e.Disable {
			state = "off"
		}
		return fmt.Sprintf("toggle %s=%s", e.Transform, state)
	case "set-policy":
		return "policy " + e.Policy
	case "replace-func":
		return "replace-func " + e.Func
	case "set-faults":
		return "set-faults"
	}
	return e.Op
}

// report prints one edit result: the JSON summary or a one-line digest.
func report(w io.Writer, label string, sum *service.SessionSummary, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sum)
		return
	}
	verified := ""
	if sum.Verified {
		verified = " [verified]"
	}
	fmt.Fprintf(w, "%s: bound %d (%+d), %d tasks moved, passes %d skipped / %d reran, %.2fms%s\n",
		label, sum.Compile.TotalBound, sum.BoundDelta, len(sum.ChangedTasks),
		sum.PassesSkipped, sum.PassesReran, float64(sum.WallNS)/1e6, verified)
}

// --- HTTP plumbing ----------------------------------------------------------

type client struct {
	base string
	hc   *http.Client
}

func (c *client) post(path string, body, into any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeReply(resp, into)
}

func decodeReply(resp *http.Response, into any) error {
	if resp.StatusCode/100 != 2 {
		var e service.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func (c *client) create(req *service.SessionCreateRequest) (*service.SessionSummary, error) {
	var sum service.SessionSummary
	if err := c.post("/v1/session", req, &sum); err != nil {
		return nil, err
	}
	return &sum, nil
}

func (c *client) edit(id string, req *service.SessionEditRequest) (*service.SessionSummary, error) {
	var sum service.SessionSummary
	if err := c.post("/v1/session/"+id+"/edit", req, &sum); err != nil {
		return nil, err
	}
	return &sum, nil
}

// editStream posts a streaming edit and renders the SSE events: one
// progress line per completed pass, then the final result (or an error,
// including the server's terminal shutdown event while draining).
func (c *client) editStream(id string, req *service.SessionEditRequest, w io.Writer) (*service.SessionSummary, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Post(c.base+"/v1/session/"+id+"/edit", "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		// Error replies (404, 429, ...) come back as plain JSON.
		var sum service.SessionSummary
		if err := decodeReply(resp, &sum); err != nil {
			return nil, err
		}
		return &sum, nil
	}

	var sum *service.SessionSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			payload := []byte(line[len("data: "):])
			switch event {
			case "pass":
				var ev service.SessionPassEvent
				if json.Unmarshal(payload, &ev) == nil {
					cache := ev.Cache
					if cache == "" {
						cache = "ran"
					}
					fmt.Fprintf(w, "  pass %-16s %-4s %8.3fms\n", ev.Pass, cache, float64(ev.WallNS)/1e6)
				}
			case "result":
				var s service.SessionSummary
				if err := json.Unmarshal(payload, &s); err != nil {
					return nil, fmt.Errorf("bad result event: %v", err)
				}
				sum = &s
			case "error":
				var e service.ErrorResponse
				_ = json.Unmarshal(payload, &e)
				return nil, fmt.Errorf("%s", e.Error)
			case "shutdown":
				var e service.ErrorResponse
				_ = json.Unmarshal(payload, &e)
				return nil, fmt.Errorf("server shut down mid-edit: %s", e.Error)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if sum == nil {
		return nil, fmt.Errorf("stream ended without a result")
	}
	return sum, nil
}

func (c *client) delete(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/session/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out map[string]string
	return decodeReply(resp, &out)
}
