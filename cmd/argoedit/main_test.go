package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"argo/internal/service"
)

func startServer(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(service.NewServer(service.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func runEdit(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCreateEditDelete(t *testing.T) {
	url := startServer(t)
	code, out, errs := runEdit(t,
		"-addr", url, "-usecase", "polka", "-platform", "xentium4", "-verify", "-delete",
		"set-param:shared.access_cycles=30",
		"toggle:fission=off",
		"policy=oblivious",
	)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs)
	}
	for _, want := range []string{"create: bound", "set-param shared.access_cycles=30: bound",
		"toggle fission=off", "policy oblivious", "[verified]", "deleted"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplaceFuncFromFileStreaming(t *testing.T) {
	url := startServer(t)
	// polka_smooth with an extra fresh-variable statement: a valid
	// single-function replacement.
	repl := `function s = polka_smooth(u)
  h = size(u, 1)
  w = size(u, 2)
  s = zeros(h, w)
  for i = 1:h
    for j = 1:w
      s(i, j) = u(i, j)
    end
  end
  wif_cli = 1 + 2
endfunction
`
	file := filepath.Join(t.TempDir(), "smooth.sci")
	if err := os.WriteFile(file, []byte(repl), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errs := runEdit(t,
		"-addr", url, "-usecase", "polka", "-verify", "-stream",
		"replace-func:polka_smooth=@"+file,
	)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs)
	}
	if !strings.Contains(out, "pass ") {
		t.Errorf("streaming output has no pass lines:\n%s", out)
	}
	if !strings.Contains(out, "replace-func polka_smooth: bound") || !strings.Contains(out, "[verified]") {
		t.Errorf("missing verified result line:\n%s", out)
	}
	if !strings.Contains(out, "session s-") || !strings.Contains(out, "kept") {
		t.Errorf("missing kept-session hint:\n%s", out)
	}
}

func TestSessionReuseAndJSON(t *testing.T) {
	url := startServer(t)
	code, out, errs := runEdit(t, "-addr", url, "-usecase", "polka")
	if code != 0 {
		t.Fatalf("create: exit %d, stderr: %s", code, errs)
	}
	// "session s-XXXX kept (reuse with -session s-XXXX)"
	var id string
	for _, f := range strings.Fields(out) {
		if strings.HasPrefix(f, "s-") {
			id = f
			break
		}
	}
	if id == "" {
		t.Fatalf("no session id in output:\n%s", out)
	}
	code, out, errs = runEdit(t, "-addr", url, "-session", id, "-json",
		"faults:seed=3,access_jitter=0.4", "set-param:core.op_cycles=2")
	if code != 0 {
		t.Fatalf("reuse: exit %d, stderr: %s", code, errs)
	}
	if !strings.Contains(out, `"session": "`+id+`"`) || !strings.Contains(out, `"bound_delta"`) {
		t.Errorf("JSON output incomplete:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // no session source
		{"-usecase", "polka", "bad-op:x=1"},   // unknown op
		{"-usecase", "polka", "set-param:x"},  // malformed op
		{"-usecase", "polka", "toggle:f=bad"}, // bad toggle state
		{"-source", "m.sci"},                  // -source without -entry
	}
	for _, args := range cases {
		if code, _, _ := runEdit(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
	// Server-side failure is exit 1.
	url := startServer(t)
	if code, _, _ := runEdit(t, "-addr", url, "-session", "s-nope", "policy=exact"); code != 1 {
		t.Error("edit on unknown session should exit 1")
	}
}
