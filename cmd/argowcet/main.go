// Command argowcet runs ARGO's WCET analyses on a use case: per-task
// code-level bounds (with the structural and IPET analyses cross-checked
// against each other), the interference breakdown of the system-level
// analysis, and the end-to-end bound.
//
// Example:
//
//	argowcet -usecase egpws -platform xentium4
package main

import (
	"flag"
	"fmt"
	"os"

	"argo/internal/report"
	"argo/internal/wcet"
	"argo/pkg/argo"
)

func main() {
	var (
		usecase  = flag.String("usecase", "", "built-in use case: egpws, weaa, polka")
		platform = flag.String("platform", "xentium4", "target platform name")
		ipet     = flag.Bool("ipet", true, "cross-check structural bounds against IPET/ILP")
	)
	flag.Parse()
	uc := argo.UseCaseByName(*usecase)
	if uc == nil {
		fmt.Fprintln(os.Stderr, "argowcet: unknown or missing -usecase (egpws, weaa, polka)")
		os.Exit(2)
	}
	plat := argo.Platform(*platform)
	if plat == nil {
		fmt.Fprintf(os.Stderr, "argowcet: unknown platform %q (%v)\n", *platform, argo.PlatformNames())
		os.Exit(2)
	}
	art, err := argo.CompileSource(uc.Source, argo.DefaultOptions(uc.Entry, uc.Args, plat))
	if err != nil {
		fmt.Fprintf(os.Stderr, "argowcet: %v\n", err)
		os.Exit(1)
	}
	tab := report.New(fmt.Sprintf("Per-task WCET analysis: %s on %s", uc.Name, plat.Name),
		"task", "label", "core", "structural", "ipet", "agree", "shared-acc", "interference", "bound")
	allAgree := true
	for _, n := range art.Graph.Nodes {
		pl := art.Schedule.Placements[n.ID]
		structural := n.WCET[pl.Core]
		ipetStr := "-"
		agree := "-"
		if *ipet {
			model := wcet.ModelFor(plat, pl.Core)
			v, err := wcet.IPET(n.Stmts, model)
			if err != nil {
				ipetStr = "err"
				allAgree = false
			} else {
				ipetStr = fmt.Sprintf("%d", v)
				if v == structural {
					agree = "yes"
				} else {
					agree = "NO"
					allAgree = false
				}
			}
		}
		tab.Add(n.ID, n.Label, pl.Core, structural, ipetStr, agree,
			n.SharedAccesses, art.System.InterferencePerTask[n.ID], art.System.TaskBound[n.ID])
	}
	fmt.Print(tab)
	fmt.Printf("\nsequential bound: %d cycles\n", art.SequentialWCET)
	fmt.Printf("schedule makespan: %d cycles\n", art.Schedule.Makespan)
	fmt.Printf("system bound:      %d cycles (interference %d, fixpoint rounds %d)\n",
		art.System.Makespan, art.System.TotalInterference(), art.System.Iterations)
	fmt.Printf("total bound:       %d cycles (incl. DMA %d+%d)\n",
		art.Bound(), art.Parallel.PrologueCycles, art.Parallel.EpilogueCycles)
	if *ipet {
		if allAgree {
			fmt.Println("IPET cross-check:  all tasks agree")
		} else {
			fmt.Println("IPET cross-check:  DISAGREEMENT — analysis bug")
			os.Exit(1)
		}
	}
}
