// Command argowcet runs ARGO's WCET analyses on a use case: per-task
// code-level bounds (with the structural and IPET analyses cross-checked
// against each other), the interference breakdown of the system-level
// analysis, and the end-to-end bound.
//
// The -engine flag selects which code-level engine supplies the compiled
// bounds: "ipet" (the default), "mc" (the exact slicing+model-checking
// engine), or "both" (IPET bounds, with the exact engine re-run on every
// region and any exact > IPET violation failing the compilation). With
// -engine=mc or -engine=both the table gains an "mc" column; under
// "both" it also shows the per-task tightness gap (structural - mc).
//
// Exit codes: 0 on success, 1 on pipeline failure or cross-check
// disagreement, 2 on flag misuse.
//
// Example:
//
//	argowcet -usecase egpws -platform xentium4
//	argowcet -usecase polka -platform xentium4 -engine both
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"argo/internal/report"
	"argo/internal/wcet"
	"argo/pkg/argo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool, separated from main so tests can exercise flag
// handling, table shape, and exit codes in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("argowcet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		usecase  = fs.String("usecase", "", "built-in use case: egpws, weaa, polka")
		platform = fs.String("platform", "xentium4", "target platform name")
		ipet     = fs.Bool("ipet", true, "cross-check structural bounds against IPET/ILP")
		engine   = fs.String("engine", "ipet", "code-level WCET engine: ipet, mc, or both (cross-checked)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	uc := argo.UseCaseByName(*usecase)
	if uc == nil {
		fmt.Fprintln(stderr, "argowcet: unknown or missing -usecase (egpws, weaa, polka)")
		return 2
	}
	plat := argo.Platform(*platform)
	if plat == nil {
		fmt.Fprintf(stderr, "argowcet: unknown platform %q (%v)\n", *platform, argo.PlatformNames())
		return 2
	}
	if err := argo.ParseWCETEngine(*engine); err != nil {
		fmt.Fprintf(stderr, "argowcet: %v\n", err)
		return 2
	}
	opt := argo.DefaultOptions(uc.Entry, uc.Args, plat)
	opt.WCETEngine = *engine
	art, err := argo.CompileSource(uc.Source, opt)
	if err != nil {
		fmt.Fprintf(stderr, "argowcet: %v\n", err)
		return 1
	}
	withMC := *engine == "mc" || *engine == "both"
	cols := []string{"task", "label", "core", "structural", "ipet", "agree"}
	if withMC {
		cols = append(cols, "mc")
	}
	if *engine == "both" {
		cols = append(cols, "gap")
	}
	cols = append(cols, "shared-acc", "interference", "bound")
	tab := report.New(fmt.Sprintf("Per-task WCET analysis: %s on %s (engine %s)", uc.Name, plat.Name, *engine),
		cols...)
	var mcEng wcet.Engine
	if withMC {
		mcEng, _ = wcet.EngineByName("mc")
	}
	allAgree := true
	for _, n := range art.Graph.Nodes {
		pl := art.Schedule.Placements[n.ID]
		model := wcet.ModelFor(plat, pl.Core)
		structural := wcet.Structural(n.Stmts, model)
		ipetStr := "-"
		agree := "-"
		if *ipet {
			v, err := wcet.IPET(n.Stmts, model)
			if err != nil {
				ipetStr = "err"
				allAgree = false
			} else {
				ipetStr = fmt.Sprintf("%d", v)
				if v == structural {
					agree = "yes"
				} else {
					agree = "NO"
					allAgree = false
				}
			}
		}
		row := []any{n.ID, n.Label, pl.Core, structural, ipetStr, agree}
		if withMC {
			exact := wcet.AnalyzeMemo(mcEng, n.Stmts, model)
			row = append(row, exact.Cycles)
			if *engine == "both" {
				row = append(row, structural-exact.Cycles)
			}
		}
		row = append(row, n.SharedAccesses, art.System.InterferencePerTask[n.ID], art.System.TaskBound[n.ID])
		tab.Add(row...)
	}
	fmt.Fprint(stdout, tab)
	fmt.Fprintf(stdout, "\nsequential bound: %d cycles\n", art.SequentialWCET)
	fmt.Fprintf(stdout, "schedule makespan: %d cycles\n", art.Schedule.Makespan)
	fmt.Fprintf(stdout, "system bound:      %d cycles (interference %d, fixpoint rounds %d)\n",
		art.System.Makespan, art.System.TotalInterference(), art.System.Iterations)
	fmt.Fprintf(stdout, "total bound:       %d cycles (incl. DMA %d+%d)\n",
		art.Bound(), art.Parallel.PrologueCycles, art.Parallel.EpilogueCycles)
	if *engine == "both" {
		fmt.Fprintln(stdout, "mc cross-check:    all tasks within IPET bounds")
	}
	if *ipet {
		if allAgree {
			fmt.Fprintln(stdout, "IPET cross-check:  all tasks agree")
		} else {
			fmt.Fprintln(stdout, "IPET cross-check:  DISAGREEMENT — analysis bug")
			return 1
		}
	}
	return 0
}
