package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{},                                  // -usecase missing
		{"-usecase", "nonesuch"},            // unknown use case
		{"-usecase", "weaa", "-nosuchflag"}, // flag misuse
		{"-usecase", "weaa", "-platform", "does-not-exist"}, // unknown platform
		{"-usecase", "weaa", "-engine", "nonesuch"},         // unknown engine
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestUnknownEngineListsValidSelectors(t *testing.T) {
	_, _, errb := runCLI(t, "-usecase", "weaa", "-engine", "nonesuch")
	for _, want := range []string{"nonesuch", "ipet", "mc", "both"} {
		if !strings.Contains(errb, want) {
			t.Fatalf("engine error missing %q:\n%s", want, errb)
		}
	}
}

// TestEngineModes runs the analysis under all three engine selections
// and pins the table shape each one produces: "ipet" has no mc column,
// "mc" adds it, "both" adds the per-task tightness gap and the
// cross-check confirmation line.
func TestEngineModes(t *testing.T) {
	for _, tc := range []struct {
		engine       string
		wantCols     []string
		rejectedCols []string
	}{
		{"ipet", []string{"structural", "ipet", "agree"}, []string{" mc ", " gap "}},
		{"mc", []string{"structural", "ipet", " mc "}, []string{" gap "}},
		{"both", []string{"structural", "ipet", " mc ", " gap ", "mc cross-check"}, nil},
	} {
		code, out, errb := runCLI(t, "-usecase", "weaa", "-platform", "xentium2", "-engine", tc.engine)
		if code != 0 {
			t.Fatalf("-engine %s: exit %d, stderr:\n%s", tc.engine, code, errb)
		}
		for _, want := range append([]string{"sequential bound", "system bound", "IPET cross-check:  all tasks agree"}, tc.wantCols...) {
			if !strings.Contains(out, want) {
				t.Fatalf("-engine %s: output missing %q:\n%s", tc.engine, want, out)
			}
		}
		for _, reject := range tc.rejectedCols {
			if strings.Contains(out, reject) {
				t.Fatalf("-engine %s: output must not contain %q:\n%s", tc.engine, reject, out)
			}
		}
	}
}
