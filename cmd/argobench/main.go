// Command argobench regenerates the full experiment suite of this
// reproduction (see DESIGN.md §4 and EXPERIMENTS.md): E1 WCET speedup,
// E2 bound tightness, E3 contention-aware scheduling, E4 transformation
// ablation, E5 NoC latency guarantees, E6 exact-vs-heuristic mapping,
// E7 iterative cross-layer optimization, E8 bus arbitration policies,
// E9 multi-application deployment schedulability, E10 bound soundness
// under deterministic fault injection, and E11 the tightness gap between
// the IPET and exact WCET engines.
//
// Examples:
//
//	argobench          # run everything
//	argobench -e e1,e5 # run a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"argo/internal/experiments"
)

func main() {
	var (
		which   = flag.String("e", "all", "comma-separated experiment ids (e1..e11) or 'all'")
		workers = flag.Int("j", 0, "experiment cell evaluation parallelism (0: GOMAXPROCS, 1: serial)")
	)
	flag.Parse()
	experiments.Parallelism = *workers
	known := map[string]bool{"all": true, "e1": true, "e2": true, "e3": true,
		"e4": true, "e5": true, "e6": true, "e7": true, "e8": true, "e9": true,
		"e10": true, "e11": true}
	sel := map[string]bool{}
	for _, s := range strings.Split(strings.ToLower(*which), ",") {
		id := strings.TrimSpace(s)
		if !known[id] {
			fmt.Fprintf(os.Stderr, "argobench: unknown experiment id %q (e1..e11, all)\n", id)
			os.Exit(2)
		}
		sel[id] = true
	}
	all := sel["all"]
	run := func(id string, fn func() (*experiments.Result, error)) {
		if !all && !sel[id] {
			return
		}
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "argobench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res)
	}
	run("e1", func() (*experiments.Result, error) { r, _, err := experiments.E1(nil); return r, err })
	run("e2", func() (*experiments.Result, error) { r, _, err := experiments.E2(0, 0); return r, err })
	run("e3", func() (*experiments.Result, error) { r, _, err := experiments.E3(nil); return r, err })
	run("e4", func() (*experiments.Result, error) { r, _, err := experiments.E4(0); return r, err })
	run("e5", func() (*experiments.Result, error) { r, _, err := experiments.E5(0); return r, err })
	run("e6", func() (*experiments.Result, error) { r, _, err := experiments.E6(0); return r, err })
	run("e7", func() (*experiments.Result, error) { r, _, err := experiments.E7(0); return r, err })
	run("e8", func() (*experiments.Result, error) { r, _, err := experiments.E8(0); return r, err })
	run("e9", func() (*experiments.Result, error) { r, _, err := experiments.E9(nil); return r, err })
	run("e10", func() (*experiments.Result, error) { r, _, _, _, err := experiments.E10(nil); return r, err })
	run("e11", func() (*experiments.Result, error) { r, _, _, err := experiments.E11(nil); return r, err })
}
