// Command argoload is the closed-loop load generator and soak harness
// for argod (and argod clusters): a fixed number of workers each issue
// the next request as soon as the previous one completes, and the run
// reports throughput, latency percentiles (p50/p95/p99), shed rate
// (429s), and errors.
//
// Two workload shapes:
//
//   - -unique generates a distinct scil source per request, so every
//     compile is a guaranteed cache miss all the way down — the shape
//     that measures pipeline throughput and cluster scaling.
//   - the default replays one use-case compile, so after the first
//     request the run measures cache-hit serving capacity.
//
// Examples:
//
//	argoload -addr http://localhost:8321 -requests 100 -unique
//	argoload -addr http://localhost:8321 -duration 10s -concurrency 8 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"argo/internal/cluster"
)

// config is the validated load-run configuration produced by parseFlags.
type config struct {
	load    cluster.LoadConfig
	jsonOut bool
}

// parseFlags parses and validates the command line. On failure it
// reports the usage error on stderr and returns a nil config with the
// process exit code (always 2, matching the other CLIs).
func parseFlags(args []string, stderr io.Writer) (*config, int) {
	fs := flag.NewFlagSet("argoload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://localhost:8321", "target base URL (an argod or a coordinator)")
		requests    = fs.Int("requests", 0, "total request budget (0: run for -duration)")
		duration    = fs.Duration("duration", 0, "time budget when -requests is 0")
		concurrency = fs.Int("concurrency", 4, "closed-loop worker count")
		unique      = fs.Bool("unique", false, "generate a distinct source per request (cache-miss workload)")
		usecase     = fs.String("usecase", "polka", "use case replayed by the cache-hit workload")
		platform    = fs.String("platform", "xentium4", "target platform")
		jsonOut     = fs.Bool("json", false, "emit the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return nil, 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "argoload: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return nil, 2
	}
	if *requests <= 0 && *duration <= 0 {
		fmt.Fprintln(stderr, "argoload: set -requests or -duration")
		return nil, 2
	}
	if *concurrency <= 0 {
		fmt.Fprintln(stderr, "argoload: -concurrency must be positive")
		return nil, 2
	}
	body := func(i int) []byte { return cluster.UseCaseCompileBody(*usecase, *platform) }
	if *unique {
		body = func(i int) []byte { return cluster.UniqueCompileBody(i, *platform) }
	}
	return &config{
		load: cluster.LoadConfig{
			URL:         *addr,
			Concurrency: *concurrency,
			Requests:    *requests,
			Duration:    *duration,
			Body:        body,
		},
		jsonOut: *jsonOut,
	}, 0
}

func run(ctx context.Context, cfg *config, stdout io.Writer) int {
	rep, err := cluster.RunLoad(ctx, cfg.load)
	if err != nil {
		fmt.Fprintf(os.Stderr, "argoload: %v\n", err)
		return 2
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Fprintln(stdout, rep)
	}
	if rep.OK == 0 {
		// Nothing succeeded: the target is down or every request failed.
		return 1
	}
	return 0
}

func main() {
	cfg, code := parseFlags(os.Args[1:], os.Stderr)
	if cfg == nil {
		os.Exit(code)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, cfg, os.Stdout))
}
