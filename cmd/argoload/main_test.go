package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"argo/internal/cluster"
)

func parseCLI(t *testing.T, args ...string) (*config, int, string) {
	t.Helper()
	var errb bytes.Buffer
	cfg, code := parseFlags(args, &errb)
	return cfg, code, errb.String()
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, code, errb := parseCLI(t, "-requests", "10")
	if cfg == nil || code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if cfg.load.URL != "http://localhost:8321" || cfg.load.Concurrency != 4 ||
		cfg.load.Requests != 10 || cfg.jsonOut {
		t.Errorf("unexpected config: %+v", cfg)
	}
	// Default workload replays one use case: identical bodies.
	if !bytes.Equal(cfg.load.Body(0), cfg.load.Body(7)) {
		t.Error("cache-hit workload produced distinct bodies")
	}
	if !bytes.Contains(cfg.load.Body(0), []byte(`"polka"`)) {
		t.Errorf("default body %s does not target polka", cfg.load.Body(0))
	}
}

func TestParseFlagsUniqueWorkload(t *testing.T) {
	cfg, code, errb := parseCLI(t, "-requests", "5", "-unique", "-platform", "xentium2")
	if cfg == nil || code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	a, b := cfg.load.Body(0), cfg.load.Body(1)
	if bytes.Equal(a, b) {
		t.Error("cache-miss workload repeated a body")
	}
	if !bytes.Contains(a, []byte(`"xentium2"`)) {
		t.Errorf("body %s does not target xentium2", a)
	}
}

func TestParseFlagsUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{},                                      // neither -requests nor -duration
		{"-nosuchflag"},                         // flag misuse
		{"positional"},                          // unexpected arguments
		{"-requests", "5", "-concurrency", "0"}, // non-positive workers
		{"-duration", "-1s"},                    // negative budget, no requests
	} {
		cfg, code, _ := parseCLI(t, args...)
		if cfg != nil || code != 2 {
			t.Errorf("args %v: cfg=%v exit %d, want nil, 2", args, cfg, code)
		}
	}
}

// stubTarget serves canned statuses and counts hits.
func stubTarget(t *testing.T, status int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(status)
		_, _ = w.Write([]byte(`{}`))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestRunAgainstStub(t *testing.T) {
	ts, hits := stubTarget(t, http.StatusOK)
	cfg, code, errb := parseCLI(t, "-addr", ts.URL, "-requests", "9", "-concurrency", "3")
	if cfg == nil || code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	var out bytes.Buffer
	if code := run(context.Background(), cfg, &out); code != 0 {
		t.Fatalf("run exit %d, output:\n%s", code, out.String())
	}
	if hits.Load() != 9 {
		t.Errorf("stub saw %d requests, want 9", hits.Load())
	}
	if !strings.Contains(out.String(), "ok 9") {
		t.Errorf("report output %q missing ok count", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	ts, _ := stubTarget(t, http.StatusOK)
	cfg, code, _ := parseCLI(t, "-addr", ts.URL, "-requests", "4", "-json")
	if cfg == nil || code != 0 {
		t.Fatal("parse failed")
	}
	var out bytes.Buffer
	if code := run(context.Background(), cfg, &out); code != 0 {
		t.Fatalf("run exit %d", code)
	}
	var rep cluster.LoadReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not a JSON LoadReport: %v\n%s", err, out.String())
	}
	if rep.OK != 4 || rep.Requests != 4 {
		t.Errorf("report %+v, want 4 ok of 4", rep)
	}
}

// A target that never succeeds must exit 1 (soak scripts alert on it),
// distinct from usage errors (2).
func TestRunAllFailedExitsOne(t *testing.T) {
	ts, _ := stubTarget(t, http.StatusInternalServerError)
	cfg, code, _ := parseCLI(t, "-addr", ts.URL, "-requests", "3")
	if cfg == nil || code != 0 {
		t.Fatal("parse failed")
	}
	var out bytes.Buffer
	if code := run(context.Background(), cfg, &out); code != 1 {
		t.Fatalf("run exit %d against an all-500 target, want 1", code)
	}
}
