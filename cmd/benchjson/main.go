// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report, pairing each benchmark with a recorded
// baseline so the speedup is visible in one place. With -baseline, the
// baselines are the benchmark rows of a previous benchjson report (so
// each PR's report chains against the last one); without it, the small
// built-in pre-overhaul table is used.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | \
//	    go run ./cmd/benchjson -baseline BENCH_PR2.json -o BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// baseline holds the numbers measured on the pre-overhaul tree (before
// the front-end split, HTG clone-per-round, and scheduler adjacency
// rewrite) on the same machine `make bench` runs on in CI.
type baseline struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

var baselines = map[string]baseline{
	"BenchmarkOptimize":     {NsOp: 41867626, BytesOp: 17163985, AllocsOp: 225172},
	"BenchmarkListSchedule": {NsOp: 481128, BytesOp: 188240, AllocsOp: 1307},
	"BenchmarkBranchBound":  {NsOp: 1480361, BytesOp: 1100024, AllocsOp: 20411},
}

// entry is one benchmark row of the report.
type entry struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
	// Baseline is the recorded pre-overhaul measurement, if any.
	Baseline *baseline `json:"baseline,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op.
	Speedup float64 `json:"speedup,omitempty"`
}

type report struct {
	// Note explains where the baseline numbers come from.
	Note       string  `json:"note"`
	Benchmarks []entry `json:"benchmarks"`
}

// benchLine matches e.g.
// BenchmarkOptimize-4   62   18980393 ns/op   8029257 B/op   106826 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	basefile := flag.String("baseline", "", "previous benchjson report to use as the baseline")
	flag.Parse()

	note := "baseline: pre-overhaul tree (serial optimizer ladder, " +
		"per-candidate front end, O(V*E) scheduler scans), same benchmarks and machine"
	if *basefile != "" {
		data, err := os.ReadFile(*basefile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var prev report
		if err := json.Unmarshal(data, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *basefile, err)
			os.Exit(1)
		}
		baselines = map[string]baseline{}
		for _, e := range prev.Benchmarks {
			baselines[e.Name] = baseline{NsOp: e.NsOp, BytesOp: e.BytesOp, AllocsOp: e.AllocsOp}
		}
		note = "baseline: " + *basefile + ", same benchmarks and machine"
	}
	rep := report{Note: note}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e := entry{Name: m[1]}
		e.NsOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			e.BytesOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			e.AllocsOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if base, ok := baselines[e.Name]; ok {
			b := base
			e.Baseline = &b
			if e.NsOp > 0 {
				e.Speedup = b.NsOp / e.NsOp
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchmark report written to %s\n", *out)
}
