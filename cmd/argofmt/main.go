// Command argofmt formats scil model sources canonically (the formatter
// the cross-layer interface uses to show users the model the compiler
// actually sees). It also runs the subset checks, so it doubles as a
// linter for WCET analysability.
//
// Exit codes: 0 on success, 1 on parse/lint failure, 2 on flag misuse.
//
// Examples:
//
//	argofmt model.sci            # print formatted source
//	argofmt -w model.sci         # rewrite in place
//	argofmt -usecase egpws       # print a built-in use case, formatted
//	argofmt -check model.sci     # only lint (WCET subset rules)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"argo/internal/scil"
	"argo/pkg/argo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole formatter, separated from main so tests can exercise
// flag handling and exit codes in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("argofmt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		write   = fs.Bool("w", false, "rewrite the file in place")
		check   = fs.Bool("check", false, "lint only (no output)")
		usecase = fs.String("usecase", "", "format a built-in use case instead of a file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usagef := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "argofmt: "+format+"\n", a...)
		return 2
	}
	fatalf := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "argofmt: "+format+"\n", a...)
		return 1
	}
	var src, name string
	switch {
	case *usecase != "":
		uc := argo.UseCaseByName(*usecase)
		if uc == nil {
			return usagef("unknown use case %q", *usecase)
		}
		src, name = uc.Source, *usecase
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return fatalf("%v", err)
		}
		src, name = string(data), fs.Arg(0)
	default:
		fmt.Fprintln(stderr, "usage: argofmt [-w|-check] <file.sci> | argofmt -usecase <name>")
		return 2
	}
	prog, err := scil.Parse(src)
	if err != nil {
		return fatalf("%s: %v", name, err)
	}
	if errs := scil.Check(prog, scil.CheckWCET); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(stderr, "argofmt: %s: %v\n", name, e)
		}
		return 1
	}
	if *check {
		fmt.Fprintf(stdout, "%s: ok (%d functions, WCET-analysable)\n", name, len(prog.Funcs))
		return 0
	}
	out := scil.Format(prog)
	if *write {
		if *usecase != "" {
			return usagef("-w requires a file argument")
		}
		if err := os.WriteFile(fs.Arg(0), []byte(out), 0o644); err != nil {
			return fatalf("%v", err)
		}
		return 0
	}
	fmt.Fprint(stdout, out)
	return 0
}
