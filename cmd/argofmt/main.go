// Command argofmt formats scil model sources canonically (the formatter
// the cross-layer interface uses to show users the model the compiler
// actually sees). It also runs the subset checks, so it doubles as a
// linter for WCET analysability.
//
// Examples:
//
//	argofmt model.sci            # print formatted source
//	argofmt -w model.sci         # rewrite in place
//	argofmt -usecase egpws       # print a built-in use case, formatted
//	argofmt -check model.sci     # only lint (WCET subset rules)
package main

import (
	"flag"
	"fmt"
	"os"

	"argo/internal/scil"
	"argo/pkg/argo"
)

func main() {
	var (
		write   = flag.Bool("w", false, "rewrite the file in place")
		check   = flag.Bool("check", false, "lint only (no output)")
		usecase = flag.String("usecase", "", "format a built-in use case instead of a file")
	)
	flag.Parse()
	var src, name string
	switch {
	case *usecase != "":
		uc := argo.UseCaseByName(*usecase)
		if uc == nil {
			usageErr("unknown use case %q", *usecase)
		}
		src, name = uc.Source, *usecase
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		src, name = string(data), flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: argofmt [-w|-check] <file.sci> | argofmt -usecase <name>")
		os.Exit(2)
	}
	prog, err := scil.Parse(src)
	if err != nil {
		fatal("%s: %v", name, err)
	}
	if errs := scil.Check(prog, scil.CheckWCET); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "argofmt: %s: %v\n", name, e)
		}
		os.Exit(1)
	}
	if *check {
		fmt.Printf("%s: ok (%d functions, WCET-analysable)\n", name, len(prog.Funcs))
		return
	}
	out := scil.Format(prog)
	if *write {
		if *usecase != "" {
			usageErr("-w requires a file argument")
		}
		if err := os.WriteFile(flag.Arg(0), []byte(out), 0o644); err != nil {
			fatal("%v", err)
		}
		return
	}
	fmt.Print(out)
}

// fatal reports a pipeline/runtime failure (exit 1).
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "argofmt: "+format+"\n", args...)
	os.Exit(1)
}

// usageErr reports flag misuse (exit 2).
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "argofmt: "+format+"\n", args...)
	os.Exit(2)
}
