package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"argo/internal/scil"
	"argo/pkg/argo"
)

func runFmt(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestFormatIdempotent pins the formatter's fixed point: formatting an
// already-formatted source changes nothing, for every built-in use case.
func TestFormatIdempotent(t *testing.T) {
	for _, uc := range argo.UseCases() {
		code, once, errb := runFmt(t, "-usecase", uc.Name)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr:\n%s", uc.Name, code, errb)
		}
		file := filepath.Join(t.TempDir(), uc.Name+".sci")
		if err := os.WriteFile(file, []byte(once), 0o644); err != nil {
			t.Fatal(err)
		}
		code, twice, errb := runFmt(t, file)
		if code != 0 {
			t.Fatalf("%s: exit %d on formatted output, stderr:\n%s", uc.Name, code, errb)
		}
		if twice != once {
			t.Fatalf("%s: fmt(fmt(x)) != fmt(x):\nfirst:\n%s\nsecond:\n%s", uc.Name, once, twice)
		}
	}
}

// TestFormatRoundTrips pins that formatting preserves the program: the
// formatted output parses back to the same function set and formats to
// the same canonical text as the original source.
func TestFormatRoundTrips(t *testing.T) {
	for _, uc := range argo.UseCases() {
		orig, err := scil.Parse(uc.Source)
		if err != nil {
			t.Fatalf("%s: %v", uc.Name, err)
		}
		formatted := scil.Format(orig)
		reparsed, err := scil.Parse(formatted)
		if err != nil {
			t.Fatalf("%s: formatted output does not parse: %v\n%s", uc.Name, err, formatted)
		}
		if len(reparsed.Funcs) != len(orig.Funcs) {
			t.Fatalf("%s: round trip lost functions: %d -> %d", uc.Name, len(orig.Funcs), len(reparsed.Funcs))
		}
		if again := scil.Format(reparsed); again != formatted {
			t.Fatalf("%s: parse/format round trip not stable:\n%s\nvs:\n%s", uc.Name, formatted, again)
		}
	}
}

func TestWriteInPlace(t *testing.T) {
	uc := argo.UseCaseByName("weaa")
	file := filepath.Join(t.TempDir(), "weaa.sci")
	if err := os.WriteFile(file, []byte(uc.Source), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errb := runFmt(t, "-w", file); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := scil.Parse(string(data))
	if err != nil {
		t.Fatalf("rewritten file does not parse: %v", err)
	}
	if string(data) != scil.Format(prog) {
		t.Fatal("rewritten file is not canonically formatted")
	}
}

func TestCheckMode(t *testing.T) {
	code, out, _ := runFmt(t, "-check", "-usecase", "polka")
	if code != 0 || !strings.Contains(out, "WCET-analysable") {
		t.Fatalf("exit %d, out: %s", code, out)
	}
}

func TestExitCodes(t *testing.T) {
	if code, _, _ := runFmt(t); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code, _, _ := runFmt(t, "-usecase", "nonesuch"); code != 2 {
		t.Fatalf("unknown use case: exit %d, want 2", code)
	}
	if code, _, _ := runFmt(t, "-w", "-usecase", "weaa"); code != 2 {
		t.Fatalf("-w without file: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.sci")
	if err := os.WriteFile(bad, []byte("function = ("), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runFmt(t, bad); code != 1 {
		t.Fatalf("parse failure: exit %d, want 1", code)
	}
}
