package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"argo/pkg/argo"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{},                                   // -usecase missing
		{"-usecase", "nonesuch"},             // unknown use case
		{"-usecase", "weaa", "-policy", "x"}, // unknown policy
		{"-usecase", "weaa", "-nosuchflag"},  // flag misuse
		{"-usecase", "weaa", "-platform", "does-not-exist"}, // unknown platform
		{"-usecase", "weaa", "-disable-pass", "nonesuch"},   // unknown transform
		{"-usecase", "weaa", "-dump-after", "nonesuch"},     // unknown dump pass
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestCompileSucceeds(t *testing.T) {
	code, out, errb := runCLI(t, "-usecase", "weaa", "-platform", "xentium2")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	for _, want := range []string{"weaa", "system bound", "sequential bound"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPassesListing(t *testing.T) {
	code, out, errb := runCLI(t, "-passes")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	for _, want := range []string{"pass", "input", "output", "cacheable", "check", "lower", "build-htg", "schedule", "par-build", "per-round"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-passes listing missing %q:\n%s", want, out)
		}
	}
}

func TestDisablePassAccepted(t *testing.T) {
	code, _, errb := runCLI(t, "-usecase", "weaa", "-platform", "xentium2", "-disable-pass", "fission,fusion")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
}

func TestDumpAfterWritesToStderr(t *testing.T) {
	code, _, errb := runCLI(t, "-usecase", "weaa", "-platform", "xentium2", "-dump-after", "build-htg")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if !strings.Contains(errb, `after pass "build-htg"`) {
		t.Fatalf("dump missing from stderr:\n%s", errb)
	}
}

// TestPipelineFailureExitOneWithPassPrefix pins the exit-1 path and the
// failing-pass error prefix: a platform whose shared memory cannot hold
// the use case's buffers fails inside the par-build pass.
func TestPipelineFailureExitOneWithPassPrefix(t *testing.T) {
	seed, err := argo.EncodePlatform(argo.Platform("xentium2"))
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := argo.DecodePlatform(seed) // deep copy of the builtin
	if err != nil {
		t.Fatal(err)
	}
	tiny.Name = "xentium2-tiny-shared"
	tiny.Shared.SizeBytes = 64
	for i := range tiny.Cores {
		tiny.Cores[i].SPM.SizeBytes = 0 // no scratchpad: buffers go shared
	}
	data, err := argo.EncodePlatform(tiny)
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(t.TempDir(), "tiny.json")
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runCLI(t, "-usecase", "weaa", "-platform", file)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errb)
	}
	if !strings.Contains(errb, `pass "par-build"`) || !strings.Contains(errb, "overflow") {
		t.Fatalf("error not prefixed with the failing pass:\n%s", errb)
	}
}
