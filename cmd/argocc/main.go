// Command argocc is the ARGO tool-chain driver: it compiles a model-based
// application (one of the built-in use cases or a scil source file) for a
// predictable multi-core platform, producing the schedule, the WCET
// report, the cross-layer explanation, and the generated parallel C code.
//
// Exit codes: 0 on success, 1 on pipeline failure, 2 on flag misuse.
//
// Examples:
//
//	argocc -usecase polka -platform xentium4
//	argocc -usecase egpws -platform leon3-2x2 -policy oblivious -explain
//	argocc -usecase weaa -platform xentium8 -optimize -emit-c out.c
//	argocc -usecase polka -json | jq .total_bound
//	argocc -passes
//	argocc -usecase weaa -disable-pass fission,fusion
//	argocc -usecase weaa -dump-after build-htg
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"argo/internal/service"
	"argo/pkg/argo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole driver, separated from main so tests can exercise
// flag handling and exit codes in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("argocc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		usecase    = fs.String("usecase", "", "built-in use case: egpws, weaa, polka")
		platform   = fs.String("platform", "xentium4", "target platform (xentiumN, xentiumN-tdm, leon3-WxH) or ADL JSON file")
		policy     = fs.String("policy", "aware", "scheduling policy: aware, oblivious, exact")
		optimize   = fs.Bool("optimize", false, "run the iterative cross-layer optimization")
		explain    = fs.Bool("explain", false, "print the cross-layer report")
		jsonOut    = fs.Bool("json", false, "emit the compile summary as JSON (the /v1/compile wire format)")
		emitC      = fs.String("emit-c", "", "write generated parallel C code to this file")
		adlOut     = fs.String("emit-adl", "", "write the platform ADL JSON to this file")
		workers    = fs.Int("j", 0, "optimizer candidate evaluation parallelism (0: GOMAXPROCS, 1: serial)")
		passesOnly = fs.Bool("passes", false, "print the registered pass pipeline and exit")
		dumpAfter  = fs.String("dump-after", "", "dump the named pass's output artifact (to stderr) after each execution")
		disable    = fs.String("disable-pass", "", "comma-separated transformation passes to skip (see -passes)")
		wcetEngine = fs.String("wcet-engine", "", "code-level WCET engine: ipet (default), mc, or both (cross-checked)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usagef := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "argocc: "+format+"\n", a...)
		return 2
	}
	fatalf := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "argocc: "+format+"\n", a...)
		return 1
	}

	plat, code := loadPlatform(*platform, stderr)
	if code != 0 {
		return code
	}

	var passOpt argo.PassOptions
	if *disable != "" {
		passOpt.Disable = strings.Split(*disable, ",")
	}

	if *passesOnly {
		opt := argo.DefaultOptions("", nil, plat)
		opt.Passes = passOpt
		table, err := argo.DescribePasses(opt)
		if err != nil {
			return usagef("%v", err)
		}
		fmt.Fprint(stdout, table)
		return 0
	}

	if *usecase == "" {
		fmt.Fprintln(stderr, "argocc: -usecase is required (egpws, weaa, polka)")
		fs.Usage()
		return 2
	}
	uc := argo.UseCaseByName(*usecase)
	if uc == nil {
		return usagef("unknown use case %q (egpws, weaa, polka)", *usecase)
	}
	opt := argo.DefaultOptions(uc.Entry, uc.Args, plat)
	switch *policy {
	case "aware":
		opt.Policy = argo.PolicyContentionAware
	case "oblivious":
		opt.Policy = argo.PolicyOblivious
	case "exact":
		opt.Policy = argo.PolicyBranchBound
	default:
		return usagef("unknown policy %q (aware, oblivious, exact)", *policy)
	}
	if err := argo.ParseWCETEngine(*wcetEngine); err != nil {
		return usagef("%v", err)
	}
	opt.WCETEngine = *wcetEngine
	opt.Parallelism = *workers
	opt.Passes = passOpt
	if *disable != "" {
		// Validate the disable list up front so a typo is flag misuse
		// (exit 2), not a pipeline failure.
		if _, err := argo.DescribePasses(opt); err != nil {
			return usagef("%v", err)
		}
	}
	if *dumpAfter != "" {
		names := argo.PassNames(opt)
		if len(names) == 0 {
			return usagef("%v", "invalid pass configuration")
		}
		known := false
		for _, n := range names {
			if n == *dumpAfter {
				known = true
				break
			}
		}
		if !known {
			return usagef("unknown pass %q for -dump-after (passes: %s)", *dumpAfter, strings.Join(names, ", "))
		}
		opt.Passes.DumpAfter = *dumpAfter
		opt.Passes.DumpWriter = stderr
	}

	var art *argo.Artifacts
	var res *argo.OptimizeResult
	if *optimize {
		r, err := argo.Optimize(uc.Source, opt, nil)
		if err != nil {
			return fatalf("optimize: %v", err)
		}
		res = r
		art = r.Best
		if !*jsonOut {
			for _, rec := range r.History {
				status := fmt.Sprintf("%d", rec.Bound)
				if rec.Err != nil {
					status = "error: " + rec.Err.Error()
				}
				fmt.Fprintf(stdout, "iteration %d (%-22s): bound %s, best %d\n",
					rec.Iteration, rec.Candidate.Name, status, rec.BestSoFar)
			}
		}
	} else {
		a, err := argo.CompileSource(uc.Source, opt)
		if err != nil {
			return fatalf("compile: %v", err)
		}
		art = a
	}
	if *jsonOut {
		// The summary types are shared with the argod analysis service,
		// so this output matches the /v1/compile (or /v1/optimize)
		// response body.
		var payload any
		if res != nil {
			payload = service.SummarizeOptimize(uc.Name, uc.Period, res)
		} else {
			payload = service.Summarize(uc.Name, uc.Period, art)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			return fatalf("encode summary: %v", err)
		}
	} else {
		fmt.Fprintln(stdout, argo.Describe(art))
		fmt.Fprintf(stdout, "  sequential bound: %d cycles\n", art.SequentialWCET)
		fmt.Fprintf(stdout, "  system bound:     %d cycles (period budget %d)\n", art.Bound(), uc.Period)
	}
	if *explain && !*jsonOut {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, argo.Explain(art))
	}
	if *emitC != "" {
		if err := os.WriteFile(*emitC, []byte(argo.EmitC(art)), 0o644); err != nil {
			return fatalf("write %s: %v", *emitC, err)
		}
		hdr := filepath.Join(filepath.Dir(*emitC), "argo_rt.h")
		if err := os.WriteFile(hdr, []byte(argo.RuntimeHeader()), 0o644); err != nil {
			return fatalf("write %s: %v", hdr, err)
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "  parallel C written to %s (+ %s)\n", *emitC, hdr)
		}
	}
	if *adlOut != "" {
		data, err := argo.EncodePlatform(plat)
		if err != nil {
			return fatalf("encode platform: %v", err)
		}
		if err := os.WriteFile(*adlOut, data, 0o644); err != nil {
			return fatalf("write %s: %v", *adlOut, err)
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "  ADL description written to %s\n", *adlOut)
		}
	}
	return 0
}

// loadPlatform resolves a builtin platform name or an ADL JSON file;
// a non-zero code is the process exit code (2: not found, 1: bad file).
func loadPlatform(name string, stderr io.Writer) (*argo.PlatformDesc, int) {
	if p := argo.Platform(name); p != nil {
		return p, 0
	}
	data, err := os.ReadFile(name)
	if err != nil {
		fmt.Fprintf(stderr, "argocc: platform %q is neither built-in (%v) nor a readable ADL file: %v\n",
			name, argo.PlatformNames(), err)
		return nil, 2
	}
	p, err := argo.DecodePlatform(data)
	if err != nil {
		fmt.Fprintf(stderr, "argocc: %s: %v\n", name, err)
		return nil, 1
	}
	return p, 0
}
