// Command argocc is the ARGO tool-chain driver: it compiles a model-based
// application (one of the built-in use cases or a scil source file) for a
// predictable multi-core platform, producing the schedule, the WCET
// report, the cross-layer explanation, and the generated parallel C code.
//
// Exit codes: 0 on success, 1 on pipeline failure, 2 on flag misuse.
//
// Examples:
//
//	argocc -usecase polka -platform xentium4
//	argocc -usecase egpws -platform leon3-2x2 -policy oblivious -explain
//	argocc -usecase weaa -platform xentium8 -optimize -emit-c out.c
//	argocc -usecase polka -json | jq .total_bound
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"argo/internal/service"
	"argo/pkg/argo"
)

func main() {
	var (
		usecase  = flag.String("usecase", "", "built-in use case: egpws, weaa, polka")
		platform = flag.String("platform", "xentium4", "target platform (xentiumN, xentiumN-tdm, leon3-WxH) or ADL JSON file")
		policy   = flag.String("policy", "aware", "scheduling policy: aware, oblivious, exact")
		optimize = flag.Bool("optimize", false, "run the iterative cross-layer optimization")
		explain  = flag.Bool("explain", false, "print the cross-layer report")
		jsonOut  = flag.Bool("json", false, "emit the compile summary as JSON (the /v1/compile wire format)")
		emitC    = flag.String("emit-c", "", "write generated parallel C code to this file")
		adlOut   = flag.String("emit-adl", "", "write the platform ADL JSON to this file")
		workers  = flag.Int("j", 0, "optimizer candidate evaluation parallelism (0: GOMAXPROCS, 1: serial)")
	)
	flag.Parse()
	if *usecase == "" {
		fmt.Fprintln(os.Stderr, "argocc: -usecase is required (egpws, weaa, polka)")
		flag.Usage()
		os.Exit(2)
	}
	uc := argo.UseCaseByName(*usecase)
	if uc == nil {
		usageErr("unknown use case %q (egpws, weaa, polka)", *usecase)
	}
	plat := loadPlatform(*platform)
	opt := argo.DefaultOptions(uc.Entry, uc.Args, plat)
	switch *policy {
	case "aware":
		opt.Policy = argo.PolicyContentionAware
	case "oblivious":
		opt.Policy = argo.PolicyOblivious
	case "exact":
		opt.Policy = argo.PolicyBranchBound
	default:
		usageErr("unknown policy %q (aware, oblivious, exact)", *policy)
	}
	opt.Parallelism = *workers
	var art *argo.Artifacts
	var res *argo.OptimizeResult
	if *optimize {
		r, err := argo.Optimize(uc.Source, opt, nil)
		if err != nil {
			fatal("optimize: %v", err)
		}
		res = r
		art = r.Best
		if !*jsonOut {
			for _, rec := range r.History {
				status := fmt.Sprintf("%d", rec.Bound)
				if rec.Err != nil {
					status = "error: " + rec.Err.Error()
				}
				fmt.Printf("iteration %d (%-22s): bound %s, best %d\n",
					rec.Iteration, rec.Candidate.Name, status, rec.BestSoFar)
			}
		}
	} else {
		a, err := argo.CompileSource(uc.Source, opt)
		if err != nil {
			fatal("compile: %v", err)
		}
		art = a
	}
	if *jsonOut {
		// The summary types are shared with the argod analysis service,
		// so this output matches the /v1/compile (or /v1/optimize)
		// response body.
		var payload any
		if res != nil {
			payload = service.SummarizeOptimize(uc.Name, uc.Period, res)
		} else {
			payload = service.Summarize(uc.Name, uc.Period, art)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			fatal("encode summary: %v", err)
		}
	} else {
		fmt.Println(argo.Describe(art))
		fmt.Printf("  sequential bound: %d cycles\n", art.SequentialWCET)
		fmt.Printf("  system bound:     %d cycles (period budget %d)\n", art.Bound(), uc.Period)
	}
	if *explain && !*jsonOut {
		fmt.Println()
		fmt.Println(argo.Explain(art))
	}
	if *emitC != "" {
		if err := os.WriteFile(*emitC, []byte(argo.EmitC(art)), 0o644); err != nil {
			fatal("write %s: %v", *emitC, err)
		}
		hdr := filepath.Join(filepath.Dir(*emitC), "argo_rt.h")
		if err := os.WriteFile(hdr, []byte(argo.RuntimeHeader()), 0o644); err != nil {
			fatal("write %s: %v", hdr, err)
		}
		if !*jsonOut {
			fmt.Printf("  parallel C written to %s (+ %s)\n", *emitC, hdr)
		}
	}
	if *adlOut != "" {
		data, err := argo.EncodePlatform(plat)
		if err != nil {
			fatal("encode platform: %v", err)
		}
		if err := os.WriteFile(*adlOut, data, 0o644); err != nil {
			fatal("write %s: %v", *adlOut, err)
		}
		if !*jsonOut {
			fmt.Printf("  ADL description written to %s\n", *adlOut)
		}
	}
}

func loadPlatform(name string) *argo.PlatformDesc {
	if p := argo.Platform(name); p != nil {
		return p
	}
	data, err := os.ReadFile(name)
	if err != nil {
		usageErr("platform %q is neither built-in (%v) nor a readable ADL file: %v",
			name, argo.PlatformNames(), err)
	}
	p, err := argo.DecodePlatform(data)
	if err != nil {
		fatal("%s: %v", name, err)
	}
	return p
}

// fatal reports a pipeline/runtime failure (exit 1).
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "argocc: "+format+"\n", args...)
	os.Exit(1)
}

// usageErr reports flag misuse (exit 2).
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "argocc: "+format+"\n", args...)
	os.Exit(2)
}
