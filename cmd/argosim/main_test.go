package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{},                       // -usecase missing
		{"-usecase", "nonesuch"}, // unknown use case
		{"-usecase", "polka", "-platform", "does-not-exist"}, // unknown platform
		{"-usecase", "polka", "-nosuchflag"},                 // flag misuse
		{"-usecase", "polka", "-interp", "jit"},              // unknown engine
		{"-usecase", "polka", "-exec-inflation", "-1"},       // invalid fault spec
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestSimulateSucceeds(t *testing.T) {
	code, out, errb := runCLI(t, "-usecase", "polka", "-platform", "xentium2", "-runs", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	for _, want := range []string{"Simulated runs", "worst observed", "tightness"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestInterpModesAgree pins the escape hatch: -interp=tree and the
// default VM engine must render the identical report tables.
func TestInterpModesAgree(t *testing.T) {
	codeVM, outVM, errVM := runCLI(t, "-usecase", "polka", "-platform", "xentium2", "-runs", "2", "-interp", "vm")
	if codeVM != 0 {
		t.Fatalf("vm: exit %d, stderr:\n%s", codeVM, errVM)
	}
	codeTree, outTree, errTree := runCLI(t, "-usecase", "polka", "-platform", "xentium2", "-runs", "2", "-interp", "tree")
	if codeTree != 0 {
		t.Fatalf("tree: exit %d, stderr:\n%s", codeTree, errTree)
	}
	if outVM != outTree {
		t.Fatalf("engine outputs differ:\n--- vm ---\n%s\n--- tree ---\n%s", outVM, outTree)
	}
}

// TestOverBudgetInjectionExitsOne pins the soundness-violation path:
// inflation beyond the WCET headroom must surface violations and exit 1.
func TestOverBudgetInjectionExitsOne(t *testing.T) {
	code, _, errb := runCLI(t, "-usecase", "polka", "-platform", "xentium2", "-runs", "1",
		"-fault-seed", "7", "-exec-inflation", "1.5")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errb)
	}
	if !strings.Contains(errb, "SOUNDNESS VIOLATION") {
		t.Fatalf("missing violation banner:\n%s", errb)
	}
}
