// Command argosim compiles a use case and executes the resulting parallel
// program on the ARGO platform simulator over a set of input variants,
// comparing the measured behaviour against the static WCET bounds
// (measured must never exceed the bound — the tool exits non-zero if the
// soundness contract is violated).
//
// Example:
//
//	argosim -usecase polka -platform xentium4 -runs 25
package main

import (
	"flag"
	"fmt"
	"os"

	"argo/internal/report"
	"argo/internal/sim"
	"argo/pkg/argo"
)

func main() {
	var (
		usecase  = flag.String("usecase", "", "built-in use case: egpws, weaa, polka")
		platform = flag.String("platform", "xentium4", "target platform name")
		runs     = flag.Int("runs", 10, "number of deterministic input variants")
		gantt    = flag.Bool("gantt", false, "draw an ASCII timeline of the first run")
	)
	flag.Parse()
	uc := argo.UseCaseByName(*usecase)
	if uc == nil {
		fmt.Fprintln(os.Stderr, "argosim: unknown or missing -usecase (egpws, weaa, polka)")
		os.Exit(2)
	}
	plat := argo.Platform(*platform)
	if plat == nil {
		fmt.Fprintf(os.Stderr, "argosim: unknown platform %q (%v)\n", *platform, argo.PlatformNames())
		os.Exit(2)
	}
	art, err := argo.CompileSource(uc.Source, argo.DefaultOptions(uc.Entry, uc.Args, plat))
	if err != nil {
		fmt.Fprintf(os.Stderr, "argosim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(argo.Describe(art))
	tab := report.New(fmt.Sprintf("Simulated runs (bound %d cycles)", art.Bound()),
		"seed", "makespan", "exec-span", "bus-wait", "bound-used", "ok")
	var worst int64
	sound := true
	for seed := 0; seed < *runs; seed++ {
		rep, err := argo.Simulate(art, uc.Inputs(int64(seed)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "argosim: seed %d: %v\n", seed, err)
			os.Exit(1)
		}
		if *gantt && seed == 0 {
			fmt.Println()
			fmt.Print(sim.RenderGantt(art.Parallel, rep, 100))
			fmt.Println()
		}
		ok := "yes"
		if err := argo.CheckBounds(art, rep); err != nil {
			ok = "VIOLATION"
			sound = false
		}
		if rep.Makespan > worst {
			worst = rep.Makespan
		}
		tab.Add(seed, rep.Makespan, rep.ExecSpan, rep.BusWaitCycles,
			fmt.Sprintf("%.1f%%", 100*float64(rep.Makespan)/float64(art.Bound())), ok)
	}
	fmt.Print(tab)
	fmt.Printf("\nworst observed: %d cycles; bound: %d; tightness %.3f\n",
		worst, art.Bound(), float64(art.Bound())/float64(worst))
	if !sound {
		fmt.Fprintln(os.Stderr, "argosim: SOUNDNESS VIOLATION — a run exceeded its WCET bound")
		os.Exit(1)
	}
}
