// Command argosim compiles a use case and executes the resulting parallel
// program on the ARGO platform simulator over a set of input variants,
// comparing the measured behaviour against the static WCET bounds
// (measured must never exceed the bound — the tool exits non-zero if the
// soundness contract is violated).
//
// Deterministic fault injection (internal/fault) is switched on with the
// -fault-* flags: each run then suffers seed-driven bus/scratchpad access
// jitter, task compute inflation, and NoC stalls within the analysis
// budgets. In-budget injection must keep every run under the static bound;
// -exec-inflation above 1 deliberately breaks the bound and the tool
// reports the structured violations and exits non-zero.
//
// Examples:
//
//	argosim -usecase polka -platform xentium4 -runs 25
//	argosim -usecase weaa -platform leon3-2x2 -runs 10 \
//	  -fault-seed 7 -access-jitter 1 -exec-inflation 1 -noc-stall 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"argo/internal/report"
	"argo/internal/sim"
	"argo/pkg/argo"
)

func main() {
	var (
		usecase  = flag.String("usecase", "", "built-in use case: egpws, weaa, polka")
		platform = flag.String("platform", "xentium4", "target platform name")
		runs     = flag.Int("runs", 10, "number of deterministic input variants")
		gantt    = flag.Bool("gantt", false, "draw an ASCII timeline of the first run")

		faultSeed = flag.Int64("fault-seed", 0, "fault-injection seed (re-seeded per run with the input seed)")
		jitter    = flag.Float64("access-jitter", 0, "share [0,1] of per-access interference budget injected as stall")
		inflation = flag.Float64("exec-inflation", 0, "task compute inflation (<=1: within WCET headroom, >1: break bounds)")
		nocStall  = flag.Float64("noc-stall", 0, "share [0,1] of per-hop NoC waiting allowance injected as stalls")
	)
	flag.Parse()
	faults := argo.FaultSpec{
		Seed:          *faultSeed,
		AccessJitter:  *jitter,
		ExecInflation: *inflation,
		NoCStall:      *nocStall,
	}
	if err := faults.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "argosim: %v\n", err)
		os.Exit(2)
	}
	uc := argo.UseCaseByName(*usecase)
	if uc == nil {
		fmt.Fprintln(os.Stderr, "argosim: unknown or missing -usecase (egpws, weaa, polka)")
		os.Exit(2)
	}
	plat := argo.Platform(*platform)
	if plat == nil {
		fmt.Fprintf(os.Stderr, "argosim: unknown platform %q (%v)\n", *platform, argo.PlatformNames())
		os.Exit(2)
	}
	art, err := argo.CompileSource(uc.Source, argo.DefaultOptions(uc.Entry, uc.Args, plat))
	if err != nil {
		fmt.Fprintf(os.Stderr, "argosim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(argo.Describe(art))
	injecting := faults.Enabled()
	cols := []string{"seed", "makespan", "exec-span", "bus-wait", "bound-used", "ok"}
	if injecting {
		cols = append(cols, "injected")
	}
	tab := report.New(fmt.Sprintf("Simulated runs (bound %d cycles)", art.Bound()), cols...)
	var worst int64
	sound := true
	for seed := 0; seed < *runs; seed++ {
		var rep *argo.SimReport
		var err error
		if injecting {
			// Re-seed per run so a sweep over input seeds also sweeps
			// fault patterns deterministically (same rule as argod).
			spec := faults
			spec.Seed += int64(seed)
			rep, err = argo.SimulateFaulty(art, uc.Inputs(int64(seed)), spec)
		} else {
			rep, err = argo.Simulate(art, uc.Inputs(int64(seed)))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "argosim: seed %d: %v\n", seed, err)
			os.Exit(1)
		}
		if *gantt && seed == 0 {
			fmt.Println()
			fmt.Print(sim.RenderGantt(art.Parallel, rep, 100))
			fmt.Println()
		}
		ok := "yes"
		if err := argo.CheckBounds(art, rep); err != nil {
			ok = "VIOLATION"
			sound = false
			for _, v := range argo.Violations(art, rep) {
				fmt.Fprintf(os.Stderr, "argosim: seed %d: %v\n", seed, v)
			}
		}
		if rep.Makespan > worst {
			worst = rep.Makespan
		}
		row := []any{seed, rep.Makespan, rep.ExecSpan, rep.BusWaitCycles,
			fmt.Sprintf("%.1f%%", 100*float64(rep.Makespan)/float64(art.Bound())), ok}
		if injecting {
			row = append(row, rep.Faults.Total())
		}
		tab.Add(row...)
	}
	fmt.Print(tab)
	fmt.Printf("\nworst observed: %d cycles; bound: %d; tightness %.3f\n",
		worst, art.Bound(), float64(art.Bound())/float64(worst))
	if !sound {
		fmt.Fprintln(os.Stderr, "argosim: SOUNDNESS VIOLATION — a run exceeded its WCET bound")
		os.Exit(1)
	}
}
