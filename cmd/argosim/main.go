// Command argosim compiles a use case and executes the resulting parallel
// program on the ARGO platform simulator over a set of input variants,
// comparing the measured behaviour against the static WCET bounds
// (measured must never exceed the bound — the tool exits non-zero if the
// soundness contract is violated).
//
// Deterministic fault injection (internal/fault) is switched on with the
// -fault-* flags: each run then suffers seed-driven bus/scratchpad access
// jitter, task compute inflation, and NoC stalls within the analysis
// budgets. In-budget injection must keep every run under the static bound;
// -exec-inflation above 1 deliberately breaks the bound and the tool
// reports the structured violations and exits non-zero.
//
// -interp selects the simulator's execution engine: the compiled
// register-bytecode VM (default) or the tree-walking oracle. Both are
// bit-identical, so the flag only affects speed.
//
// Examples:
//
//	argosim -usecase polka -platform xentium4 -runs 25
//	argosim -usecase weaa -platform leon3-2x2 -runs 10 \
//	  -fault-seed 7 -access-jitter 1 -exec-inflation 1 -noc-stall 0.5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"argo/internal/report"
	"argo/internal/sim"
	"argo/pkg/argo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("argosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		usecase  = fs.String("usecase", "", "built-in use case: egpws, weaa, polka")
		platform = fs.String("platform", "xentium4", "target platform name")
		runs     = fs.Int("runs", 10, "number of deterministic input variants")
		gantt    = fs.Bool("gantt", false, "draw an ASCII timeline of the first run")
		interp   = fs.String("interp", "vm", "execution engine: vm (bytecode) or tree (oracle)")

		faultSeed = fs.Int64("fault-seed", 0, "fault-injection seed (re-seeded per run with the input seed)")
		jitter    = fs.Float64("access-jitter", 0, "share [0,1] of per-access interference budget injected as stall")
		inflation = fs.Float64("exec-inflation", 0, "task compute inflation (<=1: within WCET headroom, >1: break bounds)")
		nocStall  = fs.Float64("noc-stall", 0, "share [0,1] of per-hop NoC waiting allowance injected as stalls")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	engine, err := sim.ParseInterp(*interp)
	if err != nil {
		fmt.Fprintf(stderr, "argosim: %v\n", err)
		return 2
	}
	faults := argo.FaultSpec{
		Seed:          *faultSeed,
		AccessJitter:  *jitter,
		ExecInflation: *inflation,
		NoCStall:      *nocStall,
	}
	if err := faults.Validate(); err != nil {
		fmt.Fprintf(stderr, "argosim: %v\n", err)
		return 2
	}
	uc := argo.UseCaseByName(*usecase)
	if uc == nil {
		fmt.Fprintln(stderr, "argosim: unknown or missing -usecase (egpws, weaa, polka)")
		return 2
	}
	plat := argo.Platform(*platform)
	if plat == nil {
		fmt.Fprintf(stderr, "argosim: unknown platform %q (%v)\n", *platform, argo.PlatformNames())
		return 2
	}
	opt := argo.DefaultOptions(uc.Entry, uc.Args, plat)
	opt.Interp = engine
	art, err := argo.CompileSource(uc.Source, opt)
	if err != nil {
		fmt.Fprintf(stderr, "argosim: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, argo.Describe(art))
	injecting := faults.Enabled()
	cols := []string{"seed", "makespan", "exec-span", "bus-wait", "bound-used", "ok"}
	if injecting {
		cols = append(cols, "injected")
	}
	tab := report.New(fmt.Sprintf("Simulated runs (bound %d cycles)", art.Bound()), cols...)
	var worst int64
	sound := true
	for seed := 0; seed < *runs; seed++ {
		var rep *argo.SimReport
		var err error
		if injecting {
			// Re-seed per run so a sweep over input seeds also sweeps
			// fault patterns deterministically (same rule as argod).
			spec := faults
			spec.Seed += int64(seed)
			rep, err = argo.SimulateFaulty(art, uc.Inputs(int64(seed)), spec)
		} else {
			rep, err = argo.Simulate(art, uc.Inputs(int64(seed)))
		}
		if err != nil {
			fmt.Fprintf(stderr, "argosim: seed %d: %v\n", seed, err)
			return 1
		}
		if *gantt && seed == 0 {
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, sim.RenderGantt(art.Parallel, rep, 100))
			fmt.Fprintln(stdout)
		}
		ok := "yes"
		if err := argo.CheckBounds(art, rep); err != nil {
			ok = "VIOLATION"
			sound = false
			for _, v := range argo.Violations(art, rep) {
				fmt.Fprintf(stderr, "argosim: seed %d: %v\n", seed, v)
			}
		}
		if rep.Makespan > worst {
			worst = rep.Makespan
		}
		row := []any{seed, rep.Makespan, rep.ExecSpan, rep.BusWaitCycles,
			fmt.Sprintf("%.1f%%", 100*float64(rep.Makespan)/float64(art.Bound())), ok}
		if injecting {
			row = append(row, rep.Faults.Total())
		}
		tab.Add(row...)
	}
	fmt.Fprint(stdout, tab)
	fmt.Fprintf(stdout, "\nworst observed: %d cycles; bound: %d; tightness %.3f\n",
		worst, art.Bound(), float64(art.Bound())/float64(worst))
	if !sound {
		fmt.Fprintln(stderr, "argosim: SOUNDNESS VIOLATION — a run exceeded its WCET bound")
		return 1
	}
	return 0
}
