// Command argod serves the ARGO analysis pipeline as a long-lived HTTP
// daemon: POST /v1/compile, /v1/optimize, and /v1/simulate run the full
// compile→schedule→WCET→simulate tool-chain with content-addressed
// result caching, singleflight deduplication of concurrent identical
// requests, a bounded worker pool with load shedding (429 +
// Retry-After once the wait queue saturates), per-request deadlines
// (timeout_ms), and deterministic fault injection for /v1/simulate
// (faults); /v1/session hosts interactive what-if sessions — stateful
// incremental re-analysis where each typed edit (replace-func,
// set-param, toggle-transform, set-policy, set-faults) re-runs only the
// dirty pass suffix, optionally streaming pass-by-pass progress over
// SSE; GET /v1/platforms and /v1/usecases enumerate the built-in
// targets and models; /healthz (liveness), /readyz (readiness: 503
// while draining after SIGTERM), and /debug/vars expose health and
// metrics. See docs/SERVICE.md.
//
// -interp selects the simulator execution engine for every request: the
// compiled register-bytecode VM (default) or the tree-walking oracle.
// The engines are bit-identical, so the choice is deliberately not part
// of the result-cache keys.
//
// -peers puts the daemon in coordinator mode: compile and optimize
// requests are consistent-hash sharded across the listed argod replicas
// (rendezvous hashing with a bounded-load fallback via
// -max-per-replica), /v1/optimize fans optimizer-ladder candidates out
// to the replicas as remote candidate workers, POST /v1/batch evaluates
// many use-case×platform cells with per-cell status, and GET /v1/cluster
// + POST /v1/cluster/members expose and change the topology. Results are
// bit-identical to a single-process argod at any replica count.
//
// Examples:
//
//	argod                              # listen on :8321
//	argod -addr :8080 -workers 8 -timeout 30s
//	argod -peers http://n1:8321,http://n2:8321   # coordinator
//	curl -s localhost:8321/v1/compile \
//	  -d '{"usecase":"polka","platform":"xentium4"}'
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"argo/internal/ir/vm"
	"argo/internal/pass"
	"argo/internal/service"
	"argo/internal/sim"
	"argo/pkg/argo"
)

// config is the validated daemon configuration produced by parseFlags.
type config struct {
	addr         string
	grace        time.Duration
	passCacheMax int
	vmCacheMax   int
	interp       sim.Interp
	service      service.Config
}

// parseFlags parses and validates the command line. On failure it
// reports the usage error on stderr and returns a nil config with the
// process exit code (always 2, matching the other CLIs).
func parseFlags(args []string, stderr io.Writer) (*config, int) {
	fs := flag.NewFlagSet("argod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8321", "listen address")
		workers      = fs.Int("workers", runtime.NumCPU(), "max concurrent pipeline executions")
		cache        = fs.Int("cache", 256, "result cache capacity in entries (-1: unbounded)")
		timeout      = fs.Duration("timeout", 60*time.Second, "per-request pipeline budget")
		grace        = fs.Duration("grace", 10*time.Second, "graceful shutdown budget")
		maxBody      = fs.Int64("max-body", 4<<20, "max request body bytes")
		maxQueue     = fs.Int("max-queue", 0, "max queued requests before load shedding (0: 4x workers, -1: unbounded)")
		maxSessions  = fs.Int("max-sessions", argo.DefaultMaxSessions, "max live interactive sessions (LRU-evicted beyond)")
		sessionTTL   = fs.Duration("session-ttl", argo.DefaultSessionTTL, "idle expiry of interactive sessions")
		passCacheMax = fs.Int("pass-cache-max", 0, "max snapshots in the global pass cache (0: default bound)")
		vmCacheMax   = fs.Int("vm-cache-max", 0, "max compiled programs in the shared VM code cache (0: default bound)")
		interp       = fs.String("interp", "vm", "simulator execution engine: vm (bytecode) or tree (oracle)")
		wcetEngine   = fs.String("wcet-engine", "", "code-level WCET engine: ipet (default), mc, or both (cross-checked)")
		peers        = fs.String("peers", "", "comma-separated replica base URLs; non-empty enables coordinator mode")
		coordinator  = fs.Bool("coordinator", false, "run as cluster coordinator (requires -peers; implied by -peers)")
		maxPerRep    = fs.Int("max-per-replica", 0, "bounded-load fallback: max in-flight forwards per replica (0: unbounded)")
		fwdTimeout   = fs.Duration("forward-timeout", 30*time.Second, "per-attempt budget for forwarded cluster requests")
	)
	if err := fs.Parse(args); err != nil {
		return nil, 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "argod: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return nil, 2
	}
	engine, err := sim.ParseInterp(*interp)
	if err != nil {
		fmt.Fprintf(stderr, "argod: %v\n", err)
		return nil, 2
	}
	if err := argo.ParseWCETEngine(*wcetEngine); err != nil {
		fmt.Fprintf(stderr, "argod: %v\n", err)
		return nil, 2
	}
	if *workers <= 0 || *timeout <= 0 || *grace <= 0 || *maxBody <= 0 {
		fmt.Fprintln(stderr, "argod: -workers, -timeout, -grace, and -max-body must be positive")
		return nil, 2
	}
	if *maxSessions <= 0 || *sessionTTL <= 0 || *passCacheMax < 0 || *vmCacheMax < 0 {
		fmt.Fprintln(stderr, "argod: -max-sessions and -session-ttl must be positive, -pass-cache-max and -vm-cache-max non-negative")
		return nil, 2
	}
	peerList, err := parsePeers(*peers)
	if err != nil {
		fmt.Fprintf(stderr, "argod: %v\n", err)
		return nil, 2
	}
	if *coordinator && len(peerList) == 0 {
		fmt.Fprintln(stderr, "argod: -coordinator requires -peers")
		return nil, 2
	}
	if *maxPerRep < 0 || *fwdTimeout <= 0 {
		fmt.Fprintln(stderr, "argod: -max-per-replica must be >= 0 and -forward-timeout positive")
		return nil, 2
	}
	return &config{
		addr:         *addr,
		grace:        *grace,
		passCacheMax: *passCacheMax,
		vmCacheMax:   *vmCacheMax,
		interp:       engine,
		service: service.Config{
			Workers:        *workers,
			CacheEntries:   *cache,
			Timeout:        *timeout,
			MaxBodyBytes:   *maxBody,
			MaxQueue:       *maxQueue,
			MaxSessions:    *maxSessions,
			SessionTTL:     *sessionTTL,
			WCETEngine:     *wcetEngine,
			Peers:          peerList,
			ForwardTimeout: *fwdTimeout,
			MaxPerReplica:  *maxPerRep,
		},
	}, 0
}

// parsePeers splits and validates the -peers list: comma-separated
// http(s) base URLs, empty entries ignored, nil for an empty flag.
func parsePeers(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var peers []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
			return nil, fmt.Errorf("-peers: %q is not an http(s) URL", p)
		}
		peers = append(peers, strings.TrimRight(p, "/"))
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers: no usable URLs in %q", s)
	}
	return peers, nil
}

func main() {
	cfg, code := parseFlags(os.Args[1:], os.Stderr)
	if cfg == nil {
		os.Exit(code)
	}
	// The engine is a process-wide default: every simulation the daemon
	// runs resolves InterpAuto to this choice.
	sim.SetInterp(cfg.interp)
	// Bound the process-wide pass cache; entry count and evictions are
	// exported as argo_pass_cache_{entries,evictions} in /debug/vars.
	pass.Global.SetMax(cfg.passCacheMax)
	// Bound the shared VM code cache likewise; observable as
	// argo_vm_shared_{entries,evictions} in /debug/vars.
	vm.SetSharedMax(cfg.vmCacheMax)

	srv := service.NewServer(cfg.service)
	// Publish the service metrics into the process-global expvar
	// registry too, so the stock expvar handler sees them.
	expvar.Publish("service", srv.Metrics())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.SetPrefix("argod: ")
	log.SetFlags(log.LstdFlags)
	if len(cfg.service.Peers) > 0 {
		log.Printf("coordinator over %d replicas: %v", len(cfg.service.Peers), cfg.service.Peers)
	}
	log.Printf("listening on %s (workers %d, cache %d entries, timeout %v, interp %s)",
		cfg.addr, cfg.service.Workers, cfg.service.CacheEntries, cfg.service.Timeout, cfg.interp)
	if err := srv.ListenAndServe(ctx, cfg.addr, cfg.grace); err != nil && err != http.ErrServerClosed {
		log.Printf("serve: %v", err)
		os.Exit(1)
	}
	log.Printf("shut down cleanly")
}
