// Command argod serves the ARGO analysis pipeline as a long-lived HTTP
// daemon: POST /v1/compile, /v1/optimize, and /v1/simulate run the full
// compile→schedule→WCET→simulate tool-chain with content-addressed
// result caching, singleflight deduplication of concurrent identical
// requests, a bounded worker pool with load shedding (429 +
// Retry-After once the wait queue saturates), per-request deadlines
// (timeout_ms), and deterministic fault injection for /v1/simulate
// (faults); /v1/session hosts interactive what-if sessions — stateful
// incremental re-analysis where each typed edit (replace-func,
// set-param, toggle-transform, set-policy, set-faults) re-runs only the
// dirty pass suffix, optionally streaming pass-by-pass progress over
// SSE; GET /v1/platforms and /v1/usecases enumerate the built-in
// targets and models; /healthz (liveness), /readyz (readiness: 503
// while draining after SIGTERM), and /debug/vars expose health and
// metrics. See docs/SERVICE.md.
//
// Examples:
//
//	argod                              # listen on :8321
//	argod -addr :8080 -workers 8 -timeout 30s
//	curl -s localhost:8321/v1/compile \
//	  -d '{"usecase":"polka","platform":"xentium4"}'
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"argo/internal/pass"
	"argo/internal/service"
	"argo/pkg/argo"
)

func main() {
	var (
		addr         = flag.String("addr", ":8321", "listen address")
		workers      = flag.Int("workers", runtime.NumCPU(), "max concurrent pipeline executions")
		cache        = flag.Int("cache", 256, "result cache capacity in entries (-1: unbounded)")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request pipeline budget")
		grace        = flag.Duration("grace", 10*time.Second, "graceful shutdown budget")
		maxBody      = flag.Int64("max-body", 4<<20, "max request body bytes")
		maxQueue     = flag.Int("max-queue", 0, "max queued requests before load shedding (0: 4x workers, -1: unbounded)")
		maxSessions  = flag.Int("max-sessions", argo.DefaultMaxSessions, "max live interactive sessions (LRU-evicted beyond)")
		sessionTTL   = flag.Duration("session-ttl", argo.DefaultSessionTTL, "idle expiry of interactive sessions")
		passCacheMax = flag.Int("pass-cache-max", 0, "max snapshots in the global pass cache (0: default bound)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "argod: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *workers <= 0 || *timeout <= 0 || *grace <= 0 || *maxBody <= 0 {
		fmt.Fprintln(os.Stderr, "argod: -workers, -timeout, -grace, and -max-body must be positive")
		os.Exit(2)
	}
	if *maxSessions <= 0 || *sessionTTL <= 0 || *passCacheMax < 0 {
		fmt.Fprintln(os.Stderr, "argod: -max-sessions and -session-ttl must be positive, -pass-cache-max non-negative")
		os.Exit(2)
	}
	// Bound the process-wide pass cache; entry count and evictions are
	// exported as argo_pass_cache_{entries,evictions} in /debug/vars.
	pass.Global.SetMax(*passCacheMax)

	srv := service.NewServer(service.Config{
		Workers:      *workers,
		CacheEntries: *cache,
		Timeout:      *timeout,
		MaxBodyBytes: *maxBody,
		MaxQueue:     *maxQueue,
		MaxSessions:  *maxSessions,
		SessionTTL:   *sessionTTL,
	})
	// Publish the service metrics into the process-global expvar
	// registry too, so the stock expvar handler sees them.
	expvar.Publish("service", srv.Metrics())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.SetPrefix("argod: ")
	log.SetFlags(log.LstdFlags)
	log.Printf("listening on %s (workers %d, cache %d entries, timeout %v)",
		*addr, *workers, *cache, *timeout)
	if err := srv.ListenAndServe(ctx, *addr, *grace); err != nil && err != http.ErrServerClosed {
		log.Printf("serve: %v", err)
		os.Exit(1)
	}
	log.Printf("shut down cleanly")
}
