package main

import (
	"bytes"
	"strings"
	"testing"

	"argo/internal/sim"
)

func parseCLI(t *testing.T, args ...string) (*config, int, string) {
	t.Helper()
	var errb bytes.Buffer
	cfg, code := parseFlags(args, &errb)
	return cfg, code, errb.String()
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, code, errb := parseCLI(t)
	if cfg == nil || code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if cfg.addr != ":8321" {
		t.Errorf("addr = %q, want :8321", cfg.addr)
	}
	if cfg.interp != sim.InterpVM {
		t.Errorf("interp = %v, want vm", cfg.interp)
	}
	if cfg.service.Workers <= 0 || cfg.service.CacheEntries != 256 {
		t.Errorf("unexpected service config: %+v", cfg.service)
	}
}

func TestParseFlagsInterp(t *testing.T) {
	cfg, code, errb := parseCLI(t, "-interp", "tree")
	if cfg == nil || code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if cfg.interp != sim.InterpTree {
		t.Errorf("interp = %v, want tree", cfg.interp)
	}
}

func TestParseFlagsUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},           // flag misuse
		{"positional"},            // unexpected arguments
		{"-interp", "jit"},        // unknown engine
		{"-wcet-engine", "tree"},  // unknown WCET engine
		{"-workers", "0"},         // non-positive worker pool
		{"-timeout", "-1s"},       // non-positive budget
		{"-max-sessions", "0"},    // non-positive session cap
		{"-pass-cache-max", "-1"}, // negative cache bound
	} {
		cfg, code, _ := parseCLI(t, args...)
		if cfg != nil || code != 2 {
			t.Errorf("args %v: cfg=%v exit %d, want nil, 2", args, cfg, code)
		}
	}
}

func TestParseFlagsWCETEngine(t *testing.T) {
	cfg, code, errb := parseCLI(t, "-wcet-engine", "both")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if cfg.service.WCETEngine != "both" {
		t.Errorf("service.WCETEngine = %q, want both", cfg.service.WCETEngine)
	}
}

func TestParseFlagsUnknownInterpMessage(t *testing.T) {
	_, _, errb := parseCLI(t, "-interp", "jit")
	if !strings.Contains(errb, "unknown interpreter") {
		t.Fatalf("missing interpreter error:\n%s", errb)
	}
}

func TestParseFlagsClusterMode(t *testing.T) {
	cfg, code, errb := parseCLI(t,
		"-peers", " http://n1:8321, http://n2:8321/ ,", "-coordinator",
		"-max-per-replica", "3", "-forward-timeout", "5s")
	if cfg == nil || code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	want := []string{"http://n1:8321", "http://n2:8321"}
	if len(cfg.service.Peers) != 2 || cfg.service.Peers[0] != want[0] || cfg.service.Peers[1] != want[1] {
		t.Errorf("peers = %v, want %v (trimmed, slash-stripped, empties dropped)", cfg.service.Peers, want)
	}
	if cfg.service.MaxPerReplica != 3 || cfg.service.ForwardTimeout.Seconds() != 5 {
		t.Errorf("cluster knobs: %+v", cfg.service)
	}
	// -peers alone implies coordinator mode; no peers means single mode.
	if cfg, code, _ = parseCLI(t, "-peers", "http://n1:8321"); cfg == nil || code != 0 || len(cfg.service.Peers) != 1 {
		t.Errorf("-peers without -coordinator rejected")
	}
	if cfg, code, _ = parseCLI(t); cfg == nil || code != 0 || cfg.service.Peers != nil {
		t.Errorf("default config has peers: %+v", cfg)
	}
}

func TestParseFlagsClusterUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-coordinator"},      // coordinator without peers
		{"-peers", "n1:8321"}, // not an http(s) URL
		{"-peers", " , ,"},    // no usable URLs
		{"-peers", "http://n1", "-max-per-replica", "-1"}, // negative bound
		{"-peers", "http://n1", "-forward-timeout", "0s"}, // non-positive budget
	} {
		cfg, code, _ := parseCLI(t, args...)
		if cfg != nil || code != 2 {
			t.Errorf("args %v: cfg=%v exit %d, want nil, 2", args, cfg, code)
		}
	}
}
