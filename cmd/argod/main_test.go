package main

import (
	"bytes"
	"strings"
	"testing"

	"argo/internal/sim"
)

func parseCLI(t *testing.T, args ...string) (*config, int, string) {
	t.Helper()
	var errb bytes.Buffer
	cfg, code := parseFlags(args, &errb)
	return cfg, code, errb.String()
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, code, errb := parseCLI(t)
	if cfg == nil || code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if cfg.addr != ":8321" {
		t.Errorf("addr = %q, want :8321", cfg.addr)
	}
	if cfg.interp != sim.InterpVM {
		t.Errorf("interp = %v, want vm", cfg.interp)
	}
	if cfg.service.Workers <= 0 || cfg.service.CacheEntries != 256 {
		t.Errorf("unexpected service config: %+v", cfg.service)
	}
}

func TestParseFlagsInterp(t *testing.T) {
	cfg, code, errb := parseCLI(t, "-interp", "tree")
	if cfg == nil || code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if cfg.interp != sim.InterpTree {
		t.Errorf("interp = %v, want tree", cfg.interp)
	}
}

func TestParseFlagsUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},           // flag misuse
		{"positional"},            // unexpected arguments
		{"-interp", "jit"},        // unknown engine
		{"-wcet-engine", "tree"},  // unknown WCET engine
		{"-workers", "0"},         // non-positive worker pool
		{"-timeout", "-1s"},       // non-positive budget
		{"-max-sessions", "0"},    // non-positive session cap
		{"-pass-cache-max", "-1"}, // negative cache bound
	} {
		cfg, code, _ := parseCLI(t, args...)
		if cfg != nil || code != 2 {
			t.Errorf("args %v: cfg=%v exit %d, want nil, 2", args, cfg, code)
		}
	}
}

func TestParseFlagsWCETEngine(t *testing.T) {
	cfg, code, errb := parseCLI(t, "-wcet-engine", "both")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if cfg.service.WCETEngine != "both" {
		t.Errorf("service.WCETEngine = %q, want both", cfg.service.WCETEngine)
	}
}

func TestParseFlagsUnknownInterpMessage(t *testing.T) {
	_, _, errb := parseCLI(t, "-interp", "jit")
	if !strings.Contains(errb, "unknown interpreter") {
		t.Fatalf("missing interpreter error:\n%s", errb)
	}
}
