# ARGO build/verify gates. `make check` is the CI entry point.

GO ?= go

.PHONY: all check fmt vet build test race bench benchsmoke profile passes fuzz cover soak clean

all: check

check: fmt vet build race benchsmoke soak

# gofmt must produce no output (no unformatted files).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run; writes the machine-readable report to
# BENCH_PR10.json, with BENCH_PR9.json (kept in-tree) as the baseline so
# the per-benchmark delta of this round (the sharded cluster tier:
# hash-ring placement, coordinator forwarding, batch) is recorded on
# top of the previous round's numbers.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ . | \
		$(GO) run ./cmd/benchjson -baseline BENCH_PR9.json -o BENCH_PR10.json

# CPU/heap profiles of the two simulator-bound experiment benchmarks,
# written under profiles/ (gitignored) for `go tool pprof`.
profile:
	mkdir -p profiles
	$(GO) test -run=^$$ -bench='BenchmarkE2Tightness$$' -benchtime=10x \
		-cpuprofile profiles/e2.cpu.prof -memprofile profiles/e2.mem.prof .
	$(GO) test -run=^$$ -bench='BenchmarkE5NoC$$' -benchtime=10x \
		-cpuprofile profiles/e5.cpu.prof -memprofile profiles/e5.mem.prof .

# One-iteration smoke run so `make check` catches bitrot in the
# benchmarks without paying for a full measurement.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Native-fuzzing smoke of every fuzz target: seed corpus plus FUZZTIME
# of random exploration per target (go's fuzz engine takes one target
# per invocation). CI runs this as the fuzz-smoke job; raise FUZZTIME
# locally for a real exploration session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz='^FuzzParseSCIL$$' -fuzztime=$(FUZZTIME) ./internal/scil
	$(GO) test -run=^$$ -fuzz='^FuzzADLPlatform$$' -fuzztime=$(FUZZTIME) ./internal/adl
	$(GO) test -run=^$$ -fuzz='^FuzzSessionEdit$$' -fuzztime=$(FUZZTIME) ./internal/session
	$(GO) test -run=^$$ -fuzz='^FuzzVMExec$$' -fuzztime=$(FUZZTIME) ./internal/ir/vm
	$(GO) test -run=^$$ -fuzz='^FuzzSnapshotRemap$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=^$$ -fuzz='^FuzzSlice$$' -fuzztime=$(FUZZTIME) ./internal/ir/slice
	$(GO) test -run=^$$ -fuzz='^FuzzHashRing$$' -fuzztime=$(FUZZTIME) ./internal/cluster

# Soak smokes, under the race detector: session churn (many sessions,
# randomized edits, eviction/TTL, differential verification) and the
# cluster scale-out check (2-replica coordinator must beat one
# constrained replica by >=1.5x on a cache-miss workload; skipped on
# single-core hosts).
soak:
	$(GO) test -race -run='^TestSessionSoak$$' -count=1 ./internal/session
	$(GO) test -race -run='^TestClusterSoakThroughput$$' -count=1 -v ./internal/service

# Statement coverage over the full module; prints the total and leaves
# cover.out (gitignored) for `go tool cover -html=cover.out`.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# Print the registered pass pipeline (name, artifacts, cacheability,
# feedback-loop membership).
passes:
	$(GO) run ./cmd/argocc -passes

clean:
	$(GO) clean ./...
