# ARGO build/verify gates. `make check` is the CI entry point.

GO ?= go

.PHONY: all check fmt vet build test race bench clean

all: check

check: fmt vet build race

# gofmt must produce no output (no unformatted files).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

clean:
	$(GO) clean ./...
