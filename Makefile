# ARGO build/verify gates. `make check` is the CI entry point.

GO ?= go

.PHONY: all check fmt vet build test race bench benchsmoke clean

all: check

check: fmt vet build race benchsmoke

# gofmt must produce no output (no unformatted files).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run; writes the machine-readable report (with the
# recorded pre-overhaul baselines) to BENCH_PR2.json.
bench:
	$(GO) test -bench=. -run=^$$ . | $(GO) run ./cmd/benchjson -o BENCH_PR2.json

# One-iteration smoke run so `make check` catches bitrot in the
# benchmarks without paying for a full measurement.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

clean:
	$(GO) clean ./...
