package argo_test

import (
	"fmt"

	"argo/pkg/argo"
)

// ExampleCompileSource compiles a tiny model and checks the guaranteed
// bound exists and the simulator stays within it.
func ExampleCompileSource() {
	src := `function r = f(v)
  r = 0
  for i = 1:16
    r = r + sqrt(abs(v(1, i)))
  end
endfunction`
	platform := argo.Platform("xentium2")
	art, err := argo.CompileSource(src, argo.DefaultOptions("f", []argo.ArgSpec{argo.MatrixArg(1, 16)}, platform))
	if err != nil {
		fmt.Println(err)
		return
	}
	in := make([]float64, 16)
	for i := range in {
		in[i] = float64(i)
	}
	rep, err := argo.Simulate(art, [][]float64{in})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("bound computed:", art.Bound() > 0)
	fmt.Println("within bound:", argo.CheckBounds(art, rep) == nil)
	// Output:
	// bound computed: true
	// within bound: true
}

// ExampleCompileDiagram compiles an Xcos-style dataflow model.
func ExampleCompileDiagram() {
	d := &argo.Diagram{
		Name:   "demo",
		Inputs: []string{"x"},
		Blocks: []argo.Block{
			{Name: "g", Kind: "gain", Params: map[string]float64{"k": 3}},
			{Name: "s", Kind: "sumall"},
		},
		Links: []argo.Link{
			{From: "x", To: "g", Port: 0},
			{From: "g", To: "s", Port: 0},
		},
		Outputs: []string{"s"},
	}
	art, err := argo.CompileDiagram(d, []argo.ArgSpec{argo.MatrixArg(2, 2)}, argo.Platform("xentium2"))
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := argo.Simulate(art, [][]float64{{1, 1, 1, 1}})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("sum of 3*ones(2,2):", rep.Results[0][0])
	// Output:
	// sum of 3*ones(2,2): 12
}

// ExampleOptimizeUseCase runs the iterative cross-layer optimization.
func ExampleOptimizeUseCase() {
	res, err := argo.OptimizeUseCase(argo.UseCaseByName("weaa"), argo.Platform("xentium4"))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("candidates tried:", len(res.History) > 3)
	fmt.Println("winner at least as good as baseline:",
		res.Best.Bound() <= res.History[0].Bound)
	// Output:
	// candidates tried: true
	// winner at least as good as baseline: true
}
