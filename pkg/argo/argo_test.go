package argo

import (
	"strings"
	"testing"
)

func TestPlatformLookup(t *testing.T) {
	for _, name := range PlatformNames() {
		if Platform(name) == nil {
			t.Errorf("Platform(%q) = nil", name)
		}
	}
	if Platform("bogus") != nil {
		t.Fatal("bogus platform")
	}
}

func TestPlatformJSONRoundTrip(t *testing.T) {
	p := Platform("leon3-2x2")
	data, err := EncodePlatform(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodePlatform(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name {
		t.Fatal("round trip")
	}
}

func TestCompileUseCaseAndSimulate(t *testing.T) {
	uc := UseCaseByName("polka")
	art, err := CompileUseCase(uc, Platform("xentium4"))
	if err != nil {
		t.Fatal(err)
	}
	if art.Bound() <= 0 {
		t.Fatal("no bound")
	}
	rep, err := Simulate(art, uc.Inputs(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBounds(art, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Describe(art), "polka") {
		t.Fatal(Describe(art))
	}
}

func TestCompileSourceAPI(t *testing.T) {
	src := `function r = f(v)
  r = 0
  for i = 1:16
    r = r + sqrt(abs(v(1, i)))
  end
endfunction`
	art, err := CompileSource(src, DefaultOptions("f", []ArgSpec{MatrixArg(1, 16)}, Platform("xentium2")))
	if err != nil {
		t.Fatal(err)
	}
	if art.Bound() <= 0 {
		t.Fatal("bound")
	}
	if !strings.Contains(EmitC(art), "core_0_main") {
		t.Fatal("EmitC")
	}
	if !strings.Contains(Explain(art), "cross-layer") {
		t.Fatal("Explain")
	}
}

func TestCompileDiagramAPI(t *testing.T) {
	d := &Diagram{
		Name:   "quick",
		Inputs: []string{"x"},
		Blocks: []Block{
			{Name: "g", Kind: "gain", Params: map[string]float64{"k": 3}},
			{Name: "s", Kind: "sumall"},
		},
		Links: []Link{
			{From: "x", To: "g", Port: 0},
			{From: "g", To: "s", Port: 0},
		},
		Outputs: []string{"s"},
	}
	art, err := CompileDiagram(d, []ArgSpec{MatrixArg(4, 4)}, Platform("xentium2"))
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 16)
	for i := range in {
		in[i] = 1
	}
	rep, err := Simulate(art, [][]float64{in})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0][0] != 48 { // sum(3 * ones(4,4))
		t.Fatalf("diagram result: %g", rep.Results[0][0])
	}
}

func TestOptimizeUseCase(t *testing.T) {
	uc := UseCaseByName("weaa")
	res, err := OptimizeUseCase(uc, Platform("xentium4"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || len(res.History) == 0 {
		t.Fatal("no optimization history")
	}
}

func TestRuntimeHeaderAndDiagramCodec(t *testing.T) {
	hdr := RuntimeHeader()
	for _, want := range []string{"argo_wait", "argo_dma_in", "ARGO_LIN", "argo_release_at"} {
		if !strings.Contains(hdr, want) {
			t.Fatalf("runtime header missing %q", want)
		}
	}
	d := &Diagram{
		Name:    "roundtrip",
		Inputs:  []string{"x"},
		Blocks:  []Block{{Name: "g", Kind: "gain", Params: map[string]float64{"k": 2}}},
		Links:   []Link{{From: "x", To: "g", Port: 0}},
		Outputs: []string{"g"},
	}
	data, err := EncodeDiagram(d)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeDiagram(data)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != "roundtrip" {
		t.Fatal("codec")
	}
}
