package argo_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"argo/pkg/argo"
)

// TestConcurrentCompile compiles every built-in use case on every
// built-in platform from concurrent goroutines (run with -race). The
// pipeline entry points must be reentrant: compilations share the
// use-case values and platform library but no mutable state, and every
// concurrent result must equal the sequential reference bound.
func TestConcurrentCompile(t *testing.T) {
	type pair struct {
		uc   *argo.UseCase
		plat *argo.PlatformDesc
	}
	var pairs []pair
	ref := make(map[string]int64)
	for _, uc := range argo.UseCases() {
		for _, name := range argo.PlatformNames() {
			plat := argo.Platform(name)
			art, err := argo.CompileUseCase(uc, plat)
			if err != nil {
				t.Fatalf("reference compile %s/%s: %v", uc.Name, name, err)
			}
			ref[uc.Name+"/"+plat.Name] = art.Bound()
			pairs = append(pairs, pair{uc, plat})
		}
	}

	const workersPerPair = 2
	var wg sync.WaitGroup
	errc := make(chan error, len(pairs)*workersPerPair)
	for _, p := range pairs {
		for w := 0; w < workersPerPair; w++ {
			wg.Add(1)
			go func(p pair) {
				defer wg.Done()
				art, err := argo.CompileUseCase(p.uc, p.plat)
				if err != nil {
					errc <- fmt.Errorf("%s/%s: %v", p.uc.Name, p.plat.Name, err)
					return
				}
				if got, want := art.Bound(), ref[p.uc.Name+"/"+p.plat.Name]; got != want {
					errc <- fmt.Errorf("%s/%s: concurrent bound %d != sequential %d",
						p.uc.Name, p.plat.Name, got, want)
				}
			}(p)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentSimulate runs the simulator over one shared *Artifacts
// from many goroutines: simulation must only read the compiled program,
// and every run must stay within the static bound.
func TestConcurrentSimulate(t *testing.T) {
	uc := argo.UseCaseByName("weaa")
	art, err := argo.CompileUseCase(uc, argo.Platform("xentium4"))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rep, err := argo.Simulate(art, uc.Inputs(seed))
			if err != nil {
				errc <- fmt.Errorf("seed %d: %v", seed, err)
				return
			}
			if err := argo.CheckBounds(art, rep); err != nil {
				errc <- fmt.Errorf("seed %d: %v", seed, err)
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestCompileContextCancelled verifies the context-aware entry points
// stop on an already-cancelled context.
func TestCompileContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	uc := argo.UseCaseByName("polka")
	if _, err := argo.CompileUseCaseContext(ctx, uc, argo.Platform("xentium4")); !errors.Is(err, context.Canceled) {
		t.Errorf("CompileUseCaseContext: got %v, want context.Canceled", err)
	}
	if _, err := argo.OptimizeUseCaseContext(ctx, uc, argo.Platform("xentium2")); !errors.Is(err, context.Canceled) {
		t.Errorf("OptimizeUseCaseContext: got %v, want context.Canceled", err)
	}
	art, err := argo.CompileUseCase(uc, argo.Platform("xentium4"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := argo.SimulateContext(ctx, art, uc.Inputs(1)); !errors.Is(err, context.Canceled) {
		t.Errorf("SimulateContext: got %v, want context.Canceled", err)
	}
}
