package argo

import (
	"context"
	"time"

	"argo/internal/session"
	"argo/internal/transform"
)

// Interactive what-if sessions (internal/session): a persistent store of
// compiled artifacts with a typed edit API, where each edit re-runs only
// the dirty pass suffix on a session-private pass cache and the result
// is guaranteed bit-identical to a cold compile of the edited source.
type (
	// Session is one interactive what-if session.
	Session = session.Session
	// SessionManager owns the live sessions of a process: bounded count,
	// LRU eviction, TTL expiry.
	SessionManager = session.Manager
	// SessionEdit is one typed what-if operation.
	SessionEdit = session.Edit
	// SessionEditResult reports one session analysis (creation or edit).
	SessionEditResult = session.EditResult
	// SessionApplyOptions tunes one edit (pass streaming, differential
	// verification).
	SessionApplyOptions = session.ApplyOptions
	// SessionInfo is one session's row in a listing.
	SessionInfo = session.Info
)

// Session edit operations (SessionEdit.Op).
const (
	SessionOpReplaceFunc     = session.OpReplaceFunc
	SessionOpSetParam        = session.OpSetParam
	SessionOpToggleTransform = session.OpToggleTransform
	SessionOpSetPolicy       = session.OpSetPolicy
	SessionOpSetFaults       = session.OpSetFaults
)

// Session manager defaults.
const (
	DefaultMaxSessions = session.DefaultMaxSessions
	DefaultSessionTTL  = session.DefaultTTL
)

// ErrSessionNotFound marks a session id that is not (or no longer) live.
var ErrSessionNotFound = session.ErrNotFound

// NewSession creates a standalone session (no manager) by cold-compiling
// source under opt.
func NewSession(ctx context.Context, source string, opt Options, faults FaultSpec) (*Session, *SessionEditResult, error) {
	return session.New(ctx, source, opt, faults)
}

// NewSessionManager returns a session manager holding at most max
// sessions (<= 0: DefaultMaxSessions) and expiring sessions idle longer
// than ttl (<= 0: DefaultSessionTTL).
func NewSessionManager(max int, ttl time.Duration) *SessionManager {
	return session.NewManager(max, ttl)
}

// SessionParamNames lists the ADL parameter paths a set-param edit
// accepts, sorted.
func SessionParamNames() []string { return session.ParamNames() }

// SessionResultFingerprint content-addresses a compilation result
// (schedule, bounds, windows, transformed IR). Two artifacts with equal
// fingerprints are bit-identical for every reported value; it is the
// equality the session differential contract is stated in.
func SessionResultFingerprint(a *Artifacts) string { return session.ResultFingerprint(a) }

// SessionCounters snapshots the process-wide session expvars (live,
// evicted, expired, edits).
func SessionCounters() (live, evicted, expired, edits int64) { return session.Counters() }

// TransformPassNames lists the predictability transformation passes a
// toggle-transform edit (or PassOptions.Disable) accepts.
func TransformPassNames() []string { return transform.PassNames() }
