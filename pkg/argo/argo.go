// Package argo is the public API of the ARGO WCET-aware parallelization
// tool-chain (DATE 2017, "WCET-Aware Parallelization of Model-Based
// Applications for Multi-Cores: the ARGO Approach").
//
// The tool-chain compiles model-based applications — Xcos-style dataflow
// diagrams and/or programs in a statically analysable Scilab subset —
// into explicitly parallel programs for predictable multi-core platforms,
// together with guaranteed worst-case execution time bounds:
//
//	platform := argo.Platform("xentium4")
//	uc := argo.UseCaseByName("polka")
//	art, err := argo.CompileUseCase(uc, platform)
//	fmt.Println(art.Bound(), art.WCETSpeedup())
//	rep, err := argo.Simulate(art, uc.Inputs(1))
//
// The heavy lifting lives in the internal packages (scil, ir, transform,
// htg, sched, wcet, mhp, syswcet, par, noc, sim, core); this package is a
// stable façade over them.
package argo

import (
	"context"
	"fmt"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/fault"
	"argo/internal/ir"
	"argo/internal/par"
	"argo/internal/pass"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/sim"
	"argo/internal/transform"
	"argo/internal/usecases"
	"argo/internal/wcet"
	"argo/internal/xcos"
)

// Re-exported types: the façade uses aliases so values flow freely
// between the public API and the internal packages.
type (
	// PlatformDesc is an ADL platform description.
	PlatformDesc = adl.Platform
	// Options configures a compilation.
	Options = core.Options
	// Artifacts is everything a compilation produces.
	Artifacts = core.Artifacts
	// OptimizeResult is the outcome of the iterative optimization.
	OptimizeResult = core.OptimizeResult
	// Candidate is one configuration of the iterative optimizer.
	Candidate = core.Candidate
	// UseCase is one of the ARGO validation applications.
	UseCase = usecases.UseCase
	// SimReport is a platform-simulation result.
	SimReport = sim.Report
	// FaultSpec selects a deterministic fault-injection scenario for a
	// simulation run (zero value: no injection).
	FaultSpec = fault.Spec
	// FaultStats reports what one faulty run actually injected.
	FaultStats = fault.Stats
	// Violation is one detected breach of the analytic bounds.
	Violation = fault.Violation
	// ArgSpec describes one entry argument.
	ArgSpec = ir.ArgSpec
	// Diagram is an Xcos-style dataflow model.
	Diagram = xcos.Diagram
	// Block is a dataflow block instance.
	Block = xcos.Block
	// Link is a dataflow connection.
	Link = xcos.Link
	// TransformOptions selects predictability transformations.
	TransformOptions = transform.Options
	// ParallelProgram is the explicitly parallel program model.
	ParallelProgram = par.Program
	// PassOptions configures the pass manager executing the pipeline
	// (disable transforms, toggle caching, per-pass dumps).
	PassOptions = core.PassOptions
	// PassDesc describes one registered pipeline pass.
	PassDesc = pass.Desc
	// PassTrace is the per-pass instrumentation record of a compilation
	// (available as Artifacts.PassTrace).
	PassTrace = pass.Trace
	// PassTiming is one entry of a PassTrace.
	PassTiming = pass.Timing
	// Interp selects the simulator execution engine (Options.Interp):
	// the compiled register-bytecode VM or the tree-walking oracle.
	Interp = sim.Interp
)

// Simulator execution engines. Both are observably bit-identical —
// results, traces, meter charges, and errors — so the choice only
// affects speed.
const (
	// InterpAuto defers to the process default (SetInterp).
	InterpAuto = sim.InterpAuto
	// InterpVM executes compiled register bytecode (the default).
	InterpVM = sim.InterpVM
	// InterpTree executes the tree-walking oracle.
	InterpTree = sim.InterpTree
)

// Policy selects the multi-core scheduling strategy.
type Policy = sched.Policy

// Scheduling policies.
const (
	PolicyOblivious       = sched.ListOblivious
	PolicyContentionAware = sched.ListContentionAware
	PolicyBranchBound     = sched.BranchBound
)

// Argument spec helpers.
var (
	// ScalarArg declares a runtime scalar entry argument.
	ScalarArg = ir.ScalarArg
	// ConstArg declares a compile-time-constant scalar argument.
	ConstArg = ir.ConstArg
	// MatrixArg declares a rows x cols matrix argument.
	MatrixArg = ir.MatrixArg
)

// Platform returns a built-in platform by name ("xentium4",
// "xentium8-tdm", "leon3-4x4", ...) or nil.
func Platform(name string) *PlatformDesc { return adl.Builtin(name) }

// PlatformNames lists the built-in platform names.
func PlatformNames() []string { return adl.BuiltinNames() }

// DecodePlatform parses a JSON ADL description.
func DecodePlatform(data []byte) (*PlatformDesc, error) { return adl.Decode(data) }

// EncodePlatform serializes an ADL description to JSON.
func EncodePlatform(p *PlatformDesc) ([]byte, error) { return adl.Encode(p) }

// UseCases returns the three ARGO validation applications.
func UseCases() []*UseCase { return usecases.All() }

// UseCaseByName returns a use case ("egpws", "weaa", "polka") or nil.
func UseCaseByName(name string) *UseCase { return usecases.ByName(name) }

// DefaultOptions returns the standard tool-chain configuration.
func DefaultOptions(entry string, args []ArgSpec, platform *PlatformDesc) Options {
	return core.DefaultOptions(entry, args, platform)
}

// CompileSource compiles scil source text end to end.
//
// All pipeline entry points of this package (CompileSource,
// CompileUseCase, CompileDiagram, Optimize, Simulate, ...) are
// goroutine-safe: compilations never share mutable state, and simulation
// only reads the compiled artifacts, so the same use case, platform, or
// *Artifacts value may be used from many goroutines concurrently.
func CompileSource(source string, opt Options) (*Artifacts, error) {
	return core.CompileSource(source, opt)
}

// CompileSourceContext is CompileSource with cancellation: the pipeline
// checks ctx at stage boundaries and returns ctx.Err() once it is
// cancelled or expired.
func CompileSourceContext(ctx context.Context, source string, opt Options) (*Artifacts, error) {
	return core.CompileSourceContext(ctx, source, opt)
}

// CompileUseCase compiles a use case with default options.
func CompileUseCase(u *UseCase, platform *PlatformDesc) (*Artifacts, error) {
	return CompileUseCaseContext(context.Background(), u, platform)
}

// CompileUseCaseContext is CompileUseCase with cancellation.
func CompileUseCaseContext(ctx context.Context, u *UseCase, platform *PlatformDesc) (*Artifacts, error) {
	p, err := u.Program()
	if err != nil {
		return nil, err
	}
	return core.CompileContext(ctx, p, core.DefaultOptions(u.Entry, u.Args, platform))
}

// CompileDiagram flattens an Xcos-style diagram and compiles it.
func CompileDiagram(d *Diagram, args []ArgSpec, platform *PlatformDesc) (*Artifacts, error) {
	prog, entry, err := d.Flatten()
	if err != nil {
		return nil, err
	}
	return core.Compile(prog, core.DefaultOptions(entry, args, platform))
}

// DefaultCandidates returns the default optimizer ladder for a platform
// with the given core count — the candidate list Optimize evaluates when
// cands is nil. It is exported so distributed coordinators can fan the
// same ladder out to remote candidate workers and reduce identically.
func DefaultCandidates(cores int) []Candidate { return core.DefaultCandidates(cores) }

// Optimize runs the iterative cross-layer optimization over the default
// candidate ladder (or cands when non-nil). Candidates are evaluated
// concurrently on up to baseOpt.Parallelism workers (0: GOMAXPROCS);
// results are bit-identical at every parallelism degree.
func Optimize(source string, baseOpt Options, cands []Candidate) (*OptimizeResult, error) {
	return OptimizeSourceContext(context.Background(), source, baseOpt, cands)
}

// OptimizeSourceContext is Optimize with cancellation: ctx is checked
// before each candidate compilation.
func OptimizeSourceContext(ctx context.Context, source string, baseOpt Options, cands []Candidate) (*OptimizeResult, error) {
	prog, err := scil.Parse(source)
	if err != nil {
		return nil, err
	}
	return core.OptimizeContext(ctx, prog, baseOpt, cands, 0)
}

// OptimizeUseCase runs the iterative optimization on a use case with
// default options (candidates evaluated on GOMAXPROCS workers).
func OptimizeUseCase(u *UseCase, platform *PlatformDesc) (*OptimizeResult, error) {
	return OptimizeUseCaseContext(context.Background(), u, platform)
}

// OptimizeUseCaseContext is OptimizeUseCase with cancellation: ctx is
// checked before each candidate compilation.
func OptimizeUseCaseContext(ctx context.Context, u *UseCase, platform *PlatformDesc) (*OptimizeResult, error) {
	p, err := u.Program()
	if err != nil {
		return nil, err
	}
	return core.OptimizeContext(ctx, p, core.DefaultOptions(u.Entry, u.Args, platform), nil, 0)
}

// Simulate executes the compiled parallel program on the platform
// simulator with the given inputs.
func Simulate(a *Artifacts, inputs [][]float64) (*SimReport, error) {
	return core.SimulateContext(context.Background(), a, inputs)
}

// SimulateContext is Simulate with cancellation: the simulator checks
// ctx between task executions and periodically inside its event loop.
// The run is adapted as one "simulate" pass, so it shows up in the
// process-wide pass metrics like every pipeline stage.
func SimulateContext(ctx context.Context, a *Artifacts, inputs [][]float64) (*SimReport, error) {
	return core.SimulateContext(ctx, a, inputs)
}

// SimulateFaulty executes the compiled program under deterministic,
// seed-driven fault injection: shared-memory access jitter and NoC link
// stalls within the statically analyzed interference budgets, and task
// execution inflation within (or, for spec.ExecInflation > 1, beyond)
// the per-task WCET bound. A zero spec is bit-identical to Simulate.
func SimulateFaulty(a *Artifacts, inputs [][]float64, spec FaultSpec) (*SimReport, error) {
	return core.SimulateFaultyContext(context.Background(), a, inputs, spec)
}

// SimulateFaultyContext is SimulateFaulty with cancellation.
func SimulateFaultyContext(ctx context.Context, a *Artifacts, inputs [][]float64, spec FaultSpec) (*SimReport, error) {
	return core.SimulateFaultyContext(ctx, a, inputs, spec)
}

// SetInterp selects the process-wide simulator execution engine by flag
// spelling: "vm" (compiled register bytecode, the default), "tree" (the
// tree-walking oracle), or "auto"/"" to restore the default. It governs
// what InterpAuto resolves to; per-run choice goes through
// Options.Interp instead. Returns an error for unknown modes.
func SetInterp(mode string) error {
	i, err := sim.ParseInterp(mode)
	if err != nil {
		return err
	}
	sim.SetInterp(i)
	return nil
}

// InterpMode reports the engine simulation runs currently default to
// ("vm" or "tree").
func InterpMode() string { return sim.DefaultInterp().String() }

// WCETEngines lists the valid Options.WCETEngine spellings: every
// registered code-level WCET engine plus "both" (IPET bounds with the
// exact engine cross-checked on every region).
func WCETEngines() []string { return wcet.SelectionNames() }

// ParseWCETEngine validates an Options.WCETEngine spelling ("", "ipet",
// "mc", "both") without compiling anything — tools use it to reject bad
// flag values before doing work.
func ParseWCETEngine(spec string) error {
	_, err := wcet.ParseSelection(spec)
	return err
}

// DescribePasses renders the registered pass pipeline the options
// select as a fixed-width table (name, input/output artifact,
// cacheability, feedback-loop membership) — the same listing
// `argocc -passes` prints.
func DescribePasses(opt Options) (string, error) {
	ds, err := core.DescribePipeline(opt)
	if err != nil {
		return "", err
	}
	return pass.FormatDescs(ds), nil
}

// PassNames lists every pass name of the pipeline the options select,
// sorted (nil if the configuration is invalid).
func PassNames(opt Options) []string { return core.PassNames(opt) }

// CheckBounds verifies the soundness contract (measured within bounds)
// for one simulation run.
func CheckBounds(a *Artifacts, rep *SimReport) error {
	return sim.CheckAgainstBounds(a.Parallel, rep)
}

// Violations reports every detected breach of the analytic bounds in a
// simulation run as structured records (empty when the run is sound).
// Under fault injection within the modeled worst case this must stay
// empty; over-bound injection must surface here.
func Violations(a *Artifacts, rep *SimReport) []Violation {
	return sim.Violations(a.Parallel, rep)
}

// Explain renders the cross-layer report of a compilation.
func Explain(a *Artifacts) string { return core.Explain(a) }

// EmitC renders the generated parallel C code.
func EmitC(a *Artifacts) string { return a.Parallel.EmitC() }

// RuntimeHeader returns the argo_rt.h runtime interface the generated C
// code targets.
func RuntimeHeader() string { return par.RuntimeHeader }

// EncodeDiagram serializes a dataflow model to its JSON file format.
func EncodeDiagram(d *Diagram) ([]byte, error) { return xcos.EncodeJSON(d) }

// DecodeDiagram parses and validates a dataflow model file.
func DecodeDiagram(data []byte) (*Diagram, error) { return xcos.DecodeJSON(data) }

// Version identifies the library.
const Version = "1.0.0"

// Describe summarizes a compilation in one line.
func Describe(a *Artifacts) string {
	return fmt.Sprintf("%s on %s: %d tasks on %d cores, system WCET bound %d cycles (%.2fx vs sequential)",
		a.Options.Entry, a.Options.Platform.Name, len(a.Graph.Nodes),
		a.Options.Platform.NumCores(), a.Bound(), a.WCETSpeedup())
}
