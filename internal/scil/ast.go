package scil

import (
	"fmt"
	"strings"
)

// Program is a parsed scil source unit: an ordered list of function
// definitions. Function names are unique within a program.
type Program struct {
	Funcs []*FuncDecl
}

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FuncDecl is one "function ... endfunction" definition.
type FuncDecl struct {
	Name    string
	Params  []string
	Results []string
	Body    []Stmt
	Pos     Pos
	Pragmas []string // @-pragmas attached immediately before the declaration
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// AssignStmt assigns RHS to one or more left-hand sides. Multi-target
// assignments ([a, b] = f(...)) have len(LHS) > 1 and RHS must be a call.
type AssignStmt struct {
	LHS []*LValue
	RHS Expr
	Pos Pos
}

// LValue is an assignable location: a variable or an indexed element.
type LValue struct {
	Name  string
	Index []Expr // nil for whole-variable assignment
	Pos   Pos
}

// ForStmt is "for v = Lo:Hi" or "for v = Lo:Step:Hi".
type ForStmt struct {
	Var  string
	Lo   Expr
	Step Expr // nil means 1
	Hi   Expr
	Body []Stmt
	Pos  Pos
}

// WhileStmt is a while loop; Bound is the worst-case iteration count from
// the //@bound pragma (0 if absent — rejected later by the WCET pipeline).
type WhileStmt struct {
	Cond  Expr
	Body  []Stmt
	Bound int
	Pos   Pos
}

// IfStmt is an if/elseif/else chain; Elifs are flattened into nested IfStmt
// by the parser, so only Then/Else remain.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// ExprStmt is a bare expression evaluated for effect (typically a call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt skips to the next iteration of the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ReturnStmt returns from the enclosing function; results are the current
// values of the declared result variables.
type ReturnStmt struct{ Pos Pos }

func (*AssignStmt) stmtNode()   {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*ExprStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}

// StmtPos returns the statement's source position.
func (s *AssignStmt) StmtPos() Pos   { return s.Pos }
func (s *ForStmt) StmtPos() Pos      { return s.Pos }
func (s *WhileStmt) StmtPos() Pos    { return s.Pos }
func (s *IfStmt) StmtPos() Pos       { return s.Pos }
func (s *ExprStmt) StmtPos() Pos     { return s.Pos }
func (s *BreakStmt) StmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) StmtPos() Pos { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos   { return s.Pos }

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	Pos   Pos
}

// StringLit is a string literal (used only as arguments to diagnostic
// builtins; strings are not first-class values).
type StringLit struct {
	Value string
	Pos   Pos
}

// Ident is a variable reference.
type Ident struct {
	Name string
	Pos  Pos
}

// CallExpr is f(args) — a user function call, a builtin call, or a matrix
// indexing expression; the distinction is resolved by the checker and
// recorded in Kind.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
	Kind CallKind // set by the checker
}

// CallKind classifies a CallExpr after semantic analysis.
type CallKind int

// CallExpr classifications.
const (
	CallUnresolved CallKind = iota
	CallIndex               // matrix indexing a(i,j)
	CallBuiltin             // builtin function
	CallUser                // user-defined function
)

// BinExpr is a binary operation.
type BinExpr struct {
	Op   Kind // PLUS, MINUS, STAR, SLASH, CARET, EQ, NEQ, LT, LE, GT, GE, AND, OR, DOTSTAR, DOTSLASH
	X, Y Expr
	Pos  Pos
}

// UnExpr is unary minus or logical not.
type UnExpr struct {
	Op  Kind // MINUS or NOT
	X   Expr
	Pos Pos
}

// MatrixLit is a [a, b; c, d] literal; Rows is a list of rows of equal width.
type MatrixLit struct {
	Rows [][]Expr
	Pos  Pos
}

// RangeExpr is lo:hi or lo:step:hi appearing outside a for header (it
// evaluates to a row vector).
type RangeExpr struct {
	Lo, Step, Hi Expr // Step nil means 1
	Pos          Pos
}

func (*NumberLit) exprNode() {}
func (*StringLit) exprNode() {}
func (*Ident) exprNode()     {}
func (*CallExpr) exprNode()  {}
func (*BinExpr) exprNode()   {}
func (*UnExpr) exprNode()    {}
func (*MatrixLit) exprNode() {}
func (*RangeExpr) exprNode() {}

// ExprPos returns the expression's source position.
func (e *NumberLit) ExprPos() Pos { return e.Pos }
func (e *StringLit) ExprPos() Pos { return e.Pos }
func (e *Ident) ExprPos() Pos     { return e.Pos }
func (e *CallExpr) ExprPos() Pos  { return e.Pos }
func (e *BinExpr) ExprPos() Pos   { return e.Pos }
func (e *UnExpr) ExprPos() Pos    { return e.Pos }
func (e *MatrixLit) ExprPos() Pos { return e.Pos }
func (e *RangeExpr) ExprPos() Pos { return e.Pos }

// FormatExpr renders an expression as scil source, for diagnostics.
func FormatExpr(e Expr) string {
	var sb strings.Builder
	fmtExpr(&sb, e)
	return sb.String()
}

func fmtExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *NumberLit:
		fmt.Fprintf(sb, "%g", x.Value)
	case *StringLit:
		fmt.Fprintf(sb, "%q", x.Value)
	case *Ident:
		sb.WriteString(x.Name)
	case *CallExpr:
		sb.WriteString(x.Name)
		sb.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmtExpr(sb, a)
		}
		sb.WriteString(")")
	case *BinExpr:
		sb.WriteString("(")
		fmtExpr(sb, x.X)
		sb.WriteString(" " + x.Op.String() + " ")
		fmtExpr(sb, x.Y)
		sb.WriteString(")")
	case *UnExpr:
		sb.WriteString(x.Op.String())
		fmtExpr(sb, x.X)
	case *MatrixLit:
		sb.WriteString("[")
		for i, row := range x.Rows {
			if i > 0 {
				sb.WriteString("; ")
			}
			for j, el := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				fmtExpr(sb, el)
			}
		}
		sb.WriteString("]")
	case *RangeExpr:
		fmtExpr(sb, x.Lo)
		sb.WriteString(":")
		if x.Step != nil {
			fmtExpr(sb, x.Step)
			sb.WriteString(":")
		}
		fmtExpr(sb, x.Hi)
	default:
		sb.WriteString("?expr?")
	}
}
