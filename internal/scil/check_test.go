package scil

import (
	"strings"
	"testing"
)

func checkErrs(t *testing.T, src string, mode CheckMode) []error {
	t.Helper()
	p := mustParse(t, src)
	return Check(p, mode)
}

func TestCheckValidProgram(t *testing.T) {
	errs := checkErrs(t, `
function [s, m] = stats(v)
  s = sum(v)
  m = s / length(v)
endfunction

function r = f(n)
  v = zeros(1, n)
  for i = 1:n
    v(i) = i * i
  end
  [s, m] = stats(v)
  r = s - m
endfunction`, CheckWCET)
	if len(errs) != 0 {
		t.Fatalf("unexpected: %v", errs)
	}
}

func TestCheckResolvesCallKinds(t *testing.T) {
	p := mustParse(t, `
function r = g(x)
  r = x * 2
endfunction

function r = f(a)
  m = zeros(2, 2)
  r = m(1, 1) + g(a) + abs(a)
endfunction`)
	if errs := Check(p, CheckBasic); len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	rhs := p.Func("f").Body[1].(*AssignStmt).RHS
	var kinds []CallKind
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *CallExpr:
			kinds = append(kinds, x.Kind)
		case *BinExpr:
			walk(x.X)
			walk(x.Y)
		}
	}
	walk(rhs)
	want := []CallKind{CallIndex, CallUser, CallBuiltin}
	if len(kinds) != 3 {
		t.Fatalf("kinds: %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("call %d: kind %d, want %d", i, kinds[i], want[i])
		}
	}
}

func TestCheckUndefinedVariable(t *testing.T) {
	errs := checkErrs(t, `
function r = f(x)
  r = x + undefined_name
endfunction`, CheckBasic)
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "undefined") {
		t.Fatalf("errs: %v", errs)
	}
}

func TestCheckUnassignedResult(t *testing.T) {
	errs := checkErrs(t, `
function r = f(x)
  y = x
endfunction`, CheckBasic)
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "never assigned") {
		t.Fatalf("errs: %v", errs)
	}
}

func TestCheckWhileBoundRequiredOnlyInWCETMode(t *testing.T) {
	src := `
function r = f(x)
  r = x
  while r > 1
    r = r / 2
  end
endfunction`
	if errs := checkErrs(t, src, CheckBasic); len(errs) != 0 {
		t.Fatalf("basic mode should accept: %v", errs)
	}
	errs := checkErrs(t, src, CheckWCET)
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "@bound") {
		t.Fatalf("WCET mode errs: %v", errs)
	}
}

func TestCheckRecursionRejected(t *testing.T) {
	errs := checkErrs(t, `
function r = a(x)
  r = b(x)
endfunction
function r = b(x)
  r = a(x)
endfunction`, CheckWCET)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "recursive") {
			found = true
		}
	}
	if !found {
		t.Fatalf("errs: %v", errs)
	}
}

func TestCheckSelfRecursionRejected(t *testing.T) {
	errs := checkErrs(t, `
function r = f(x)
  r = f(x - 1)
endfunction`, CheckWCET)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "recursive") {
			found = true
		}
	}
	if !found {
		t.Fatalf("errs: %v", errs)
	}
}

func TestCheckArityErrors(t *testing.T) {
	errs := checkErrs(t, `
function r = g(a, b)
  r = a + b
endfunction
function r = f(x)
  r = g(x) + zeros(1, 2, 3)
endfunction`, CheckBasic)
	if len(errs) < 2 {
		t.Fatalf("want 2+ arity errors, got: %v", errs)
	}
}

func TestCheckBreakOutsideLoop(t *testing.T) {
	errs := checkErrs(t, `
function r = f(x)
  r = x
  break
endfunction`, CheckBasic)
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "break") {
		t.Fatalf("errs: %v", errs)
	}
}

func TestCheckDuplicateParams(t *testing.T) {
	errs := checkErrs(t, `
function r = f(x, x)
  r = x
endfunction`, CheckBasic)
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "duplicate parameter") {
		t.Fatalf("errs: %v", errs)
	}
}

func TestCheckVariableShadowsBuiltinIndexing(t *testing.T) {
	// "sum" assigned as a variable: sum(2) then means indexing, needing
	// 1-2 subscripts — valid — and resolves as CallIndex.
	p := mustParse(t, `
function r = f(x)
  sum = [10, 20, 30]
  r = sum(2)
endfunction`)
	if errs := Check(p, CheckBasic); len(errs) != 0 {
		t.Fatalf("errs: %v", errs)
	}
	rhs := p.Func("f").Body[1].(*AssignStmt).RHS.(*CallExpr)
	if rhs.Kind != CallIndex {
		t.Fatalf("kind = %d, want CallIndex", rhs.Kind)
	}
	// And the interpreter agrees.
	out, err := NewInterp(p).Call("f", Scalar(0))
	if err != nil || out[0].ScalarVal() != 20 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}

func TestBuiltinTableComplete(t *testing.T) {
	names := BuiltinNames()
	if len(names) < 20 {
		t.Fatalf("only %d builtins registered", len(names))
	}
	for _, n := range names {
		b := LookupBuiltin(n)
		if b == nil || b.Eval == nil || b.MaxArgs < b.MinArgs || b.Cost <= 0 {
			t.Errorf("builtin %q malformed: %+v", n, b)
		}
	}
}
