package scil

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func run1(t *testing.T, src, fn string, args ...Value) Value {
	t.Helper()
	p := mustParse(t, src)
	if errs := Check(p, CheckBasic); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	out, err := NewInterp(p).Call(fn, args...)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("want 1 result, got %d", len(out))
	}
	return out[0]
}

func TestInterpArithmetic(t *testing.T) {
	v := run1(t, `
function r = f(a, b)
  r = (a + b) * 2 - b / 4 + a ^ 2
endfunction`, "f", Scalar(3), Scalar(8))
	want := (3.0+8.0)*2 - 8.0/4 + 9.0
	if v.ScalarVal() != want {
		t.Fatalf("got %g, want %g", v.ScalarVal(), want)
	}
}

func TestInterpForLoopSum(t *testing.T) {
	v := run1(t, `
function r = f(n)
  r = 0
  for i = 1:n
    r = r + i
  end
endfunction`, "f", Scalar(100))
	if v.ScalarVal() != 5050 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpForLoopStepAndDown(t *testing.T) {
	v := run1(t, `
function r = f(n)
  r = 0
  for i = n:-1:1
    r = r + i
  end
  for j = 0:2:10
    r = r + j
  end
endfunction`, "f", Scalar(4))
	if v.ScalarVal() != 10+30 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpMatrixOps(t *testing.T) {
	v := run1(t, `
function r = f(n)
  m = zeros(n, n)
  for i = 1:n
    for j = 1:n
      m(i, j) = i * 10 + j
    end
  end
  r = m(2, 3) + sum(m) / 100
endfunction`, "f", Scalar(3))
	// m = [11 12 13; 21 22 23; 31 32 33]; sum = 198; m(2,3)=23
	if v.ScalarVal() != 23+1.98 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpMatrixProduct(t *testing.T) {
	v := run1(t, `
function r = f(x)
  a = [1, 2; 3, 4]
  b = [5, 6; 7, 8]
  c = a * b
  r = c(1, 1) + c(2, 2)
endfunction`, "f", Scalar(0))
	// a*b = [19 22; 43 50]
	if v.ScalarVal() != 19+50 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpElementwiseVsMatrixMul(t *testing.T) {
	v := run1(t, `
function r = f(x)
  a = [1, 2; 3, 4]
  c = a .* a
  r = c(2, 2)
endfunction`, "f", Scalar(0))
	if v.ScalarVal() != 16 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpWhileAndBreak(t *testing.T) {
	v := run1(t, `
function r = f(x)
  r = 0
  //@bound 100
  while x > 1
    x = x / 2
    r = r + 1
  end
  for i = 1:10
    if i == 4 then
      break
    end
    r = r + 100
  end
endfunction`, "f", Scalar(64))
	if v.ScalarVal() != 6+300 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpWhileBoundViolation(t *testing.T) {
	p := mustParse(t, `
function r = f(x)
  r = 0
  //@bound 3
  while x > 0
    r = r + 1
  end
endfunction`)
	_, err := NewInterp(p).Call("f", Scalar(1))
	if err == nil || !strings.Contains(err.Error(), "@bound") {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpUserCallsAndMultiAssign(t *testing.T) {
	v := run1(t, `
function [q, r] = divmod(a, b)
  q = floor(a / b)
  r = a - q * b
endfunction

function y = f(x)
  [d, m] = divmod(x, 7)
  y = d * 1000 + m
endfunction`, "f", Scalar(53))
	if v.ScalarVal() != 7*1000+4 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpBuiltins(t *testing.T) {
	v := run1(t, `
function r = f(x)
  r = abs(-3) + sqrt(16) + max(2, 9) + min(2, 9) + floor(2.7) + modulo(17, 5)
endfunction`, "f", Scalar(0))
	if v.ScalarVal() != 3+4+9+2+2+2 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpTrig(t *testing.T) {
	v := run1(t, `
function r = f(x)
  r = sin(x)^2 + cos(x)^2
endfunction`, "f", Scalar(0.7))
	if math.Abs(v.ScalarVal()-1) > 1e-12 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpRangeVector(t *testing.T) {
	v := run1(t, `
function r = f(n)
  v = 1:n
  r = sum(v) + length(v)
endfunction`, "f", Scalar(10))
	if v.ScalarVal() != 55+10 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpLinearIndexingColumnMajor(t *testing.T) {
	// Scilab linear indexing is column-major: for [1 2; 3 4], a(2) == 3.
	v := run1(t, `
function r = f(x)
  a = [1, 2; 3, 4]
  r = a(2) * 10 + a(3)
endfunction`, "f", Scalar(0))
	if v.ScalarVal() != 3*10+2 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpConditionTruthiness(t *testing.T) {
	v := run1(t, `
function r = f(a, b)
  r = 0
  if a > 1 & b > 1 then
    r = r + 1
  end
  if a > 100 | b > 1 then
    r = r + 10
  end
  if ~(a == b) then
    r = r + 100
  end
endfunction`, "f", Scalar(2), Scalar(3))
	if v.ScalarVal() != 111 {
		t.Fatalf("got %g", v.ScalarVal())
	}
}

func TestInterpErrors(t *testing.T) {
	cases := []struct {
		src  string
		args []Value
		want string
	}{
		{`function r = f(x)
r = y + 1
endfunction`, []Value{Scalar(1)}, "undefined"},
		{`function r = f(x)
m = zeros(2, 2)
r = m(5, 1)
endfunction`, []Value{Scalar(1)}, "out of range"},
		{`function r = f(x)
m(1) = 3
r = 0
endfunction`, []Value{Scalar(1)}, "undefined variable"},
		{`function r = f(x)
a = [1, 2]
b = [1, 2, 3]
r = sum(a + b)
endfunction`, []Value{Scalar(1)}, "shape mismatch"},
	}
	for _, tc := range cases {
		p, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		_, err = NewInterp(p).Call("f", tc.args...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("src %q: err = %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestInterpRecursionDepthLimit(t *testing.T) {
	p := mustParse(t, `
function r = f(x)
  r = f(x)
endfunction`)
	_, err := NewInterp(p).Call("f", Scalar(1))
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v", err)
	}
}

// Property: sum over 1..n equals n(n+1)/2 for the interpreted program.
func TestInterpGaussProperty(t *testing.T) {
	p := mustParse(t, `
function r = gauss(n)
  r = 0
  for i = 1:n
    r = r + i
  end
endfunction`)
	in := NewInterp(p)
	f := func(n uint8) bool {
		m := int(n % 200)
		out, err := in.Call("gauss", Scalar(float64(m)))
		if err != nil {
			return false
		}
		return out[0].ScalarVal() == float64(m*(m+1)/2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix transpose-free sum invariance — summing a matrix built
// from (i, j) products is symmetric in construction order.
func TestInterpSumOrderProperty(t *testing.T) {
	srcRow := `
function r = f(n)
  m = zeros(n, n)
  for i = 1:n
    for j = 1:n
      m(i, j) = i * j
    end
  end
  r = sum(m)
endfunction`
	srcCol := `
function r = f(n)
  m = zeros(n, n)
  for j = 1:n
    for i = 1:n
      m(i, j) = i * j
    end
  end
  r = sum(m)
endfunction`
	pr := mustParse(t, srcRow)
	pc := mustParse(t, srcCol)
	f := func(n uint8) bool {
		m := float64(1 + n%12)
		a, err1 := NewInterp(pr).Call("f", Scalar(m))
		b, err2 := NewInterp(pc).Call("f", Scalar(m))
		return err1 == nil && err2 == nil && a[0].ScalarVal() == b[0].ScalarVal()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueLinearIndexRoundTrip(t *testing.T) {
	f := func(r8, c8 uint8) bool {
		r := 1 + int(r8%6)
		c := 1 + int(c8%6)
		v := NewMatrix(r, c)
		n := 0.0
		for k := 1; k <= r*c; k++ {
			v.SetLin(k, n)
			if v.Lin(k) != n {
				return false
			}
			n++
		}
		// All elements visited exactly once.
		seen := map[float64]bool{}
		for _, x := range v.Data {
			if seen[x] {
				return false
			}
			seen[x] = true
		}
		return len(seen) == r*c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStmtsExecutedCounts(t *testing.T) {
	p := mustParse(t, `
function r = f(n)
  r = 0
  for i = 1:n
    r = r + 1
  end
endfunction`)
	in := NewInterp(p)
	if _, err := in.Call("f", Scalar(5)); err != nil {
		t.Fatal(err)
	}
	small := in.StmtsExecuted()
	if _, err := in.Call("f", Scalar(50)); err != nil {
		t.Fatal(err)
	}
	if in.StmtsExecuted() <= small {
		t.Fatalf("longer input should execute more statements: %d vs %d", in.StmtsExecuted(), small)
	}
}
