package scil

import (
	"fmt"
	"math"
)

// Interp is the reference interpreter for scil programs. It is the
// semantic oracle of the tool-chain: the IR lowering and every program
// transformation must preserve interpreter-observable results.
type Interp struct {
	prog *Program
	// Fuel bounds the total number of executed statements, protecting
	// tests against unbounded while loops. Zero means the default.
	Fuel int

	used int
}

// DefaultFuel is the default statement budget for one Call.
const DefaultFuel = 50_000_000

// NewInterp returns an interpreter for prog.
func NewInterp(prog *Program) *Interp { return &Interp{prog: prog, Fuel: DefaultFuel} }

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type env struct {
	vars map[string]Value
}

// Call invokes the named function with the given arguments and returns its
// results in declaration order.
func (in *Interp) Call(name string, args ...Value) ([]Value, error) {
	in.used = 0
	return in.call(name, args, 0)
}

// StmtsExecuted reports how many statements the last Call executed; the
// simulator uses this as the architecture-independent path length.
func (in *Interp) StmtsExecuted() int { return in.used }

func (in *Interp) call(name string, args []Value, depth int) ([]Value, error) {
	if depth > 64 {
		return nil, fmt.Errorf("scil: call depth limit exceeded in %q (recursion?)", name)
	}
	f := in.prog.Func(name)
	if f == nil {
		return nil, fmt.Errorf("scil: undefined function %q", name)
	}
	if len(args) != len(f.Params) {
		return nil, fmt.Errorf("scil: %s expects %d arguments, got %d", name, len(f.Params), len(args))
	}
	e := &env{vars: make(map[string]Value, len(f.Params)+len(f.Results)+8)}
	for i, p := range f.Params {
		e.vars[p] = args[i].Clone()
	}
	if _, err := in.block(f.Body, e, depth); err != nil {
		return nil, err
	}
	out := make([]Value, len(f.Results))
	for i, r := range f.Results {
		v, ok := e.vars[r]
		if !ok {
			return nil, fmt.Errorf("scil: %s: result variable %q never assigned", name, r)
		}
		out[i] = v
	}
	return out, nil
}

func (in *Interp) block(stmts []Stmt, e *env, depth int) (ctrl, error) {
	for _, s := range stmts {
		c, err := in.stmt(s, e, depth)
		if err != nil {
			return ctrlNone, err
		}
		if c != ctrlNone {
			return c, nil
		}
	}
	return ctrlNone, nil
}

func (in *Interp) burn(pos Pos) error {
	in.used++
	fuel := in.Fuel
	if fuel <= 0 {
		fuel = DefaultFuel
	}
	if in.used > fuel {
		return errf(pos, "execution budget exhausted (possible unbounded loop)")
	}
	return nil
}

func (in *Interp) stmt(s Stmt, e *env, depth int) (ctrl, error) {
	if err := in.burn(s.StmtPos()); err != nil {
		return ctrlNone, err
	}
	switch st := s.(type) {
	case *AssignStmt:
		return ctrlNone, in.assign(st, e, depth)
	case *ExprStmt:
		_, err := in.eval(st.X, e, depth)
		return ctrlNone, err
	case *IfStmt:
		c, err := in.eval(st.Cond, e, depth)
		if err != nil {
			return ctrlNone, err
		}
		if c.Truthy() {
			return in.block(st.Then, e, depth)
		}
		return in.block(st.Else, e, depth)
	case *ForStmt:
		return in.forLoop(st, e, depth)
	case *WhileStmt:
		for iter := 0; ; iter++ {
			if err := in.burn(st.Pos); err != nil {
				return ctrlNone, err
			}
			c, err := in.eval(st.Cond, e, depth)
			if err != nil {
				return ctrlNone, err
			}
			if !c.Truthy() {
				return ctrlNone, nil
			}
			if st.Bound > 0 && iter >= st.Bound {
				return ctrlNone, errf(st.Pos, "while loop exceeded its declared @bound %d", st.Bound)
			}
			ctl, err := in.block(st.Body, e, depth)
			if err != nil {
				return ctrlNone, err
			}
			switch ctl {
			case ctrlBreak:
				return ctrlNone, nil
			case ctrlReturn:
				return ctrlReturn, nil
			}
		}
	case *BreakStmt:
		return ctrlBreak, nil
	case *ContinueStmt:
		return ctrlContinue, nil
	case *ReturnStmt:
		return ctrlReturn, nil
	}
	return ctrlNone, errf(s.StmtPos(), "unknown statement type %T", s)
}

func (in *Interp) forLoop(st *ForStmt, e *env, depth int) (ctrl, error) {
	lo, err := in.eval(st.Lo, e, depth)
	if err != nil {
		return ctrlNone, err
	}
	hi, err := in.eval(st.Hi, e, depth)
	if err != nil {
		return ctrlNone, err
	}
	step := 1.0
	if st.Step != nil {
		sv, err := in.eval(st.Step, e, depth)
		if err != nil {
			return ctrlNone, err
		}
		step = sv.ScalarVal()
	}
	if step == 0 {
		return ctrlNone, errf(st.Pos, "for loop with zero step")
	}
	for v := lo.ScalarVal(); (step > 0 && v <= hi.ScalarVal()+1e-12) || (step < 0 && v >= hi.ScalarVal()-1e-12); v += step {
		if err := in.burn(st.Pos); err != nil {
			return ctrlNone, err
		}
		e.vars[st.Var] = Scalar(v)
		ctl, err := in.block(st.Body, e, depth)
		if err != nil {
			return ctrlNone, err
		}
		switch ctl {
		case ctrlBreak:
			return ctrlNone, nil
		case ctrlReturn:
			return ctrlReturn, nil
		}
	}
	return ctrlNone, nil
}

func (in *Interp) assign(st *AssignStmt, e *env, depth int) error {
	if len(st.LHS) > 1 {
		call, ok := st.RHS.(*CallExpr)
		if !ok {
			return errf(st.Pos, "multi-assignment requires a function call")
		}
		if in.prog.Func(call.Name) == nil {
			return errf(call.Pos, "multi-assignment from non-function %q", call.Name)
		}
		args, err := in.evalArgs(call.Args, e, depth)
		if err != nil {
			return err
		}
		results, err := in.call(call.Name, args, depth+1)
		if err != nil {
			return err
		}
		if len(results) < len(st.LHS) {
			return errf(st.Pos, "function %q returns %d values, %d requested", call.Name, len(results), len(st.LHS))
		}
		for i, lv := range st.LHS {
			if lv.Index != nil {
				return errf(lv.Pos, "indexed targets not allowed in multi-assignment")
			}
			e.vars[lv.Name] = results[i]
		}
		return nil
	}
	rhs, err := in.eval(st.RHS, e, depth)
	if err != nil {
		return err
	}
	lv := st.LHS[0]
	if lv.Index == nil {
		e.vars[lv.Name] = rhs
		return nil
	}
	return in.indexedStore(lv, rhs, e, depth)
}

func (in *Interp) indexedStore(lv *LValue, rhs Value, e *env, depth int) error {
	cur, ok := e.vars[lv.Name]
	if !ok {
		return errf(lv.Pos, "indexed assignment to undefined variable %q (pre-allocate with zeros)", lv.Name)
	}
	idx, err := in.evalArgs(lv.Index, e, depth)
	if err != nil {
		return err
	}
	if !rhs.IsScalar && rhs.Len() != 1 {
		return errf(lv.Pos, "indexed assignment requires a scalar right-hand side")
	}
	x := rhs.Data[0]
	v := cur.Clone()
	switch len(idx) {
	case 1:
		k, err := checkIndex(lv.Pos, idx[0], v.Len(), "linear index")
		if err != nil {
			return err
		}
		v.SetLin(k, x)
	case 2:
		i, err := checkIndex(lv.Pos, idx[0], v.Rows, "row index")
		if err != nil {
			return err
		}
		j, err := checkIndex(lv.Pos, idx[1], v.Cols, "column index")
		if err != nil {
			return err
		}
		v.Set(i, j, x)
	default:
		return errf(lv.Pos, "indexing supports 1 or 2 subscripts, got %d", len(idx))
	}
	e.vars[lv.Name] = v
	return nil
}

func checkIndex(pos Pos, v Value, limit int, what string) (int, error) {
	if v.Len() != 1 {
		return 0, errf(pos, "%s must be scalar", what)
	}
	f := v.ScalarVal()
	k := int(math.Round(f))
	if math.Abs(f-float64(k)) > 1e-9 {
		return 0, errf(pos, "%s %g is not an integer", what, f)
	}
	if k < 1 || k > limit {
		return 0, errf(pos, "%s %d out of range [1, %d]", what, k, limit)
	}
	return k, nil
}

func (in *Interp) evalArgs(args []Expr, e *env, depth int) ([]Value, error) {
	out := make([]Value, len(args))
	for i, a := range args {
		v, err := in.eval(a, e, depth)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (in *Interp) eval(ex Expr, e *env, depth int) (Value, error) {
	switch x := ex.(type) {
	case *NumberLit:
		return Scalar(x.Value), nil
	case *StringLit:
		return Value{}, errf(x.Pos, "string values are not supported in expressions")
	case *Ident:
		v, ok := e.vars[x.Name]
		if !ok {
			return Value{}, errf(x.Pos, "undefined variable %q", x.Name)
		}
		return v, nil
	case *UnExpr:
		v, err := in.eval(x.X, e, depth)
		if err != nil {
			return Value{}, err
		}
		out := v.Clone()
		for i := range out.Data {
			if x.Op == MINUS {
				out.Data[i] = -out.Data[i]
			} else {
				out.Data[i] = bool2f(out.Data[i] == 0)
			}
		}
		return out, nil
	case *BinExpr:
		a, err := in.eval(x.X, e, depth)
		if err != nil {
			return Value{}, err
		}
		b, err := in.eval(x.Y, e, depth)
		if err != nil {
			return Value{}, err
		}
		v, err := applyBin(x.Op, a, b)
		if err != nil {
			return Value{}, errf(x.Pos, "%v", err)
		}
		return v, nil
	case *MatrixLit:
		return in.matrixLit(x, e, depth)
	case *RangeExpr:
		return in.rangeVal(x, e, depth)
	case *CallExpr:
		return in.callExpr(x, e, depth)
	}
	return Value{}, errf(ex.ExprPos(), "unknown expression type %T", ex)
}

func (in *Interp) matrixLit(x *MatrixLit, e *env, depth int) (Value, error) {
	if len(x.Rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(x.Rows[0])
	v := NewMatrix(len(x.Rows), cols)
	for i, row := range x.Rows {
		if len(row) != cols {
			return Value{}, errf(x.Pos, "ragged matrix literal: row %d has %d elements, expected %d", i+1, len(row), cols)
		}
		for j, el := range row {
			ev, err := in.eval(el, e, depth)
			if err != nil {
				return Value{}, err
			}
			if ev.Len() != 1 {
				return Value{}, errf(el.ExprPos(), "matrix literal elements must be scalar")
			}
			v.Set(i+1, j+1, ev.ScalarVal())
		}
	}
	return v, nil
}

func (in *Interp) rangeVal(x *RangeExpr, e *env, depth int) (Value, error) {
	lo, err := in.eval(x.Lo, e, depth)
	if err != nil {
		return Value{}, err
	}
	hi, err := in.eval(x.Hi, e, depth)
	if err != nil {
		return Value{}, err
	}
	step := 1.0
	if x.Step != nil {
		sv, err := in.eval(x.Step, e, depth)
		if err != nil {
			return Value{}, err
		}
		step = sv.ScalarVal()
	}
	if step == 0 {
		return Value{}, errf(x.Pos, "range with zero step")
	}
	var vals []float64
	for v := lo.ScalarVal(); (step > 0 && v <= hi.ScalarVal()+1e-12) || (step < 0 && v >= hi.ScalarVal()-1e-12); v += step {
		vals = append(vals, v)
		if len(vals) > 10_000_000 {
			return Value{}, errf(x.Pos, "range too large")
		}
	}
	return MatrixOf(1, len(vals), vals), nil
}

func (in *Interp) callExpr(x *CallExpr, e *env, depth int) (Value, error) {
	// Indexing takes precedence: a local variable shadows functions.
	if base, ok := e.vars[x.Name]; ok {
		idx, err := in.evalArgs(x.Args, e, depth)
		if err != nil {
			return Value{}, err
		}
		switch len(idx) {
		case 1:
			k, err := checkIndex(x.Pos, idx[0], base.Len(), "linear index")
			if err != nil {
				return Value{}, err
			}
			return Scalar(base.Lin(k)), nil
		case 2:
			i, err := checkIndex(x.Pos, idx[0], base.Rows, "row index")
			if err != nil {
				return Value{}, err
			}
			j, err := checkIndex(x.Pos, idx[1], base.Cols, "column index")
			if err != nil {
				return Value{}, err
			}
			return Scalar(base.At(i, j)), nil
		default:
			return Value{}, errf(x.Pos, "indexing supports 1 or 2 subscripts, got %d", len(x.Args))
		}
	}
	if b := LookupBuiltin(x.Name); b != nil {
		if len(x.Args) < b.MinArgs || len(x.Args) > b.MaxArgs {
			return Value{}, errf(x.Pos, "builtin %q expects %d..%d arguments, got %d", x.Name, b.MinArgs, b.MaxArgs, len(x.Args))
		}
		args, err := in.evalArgs(x.Args, e, depth)
		if err != nil {
			return Value{}, err
		}
		v, err := b.Eval(args)
		if err != nil {
			return Value{}, errf(x.Pos, "builtin %q: %v", x.Name, err)
		}
		return v, nil
	}
	if in.prog.Func(x.Name) != nil {
		args, err := in.evalArgs(x.Args, e, depth)
		if err != nil {
			return Value{}, err
		}
		results, err := in.call(x.Name, args, depth+1)
		if err != nil {
			return Value{}, err
		}
		if len(results) == 0 {
			return Value{}, errf(x.Pos, "function %q returns no value", x.Name)
		}
		return results[0], nil
	}
	return Value{}, errf(x.Pos, "undefined variable or function %q", x.Name)
}
