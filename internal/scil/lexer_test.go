package scil

import "testing"

func kinds(ts []Token) []Kind {
	out := make([]Kind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	ts, err := LexAll("x = a + b*2 - c/4 ^ 2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, ASSIGN, IDENT, PLUS, IDENT, STAR, NUMBER, MINUS, IDENT, SLASH, NUMBER, CARET, NUMBER, EOF}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexKeywordsAndIdents(t *testing.T) {
	ts, err := LexAll("function endfunction for while if then else elseif end foo end2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KWFUNCTION, KWENDFUNCTION, KWFOR, KWWHILE, KWIF, KWTHEN, KWELSE, KWELSEIF, KWEND, IDENT, IDENT, EOF}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":      "42",
		"3.25":    "3.25",
		"1e6":     "1e6",
		"2.5e-3":  "2.5e-3",
		"7d2":     "7e2", // Scilab d-exponent normalized to e
		"1E+4":    "1e+4",
		".5":      ".5",
		"0.125e2": "0.125e2",
	}
	for src, lit := range cases {
		ts, err := LexAll(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if ts[0].Kind != NUMBER || ts[0].Lit != lit {
			t.Errorf("%q: got %s %q, want NUMBER %q", src, ts[0].Kind, ts[0].Lit, lit)
		}
	}
}

func TestLexNumberBeforeKeyword(t *testing.T) {
	// "1:4 end": the 4 must not swallow 'end' as an exponent.
	ts, err := LexAll("for i = 1:4 end")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KWFOR, IDENT, ASSIGN, NUMBER, COLON, NUMBER, KWEND, EOF}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	ts, err := LexAll("a == b ~= c <= d >= e < f > g & h | ~i .* j ./ k <> m")
	if err != nil {
		t.Fatal(err)
	}
	var ops []Kind
	for _, tok := range ts {
		switch tok.Kind {
		case IDENT, EOF:
		default:
			ops = append(ops, tok.Kind)
		}
	}
	want := []Kind{EQ, NEQ, LE, GE, LT, GT, AND, OR, NOT, DOTSTAR, DOTSLASH, NEQ}
	if len(ops) != len(want) {
		t.Fatalf("got ops %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d: got %s, want %s", i, ops[i], want[i])
		}
	}
}

func TestLexCommentsAndPragmas(t *testing.T) {
	ts, err := LexAll("x = 1 // plain comment\n//@bound 12\ny = 2")
	if err != nil {
		t.Fatal(err)
	}
	var pragmas []string
	for _, tok := range ts {
		if tok.Kind == PRAGMA {
			pragmas = append(pragmas, tok.Lit)
		}
	}
	if len(pragmas) != 1 || pragmas[0] != "@bound 12" {
		t.Fatalf("pragmas = %v", pragmas)
	}
}

func TestLexStrings(t *testing.T) {
	ts, err := LexAll(`s = "hello ""world"" ok"`)
	if err != nil {
		t.Fatal(err)
	}
	if ts[2].Kind != STRING || ts[2].Lit != `hello "world" ok` {
		t.Fatalf("got %q", ts[2].Lit)
	}
}

func TestLexLineContinuation(t *testing.T) {
	ts, err := LexAll("x = 1 + ..\n 2")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range ts {
		if tok.Kind == NEWLINE {
			t.Fatalf("line continuation should swallow the newline: %v", kinds(ts))
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"x = $", `s = "unterminated`, "y = 1 .. 2"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("%q: expected lex error", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	ts, err := LexAll("a\nbb\n  c")
	if err != nil {
		t.Fatal(err)
	}
	// a at 1:1, newline, bb at 2:1, newline, c at 3:3
	if ts[0].Pos.Line != 1 || ts[0].Pos.Col != 1 {
		t.Errorf("a at %v", ts[0].Pos)
	}
	if ts[2].Pos.Line != 2 || ts[2].Pos.Col != 1 {
		t.Errorf("bb at %v", ts[2].Pos)
	}
	if ts[4].Pos.Line != 3 || ts[4].Pos.Col != 3 {
		t.Errorf("c at %v", ts[4].Pos)
	}
}
