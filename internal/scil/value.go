package scil

import (
	"fmt"
	"math"
)

// Value is a runtime value: a scalar or a dense 2-D matrix of float64.
// Scalars are represented as 1x1 matrices with IsScalar set, matching
// Scilab's "everything is a matrix" model while letting the compiler treat
// scalars specially.
type Value struct {
	Rows, Cols int
	Data       []float64
	IsScalar   bool
}

// Scalar wraps a float64 as a scalar value.
func Scalar(v float64) Value {
	return Value{Rows: 1, Cols: 1, Data: []float64{v}, IsScalar: true}
}

// NewMatrix allocates a rows x cols zero matrix value.
func NewMatrix(rows, cols int) Value {
	return Value{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixOf builds a matrix value from row-major data; the data slice is
// copied.
func MatrixOf(rows, cols int, data []float64) Value {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("scil: MatrixOf %dx%d with %d elements", rows, cols, len(data)))
	}
	v := NewMatrix(rows, cols)
	copy(v.Data, data)
	return v
}

// Clone returns a deep copy of v.
func (v Value) Clone() Value {
	out := v
	out.Data = make([]float64, len(v.Data))
	copy(out.Data, v.Data)
	return out
}

// ScalarVal returns the scalar payload; it is valid for any 1x1 value.
func (v Value) ScalarVal() float64 { return v.Data[0] }

// At returns element (i, j) with 1-based Scilab indexing.
func (v Value) At(i, j int) float64 { return v.Data[(i-1)*v.Cols+(j-1)] }

// Set writes element (i, j) with 1-based Scilab indexing.
func (v *Value) Set(i, j int, x float64) { v.Data[(i-1)*v.Cols+(j-1)] = x }

// Lin returns the k-th element in column-major order with 1-based
// indexing, matching Scilab's linear indexing a(k).
func (v Value) Lin(k int) float64 {
	k--
	col := k / v.Rows
	row := k % v.Rows
	return v.Data[row*v.Cols+col]
}

// SetLin writes the k-th element in column-major order (1-based).
func (v *Value) SetLin(k int, x float64) {
	k--
	col := k / v.Rows
	row := k % v.Rows
	v.Data[row*v.Cols+col] = x
}

// Len returns the number of elements.
func (v Value) Len() int { return v.Rows * v.Cols }

// Truthy reports whether the value is "true" in a condition: nonzero
// scalar, or all-nonzero matrix (Scilab semantics for if on matrices).
func (v Value) Truthy() bool {
	if v.Len() == 0 {
		return false
	}
	for _, x := range v.Data {
		if x == 0 {
			return false
		}
	}
	return true
}

// SameShape reports whether two values have identical dimensions.
func (v Value) SameShape(w Value) bool { return v.Rows == w.Rows && v.Cols == w.Cols }

// String renders the value compactly for diagnostics.
func (v Value) String() string {
	if v.IsScalar || (v.Rows == 1 && v.Cols == 1) {
		return fmt.Sprintf("%g", v.Data[0])
	}
	return fmt.Sprintf("matrix(%dx%d)", v.Rows, v.Cols)
}

func bool2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// elementwise applies op pairwise with scalar broadcasting.
func elementwise(x, y Value, op func(a, b float64) float64) (Value, error) {
	switch {
	case x.IsScalar && y.IsScalar:
		return Scalar(op(x.ScalarVal(), y.ScalarVal())), nil
	case x.IsScalar:
		out := y.Clone()
		out.IsScalar = false
		a := x.ScalarVal()
		for i := range out.Data {
			out.Data[i] = op(a, y.Data[i])
		}
		return out, nil
	case y.IsScalar:
		out := x.Clone()
		out.IsScalar = false
		b := y.ScalarVal()
		for i := range out.Data {
			out.Data[i] = op(x.Data[i], b)
		}
		return out, nil
	default:
		if !x.SameShape(y) {
			return Value{}, fmt.Errorf("shape mismatch %dx%d vs %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
		}
		out := x.Clone()
		for i := range out.Data {
			out.Data[i] = op(x.Data[i], y.Data[i])
		}
		return out, nil
	}
}

// matMul is standard matrix multiplication; scalar operands broadcast.
func matMul(x, y Value) (Value, error) {
	if x.IsScalar || y.IsScalar {
		return elementwise(x, y, func(a, b float64) float64 { return a * b })
	}
	if x.Cols != y.Rows {
		return Value{}, fmt.Errorf("matrix product dimension mismatch %dx%d * %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	out := NewMatrix(x.Rows, y.Cols)
	for i := 1; i <= x.Rows; i++ {
		for j := 1; j <= y.Cols; j++ {
			s := 0.0
			for k := 1; k <= x.Cols; k++ {
				s += x.At(i, k) * y.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out, nil
}

// applyBin evaluates a binary operator on values.
func applyBin(op Kind, x, y Value) (Value, error) {
	switch op {
	case PLUS:
		return elementwise(x, y, func(a, b float64) float64 { return a + b })
	case MINUS:
		return elementwise(x, y, func(a, b float64) float64 { return a - b })
	case STAR:
		return matMul(x, y)
	case DOTSTAR:
		return elementwise(x, y, func(a, b float64) float64 { return a * b })
	case SLASH, DOTSLASH:
		return elementwise(x, y, func(a, b float64) float64 { return a / b })
	case CARET:
		return elementwise(x, y, math.Pow)
	case EQ:
		return elementwise(x, y, func(a, b float64) float64 { return bool2f(a == b) })
	case NEQ:
		return elementwise(x, y, func(a, b float64) float64 { return bool2f(a != b) })
	case LT:
		return elementwise(x, y, func(a, b float64) float64 { return bool2f(a < b) })
	case LE:
		return elementwise(x, y, func(a, b float64) float64 { return bool2f(a <= b) })
	case GT:
		return elementwise(x, y, func(a, b float64) float64 { return bool2f(a > b) })
	case GE:
		return elementwise(x, y, func(a, b float64) float64 { return bool2f(a >= b) })
	case AND:
		return elementwise(x, y, func(a, b float64) float64 { return bool2f(a != 0 && b != 0) })
	case OR:
		return elementwise(x, y, func(a, b float64) float64 { return bool2f(a != 0 || b != 0) })
	}
	return Value{}, fmt.Errorf("unsupported binary operator %s", op)
}
