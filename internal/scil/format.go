package scil

import (
	"fmt"
	"strings"
)

// Format renders a program back to canonical scil source. The output
// round-trips: Parse(Format(p)) produces a structurally identical AST
// (modulo positions). Used by tooling (the cross-layer interface shows
// users the model the compiler actually sees) and tested as a
// parser/printer consistency property.
func Format(p *Program) string {
	var sb strings.Builder
	for i, f := range p.Funcs {
		if i > 0 {
			sb.WriteString("\n")
		}
		formatFunc(&sb, f)
	}
	return sb.String()
}

func formatFunc(sb *strings.Builder, f *FuncDecl) {
	for _, pr := range f.Pragmas {
		fmt.Fprintf(sb, "//%s\n", pr)
	}
	sb.WriteString("function ")
	switch len(f.Results) {
	case 0:
	case 1:
		fmt.Fprintf(sb, "%s = ", f.Results[0])
	default:
		fmt.Fprintf(sb, "[%s] = ", strings.Join(f.Results, ", "))
	}
	fmt.Fprintf(sb, "%s(%s)\n", f.Name, strings.Join(f.Params, ", "))
	formatBlock(sb, f.Body, 1)
	sb.WriteString("endfunction\n")
}

func formatBlock(sb *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch st := s.(type) {
		case *AssignStmt:
			if len(st.LHS) > 1 {
				names := make([]string, len(st.LHS))
				for i, lv := range st.LHS {
					names[i] = lv.Name
				}
				fmt.Fprintf(sb, "%s[%s] = %s\n", ind, strings.Join(names, ", "), formatExpr(st.RHS))
				continue
			}
			lv := st.LHS[0]
			if lv.Index == nil {
				fmt.Fprintf(sb, "%s%s = %s\n", ind, lv.Name, formatExpr(st.RHS))
			} else {
				idx := make([]string, len(lv.Index))
				for i, e := range lv.Index {
					idx[i] = formatExpr(e)
				}
				fmt.Fprintf(sb, "%s%s(%s) = %s\n", ind, lv.Name, strings.Join(idx, ", "), formatExpr(st.RHS))
			}
		case *ForStmt:
			if st.Step == nil {
				fmt.Fprintf(sb, "%sfor %s = %s:%s\n", ind, st.Var, formatExpr(st.Lo), formatExpr(st.Hi))
			} else {
				fmt.Fprintf(sb, "%sfor %s = %s:%s:%s\n", ind, st.Var, formatExpr(st.Lo), formatExpr(st.Step), formatExpr(st.Hi))
			}
			formatBlock(sb, st.Body, depth+1)
			fmt.Fprintf(sb, "%send\n", ind)
		case *WhileStmt:
			if st.Bound > 0 {
				fmt.Fprintf(sb, "%s//@bound %d\n", ind, st.Bound)
			}
			fmt.Fprintf(sb, "%swhile %s\n", ind, formatExpr(st.Cond))
			formatBlock(sb, st.Body, depth+1)
			fmt.Fprintf(sb, "%send\n", ind)
		case *IfStmt:
			fmt.Fprintf(sb, "%sif %s then\n", ind, formatExpr(st.Cond))
			formatBlock(sb, st.Then, depth+1)
			formatElse(sb, st.Else, depth)
			fmt.Fprintf(sb, "%send\n", ind)
		case *ExprStmt:
			fmt.Fprintf(sb, "%s%s\n", ind, formatExpr(st.X))
		case *BreakStmt:
			fmt.Fprintf(sb, "%sbreak\n", ind)
		case *ContinueStmt:
			fmt.Fprintf(sb, "%scontinue\n", ind)
		case *ReturnStmt:
			fmt.Fprintf(sb, "%sreturn\n", ind)
		}
	}
}

// formatElse renders else / elseif chains without extra nesting.
func formatElse(sb *strings.Builder, els []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	if len(els) == 0 {
		return
	}
	if len(els) == 1 {
		if inner, ok := els[0].(*IfStmt); ok {
			fmt.Fprintf(sb, "%selseif %s then\n", ind, formatExpr(inner.Cond))
			formatBlock(sb, inner.Then, depth+1)
			formatElse(sb, inner.Else, depth)
			return
		}
	}
	fmt.Fprintf(sb, "%selse\n", ind)
	formatBlock(sb, els, depth+1)
}

func formatExpr(e Expr) string {
	switch x := e.(type) {
	case *NumberLit:
		return fmt.Sprintf("%g", x.Value)
	case *StringLit:
		return fmt.Sprintf("%q", x.Value)
	case *Ident:
		return x.Name
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = formatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	case *BinExpr:
		return fmt.Sprintf("(%s %s %s)", formatExpr(x.X), x.Op, formatExpr(x.Y))
	case *UnExpr:
		return fmt.Sprintf("%s(%s)", x.Op, formatExpr(x.X))
	case *MatrixLit:
		rows := make([]string, len(x.Rows))
		for i, row := range x.Rows {
			cells := make([]string, len(row))
			for j, el := range row {
				cells[j] = formatExpr(el)
			}
			rows[i] = strings.Join(cells, ", ")
		}
		return "[" + strings.Join(rows, "; ") + "]"
	case *RangeExpr:
		// Parenthesized so a range nested in a larger expression
		// re-parses with the same extent.
		if x.Step == nil {
			return fmt.Sprintf("(%s:%s)", formatExpr(x.Lo), formatExpr(x.Hi))
		}
		return fmt.Sprintf("(%s:%s:%s)", formatExpr(x.Lo), formatExpr(x.Step), formatExpr(x.Hi))
	}
	return "?"
}
