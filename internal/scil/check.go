package scil

import (
	"fmt"
	"sort"
)

// CheckMode selects how strict semantic analysis is.
type CheckMode int

const (
	// CheckBasic validates name resolution, arity, and structure.
	CheckBasic CheckMode = iota
	// CheckWCET additionally enforces the restrictions required for
	// static WCET analysis: every while loop carries a @bound pragma and
	// the call graph is acyclic.
	CheckWCET
)

// Check performs semantic analysis on prog, resolving every CallExpr to
// indexing / builtin / user call and validating the subset restrictions.
// It returns all diagnostics found (empty slice means the program is valid).
func Check(prog *Program, mode CheckMode) []error {
	c := &checker{prog: prog, mode: mode}
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
	if mode == CheckWCET {
		c.checkRecursion()
	}
	return c.errs
}

// MustCheck panics if prog fails Check; convenience for built-in models.
func MustCheck(prog *Program, mode CheckMode) *Program {
	if errs := Check(prog, mode); len(errs) > 0 {
		panic(fmt.Sprintf("scil.MustCheck: %v", errs[0]))
	}
	return prog
}

type checker struct {
	prog *Program
	mode CheckMode
	errs []error
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, errf(pos, format, args...))
}

// assignedNames collects every name the function can bind: parameters,
// assignment targets, and loop variables. A CallExpr on such a name is
// matrix indexing.
func assignedNames(f *FuncDecl) map[string]bool {
	names := make(map[string]bool)
	for _, p := range f.Params {
		names[p] = true
	}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *AssignStmt:
				for _, lv := range st.LHS {
					names[lv.Name] = true
				}
			case *ForStmt:
				names[st.Var] = true
				walk(st.Body)
			case *WhileStmt:
				walk(st.Body)
			case *IfStmt:
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(f.Body)
	return names
}

func (c *checker) checkFunc(f *FuncDecl) {
	vars := assignedNames(f)
	seen := make(map[string]bool)
	for _, p := range f.Params {
		if seen[p] {
			c.errorf(f.Pos, "%s: duplicate parameter %q", f.Name, p)
		}
		seen[p] = true
	}
	seenR := make(map[string]bool)
	for _, r := range f.Results {
		if seenR[r] {
			c.errorf(f.Pos, "%s: duplicate result %q", f.Name, r)
		}
		seenR[r] = true
		if !vars[r] {
			c.errorf(f.Pos, "%s: result variable %q is never assigned", f.Name, r)
		}
	}
	c.checkBlock(f, f.Body, vars, 0)
}

func (c *checker) checkBlock(f *FuncDecl, stmts []Stmt, vars map[string]bool, loopDepth int) {
	for _, s := range stmts {
		c.checkStmt(f, s, vars, loopDepth)
	}
}

func (c *checker) checkStmt(f *FuncDecl, s Stmt, vars map[string]bool, loopDepth int) {
	switch st := s.(type) {
	case *AssignStmt:
		c.checkAssign(f, st, vars)
	case *ExprStmt:
		c.checkExpr(f, st.X, vars)
	case *ForStmt:
		c.checkExpr(f, st.Lo, vars)
		c.checkExpr(f, st.Hi, vars)
		if st.Step != nil {
			c.checkExpr(f, st.Step, vars)
		}
		c.checkBlock(f, st.Body, vars, loopDepth+1)
	case *WhileStmt:
		if c.mode == CheckWCET && st.Bound <= 0 {
			c.errorf(st.Pos, "%s: while loop requires a //@bound N pragma for WCET analysis", f.Name)
		}
		c.checkExpr(f, st.Cond, vars)
		c.checkBlock(f, st.Body, vars, loopDepth+1)
	case *IfStmt:
		c.checkExpr(f, st.Cond, vars)
		c.checkBlock(f, st.Then, vars, loopDepth)
		c.checkBlock(f, st.Else, vars, loopDepth)
	case *BreakStmt:
		if loopDepth == 0 {
			c.errorf(st.Pos, "%s: break outside loop", f.Name)
		}
	case *ContinueStmt:
		if loopDepth == 0 {
			c.errorf(st.Pos, "%s: continue outside loop", f.Name)
		}
	}
}

func (c *checker) checkAssign(f *FuncDecl, st *AssignStmt, vars map[string]bool) {
	if len(st.LHS) > 1 {
		call, ok := st.RHS.(*CallExpr)
		if !ok {
			c.errorf(st.Pos, "%s: multi-assignment requires a function call on the right", f.Name)
			return
		}
		callee := c.prog.Func(call.Name)
		if callee == nil {
			c.errorf(call.Pos, "%s: multi-assignment from %q which is not a user function", f.Name, call.Name)
			return
		}
		call.Kind = CallUser
		if len(callee.Results) < len(st.LHS) {
			c.errorf(st.Pos, "%s: %q returns %d values but %d are requested", f.Name, call.Name, len(callee.Results), len(st.LHS))
		}
		if len(call.Args) != len(callee.Params) {
			c.errorf(call.Pos, "%s: %q expects %d arguments, got %d", f.Name, call.Name, len(callee.Params), len(call.Args))
		}
		for _, lv := range st.LHS {
			if lv.Index != nil {
				c.errorf(lv.Pos, "%s: indexed target in multi-assignment", f.Name)
			}
		}
		for _, a := range call.Args {
			c.checkExpr(f, a, vars)
		}
		return
	}
	lv := st.LHS[0]
	for _, ix := range lv.Index {
		c.checkExpr(f, ix, vars)
	}
	if len(lv.Index) > 2 {
		c.errorf(lv.Pos, "%s: at most 2 subscripts supported, got %d", f.Name, len(lv.Index))
	}
	c.checkExpr(f, st.RHS, vars)
}

func (c *checker) checkExpr(f *FuncDecl, e Expr, vars map[string]bool) {
	switch x := e.(type) {
	case *NumberLit, *StringLit:
	case *Ident:
		if !vars[x.Name] {
			c.errorf(x.Pos, "%s: undefined variable %q", f.Name, x.Name)
		}
	case *UnExpr:
		c.checkExpr(f, x.X, vars)
	case *BinExpr:
		c.checkExpr(f, x.X, vars)
		c.checkExpr(f, x.Y, vars)
	case *RangeExpr:
		c.checkExpr(f, x.Lo, vars)
		c.checkExpr(f, x.Hi, vars)
		if x.Step != nil {
			c.checkExpr(f, x.Step, vars)
		}
	case *MatrixLit:
		w := -1
		for i, row := range x.Rows {
			if w == -1 {
				w = len(row)
			} else if len(row) != w {
				c.errorf(x.Pos, "%s: ragged matrix literal at row %d", f.Name, i+1)
			}
			for _, el := range row {
				c.checkExpr(f, el, vars)
			}
		}
	case *CallExpr:
		c.checkCall(f, x, vars)
	}
}

func (c *checker) checkCall(f *FuncDecl, x *CallExpr, vars map[string]bool) {
	for _, a := range x.Args {
		c.checkExpr(f, a, vars)
	}
	switch {
	case vars[x.Name]:
		x.Kind = CallIndex
		if len(x.Args) < 1 || len(x.Args) > 2 {
			c.errorf(x.Pos, "%s: indexing %q needs 1 or 2 subscripts, got %d", f.Name, x.Name, len(x.Args))
		}
	case LookupBuiltin(x.Name) != nil:
		x.Kind = CallBuiltin
		b := LookupBuiltin(x.Name)
		if len(x.Args) < b.MinArgs || len(x.Args) > b.MaxArgs {
			c.errorf(x.Pos, "%s: builtin %q expects %d..%d arguments, got %d",
				f.Name, x.Name, b.MinArgs, b.MaxArgs, len(x.Args))
		}
	case c.prog.Func(x.Name) != nil:
		x.Kind = CallUser
		callee := c.prog.Func(x.Name)
		if len(x.Args) != len(callee.Params) {
			c.errorf(x.Pos, "%s: %q expects %d arguments, got %d", f.Name, x.Name, len(callee.Params), len(x.Args))
		}
		if len(callee.Results) == 0 {
			c.errorf(x.Pos, "%s: %q returns no value but is used in an expression", f.Name, x.Name)
		}
	default:
		c.errorf(x.Pos, "%s: undefined variable or function %q", f.Name, x.Name)
	}
}

// checkRecursion rejects call-graph cycles (WCET analysis requires an
// acyclic call graph).
func (c *checker) checkRecursion() {
	adj := make(map[string][]string)
	for _, f := range c.prog.Funcs {
		callees := map[string]bool{}
		collectCalls(f.Body, c.prog, callees)
		var list []string
		for n := range callees {
			list = append(list, n)
		}
		sort.Strings(list)
		adj[f.Name] = list
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var cyc []string
	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = grey
		for _, m := range adj[n] {
			switch color[m] {
			case grey:
				cyc = append(cyc, n, m)
				return true
			case white:
				if dfs(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, f := range c.prog.Funcs {
		if color[f.Name] == white && dfs(f.Name) {
			c.errorf(f.Pos, "recursive call cycle involving %q and %q (forbidden for WCET analysis)", cyc[0], cyc[1])
			return
		}
	}
}

// collectCalls gathers the names of user functions called within stmts.
func collectCalls(stmts []Stmt, prog *Program, out map[string]bool) {
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *CallExpr:
			if prog.Func(x.Name) != nil && x.Kind != CallIndex {
				out[x.Name] = true
			}
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *BinExpr:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *UnExpr:
			walkExpr(x.X)
		case *RangeExpr:
			walkExpr(x.Lo)
			walkExpr(x.Hi)
			if x.Step != nil {
				walkExpr(x.Step)
			}
		case *MatrixLit:
			for _, row := range x.Rows {
				for _, el := range row {
					walkExpr(el)
				}
			}
		}
	}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *AssignStmt:
				walkExpr(st.RHS)
				for _, lv := range st.LHS {
					for _, ix := range lv.Index {
						walkExpr(ix)
					}
				}
			case *ExprStmt:
				walkExpr(st.X)
			case *ForStmt:
				walkExpr(st.Lo)
				walkExpr(st.Hi)
				if st.Step != nil {
					walkExpr(st.Step)
				}
				walk(st.Body)
			case *WhileStmt:
				walkExpr(st.Cond)
				walk(st.Body)
			case *IfStmt:
				walkExpr(st.Cond)
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(stmts)
}
