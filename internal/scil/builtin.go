package scil

import (
	"fmt"
	"math"
)

// Builtin describes one intrinsic function of the scil subset.
type Builtin struct {
	Name string
	// MinArgs/MaxArgs bound the accepted argument count.
	MinArgs, MaxArgs int
	// Eval computes the result.
	Eval func(args []Value) (Value, error)
	// Scalar1 / Scalar2, when non-nil, compute the same result as Eval
	// for all-scalar arguments without boxing them into Values — the
	// interpreter's allocation-free fast path. They are exact aliases of
	// Eval restricted to scalars, never a different function.
	Scalar1 func(a float64) float64
	Scalar2 func(a, b float64) float64
	// Cost is the abstract operation cost used by the WCET cost model,
	// in "ALU-op" units (the ADL core model scales these to cycles).
	Cost int
}

func unary(name string, cost int, f func(float64) float64) *Builtin {
	return &Builtin{
		Name: name, MinArgs: 1, MaxArgs: 1, Cost: cost,
		Eval: func(args []Value) (Value, error) {
			v := args[0]
			out := v.Clone()
			for i := range out.Data {
				out.Data[i] = f(v.Data[i])
			}
			return out, nil
		},
		Scalar1: f,
	}
}

func binaryScalar(name string, cost int, f func(a, b float64) float64) *Builtin {
	return &Builtin{
		Name: name, MinArgs: 2, MaxArgs: 2, Cost: cost,
		Eval: func(args []Value) (Value, error) {
			return elementwise(args[0], args[1], f)
		},
		Scalar2: f,
	}
}

func reduce(name string, cost int, init float64, f func(acc, x float64) float64, post func(acc float64, n int) float64) *Builtin {
	return &Builtin{
		Name: name, MinArgs: 1, MaxArgs: 1, Cost: cost,
		Eval: func(args []Value) (Value, error) {
			v := args[0]
			if v.Len() == 0 {
				return Scalar(init), nil
			}
			acc := init
			for _, x := range v.Data {
				acc = f(acc, x)
			}
			if post != nil {
				acc = post(acc, v.Len())
			}
			return Scalar(acc), nil
		},
	}
}

func dimArgs(args []Value) (int, int, error) {
	get := func(v Value) (int, error) {
		if !v.IsScalar && v.Len() != 1 {
			return 0, fmt.Errorf("dimension argument must be scalar")
		}
		n := int(v.ScalarVal())
		if n < 0 || float64(n) != v.ScalarVal() {
			return 0, fmt.Errorf("dimension argument must be a non-negative integer, got %g", v.ScalarVal())
		}
		return n, nil
	}
	r, err := get(args[0])
	if err != nil {
		return 0, 0, err
	}
	c := r
	if len(args) == 2 {
		c, err = get(args[1])
		if err != nil {
			return 0, 0, err
		}
	}
	return r, c, nil
}

// builtins is the intrinsic function table of the subset.
var builtins = map[string]*Builtin{}

func register(b *Builtin) { builtins[b.Name] = b }

func init() {
	register(&Builtin{
		Name: "zeros", MinArgs: 1, MaxArgs: 2, Cost: 1,
		Eval: func(args []Value) (Value, error) {
			r, c, err := dimArgs(args)
			if err != nil {
				return Value{}, err
			}
			return NewMatrix(r, c), nil
		},
	})
	register(&Builtin{
		Name: "ones", MinArgs: 1, MaxArgs: 2, Cost: 1,
		Eval: func(args []Value) (Value, error) {
			r, c, err := dimArgs(args)
			if err != nil {
				return Value{}, err
			}
			v := NewMatrix(r, c)
			for i := range v.Data {
				v.Data[i] = 1
			}
			return v, nil
		},
	})
	register(&Builtin{
		Name: "eye", MinArgs: 1, MaxArgs: 2, Cost: 1,
		Eval: func(args []Value) (Value, error) {
			r, c, err := dimArgs(args)
			if err != nil {
				return Value{}, err
			}
			v := NewMatrix(r, c)
			for i := 1; i <= r && i <= c; i++ {
				v.Set(i, i, 1)
			}
			return v, nil
		},
	})
	register(&Builtin{
		Name: "size", MinArgs: 1, MaxArgs: 2, Cost: 1,
		Eval: func(args []Value) (Value, error) {
			v := args[0]
			if len(args) == 1 {
				return MatrixOf(1, 2, []float64{float64(v.Rows), float64(v.Cols)}), nil
			}
			switch int(args[1].ScalarVal()) {
			case 1:
				return Scalar(float64(v.Rows)), nil
			case 2:
				return Scalar(float64(v.Cols)), nil
			}
			return Value{}, fmt.Errorf("size: dimension must be 1 or 2")
		},
	})
	register(&Builtin{
		Name: "length", MinArgs: 1, MaxArgs: 1, Cost: 1,
		Eval: func(args []Value) (Value, error) {
			return Scalar(float64(args[0].Len())), nil
		},
	})

	register(unary("abs", 1, math.Abs))
	register(unary("sqrt", 8, math.Sqrt))
	register(unary("floor", 1, math.Floor))
	register(unary("ceil", 1, math.Ceil))
	register(unary("round", 1, math.Round))
	register(unary("sign", 1, func(x float64) float64 {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		}
		return 0
	}))
	register(unary("sin", 16, math.Sin))
	register(unary("cos", 16, math.Cos))
	register(unary("tan", 20, math.Tan))
	register(unary("exp", 16, math.Exp))
	register(unary("log", 16, math.Log))

	register(binaryScalar("min", 1, math.Min))
	register(binaryScalar("max", 1, math.Max))
	register(binaryScalar("modulo", 4, math.Mod))
	register(binaryScalar("atan2", 24, math.Atan2))
	register(&Builtin{
		Name: "atan", MinArgs: 1, MaxArgs: 2, Cost: 24,
		Eval: func(args []Value) (Value, error) {
			if len(args) == 2 {
				return elementwise(args[0], args[1], math.Atan2)
			}
			v := args[0].Clone()
			for i := range v.Data {
				v.Data[i] = math.Atan(v.Data[i])
			}
			return v, nil
		},
		Scalar1: math.Atan,
		Scalar2: math.Atan2,
	})

	register(reduce("sum", 1, 0, func(a, x float64) float64 { return a + x }, nil))
	register(reduce("prod", 1, 1, func(a, x float64) float64 { return a * x }, nil))
	register(reduce("mean", 1, 0, func(a, x float64) float64 { return a + x },
		func(a float64, n int) float64 { return a / float64(n) }))
	register(&Builtin{
		Name: "minval", MinArgs: 1, MaxArgs: 1, Cost: 1,
		Eval: func(args []Value) (Value, error) {
			v := args[0]
			if v.Len() == 0 {
				return Value{}, fmt.Errorf("minval of empty matrix")
			}
			m := v.Data[0]
			for _, x := range v.Data {
				m = math.Min(m, x)
			}
			return Scalar(m), nil
		},
	})
	register(&Builtin{
		Name: "maxval", MinArgs: 1, MaxArgs: 1, Cost: 1,
		Eval: func(args []Value) (Value, error) {
			v := args[0]
			if v.Len() == 0 {
				return Value{}, fmt.Errorf("maxval of empty matrix")
			}
			m := v.Data[0]
			for _, x := range v.Data {
				m = math.Max(m, x)
			}
			return Scalar(m), nil
		},
	})
}

// LookupBuiltin returns the builtin named name, or nil.
func LookupBuiltin(name string) *Builtin { return builtins[name] }

// BuiltinNames lists all registered builtin names (for docs and tests).
func BuiltinNames() []string {
	out := make([]string, 0, len(builtins))
	for n := range builtins {
		out = append(out, n)
	}
	return out
}
