package scil

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestParseFunctionForms(t *testing.T) {
	p := mustParse(t, `
function [a, b] = two(x, y)
  a = x
  b = y
endfunction

function r = one(x)
  r = x + 1
endfunction

function noresult(x)
  y = x
endfunction
`)
	if len(p.Funcs) != 3 {
		t.Fatalf("got %d functions", len(p.Funcs))
	}
	two := p.Func("two")
	if two == nil || len(two.Results) != 2 || len(two.Params) != 2 {
		t.Fatalf("two: %+v", two)
	}
	one := p.Func("one")
	if one == nil || len(one.Results) != 1 || one.Results[0] != "r" {
		t.Fatalf("one: %+v", one)
	}
	nr := p.Func("noresult")
	if nr == nil || len(nr.Results) != 0 {
		t.Fatalf("noresult: %+v", nr)
	}
}

func TestParseForLoop(t *testing.T) {
	p := mustParse(t, `
function r = f(n)
  r = 0
  for i = 1:10
    r = r + i
  end
  for j = 1:2:9 do
    r = r + j
  end
endfunction
`)
	body := p.Func("f").Body
	f1, ok := body[1].(*ForStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T", body[1])
	}
	if f1.Var != "i" || f1.Step != nil {
		t.Fatalf("for1: %+v", f1)
	}
	f2 := body[2].(*ForStmt)
	if f2.Step == nil {
		t.Fatal("for2 should have a step")
	}
	if n, ok := f2.Step.(*NumberLit); !ok || n.Value != 2 {
		t.Fatalf("for2 step: %v", FormatExpr(f2.Step))
	}
}

func TestParseIfElseChain(t *testing.T) {
	p := mustParse(t, `
function r = f(x)
  if x > 2 then
    r = 1
  elseif x > 1 then
    r = 2
  elseif x > 0 then
    r = 3
  else
    r = 4
  end
endfunction
`)
	ifs, ok := p.Func("f").Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("not an if: %T", p.Func("f").Body[0])
	}
	depth := 0
	for ifs != nil {
		depth++
		if len(ifs.Else) == 1 {
			if inner, ok := ifs.Else[0].(*IfStmt); ok {
				ifs = inner
				continue
			}
		}
		break
	}
	if depth != 3 {
		t.Fatalf("elseif chain depth = %d, want 3", depth)
	}
}

func TestParseWhileWithBound(t *testing.T) {
	p := mustParse(t, `
function r = f(x)
  r = x
  //@bound 32
  while r > 1
    r = r / 2
  end
endfunction
`)
	w, ok := p.Func("f").Body[1].(*WhileStmt)
	if !ok {
		t.Fatalf("not a while: %T", p.Func("f").Body[1])
	}
	if w.Bound != 32 {
		t.Fatalf("bound = %d, want 32", w.Bound)
	}
}

func TestParseMultiAssign(t *testing.T) {
	p := mustParse(t, `
function [q, r] = divmod(a, b)
  q = floor(a / b)
  r = a - q * b
endfunction

function y = g(x)
  [d, m] = divmod(x, 3)
  y = d + m
endfunction
`)
	as, ok := p.Func("g").Body[0].(*AssignStmt)
	if !ok || len(as.LHS) != 2 {
		t.Fatalf("multi-assign: %+v", p.Func("g").Body[0])
	}
	if as.LHS[0].Name != "d" || as.LHS[1].Name != "m" {
		t.Fatalf("targets: %v %v", as.LHS[0].Name, as.LHS[1].Name)
	}
}

func TestParseMatrixLiteralStmtVsMultiAssign(t *testing.T) {
	// "[1, 2]" as a statement is a matrix-literal expression statement,
	// not a multi-assignment.
	p := mustParse(t, `
function f(x)
  y = [1, 2; 3, 4]
  z = y(2, 1)
endfunction
`)
	as := p.Func("f").Body[0].(*AssignStmt)
	ml, ok := as.RHS.(*MatrixLit)
	if !ok {
		t.Fatalf("RHS is %T", as.RHS)
	}
	if len(ml.Rows) != 2 || len(ml.Rows[0]) != 2 {
		t.Fatalf("matrix shape: %dx%d", len(ml.Rows), len(ml.Rows[0]))
	}
}

func TestParseIndexedAssignment(t *testing.T) {
	p := mustParse(t, `
function m = f(n)
  m = zeros(n, n)
  m(1, 2) = 7
  m(3) = 8
endfunction
`)
	a1 := p.Func("f").Body[1].(*AssignStmt)
	if len(a1.LHS[0].Index) != 2 {
		t.Fatalf("2-d indexed assignment: %+v", a1.LHS[0])
	}
	a2 := p.Func("f").Body[2].(*AssignStmt)
	if len(a2.LHS[0].Index) != 1 {
		t.Fatalf("linear indexed assignment: %+v", a2.LHS[0])
	}
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, `
function r = f(a, b, c)
  r = a + b * c ^ 2
endfunction
`)
	rhs := p.Func("f").Body[0].(*AssignStmt).RHS
	got := FormatExpr(rhs)
	want := "(a + (b * (c ^ 2)))"
	if got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	p := mustParse(t, `
function r = f(a, b, c)
  r = a < b & b < c | ~ (a == c)
endfunction
`)
	rhs := p.Func("f").Body[0].(*AssignStmt).RHS
	top, ok := rhs.(*BinExpr)
	if !ok || top.Op != OR {
		t.Fatalf("top op: %v", FormatExpr(rhs))
	}
}

func TestParseRangeExpr(t *testing.T) {
	p := mustParse(t, `
function r = f(n)
  v = 1:n
  w = 0:2:10
  r = sum(v) + sum(w)
endfunction
`)
	v := p.Func("f").Body[0].(*AssignStmt).RHS
	if _, ok := v.(*RangeExpr); !ok {
		t.Fatalf("v: %T", v)
	}
	w := p.Func("f").Body[1].(*AssignStmt).RHS.(*RangeExpr)
	if w.Step == nil {
		t.Fatal("w should have step")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", // no functions
		"function f(x) endfunction function f(y) endfunction", // redefined
		"function f(x) for i = end endfunction",               // bad for
		"function f(x) if x then endfunction",                 // unterminated if
		"function f(x) [a, b] = 3 endfunction",                // multi-assign non-call
		"x = 3",                                               // statement outside function
		"function f(x) y = (1 + endfunction",                  // bad expr
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseSeparators(t *testing.T) {
	// Statements can be separated by newline, ';' or ','.
	p := mustParse(t, "function r = f(x); r = x; r = r + 1, r = r * 2\nendfunction")
	if n := len(p.Func("f").Body); n != 3 {
		t.Fatalf("got %d statements, want 3", n)
	}
}

func TestParseReturnBreakContinue(t *testing.T) {
	p := mustParse(t, `
function r = f(x)
  r = 0
  for i = 1:10
    if i > 5 then
      break
    end
    if i == 2 then
      continue
    end
    r = r + i
  end
  return
endfunction
`)
	body := p.Func("f").Body
	if _, ok := body[len(body)-1].(*ReturnStmt); !ok {
		t.Fatalf("last stmt: %T", body[len(body)-1])
	}
}

func TestParseFunctionPragmas(t *testing.T) {
	p := mustParse(t, `
//@entry
//@period 10ms
function r = step(x)
  r = x
endfunction
`)
	f := p.Func("step")
	if len(f.Pragmas) != 2 || f.Pragmas[0] != "@entry" {
		t.Fatalf("pragmas: %v", f.Pragmas)
	}
}

func TestFormatExprRoundTrips(t *testing.T) {
	p := mustParse(t, `
function r = f(a, b)
  r = -a * (b + 2)
endfunction
`)
	s := FormatExpr(p.Func("f").Body[0].(*AssignStmt).RHS)
	if !strings.Contains(s, "-a") || !strings.Contains(s, "(b + 2)") {
		t.Fatalf("format: %s", s)
	}
}
