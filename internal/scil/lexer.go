package scil

import (
	"strings"
	"unicode"
)

// Lexer tokenizes scil source text. It is resumable: Next returns tokens
// one at a time and EOF forever after the input is exhausted.
type Lexer struct {
	src  []rune
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() rune {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r := l.src[l.off]
	l.off++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func isIdentStart(r rune) bool { return r == '_' || r == '%' || unicode.IsLetter(r) }
func isIdentCont(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	for {
		r := l.peek()
		if r == 0 {
			return Token{Kind: EOF, Pos: l.pos()}, nil
		}
		// Line continuation: ".." or "..." before a newline.
		if r == '.' && l.peek2() == '.' {
			start := l.pos()
			for l.peek() == '.' {
				l.advance()
			}
			for l.peek() == ' ' || l.peek() == '\t' || l.peek() == '\r' {
				l.advance()
			}
			if l.peek() == '\n' {
				l.advance()
				continue
			}
			return Token{}, errf(start, "stray '..' (line continuation must end the line)")
		}
		switch {
		case r == ' ' || r == '\t' || r == '\r':
			l.advance()
			continue
		case r == '\n':
			p := l.pos()
			l.advance()
			return Token{Kind: NEWLINE, Lit: "\n", Pos: p}, nil
		case r == '/' && l.peek2() == '/':
			p := l.pos()
			l.advance()
			l.advance()
			var sb strings.Builder
			for l.peek() != '\n' && l.peek() != 0 {
				sb.WriteRune(l.advance())
			}
			text := strings.TrimSpace(sb.String())
			if strings.HasPrefix(text, "@") {
				return Token{Kind: PRAGMA, Lit: text, Pos: p}, nil
			}
			continue // plain comment
		case isIdentStart(r):
			p := l.pos()
			var sb strings.Builder
			for isIdentCont(l.peek()) || l.peek() == '%' {
				sb.WriteRune(l.advance())
			}
			id := sb.String()
			if k, ok := keywords[id]; ok {
				return Token{Kind: k, Lit: id, Pos: p}, nil
			}
			return Token{Kind: IDENT, Lit: id, Pos: p}, nil
		case unicode.IsDigit(r) || (r == '.' && unicode.IsDigit(l.peek2())):
			return l.number()
		case r == '"' || r == '\'':
			return l.str(r)
		}
		p := l.pos()
		l.advance()
		two := func(k Kind, lit string) (Token, error) {
			l.advance()
			return Token{Kind: k, Lit: lit, Pos: p}, nil
		}
		switch r {
		case '(':
			return Token{Kind: LPAREN, Lit: "(", Pos: p}, nil
		case ')':
			return Token{Kind: RPAREN, Lit: ")", Pos: p}, nil
		case '[':
			return Token{Kind: LBRACKET, Lit: "[", Pos: p}, nil
		case ']':
			return Token{Kind: RBRACKET, Lit: "]", Pos: p}, nil
		case ',':
			return Token{Kind: COMMA, Lit: ",", Pos: p}, nil
		case ';':
			return Token{Kind: SEMICOLON, Lit: ";", Pos: p}, nil
		case ':':
			return Token{Kind: COLON, Lit: ":", Pos: p}, nil
		case '+':
			return Token{Kind: PLUS, Lit: "+", Pos: p}, nil
		case '-':
			return Token{Kind: MINUS, Lit: "-", Pos: p}, nil
		case '*':
			return Token{Kind: STAR, Lit: "*", Pos: p}, nil
		case '/':
			return Token{Kind: SLASH, Lit: "/", Pos: p}, nil
		case '^':
			return Token{Kind: CARET, Lit: "^", Pos: p}, nil
		case '&':
			return Token{Kind: AND, Lit: "&", Pos: p}, nil
		case '|':
			return Token{Kind: OR, Lit: "|", Pos: p}, nil
		case '.':
			if l.peek() == '*' {
				return two(DOTSTAR, ".*")
			}
			if l.peek() == '/' {
				return two(DOTSLASH, "./")
			}
			return Token{}, errf(p, "unexpected '.'")
		case '=':
			if l.peek() == '=' {
				return two(EQ, "==")
			}
			return Token{Kind: ASSIGN, Lit: "=", Pos: p}, nil
		case '~':
			if l.peek() == '=' {
				return two(NEQ, "~=")
			}
			return Token{Kind: NOT, Lit: "~", Pos: p}, nil
		case '<':
			if l.peek() == '=' {
				return two(LE, "<=")
			}
			if l.peek() == '>' {
				return two(NEQ, "<>")
			}
			return Token{Kind: LT, Lit: "<", Pos: p}, nil
		case '>':
			if l.peek() == '=' {
				return two(GE, ">=")
			}
			return Token{Kind: GT, Lit: ">", Pos: p}, nil
		}
		return Token{}, errf(p, "unexpected character %q", string(r))
	}
}

func (l *Lexer) number() (Token, error) {
	p := l.pos()
	var sb strings.Builder
	for unicode.IsDigit(l.peek()) {
		sb.WriteRune(l.advance())
	}
	if l.peek() == '.' && l.peek2() != '*' && l.peek2() != '/' && l.peek2() != '.' {
		sb.WriteRune(l.advance())
		for unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' || l.peek() == 'd' || l.peek() == 'D' {
		// Scilab uses both e and d exponent markers.
		saveOff, saveLine, saveCol := l.off, l.line, l.col
		mark := sb.Len()
		sb.WriteRune('e')
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			sb.WriteRune(l.advance())
		}
		if !unicode.IsDigit(l.peek()) {
			// Not an exponent after all (e.g. "4end"): rewind.
			l.off, l.line, l.col = saveOff, saveLine, saveCol
			return Token{Kind: NUMBER, Lit: sb.String()[:mark], Pos: p}, nil
		}
		for unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
	}
	return Token{Kind: NUMBER, Lit: sb.String(), Pos: p}, nil
}

func (l *Lexer) str(quote rune) (Token, error) {
	p := l.pos()
	l.advance() // opening quote
	var sb strings.Builder
	for {
		r := l.peek()
		if r == 0 || r == '\n' {
			return Token{}, errf(p, "unterminated string literal")
		}
		l.advance()
		if r == quote {
			if l.peek() == quote { // doubled quote escapes itself
				sb.WriteRune(quote)
				l.advance()
				continue
			}
			return Token{Kind: STRING, Lit: sb.String(), Pos: p}, nil
		}
		sb.WriteRune(r)
	}
}

// LexAll tokenizes the whole input, for tests and tooling.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
