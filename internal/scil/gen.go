package scil

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig controls random program generation for differential testing.
type GenConfig struct {
	// MaxDepth bounds statement nesting.
	MaxDepth int
	// MaxStmts bounds statements per block.
	MaxStmts int
	// Matrices is the number of matrix locals to pre-allocate.
	Matrices int
	// Rows/Cols are the (fixed) matrix dimensions.
	Rows, Cols int
}

// DefaultGenConfig returns the standard fuzzing configuration.
func DefaultGenConfig() GenConfig {
	return GenConfig{MaxDepth: 3, MaxStmts: 4, Matrices: 3, Rows: 4, Cols: 5}
}

// Generate produces a random program in the WCET-analysable subset: one
// entry function "fuzz(m0)" over a Rows x Cols matrix parameter, with
// statically bounded loops, branches, indexed reads/writes, scalar
// arithmetic and builtin calls. Every generated program passes
// Check(CheckWCET) and lowers successfully; the differential tests execute
// it through the interpreter, the IR and the transformation pipeline and
// require identical results.
//
// The generator is careful to keep values tame (indices from induction
// variables only, guarded divisions) so results stay finite and
// comparable.
func Generate(rng *rand.Rand, cfg GenConfig) *Program {
	g := &generator{rng: rng, cfg: cfg}
	src := g.program()
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("scil.Generate: generated source failed to parse: %v\n%s", err, src))
	}
	if errs := Check(prog, CheckWCET); len(errs) > 0 {
		panic(fmt.Sprintf("scil.Generate: generated source failed checks: %v\n%s", errs[0], src))
	}
	return prog
}

// GenerateSource is Generate returning the source text (for debugging).
func GenerateSource(rng *rand.Rand, cfg GenConfig) string {
	g := &generator{rng: rng, cfg: cfg}
	return g.program()
}

type generator struct {
	rng *rand.Rand
	cfg GenConfig
	sb  strings.Builder
	ind int
	// scalars in scope (always readable), loop ivar depth for naming.
	scalars []string
	ivars   []string
	loopN   int
}

func (g *generator) w(format string, args ...any) {
	for i := 0; i < g.ind; i++ {
		g.sb.WriteString("  ")
	}
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteString("\n")
}

func (g *generator) program() string {
	g.w("function [r, out] = fuzz(m0)")
	g.ind++
	// Pre-allocate matrices and seed scalars.
	for i := 1; i < g.cfg.Matrices; i++ {
		g.w("m%d = zeros(%d, %d)", i, g.cfg.Rows, g.cfg.Cols)
	}
	g.w("r = 0")
	g.w("s0 = 1.5")
	g.w("s1 = -2")
	g.w("t0 = 0")
	g.w("t1 = 0.25")
	g.w("t2 = 3")
	// The scalar pool is fixed and fully initialized up front so that
	// branch-local definitions can never leave a variable undefined on
	// some path (the interpreter would fault where the IR reads zero).
	g.scalars = []string{"r", "s0", "s1", "t0", "t1", "t2"}
	g.block(g.cfg.MaxDepth)
	g.w("out = zeros(%d, %d)", g.cfg.Rows, g.cfg.Cols)
	g.w("for gi = 1:%d", g.cfg.Rows)
	g.w("  for gj = 1:%d", g.cfg.Cols)
	g.w("    out(gi, gj) = m%d(gi, gj)", g.rng.Intn(g.cfg.Matrices))
	g.w("  end")
	g.w("end")
	g.ind--
	g.w("endfunction")
	return g.sb.String()
}

func (g *generator) block(depth int) {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

func (g *generator) stmt(depth int) {
	choices := 4
	if depth > 0 {
		choices = 7
	}
	switch g.rng.Intn(choices) {
	case 0, 1: // scalar assignment
		name := g.scalars[g.rng.Intn(len(g.scalars))]
		g.w("%s = %s", name, g.expr(2))
	case 2: // indexed store (only inside loops with 2 ivars; else const idx)
		mi := g.rng.Intn(g.cfg.Matrices)
		g.w("m%d(%s, %s) = %s", mi, g.idx(g.cfg.Rows), g.idx(g.cfg.Cols), g.expr(2))
	case 3: // accumulate
		g.w("r = r + %s", g.expr(1))
	case 4: // for loop
		iv := fmt.Sprintf("i%d", g.loopN)
		g.loopN++
		g.ivars = append(g.ivars, iv)
		lo := 1 + g.rng.Intn(2)
		hi := lo + g.rng.Intn(4)
		step := 1
		if g.rng.Float64() < 0.25 {
			step = 2
		}
		if step == 1 {
			g.w("for %s = %d:%d", iv, lo, hi)
		} else {
			g.w("for %s = %d:%d:%d", iv, lo, step, hi)
		}
		g.ind++
		g.block(depth - 1)
		g.ind--
		g.w("end")
		g.ivars = g.ivars[:len(g.ivars)-1]
	case 5: // if/else
		g.w("if %s > %s then", g.expr(1), g.expr(1))
		g.ind++
		g.block(depth - 1)
		g.ind--
		if g.rng.Float64() < 0.6 {
			g.w("else")
			g.ind++
			g.block(depth - 1)
			g.ind--
		}
		g.w("end")
	case 6: // bounded while (structured to terminate quickly)
		cnt := fmt.Sprintf("w%d", g.loopN)
		g.loopN++
		limit := 1 + g.rng.Intn(4)
		g.w("%s = 0", cnt)
		g.w("//@bound %d", limit+1)
		g.w("while %s < %d", cnt, limit)
		g.ind++
		g.w("%s = %s + 1", cnt, cnt)
		g.block(depth - 1)
		g.ind--
		g.w("end")
	}
}

// idx produces a valid 1-based subscript expression bounded by limit.
func (g *generator) idx(limit int) string {
	if len(g.ivars) > 0 && g.rng.Float64() < 0.7 {
		iv := g.ivars[g.rng.Intn(len(g.ivars))]
		// Loop ranges stay within 1..5; clamp into the limit.
		return fmt.Sprintf("min(%s, %d)", iv, limit)
	}
	return fmt.Sprintf("%d", 1+g.rng.Intn(limit))
}

// expr produces a tame scalar expression.
func (g *generator) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.rng.Intn(6) {
	case 0:
		return g.atom()
	case 1:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.atom())
	case 4:
		// Guarded division keeps values finite.
		return fmt.Sprintf("(%s / (2 + abs(%s)))", g.expr(depth-1), g.atom())
	default:
		fns := []string{"abs", "sqrt", "floor", "min", "max"}
		fn := fns[g.rng.Intn(len(fns))]
		if fn == "min" || fn == "max" {
			return fmt.Sprintf("%s(%s, %s)", fn, g.expr(depth-1), g.atom())
		}
		if fn == "sqrt" {
			return fmt.Sprintf("sqrt(abs(%s))", g.expr(depth-1))
		}
		return fmt.Sprintf("%s(%s)", fn, g.expr(depth-1))
	}
}

func (g *generator) atom() string {
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(7)-3)
	case 1:
		return g.scalars[g.rng.Intn(len(g.scalars))]
	case 2:
		if len(g.ivars) > 0 {
			return g.ivars[g.rng.Intn(len(g.ivars))]
		}
		return fmt.Sprintf("%g", float64(g.rng.Intn(10))/4)
	default:
		mi := g.rng.Intn(g.cfg.Matrices)
		return fmt.Sprintf("m%d(%s, %s)", mi, g.idx(g.cfg.Rows), g.idx(g.cfg.Cols))
	}
}
