package scil

import (
	"math/rand"
	"testing"
)

// TestFormatRoundTripCorpus: parse -> format -> parse -> format must be a
// fixed point, and both parses must behave identically.
func TestFormatRoundTripCorpus(t *testing.T) {
	corpus := []string{
		`function r = f(a, b)
  r = (a + b) * 2 - b / 4 + a ^ 2
endfunction`,
		`function [q, m] = g(v)
  q = 0
  for i = 1:2:9
    if v(1, i) > 0 then
      q = q + sqrt(v(1, i))
    elseif v(1, i) < -10 then
      q = q - 1
    else
      continue
    end
  end
  m = [1, 2; 3, 4]
  m(2, 1) = q
endfunction`,
		`//@entry
function r = h(x)
  r = x
  //@bound 16
  while r > 1
    r = r / 2
    if r < 0 then
      break
    end
  end
endfunction`,
		`function r = k(n)
  v = (1:10)
  w = (0:0.5:2)
  r = sum(v) + sum(w) + length(v)
  return
endfunction`,
	}
	for i, src := range corpus {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("case %d: parse: %v", i, err)
		}
		f1 := Format(p1)
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("case %d: reparse: %v\n%s", i, err, f1)
		}
		f2 := Format(p2)
		if f1 != f2 {
			t.Fatalf("case %d: format not a fixed point:\n--- first\n%s\n--- second\n%s", i, f1, f2)
		}
	}
}

// TestFormatRoundTripRandom: generated programs round-trip and the
// reparsed program computes identically.
func TestFormatRoundTripRandom(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := 0; seed < 30; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		p1 := Generate(rng, cfg)
		f1 := Format(p1)
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, f1)
		}
		if errs := Check(p2, CheckWCET); len(errs) > 0 {
			t.Fatalf("seed %d: recheck: %v", seed, errs[0])
		}
		if f2 := Format(p2); f1 != f2 {
			t.Fatalf("seed %d: not a fixed point", seed)
		}
		// Behavioural equality on one input.
		arg := NewMatrix(cfg.Rows, cfg.Cols)
		for k := range arg.Data {
			arg.Data[k] = float64(k%7) - 3
		}
		out1, err1 := NewInterp(p1).Call("fuzz", arg)
		out2, err2 := NewInterp(p2).Call("fuzz", arg)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: error divergence: %v vs %v", seed, err1, err2)
		}
		if err1 != nil {
			continue
		}
		for ri := range out1 {
			for k := range out1[ri].Data {
				if out1[ri].Data[k] != out2[ri].Data[k] {
					t.Fatalf("seed %d: result %d elem %d differs", seed, ri, k)
				}
			}
		}
	}
}

// TestFormatPreservesBoundsAndPragmas checks the analysis-relevant
// annotations survive formatting.
func TestFormatPreservesBoundsAndPragmas(t *testing.T) {
	src := `//@period 10ms
function r = f(x)
  r = x
  //@bound 32
  while r > 1
    r = r / 2
  end
endfunction`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(Format(p))
	if err != nil {
		t.Fatal(err)
	}
	f := p2.Func("f")
	if len(f.Pragmas) != 1 || f.Pragmas[0] != "@period 10ms" {
		t.Fatalf("pragmas: %v", f.Pragmas)
	}
	w, ok := f.Body[1].(*WhileStmt)
	if !ok || w.Bound != 32 {
		t.Fatalf("bound lost: %+v", f.Body[1])
	}
}
