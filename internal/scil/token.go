// Package scil implements the ARGO behavioural language: a statically
// analysable subset of Scilab used to describe the behaviour of Xcos blocks
// and whole model-based applications.
//
// The subset is chosen so that programs are amenable to static WCET
// analysis after lowering to the ARGO IR:
//
//   - values are float64 scalars and dense 2-D matrices,
//   - indexing is 1-based with parentheses, as in Scilab,
//   - "for" loops iterate over affine ranges lo:hi or lo:step:hi,
//   - "while" loops must carry a //@bound N pragma giving a worst-case
//     iteration bound,
//   - recursion is rejected by the semantic checker.
//
// The package provides a lexer, a recursive-descent parser producing an
// AST, a semantic checker, and a reference interpreter used as the
// semantic oracle for the compiler pipeline (transformations must preserve
// interpreter-observable behaviour).
package scil

import "fmt"

// Kind enumerates lexical token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	NEWLINE
	IDENT
	NUMBER
	STRING

	// Punctuation and operators.
	LPAREN    // (
	RPAREN    // )
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	ASSIGN    // =
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	CARET     // ^
	EQ        // ==
	NEQ       // ~= or <>
	LT        // <
	LE        // <=
	GT        // >
	GE        // >=
	AND       // &
	OR        // |
	NOT       // ~
	DOTSTAR   // .* (element-wise multiply; same as * for our dense model)
	DOTSLASH  // ./

	// Keywords.
	KWFUNCTION
	KWENDFUNCTION
	KWFOR
	KWWHILE
	KWIF
	KWTHEN
	KWELSE
	KWELSEIF
	KWEND
	KWDO
	KWBREAK
	KWCONTINUE
	KWRETURN

	// PRAGMA is a //@... comment carrying analysis annotations.
	PRAGMA
)

var kindNames = map[Kind]string{
	EOF: "eof", NEWLINE: "newline", IDENT: "identifier", NUMBER: "number",
	STRING: "string", LPAREN: "(", RPAREN: ")", LBRACKET: "[", RBRACKET: "]",
	COMMA: ",", SEMICOLON: ";", COLON: ":", ASSIGN: "=", PLUS: "+",
	MINUS: "-", STAR: "*", SLASH: "/", CARET: "^", EQ: "==", NEQ: "~=",
	LT: "<", LE: "<=", GT: ">", GE: ">=", AND: "&", OR: "|", NOT: "~",
	DOTSTAR: ".*", DOTSLASH: "./",
	KWFUNCTION: "function", KWENDFUNCTION: "endfunction", KWFOR: "for",
	KWWHILE: "while", KWIF: "if", KWTHEN: "then", KWELSE: "else",
	KWELSEIF: "elseif", KWEND: "end", KWDO: "do", KWBREAK: "break",
	KWCONTINUE: "continue", KWRETURN: "return", PRAGMA: "pragma",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"function": KWFUNCTION, "endfunction": KWENDFUNCTION, "for": KWFOR,
	"while": KWWHILE, "if": KWIF, "then": KWTHEN, "else": KWELSE,
	"elseif": KWELSEIF, "end": KWEND, "do": KWDO, "break": KWBREAK,
	"continue": KWCONTINUE, "return": KWRETURN,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source position and literal text.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

// Error is a front-end diagnostic anchored at a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("scil:%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
