package scil_test

import (
	"testing"

	"argo/internal/scil"
	"argo/internal/usecases"
)

// FuzzParseSCIL asserts the parser's robustness contract on arbitrary
// byte strings: it never panics (malformed input turns into an error),
// and whenever it accepts an input, parse∘format is a fixed point — the
// formatter emits canonical source the parser accepts again, and
// formatting that reparse changes nothing. This is the fuzz extension of
// the argofmt round-trip corpus tests in format_test.go.
//
// Run the full fuzzer with: go test -fuzz=FuzzParseSCIL ./internal/scil
func FuzzParseSCIL(f *testing.F) {
	seeds := []string{
		"",
		"function r = f(a)\n  r = a\nendfunction",
		"function [q, m] = g(v)\n  q = 0\n  for i = 1:2:9\n    q = q + v(1, i)\n  end\n  m = [1, 2; 3, 4]\nendfunction",
		"//@entry\nfunction r = h(x)\n  //@bound 16\n  while x > 1\n    x = x / 2\n  end\n  r = x\nendfunction",
		"function r = k(n)\n  v = (1:10)\n  r = sum(v) + length(v)\n  return\nendfunction",
		"function r = f(a, b)\n  if a > b then\n    r = a\n  elseif a < b then\n    r = b\n  else\n    r = 0\n  end\nendfunction",
		// Malformed shards that must error, not panic.
		"function",
		"function r = f(\nendfunction",
		"r = [1, 2; 3",
		"function r = f(a)\n  r = a(\nendfunction",
		"\x00\xff\xfe",
		"function r = f(a)\n  r = 1e99999\nendfunction",
	}
	for _, u := range usecases.All() {
		seeds = append(seeds, u.Source)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := scil.Parse(src)
		if err != nil {
			return // rejection is fine; panicking is the bug
		}
		f1 := scil.Format(p1)
		p2, err := scil.Parse(f1)
		if err != nil {
			t.Fatalf("formatter emitted unparsable source: %v\n--- input\n%q\n--- formatted\n%s", err, src, f1)
		}
		if f2 := scil.Format(p2); f1 != f2 {
			t.Fatalf("parse∘format not a fixed point:\n--- first\n%s\n--- second\n%s", f1, f2)
		}
	})
}
