package scil

import (
	"strconv"
	"strings"
)

// Parser builds an AST from scil source. It is a plain recursive-descent
// parser over a pre-lexed token slice.
type Parser struct {
	toks []Token
	i    int
}

// Parse parses a full scil source unit.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	var pendingPragmas []string
	for {
		p.skipSeps()
		t := p.peek()
		switch t.Kind {
		case EOF:
			if len(prog.Funcs) == 0 {
				return nil, errf(t.Pos, "no function definitions in source")
			}
			return prog, nil
		case PRAGMA:
			pendingPragmas = append(pendingPragmas, t.Lit)
			p.next()
		case KWFUNCTION:
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Pragmas = pendingPragmas
			pendingPragmas = nil
			if prog.Func(f.Name) != nil {
				return nil, errf(f.Pos, "function %q redefined", f.Name)
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, errf(t.Pos, "expected 'function', got %s", t.Kind)
		}
	}
}

func (p *Parser) peek() Token { return p.toks[p.i] }

func (p *Parser) peekAhead(n int) Token {
	j := p.i + n
	if j >= len(p.toks) {
		j = len(p.toks) - 1
	}
	return p.toks[j]
}

func (p *Parser) next() Token {
	t := p.toks[p.i]
	if t.Kind != EOF {
		p.i++
	}
	return t
}

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, got %s %q", k, t.Kind, t.Lit)
	}
	return p.next(), nil
}

// skipSeps consumes newlines and semicolons/commas at statement level.
func (p *Parser) skipSeps() {
	for {
		switch p.peek().Kind {
		case NEWLINE, SEMICOLON, COMMA:
			p.next()
		default:
			return
		}
	}
}

func (p *Parser) skipNewlines() {
	for p.peek().Kind == NEWLINE {
		p.next()
	}
}

// funcDecl parses: function [r1, r2] = name(p1, p2) body endfunction
// or the single-result form: function r = name(args) ... endfunction
// or the no-result form: function name(args) ... endfunction.
func (p *Parser) funcDecl() (*FuncDecl, error) {
	kw, err := p.expect(KWFUNCTION)
	if err != nil {
		return nil, err
	}
	f := &FuncDecl{Pos: kw.Pos}
	switch p.peek().Kind {
	case LBRACKET:
		p.next()
		for {
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			f.Results = append(f.Results, id.Lit)
			if p.peek().Kind == COMMA {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(RBRACKET); err != nil {
			return nil, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		f.Name = id.Lit
	case IDENT:
		// Either "r = name(...)" or "name(...)": disambiguate on '='.
		first := p.next()
		if p.peek().Kind == ASSIGN {
			p.next()
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			f.Results = []string{first.Lit}
			f.Name = id.Lit
		} else {
			f.Name = first.Lit
		}
	default:
		return nil, errf(p.peek().Pos, "expected function header, got %s", p.peek().Kind)
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	if p.peek().Kind != RPAREN {
		for {
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, id.Lit)
			if p.peek().Kind == COMMA {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.stmtList(KWENDFUNCTION)
	if err != nil {
		return nil, err
	}
	f.Body = body
	if _, err := p.expect(KWENDFUNCTION); err != nil {
		return nil, err
	}
	return f, nil
}

// stmtList parses statements until one of the stop keywords (not consumed).
func (p *Parser) stmtList(stops ...Kind) ([]Stmt, error) {
	isStop := func(k Kind) bool {
		for _, s := range stops {
			if k == s {
				return true
			}
		}
		return false
	}
	var out []Stmt
	var pendingBound int
	for {
		p.skipSeps()
		t := p.peek()
		if t.Kind == EOF {
			return nil, errf(t.Pos, "unexpected end of input (missing 'end'/'endfunction')")
		}
		if isStop(t.Kind) {
			return out, nil
		}
		if t.Kind == PRAGMA {
			p.next()
			if b, ok := parseBoundPragma(t.Lit); ok {
				pendingBound = b
			}
			continue
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if w, ok := s.(*WhileStmt); ok && pendingBound > 0 {
			w.Bound = pendingBound
		}
		pendingBound = 0
		out = append(out, s)
	}
}

// parseBoundPragma parses "@bound N".
func parseBoundPragma(text string) (int, bool) {
	fields := strings.Fields(text)
	if len(fields) != 2 || fields[0] != "@bound" {
		return 0, false
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

func (p *Parser) stmt() (Stmt, error) {
	t := p.peek()
	switch t.Kind {
	case KWFOR:
		return p.forStmt()
	case KWWHILE:
		return p.whileStmt()
	case KWIF:
		return p.ifStmt()
	case KWBREAK:
		p.next()
		return &BreakStmt{Pos: t.Pos}, nil
	case KWCONTINUE:
		p.next()
		return &ContinueStmt{Pos: t.Pos}, nil
	case KWRETURN:
		p.next()
		return &ReturnStmt{Pos: t.Pos}, nil
	case LBRACKET:
		// Could be a multi-assignment "[a,b] = f(...)" — detect by scanning
		// for "] =" with balanced brackets; otherwise it is a matrix-literal
		// expression statement.
		if p.isMultiAssign() {
			return p.multiAssign()
		}
		return p.exprOrAssign()
	default:
		return p.exprOrAssign()
	}
}

// isMultiAssign reports whether the upcoming tokens look like "[i1, i2] =".
func (p *Parser) isMultiAssign() bool {
	j := 1 // past '['
	for {
		t := p.peekAhead(j)
		switch t.Kind {
		case IDENT:
			j++
			if p.peekAhead(j).Kind == COMMA {
				j++
				continue
			}
			if p.peekAhead(j).Kind == RBRACKET {
				return p.peekAhead(j+1).Kind == ASSIGN
			}
			return false
		default:
			return false
		}
	}
}

func (p *Parser) multiAssign() (Stmt, error) {
	lb := p.next() // '['
	var lhs []*LValue
	for {
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		lhs = append(lhs, &LValue{Name: id.Lit, Pos: id.Pos})
		if p.peek().Kind == COMMA {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(RBRACKET); err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, ok := rhs.(*CallExpr); !ok {
		return nil, errf(lb.Pos, "multi-assignment right-hand side must be a function call")
	}
	return &AssignStmt{LHS: lhs, RHS: rhs, Pos: lb.Pos}, nil
}

// exprOrAssign parses either "lvalue = expr" or a bare expression statement.
func (p *Parser) exprOrAssign() (Stmt, error) {
	start := p.peek().Pos
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != ASSIGN {
		return &ExprStmt{X: e, Pos: start}, nil
	}
	p.next() // '='
	lv, err := exprToLValue(e)
	if err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: []*LValue{lv}, RHS: rhs, Pos: start}, nil
}

func exprToLValue(e Expr) (*LValue, error) {
	switch x := e.(type) {
	case *Ident:
		return &LValue{Name: x.Name, Pos: x.Pos}, nil
	case *CallExpr:
		return &LValue{Name: x.Name, Index: x.Args, Pos: x.Pos}, nil
	}
	return nil, errf(e.ExprPos(), "invalid assignment target %s", FormatExpr(e))
}

func (p *Parser) forStmt() (Stmt, error) {
	kw := p.next()
	id, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	lo, err := p.exprNoRange()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	mid, err := p.exprNoRange()
	if err != nil {
		return nil, err
	}
	st := &ForStmt{Var: id.Lit, Lo: lo, Hi: mid, Pos: kw.Pos}
	if p.peek().Kind == COLON {
		p.next()
		hi, err := p.exprNoRange()
		if err != nil {
			return nil, err
		}
		st.Step = mid
		st.Hi = hi
	}
	if p.peek().Kind == KWDO {
		p.next()
	}
	body, err := p.stmtList(KWEND)
	if err != nil {
		return nil, err
	}
	st.Body = body
	if _, err := p.expect(KWEND); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	kw := p.next()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if k := p.peek().Kind; k == KWDO || k == KWTHEN {
		p.next()
	}
	body, err := p.stmtList(KWEND)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWEND); err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: kw.Pos}, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	kw := p.next() // 'if' or 'elseif'
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	if _, err := p.expect(KWTHEN); err != nil {
		return nil, err
	}
	then, err := p.stmtList(KWEND, KWELSE, KWELSEIF)
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	switch p.peek().Kind {
	case KWELSEIF:
		inner, err := p.ifStmt() // consumes through matching 'end'
		if err != nil {
			return nil, err
		}
		st.Else = []Stmt{inner}
		return st, nil
	case KWELSE:
		p.next()
		els, err := p.stmtList(KWEND)
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	if _, err := p.expect(KWEND); err != nil {
		return nil, err
	}
	return st, nil
}

// Expression parsing: precedence climbing.
//
//	or:   |
//	and:  &
//	not:  ~
//	cmp:  == ~= < <= > >=
//	range: lo:hi, lo:step:hi  (only where ranges are allowed)
//	add:  + -
//	mul:  * / .* ./
//	unary: -
//	pow:  ^ (right-assoc)
//	postfix: name(args)
func (p *Parser) expr() (Expr, error) { return p.orExpr(true) }

// exprNoRange parses an expression in a context where ':' has structural
// meaning (for-loop headers), so ranges must be parenthesised.
func (p *Parser) exprNoRange() (Expr, error) { return p.orExpr(false) }

func (p *Parser) orExpr(allowRange bool) (Expr, error) {
	x, err := p.andExpr(allowRange)
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == OR {
		op := p.next()
		y, err := p.andExpr(allowRange)
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: OR, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *Parser) andExpr(allowRange bool) (Expr, error) {
	x, err := p.notExpr(allowRange)
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == AND {
		op := p.next()
		y, err := p.notExpr(allowRange)
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: AND, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *Parser) notExpr(allowRange bool) (Expr, error) {
	if p.peek().Kind == NOT {
		op := p.next()
		x, err := p.notExpr(allowRange)
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: NOT, X: x, Pos: op.Pos}, nil
	}
	return p.cmpExpr(allowRange)
}

func (p *Parser) cmpExpr(allowRange bool) (Expr, error) {
	x, err := p.rangeExpr(allowRange)
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().Kind
		if k != EQ && k != NEQ && k != LT && k != LE && k != GT && k != GE {
			return x, nil
		}
		op := p.next()
		y, err := p.rangeExpr(allowRange)
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: op.Kind, X: x, Y: y, Pos: op.Pos}
	}
}

func (p *Parser) rangeExpr(allowRange bool) (Expr, error) {
	x, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if !allowRange || p.peek().Kind != COLON {
		return x, nil
	}
	pos := p.next().Pos
	mid, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	r := &RangeExpr{Lo: x, Hi: mid, Pos: pos}
	if p.peek().Kind == COLON {
		p.next()
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		r.Step = mid
		r.Hi = hi
	}
	return r, nil
}

func (p *Parser) addExpr() (Expr, error) {
	x, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().Kind
		if k != PLUS && k != MINUS {
			return x, nil
		}
		op := p.next()
		y, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: op.Kind, X: x, Y: y, Pos: op.Pos}
	}
}

func (p *Parser) mulExpr() (Expr, error) {
	x, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().Kind
		if k != STAR && k != SLASH && k != DOTSTAR && k != DOTSLASH {
			return x, nil
		}
		op := p.next()
		y, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: op.Kind, X: x, Y: y, Pos: op.Pos}
	}
}

func (p *Parser) unaryExpr() (Expr, error) {
	t := p.peek()
	if t.Kind == MINUS {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: MINUS, X: x, Pos: t.Pos}, nil
	}
	if t.Kind == PLUS {
		p.next()
		return p.unaryExpr()
	}
	return p.powExpr()
}

func (p *Parser) powExpr() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != CARET {
		return x, nil
	}
	op := p.next()
	// Right-associative: exponent may itself be a unary/pow expression.
	y, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	return &BinExpr{Op: CARET, X: x, Y: y, Pos: op.Pos}, nil
}

func (p *Parser) primary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case NUMBER:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, errf(t.Pos, "malformed number %q", t.Lit)
		}
		return &NumberLit{Value: v, Pos: t.Pos}, nil
	case STRING:
		p.next()
		return &StringLit{Value: t.Lit, Pos: t.Pos}, nil
	case IDENT:
		p.next()
		if p.peek().Kind != LPAREN {
			return &Ident{Name: t.Lit, Pos: t.Pos}, nil
		}
		p.next() // '('
		var args []Expr
		if p.peek().Kind != RPAREN {
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.peek().Kind == COMMA {
					p.next()
					continue
				}
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &CallExpr{Name: t.Lit, Args: args, Pos: t.Pos}, nil
	case LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case LBRACKET:
		return p.matrixLit()
	}
	return nil, errf(t.Pos, "unexpected token %s %q in expression", t.Kind, t.Lit)
}

// matrixLit parses [e, e; e, e]. Rows are separated by ';', elements by ','.
func (p *Parser) matrixLit() (Expr, error) {
	lb := p.next() // '['
	m := &MatrixLit{Pos: lb.Pos}
	if p.peek().Kind == RBRACKET {
		p.next()
		return m, nil // empty matrix
	}
	row := []Expr{}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		row = append(row, e)
		switch p.peek().Kind {
		case COMMA:
			p.next()
		case SEMICOLON:
			p.next()
			m.Rows = append(m.Rows, row)
			row = []Expr{}
		case RBRACKET:
			p.next()
			m.Rows = append(m.Rows, row)
			return m, nil
		default:
			return nil, errf(p.peek().Pos, "expected ',', ';' or ']' in matrix literal, got %s", p.peek().Kind)
		}
	}
}
