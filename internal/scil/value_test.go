package scil

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValueTruthy(t *testing.T) {
	if !Scalar(1).Truthy() || Scalar(0).Truthy() {
		t.Fatal("scalar truthiness")
	}
	all := MatrixOf(2, 2, []float64{1, 2, 3, 4})
	some := MatrixOf(2, 2, []float64{1, 0, 3, 4})
	if !all.Truthy() || some.Truthy() {
		t.Fatal("matrix truthiness is all-nonzero")
	}
	empty := NewMatrix(0, 0)
	if empty.Truthy() {
		t.Fatal("empty matrix is falsy")
	}
}

func TestValueCloneIndependence(t *testing.T) {
	a := MatrixOf(2, 2, []float64{1, 2, 3, 4})
	b := a.Clone()
	b.Set(1, 1, 99)
	if a.At(1, 1) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestElementwiseBroadcast(t *testing.T) {
	m := MatrixOf(2, 3, []float64{1, 2, 3, 4, 5, 6})
	out, err := elementwise(Scalar(10), m, func(a, b float64) float64 { return a * b })
	if err != nil {
		t.Fatal(err)
	}
	if out.At(2, 3) != 60 || out.IsScalar {
		t.Fatalf("broadcast: %+v", out)
	}
	if _, err := elementwise(MatrixOf(1, 2, []float64{1, 2}), MatrixOf(2, 1, []float64{1, 2}),
		func(a, b float64) float64 { return a + b }); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestMatMulErrors(t *testing.T) {
	a := MatrixOf(2, 3, make([]float64, 6))
	b := MatrixOf(2, 3, make([]float64, 6))
	if _, err := matMul(a, b); err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyBinComparisonsAndLogic(t *testing.T) {
	check := func(op Kind, a, b, want float64) {
		t.Helper()
		out, err := applyBin(op, Scalar(a), Scalar(b))
		if err != nil {
			t.Fatal(err)
		}
		if out.ScalarVal() != want {
			t.Fatalf("op %v (%g, %g) = %g, want %g", op, a, b, out.ScalarVal(), want)
		}
	}
	check(EQ, 2, 2, 1)
	check(NEQ, 2, 2, 0)
	check(LT, 1, 2, 1)
	check(LE, 2, 2, 1)
	check(GT, 3, 2, 1)
	check(GE, 1, 2, 0)
	check(AND, 1, 0, 0)
	check(AND, 2, 3, 1)
	check(OR, 0, 0, 0)
	check(OR, 0, 5, 1)
}

// Property: At/Set round-trips for arbitrary in-range coordinates.
func TestAtSetRoundTripProperty(t *testing.T) {
	f := func(r8, c8 uint8, v float64) bool {
		rows := 1 + int(r8%7)
		cols := 1 + int(c8%7)
		m := NewMatrix(rows, cols)
		i := 1 + int(r8)%rows
		j := 1 + int(c8)%cols
		m.Set(i, j, v)
		return m.At(i, j) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: elementwise addition commutes (same shapes).
func TestElementwiseCommutesProperty(t *testing.T) {
	f := func(data [6]float64, data2 [6]float64) bool {
		a := MatrixOf(2, 3, data[:])
		b := MatrixOf(2, 3, data2[:])
		x, err1 := applyBin(PLUS, a, b)
		y, err2 := applyBin(PLUS, b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		for k := range x.Data {
			if x.Data[k] != y.Data[k] && !(x.Data[k] != x.Data[k] && y.Data[k] != y.Data[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueString(t *testing.T) {
	if Scalar(2.5).String() != "2.5" {
		t.Fatalf("scalar string: %s", Scalar(2.5))
	}
	if NewMatrix(3, 4).String() != "matrix(3x4)" {
		t.Fatalf("matrix string: %s", NewMatrix(3, 4))
	}
}
