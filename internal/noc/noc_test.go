package noc

import (
	"testing"

	"argo/internal/adl"
)

func spec() adl.NoCSpec {
	return adl.NoCSpec{
		Width: 4, Height: 4, LinkCycles: 2, RouterCycles: 3,
		FlitBytes: 8, WRRWeight: 4, MaxPacketFlits: 16,
	}
}

func TestRouteXY(t *testing.T) {
	r := Route(Coord{0, 0}, Coord{2, 1})
	if len(r) != 3 {
		t.Fatalf("route length %d, want 3", len(r))
	}
	// X first, then Y.
	if r[0].to != (Coord{1, 0}) || r[1].to != (Coord{2, 0}) || r[2].to != (Coord{2, 1}) {
		t.Fatalf("route: %+v", r)
	}
	if Hops(Coord{0, 0}, Coord{2, 1}) != 3 {
		t.Fatal("hops")
	}
}

func TestValidateRejectsBadFlows(t *testing.T) {
	cases := []Config{
		{Spec: spec(), Flows: []Flow{{ID: 0, Src: Coord{0, 0}, Dst: Coord{9, 0}, PacketFlits: 2, PeriodCycles: 100}}},
		{Spec: spec(), Flows: []Flow{{ID: 0, Src: Coord{0, 0}, Dst: Coord{0, 0}, PacketFlits: 2, PeriodCycles: 100}}},
		{Spec: spec(), Flows: []Flow{{ID: 0, Src: Coord{0, 0}, Dst: Coord{1, 0}, PacketFlits: 99, PeriodCycles: 100}}},
		{Spec: spec(), Flows: []Flow{{ID: 0, Src: Coord{0, 0}, Dst: Coord{1, 0}, PacketFlits: 2, PeriodCycles: 0}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestWorstCaseLatencyIsolatedFlow(t *testing.T) {
	c := &Config{Spec: spec(), Flows: []Flow{
		{ID: 0, Src: Coord{0, 0}, Dst: Coord{3, 0}, PacketFlits: 4, PeriodCycles: 1000},
	}}
	wc, err := c.WorstCaseLatency(0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 hops, no competition: per hop 4 flits * 2 + 3 router = 11.
	if wc != 33 {
		t.Fatalf("latency bound = %d, want 33", wc)
	}
}

func TestWorstCaseLatencyGrowsWithCompetition(t *testing.T) {
	base := &Config{Spec: spec(), Flows: []Flow{
		{ID: 0, Src: Coord{0, 0}, Dst: Coord{3, 0}, PacketFlits: 4, PeriodCycles: 1000},
	}}
	wc0, _ := base.WorstCaseLatency(0)
	crowded := &Config{Spec: spec(), Flows: []Flow{
		{ID: 0, Src: Coord{0, 0}, Dst: Coord{3, 0}, PacketFlits: 4, PeriodCycles: 1000},
		{ID: 1, Src: Coord{1, 0}, Dst: Coord{3, 0}, PacketFlits: 4, PeriodCycles: 1000},
		{ID: 2, Src: Coord{2, 0}, Dst: Coord{3, 0}, PacketFlits: 4, PeriodCycles: 1000},
	}}
	wc1, _ := crowded.WorstCaseLatency(0)
	if wc1 <= wc0 {
		t.Fatalf("competition should raise the bound: %d vs %d", wc1, wc0)
	}
}

func TestWorstCaseLatencyOnlySharedLinksCount(t *testing.T) {
	// A flow on a disjoint row must not affect flow 0's bound.
	base := &Config{Spec: spec(), Flows: []Flow{
		{ID: 0, Src: Coord{0, 0}, Dst: Coord{3, 0}, PacketFlits: 4, PeriodCycles: 1000},
		{ID: 1, Src: Coord{0, 2}, Dst: Coord{3, 2}, PacketFlits: 4, PeriodCycles: 1000},
	}}
	wc, _ := base.WorstCaseLatency(0)
	if wc != 33 {
		t.Fatalf("disjoint flow changed the bound: %d", wc)
	}
}

func TestSimulateDeliversIsolatedFlow(t *testing.T) {
	c := &Config{Spec: spec(), Flows: []Flow{
		{ID: 0, Src: Coord{0, 0}, Dst: Coord{3, 0}, PacketFlits: 4, PeriodCycles: 200},
	}}
	res, err := Simulate(c, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered[0] < 20 {
		t.Fatalf("delivered %d packets", res.Delivered[0])
	}
	wc, _ := c.WorstCaseLatency(0)
	if res.MaxLatency[0] > wc {
		t.Fatalf("simulated max %d exceeds bound %d", res.MaxLatency[0], wc)
	}
	if res.MaxLatency[0] <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestSimulatedMaxWithinBoundUnderContention(t *testing.T) {
	flows := []Flow{
		{ID: 0, Src: Coord{0, 0}, Dst: Coord{3, 3}, PacketFlits: 4, PeriodCycles: 300},
		{ID: 1, Src: Coord{1, 0}, Dst: Coord{3, 3}, PacketFlits: 8, PeriodCycles: 400},
		{ID: 2, Src: Coord{2, 0}, Dst: Coord{3, 3}, PacketFlits: 2, PeriodCycles: 250},
		{ID: 3, Src: Coord{0, 1}, Dst: Coord{3, 1}, PacketFlits: 4, PeriodCycles: 350},
	}
	c := &Config{Spec: spec(), Flows: flows}
	res, err := Simulate(c, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if res.Delivered[f.ID] == 0 {
			t.Fatalf("flow %d delivered nothing", f.ID)
		}
		wc, err := c.WorstCaseLatency(f.ID)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxLatency[f.ID] > wc {
			t.Fatalf("flow %d: simulated max %d exceeds bound %d", f.ID, res.MaxLatency[f.ID], wc)
		}
	}
}

func TestSimulateContentionRaisesObservedLatency(t *testing.T) {
	solo := &Config{Spec: spec(), Flows: []Flow{
		{ID: 0, Src: Coord{0, 0}, Dst: Coord{3, 0}, PacketFlits: 8, PeriodCycles: 100},
	}}
	rSolo, _ := Simulate(solo, 20000)
	crowd := &Config{Spec: spec(), Flows: []Flow{
		{ID: 0, Src: Coord{0, 0}, Dst: Coord{3, 0}, PacketFlits: 8, PeriodCycles: 100},
		{ID: 1, Src: Coord{0, 0}, Dst: Coord{3, 0}, PacketFlits: 8, PeriodCycles: 100},
		{ID: 2, Src: Coord{1, 0}, Dst: Coord{3, 0}, PacketFlits: 8, PeriodCycles: 100},
	}}
	rCrowd, _ := Simulate(crowd, 20000)
	if rCrowd.MaxLatency[0] <= rSolo.MaxLatency[0] {
		t.Fatalf("contention should raise observed latency: %d vs %d", rCrowd.MaxLatency[0], rSolo.MaxLatency[0])
	}
}

func TestMeanLatencyBelowMax(t *testing.T) {
	c := &Config{Spec: spec(), Flows: []Flow{
		{ID: 0, Src: Coord{0, 0}, Dst: Coord{2, 2}, PacketFlits: 4, PeriodCycles: 150},
		{ID: 1, Src: Coord{1, 0}, Dst: Coord{2, 2}, PacketFlits: 4, PeriodCycles: 170},
	}}
	res, err := Simulate(c, 30000)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id <= 1; id++ {
		if res.MeanLatency(id) > float64(res.MaxLatency[id]) {
			t.Fatalf("flow %d mean %f > max %d", id, res.MeanLatency(id), res.MaxLatency[id])
		}
	}
}

func TestWRRWeightImprovesOwnLatencyBound(t *testing.T) {
	mk := func(w int) int64 {
		c := &Config{Spec: spec(), Flows: []Flow{
			{ID: 0, Src: Coord{0, 0}, Dst: Coord{3, 0}, PacketFlits: 8, PeriodCycles: 500, Weight: w},
			{ID: 1, Src: Coord{0, 0}, Dst: Coord{3, 0}, PacketFlits: 8, PeriodCycles: 500},
		}}
		wc, err := c.WorstCaseLatency(0)
		if err != nil {
			t.Fatal(err)
		}
		return wc
	}
	if mk(8) >= mk(1) {
		t.Fatalf("higher weight should lower the bound: w8=%d w1=%d", mk(8), mk(1))
	}
}

func TestSegmentTransfer(t *testing.T) {
	s := spec() // flit 8 bytes, max 16 flits/packet
	cases := []struct {
		bytes          int
		packets, flits int
	}{
		{0, 0, 0},
		{8, 1, 16},
		{128, 1, 16}, // exactly one max packet
		{129, 2, 16}, // spills into a second packet
		{1024, 8, 16},
	}
	for _, c := range cases {
		p, f := SegmentTransfer(s, c.bytes)
		if p != c.packets || (c.packets > 0 && f != c.flits) {
			t.Errorf("SegmentTransfer(%d) = (%d, %d), want (%d, %d)", c.bytes, p, f, c.packets, c.flits)
		}
	}
}

func TestWorstCaseTransferLatencyScalesWithSize(t *testing.T) {
	c := &Config{Spec: spec(), Flows: []Flow{
		{ID: 0, Src: Coord{0, 0}, Dst: Coord{3, 0}, PacketFlits: 4, PeriodCycles: 500},
	}}
	small, err := c.WorstCaseTransferLatency(Coord{0, 1}, Coord{3, 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	big, err := c.WorstCaseTransferLatency(Coord{0, 1}, Coord{3, 1}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if small <= 0 || big <= small {
		t.Fatalf("transfer bounds: %d vs %d", small, big)
	}
	// 4096 bytes = 512 flits = 32 packets; linear in packets.
	if big != 32*small {
		t.Fatalf("expected linear segmentation: %d vs 32*%d", big, small)
	}
	// Crossing the competing flow's row costs more than a quiet row.
	quiet, _ := c.WorstCaseTransferLatency(Coord{0, 2}, Coord{3, 2}, 1024)
	busy, _ := c.WorstCaseTransferLatency(Coord{0, 0}, Coord{3, 0}, 1024)
	if busy <= quiet {
		t.Fatalf("competition must raise the transfer bound: %d vs %d", busy, quiet)
	}
}

func TestWorstCaseTransferZeroBytes(t *testing.T) {
	c := &Config{Spec: spec()}
	got, err := c.WorstCaseTransferLatency(Coord{0, 0}, Coord{1, 0}, 0)
	if err != nil || got != 0 {
		t.Fatalf("got %d, %v", got, err)
	}
}
