// Package noc models the invasive-NoC-style mesh interconnect of the KIT
// tile platform (paper §IV-C, ref [12] Heißwolf/König/Becker): a 2-D mesh
// with dimension-ordered (XY) routing and weighted-round-robin link
// arbitration, providing the per-flow bandwidth and latency guarantees
// that accurate system-level WCET analysis requires.
//
// The package provides both an analytical worst-case packet latency bound
// per flow and a cycle-level store-and-forward simulation; experiment E5
// validates bound >= simulated maximum across load levels.
package noc

import (
	"fmt"
	"sort"

	"argo/internal/adl"
)

// Coord is a mesh tile coordinate.
type Coord struct{ X, Y int }

// Flow is one periodic traffic stream through the mesh.
type Flow struct {
	ID  int
	Src Coord
	Dst Coord
	// PacketFlits is the packet size in flits.
	PacketFlits int
	// PeriodCycles is the injection period (one packet per period).
	PeriodCycles int
	// Weight is the flow's WRR weight (0 means the spec default).
	Weight int
}

// Config is a NoC analysis/simulation scenario.
type Config struct {
	Spec  adl.NoCSpec
	Flows []Flow
}

func (c *Config) weight(f Flow) int {
	if f.Weight > 0 {
		return f.Weight
	}
	return c.Spec.WRRWeight
}

// link identifies a directed mesh link between adjacent tiles.
type link struct {
	from, to Coord
}

// Route returns the XY route of a flow as the sequence of directed links.
func Route(src, dst Coord) []link {
	var out []link
	cur := src
	for cur.X != dst.X {
		next := cur
		if dst.X > cur.X {
			next.X++
		} else {
			next.X--
		}
		out = append(out, link{cur, next})
		cur = next
	}
	for cur.Y != dst.Y {
		next := cur
		if dst.Y > cur.Y {
			next.Y++
		} else {
			next.Y--
		}
		out = append(out, link{cur, next})
		cur = next
	}
	return out
}

// Hops returns the XY hop count between two tiles.
func Hops(src, dst Coord) int {
	dx := src.X - dst.X
	if dx < 0 {
		dx = -dx
	}
	dy := src.Y - dst.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Validate checks the scenario against the mesh dimensions.
func (c *Config) Validate() error {
	for _, f := range c.Flows {
		for _, p := range []Coord{f.Src, f.Dst} {
			if p.X < 0 || p.X >= c.Spec.Width || p.Y < 0 || p.Y >= c.Spec.Height {
				return fmt.Errorf("noc: flow %d endpoint (%d,%d) outside %dx%d mesh", f.ID, p.X, p.Y, c.Spec.Width, c.Spec.Height)
			}
		}
		if f.Src == f.Dst {
			return fmt.Errorf("noc: flow %d has identical endpoints", f.ID)
		}
		if f.PacketFlits <= 0 || f.PacketFlits > c.Spec.MaxPacketFlits {
			return fmt.Errorf("noc: flow %d packet size %d outside (0, %d]", f.ID, f.PacketFlits, c.Spec.MaxPacketFlits)
		}
		if f.PeriodCycles <= 0 {
			return fmt.Errorf("noc: flow %d period must be positive", f.ID)
		}
	}
	return nil
}

// WorstCaseLatency returns the analytical per-packet latency bound of the
// flow with the given id under WRR arbitration: at every link of its
// route, each competing flow may be served up to its full weight per
// round, and our packet needs ceil(F/w) rounds; each hop additionally
// pays the router pipeline and the packet's own serialization.
func (c *Config) WorstCaseLatency(flowID int) (int64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	var flow *Flow
	for i := range c.Flows {
		if c.Flows[i].ID == flowID {
			flow = &c.Flows[i]
		}
	}
	if flow == nil {
		return 0, fmt.Errorf("noc: unknown flow %d", flowID)
	}
	route := Route(flow.Src, flow.Dst)
	w := c.weight(*flow)
	rounds := (flow.PacketFlits + w - 1) / w
	var total int64
	for _, l := range route {
		var competing int64
		for _, other := range c.Flows {
			if other.ID == flow.ID {
				continue
			}
			for _, ol := range Route(other.Src, other.Dst) {
				if ol == l {
					competing += int64(c.weight(other))
					break
				}
			}
		}
		// Waiting: competing flows' service in every round our packet
		// needs; transfer: our own flits; router: pipeline latency.
		hop := int64(rounds)*competing*int64(c.Spec.LinkCycles) +
			int64(flow.PacketFlits)*int64(c.Spec.LinkCycles) +
			int64(c.Spec.RouterCycles)
		total += hop
	}
	return total, nil
}

// SegmentTransfer splits a bulk transfer of `bytes` into packets that
// respect the mesh's MaxPacketFlits, returning the number of packets and
// flits per (full) packet. Used to model DMA-style block transfers over
// the NoC.
func SegmentTransfer(spec adl.NoCSpec, bytes int) (packets, flitsPerPacket int) {
	if bytes <= 0 {
		return 0, 0
	}
	totalFlits := (bytes + spec.FlitBytes - 1) / spec.FlitBytes
	flitsPerPacket = spec.MaxPacketFlits
	packets = (totalFlits + flitsPerPacket - 1) / flitsPerPacket
	return packets, flitsPerPacket
}

// WorstCaseTransferLatency bounds a bulk transfer of `bytes` from src to
// dst under the flow set in cfg: the transfer is segmented into maximal
// packets, each bounded by the per-packet worst case of a same-route
// flow; packets are injected back-to-back, so the bound is the packet
// count times the per-packet bound (store-and-forward, no pipelining
// assumed — conservative).
func (c *Config) WorstCaseTransferLatency(src, dst Coord, bytes int) (int64, error) {
	packets, flits := SegmentTransfer(c.Spec, bytes)
	if packets == 0 {
		return 0, nil
	}
	// A synthetic flow with a fresh id models the transfer's packets.
	id := -1
	for _, f := range c.Flows {
		if f.ID >= id {
			id = f.ID + 1
		}
	}
	if id < 0 {
		id = 0
	}
	tmp := &Config{Spec: c.Spec, Flows: append(append([]Flow{}, c.Flows...), Flow{
		ID: id, Src: src, Dst: dst, PacketFlits: flits, PeriodCycles: 1,
	})}
	// Validate with a sane period (the synthetic flow never simulates).
	tmp.Flows[len(tmp.Flows)-1].PeriodCycles = 1 << 20
	per, err := tmp.WorstCaseLatency(id)
	if err != nil {
		return 0, err
	}
	return int64(packets) * per, nil
}

// SimResult reports per-flow observations from a simulation run.
type SimResult struct {
	// MaxLatency / MinLatency / Delivered are per flow id.
	MaxLatency map[int]int64
	SumLatency map[int]int64
	Delivered  map[int]int
	// Cycles is the simulated horizon.
	Cycles int64
}

// MeanLatency returns the average delivered latency of a flow.
func (r *SimResult) MeanLatency(flowID int) float64 {
	if r.Delivered[flowID] == 0 {
		return 0
	}
	return float64(r.SumLatency[flowID]) / float64(r.Delivered[flowID])
}

// packet is one in-flight packet.
type packet struct {
	flow      int
	injected  int64
	hop       int // index into route
	flitsLeft int // remaining flits at the current link
	route     []link
}

// wrrState is the arbiter state of one link.
type wrrState struct {
	queues  map[int][]*packet // per flow FIFO
	order   []int             // flow ids with traffic on this link
	current int               // index into order
	credits int
	busyTil int64
	active  *packet
}

// Simulate runs a cycle-level store-and-forward simulation for horizon
// cycles, injecting each flow periodically (first packet at cycle equal
// to the flow id, staggering deterministically).
func Simulate(c *Config, horizon int64) (*SimResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	res := &SimResult{
		MaxLatency: map[int]int64{},
		SumLatency: map[int]int64{},
		Delivered:  map[int]int{},
		Cycles:     horizon,
	}
	links := map[link]*wrrState{}
	getLink := func(l link) *wrrState {
		st, ok := links[l]
		if !ok {
			st = &wrrState{queues: map[int][]*packet{}}
			links[l] = st
		}
		return st
	}
	routes := map[int][]link{}
	for _, f := range c.Flows {
		routes[f.ID] = Route(f.Src, f.Dst)
	}
	linkCycles := int64(c.Spec.LinkCycles)
	routerCycles := int64(c.Spec.RouterCycles)
	for now := int64(0); now < horizon; now++ {
		// Inject.
		for _, f := range c.Flows {
			phase := int64(f.ID % f.PeriodCycles)
			if (now-phase)%int64(f.PeriodCycles) == 0 && now >= phase {
				p := &packet{flow: f.ID, injected: now, flitsLeft: f.PacketFlits, route: routes[f.ID]}
				st := getLink(p.route[0])
				st.enqueue(c, p)
			}
		}
		// Serve links.
		for _, l := range sortedLinks(links) {
			st := links[l]
			if st.busyTil > now {
				continue
			}
			p := st.pick(c)
			if p == nil {
				continue
			}
			// Transmit one flit.
			st.busyTil = now + linkCycles
			st.credits--
			p.flitsLeft--
			if p.flitsLeft == 0 {
				// Packet fully crossed this link: pop and advance.
				st.pop(p.flow)
				p.hop++
				flits := 0
				for _, f := range c.Flows {
					if f.ID == p.flow {
						flits = f.PacketFlits
					}
				}
				if p.hop == len(p.route) {
					lat := now + linkCycles + routerCycles - p.injected
					if lat > res.MaxLatency[p.flow] {
						res.MaxLatency[p.flow] = lat
					}
					res.SumLatency[p.flow] += lat
					res.Delivered[p.flow]++
				} else {
					p.flitsLeft = flits
					// Router pipeline before joining the next link's queue
					// is folded into busyTil accounting at delivery;
					// conservatively the packet is available immediately.
					getLink(p.route[p.hop]).enqueue(c, p)
				}
			}
		}
	}
	return res, nil
}

func sortedLinks(m map[link]*wrrState) []link {
	out := make([]link, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.from.X != b.from.X {
			return a.from.X < b.from.X
		}
		if a.from.Y != b.from.Y {
			return a.from.Y < b.from.Y
		}
		if a.to.X != b.to.X {
			return a.to.X < b.to.X
		}
		return a.to.Y < b.to.Y
	})
	return out
}

func (st *wrrState) enqueue(c *Config, p *packet) {
	if _, ok := st.queues[p.flow]; !ok {
		found := false
		for _, id := range st.order {
			if id == p.flow {
				found = true
			}
		}
		if !found {
			st.order = append(st.order, p.flow)
			sort.Ints(st.order)
		}
	}
	st.queues[p.flow] = append(st.queues[p.flow], p)
}

// pick selects the packet to serve one flit from, honoring WRR credits.
func (st *wrrState) pick(c *Config) *packet {
	if len(st.order) == 0 {
		return nil
	}
	// Continue the current flow while credits remain and it has traffic.
	for tries := 0; tries <= len(st.order); tries++ {
		if st.current >= len(st.order) {
			st.current = 0
		}
		id := st.order[st.current]
		q := st.queues[id]
		if st.credits > 0 && len(q) > 0 {
			return q[0]
		}
		// Rotate to the next flow with fresh credits.
		st.current = (st.current + 1) % len(st.order)
		st.credits = flowWeight(c, st.order[st.current])
	}
	return nil
}

func (st *wrrState) pop(flowID int) {
	st.queues[flowID] = st.queues[flowID][1:]
}

func flowWeight(c *Config, id int) int {
	for _, f := range c.Flows {
		if f.ID == id {
			return c.weight(f)
		}
	}
	return c.Spec.WRRWeight
}
