// Package noc models the invasive-NoC-style mesh interconnect of the KIT
// tile platform (paper §IV-C, ref [12] Heißwolf/König/Becker): a 2-D mesh
// with dimension-ordered (XY) routing and weighted-round-robin link
// arbitration, providing the per-flow bandwidth and latency guarantees
// that accurate system-level WCET analysis requires.
//
// The package provides both an analytical worst-case packet latency bound
// per flow and a cycle-level store-and-forward simulation; experiment E5
// validates bound >= simulated maximum across load levels.
package noc

import (
	"fmt"
	"sort"

	"argo/internal/adl"
	"argo/internal/fault"
)

// Coord is a mesh tile coordinate.
type Coord struct{ X, Y int }

// Flow is one periodic traffic stream through the mesh.
type Flow struct {
	ID  int
	Src Coord
	Dst Coord
	// PacketFlits is the packet size in flits.
	PacketFlits int
	// PeriodCycles is the injection period (one packet per period).
	PeriodCycles int
	// Weight is the flow's WRR weight (0 means the spec default).
	Weight int
}

// Config is a NoC analysis/simulation scenario.
type Config struct {
	Spec  adl.NoCSpec
	Flows []Flow
}

func (c *Config) weight(f Flow) int {
	if f.Weight > 0 {
		return f.Weight
	}
	return c.Spec.WRRWeight
}

// link identifies a directed mesh link between adjacent tiles.
type link struct {
	from, to Coord
}

// Route returns the XY route of a flow as the sequence of directed links.
func Route(src, dst Coord) []link {
	var out []link
	cur := src
	for cur.X != dst.X {
		next := cur
		if dst.X > cur.X {
			next.X++
		} else {
			next.X--
		}
		out = append(out, link{cur, next})
		cur = next
	}
	for cur.Y != dst.Y {
		next := cur
		if dst.Y > cur.Y {
			next.Y++
		} else {
			next.Y--
		}
		out = append(out, link{cur, next})
		cur = next
	}
	return out
}

// Hops returns the XY hop count between two tiles.
func Hops(src, dst Coord) int {
	dx := src.X - dst.X
	if dx < 0 {
		dx = -dx
	}
	dy := src.Y - dst.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Validate checks the scenario against the mesh dimensions.
func (c *Config) Validate() error {
	for _, f := range c.Flows {
		for _, p := range []Coord{f.Src, f.Dst} {
			if p.X < 0 || p.X >= c.Spec.Width || p.Y < 0 || p.Y >= c.Spec.Height {
				return fmt.Errorf("noc: flow %d endpoint (%d,%d) outside %dx%d mesh", f.ID, p.X, p.Y, c.Spec.Width, c.Spec.Height)
			}
		}
		if f.Src == f.Dst {
			return fmt.Errorf("noc: flow %d has identical endpoints", f.ID)
		}
		if f.PacketFlits <= 0 || f.PacketFlits > c.Spec.MaxPacketFlits {
			return fmt.Errorf("noc: flow %d packet size %d outside (0, %d]", f.ID, f.PacketFlits, c.Spec.MaxPacketFlits)
		}
		if f.PeriodCycles <= 0 {
			return fmt.Errorf("noc: flow %d period must be positive", f.ID)
		}
	}
	return nil
}

// WorstCaseLatency returns the analytical per-packet latency bound of the
// flow with the given id under WRR arbitration: at every link of its
// route, each competing flow may be served up to its full weight per
// round, and our packet needs ceil(F/w) rounds; each hop additionally
// pays the router pipeline and the packet's own serialization.
func (c *Config) WorstCaseLatency(flowID int) (int64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	var flow *Flow
	for i := range c.Flows {
		if c.Flows[i].ID == flowID {
			flow = &c.Flows[i]
		}
	}
	if flow == nil {
		return 0, fmt.Errorf("noc: unknown flow %d", flowID)
	}
	route := Route(flow.Src, flow.Dst)
	w := c.weight(*flow)
	rounds := (flow.PacketFlits + w - 1) / w
	var total int64
	for _, l := range route {
		var competing int64
		for _, other := range c.Flows {
			if other.ID == flow.ID {
				continue
			}
			for _, ol := range Route(other.Src, other.Dst) {
				if ol == l {
					competing += int64(c.weight(other))
					break
				}
			}
		}
		// Waiting: competing flows' service in every round our packet
		// needs; transfer: our own flits; router: pipeline latency.
		hop := int64(rounds)*competing*int64(c.Spec.LinkCycles) +
			int64(flow.PacketFlits)*int64(c.Spec.LinkCycles) +
			int64(c.Spec.RouterCycles)
		total += hop
	}
	return total, nil
}

// SegmentTransfer splits a bulk transfer of `bytes` into packets that
// respect the mesh's MaxPacketFlits, returning the number of packets and
// flits per (full) packet. Used to model DMA-style block transfers over
// the NoC.
func SegmentTransfer(spec adl.NoCSpec, bytes int) (packets, flitsPerPacket int) {
	if bytes <= 0 {
		return 0, 0
	}
	totalFlits := (bytes + spec.FlitBytes - 1) / spec.FlitBytes
	flitsPerPacket = spec.MaxPacketFlits
	packets = (totalFlits + flitsPerPacket - 1) / flitsPerPacket
	return packets, flitsPerPacket
}

// WorstCaseTransferLatency bounds a bulk transfer of `bytes` from src to
// dst under the flow set in cfg: the transfer is segmented into maximal
// packets, each bounded by the per-packet worst case of a same-route
// flow; packets are injected back-to-back, so the bound is the packet
// count times the per-packet bound (store-and-forward, no pipelining
// assumed — conservative).
func (c *Config) WorstCaseTransferLatency(src, dst Coord, bytes int) (int64, error) {
	packets, flits := SegmentTransfer(c.Spec, bytes)
	if packets == 0 {
		return 0, nil
	}
	// A synthetic flow with a fresh id models the transfer's packets.
	id := -1
	for _, f := range c.Flows {
		if f.ID >= id {
			id = f.ID + 1
		}
	}
	if id < 0 {
		id = 0
	}
	tmp := &Config{Spec: c.Spec, Flows: append(append([]Flow{}, c.Flows...), Flow{
		ID: id, Src: src, Dst: dst, PacketFlits: flits, PeriodCycles: 1,
	})}
	// Validate with a sane period (the synthetic flow never simulates).
	tmp.Flows[len(tmp.Flows)-1].PeriodCycles = 1 << 20
	per, err := tmp.WorstCaseLatency(id)
	if err != nil {
		return 0, err
	}
	return int64(packets) * per, nil
}

// SimResult reports per-flow observations from a simulation run.
type SimResult struct {
	// MaxLatency / MinLatency / Delivered are per flow id.
	MaxLatency map[int]int64
	SumLatency map[int]int64
	Delivered  map[int]int
	// Cycles is the simulated horizon.
	Cycles int64
	// Faults reports injected link stalls (zero for uninjected runs).
	Faults fault.Stats
}

// MeanLatency returns the average delivered latency of a flow.
func (r *SimResult) MeanLatency(flowID int) float64 {
	if r.Delivered[flowID] == 0 {
		return 0
	}
	return float64(r.SumLatency[flowID]) / float64(r.Delivered[flowID])
}

// packet is one in-flight packet.
type packet struct {
	flowIdx   int // index into the simulation's flow table
	injected  int64
	hop       int // index into the flow's route
	flitsLeft int // remaining flits at the current link
	// seq numbers the packet within its flow (fault-site coordinate).
	seq int
	// hopEnqueue is when the packet joined its current link's queue
	// (fault-injection waiting-budget accounting).
	hopEnqueue int64
	// stalledHop marks the hop at which a stall was already considered,
	// so each (packet, hop) site injects at most once.
	stalledHop int
}

// wrrState is the arbiter state of one link. Flow bookkeeping is indexed
// by the simulation's dense flow index; `order` keeps the WRR rotation
// in flow-id order exactly as the original map-backed arbiter did: a
// flow joins the (sorted) rotation the first time it enqueues here, and
// the rotation cursor is deliberately left untouched by insertions.
type wrrState struct {
	queues   [][]*packet // per flow-index FIFO
	inOrder  []bool      // flow index already in the rotation
	order    []int       // flow indices with traffic here, sorted by flow id
	current  int         // index into order
	credits  int
	busyTil  int64
	active   bool // link has seen traffic (arbiter state is live)
	deferred bool // activated mid-serve; joins the rotation next cycle
}

// simState is the preallocated simulation structure: every link any
// flow can traverse, in deterministic (from, to) order, plus per-flow
// routes resolved to link states so the hot loop performs no map
// lookups, no sorting, and no allocation beyond the packets themselves.
type simState struct {
	flows   []Flow
	weights []int   // per flow index
	phases  []int64 // per flow index injection phase
	periods []int64
	routes  [][]*wrrState // per flow index, route as link states
	links   []*wrrState   // all candidate links, sorted
	serving bool          // inside the serve loop of the current cycle
	pending []*wrrState   // links activated mid-serve this cycle

	// Fault-injection state (nil / empty when no faults are injected).
	inj *fault.Injector
	// hopBudget is the analytic per-hop WRR waiting allowance of each
	// flow: rounds × competing-weight × link-cycles — exactly the waiting
	// term of WorstCaseLatency, so injected stalls stay within the bound.
	hopBudget [][]int64
	injCount  []int // per-flow packet sequence numbers
}

func newSimState(c *Config) *simState {
	s := &simState{flows: c.Flows}
	n := len(c.Flows)
	s.weights = make([]int, n)
	s.phases = make([]int64, n)
	s.periods = make([]int64, n)
	s.routes = make([][]*wrrState, n)
	byLink := map[link]*wrrState{}
	var sorted []link
	for i, f := range c.Flows {
		s.weights[i] = c.weight(f)
		s.phases[i] = int64(f.ID % f.PeriodCycles)
		s.periods[i] = int64(f.PeriodCycles)
		route := Route(f.Src, f.Dst)
		s.routes[i] = make([]*wrrState, len(route))
		for h, l := range route {
			st, ok := byLink[l]
			if !ok {
				st = &wrrState{queues: make([][]*packet, n), inOrder: make([]bool, n)}
				byLink[l] = st
				sorted = append(sorted, l)
			}
			s.routes[i][h] = st
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.from.X != b.from.X {
			return a.from.X < b.from.X
		}
		if a.from.Y != b.from.Y {
			return a.from.Y < b.from.Y
		}
		if a.to.X != b.to.X {
			return a.to.X < b.to.X
		}
		return a.to.Y < b.to.Y
	})
	s.links = make([]*wrrState, len(sorted))
	for i, l := range sorted {
		s.links[i] = byLink[l]
	}
	return s
}

// initFaults precomputes the analytic per-hop waiting allowances the
// link-stall injector is budgeted against.
func (s *simState) initFaults(c *Config, inj *fault.Injector) {
	s.inj = inj
	n := len(c.Flows)
	s.injCount = make([]int, n)
	s.hopBudget = make([][]int64, n)
	routes := make([][]link, n)
	for i, f := range c.Flows {
		routes[i] = Route(f.Src, f.Dst)
	}
	for i, f := range c.Flows {
		w := c.weight(f)
		rounds := (f.PacketFlits + w - 1) / w
		s.hopBudget[i] = make([]int64, len(routes[i]))
		for h, l := range routes[i] {
			var competing int64
			for j, g := range c.Flows {
				if j == i {
					continue
				}
				for _, ol := range routes[j] {
					if ol == l {
						competing += int64(c.weight(g))
						break
					}
				}
			}
			// The waiting term of WorstCaseLatency at this hop.
			s.hopBudget[i][h] = int64(rounds) * competing * int64(c.Spec.LinkCycles)
		}
	}
}

// stallFor draws the transient stall injected while the link serves p.
// The stall is clamped so no packet currently waiting at the link is
// pushed past its analytic per-hop waiting allowance.
func (s *simState) stallFor(st *wrrState, p *packet, now int64) int64 {
	remaining := int64(-1)
	for _, q := range st.queues {
		for _, qp := range q {
			r := s.hopBudget[qp.flowIdx][qp.hop] - (now - qp.hopEnqueue)
			if r < 0 {
				r = 0
			}
			if remaining < 0 || r < remaining {
				remaining = r
			}
		}
	}
	if remaining <= 0 {
		return 0
	}
	return s.inj.LinkStall(s.flows[p.flowIdx].ID, p.seq, p.hop, remaining)
}

// Simulate runs a cycle-level store-and-forward simulation for horizon
// cycles, injecting each flow periodically (first packet at cycle equal
// to the flow id, staggering deterministically).
func Simulate(c *Config, horizon int64) (*SimResult, error) {
	return simulate(c, horizon, nil)
}

// SimulateFaulty is Simulate under deterministic fault injection (see
// internal/fault): links serving a packet may transiently stall for
// extra arbitration delay, clamped to the analytic per-hop WRR waiting
// allowance of every packet queued at the link — injected interference
// never exceeds what WorstCaseLatency already budgets. A zero spec is
// bit-identical to Simulate.
func SimulateFaulty(c *Config, horizon int64, spec fault.Spec) (*SimResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return simulate(c, horizon, fault.New(spec))
}

func simulate(c *Config, horizon int64, inj *fault.Injector) (*SimResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	res := &SimResult{
		MaxLatency: map[int]int64{},
		SumLatency: map[int]int64{},
		Delivered:  map[int]int{},
		Cycles:     horizon,
	}
	s := newSimState(c)
	if inj != nil {
		s.initFaults(c, inj)
	}
	linkCycles := int64(c.Spec.LinkCycles)
	routerCycles := int64(c.Spec.RouterCycles)
	for now := int64(0); now < horizon; now++ {
		// Inject.
		for i := range s.flows {
			if now >= s.phases[i] && (now-s.phases[i])%s.periods[i] == 0 {
				p := &packet{flowIdx: i, injected: now, flitsLeft: s.flows[i].PacketFlits,
					hopEnqueue: now, stalledHop: -1}
				if s.inj != nil {
					p.seq = s.injCount[i]
					s.injCount[i]++
				}
				s.routes[i][0].enqueue(s, p)
			}
		}
		// Serve links. The slice holds every candidate link in the same
		// sorted order the map-based arbiter once snapshotted each cycle;
		// links that have never seen traffic are skipped (their arbiter
		// state must not start rotating early), and links first activated
		// by a packet advancing mid-serve only join next cycle — exactly
		// when the per-cycle snapshot would have picked them up.
		s.serving = true
		for _, st := range s.links {
			if !st.active || st.deferred || st.busyTil > now {
				continue
			}
			p := st.pick(s)
			if p == nil {
				continue
			}
			if s.inj != nil && p.stalledHop != p.hop {
				// Consider one transient stall per (packet, hop) site the
				// first time the link would serve the packet.
				p.stalledHop = p.hop
				if stall := s.stallFor(st, p, now); stall > 0 {
					st.busyTil = now + stall
					continue
				}
			}
			// Transmit one flit.
			st.busyTil = now + linkCycles
			st.credits--
			p.flitsLeft--
			if p.flitsLeft == 0 {
				// Packet fully crossed this link: pop and advance.
				st.pop(p.flowIdx)
				p.hop++
				f := &s.flows[p.flowIdx]
				route := s.routes[p.flowIdx]
				if p.hop == len(route) {
					lat := now + linkCycles + routerCycles - p.injected
					if lat > res.MaxLatency[f.ID] {
						res.MaxLatency[f.ID] = lat
					}
					res.SumLatency[f.ID] += lat
					res.Delivered[f.ID]++
				} else {
					p.flitsLeft = f.PacketFlits
					p.hopEnqueue = now
					// Router pipeline before joining the next link's queue
					// is folded into busyTil accounting at delivery;
					// conservatively the packet is available immediately.
					route[p.hop].enqueue(s, p)
				}
			}
		}
		s.serving = false
		for _, st := range s.pending {
			st.deferred = false
		}
		s.pending = s.pending[:0]
	}
	if s.inj != nil {
		res.Faults = s.inj.Stats()
	}
	return res, nil
}

func (st *wrrState) enqueue(s *simState, p *packet) {
	if !st.active {
		st.active = true
		if s.serving {
			st.deferred = true
			s.pending = append(s.pending, st)
		}
	}
	if !st.inOrder[p.flowIdx] {
		st.inOrder[p.flowIdx] = true
		st.order = append(st.order, p.flowIdx)
		sort.Slice(st.order, func(i, j int) bool {
			return s.flows[st.order[i]].ID < s.flows[st.order[j]].ID
		})
	}
	st.queues[p.flowIdx] = append(st.queues[p.flowIdx], p)
}

// pick selects the packet to serve one flit from, honoring WRR credits.
func (st *wrrState) pick(s *simState) *packet {
	if len(st.order) == 0 {
		return nil
	}
	// Continue the current flow while credits remain and it has traffic.
	for tries := 0; tries <= len(st.order); tries++ {
		if st.current >= len(st.order) {
			st.current = 0
		}
		q := st.queues[st.order[st.current]]
		if st.credits > 0 && len(q) > 0 {
			return q[0]
		}
		// Rotate to the next flow with fresh credits.
		st.current = (st.current + 1) % len(st.order)
		st.credits = s.weights[st.order[st.current]]
	}
	return nil
}

func (st *wrrState) pop(flowIdx int) {
	st.queues[flowIdx] = st.queues[flowIdx][1:]
}
