package wcet

import (
	"math/rand"
	"testing"

	"argo/internal/adl"
	"argo/internal/ir"
	"argo/internal/scil"
)

func compile(t *testing.T, src, entry string, args ...ir.ArgSpec) *ir.Program {
	t.Helper()
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := scil.Check(p, scil.CheckWCET); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	prog, err := ir.Lower(p, entry, args)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func defaultModel() CostModel {
	return CostModel{OpCycles: 1, SPMLatency: 2, SharedLatency: 18}
}

var analysisCorpus = []struct {
	name string
	src  string
	args []ir.ArgSpec
	ins  [][]float64
}{
	{
		name: "straightline",
		src: `function r = f(a, b)
  r = a * b + a - b / 2
endfunction`,
		args: []ir.ArgSpec{ir.ScalarArg(), ir.ScalarArg()},
		ins:  [][]float64{{3}, {4}},
	},
	{
		name: "forloop",
		src: `function r = f(v)
  r = 0
  for i = 1:12
    r = r + v(1, i)
  end
endfunction`,
		args: []ir.ArgSpec{ir.MatrixArg(1, 12)},
		ins:  [][]float64{make([]float64, 12)},
	},
	{
		name: "nested",
		src: `function r = f(m)
  r = 0
  for i = 1:6
    for j = 1:5
      r = r + m(i, j) * 2
    end
  end
endfunction`,
		args: []ir.ArgSpec{ir.MatrixArg(6, 5)},
		ins:  [][]float64{make([]float64, 30)},
	},
	{
		name: "branches",
		src: `function r = f(v)
  r = 0
  for i = 1:10
    if v(1, i) > 0 then
      r = r + sqrt(v(1, i))
    else
      r = r - v(1, i)
    end
  end
endfunction`,
		args: []ir.ArgSpec{ir.MatrixArg(1, 10)},
		ins:  [][]float64{{1, -2, 3, -4, 5, -6, 7, -8, 9, -10}},
	},
	{
		name: "while",
		src: `function r = f(x)
  r = 0
  //@bound 40
  while x > 1
    x = x / 2
    r = r + 1
  end
endfunction`,
		args: []ir.ArgSpec{ir.ScalarArg()},
		ins:  [][]float64{{1e9}},
	},
	{
		name: "breakcontinue",
		src: `function r = f(v)
  r = 0
  for i = 1:10
    if v(1, i) < 0 then
      continue
    end
    if v(1, i) > 100 then
      break
    end
    r = r + v(1, i)
  end
endfunction`,
		args: []ir.ArgSpec{ir.MatrixArg(1, 10)},
		ins:  [][]float64{{1, -1, 2, 300, 4, 5, 6, 7, 8, 9}},
	},
	{
		name: "matrixops",
		src: `function r = f(a, b)
  c = a * b
  d = c + a .* b
  r = sum(d) + maxval(c)
endfunction`,
		args: []ir.ArgSpec{ir.MatrixArg(4, 4), ir.MatrixArg(4, 4)},
		ins:  [][]float64{make([]float64, 16), make([]float64, 16)},
	},
}

// TestStructuralEqualsIPET cross-checks the two independent code-level
// analyses: on structured programs they must agree exactly.
func TestStructuralEqualsIPET(t *testing.T) {
	m := defaultModel()
	for _, tc := range analysisCorpus {
		t.Run(tc.name, func(t *testing.T) {
			prog := compile(t, tc.src, "f", tc.args...)
			st := Structural(prog.Entry.Body, m)
			ip, err := IPET(prog.Entry.Body, m)
			if err != nil {
				t.Fatalf("IPET: %v", err)
			}
			if st != ip {
				t.Fatalf("structural %d != IPET %d", st, ip)
			}
			if st <= 0 {
				t.Fatalf("non-positive WCET %d", st)
			}
		})
	}
}

// TestMeasuredNeverExceedsBound runs each corpus program on random inputs
// and checks measured cycles <= structural bound.
func TestMeasuredNeverExceedsBound(t *testing.T) {
	m := defaultModel()
	rng := rand.New(rand.NewSource(7))
	for _, tc := range analysisCorpus {
		t.Run(tc.name, func(t *testing.T) {
			prog := compile(t, tc.src, "f", tc.args...)
			bound := Structural(prog.Entry.Body, m)
			for trial := 0; trial < 10; trial++ {
				var args [][]float64
				for _, p := range prog.Entry.Params {
					buf := make([]float64, p.Elems())
					for i := range buf {
						buf[i] = rng.Float64()*100 - 30
					}
					args = append(args, buf)
				}
				meter := &CycleMeter{Model: m}
				if _, err := ir.NewExec(prog, meter).Run(args); err != nil {
					t.Fatalf("run: %v", err)
				}
				if meter.Cycles > bound {
					t.Fatalf("trial %d: measured %d > bound %d", trial, meter.Cycles, bound)
				}
				if meter.Cycles <= 0 {
					t.Fatalf("no cycles measured")
				}
			}
		})
	}
}

// TestBoundTightOnStraightLineCode: on branch-free, input-independent
// code the bound must be exact.
func TestBoundTightOnStraightLineCode(t *testing.T) {
	m := defaultModel()
	prog := compile(t, `function r = f(v)
  r = 0
  for i = 1:8
    r = r + v(1, i) * 2
  end
endfunction`, "f", ir.MatrixArg(1, 8))
	bound := Structural(prog.Entry.Body, m)
	meter := &CycleMeter{Model: m}
	if _, err := ir.NewExec(prog, meter).Run([][]float64{make([]float64, 8)}); err != nil {
		t.Fatal(err)
	}
	if meter.Cycles != bound {
		t.Fatalf("measured %d != bound %d on deterministic code", meter.Cycles, bound)
	}
}

func TestSPMPromotionReducesWCET(t *testing.T) {
	m := defaultModel()
	src := `function r = f(v)
  r = 0
  for i = 1:32
    r = r + v(1, i)
  end
endfunction`
	prog := compile(t, src, "f", ir.MatrixArg(1, 32))
	before := Structural(prog.Entry.Body, m)
	for _, v := range prog.MatrixVars() {
		v.Storage = ir.StorageSPM
	}
	after := Structural(prog.Entry.Body, m)
	if after >= before {
		t.Fatalf("SPM should reduce WCET: %d -> %d", before, after)
	}
	want := before - 32*int64(m.SharedLatency-m.SPMLatency)
	if after != want {
		t.Fatalf("after = %d, want %d", after, want)
	}
}

func TestModelFor(t *testing.T) {
	p := adl.XentiumPlatform(4)
	m := ModelFor(p, 0)
	if m.OpCycles != 1 || m.SPMLatency != 2 || m.SharedLatency != 18 {
		t.Fatalf("model: %+v", m)
	}
	q := adl.Leon3TilePlatform(2, 2)
	m0 := ModelFor(q, 0)
	m3 := ModelFor(q, 3)
	if m3.SharedLatency <= m0.SharedLatency {
		t.Fatalf("far tile should have higher shared latency: %d vs %d", m3.SharedLatency, m0.SharedLatency)
	}
}

func TestAnalyzeAccessCounts(t *testing.T) {
	prog := compile(t, `function r = f(m)
  r = 0
  for i = 1:4
    for j = 1:4
      r = r + m(i, j)
    end
  end
endfunction`, "f", ir.MatrixArg(4, 4))
	rep := Analyze(prog.Entry.Body, defaultModel())
	if rep.SharedAccesses != 16 {
		t.Fatalf("shared accesses = %d, want 16", rep.SharedAccesses)
	}
	if rep.SPMAccesses != 0 {
		t.Fatalf("spm accesses = %d", rep.SPMAccesses)
	}
	// Promote and re-analyze.
	for _, v := range prog.MatrixVars() {
		v.Storage = ir.StorageSPM
	}
	rep2 := Analyze(prog.Entry.Body, defaultModel())
	if rep2.SPMAccesses != 16 || rep2.SharedAccesses != 0 {
		t.Fatalf("after promotion: %+v", rep2)
	}
	if rep2.Cycles >= rep.Cycles {
		t.Fatal("promotion should lower the bound")
	}
}

func TestWhileBoundDominatesCost(t *testing.T) {
	m := defaultModel()
	mk := func(bound int) int64 {
		src := `function r = f(x)
  r = 0
  //@bound ` + itoa(bound) + `
  while x > 0
    x = x - 1
    r = r + 1
  end
endfunction`
		prog := compile(t, src, "f", ir.ScalarArg())
		return Structural(prog.Entry.Body, m)
	}
	if mk(10) >= mk(100) {
		t.Fatal("larger @bound must give larger WCET")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestIPETZeroTripLoop(t *testing.T) {
	// A loop with zero trips contributes only its header cost.
	prog := compile(t, `function r = f(x)
  r = x
  for i = 1:0
    r = r + 1000
  end
endfunction`, "f", ir.ScalarArg())
	m := defaultModel()
	st := Structural(prog.Entry.Body, m)
	ip, err := IPET(prog.Entry.Body, m)
	if err != nil {
		t.Fatal(err)
	}
	if st != ip {
		t.Fatalf("structural %d != ipet %d", st, ip)
	}
	if st > 20 {
		t.Fatalf("zero-trip loop cost too high: %d", st)
	}
}

func TestIPETOnEmptyRegion(t *testing.T) {
	got, err := IPET(nil, defaultModel())
	if err != nil || got != 0 {
		t.Fatalf("got %d, %v", got, err)
	}
}
