package mc_test

import (
	"expvar"
	"testing"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/htg"
	"argo/internal/ir"
	"argo/internal/scil"
	"argo/internal/usecases"
	"argo/internal/wcet"
	"argo/internal/wcet/mc"
)

func lower(t *testing.T, src, entry string, args ...ir.ArgSpec) *ir.Program {
	t.Helper()
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := scil.Check(p, scil.CheckWCET); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	prog, err := ir.Lower(p, entry, args)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

// TestExactLEIPET is the engine-ordering property over the full golden
// matrix: for every task region of every use case compiled for every
// built-in platform, and every distinct core cost model, the exact
// engine's bound never exceeds the IPET engine's, and both engines
// report identical access counts (the interference analysis must see
// one traffic model).
func TestExactLEIPET(t *testing.T) {
	for _, u := range usecases.All() {
		for _, pname := range adl.BuiltinNames() {
			plat := adl.Builtin(pname)
			art, err := core.CompileSource(u.Source, core.DefaultOptions(u.Entry, u.Args, plat))
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", u.Name, pname, err)
			}
			models := make([]wcet.CostModel, plat.NumCores())
			for i := range models {
				models[i] = wcet.ModelFor(plat, i)
			}
			var walk func(g *htg.Graph)
			walk = func(g *htg.Graph) {
				for _, n := range g.Nodes {
					for _, m := range models {
						ipet := wcet.Analyze(n.Stmts, m)
						exact := mc.Default.Analyze(n.Stmts, m)
						if exact.Cycles > ipet.Cycles {
							t.Fatalf("%s/%s task %q: exact %d > ipet %d", u.Name, pname, n.Label, exact.Cycles, ipet.Cycles)
						}
						if exact.SharedAccesses != ipet.SharedAccesses || exact.SPMAccesses != ipet.SPMAccesses {
							t.Fatalf("%s/%s task %q: access counts diverge: exact %+v ipet %+v", u.Name, pname, n.Label, exact, ipet)
						}
					}
					if n.Children != nil {
						walk(n.Children)
					}
				}
			}
			walk(art.Graph)
		}
	}
}

// TestExactStrictlyTighter pins a fixture where the exact engine is
// strictly below the IPET bound, and documents why the gap exists: the
// branch condition is region-constant (x = 0 makes x > 0 provably
// false), so the exact engine never explores the expensive then-branch,
// while the structural/IPET analysis — which knows nothing about values
// — must take the maximum over both branches.
func TestExactStrictlyTighter(t *testing.T) {
	prog := lower(t, `function r = f(a)
  x = 0
  if x > 0 then
    r = 0
    for i = 1:50
      r = r + a * i
    end
  else
    r = 1
  end
endfunction`, "f", ir.ScalarArg())
	m := wcet.CostModel{OpCycles: 1, SPMLatency: 2, SharedLatency: 18}
	ipet := wcet.Analyze(prog.Entry.Body, m)
	exact := mc.Default.Analyze(prog.Entry.Body, m)
	if exact.Cycles >= ipet.Cycles {
		t.Fatalf("exact %d must be strictly below ipet %d on a dead expensive branch", exact.Cycles, ipet.Cycles)
	}

	// The same region with the branch flipped live is exactly the
	// structural bound: nothing to tighten.
	progLive := lower(t, `function r = f(a)
  x = 1
  if x > 0 then
    r = 0
    for i = 1:50
      r = r + a * i
    end
  else
    r = 1
  end
endfunction`, "f", ir.ScalarArg())
	ipetLive := wcet.Analyze(progLive.Entry.Body, m)
	exactLive := mc.Default.Analyze(progLive.Entry.Body, m)
	if exactLive.Cycles != ipetLive.Cycles {
		t.Fatalf("live branch: exact %d != ipet %d (then-branch is the worst case in both)", exactLive.Cycles, ipetLive.Cycles)
	}
}

// TestExactEarlyWhileExit: a while whose condition goes provably false
// after a computable number of iterations is bounded by the actual
// iteration count, not the annotated @bound.
func TestExactEarlyWhileExit(t *testing.T) {
	prog := lower(t, `function r = f(a)
  r = 16
  //@bound 1000
  while r > 1
    r = r / 2
  end
endfunction`, "f", ir.ScalarArg())
	m := wcet.CostModel{OpCycles: 1, SPMLatency: 2, SharedLatency: 18}
	ipet := wcet.Analyze(prog.Entry.Body, m)
	exact := mc.Default.Analyze(prog.Entry.Body, m)
	if exact.Cycles >= ipet.Cycles {
		t.Fatalf("exact %d must beat the @bound-1000 structural bound %d on a 4-iteration loop", exact.Cycles, ipet.Cycles)
	}
}

func expvarInt(t *testing.T, name string) int64 {
	t.Helper()
	v, ok := expvar.Get(name).(*expvar.Int)
	if !ok {
		t.Fatalf("expvar %s not registered", name)
	}
	return v.Value()
}

// TestFallbackOnBlowup: with state fuel too small for an unknown branch
// split, the engine falls back to the structural bound bit-identically
// (so a fallback can never mask a cross-check violation) and counts the
// fallback in argo_wcet_mc_fallbacks.
func TestFallbackOnBlowup(t *testing.T) {
	// n is timing-relevant (it bounds the while) and diverges across the
	// unknown branch, so the split cannot re-merge: one state of fuel
	// forces the whole-region fallback.
	prog := lower(t, `function r = f(a)
  if a > 0 then
    n = 5
  else
    n = 3
  end
  r = 0
  //@bound 8
  while r < n
    r = r + 1
  end
endfunction`, "f", ir.ScalarArg())
	m := wcet.CostModel{OpCycles: 1, SPMLatency: 2, SharedLatency: 18}
	tiny := mc.New(mc.Options{MaxStates: 1})
	before := expvarInt(t, "argo_wcet_mc_fallbacks")
	got := tiny.Analyze(prog.Entry.Body, m)
	after := expvarInt(t, "argo_wcet_mc_fallbacks")
	if want := wcet.Analyze(prog.Entry.Body, m); got != want {
		t.Fatalf("fallback report %+v must be bit-identical to the structural report %+v", got, want)
	}
	if after != before+1 {
		t.Fatalf("fallback counter: %d -> %d, want one increment", before, after)
	}

	// With real fuel the same region completes exactly and merges the
	// branch states.
	full := mc.Default.Analyze(prog.Entry.Body, m)
	if full.Cycles > wcet.Analyze(prog.Entry.Body, m).Cycles {
		t.Fatalf("exact bound %d exceeds structural", full.Cycles)
	}
	if expvarInt(t, "argo_wcet_mc_analyses") == 0 {
		t.Fatal("argo_wcet_mc_analyses not counting")
	}
	if expvarInt(t, "argo_wcet_mc_states") == 0 {
		t.Fatal("argo_wcet_mc_states not counting")
	}
}
