// Package mc is the exact WCET engine: program slicing plus real-time
// model checking, after Béchennec & Cassez ("Computation of WCET using
// Program Slicing and Real-Time Model-Checking") and Becker et al.
// ("Scalable and Precise Estimation and Debugging of WCET … A Comeback
// of Model Checking").
//
// The engine slices the region to its timing-relevant statements
// (internal/ir/slice) and explores the region's abstract timed state
// graph exactly: abstract states are valuations of the relevant scalars
// (known constant or unknown) plus an accumulated cycle count, charged
// with the same per-statement cost model as the interpreter's meter.
// Known conditions follow one branch; unknown conditions split the
// state; equal valuations merge keeping the maximum cycle count. The
// result is the exact worst case over the abstract state graph — never
// above the structural/IPET bound (the tree engine takes the max of
// both branches everywhere and full trip counts for every loop), and
// strictly below it whenever dead branches or early loop exits are
// provable from region-constant data.
//
// Soundness of the fallback: whenever the exploration cannot finish —
// the state count exceeds the configured fuel, or a loop's concrete
// header would fault the interpreter — the engine returns the
// structural bound, which is exactly what the IPET engine reports, so a
// fallback can never mask a cross-check violation: it is bit-identical
// to the bound it is checked against. Per-statement fallbacks inside a
// surviving exploration (unknown loop headers or while conditions)
// charge the statement's structural cost, preserving exact <= structural
// by induction.
//
// Observability: expvars argo_wcet_mc_analyses (regions analyzed),
// argo_wcet_mc_states (abstract states created), argo_wcet_mc_fallbacks
// (whole-region structural fallbacks), served by argod's /debug/vars.
package mc

import (
	"encoding/binary"
	"expvar"
	"math"

	"argo/internal/ir"
	"argo/internal/ir/slice"
	"argo/internal/scil"
	"argo/internal/wcet"
)

var (
	mcAnalyses  = expvar.NewInt("argo_wcet_mc_analyses")
	mcStates    = expvar.NewInt("argo_wcet_mc_states")
	mcFallbacks = expvar.NewInt("argo_wcet_mc_fallbacks")
)

// Options bounds one exploration.
type Options struct {
	// MaxStates is the state-count fuel: an exploration holding more
	// than this many simultaneous abstract states falls back to the
	// structural bound (0: DefaultMaxStates).
	MaxStates int
	// MaxSteps bounds total statement evaluations across all states —
	// the time analogue of MaxStates, protecting long-running services
	// against concrete loops with huge trip counts (0: DefaultMaxSteps).
	MaxSteps int64
}

// DefaultMaxStates is the default simultaneous-state fuel.
const DefaultMaxStates = 4096

// DefaultMaxSteps is the default exploration work budget.
const DefaultMaxSteps = 4_000_000

// Engine is the exact model-checking WCET engine; it implements
// wcet.Engine.
type Engine struct{ opt Options }

// New returns an engine with explicit exploration bounds.
func New(opt Options) *Engine {
	if opt.MaxStates <= 0 {
		opt.MaxStates = DefaultMaxStates
	}
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = DefaultMaxSteps
	}
	return &Engine{opt: opt}
}

// Default is the engine instance registered with the wcet engine
// registry under the name "mc".
var Default = New(Options{})

func init() { wcet.RegisterEngine(Default) }

// Name implements wcet.Engine.
func (e *Engine) Name() string { return "mc" }

// Analyze implements wcet.Engine: the exact bound when the exploration
// completes, the structural (= IPET) bound otherwise. Access counts are
// always the worst-case counts the IPET engine reports — the
// system-level interference analysis must see one traffic model
// regardless of which engine computed the cycle bound.
func (e *Engine) Analyze(stmts []ir.Stmt, m wcet.CostModel) wcet.Report {
	mcAnalyses.Add(1)
	rep := wcet.Analyze(stmts, m)
	ex := &explorer{m: m, sl: slice.Analyze(stmts), maxStates: e.opt.MaxStates, steps: e.opt.MaxSteps}
	ex.index(stmts)
	init := &state{vals: make([]absVal, len(ex.vars))}
	ex.created++
	out, ok := ex.block(stmts, []*state{init})
	mcStates.Add(ex.created)
	if !ok {
		mcFallbacks.Add(1)
		return rep
	}
	var worst int64
	for _, s := range out {
		if s.cycles > worst {
			worst = s.cycles
		}
	}
	// The exact bound replaces the structural one even in the
	// (impossible, by construction) case worst > structural: hiding it
	// behind a min() would mask a soundness bug from the "both"
	// cross-check.
	rep.Cycles = worst
	return rep
}

// --- abstract domain --------------------------------------------------------

// absVal is a flat constant domain over one scalar: a known float64 or
// unknown.
type absVal struct {
	known bool
	val   float64
}

type ctrl byte

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
)

// state is one abstract timed state: a valuation of the timing-relevant
// scalars plus the cycles accumulated on the path that produced it.
type state struct {
	vals   []absVal
	cycles int64
	ctl    ctrl
}

func (s *state) clone(ex *explorer) *state {
	ex.created++
	c := &state{vals: make([]absVal, len(s.vals)), cycles: s.cycles, ctl: s.ctl}
	copy(c.vals, s.vals)
	return c
}

type explorer struct {
	m         wcet.CostModel
	sl        *slice.Slice
	vars      []*ir.Var
	idx       map[*ir.Var]int
	maxStates int
	steps     int64
	created   int64
}

// index assigns dense slots to the region's relevant scalars in
// first-appearance order (deterministic for a given region).
func (ex *explorer) index(stmts []ir.Stmt) {
	ex.idx = map[*ir.Var]int{}
	add := func(v *ir.Var) {
		if v.Scalar && ex.sl.Scalars[v] {
			if _, ok := ex.idx[v]; !ok {
				ex.idx[v] = len(ex.vars)
				ex.vars = append(ex.vars, v)
			}
		}
	}
	ir.WalkStmts(stmts, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.AssignScalar:
			add(st.Dst)
			ir.WalkExprs(st.Src, func(e ir.Expr) {
				if r, ok := e.(*ir.VarRef); ok {
					add(r.V)
				}
			})
		case *ir.For:
			add(st.IVar)
		}
		// Control expressions and store operands only read; their
		// VarRefs are covered by the defining statements above or stay
		// unknown (a sound default for region inputs).
		return true
	})
	// Reads without an in-region definition (parameters, upstream
	// regions) still need slots so conditions over them evaluate
	// uniformly; sweep every expression once.
	visit := func(e ir.Expr) {
		ir.WalkExprs(e, func(sub ir.Expr) {
			if r, ok := sub.(*ir.VarRef); ok {
				add(r.V)
			}
		})
	}
	ir.WalkStmts(stmts, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.AssignScalar:
			visit(st.Src)
		case *ir.Store:
			visit(st.Src)
			for _, ix := range st.Idx {
				visit(ix)
			}
		case *ir.For:
			visit(st.Lo)
			visit(st.Step)
			visit(st.Hi)
		case *ir.While:
			visit(st.Cond)
		case *ir.If:
			visit(st.Cond)
		}
		return true
	})
}

// --- exploration ------------------------------------------------------------

// block runs a statement list over a set of states. States whose
// control tag is set (break/continue taken) are carried through
// untouched — they have left this block.
func (ex *explorer) block(stmts []ir.Stmt, states []*state) ([]*state, bool) {
	for _, s := range stmts {
		var active, suspended []*state
		for _, st := range states {
			if st.ctl == ctrlNone {
				active = append(active, st)
			} else {
				suspended = append(suspended, st)
			}
		}
		if len(active) == 0 {
			return states, true
		}
		out, ok := ex.stmt(s, active)
		if !ok {
			return nil, false
		}
		states = append(suspended, out...)
		if len(states) > ex.maxStates {
			return nil, false
		}
	}
	return states, true
}

func (ex *explorer) stmt(s ir.Stmt, states []*state) ([]*state, bool) {
	ex.steps -= int64(len(states))
	if ex.steps < 0 {
		return nil, false
	}
	switch st := s.(type) {
	case *ir.AssignScalar:
		cost := ex.m.StmtSelfCost(st)
		for _, sa := range states {
			sa.cycles += cost
			if i, ok := ex.idx[st.Dst]; ok {
				sa.vals[i] = ex.eval(st.Src, sa)
			}
		}
		return states, true
	case *ir.Store:
		cost := ex.m.StmtSelfCost(st)
		for _, sa := range states {
			sa.cycles += cost
		}
		return states, true
	case *ir.If:
		cost := ex.m.StmtSelfCost(st)
		var out []*state
		for _, sa := range states {
			sa.cycles += cost
			c := ex.eval(st.Cond, sa)
			switch {
			case c.known && c.val != 0:
				r, ok := ex.block(st.Then, []*state{sa})
				if !ok {
					return nil, false
				}
				out = append(out, r...)
			case c.known:
				r, ok := ex.block(st.Else, []*state{sa})
				if !ok {
					return nil, false
				}
				out = append(out, r...)
			default:
				rt, ok := ex.block(st.Then, []*state{sa.clone(ex)})
				if !ok {
					return nil, false
				}
				re, ok := ex.block(st.Else, []*state{sa})
				if !ok {
					return nil, false
				}
				out = append(out, rt...)
				out = append(out, re...)
			}
		}
		return ex.merge(out)
	case *ir.For:
		var out []*state
		for _, sa := range states {
			r, ok := ex.forStmt(st, sa)
			if !ok {
				return nil, false
			}
			out = append(out, r...)
		}
		return ex.merge(out)
	case *ir.While:
		var out []*state
		for _, sa := range states {
			r, ok := ex.whileStmt(st, sa)
			if !ok {
				return nil, false
			}
			out = append(out, r...)
		}
		return ex.merge(out)
	case *ir.Break:
		for _, sa := range states {
			sa.ctl = ctrlBreak
		}
		return states, true
	case *ir.Continue:
		for _, sa := range states {
			sa.ctl = ctrlContinue
		}
		return states, true
	}
	return states, true
}

// forStmt explores one counted loop from one entry state. A fully known
// header replays the interpreter's exact iteration sequence (local
// counter, float tolerance); anything else — unknown bounds, zero step,
// a sequence the interpreter would fault on — charges the loop's
// structural cost and forgets everything the body writes.
func (ex *explorer) forStmt(st *ir.For, sa *state) ([]*state, bool) {
	lo := ex.eval(st.Lo, sa)
	hi := ex.eval(st.Hi, sa)
	step := ex.eval(st.Step, sa)
	if !lo.known || !hi.known || !step.known || step.val == 0 ||
		forIters(lo.val, hi.val, step.val, st.Trip) > st.Trip {
		ex.structuralCharge(st, sa, append(scalarWrites(ex, st.Body), st.IVar))
		return []*state{sa}, true
	}
	sa.cycles += ex.m.StmtSelfCost(st)
	overhead := ex.m.LoopIterOverhead()
	ivar, tracked := ex.idx[st.IVar]
	active := []*state{sa}
	var done []*state
	for v := lo.val; (step.val > 0 && v <= hi.val+1e-12) || (step.val < 0 && v >= hi.val-1e-12); v += step.val {
		for _, a := range active {
			a.cycles += overhead
			if tracked {
				a.vals[ivar] = absVal{known: true, val: v}
			}
		}
		next, ok := ex.block(st.Body, active)
		if !ok {
			return nil, false
		}
		active = active[:0]
		for _, a := range next {
			switch a.ctl {
			case ctrlBreak:
				a.ctl = ctrlNone
				done = append(done, a)
			default:
				a.ctl = ctrlNone
				active = append(active, a)
			}
		}
		var mok bool
		active, mok = ex.merge(active)
		if !mok {
			return nil, false
		}
		if len(active) == 0 {
			break
		}
	}
	return append(done, active...), true
}

// forIters replays the interpreter's float iteration sequence without
// the body, capped at trip+1 (enough to detect the fault case).
func forIters(lo, hi, step float64, trip int) int {
	n := 0
	for v := lo; (step > 0 && v <= hi+1e-12) || (step < 0 && v >= hi-1e-12); v += step {
		n++
		if n > trip {
			break
		}
	}
	return n
}

// whileStmt explores one bounded loop from one entry state. Checks are
// charged per evaluation; a known-false condition exits (this is where
// the engine beats the structural bound, which always assumes @bound
// iterations); a condition that becomes unknown after k iterations
// charges the remaining worst case — (bound-k) bodies and checks at
// their structural cost — and forgets the body's scalar effects.
func (ex *explorer) whileStmt(st *ir.While, sa *state) ([]*state, bool) {
	check := ex.m.StmtSelfCost(st)
	bodyS := wcet.Structural(st.Body, ex.m)
	writes := scalarWrites(ex, st.Body)
	active := []*state{sa}
	var done []*state
	for k := 0; ; k++ {
		var iterate []*state
		for _, a := range active {
			a.cycles += check
			c := ex.eval(st.Cond, a)
			switch {
			case c.known && c.val == 0:
				done = append(done, a)
			case !c.known:
				a.cycles += int64(st.Bound-k) * (bodyS + check)
				ex.forget(a, writes)
				done = append(done, a)
			case k >= st.Bound:
				// The interpreter faults here; the path's cost so far is
				// already an upper bound for it.
				done = append(done, a)
			default:
				iterate = append(iterate, a)
			}
		}
		if len(iterate) == 0 {
			return done, true
		}
		next, ok := ex.block(st.Body, iterate)
		if !ok {
			return nil, false
		}
		active = active[:0]
		for _, a := range next {
			switch a.ctl {
			case ctrlBreak:
				a.ctl = ctrlNone
				done = append(done, a)
			default:
				a.ctl = ctrlNone
				active = append(active, a)
			}
		}
		var mok bool
		active, mok = ex.merge(active)
		if !mok {
			return nil, false
		}
		if len(active) == 0 {
			return done, true
		}
	}
}

// structuralCharge applies a per-statement fallback: the statement's
// structural worst case in cycles, with every scalar it may write
// forgotten.
func (ex *explorer) structuralCharge(s ir.Stmt, sa *state, writes []*ir.Var) {
	sa.cycles += wcet.Structural([]ir.Stmt{s}, ex.m)
	ex.forget(sa, writes)
}

func (ex *explorer) forget(sa *state, writes []*ir.Var) {
	for _, v := range writes {
		if i, ok := ex.idx[v]; ok {
			sa.vals[i] = absVal{}
		}
	}
}

// scalarWrites lists the tracked scalars a region may write.
func scalarWrites(ex *explorer, stmts []ir.Stmt) []*ir.Var {
	var out []*ir.Var
	for v := range ir.ComputeUses(stmts).ScalWrite {
		if _, ok := ex.idx[v]; ok {
			out = append(out, v)
		}
	}
	return out
}

// merge collapses states with identical valuations and control tags,
// keeping the maximum cycle count (first-seen order preserved).
func (ex *explorer) merge(states []*state) ([]*state, bool) {
	if len(states) <= 1 {
		return states, true
	}
	seen := make(map[string]*state, len(states))
	out := states[:0]
	key := make([]byte, 0, 9*len(ex.vars)+1)
	for _, s := range states {
		key = key[:0]
		for _, v := range s.vals {
			if v.known {
				key = append(key, 1)
				key = binary.LittleEndian.AppendUint64(key, math.Float64bits(v.val))
			} else {
				key = append(key, 0)
			}
		}
		key = append(key, byte(s.ctl))
		if prev, ok := seen[string(key)]; ok {
			if s.cycles > prev.cycles {
				prev.cycles = s.cycles
			}
			continue
		}
		seen[string(key)] = s
		out = append(out, s)
	}
	if len(out) > ex.maxStates {
		return nil, false
	}
	return out, true
}

// --- abstract evaluation ----------------------------------------------------

// eval mirrors the interpreter's expression semantics over the flat
// constant domain: matrix loads are unknown, operators and the pure
// builtin intrinsics fold known operands exactly (same operator paths
// as ir.Exec, so folded values are bit-identical to executed ones).
func (ex *explorer) eval(e ir.Expr, sa *state) absVal {
	switch x := e.(type) {
	case *ir.Const:
		return absVal{known: true, val: x.Val}
	case *ir.VarRef:
		if i, ok := ex.idx[x.V]; ok {
			return sa.vals[i]
		}
		return absVal{}
	case *ir.Index:
		return absVal{}
	case *ir.Bin:
		a := ex.eval(x.X, sa)
		b := ex.eval(x.Y, sa)
		if !a.known || !b.known {
			return absVal{}
		}
		switch x.Op {
		case ir.OpAdd:
			return absVal{known: true, val: a.val + b.val}
		case ir.OpSub:
			return absVal{known: true, val: a.val - b.val}
		case ir.OpMul:
			return absVal{known: true, val: a.val * b.val}
		case ir.OpDiv:
			return absVal{known: true, val: a.val / b.val}
		}
		return absVal{known: true, val: ir.FoldBin(x.Op, a.val, b.val)}
	case *ir.Un:
		a := ex.eval(x.X, sa)
		if !a.known {
			return absVal{}
		}
		if x.Op == ir.OpNeg {
			return absVal{known: true, val: -a.val}
		}
		if a.val == 0 {
			return absVal{known: true, val: 1}
		}
		return absVal{known: true, val: 0}
	case *ir.Intrinsic:
		b := scil.LookupBuiltin(x.Name)
		if b == nil {
			return absVal{}
		}
		args := make([]float64, len(x.Args))
		for i, arg := range x.Args {
			a := ex.eval(arg, sa)
			if !a.known {
				return absVal{}
			}
			args[i] = a.val
		}
		if len(args) == 1 && b.Scalar1 != nil {
			return absVal{known: true, val: b.Scalar1(args[0])}
		}
		if len(args) == 2 && b.Scalar2 != nil {
			return absVal{known: true, val: b.Scalar2(args[0], args[1])}
		}
		boxed := make([]scil.Value, len(args))
		for i, a := range args {
			boxed[i] = scil.Scalar(a)
		}
		v, err := b.Eval(boxed)
		if err != nil {
			return absVal{}
		}
		return absVal{known: true, val: v.ScalarVal()}
	}
	return absVal{}
}
