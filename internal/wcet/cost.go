// Package wcet implements ARGO's code-level WCET analysis (paper §II-D):
// the isolated worst-case execution time of a code fragment on one core,
// ignoring shared-resource contention (which the system-level analysis in
// internal/syswcet adds on top — the platform is fully timing
// compositional, §III-B).
//
// Two independent analyses are provided and cross-checked:
//
//   - Structural: a bottom-up traversal of the structured IR (loop bounds
//     multiply, branches take the maximum), in the spirit of tree-based
//     WCET calculation.
//   - IPET: the implicit path enumeration technique — the IR is converted
//     to a control-flow graph whose edge execution counts are the
//     variables of an integer linear program solved with internal/lp,
//     as done by industrial analyzers such as aiT.
//
// Both analyses share the exact cost model used by the IR interpreter's
// meter, so "simulated execution time <= WCET bound" is a mechanically
// checkable property (exercised by experiment E2).
package wcet

import (
	"argo/internal/adl"
	"argo/internal/ir"
)

// CostModel holds the per-core architecture cost parameters.
type CostModel struct {
	// OpCycles is cycles per abstract ALU-op unit.
	OpCycles int
	// SPMLatency is the per-element scratchpad access latency.
	SPMLatency int
	// SharedLatency is the isolated per-element shared-memory access
	// latency (grant assumed immediate; contention is system-level).
	SharedLatency int
}

// ModelFor extracts the cost model of one core from a platform.
func ModelFor(p *adl.Platform, coreID int) CostModel {
	c := p.Cores[coreID]
	spmLat := c.SPM.LatencyCycles
	if c.SPM.SizeBytes == 0 {
		spmLat = p.SharedAccessIsolated(coreID) // no SPM: everything is shared
	}
	return CostModel{
		OpCycles:      c.OpCycles,
		SPMLatency:    spmLat,
		SharedLatency: p.SharedAccessIsolated(coreID),
	}
}

// accessLatency returns the access latency for one element of v.
func (m CostModel) accessLatency(v *ir.Var) int64 {
	if v.Storage == ir.StorageSPM {
		return int64(m.SPMLatency)
	}
	return int64(m.SharedLatency)
}

// exprCost is the full cost of evaluating e once: ALU ops plus memory
// loads.
func (m CostModel) exprCost(e ir.Expr) int64 {
	cost := int64(ir.ExprOpUnits(e)) * int64(m.OpCycles)
	reads := map[*ir.Var]int{}
	ir.ExprReads(e, reads)
	for v, n := range reads {
		cost += int64(n) * m.accessLatency(v)
	}
	return cost
}

// stmtSelfCost is the cost of one execution of the statement's own work,
// excluding nested statements and loop-iteration overheads. It mirrors
// exactly what the IR interpreter's meter charges.
func (m CostModel) stmtSelfCost(s ir.Stmt) int64 {
	switch st := s.(type) {
	case *ir.AssignScalar:
		return m.exprCost(st.Src) + int64(m.OpCycles)
	case *ir.Store:
		c := int64(m.OpCycles) + m.exprCost(st.Src)
		for _, ix := range st.Idx {
			c += m.exprCost(ix)
		}
		c += m.accessLatency(st.Dst)
		return c
	case *ir.For:
		// Header evaluation (once).
		return m.exprCost(st.Lo) + m.exprCost(st.Step) + m.exprCost(st.Hi)
	case *ir.While:
		// One condition check (charged per check by the caller).
		return m.exprCost(st.Cond) + int64(m.OpCycles)
	case *ir.If:
		return m.exprCost(st.Cond) + int64(m.OpCycles)
	case *ir.Break, *ir.Continue:
		return 0
	}
	return 0
}

// loopIterOverhead is the per-iteration increment+branch cost of a For.
func (m CostModel) loopIterOverhead() int64 { return 2 * int64(m.OpCycles) }

// StmtSelfCost exposes the per-execution self cost of one statement
// (assignment/store: the full metered cost; loop/branch: one header or
// condition evaluation) for engines outside this package that charge
// statements individually, such as internal/wcet/mc.
func (m CostModel) StmtSelfCost(s ir.Stmt) int64 { return m.stmtSelfCost(s) }

// LoopIterOverhead exposes the per-iteration increment+branch charge of
// a counted loop.
func (m CostModel) LoopIterOverhead() int64 { return m.loopIterOverhead() }

// Structural computes the code-level WCET bound of a statement region by
// bottom-up structural analysis.
func Structural(stmts []ir.Stmt, m CostModel) int64 {
	var total int64
	for _, s := range stmts {
		total += structuralStmt(s, m)
	}
	return total
}

func structuralStmt(s ir.Stmt, m CostModel) int64 {
	switch st := s.(type) {
	case *ir.AssignScalar, *ir.Store, *ir.Break, *ir.Continue:
		return m.stmtSelfCost(s)
	case *ir.For:
		body := Structural(st.Body, m)
		return m.stmtSelfCost(s) + int64(st.Trip)*(m.loopIterOverhead()+body)
	case *ir.While:
		check := m.stmtSelfCost(s)
		body := Structural(st.Body, m)
		// Bound iterations, each preceded by a check, plus the final
		// failing check.
		return int64(st.Bound)*(check+body) + check
	case *ir.If:
		t := Structural(st.Then, m)
		e := Structural(st.Else, m)
		if e > t {
			t = e
		}
		return m.stmtSelfCost(s) + t
	}
	return 0
}

// Report is a code-level WCET result for one region on one core.
type Report struct {
	// Cycles is the isolated WCET bound.
	Cycles int64
	// SharedAccesses bounds the number of shared-memory element accesses
	// (input to the system-level interference analysis).
	SharedAccesses int64
	// SPMAccesses bounds scratchpad accesses.
	SPMAccesses int64
}

// Analyze runs the structural analysis and access counting for a region.
func Analyze(stmts []ir.Stmt, m CostModel) Report {
	counts := ir.CountAccesses(stmts)
	rep := Report{Cycles: Structural(stmts, m)}
	for v, n := range counts.Reads {
		if v.Storage == ir.StorageSPM {
			rep.SPMAccesses += n
		} else {
			rep.SharedAccesses += n
		}
	}
	for v, n := range counts.Writes {
		if v.Storage == ir.StorageSPM {
			rep.SPMAccesses += n
		} else {
			rep.SharedAccesses += n
		}
	}
	return rep
}

// CycleMeter converts an actual IR execution into cycles and access
// counts using the same cost model as the static analyses; it implements
// ir.Meter.
type CycleMeter struct {
	Model          CostModel
	Cycles         int64
	SharedAccesses int64
	SPMAccesses    int64
}

// Ops implements ir.Meter.
func (cm *CycleMeter) Ops(n int) { cm.Cycles += int64(n) * int64(cm.Model.OpCycles) }

// Read implements ir.Meter.
func (cm *CycleMeter) Read(v *ir.Var) {
	cm.Cycles += cm.Model.accessLatency(v)
	if v.Storage == ir.StorageSPM {
		cm.SPMAccesses++
	} else {
		cm.SharedAccesses++
	}
}

// Write implements ir.Meter.
func (cm *CycleMeter) Write(v *ir.Var) {
	cm.Cycles += cm.Model.accessLatency(v)
	if v.Storage == ir.StorageSPM {
		cm.SPMAccesses++
	} else {
		cm.SharedAccesses++
	}
}
