package wcet

import (
	"fmt"
	"sort"
	"sync"

	"argo/internal/ir"
)

// Engine is one code-level WCET analysis back-end. Every engine must be
// sound with respect to the metered IR interpreter — for any execution
// of the region, the metered cycle count is <= Report.Cycles — and must
// produce the same access-count bounds (they feed the system-level
// interference analysis, which has to see one consistent traffic model
// regardless of which engine computed the cycle bound).
//
// Engines are identified by Name: the bound memo (AnalyzeMemo/AnalyzeFP)
// and the pass-cache fingerprints downstream of annotation key on it, so
// no cache tier can serve one engine's bound as another's.
type Engine interface {
	// Name is the stable identity of the engine ("ipet", "mc").
	Name() string
	// Analyze computes the region's WCET report under the cost model.
	Analyze(stmts []ir.Stmt, m CostModel) Report
}

// ipetEngine is the classic tree/IPET engine: the structural bound
// (which the ILP-based IPET solver provably reproduces on structured
// IR — see TestIPETMatchesStructural) plus worst-case access counts.
type ipetEngine struct{}

func (ipetEngine) Name() string { return "ipet" }

func (ipetEngine) Analyze(stmts []ir.Stmt, m CostModel) Report { return Analyze(stmts, m) }

// IPETEngine is the default engine: the structural/IPET analysis that
// every release before the pluggable-engine refactor used.
var IPETEngine Engine = ipetEngine{}

var (
	engineMu sync.RWMutex
	engines  = map[string]Engine{}
)

func init() { RegisterEngine(IPETEngine) }

// RegisterEngine makes an engine selectable by name (ParseSelection,
// the -wcet-engine flags). Engines register themselves from package
// init; a duplicate name panics — it would make cache keys ambiguous.
func RegisterEngine(e Engine) {
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := engines[e.Name()]; dup {
		panic("wcet: duplicate engine " + e.Name())
	}
	engines[e.Name()] = e
}

// EngineByName returns a registered engine.
func EngineByName(name string) (Engine, bool) {
	engineMu.RLock()
	defer engineMu.RUnlock()
	e, ok := engines[name]
	return e, ok
}

// EngineNames lists the registered engines, sorted.
func EngineNames() []string {
	engineMu.RLock()
	defer engineMu.RUnlock()
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Selection is a resolved engine choice for one compilation: the
// primary engine supplies every bound used downstream, and Check (set
// only by the "both" selector) is re-run on every region so a
// cross-check violation (Check.Cycles > Primary.Cycles) fails the
// compilation loudly instead of silently shipping an unsound or
// untight bound.
type Selection struct {
	Primary Engine
	Check   Engine
	// Spec is the canonical selector string ("ipet", "mc", "both");
	// pass fingerprints downstream of annotation incorporate it.
	Spec string
}

// DefaultSelection is the IPET engine with no cross-check — the
// behavior of every release before engines became pluggable.
func DefaultSelection() Selection { return Selection{Primary: IPETEngine, Spec: "ipet"} }

// SelectionNames lists the valid ParseSelection specs: every registered
// engine plus "both".
func SelectionNames() []string { return append(EngineNames(), "both") }

// ParseSelection resolves a -wcet-engine selector: a registered engine
// name, "both" (IPET bounds downstream, exact engine cross-checked on
// every region), or "" (the default engine). The error message lists
// the valid selectors, so CLI layers can surface it verbatim.
func ParseSelection(spec string) (Selection, error) {
	switch spec {
	case "", "ipet":
		return DefaultSelection(), nil
	case "both":
		chk, ok := EngineByName("mc")
		if !ok {
			return Selection{}, fmt.Errorf("wcet: engine selector %q needs the mc engine (import argo/internal/wcet/mc)", spec)
		}
		return Selection{Primary: IPETEngine, Check: chk, Spec: "both"}, nil
	}
	if e, ok := EngineByName(spec); ok {
		return Selection{Primary: e, Spec: spec}, nil
	}
	return Selection{}, fmt.Errorf("wcet: unknown engine %q (valid: %v)", spec, SelectionNames())
}
