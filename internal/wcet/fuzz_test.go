package wcet

import (
	"math/rand"
	"testing"

	"argo/internal/ir"
	"argo/internal/scil"
)

// TestFuzzStructuralEqualsIPET cross-checks the two independent
// code-level analyses on randomly generated programs: on structured code
// they must agree exactly, for every core model.
func TestFuzzStructuralEqualsIPET(t *testing.T) {
	models := []CostModel{
		{OpCycles: 1, SPMLatency: 2, SharedLatency: 18},
		{OpCycles: 2, SPMLatency: 1, SharedLatency: 12},
	}
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	cfg := scil.DefaultGenConfig()
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		prog := scil.Generate(rng, cfg)
		irProg, err := ir.Lower(prog, "fuzz", []ir.ArgSpec{ir.MatrixArg(cfg.Rows, cfg.Cols)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for mi, m := range models {
			st := Structural(irProg.Entry.Body, m)
			ip, err := IPET(irProg.Entry.Body, m)
			if err != nil {
				t.Fatalf("seed %d model %d: IPET: %v", seed, mi, err)
			}
			if st != ip {
				t.Fatalf("seed %d model %d: structural %d != IPET %d\n%s",
					seed, mi, st, ip,
					scil.GenerateSource(rand.New(rand.NewSource(int64(1000+seed))), cfg))
			}
		}
	}
}

// TestFuzzMeasuredWithinBound executes every generated program on random
// inputs and requires the metered cycles to stay within the structural
// bound — the soundness contract, fuzzed.
func TestFuzzMeasuredWithinBound(t *testing.T) {
	m := CostModel{OpCycles: 1, SPMLatency: 2, SharedLatency: 18}
	cfg := scil.DefaultGenConfig()
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(2000 + seed)))
		prog := scil.Generate(rng, cfg)
		irProg, err := ir.Lower(prog, "fuzz", []ir.ArgSpec{ir.MatrixArg(cfg.Rows, cfg.Cols)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bound := Structural(irProg.Entry.Body, m)
		for trial := 0; trial < 4; trial++ {
			in := make([]float64, cfg.Rows*cfg.Cols)
			for i := range in {
				in[i] = rng.Float64()*30 - 10
			}
			meter := &CycleMeter{Model: m}
			if _, err := ir.NewExec(irProg, meter).Run([][]float64{in}); err != nil {
				t.Fatalf("seed %d trial %d: %v", seed, trial, err)
			}
			if meter.Cycles > bound {
				t.Fatalf("seed %d trial %d: measured %d > bound %d\n%s",
					seed, trial, meter.Cycles, bound,
					scil.GenerateSource(rand.New(rand.NewSource(int64(2000+seed))), cfg))
			}
		}
	}
}
