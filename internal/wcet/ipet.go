package wcet

import (
	"fmt"
	"math"
	"sync"

	"argo/internal/ir"
	"argo/internal/lp"
)

// cfg is the control-flow graph built for IPET. Nodes carry costs; edges
// carry the ILP execution-count variables.
type cfg struct {
	costs []int64 // node id -> cost of one execution
	from  []int   // edge id -> source node
	to    []int   // edge id -> target node
	// loop constraints: count(iterEdge) <= k * count(entryEdge)
	loops []loopCons
	entry int
	exit  int
}

type loopCons struct {
	iterEdge, entryEdge int
	k                   int64
}

func (g *cfg) newNode(cost int64) int {
	g.costs = append(g.costs, cost)
	return len(g.costs) - 1
}

func (g *cfg) newEdge(from, to int) int {
	g.from = append(g.from, from)
	g.to = append(g.to, to)
	return len(g.from) - 1
}

type loopCtx struct {
	breakNode    int
	continueNode int
}

// buildCFG converts a structured region into a CFG, reusing g's backing
// slices. The construction mirrors the interpreter's cost charging
// exactly: for-loops charge their header once and a 2-op overhead per
// iteration; while-loops and ifs charge cond+1 per check.
func buildCFG(g *cfg, stmts []ir.Stmt, m CostModel) {
	g.costs = g.costs[:0]
	g.from = g.from[:0]
	g.to = g.to[:0]
	g.loops = g.loops[:0]
	g.entry = g.newNode(0)
	end := buildBlock(g, stmts, g.entry, m, nil)
	g.exit = g.newNode(0)
	g.newEdge(end, g.exit)
}

// buildBlock threads stmts from node cur and returns the block's exit node.
func buildBlock(g *cfg, stmts []ir.Stmt, cur int, m CostModel, lc *loopCtx) int {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.AssignScalar, *ir.Store:
			n := g.newNode(m.stmtSelfCost(s))
			g.newEdge(cur, n)
			cur = n
		case *ir.Break:
			g.newEdge(cur, lc.breakNode)
			cur = g.newNode(0) // unreachable continuation
		case *ir.Continue:
			g.newEdge(cur, lc.continueNode)
			cur = g.newNode(0)
		case *ir.For:
			hdr := g.newNode(m.stmtSelfCost(st))
			pre := g.newEdge(cur, hdr)
			check := g.newNode(0)
			g.newEdge(hdr, check)
			iter := g.newNode(m.loopIterOverhead())
			iterEdge := g.newEdge(check, iter)
			exit := g.newNode(0)
			g.newEdge(check, exit)
			inner := &loopCtx{breakNode: exit, continueNode: check}
			bodyEnd := buildBlock(g, st.Body, iter, m, inner)
			g.newEdge(bodyEnd, check)
			g.loops = append(g.loops, loopCons{iterEdge: iterEdge, entryEdge: pre, k: int64(st.Trip)})
			cur = exit
		case *ir.While:
			check := g.newNode(m.stmtSelfCost(st))
			pre := g.newEdge(cur, check)
			iter := g.newNode(0)
			iterEdge := g.newEdge(check, iter)
			exit := g.newNode(0)
			g.newEdge(check, exit)
			inner := &loopCtx{breakNode: exit, continueNode: check}
			bodyEnd := buildBlock(g, st.Body, iter, m, inner)
			g.newEdge(bodyEnd, check)
			g.loops = append(g.loops, loopCons{iterEdge: iterEdge, entryEdge: pre, k: int64(st.Bound)})
			cur = exit
		case *ir.If:
			cond := g.newNode(m.stmtSelfCost(st))
			g.newEdge(cur, cond)
			thenEntry := g.newNode(0)
			g.newEdge(cond, thenEntry)
			elseEntry := g.newNode(0)
			g.newEdge(cond, elseEntry)
			merge := g.newNode(0)
			thenEnd := buildBlock(g, st.Then, thenEntry, m, lc)
			g.newEdge(thenEnd, merge)
			elseEnd := buildBlock(g, st.Else, elseEntry, m, lc)
			g.newEdge(elseEnd, merge)
			cur = merge
		}
	}
	return cur
}

// ipetState is the reusable memory of one IPET solve: the CFG, the edge
// incidence lists, one flat slab backing all constraint coefficient
// rows, and the LP workspace. Pooled so repeated IPET calls allocate
// nothing in the steady state.
type ipetState struct {
	g        cfg
	inEdges  [][]int
	outEdges [][]int
	slab     []float64
	cons     []lp.Constraint
	obj      []float64
	integer  []bool
	ws       *lp.Workspace
}

var ipetPool = sync.Pool{New: func() any { return &ipetState{ws: lp.NewWorkspace()} }}

// incidence returns s[:n] with every per-node list reset to length 0.
func incidence(s [][]int, n int) [][]int {
	if cap(s) < n {
		s = make([][]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

// IPET computes the code-level WCET bound of a region via implicit path
// enumeration: maximize total cost over edge execution counts subject to
// flow conservation and loop-bound constraints. For the structured CFGs
// produced here the LP relaxation is integral; integrality is verified
// and branch-and-bound is used as a fallback. Solver memory is drawn
// from a process-wide pool; results are bit-identical to IPETCold.
func IPET(stmts []ir.Stmt, m CostModel) (int64, error) {
	st := ipetPool.Get().(*ipetState)
	defer ipetPool.Put(st)
	return st.run(stmts, m)
}

// IPETCold is IPET on fresh, unpooled solver state: the allocation
// baseline the pooled path is benchmarked against.
func IPETCold(stmts []ir.Stmt, m CostModel) (int64, error) {
	st := &ipetState{ws: lp.NewWorkspace()}
	return st.run(stmts, m)
}

func (st *ipetState) run(stmts []ir.Stmt, m CostModel) (int64, error) {
	g := &st.g
	buildCFG(g, stmts, m)
	nEdges := len(g.from)
	if nEdges == 0 {
		return 0, nil
	}
	if cap(st.obj) < nEdges {
		st.obj = make([]float64, nEdges)
	}
	obj := st.obj[:nEdges]
	// Objective: each edge pays the cost of the node it enters.
	for e := 0; e < nEdges; e++ {
		obj[e] = float64(g.costs[g.to[e]])
	}
	// Flow conservation for every node except entry and exit:
	// sum(in) - sum(out) == 0. Entry: out-flow == 1. Exit: in-flow == 1.
	st.inEdges = incidence(st.inEdges, len(g.costs))
	st.outEdges = incidence(st.outEdges, len(g.costs))
	inEdges, outEdges := st.inEdges, st.outEdges
	for e := 0; e < nEdges; e++ {
		inEdges[g.to[e]] = append(inEdges[g.to[e]], e)
		outEdges[g.from[e]] = append(outEdges[g.from[e]], e)
	}
	// All coefficient rows share one zeroed flat slab.
	rows := len(g.costs) + len(g.loops)
	if cap(st.slab) < rows*nEdges {
		st.slab = make([]float64, rows*nEdges)
	}
	slab := st.slab[:rows*nEdges]
	clear(slab)
	st.cons = st.cons[:0]
	prob := &lp.Problem{Obj: obj, Cons: st.cons}
	nextRow := 0
	newCoef := func() []float64 {
		c := slab[nextRow*nEdges : (nextRow+1)*nEdges]
		nextRow++
		return c
	}
	for n := range g.costs {
		coef := newCoef()
		switch n {
		case g.entry:
			for _, e := range outEdges[n] {
				coef[e] = 1
			}
			prob.AddEQ(coef, 1)
		case g.exit:
			for _, e := range inEdges[n] {
				coef[e] = 1
			}
			prob.AddEQ(coef, 1)
		default:
			for _, e := range inEdges[n] {
				coef[e] += 1
			}
			for _, e := range outEdges[n] {
				coef[e] -= 1
			}
			prob.AddEQ(coef, 0)
		}
	}
	for _, lcn := range g.loops {
		coef := newCoef()
		coef[lcn.iterEdge] = 1
		coef[lcn.entryEdge] = -float64(lcn.k)
		prob.AddLE(coef, 0)
	}
	st.cons = prob.Cons[:0] // keep the (possibly grown) backing array
	sol := st.ws.Solve(prob)
	switch sol.Status {
	case lp.Optimal:
	case lp.Unbounded:
		return 0, fmt.Errorf("wcet: IPET problem unbounded (missing loop bound?)")
	default:
		return 0, fmt.Errorf("wcet: IPET problem infeasible")
	}
	// Verify integrality; fall back to branch-and-bound if violated.
	for _, x := range sol.X {
		if math.Abs(x-math.Round(x)) > 1e-6 {
			if cap(st.integer) < nEdges {
				st.integer = make([]bool, nEdges)
			}
			prob.Integer = st.integer[:nEdges]
			for i := range prob.Integer {
				prob.Integer[i] = true
			}
			sol = st.ws.SolveMIP(prob)
			if sol.Status != lp.Optimal {
				return 0, fmt.Errorf("wcet: IPET MIP failed: %v", sol.Status)
			}
			break
		}
	}
	return int64(math.Round(sol.Obj)), nil
}
