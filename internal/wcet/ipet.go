package wcet

import (
	"fmt"
	"math"

	"argo/internal/ir"
	"argo/internal/lp"
)

// cfg is the control-flow graph built for IPET. Nodes carry costs; edges
// carry the ILP execution-count variables.
type cfg struct {
	costs []int64 // node id -> cost of one execution
	from  []int   // edge id -> source node
	to    []int   // edge id -> target node
	// loop constraints: count(iterEdge) <= k * count(entryEdge)
	loops []loopCons
	entry int
	exit  int
}

type loopCons struct {
	iterEdge, entryEdge int
	k                   int64
}

func (g *cfg) newNode(cost int64) int {
	g.costs = append(g.costs, cost)
	return len(g.costs) - 1
}

func (g *cfg) newEdge(from, to int) int {
	g.from = append(g.from, from)
	g.to = append(g.to, to)
	return len(g.from) - 1
}

type loopCtx struct {
	breakNode    int
	continueNode int
}

// buildCFG converts a structured region into a CFG. The construction
// mirrors the interpreter's cost charging exactly: for-loops charge their
// header once and a 2-op overhead per iteration; while-loops and ifs
// charge cond+1 per check.
func buildCFG(stmts []ir.Stmt, m CostModel) *cfg {
	g := &cfg{}
	g.entry = g.newNode(0)
	end := buildBlock(g, stmts, g.entry, m, nil)
	g.exit = g.newNode(0)
	g.newEdge(end, g.exit)
	return g
}

// buildBlock threads stmts from node cur and returns the block's exit node.
func buildBlock(g *cfg, stmts []ir.Stmt, cur int, m CostModel, lc *loopCtx) int {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.AssignScalar, *ir.Store:
			n := g.newNode(m.stmtSelfCost(s))
			g.newEdge(cur, n)
			cur = n
		case *ir.Break:
			g.newEdge(cur, lc.breakNode)
			cur = g.newNode(0) // unreachable continuation
		case *ir.Continue:
			g.newEdge(cur, lc.continueNode)
			cur = g.newNode(0)
		case *ir.For:
			hdr := g.newNode(m.stmtSelfCost(st))
			pre := g.newEdge(cur, hdr)
			check := g.newNode(0)
			g.newEdge(hdr, check)
			iter := g.newNode(m.loopIterOverhead())
			iterEdge := g.newEdge(check, iter)
			exit := g.newNode(0)
			g.newEdge(check, exit)
			inner := &loopCtx{breakNode: exit, continueNode: check}
			bodyEnd := buildBlock(g, st.Body, iter, m, inner)
			g.newEdge(bodyEnd, check)
			g.loops = append(g.loops, loopCons{iterEdge: iterEdge, entryEdge: pre, k: int64(st.Trip)})
			cur = exit
		case *ir.While:
			check := g.newNode(m.stmtSelfCost(st))
			pre := g.newEdge(cur, check)
			iter := g.newNode(0)
			iterEdge := g.newEdge(check, iter)
			exit := g.newNode(0)
			g.newEdge(check, exit)
			inner := &loopCtx{breakNode: exit, continueNode: check}
			bodyEnd := buildBlock(g, st.Body, iter, m, inner)
			g.newEdge(bodyEnd, check)
			g.loops = append(g.loops, loopCons{iterEdge: iterEdge, entryEdge: pre, k: int64(st.Bound)})
			cur = exit
		case *ir.If:
			cond := g.newNode(m.stmtSelfCost(st))
			g.newEdge(cur, cond)
			thenEntry := g.newNode(0)
			g.newEdge(cond, thenEntry)
			elseEntry := g.newNode(0)
			g.newEdge(cond, elseEntry)
			merge := g.newNode(0)
			thenEnd := buildBlock(g, st.Then, thenEntry, m, lc)
			g.newEdge(thenEnd, merge)
			elseEnd := buildBlock(g, st.Else, elseEntry, m, lc)
			g.newEdge(elseEnd, merge)
			cur = merge
		}
	}
	return cur
}

// IPET computes the code-level WCET bound of a region via implicit path
// enumeration: maximize total cost over edge execution counts subject to
// flow conservation and loop-bound constraints. For the structured CFGs
// produced here the LP relaxation is integral; integrality is verified
// and branch-and-bound is used as a fallback.
func IPET(stmts []ir.Stmt, m CostModel) (int64, error) {
	g := buildCFG(stmts, m)
	nEdges := len(g.from)
	if nEdges == 0 {
		return 0, nil
	}
	prob := &lp.Problem{Obj: make([]float64, nEdges)}
	// Objective: each edge pays the cost of the node it enters.
	for e := 0; e < nEdges; e++ {
		prob.Obj[e] = float64(g.costs[g.to[e]])
	}
	// Flow conservation for every node except entry and exit:
	// sum(in) - sum(out) == 0. Entry: out-flow == 1. Exit: in-flow == 1.
	inEdges := make([][]int, len(g.costs))
	outEdges := make([][]int, len(g.costs))
	for e := 0; e < nEdges; e++ {
		inEdges[g.to[e]] = append(inEdges[g.to[e]], e)
		outEdges[g.from[e]] = append(outEdges[g.from[e]], e)
	}
	for n := range g.costs {
		coef := make([]float64, nEdges)
		switch n {
		case g.entry:
			for _, e := range outEdges[n] {
				coef[e] = 1
			}
			prob.AddEQ(coef, 1)
		case g.exit:
			for _, e := range inEdges[n] {
				coef[e] = 1
			}
			prob.AddEQ(coef, 1)
		default:
			for _, e := range inEdges[n] {
				coef[e] += 1
			}
			for _, e := range outEdges[n] {
				coef[e] -= 1
			}
			prob.AddEQ(coef, 0)
		}
	}
	for _, lcn := range g.loops {
		coef := make([]float64, nEdges)
		coef[lcn.iterEdge] = 1
		coef[lcn.entryEdge] = -float64(lcn.k)
		prob.AddLE(coef, 0)
	}
	sol := lp.Solve(prob)
	switch sol.Status {
	case lp.Optimal:
	case lp.Unbounded:
		return 0, fmt.Errorf("wcet: IPET problem unbounded (missing loop bound?)")
	default:
		return 0, fmt.Errorf("wcet: IPET problem infeasible")
	}
	// Verify integrality; fall back to branch-and-bound if violated.
	for _, x := range sol.X {
		if math.Abs(x-math.Round(x)) > 1e-6 {
			prob.Integer = make([]bool, nEdges)
			for i := range prob.Integer {
				prob.Integer[i] = true
			}
			sol = lp.SolveMIP(prob)
			if sol.Status != lp.Optimal {
				return 0, fmt.Errorf("wcet: IPET MIP failed: %v", sol.Status)
			}
			break
		}
	}
	return int64(math.Round(sol.Obj)), nil
}
