package wcet

import (
	"testing"

	"argo/internal/ir"
)

// offsetEngine is a fake second engine whose bounds deliberately differ
// from the IPET engine's, so cache-soundness violations are observable.
type offsetEngine struct{ name string }

func (e offsetEngine) Name() string { return e.name }

func (e offsetEngine) Analyze(stmts []ir.Stmt, m CostModel) Report {
	rep := Analyze(stmts, m)
	rep.Cycles += 1000
	return rep
}

// TestEngineCacheKeying is the regression test for the latent
// cache-soundness gap: flipping engines over the same (region, model)
// must produce distinct cache keys — a fresh miss per engine, and never
// one engine's bound served as another's.
func TestEngineCacheKeying(t *testing.T) {
	prog := compile(t, `function r = f(a)
  r = 0
  for i = 1:8
    r = r + a * i
  end
endfunction`, "f", ir.ScalarArg())
	m := defaultModel()
	other := offsetEngine{name: "offset-test"}

	ResetCache()
	_, mi0 := CacheCounters()

	ipetRep := AnalyzeMemo(IPETEngine, prog.Entry.Body, m)
	_, mi1 := CacheCounters()
	if mi1 != mi0+1 {
		t.Fatalf("first ipet analysis: misses %d -> %d, want one new miss", mi0, mi1)
	}

	otherRep := AnalyzeMemo(other, prog.Entry.Body, m)
	_, mi2 := CacheCounters()
	if mi2 != mi1+1 {
		t.Fatalf("flipping engines must miss: misses %d -> %d", mi1, mi2)
	}
	if otherRep.Cycles == ipetRep.Cycles {
		t.Fatalf("engines must not share bounds: both report %d cycles", ipetRep.Cycles)
	}
	if want := ipetRep.Cycles + 1000; otherRep.Cycles != want {
		t.Fatalf("offset engine bound = %d, want %d (cache served a foreign bound)", otherRep.Cycles, want)
	}

	// Re-running each engine hits its own entry and returns its own bound.
	h1, _ := CacheCounters()
	if got := AnalyzeMemo(IPETEngine, prog.Entry.Body, m); got != ipetRep {
		t.Fatalf("cached ipet report changed: %+v vs %+v", got, ipetRep)
	}
	if got := AnalyzeMemo(other, prog.Entry.Body, m); got != otherRep {
		t.Fatalf("cached offset report changed: %+v vs %+v", got, otherRep)
	}
	h2, mi3 := CacheCounters()
	if h2 != h1+2 || mi3 != mi2 {
		t.Fatalf("re-runs: hits %d -> %d (want +2), misses %d -> %d (want unchanged)", h1, h2, mi2, mi3)
	}
}

// TestParseSelection pins the selector grammar the CLI layers rely on.
func TestParseSelection(t *testing.T) {
	for _, spec := range []string{"", "ipet"} {
		sel, err := ParseSelection(spec)
		if err != nil {
			t.Fatalf("ParseSelection(%q): %v", spec, err)
		}
		if sel.Primary != IPETEngine || sel.Check != nil || sel.Spec != "ipet" {
			t.Fatalf("ParseSelection(%q) = %+v, want default ipet selection", spec, sel)
		}
	}
	if _, err := ParseSelection("no-such-engine"); err == nil {
		t.Fatal("unknown engine spec must fail")
	}
}
