package wcet

import (
	"crypto/sha256"
	"encoding/binary"
	"expvar"
	"math"
	"sync"

	"argo/internal/ir"
)

// Code-level bounds are pure functions of (region content, cost model):
// Structural and Analyze read only the statement structure, the loop
// bounds, and the name/shape/storage of the referenced variables. That
// makes them safe to memoize under a content address — the optimizer's
// candidate ladder and the placement feedback loop re-analyze
// mostly-identical task bodies dozens of times, and only regions a
// transform (or a storage demotion) actually touched miss the cache.
//
// Cache effectiveness is observable via the process-wide expvar counters
// argo_wcet_cache_hits / argo_wcet_cache_misses (served by argod's
// /debug/vars).

// Fingerprint content-addresses a statement region: two regions with
// equal fingerprints are structurally identical, reference variables
// with the same names, shapes, and storage classes, and therefore have
// identical code-level analysis results for any cost model.
type Fingerprint [sha256.Size]byte

var (
	cacheHits   = expvar.NewInt("argo_wcet_cache_hits")
	cacheMisses = expvar.NewInt("argo_wcet_cache_misses")
)

// cacheKey includes the engine identity: two engines may legitimately
// produce different bounds for the same (region, model), so no cache
// tier may ever serve one engine's bound as another's.
type cacheKey struct {
	fp     Fingerprint
	m      CostModel
	engine string
}

// The cache is sharded to keep contention low when parallel candidate
// evaluation annotates task graphs concurrently, and bounded so a
// long-running argod cannot grow it without limit (a full shard is
// simply reset: the cache is an accelerator, not a correctness
// mechanism).
const (
	cacheShardBits = 6
	cacheShards    = 1 << cacheShardBits
	cacheShardMax  = 4096
)

type cacheShard struct {
	mu sync.RWMutex
	m  map[cacheKey]Report
}

var boundCache [cacheShards]cacheShard

// ResetCache drops all memoized bounds and is intended for tests and
// benchmarks that measure the cold path.
func ResetCache() {
	for i := range boundCache {
		s := &boundCache[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}

// --- region serialization ---------------------------------------------------

type fpWriter struct{ buf []byte }

var fpPool = sync.Pool{New: func() any { return &fpWriter{buf: make([]byte, 0, 1024)} }}

func (w *fpWriter) byte(b byte)  { w.buf = append(w.buf, b) }
func (w *fpWriter) str(s string) { w.buf = append(w.buf, s...); w.byte(0) }
func (w *fpWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

func (w *fpWriter) variable(v *ir.Var) {
	w.str(v.Name)
	w.byte(byte(v.Storage))
	if v.Scalar {
		w.byte(1)
	} else {
		w.byte(0)
	}
	w.u64(uint64(v.Rows))
	w.u64(uint64(v.Cols))
}

func (w *fpWriter) expr(e ir.Expr) {
	switch ex := e.(type) {
	case *ir.Const:
		w.byte(10)
		w.u64(math.Float64bits(ex.Val))
	case *ir.VarRef:
		w.byte(11)
		w.variable(ex.V)
	case *ir.Index:
		w.byte(12)
		w.variable(ex.V)
		w.byte(byte(len(ex.Idx)))
		for _, ix := range ex.Idx {
			w.expr(ix)
		}
	case *ir.Bin:
		w.byte(13)
		w.byte(byte(ex.Op))
		w.expr(ex.X)
		w.expr(ex.Y)
	case *ir.Un:
		w.byte(14)
		w.byte(byte(ex.Op))
		w.expr(ex.X)
	case *ir.Intrinsic:
		w.byte(15)
		w.str(ex.Name)
		w.byte(byte(len(ex.Args)))
		for _, a := range ex.Args {
			w.expr(a)
		}
	}
}

func (w *fpWriter) block(stmts []ir.Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.AssignScalar:
			w.byte(1)
			w.variable(st.Dst)
			w.expr(st.Src)
		case *ir.Store:
			w.byte(2)
			w.variable(st.Dst)
			w.byte(byte(len(st.Idx)))
			for _, ix := range st.Idx {
				w.expr(ix)
			}
			w.expr(st.Src)
		case *ir.For:
			w.byte(3)
			w.variable(st.IVar)
			w.expr(st.Lo)
			w.expr(st.Step)
			w.expr(st.Hi)
			w.u64(uint64(st.Trip))
			w.block(st.Body)
		case *ir.While:
			w.byte(4)
			w.expr(st.Cond)
			w.u64(uint64(st.Bound))
			w.block(st.Body)
		case *ir.If:
			w.byte(5)
			w.expr(st.Cond)
			w.block(st.Then)
			w.byte(6)
			w.block(st.Else)
		case *ir.Break:
			w.byte(7)
		case *ir.Continue:
			w.byte(8)
		}
	}
	w.byte(0) // end of block
}

// FingerprintRegion computes the content address of a statement region.
// Callers analyzing one region under several cost models should compute
// the fingerprint once and pass it to AnalyzeFP.
func FingerprintRegion(stmts []ir.Stmt) Fingerprint {
	w := fpPool.Get().(*fpWriter)
	w.buf = w.buf[:0]
	w.block(stmts)
	fp := sha256.Sum256(w.buf)
	fpPool.Put(w)
	return fp
}

// FingerprintProgram computes the content address of a whole lowered
// program: the entry signature, the full variable table (names, shapes,
// storage classes, param/result roles, registration order — order
// matters because buffer placement assigns addresses in table order),
// the entry body, and the temporary-name counter (generated names in
// later rewrites depend on it). Two programs with equal fingerprints
// behave identically under every downstream stage — transformation,
// task extraction, scheduling, WCET analysis, code generation — which
// is what makes whole-program fingerprints sound pass-cache keys.
func FingerprintProgram(prog *ir.Program) Fingerprint {
	w := fpPool.Get().(*fpWriter)
	w.buf = w.buf[:0]
	w.str(prog.Entry.Name)
	w.u64(uint64(prog.TempSeq()))
	w.u64(uint64(len(prog.Vars)))
	for _, v := range prog.Vars {
		w.variable(v)
		flags := byte(0)
		if v.Param {
			flags |= 1
		}
		if v.Result {
			flags |= 2
		}
		w.byte(flags)
	}
	w.u64(uint64(len(prog.Entry.Params)))
	for _, v := range prog.Entry.Params {
		w.str(v.Name)
	}
	w.u64(uint64(len(prog.Entry.Results)))
	for _, v := range prog.Entry.Results {
		w.str(v.Name)
	}
	w.block(prog.Entry.Body)
	fp := sha256.Sum256(w.buf)
	fpPool.Put(w)
	return fp
}

// AnalyzeMemo is e.Analyze backed by the process-wide content-addressed
// bound cache. A nil engine means the default IPET engine.
func AnalyzeMemo(e Engine, stmts []ir.Stmt, m CostModel) Report {
	return AnalyzeFP(e, FingerprintRegion(stmts), stmts, m)
}

// AnalyzeFP is AnalyzeMemo for callers that already hold the region's
// fingerprint.
func AnalyzeFP(e Engine, fp Fingerprint, stmts []ir.Stmt, m CostModel) Report {
	if e == nil {
		e = IPETEngine
	}
	key := cacheKey{fp: fp, m: m, engine: e.Name()}
	shard := &boundCache[fp[0]>>(8-cacheShardBits)]
	shard.mu.RLock()
	rep, ok := shard.m[key]
	shard.mu.RUnlock()
	if ok {
		cacheHits.Add(1)
		return rep
	}
	cacheMisses.Add(1)
	rep = e.Analyze(stmts, m)
	shard.mu.Lock()
	if shard.m == nil || len(shard.m) >= cacheShardMax {
		shard.m = make(map[cacheKey]Report)
	}
	shard.m[key] = rep
	shard.mu.Unlock()
	return rep
}

// CacheCounters returns the cumulative hit/miss counts of the bound
// cache (also exported as expvars argo_wcet_cache_{hits,misses}).
func CacheCounters() (hits, misses int64) {
	return cacheHits.Value(), cacheMisses.Value()
}
