package ir

import (
	"testing"

	"argo/internal/scil"
)

func lower(t *testing.T, src, entry string, args ...ArgSpec) *Program {
	t.Helper()
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := Lower(p, entry, args)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func TestComputeUsesSeparatesKinds(t *testing.T) {
	prog := lower(t, `
function r = f(m)
  s = 1
  r = 0
  for i = 1:3
    r = r + m(i, i) * s
  end
endfunction`, "f", MatrixArg(3, 3))
	u := ComputeUses(prog.Entry.Body)
	if len(u.MatReads) != 1 || len(u.MatWrites) != 0 {
		t.Fatalf("matrix uses: reads %d writes %d", len(u.MatReads), len(u.MatWrites))
	}
	if len(u.ScalWrite) < 3 { // s, r, i
		t.Fatalf("scalar writes: %d", len(u.ScalWrite))
	}
}

func TestConflictsDetection(t *testing.T) {
	m := &Var{Name: "m", Rows: 2, Cols: 2}
	s := &Var{Name: "s", Scalar: true, Rows: 1, Cols: 1}
	writer := NewUseSets()
	writer.MatWrites[m] = true
	reader := NewUseSets()
	reader.MatReads[m] = true
	if !Conflicts(writer, reader) || !Conflicts(reader, writer) {
		t.Fatal("write/read conflict missed")
	}
	ww := NewUseSets()
	ww.MatWrites[m] = true
	if !Conflicts(writer, ww) {
		t.Fatal("write/write conflict missed")
	}
	sw := NewUseSets()
	sw.ScalWrite[s] = true
	sr := NewUseSets()
	sr.ScalReads[s] = true
	if !Conflicts(sw, sr) {
		t.Fatal("scalar conflict missed")
	}
	rr := NewUseSets()
	rr.MatReads[m] = true
	rr2 := NewUseSets()
	rr2.MatReads[m] = true
	if Conflicts(rr, rr2) {
		t.Fatal("read/read is not a conflict")
	}
}

func TestUnionMerges(t *testing.T) {
	m := &Var{Name: "m", Rows: 2, Cols: 2}
	a := NewUseSets()
	a.MatReads[m] = true
	b := NewUseSets()
	b.MatWrites[m] = true
	a.Union(b)
	if !a.MatReads[m] || !a.MatWrites[m] {
		t.Fatal("union lost entries")
	}
}

func TestCountAccessesLoopsMultiply(t *testing.T) {
	prog := lower(t, `
function r = f(m)
  r = 0
  for i = 1:4
    for j = 1:5
      r = r + m(i, j)
    end
  end
endfunction`, "f", MatrixArg(4, 5))
	c := CountAccesses(prog.Entry.Body)
	var m *Var
	for _, v := range prog.MatrixVars() {
		m = v
	}
	if c.Reads[m] != 20 {
		t.Fatalf("reads = %d, want 20", c.Reads[m])
	}
	if c.Total(m) != 20 || c.TotalAll() != 20 {
		t.Fatalf("totals: %d %d", c.Total(m), c.TotalAll())
	}
}

func TestCountAccessesIfTakesMaximum(t *testing.T) {
	prog := lower(t, `
function r = f(m, x)
  r = 0
  if x > 0 then
    r = m(1, 1) + m(1, 2) + m(2, 1)
  else
    r = m(2, 2)
  end
endfunction`, "f", MatrixArg(2, 2), ScalarArg())
	c := CountAccesses(prog.Entry.Body)
	var m *Var
	for _, v := range prog.MatrixVars() {
		m = v
	}
	// Worst branch reads 3 elements.
	if c.Reads[m] != 3 {
		t.Fatalf("reads = %d, want 3 (max of branches)", c.Reads[m])
	}
}

func TestCountAccessesWhileUsesBound(t *testing.T) {
	prog := lower(t, `
function r = f(m, x)
  r = 0
  //@bound 7
  while x > 0
    r = r + m(1, 1)
    x = x - 1
  end
endfunction`, "f", MatrixArg(1, 1), ScalarArg())
	c := CountAccesses(prog.Entry.Body)
	var m *Var
	for _, v := range prog.MatrixVars() {
		m = v
	}
	if c.Reads[m] != 7 {
		t.Fatalf("reads = %d, want 7 (the @bound)", c.Reads[m])
	}
}

func TestCountAccessesStoresCountAsWrites(t *testing.T) {
	prog := lower(t, `
function m = f(x)
  m = zeros(3, 3)
  for i = 1:3
    m(i, i) = x
  end
endfunction`, "f", ScalarArg())
	c := CountAccesses(prog.Entry.Body)
	var total int64
	for _, n := range c.Writes {
		total += n
	}
	// 9 fill writes + 3 diagonal writes.
	if total != 12 {
		t.Fatalf("writes = %d, want 12", total)
	}
}

func TestExecInspectionHelpers(t *testing.T) {
	prog := lower(t, `
function m = f(x)
  m = zeros(2, 2)
  m(1, 2) = x
endfunction`, "f", ScalarArg())
	ex := NewExec(prog, nil)
	if _, err := ex.Run([][]float64{{5}}); err != nil {
		t.Fatal(err)
	}
	m := prog.Entry.Results[0]
	buf := ex.MatrixValue(m)
	if buf == nil || buf[1] != 5 {
		t.Fatalf("MatrixValue: %v", buf)
	}
	if ex.ScalarValue(prog.Entry.Params[0]) != 5 {
		t.Fatal("ScalarValue")
	}
	if ex.MatrixValue(&Var{Name: "ghost", Rows: 1, Cols: 1}) != nil {
		t.Fatal("unknown var should return nil")
	}
}

func TestVarAndStorageStrings(t *testing.T) {
	v := &Var{Name: "m", Rows: 2, Cols: 3, Storage: StorageSPM}
	if v.String() != "m:2x3@spm" {
		t.Fatalf("var string: %s", v)
	}
	s := &Var{Name: "x", Scalar: true}
	if s.String() != "x:scalar" {
		t.Fatalf("scalar string: %s", s)
	}
	if StorageReg.String() != "reg" || StorageShared.String() != "shared" {
		t.Fatal("storage strings")
	}
}

func TestExprReadsCounts(t *testing.T) {
	m := &Var{Name: "m", Rows: 2, Cols: 2}
	e := &Bin{Op: OpAdd,
		X: &Index{V: m, Idx: []Expr{&Const{Val: 1}, &Const{Val: 1}}},
		Y: &Index{V: m, Idx: []Expr{&Const{Val: 2}, &Const{Val: 2}}},
	}
	out := map[*Var]int{}
	ExprReads(e, out)
	if out[m] != 2 {
		t.Fatalf("reads = %d", out[m])
	}
}
