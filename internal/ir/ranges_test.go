package ir

import (
	"math"
	"testing"
)

func TestIntervalBasics(t *testing.T) {
	a := Interval{Lo: 1, Hi: 8}
	b := Interval{Lo: 9, Hi: 16}
	c := Interval{Lo: 8, Hi: 12}
	if !a.Disjoint(b) || !b.Disjoint(a) {
		t.Fatal("1..8 and 9..16 are disjoint")
	}
	if a.Disjoint(c) {
		t.Fatal("1..8 and 8..12 overlap at 8")
	}
	if !emptyInterval.Disjoint(a) {
		t.Fatal("empty is disjoint from everything")
	}
	u := a.union(b)
	if u.Lo != 1 || u.Hi != 16 {
		t.Fatalf("union: %+v", u)
	}
}

func TestExprIntervalArithmetic(t *testing.T) {
	iv := &Var{Name: "i", Scalar: true, Rows: 1, Cols: 1}
	scope := ivarBounds{iv: Interval{Lo: 2, Hi: 9}}
	cases := []struct {
		e      Expr
		lo, hi float64
	}{
		{&Const{Val: 5}, 5, 5},
		{&VarRef{V: iv}, 2, 9},
		{&Bin{Op: OpAdd, X: &VarRef{V: iv}, Y: &Const{Val: 3}}, 5, 12},
		{&Bin{Op: OpSub, X: &VarRef{V: iv}, Y: &Const{Val: 1}}, 1, 8},
		{&Bin{Op: OpMul, X: &VarRef{V: iv}, Y: &Const{Val: 2}}, 4, 18},
	}
	for i, c := range cases {
		got := exprInterval(c.e, scope)
		if got.Lo != c.lo || got.Hi != c.hi {
			t.Errorf("case %d: got [%g, %g], want [%g, %g]", i, got.Lo, got.Hi, c.lo, c.hi)
		}
	}
	// Unknown variables widen to everything.
	unknown := &Var{Name: "x", Scalar: true, Rows: 1, Cols: 1}
	got := exprInterval(&VarRef{V: unknown}, scope)
	if !math.IsInf(got.Lo, -1) || !math.IsInf(got.Hi, 1) {
		t.Fatalf("unknown var: %+v", got)
	}
}

// buildChunk constructs "for i = lo:hi { m[i, j...] = 0 }" style loops.
func buildChunk(m, iv, jv *Var, lo, hi int) Stmt {
	inner := &For{
		IVar: jv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(m.Cols)},
		Trip: m.Cols,
		Body: []Stmt{&Store{Dst: m, Idx: []Expr{&VarRef{V: iv}, &VarRef{V: jv}}, Src: &Const{Val: 0}}},
	}
	return &For{
		IVar: iv, Lo: &Const{Val: float64(lo)}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(hi)},
		Trip: hi - lo + 1,
		Body: []Stmt{inner},
	}
}

func TestCollectAccessRangesOnChunks(t *testing.T) {
	m := &Var{Name: "m", Rows: 16, Cols: 8}
	iv := &Var{Name: "i", Scalar: true, Rows: 1, Cols: 1}
	jv := &Var{Name: "j", Scalar: true, Rows: 1, Cols: 1}
	chunk1 := CollectAccessRanges([]Stmt{buildChunk(m, iv, jv, 1, 8)})
	chunk2 := CollectAccessRanges([]Stmt{buildChunk(m, iv, jv, 9, 16)})
	r1, ok1 := chunk1[m]
	r2, ok2 := chunk2[m]
	if !ok1 || !ok2 {
		t.Fatal("accesses not recorded")
	}
	if r1.Row.Lo != 1 || r1.Row.Hi != 8 || r2.Row.Lo != 9 || r2.Row.Hi != 16 {
		t.Fatalf("rows: %+v %+v", r1.Row, r2.Row)
	}
	if !r1.DisjointFrom(r2) {
		t.Fatal("disjoint chunks not recognized")
	}
	// Overlapping chunks (halo) must NOT be disjoint.
	chunk3 := CollectAccessRanges([]Stmt{buildChunk(m, iv, jv, 8, 12)})
	if chunk1[m].DisjointFrom(chunk3[m]) {
		t.Fatal("overlapping chunks wrongly disjoint")
	}
}

func TestAccessRangeLinearIndexWidens(t *testing.T) {
	m := &Var{Name: "m", Rows: 4, Cols: 4}
	st := &Store{Dst: m, Idx: []Expr{&Const{Val: 3}}, Src: &Const{Val: 1}}
	r := CollectAccessRanges([]Stmt{st})[m]
	if !math.IsInf(r.Row.Hi, 1) || !math.IsInf(r.Col.Hi, 1) {
		t.Fatalf("linear access must widen: %+v", r)
	}
}

func TestAccessRangeOffsetIndices(t *testing.T) {
	// Stencil read m[i-1, j] from i in 2..8 -> rows 1..7.
	m := &Var{Name: "m", Rows: 16, Cols: 8}
	iv := &Var{Name: "i", Scalar: true, Rows: 1, Cols: 1}
	jv := &Var{Name: "j", Scalar: true, Rows: 1, Cols: 1}
	acc := &Var{Name: "acc", Scalar: true, Rows: 1, Cols: 1}
	read := &AssignScalar{Dst: acc, Src: &Index{V: m, Idx: []Expr{
		&Bin{Op: OpSub, X: &VarRef{V: iv}, Y: &Const{Val: 1}},
		&VarRef{V: jv},
	}}}
	inner := &For{IVar: jv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: 8}, Trip: 8, Body: []Stmt{read}}
	outer := &For{IVar: iv, Lo: &Const{Val: 2}, Step: &Const{Val: 1}, Hi: &Const{Val: 8}, Trip: 7, Body: []Stmt{inner}}
	r := CollectAccessRanges([]Stmt{outer})[m]
	if r.Row.Lo != 1 || r.Row.Hi != 7 {
		t.Fatalf("stencil rows: %+v", r.Row)
	}
	// Disjoint from a writer covering rows 9..16.
	w := CollectAccessRanges([]Stmt{buildChunk(m, iv, jv, 9, 16)})[m]
	if !r.DisjointFrom(w) {
		t.Fatal("stencil rows 1..7 vs writes 9..16 should be disjoint")
	}
	// Not disjoint from a writer covering rows 7..8.
	w2 := CollectAccessRanges([]Stmt{buildChunk(m, iv, jv, 7, 8)})[m]
	if r.DisjointFrom(w2) {
		t.Fatal("halo overlap missed")
	}
}
