package ir

import (
	"fmt"
	"math"

	"argo/internal/scil"
)

// Meter observes the dynamic behaviour of an IR execution. The multicore
// simulator and the tightness experiments implement this to convert an
// actual execution path into cycles and shared-memory traffic using the
// same cost model as the static WCET analysis.
type Meter interface {
	// Ops reports n abstract ALU-operation units executed.
	Ops(n int)
	// Read reports a load of one element of matrix variable v.
	Read(v *Var)
	// Write reports a store of one element of matrix variable v.
	Write(v *Var)
}

// ExprOpUnits returns the abstract ALU cost of evaluating e once,
// excluding memory access latencies (those are charged per Read/Write).
// This is the single cost definition shared by the static WCET analysis
// and the dynamic meter, which is what makes "measured <= bound"
// mechanically checkable.
func ExprOpUnits(e Expr) int {
	switch x := e.(type) {
	case nil:
		return 0
	case *Const:
		return 0
	case *VarRef:
		return 0
	case *Index:
		n := 1 // address computation
		for _, ix := range x.Idx {
			n += ExprOpUnits(ix)
		}
		return n
	case *Bin:
		return 1 + ExprOpUnits(x.X) + ExprOpUnits(x.Y)
	case *Un:
		return 1 + ExprOpUnits(x.X)
	case *Intrinsic:
		n := 0
		if b := scil.LookupBuiltin(x.Name); b != nil {
			n = b.Cost
		} else {
			n = 1
		}
		for _, a := range x.Args {
			n += ExprOpUnits(a)
		}
		return n
	}
	return 1
}

// ExprReads counts element loads performed by one evaluation of e, per
// matrix variable.
func ExprReads(e Expr, out map[*Var]int) {
	WalkExprs(e, func(sub Expr) {
		if ix, ok := sub.(*Index); ok {
			out[ix.V]++
		}
	})
}

// Exec is an IR interpreter instance.
//
// Variable storage is slot-based: variables registered in the program's
// Vars table resolve to dense slices indexed by their slot, so the hot
// interpreter paths (VarRef reads, scalar assignments, buffer lookups)
// perform no map operations. Variables from outside the program (e.g.
// remapped clones fed cross-program) fall back to maps.
type Exec struct {
	prog  *Program
	meter Meter

	slotScalars []float64   // dense scalar storage, index = slot-1
	slotMats    [][]float64 // dense matrix storage (row-major), index = slot-1
	scalars     map[*Var]float64
	mats        map[*Var][]float64 // row-major

	fuel int
}

// ExecFuel bounds the number of executed statements per Run.
const ExecFuel = 200_000_000

// NewExec returns an interpreter for prog. meter may be nil.
func NewExec(prog *Program, meter Meter) *Exec {
	return &Exec{prog: prog, meter: meter}
}

// slotOf returns the dense storage index of v, or -1 if v is not a
// registered variable of the executing program.
func (ex *Exec) slotOf(v *Var) int {
	if v.owner == ex.prog {
		if s := v.slot; s > 0 && s <= len(ex.slotScalars) {
			return s - 1
		}
	}
	return -1
}

func (ex *Exec) getScalar(v *Var) float64 {
	if s := ex.slotOf(v); s >= 0 {
		return ex.slotScalars[s]
	}
	return ex.scalars[v]
}

func (ex *Exec) setScalar(v *Var, x float64) {
	if s := ex.slotOf(v); s >= 0 {
		ex.slotScalars[s] = x
		return
	}
	if ex.scalars == nil {
		ex.scalars = make(map[*Var]float64)
	}
	ex.scalars[v] = x
}

// matrix returns v's current buffer without creating it (nil if untouched).
func (ex *Exec) matrix(v *Var) []float64 {
	if s := ex.slotOf(v); s >= 0 {
		return ex.slotMats[s]
	}
	return ex.mats[v]
}

// MatrixValue exposes a copy of a matrix variable's current contents
// (row-major); nil if the variable has never been touched.
func (ex *Exec) MatrixValue(v *Var) []float64 {
	m := ex.matrix(v)
	if m == nil {
		return nil
	}
	out := make([]float64, len(m))
	copy(out, m)
	return out
}

// ScalarValue exposes the current value of a scalar variable.
func (ex *Exec) ScalarValue(v *Var) float64 { return ex.getScalar(v) }

// Run executes the program's entry function. Matrix arguments are
// row-major slices; scalar arguments are single-element slices. Results
// are returned in declaration order: scalars as 1-element slices,
// matrices row-major.
func (ex *Exec) Run(args [][]float64) ([][]float64, error) {
	if err := ex.Init(args); err != nil {
		return nil, err
	}
	if err := ex.ExecBlock(ex.prog.Entry.Body); err != nil {
		return nil, err
	}
	return ex.Results(), nil
}

// Init binds the entry arguments and resets execution state. It allows
// callers (the multi-core simulator) to execute the program region by
// region via ExecBlock.
func (ex *Exec) Init(args [][]float64) error {
	f := ex.prog.Entry
	if len(args) != len(f.Params) {
		return fmt.Errorf("ir: entry expects %d arguments, got %d", len(f.Params), len(args))
	}
	nv := len(ex.prog.Vars)
	if cap(ex.slotScalars) < nv {
		ex.slotScalars = make([]float64, nv)
		ex.slotMats = make([][]float64, nv)
	} else {
		ex.slotScalars = ex.slotScalars[:nv]
		ex.slotMats = ex.slotMats[:nv]
		clear(ex.slotScalars)
		clear(ex.slotMats)
	}
	ex.scalars = nil
	ex.mats = nil
	ex.fuel = ExecFuel
	for i, p := range f.Params {
		if p.Scalar {
			if len(args[i]) != 1 {
				return fmt.Errorf("ir: argument %d (%s) must be scalar", i, p.Name)
			}
			ex.setScalar(p, args[i][0])
		} else {
			if len(args[i]) != p.Elems() {
				return fmt.Errorf("ir: argument %d (%s) must have %d elements, got %d", i, p.Name, p.Elems(), len(args[i]))
			}
			buf := make([]float64, p.Elems())
			copy(buf, args[i])
			if s := ex.slotOf(p); s >= 0 {
				ex.slotMats[s] = buf
			} else {
				if ex.mats == nil {
					ex.mats = make(map[*Var][]float64)
				}
				ex.mats[p] = buf
			}
		}
	}
	return nil
}

// SetMeter swaps the meter (used to meter each task region separately).
func (ex *Exec) SetMeter(m Meter) { ex.meter = m }

// SetFuel overrides the remaining execution budget (ExecFuel after
// Init). Differential fuzzing uses a small budget so adversarial
// programs stay cheap in both the tree walker and the bytecode VM.
func (ex *Exec) SetFuel(n int) { ex.fuel = n }

// Reset rebinds the interpreter to a (possibly different) program and
// clears the meter, so pooled instances can be reused across runs; call
// Init afterwards to bind arguments.
func (ex *Exec) Reset(prog *Program) {
	ex.prog = prog
	ex.meter = nil
}

// ExecBlock executes a statement region against the current state.
func (ex *Exec) ExecBlock(stmts []Stmt) error {
	_, err := ex.block(stmts)
	return err
}

// The methods below are the timing-slice executor's window into
// interpreter state (internal/ir/slice drives control flow itself and
// replays the meter effects of sliced-away statements, so it needs the
// exact eval, fuel, and meter primitives statement execution uses).

// EvalScalar evaluates an expression against the current state,
// emitting meter Read events exactly as statement execution would.
func (ex *Exec) EvalScalar(e Expr) (float64, error) { return ex.eval(e) }

// Burn consumes one unit of execution fuel — the per-statement (and
// per-loop-check) budget charge.
func (ex *Exec) Burn() error { return ex.burn() }

// Fuel returns the remaining execution budget.
func (ex *Exec) Fuel() int { return ex.fuel }

// SetScalarValue writes a scalar register directly.
func (ex *Exec) SetScalarValue(v *Var, x float64) { ex.setScalar(v, x) }

// MeterOps forwards an ALU charge to the attached meter (nil-safe,
// zero charges suppressed — the same filtering statement execution
// applies).
func (ex *Exec) MeterOps(n int) { ex.ops(n) }

// MeterRead forwards an element-load event to the attached meter.
func (ex *Exec) MeterRead(v *Var) {
	if ex.meter != nil {
		ex.meter.Read(v)
	}
}

// MeterWrite forwards an element-store event to the attached meter.
func (ex *Exec) MeterWrite(v *Var) {
	if ex.meter != nil {
		ex.meter.Write(v)
	}
}

// Results extracts the entry function's results from the current state.
func (ex *Exec) Results() [][]float64 {
	f := ex.prog.Entry
	out := make([][]float64, len(f.Results))
	for i, r := range f.Results {
		if r.Scalar {
			out[i] = []float64{ex.getScalar(r)}
		} else {
			buf := ex.matrix(r)
			if buf == nil {
				buf = make([]float64, r.Elems())
			}
			cp := make([]float64, len(buf))
			copy(cp, buf)
			out[i] = cp
		}
	}
	return out
}

type execCtrl int

const (
	execNone execCtrl = iota
	execBreak
	execContinue
)

func (ex *Exec) block(stmts []Stmt) (execCtrl, error) {
	for _, s := range stmts {
		c, err := ex.stmt(s)
		if err != nil {
			return execNone, err
		}
		if c != execNone {
			return c, nil
		}
	}
	return execNone, nil
}

func (ex *Exec) burn() error {
	ex.fuel--
	if ex.fuel <= 0 {
		return fmt.Errorf("ir: execution budget exhausted")
	}
	return nil
}

func (ex *Exec) ops(n int) {
	if ex.meter != nil && n > 0 {
		ex.meter.Ops(n)
	}
}

func (ex *Exec) stmt(s Stmt) (execCtrl, error) {
	if err := ex.burn(); err != nil {
		return execNone, err
	}
	switch st := s.(type) {
	case *AssignScalar:
		v, err := ex.eval(st.Src)
		if err != nil {
			return execNone, err
		}
		if ex.meter != nil {
			if st.units > 0 {
				ex.ops(int(st.units))
			} else {
				ex.ops(ExprOpUnits(st.Src) + 1)
			}
		}
		ex.setScalar(st.Dst, v)
		return execNone, nil
	case *Store:
		off, err := ex.offset(st.Dst, st.Idx)
		if err != nil {
			return execNone, err
		}
		v, err := ex.eval(st.Src)
		if err != nil {
			return execNone, err
		}
		if ex.meter != nil {
			if st.units > 0 {
				ex.ops(int(st.units))
			} else {
				units := 1 + ExprOpUnits(st.Src)
				for _, ix := range st.Idx {
					units += ExprOpUnits(ix)
				}
				ex.ops(units)
			}
		}
		buf := ex.buffer(st.Dst)
		buf[off] = v
		if ex.meter != nil {
			ex.meter.Write(st.Dst)
		}
		return execNone, nil
	case *For:
		return ex.forLoop(st)
	case *While:
		for iter := 0; ; iter++ {
			if err := ex.burn(); err != nil {
				return execNone, err
			}
			c, err := ex.eval(st.Cond)
			if err != nil {
				return execNone, err
			}
			if ex.meter != nil {
				if st.units > 0 {
					ex.ops(int(st.units))
				} else {
					ex.ops(ExprOpUnits(st.Cond) + 1)
				}
			}
			if c == 0 {
				return execNone, nil
			}
			if iter >= st.Bound {
				return execNone, fmt.Errorf("ir: while loop exceeded its @bound %d", st.Bound)
			}
			ctl, err := ex.block(st.Body)
			if err != nil {
				return execNone, err
			}
			if ctl == execBreak {
				return execNone, nil
			}
		}
	case *If:
		c, err := ex.eval(st.Cond)
		if err != nil {
			return execNone, err
		}
		if ex.meter != nil {
			if st.units > 0 {
				ex.ops(int(st.units))
			} else {
				ex.ops(ExprOpUnits(st.Cond) + 1)
			}
		}
		if c != 0 {
			return ex.block(st.Then)
		}
		return ex.block(st.Else)
	case *Break:
		return execBreak, nil
	case *Continue:
		return execContinue, nil
	}
	return execNone, fmt.Errorf("ir: unknown statement %T", s)
}

func (ex *Exec) forLoop(st *For) (execCtrl, error) {
	lo, err := ex.eval(st.Lo)
	if err != nil {
		return execNone, err
	}
	hi, err := ex.eval(st.Hi)
	if err != nil {
		return execNone, err
	}
	step, err := ex.eval(st.Step)
	if err != nil {
		return execNone, err
	}
	if ex.meter != nil {
		if st.units > 0 {
			ex.ops(int(st.units))
		} else {
			ex.ops(ExprOpUnits(st.Lo) + ExprOpUnits(st.Hi) + ExprOpUnits(st.Step))
		}
	}
	if step == 0 {
		return execNone, fmt.Errorf("ir: for loop with zero step")
	}
	iters := 0
	for v := lo; (step > 0 && v <= hi+1e-12) || (step < 0 && v >= hi-1e-12); v += step {
		if err := ex.burn(); err != nil {
			return execNone, err
		}
		iters++
		if iters > st.Trip {
			return execNone, fmt.Errorf("ir: for loop exceeded its static trip count %d", st.Trip)
		}
		ex.setScalar(st.IVar, v)
		ex.ops(2) // increment + branch
		ctl, err := ex.block(st.Body)
		if err != nil {
			return execNone, err
		}
		if ctl == execBreak {
			break
		}
	}
	return execNone, nil
}

func (ex *Exec) buffer(v *Var) []float64 {
	if s := ex.slotOf(v); s >= 0 {
		buf := ex.slotMats[s]
		if buf == nil {
			buf = make([]float64, v.Elems())
			ex.slotMats[s] = buf
		}
		return buf
	}
	buf, ok := ex.mats[v]
	if !ok {
		buf = make([]float64, v.Elems())
		if ex.mats == nil {
			ex.mats = make(map[*Var][]float64)
		}
		ex.mats[v] = buf
	}
	return buf
}

// offset resolves 1 or 2 subscripts to a row-major element offset.
func (ex *Exec) offset(v *Var, idx []Expr) (int, error) {
	toInt := func(e Expr) (int, error) {
		// Fast paths for the overwhelmingly common subscript shapes;
		// neither has meter side effects, so skipping eval is exact.
		var f float64
		switch x := e.(type) {
		case *VarRef:
			f = ex.getScalar(x.V)
		case *Const:
			f = x.Val
		default:
			var err error
			f, err = ex.eval(e)
			if err != nil {
				return 0, err
			}
		}
		if k := int(f); float64(k) == f {
			return k, nil
		}
		k := int(math.Round(f))
		if math.Abs(f-float64(k)) > 1e-9 {
			return 0, fmt.Errorf("ir: index %g is not an integer", f)
		}
		return k, nil
	}
	switch len(idx) {
	case 2:
		i, err := toInt(idx[0])
		if err != nil {
			return 0, err
		}
		j, err := toInt(idx[1])
		if err != nil {
			return 0, err
		}
		if i < 1 || i > v.Rows || j < 1 || j > v.Cols {
			return 0, fmt.Errorf("ir: index (%d, %d) out of range for %s", i, j, v)
		}
		return (i-1)*v.Cols + (j - 1), nil
	case 1:
		k, err := toInt(idx[0])
		if err != nil {
			return 0, err
		}
		if k < 1 || k > v.Elems() {
			return 0, fmt.Errorf("ir: linear index %d out of range for %s", k, v)
		}
		// Column-major linear indexing.
		k--
		col := k / v.Rows
		row := k % v.Rows
		return row*v.Cols + col, nil
	}
	return 0, fmt.Errorf("ir: %d subscripts", len(idx))
}

func (ex *Exec) eval(e Expr) (float64, error) {
	switch x := e.(type) {
	case *Const:
		return x.Val, nil
	case *VarRef:
		return ex.getScalar(x.V), nil
	case *Index:
		off, err := ex.offset(x.V, x.Idx)
		if err != nil {
			return 0, err
		}
		if ex.meter != nil {
			ex.meter.Read(x.V)
		}
		return ex.buffer(x.V)[off], nil
	case *Bin:
		// Inline leaf operands (no meter effects, no errors) to skip a
		// recursive dispatch for the most common operand shapes.
		var a, b float64
		switch l := x.X.(type) {
		case *Const:
			a = l.Val
		case *VarRef:
			a = ex.getScalar(l.V)
		default:
			var err error
			a, err = ex.eval(x.X)
			if err != nil {
				return 0, err
			}
		}
		switch r := x.Y.(type) {
		case *Const:
			b = r.Val
		case *VarRef:
			b = ex.getScalar(r.V)
		default:
			var err error
			b, err = ex.eval(x.Y)
			if err != nil {
				return 0, err
			}
		}
		switch x.Op {
		case OpAdd:
			return a + b, nil
		case OpSub:
			return a - b, nil
		case OpMul:
			return a * b, nil
		case OpDiv:
			return a / b, nil
		}
		return FoldBin(x.Op, a, b), nil
	case *Un:
		a, err := ex.eval(x.X)
		if err != nil {
			return 0, err
		}
		if x.Op == OpNeg {
			return -a, nil
		}
		if a == 0 {
			return 1, nil
		}
		return 0, nil
	case *Intrinsic:
		b := scil.LookupBuiltin(x.Name)
		if b == nil {
			return 0, fmt.Errorf("ir: unknown intrinsic %q", x.Name)
		}
		// Scalar fast paths: same function the boxed Eval applies, minus
		// the per-call Value allocations.
		if len(x.Args) == 1 && b.Scalar1 != nil {
			a, err := ex.eval(x.Args[0])
			if err != nil {
				return 0, err
			}
			return b.Scalar1(a), nil
		}
		if len(x.Args) == 2 && b.Scalar2 != nil {
			a, err := ex.eval(x.Args[0])
			if err != nil {
				return 0, err
			}
			c, err := ex.eval(x.Args[1])
			if err != nil {
				return 0, err
			}
			return b.Scalar2(a, c), nil
		}
		args := make([]scil.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ex.eval(a)
			if err != nil {
				return 0, err
			}
			args[i] = scil.Scalar(v)
		}
		v, err := b.Eval(args)
		if err != nil {
			return 0, err
		}
		return v.ScalarVal(), nil
	}
	return 0, fmt.Errorf("ir: unknown expression %T", e)
}
