package ir_test

import (
	"testing"

	"argo/internal/ir"
	"argo/internal/scil"
)

const cloneSrc = `
function [outa, outb] = app(img)
  h = size(img, 1)
  w = size(img, 2)
  tmp = zeros(h, w)
  outa = zeros(h, w)
  outb = zeros(h, w)
  for i = 1:h
    for j = 1:w
      tmp(i, j) = img(i, j) * 0.5 + 1
    end
  end
  for i = 1:h
    for j = 1:w
      outa(i, j) = tmp(i, j) * 2
      outb(i, j) = tmp(i, j) - 3
    end
  end
endfunction`

func lowerClone(t *testing.T) *ir.Program {
	t.Helper()
	p, err := scil.Parse(cloneSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(p, "app", []ir.ArgSpec{ir.MatrixArg(8, 8)})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestCloneIsStructurallyIdentical(t *testing.T) {
	prog := lowerClone(t)
	clone := prog.Clone()
	if got, want := clone.Dump(), prog.Dump(); got != want {
		t.Fatalf("clone dump differs:\n--- clone ---\n%s\n--- original ---\n%s", got, want)
	}
	if len(clone.Vars) != len(prog.Vars) {
		t.Fatalf("clone has %d vars, original %d", len(clone.Vars), len(prog.Vars))
	}
	for i := range prog.Vars {
		if clone.Vars[i] == prog.Vars[i] {
			t.Fatalf("var %q shared between clone and original", prog.Vars[i].Name)
		}
		if clone.Vars[i].Name != prog.Vars[i].Name || clone.Vars[i].Storage != prog.Vars[i].Storage {
			t.Fatalf("var %d mismatch: %v vs %v", i, clone.Vars[i], prog.Vars[i])
		}
	}
}

// TestCloneSharesNoVariableIdentities walks the cloned body and checks no
// referenced variable is an original-program variable — every reference
// must have been remapped onto the clone's own table.
func TestCloneSharesNoVariableIdentities(t *testing.T) {
	prog := lowerClone(t)
	orig := map[*ir.Var]bool{}
	for _, v := range prog.Vars {
		orig[v] = true
	}
	clone := prog.Clone()
	check := func(v *ir.Var) {
		if orig[v] {
			t.Fatalf("clone body references original var %q", v.Name)
		}
	}
	ir.WalkStmts(clone.Entry.Body, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.AssignScalar:
			check(st.Dst)
		case *ir.Store:
			check(st.Dst)
		case *ir.For:
			check(st.IVar)
		}
		for _, e := range ir.StmtExprs(s) {
			ir.WalkExprs(e, func(sub ir.Expr) {
				switch x := sub.(type) {
				case *ir.VarRef:
					check(x.V)
				case *ir.Index:
					check(x.V)
				}
			})
		}
		return true
	})
	for _, v := range clone.Entry.Params {
		check(v)
	}
	for _, v := range clone.Entry.Results {
		check(v)
	}
}

// TestCloneIsolatesStorageMutation pins the property the iterative
// optimizer depends on: demoting storage on the clone (what buffer
// placement does during the feedback loop) leaves the original pristine.
func TestCloneIsolatesStorageMutation(t *testing.T) {
	prog := lowerClone(t)
	clone := prog.Clone()
	for _, v := range clone.MatrixVars() {
		v.Storage = ir.StorageSPM
	}
	for _, v := range prog.MatrixVars() {
		if v.Storage == ir.StorageSPM {
			t.Fatalf("mutating clone storage leaked into original var %q", v.Name)
		}
	}
}

// TestCloneFreshVarDoesNotCollide: the temp counter must carry over so
// transformations on the clone generate names disjoint from existing ones.
func TestCloneFreshVarDoesNotCollide(t *testing.T) {
	prog := lowerClone(t)
	clone := prog.Clone()
	v := clone.FreshVar("x", 0, 0, true)
	if clone.VarByName(v.Name) != v {
		t.Fatalf("fresh var %q not registered", v.Name)
	}
	n := 0
	for _, w := range clone.Vars {
		if w.Name == v.Name {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("fresh var name %q collides (%d occurrences)", v.Name, n)
	}
}
