package ir

import "testing"

// mkTraceProg builds a small program with one scalar param (varying) and
// helper vars for the staticity tests.
func mkTraceProg() (*Program, *Var, *Var, *Var, *Var) {
	p := &Program{}
	in := p.NewVar(&Var{Name: "in", Scalar: true, Param: true})
	a := p.NewVar(&Var{Name: "a", Scalar: true})
	b := p.NewVar(&Var{Name: "b", Scalar: true})
	i := p.NewVar(&Var{Name: "i", Scalar: true})
	m := p.NewVar(&Var{Name: "m", Rows: 4, Cols: 4, Storage: StorageShared})
	p.Entry = &Func{Name: "f", Params: []*Var{in, m}, Body: nil}
	return p, in, a, b, i
}

func TestTraceEnvStaticLoop(t *testing.T) {
	p, _, a, _, i := mkTraceProg()
	// a = 3; for i = 1:a { m[i,1] = i }  -- fully static control.
	region := []Stmt{
		&AssignScalar{Dst: a, Src: &Const{Val: 3}},
		&For{IVar: i, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &VarRef{V: a}, Trip: 3,
			Body: []Stmt{
				&Store{Dst: p.VarByName("m"), Idx: []Expr{&VarRef{V: i}, &Const{Val: 1}},
					Src: &VarRef{V: i}},
			}},
	}
	env := NewTraceEnv(p)
	if !env.AdvanceRegion(region) {
		t.Fatal("static-bound loop region should be trace-invariant")
	}
}

func TestTraceEnvDataDependentBound(t *testing.T) {
	p, in, a, _, i := mkTraceProg()
	// a = in; for i = 1:a { ... } -- bound depends on the input.
	region := []Stmt{
		&AssignScalar{Dst: a, Src: &VarRef{V: in}},
		&For{IVar: i, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &VarRef{V: a}, Trip: 8, Body: nil},
	}
	env := NewTraceEnv(p)
	if env.AdvanceRegion(region) {
		t.Fatal("input-bounded loop must not be trace-invariant")
	}
}

func TestTraceEnvMatrixLoadVaries(t *testing.T) {
	p, _, a, _, i := mkTraceProg()
	m := p.VarByName("m")
	// a = m[1,1]; for i = 1:a -- bound loaded from memory.
	region := []Stmt{
		&AssignScalar{Dst: a, Src: &Index{V: m, Idx: []Expr{&Const{Val: 1}, &Const{Val: 1}}}},
		&For{IVar: i, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &VarRef{V: a}, Trip: 8, Body: nil},
	}
	env := NewTraceEnv(p)
	if env.AdvanceRegion(region) {
		t.Fatal("memory-bounded loop must not be trace-invariant")
	}
}

func TestTraceEnvIfPoisons(t *testing.T) {
	p, in, a, b, i := mkTraceProg()
	// Region 1: if in != 0 { a = 1 }  -- variant, and poisons a.
	r1 := []Stmt{
		&If{Cond: &VarRef{V: in}, Then: []Stmt{
			&AssignScalar{Dst: a, Src: &Const{Val: 1}},
		}},
	}
	// Region 2: b = a; for i = 1:b -- depends on the poisoned a.
	r2 := []Stmt{
		&AssignScalar{Dst: b, Src: &VarRef{V: a}},
		&For{IVar: i, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &VarRef{V: b}, Trip: 8, Body: nil},
	}
	env := NewTraceEnv(p)
	if env.AdvanceRegion(r1) {
		t.Fatal("if region must not be trace-invariant")
	}
	if env.AdvanceRegion(r2) {
		t.Fatal("region reading an if-assigned scalar in a bound must not be invariant")
	}
	// A fresh environment with a static reassignment recovers staticity.
	env2 := NewTraceEnv(p)
	r3 := []Stmt{&AssignScalar{Dst: a, Src: &Const{Val: 2}}}
	if !env2.AdvanceRegion(r3) {
		t.Fatal("constant assignment region should be invariant")
	}
	if !env2.AdvanceRegion(r2[:1]) {
		t.Fatal("b = a with static a should stay invariant")
	}
}

func TestTraceEnvLoopFeedback(t *testing.T) {
	p, in, a, b, i := mkTraceProg()
	// for i = 1:3 { b = a; a = in }: after iteration 1, b is varying —
	// the fixpoint must catch the cross-iteration feedback.
	region := []Stmt{
		&For{IVar: i, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: 3}, Trip: 3,
			Body: []Stmt{
				&AssignScalar{Dst: b, Src: &VarRef{V: a}},
				&AssignScalar{Dst: a, Src: &VarRef{V: in}},
			}},
		&For{IVar: i, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &VarRef{V: b}, Trip: 8, Body: nil},
	}
	env := NewTraceEnv(p)
	if env.AdvanceRegion(region) {
		t.Fatal("loop-carried input dependence must defeat invariance")
	}
}
