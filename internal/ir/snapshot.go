package ir

// Remap-on-restore snapshot codec.
//
// Structural artifacts (task graphs, parallel programs) hold live *Var
// and Stmt pointers into one specific Program instance, which is what
// kept them out of the content-addressed pass cache: a pointer frozen
// against program A cannot be restored into program B. The codec fixes
// that by encoding pointers positionally — a *Var as its registration
// index in Program.Vars, a Stmt as its position in the deterministic
// WalkStmts traversal of the entry body — and rebuilding them against
// whatever program instance the restore side holds.
//
// Soundness: two programs with equal content fingerprints
// (wcet.FingerprintProgram covers the full Vars table in registration
// order and the entry body in traversal order) are structurally
// identical, so position i names "the same" variable or statement in
// both. Program.Clone preserves both orders, which is the same
// invariant the transform-pass snapshots have always relied on.
//
// SnapshotIndex is the freeze side (pointer -> index), SnapshotTable
// the thaw side (index -> pointer). Freeze-side lookups report ok=false
// for unregistered variables or statements outside the entry body, so
// callers can decline to cache rather than store an unrestorable form.

// SnapshotIndex maps one program's variables and statements to their
// positional encodings.
type SnapshotIndex struct {
	vars  map[*Var]int32
	stmts map[Stmt]int32
}

// NewSnapshotIndex builds the freeze-side index of p: variables by
// registration order, statements by WalkStmts traversal order over the
// entry body.
func NewSnapshotIndex(p *Program) *SnapshotIndex {
	si := &SnapshotIndex{
		vars:  make(map[*Var]int32, len(p.Vars)),
		stmts: make(map[Stmt]int32, 64),
	}
	for i, v := range p.Vars {
		si.vars[v] = int32(i)
	}
	n := int32(0)
	WalkStmts(p.Entry.Body, func(s Stmt) bool {
		si.stmts[s] = n
		n++
		return true
	})
	return si
}

// Var returns v's registration index; ok is false for variables not in
// the program's Vars table.
func (si *SnapshotIndex) Var(v *Var) (int32, bool) {
	i, ok := si.vars[v]
	return i, ok
}

// Vars encodes a variable list; ok is false if any element is
// unregistered.
func (si *SnapshotIndex) Vars(vs []*Var) ([]int32, bool) {
	if vs == nil {
		return nil, true
	}
	out := make([]int32, len(vs))
	for i, v := range vs {
		j, ok := si.vars[v]
		if !ok {
			return nil, false
		}
		out[i] = j
	}
	return out, true
}

// Stmt returns s's traversal index; ok is false for statements outside
// the indexed entry body.
func (si *SnapshotIndex) Stmt(s Stmt) (int32, bool) {
	i, ok := si.stmts[s]
	return i, ok
}

// Stmts encodes a statement list; ok is false if any element is outside
// the indexed entry body.
func (si *SnapshotIndex) Stmts(ss []Stmt) ([]int32, bool) {
	if ss == nil {
		return nil, true
	}
	out := make([]int32, len(ss))
	for i, s := range ss {
		j, ok := si.stmts[s]
		if !ok {
			return nil, false
		}
		out[i] = j
	}
	return out, true
}

// SnapshotTable resolves positional encodings against one program's
// variables and statements (the thaw side of the codec).
type SnapshotTable struct {
	vars  []*Var
	stmts []Stmt
}

// NewSnapshotTable builds the thaw-side table of p, in the same orders
// NewSnapshotIndex encodes against.
func NewSnapshotTable(p *Program) *SnapshotTable {
	t := &SnapshotTable{vars: p.Vars}
	t.stmts = make([]Stmt, 0, 64)
	WalkStmts(p.Entry.Body, func(s Stmt) bool {
		t.stmts = append(t.stmts, s)
		return true
	})
	return t
}

// Var resolves a registration index.
func (t *SnapshotTable) Var(i int32) *Var { return t.vars[i] }

// Vars resolves a variable index list (nil for nil).
func (t *SnapshotTable) Vars(idx []int32) []*Var {
	if idx == nil {
		return nil
	}
	out := make([]*Var, len(idx))
	for i, j := range idx {
		out[i] = t.vars[j]
	}
	return out
}

// Stmt resolves a traversal index.
func (t *SnapshotTable) Stmt(i int32) Stmt { return t.stmts[i] }

// Stmts resolves a statement index list (nil for nil).
func (t *SnapshotTable) Stmts(idx []int32) []Stmt {
	if idx == nil {
		return nil
	}
	out := make([]Stmt, len(idx))
	for i, j := range idx {
		out[i] = t.stmts[j]
	}
	return out
}
