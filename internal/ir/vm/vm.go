package vm

import (
	"errors"
	"fmt"
	"math"

	"argo/internal/ir"
	"argo/internal/scil"
)

// errFuel matches the tree walker's budget-exhaustion message.
var errFuel = errors.New("ir: execution budget exhausted")

// b2f is FoldBin's truth encoding (1/0).
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// toIdxSlow is the non-integral half of the tree walker's tolerant
// subscript conversion (Exec.offset's toInt): round within 1e-9 or
// fail. The loads inline the exactly-integral fast path and only call
// here when it misses.
func toIdxSlow(f float64) (int, error) {
	k := int(math.Round(f))
	if math.Abs(f-float64(k)) > 1e-9 {
		return 0, fmt.Errorf("ir: index %g is not an integer", f)
	}
	return k, nil
}

// Machine executes compiled Programs. It mirrors ir.Exec's lifecycle —
// Init binds arguments and resets state, ExecEntry/ExecRegion run code
// against the current state, Results extracts the entry results — and is
// pooled the same way (Reset rebinds to a new Program). A Machine is not
// safe for concurrent use; the compiled Program it runs is.
type Machine struct {
	prog  *Program
	meter ir.Meter

	regs  []float64
	mats  [][]float64 // live buffers (nil = untouched, reads as zero)
	store [][]float64 // pooled backing buffers, reused across Init calls
	iters []int
	fuel  int

	vals []scil.Value // scratch for boxed intrinsic calls

	// profile, when non-nil, records dispatched opcode pairs (see
	// PairProfile); superHits batches superinstruction dispatches and is
	// flushed to argo_superinst_dispatched at exec exit.
	profile   *PairProfile
	superHits int64
}

// SetPairProfile attaches (or detaches, with nil) a dispatch-pair
// recorder. Recording survives Reset only if re-attached.
func (m *Machine) SetPairProfile(p *PairProfile) { m.profile = p }

// NewMachine returns a machine for prog. meter may be nil.
func NewMachine(prog *Program, meter ir.Meter) *Machine {
	return &Machine{prog: prog, meter: meter}
}

// Reset rebinds the machine to a (possibly different) compiled program
// and clears the meter, so pooled instances can be reused across runs;
// call Init afterwards to bind arguments.
func (m *Machine) Reset(prog *Program) {
	if m.prog != prog {
		m.mats = nil
		m.store = nil
	}
	m.prog = prog
	m.meter = nil
}

// SetMeter swaps the meter (used to meter each task region separately).
func (m *Machine) SetMeter(mt ir.Meter) { m.meter = mt }

// SetFuel overrides the remaining execution budget (ir.ExecFuel after
// Init). Fuzzing uses a small budget to bound adversarial programs.
func (m *Machine) SetFuel(n int) { m.fuel = n }

// Init binds the entry arguments and resets execution state, with
// argument validation identical to ir.Exec.Init.
func (m *Machine) Init(args [][]float64) error {
	f := m.prog.ir.Entry
	if len(args) != len(f.Params) {
		return fmt.Errorf("ir: entry expects %d arguments, got %d", len(f.Params), len(args))
	}
	if cap(m.regs) < m.prog.nRegs {
		m.regs = make([]float64, m.prog.nRegs)
	} else {
		m.regs = m.regs[:m.prog.nRegs]
		clear(m.regs)
	}
	copy(m.regs[m.prog.constBase:], m.prog.constVals)
	nm := len(m.prog.mats)
	if cap(m.mats) < nm {
		m.mats = make([][]float64, nm)
		m.store = make([][]float64, nm)
	} else {
		m.mats = m.mats[:nm]
		m.store = m.store[:nm]
		clear(m.mats)
	}
	if cap(m.iters) < m.prog.maxLoops {
		m.iters = make([]int, m.prog.maxLoops)
	} else {
		m.iters = m.iters[:m.prog.maxLoops]
	}
	m.fuel = ir.ExecFuel
	for i, b := range m.prog.params {
		p := b.v
		if b.scalar {
			if len(args[i]) != 1 {
				return fmt.Errorf("ir: argument %d (%s) must be scalar", i, p.Name)
			}
			m.regs[b.idx] = args[i][0]
		} else {
			if len(args[i]) != p.Elems() {
				return fmt.Errorf("ir: argument %d (%s) must have %d elements, got %d", i, p.Name, p.Elems(), len(args[i]))
			}
			buf := m.freshBuf(b.idx)
			copy(buf, args[i])
		}
	}
	return nil
}

// freshBuf marks matrix id live, reusing its pooled backing buffer. The
// caller either fully overwrites it (Init) or needs zeros (matBuf).
func (m *Machine) freshBuf(id int32) []float64 {
	buf := m.store[id]
	if buf == nil {
		buf = make([]float64, m.prog.mats[id].elems)
		m.store[id] = buf
	}
	m.mats[id] = buf
	return buf
}

// matBuf returns matrix id's live buffer, lazily materializing it as
// zeros (untouched matrices read as zero, as in ir.Exec).
func (m *Machine) matBuf(id int32) []float64 {
	if buf := m.mats[id]; buf != nil {
		return buf
	}
	buf := m.freshBuf(id)
	clear(buf)
	return buf
}

// ExecEntry runs the compiled entry body (Compile).
func (m *Machine) ExecEntry() error {
	if m.prog.entry == nil {
		return errors.New("vm: program has no compiled entry")
	}
	return m.exec(m.prog.entry)
}

// ExecRegion runs compiled region i (CompileRegions).
func (m *Machine) ExecRegion(i int) error {
	return m.exec(m.prog.regions[i])
}

// Results extracts the entry function's results from the current state,
// in declaration order: scalars as 1-element slices, matrices row-major
// copies (zeros if never touched).
func (m *Machine) Results() [][]float64 {
	out := make([][]float64, len(m.prog.results))
	for i, b := range m.prog.results {
		if b.scalar {
			out[i] = []float64{m.regs[b.idx]}
			continue
		}
		buf := m.mats[b.idx]
		cp := make([]float64, m.prog.mats[b.idx].elems)
		copy(cp, buf) // nil buf: stays zero
		out[i] = cp
	}
	return out
}

// ScalarValue exposes the current value of a scalar variable register.
func (m *Machine) ScalarValue(v *ir.Var) float64 {
	for i := range m.prog.params {
		if m.prog.params[i].v == v && m.prog.params[i].scalar {
			return m.regs[m.prog.params[i].idx]
		}
	}
	for i := range m.prog.results {
		if m.prog.results[i].v == v && m.prog.results[i].scalar {
			return m.regs[m.prog.results[i].idx]
		}
	}
	return 0
}

// Run compiles and executes prog's entry in one shot — the VM
// counterpart of ir.NewExec(prog, meter).Run(args).
func Run(prog *ir.Program, meter ir.Meter, args [][]float64) ([][]float64, error) {
	cp, err := Compile(prog)
	if err != nil {
		return nil, err
	}
	m := NewMachine(cp, meter)
	if err := m.Init(args); err != nil {
		return nil, err
	}
	if err := m.ExecEntry(); err != nil {
		return nil, err
	}
	return m.Results(), nil
}

// exec is the dispatch loop. Observable behaviour (results, meter event
// sequence, fuel, error identity) is bit-identical to ir.Exec walking
// the same statements.
func (m *Machine) exec(code *Code) error {
	// Without a meter every opOps is a no-op: run the stripped stream.
	if m.meter == nil && code.unmetered != nil {
		code = code.unmetered
	}
	// Fuel lives in a local through the dispatch loop (it is decremented
	// on every statement) and is written back on every exit so it carries
	// across regions.
	fuel, err := m.run(code, m.fuel)
	m.fuel = fuel
	if m.superHits != 0 {
		superDispatched.Add(m.superHits)
		m.superHits = 0
	}
	return err
}

func (m *Machine) run(code *Code, fuel int) (int, error) {
	ins := code.ins
	consts := code.consts
	regs := m.regs
	fns := m.prog.fns
	mats := m.mats
	iters := m.iters
	meter := m.meter
	prof := m.profile
	prev := opHalt
	pc := 0
	for {
		in := ins[pc]
		pc++
		o := in.op
		// Burn twins (fuseBurns): charge the statement's fuel, then fall
		// through to the base opcode's one case body.
		if o >= burnDelta {
			fuel--
			if fuel <= 0 {
				return fuel, errFuel
			}
			o -= burnDelta
		}
		if prof != nil {
			prof.counts[prev][o]++
			prev = o
		}
		switch o {
		case opHalt:
			return fuel, nil
		case opConst:
			regs[in.a] = consts[in.b]
		case opMov:
			regs[in.a] = regs[in.b]
		case opAdd:
			regs[in.a] = regs[in.b] + regs[in.c]
		case opSub:
			regs[in.a] = regs[in.b] - regs[in.c]
		case opMul:
			regs[in.a] = regs[in.b] * regs[in.c]
		case opDiv:
			regs[in.a] = regs[in.b] / regs[in.c]
		case opPow:
			regs[in.a] = math.Pow(regs[in.b], regs[in.c])
		case opEq:
			regs[in.a] = b2f(regs[in.b] == regs[in.c])
		case opNe:
			regs[in.a] = b2f(regs[in.b] != regs[in.c])
		case opLt:
			regs[in.a] = b2f(regs[in.b] < regs[in.c])
		case opLe:
			regs[in.a] = b2f(regs[in.b] <= regs[in.c])
		case opGt:
			regs[in.a] = b2f(regs[in.b] > regs[in.c])
		case opGe:
			regs[in.a] = b2f(regs[in.b] >= regs[in.c])
		case opAnd:
			regs[in.a] = b2f(regs[in.b] != 0 && regs[in.c] != 0)
		case opOr:
			regs[in.a] = b2f(regs[in.b] != 0 || regs[in.c] != 0)
		case opFold:
			regs[in.a] = ir.FoldBin(ir.BinOp(in.d), regs[in.b], regs[in.c])
		case opNeg:
			regs[in.a] = -regs[in.b]
		case opNot:
			if regs[in.b] == 0 {
				regs[in.a] = 1
			} else {
				regs[in.a] = 0
			}
		case opIntr1:
			regs[in.a] = fns[in.b].Scalar1(regs[in.c])
		case opIntr2:
			regs[in.a] = fns[in.b].Scalar2(regs[in.c], regs[in.d])
		case opIntrN:
			vals := m.vals[:0]
			for i := int32(0); i < in.d; i++ {
				vals = append(vals, scil.Scalar(regs[in.c+i]))
			}
			m.vals = vals
			v, err := fns[in.b].Eval(vals)
			if err != nil {
				return fuel, err
			}
			regs[in.a] = v.ScalarVal()
		case opToInt:
			f := regs[in.b]
			if k := int(f); float64(k) == f {
				regs[in.a] = float64(k)
			} else {
				k := int(math.Round(f))
				if math.Abs(f-float64(k)) > 1e-9 {
					return fuel, fmt.Errorf("ir: index %g is not an integer", f)
				}
				regs[in.a] = float64(k)
			}
		case opLoad1:
			mt := &m.prog.mats[in.b]
			f := regs[in.c]
			k := int(f)
			if float64(k) != f {
				var err error
				if k, err = toIdxSlow(f); err != nil {
					return fuel, err
				}
			}
			if k < 1 || k > mt.elems {
				return fuel, fmt.Errorf("ir: linear index %d out of range for %s", k, mt.v)
			}
			if meter != nil {
				meter.Read(mt.v)
			}
			k--
			buf := mats[in.b]
			if buf == nil {
				buf = m.matBuf(in.b)
			}
			regs[in.a] = buf[(k%mt.rows)*mt.cols+k/mt.rows]
		case opLoad2:
			mt := &m.prog.mats[in.b]
			fi, fj := regs[in.c], regs[in.d]
			i, j := int(fi), int(fj)
			if float64(i) != fi {
				var err error
				if i, err = toIdxSlow(fi); err != nil {
					return fuel, err
				}
			}
			if float64(j) != fj {
				var err error
				if j, err = toIdxSlow(fj); err != nil {
					return fuel, err
				}
			}
			if i < 1 || i > mt.rows || j < 1 || j > mt.cols {
				return fuel, fmt.Errorf("ir: index (%d, %d) out of range for %s", i, j, mt.v)
			}
			if meter != nil {
				meter.Read(mt.v)
			}
			buf := mats[in.b]
			if buf == nil {
				buf = m.matBuf(in.b)
			}
			regs[in.a] = buf[(i-1)*mt.cols+(j-1)]
		case opIdx1:
			mt := &m.prog.mats[in.b]
			f := regs[in.c]
			k := int(f)
			if float64(k) != f {
				var err error
				if k, err = toIdxSlow(f); err != nil {
					return fuel, err
				}
			}
			if k < 1 || k > mt.elems {
				return fuel, fmt.Errorf("ir: linear index %d out of range for %s", k, mt.v)
			}
			k--
			regs[in.a] = float64((k%mt.rows)*mt.cols + k/mt.rows)
		case opIdx2:
			mt := &m.prog.mats[in.b]
			fi, fj := regs[in.c], regs[in.d]
			i, j := int(fi), int(fj)
			if float64(i) != fi {
				var err error
				if i, err = toIdxSlow(fi); err != nil {
					return fuel, err
				}
			}
			if float64(j) != fj {
				var err error
				if j, err = toIdxSlow(fj); err != nil {
					return fuel, err
				}
			}
			if i < 1 || i > mt.rows || j < 1 || j > mt.cols {
				return fuel, fmt.Errorf("ir: index (%d, %d) out of range for %s", i, j, mt.v)
			}
			regs[in.a] = float64((i-1)*mt.cols + (j - 1))
		case opStore:
			buf := mats[in.a]
			if buf == nil {
				buf = m.matBuf(in.a)
			}
			buf[int(regs[in.b])] = regs[in.c]
			if meter != nil {
				meter.Write(m.prog.mats[in.a].v)
			}
		case opBurn:
			fuel--
			if fuel <= 0 {
				return fuel, errFuel
			}
		case opOps:
			if meter != nil {
				meter.Ops(int(in.a))
			}
		case opJmp:
			pc = int(in.a)
		case opJz:
			if regs[in.b] == 0 {
				pc = int(in.a)
			}
		case opLoopPrep:
			iters[in.a] = 0
		case opForPrep:
			iters[in.a] = 0
			if regs[in.b] == 0 {
				return fuel, errors.New("ir: for loop with zero step")
			}
		case opForCond:
			v, hi, step := regs[in.b], regs[in.b+1], regs[in.b+2]
			if !((step > 0 && v <= hi+1e-12) || (step < 0 && v >= hi-1e-12)) {
				pc = int(in.c)
				continue
			}
			fuel--
			if fuel <= 0 {
				return fuel, errFuel
			}
			li := &code.loops[in.a]
			iters[in.a]++
			if iters[in.a] > li.limit {
				return fuel, fmt.Errorf("ir: for loop exceeded its static trip count %d", li.limit)
			}
			regs[li.ivar] = v
			if meter != nil {
				meter.Ops(2) // increment + branch
			}
		case opForNext:
			regs[in.b] += regs[in.b+2]
			v, hi, step := regs[in.b], regs[in.b+1], regs[in.b+2]
			if !((step > 0 && v <= hi+1e-12) || (step < 0 && v >= hi-1e-12)) {
				pc = int(in.c)
				continue
			}
			fuel--
			if fuel <= 0 {
				return fuel, errFuel
			}
			li := &code.loops[in.a]
			iters[in.a]++
			if iters[in.a] > li.limit {
				return fuel, fmt.Errorf("ir: for loop exceeded its static trip count %d", li.limit)
			}
			regs[li.ivar] = v
			if meter != nil {
				meter.Ops(2) // increment + branch
			}
			pc = int(in.d)
		case opWhileTest:
			if regs[in.b] == 0 {
				pc = int(in.c)
				continue
			}
			li := &code.loops[in.a]
			if iters[in.a] >= li.limit {
				return fuel, fmt.Errorf("ir: while loop exceeded its @bound %d", li.limit)
			}
			iters[in.a]++
		case opMulAdd:
			// Explicit float64 conversion: the Go spec makes it round the
			// product, which forbids FMA contraction — two roundings,
			// exactly as the unfused opMul + opAdd pair (bit-identity with
			// the tree walker). Same in the three cases below.
			regs[in.a] = float64(regs[in.b]*regs[in.c]) + regs[in.d]
			m.superHits++
		case opAddMul:
			regs[in.a] = regs[in.b] + float64(regs[in.c]*regs[in.d])
			m.superHits++
		case opMulSub:
			regs[in.a] = float64(regs[in.b]*regs[in.c]) - regs[in.d]
			m.superHits++
		case opSubMul:
			regs[in.a] = regs[in.b] - float64(regs[in.c]*regs[in.d])
			m.superHits++
		case opErr:
			return fuel, code.errs[in.a]
		default:
			return fuel, fmt.Errorf("vm: bad opcode %d", in.op)
		}
	}
}
