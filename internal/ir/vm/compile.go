// Package vm is a register-based bytecode virtual machine for the ARGO
// IR: Compile lowers an ir.Program once into flat instruction streams
// (register-addressed scalars, direct matrix offsets, fused
// scalar-intrinsic opcodes, structured loops flattened to branches) that
// a Machine then executes per run without any tree dispatch.
//
// The VM is a drop-in replacement for the tree-walking ir.Exec on the
// simulator hot path (internal/sim phase 0 and the experiment sweeps).
// Its contract is bit-identical observable behaviour: for every program
// and input, the VM produces the same results, the same error (message
// included), the same fuel consumption, and — crucially for the
// segment-trace and WCET layers — the same ir.Meter event sequence
// (every Ops/Read/Write call, in order, with the same amounts) as
// ir.Exec. The tree walker stays in place as the differential oracle
// (the SolveMIPReference pattern); FuzzVMExec and the internal/sim
// golden diffs enforce the equivalence continuously.
package vm

import (
	"fmt"
	"math"

	"argo/internal/ir"
	"argo/internal/scil"
)

// op enumerates the bytecode instructions.
type op uint8

const (
	opHalt op = iota
	// opConst: regs[a] = consts[b]
	opConst
	// opMov: regs[a] = regs[b]
	opMov
	// Arithmetic (the four direct operators of the tree walker's inline
	// path): regs[a] = regs[b] <op> regs[c]
	opAdd
	opSub
	opMul
	opDiv
	// Comparison/logical/power operators, inlined with FoldBin's exact
	// semantics (comparisons and logic yield 1/0):
	// regs[a] = regs[b] <op> regs[c]
	opPow
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opAnd
	opOr
	// opFold: regs[a] = ir.FoldBin(BinOp(d), regs[b], regs[c]) — the
	// fallback for operators without a dedicated opcode; keeps FoldBin's
	// panic on an unknown BinOp, like the tree walker.
	opFold
	// opNeg / opNot: regs[a] = -regs[b] / regs[a] = (regs[b]==0 ? 1 : 0)
	opNeg
	opNot
	// opIntr1 / opIntr2: fused scalar-intrinsic fast paths mirroring
	// scil.Builtin.Scalar1/2: regs[a] = fns[b].Scalar1(regs[c]) (resp.
	// Scalar2(regs[c], regs[d])).
	opIntr1
	opIntr2
	// opIntrN: boxed builtin call: regs[a] = fns[b].Eval(regs[c..c+d)).
	opIntrN
	// opToInt: regs[a] = float64 of the validated integer index value of
	// regs[b] (tolerant rounding, "not an integer" error) — the toInt
	// step of the tree walker's offset resolution. Only emitted for
	// compound subscript expressions, to keep their evaluation and
	// conversion interleaved per subscript; simple subscripts convert
	// inside the load/offset op itself.
	opToInt
	// opLoad1 / opLoad2: matrix element load: tolerant integer
	// conversion of each subscript register (in subscript order), range
	// check, meter.Read: regs[a] = mats[b][offset(regs[c])] (linear,
	// column-major) resp. mats[b][offset(regs[c], regs[d])].
	opLoad1
	opLoad2
	// opIdx1 / opIdx2: validated row-major offset computation (no load),
	// converting subscripts like the loads: regs[a] = offset into mat b
	// from regs[c] (and regs[d]). Used by stores, where the tree walker
	// validates the target offset before evaluating the source.
	opIdx1
	opIdx2
	// opStore: mats[a][int(regs[b])] = regs[c]; meter.Write.
	opStore
	// opBurn: consume one unit of execution fuel (statement entry and
	// while-check charging, exactly as Exec.burn).
	opBurn
	// opOps: meter.Ops(a).
	opOps
	// opJmp: pc = a. opJz: if regs[b] == 0 { pc = a }.
	opJmp
	opJz
	// opLoopPrep: iters[a] = 0 (while-loop entry).
	opLoopPrep
	// opForPrep: iters[a] = 0; error if regs[b] (the step) is zero.
	opForPrep
	// opForCond: for-loop head for loops[a] with control registers
	// (cur, hi, step) at b, b+1, b+2: test the continuation condition
	// (exit to c when false), burn fuel, count the iteration against the
	// static trip bound, publish cur into the induction variable, and
	// charge the per-iteration increment+branch units.
	opForCond
	// opWhileTest: while-loop check for loops[a] on condition regs[b]:
	// exit to c on zero, else count the check against the @bound.
	opWhileTest
	// opErr: return errs[a] (statically known runtime errors: unknown
	// intrinsic, bad subscript arity, unknown statement/expression).
	opErr
	// opForNext: fused for-loop back edge at the bottom of every for
	// body: step the control register triple at b, then run opForCond's
	// test for loops[a] — jump to the body start d when continuing, to
	// the exit c when done. One dispatch per iteration instead of a
	// separate step + jump back to the head's opForCond (which still
	// exists to handle the first iteration, un-stepped).
	opForNext
	// Superinstructions (profile-guided, see profile.go): the four
	// multiply-accumulate shapes fused from an opMul feeding an opAdd or
	// opSub, one dispatch instead of two. The dispatch cases round the
	// product through an explicit float64 conversion so no hardware FMA
	// contraction can occur — results stay bit-identical to the unfused
	// pair (and to the tree walker).
	//
	// opMulAdd: regs[a] = float64(regs[b]*regs[c]) + regs[d]
	// opAddMul: regs[a] = regs[b] + float64(regs[c]*regs[d])
	// opMulSub: regs[a] = float64(regs[b]*regs[c]) - regs[d]
	// opSubMul: regs[a] = regs[b] - float64(regs[c]*regs[d])
	opMulAdd
	opAddMul
	opMulSub
	opSubMul
)

// Burn fusion: opBurn followed by a pure single-instruction operation
// is collapsed by fuseBurns into one instruction whose opcode is the
// base op plus burnDelta. The dispatch loop peels the fuel charge off
// any opcode >= burnDelta before the switch, so every case body exists
// once. All base opcodes are < burnDelta.
const burnDelta op = 64

// burnFusible marks the opcodes that may absorb a preceding opBurn:
// pure register-to-register operations whose only side effects (index
// conversion errors, meter.Read) happen after the fuel charge in the
// tree walker too (burn at statement entry, then evaluation).
var burnFusible = [burnDelta]bool{
	opConst: true, opMov: true,
	opAdd: true, opSub: true, opMul: true, opDiv: true,
	opPow: true, opEq: true, opNe: true, opLt: true, opLe: true,
	opGt: true, opGe: true, opAnd: true, opOr: true, opFold: true,
	opNeg: true, opNot: true,
	opIntr1: true, opIntr2: true,
	opToInt: true, opLoad1: true, opLoad2: true, opIdx1: true, opIdx2: true,
	opLoopPrep: true,
	opMulAdd:   true, opAddMul: true, opMulSub: true, opSubMul: true,
}

// instr is one bytecode instruction; operand meaning depends on op.
type instr struct {
	op         op
	a, b, c, d int32
}

// loopInfo is the static side table of one loop in a Code.
type loopInfo struct {
	// ivar is the induction variable's register (for loops; -1 for while).
	ivar int32
	// limit is the static trip count (for) or the @bound (while).
	limit int
	// isFor selects the trip-count vs @bound error message.
	isFor bool
}

// matInfo is the static side table of one matrix variable.
type matInfo struct {
	v     *ir.Var
	rows  int
	cols  int
	elems int
}

// Code is one compiled statement region (a task region or the whole
// entry body): a flat instruction stream plus its constant pool, loop
// table, and preformatted static errors.
type Code struct {
	ins    []instr
	consts []float64
	loops  []loopInfo
	errs   []error
	// unmetered is this stream with every opOps removed and jump
	// targets remapped. opOps is a pure no-op when no meter is attached,
	// so the variant is observationally identical there with fewer
	// dispatches; exec selects it whenever m.meter == nil (the warm
	// trace-cache path in the simulator).
	unmetered *Code
}

// binding resolves one entry parameter or result: a scalar register or
// a matrix id.
type binding struct {
	scalar bool
	idx    int32 // register (scalar) or matrix id
	v      *ir.Var
}

// Program is a compiled ir.Program: shared register/matrix layout plus
// one Code per compiled region (and optionally the whole entry body).
// A Program is immutable after compilation and safe for concurrent use
// by any number of Machines.
type Program struct {
	ir       *ir.Program
	nRegs    int // scalar variable registers + constants + temporaries
	nVarRegs int
	mats     []matInfo
	fns      []*scil.Builtin
	maxLoops int

	// Constant registers: every literal appearing in an expression gets a
	// dedicated register at constBase+i, preloaded by Machine.Init, so
	// operand positions reference constants with no load instruction.
	constBase int32
	constVals []float64

	entry   *Code
	regions []*Code

	params  []binding
	results []binding
}

// IR returns the source program the code was compiled from.
func (p *Program) IR() *ir.Program { return p.ir }

// NumRegions returns how many regions were compiled.
func (p *Program) NumRegions() int { return len(p.regions) }

// compileLimit caps the register file and instruction stream so a
// pathological program falls back to the tree walker instead of
// exhausting memory on compilation.
const compileLimit = 1 << 22

// Compile lowers the program's entry body into bytecode.
func Compile(p *ir.Program) (*Program, error) {
	return compile(p, nil, true)
}

// CompileRegions lowers each statement region into its own Code sharing
// one register/matrix layout, so scalar state flows region to region
// exactly as in one continuous execution (the internal/sim phase-0
// shape: one region per task, executed in graph order). A nil region
// compiles to an empty Code.
func CompileRegions(p *ir.Program, regions [][]ir.Stmt) (*Program, error) {
	return compile(p, regions, false)
}

func compile(p *ir.Program, regions [][]ir.Stmt, entry bool) (prog *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileError); ok {
				prog, err = nil, error(ce)
				return
			}
			panic(r)
		}
	}()
	c := &compiler{
		prog:     &Program{ir: p},
		varReg:   make(map[*ir.Var]int32),
		matID:    make(map[*ir.Var]int32),
		fnID:     make(map[*scil.Builtin]int32),
		constReg: make(map[uint64]int32),
	}
	// Register every variable the program can touch before any
	// temporaries are numbered: the registered table first (dense,
	// deterministic), then any unregistered stragglers reachable from
	// the entry signature or the compiled statements.
	for _, v := range p.Vars {
		c.regVar(v)
	}
	for _, v := range p.Entry.Params {
		c.regVar(v)
	}
	for _, v := range p.Entry.Results {
		c.regVar(v)
	}
	c.scanVars(p.Entry.Body)
	for _, r := range regions {
		c.scanVars(r)
	}
	c.prog.nVarRegs = int(c.nextReg)
	// Constant registers come after the variables and before any
	// temporaries; they must all be assigned before the first compileCode
	// so per-Code temporary watermarks never overlap them.
	c.prog.constBase = c.nextReg
	c.scanConsts(p.Entry.Body)
	for _, r := range regions {
		c.scanConsts(r)
	}

	if entry {
		c.prog.entry = c.compileCode(p.Entry.Body)
	}
	c.prog.regions = make([]*Code, len(regions))
	for i, r := range regions {
		c.prog.regions[i] = c.compileCode(r)
	}
	c.prog.nRegs = int(c.nextReg) + c.maxTemps
	if c.prog.nRegs > compileLimit {
		return nil, fmt.Errorf("vm: register file too large (%d)", c.prog.nRegs)
	}

	c.prog.params = make([]binding, len(p.Entry.Params))
	for i, v := range p.Entry.Params {
		c.prog.params[i] = c.binding(v)
	}
	c.prog.results = make([]binding, len(p.Entry.Results))
	for i, v := range p.Entry.Results {
		c.prog.results[i] = c.binding(v)
	}
	return c.prog, nil
}

// compileError carries a compilation failure through the recursive
// compiler without error plumbing on every emit.
type compileError error

func fail(format string, args ...any) {
	panic(compileError(fmt.Errorf("vm: "+format, args...)))
}

// compiler holds the cross-region compilation state.
type compiler struct {
	prog     *Program
	varReg   map[*ir.Var]int32
	matID    map[*ir.Var]int32
	fnID     map[*scil.Builtin]int32
	constReg map[uint64]int32 // Float64bits -> constant register
	nextReg  int32

	// Per-Code state.
	code     *Code
	tempBase int32 // watermark: temporaries live in [nVarRegs+?, tempBase)
	maxTemps int
	nextLoop int32
	// Loop compile context: jump targets for break/continue, patched at
	// loop end; haltJumps are loop-less break/continue jumps patched to
	// the final opHalt (the tree walker's ExecBlock drops the control
	// signal, ending the region).
	loopStack []*loopCtx
	haltJumps []int
}

type loopCtx struct {
	breaks    []int // instruction indices whose a-operand jumps to loop exit
	continues []int // ... to the continue point (for: step; while: head)
}

// regVar assigns v its register (scalar) or matrix id (first come).
func (c *compiler) regVar(v *ir.Var) {
	if v == nil {
		return
	}
	if v.Scalar {
		if _, ok := c.varReg[v]; !ok {
			c.varReg[v] = c.nextReg
			c.nextReg++
		}
		return
	}
	if _, ok := c.matID[v]; !ok {
		c.matID[v] = int32(len(c.prog.mats))
		c.prog.mats = append(c.prog.mats, matInfo{v: v, rows: v.Rows, cols: v.Cols, elems: v.Elems()})
	}
}

// scanVars registers every variable syntactically reachable from stmts.
func (c *compiler) scanVars(stmts []ir.Stmt) {
	ir.WalkStmts(stmts, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.AssignScalar:
			c.regVar(st.Dst)
		case *ir.Store:
			c.regVar(st.Dst)
		case *ir.For:
			c.regVar(st.IVar)
		}
		for _, e := range ir.StmtExprs(s) {
			ir.WalkExprs(e, func(sub ir.Expr) {
				switch x := sub.(type) {
				case *ir.VarRef:
					c.regVar(x.V)
				case *ir.Index:
					c.regVar(x.V)
				}
			})
		}
		return true
	})
}

// scanConsts assigns every expression literal its constant register.
func (c *compiler) scanConsts(stmts []ir.Stmt) {
	ir.WalkStmts(stmts, func(s ir.Stmt) bool {
		for _, e := range ir.StmtExprs(s) {
			ir.WalkExprs(e, func(sub ir.Expr) {
				if x, ok := sub.(*ir.Const); ok {
					c.regConst(x.Val)
				}
			})
		}
		return true
	})
}

// regConst assigns v a preloaded constant register (bit-exact dedup).
func (c *compiler) regConst(v float64) int32 {
	bits := math.Float64bits(v)
	if r, ok := c.constReg[bits]; ok {
		return r
	}
	r := c.nextReg
	c.nextReg++
	c.constReg[bits] = r
	c.prog.constVals = append(c.prog.constVals, v)
	return r
}

func (c *compiler) binding(v *ir.Var) binding {
	if v.Scalar {
		return binding{scalar: true, idx: c.varReg[v], v: v}
	}
	return binding{scalar: false, idx: c.matID[v], v: v}
}

// --- per-Code compilation ---------------------------------------------------

func (c *compiler) compileCode(stmts []ir.Stmt) *Code {
	c.code = &Code{}
	c.tempBase = c.nextReg
	c.nextLoop = 0
	c.loopStack = c.loopStack[:0]
	c.haltJumps = c.haltJumps[:0]
	c.block(stmts)
	halt := c.here()
	c.emit(instr{op: opHalt})
	for _, j := range c.haltJumps {
		c.code.ins[j].a = halt
	}
	if len(c.code.ins) > compileLimit {
		fail("instruction stream too large (%d)", len(c.code.ins))
	}
	if int(c.nextLoop) > c.prog.maxLoops {
		c.prog.maxLoops = int(c.nextLoop)
	}
	fused := fuseBurns(c.code)
	fused.unmetered = stripOps(fused)
	return fused
}

// jumpTargets marks every pc that some instruction jumps to.
func jumpTargets(ins []instr) []bool {
	tgt := make([]bool, len(ins)+1)
	for i := range ins {
		switch ins[i].op {
		case opJmp, opJz:
			tgt[ins[i].a] = true
		case opForCond, opWhileTest:
			tgt[ins[i].c] = true
		case opForNext:
			tgt[ins[i].c] = true
			tgt[ins[i].d] = true
		}
	}
	return tgt
}

// remapJumps rewrites every absolute jump target through remap.
func remapJumps(ins []instr, remap []int32) {
	for i := range ins {
		switch ins[i].op {
		case opJmp, opJz:
			ins[i].a = remap[ins[i].a]
		case opForCond, opWhileTest:
			ins[i].c = remap[ins[i].c]
		case opForNext:
			ins[i].c = remap[ins[i].c]
			ins[i].d = remap[ins[i].d]
		}
	}
}

// fuseBurns collapses opBurn + fusible-op pairs into the op's burn twin
// (base op + burnDelta), cutting one dispatch per statement. A pair is
// left alone when the successor is a jump target: a jump landing there
// must execute the op without the fuel charge. Equivalence holds
// because the twin charges fuel (and can exhaust it) before the op's
// own work, exactly as the separate opBurn did.
func fuseBurns(code *Code) *Code {
	tgt := jumpTargets(code.ins)
	ins := make([]instr, 0, len(code.ins))
	remap := make([]int32, len(code.ins))
	for i := 0; i < len(code.ins); i++ {
		remap[i] = int32(len(ins))
		in := code.ins[i]
		if in.op == opBurn && i+1 < len(code.ins) && !tgt[i+1] && burnFusible[code.ins[i+1].op] {
			fused := code.ins[i+1]
			fused.op += burnDelta
			ins = append(ins, fused)
			i++
			remap[i] = int32(len(ins) - 1)
			continue
		}
		ins = append(ins, in)
	}
	remapJumps(ins, remap)
	return &Code{ins: ins, consts: code.consts, loops: code.loops, errs: code.errs}
}

// stripOps builds the unmetered variant of code: every opOps is dropped
// and absolute jump targets (opJmp/opJz/opForStep destinations,
// opForCond/opWhileTest exits) are remapped. The tables are shared with
// the metered stream. Returns code itself when it has no opOps.
func stripOps(code *Code) *Code {
	n := 0
	for i := range code.ins {
		if code.ins[i].op == opOps {
			n++
		}
	}
	if n == 0 {
		return code
	}
	remap := make([]int32, len(code.ins))
	ins := make([]instr, 0, len(code.ins)-n)
	for i := range code.ins {
		remap[i] = int32(len(ins))
		if code.ins[i].op != opOps {
			ins = append(ins, code.ins[i])
		}
	}
	remapJumps(ins, remap)
	return &Code{ins: ins, consts: code.consts, loops: code.loops, errs: code.errs}
}

func (c *compiler) emit(in instr) int {
	c.code.ins = append(c.code.ins, in)
	return len(c.code.ins) - 1
}

func (c *compiler) here() int32 { return int32(len(c.code.ins)) }

// temp allocates a temporary register; release by restoring the
// watermark returned by mark().
func (c *compiler) temp() int32 {
	r := c.tempBase
	c.tempBase++
	if n := int(c.tempBase - c.nextReg); n > c.maxTemps {
		c.maxTemps = n
	}
	return r
}

func (c *compiler) mark() int32        { return c.tempBase }
func (c *compiler) release(mark int32) { c.tempBase = mark }

func (c *compiler) constIdx(v float64) int32 {
	// Constant pools are small; bit-exact dedup keeps them smaller.
	for i, x := range c.code.consts {
		if math.Float64bits(x) == math.Float64bits(v) {
			return int32(i)
		}
	}
	c.code.consts = append(c.code.consts, v)
	return int32(len(c.code.consts) - 1)
}

func (c *compiler) errIdx(err error) int32 {
	c.code.errs = append(c.code.errs, err)
	return int32(len(c.code.errs) - 1)
}

func (c *compiler) fn(b *scil.Builtin) int32 {
	if id, ok := c.fnID[b]; ok {
		return id
	}
	id := int32(len(c.prog.fns))
	c.prog.fns = append(c.prog.fns, b)
	c.fnID[b] = id
	return id
}

// ops emits the meter charge n, mirroring Exec.ops (no-op when n <= 0).
func (c *compiler) ops(n int) {
	if n > 0 {
		c.emit(instr{op: opOps, a: int32(n)})
	}
}

func (c *compiler) block(stmts []ir.Stmt) {
	for _, s := range stmts {
		c.stmt(s)
	}
}

func (c *compiler) stmt(s ir.Stmt) {
	switch st := s.(type) {
	case *ir.AssignScalar:
		c.emit(instr{op: opBurn})
		m := c.mark()
		c.expr(st.Src, c.varReg[st.Dst])
		c.release(m)
		c.ops(ir.ExprOpUnits(st.Src) + 1)
	case *ir.Store:
		c.emit(instr{op: opBurn})
		units := 1 + ir.ExprOpUnits(st.Src)
		for _, ix := range st.Idx {
			units += ir.ExprOpUnits(ix)
		}
		mat, ok := c.matID[st.Dst]
		if !ok {
			fail("store to unregistered matrix %s", st.Dst)
		}
		m := c.mark()
		off := c.storeOffset(mat, st.Dst, st.Idx)
		src := c.temp()
		c.expr(st.Src, src)
		c.ops(units)
		c.emit(instr{op: opStore, a: mat, b: off, c: src})
		c.release(m)
	case *ir.For:
		c.forLoop(st)
	case *ir.While:
		c.whileLoop(st)
	case *ir.If:
		c.emit(instr{op: opBurn})
		m := c.mark()
		cond := c.temp()
		c.expr(st.Cond, cond)
		c.release(m)
		c.ops(ir.ExprOpUnits(st.Cond) + 1)
		jz := c.emit(instr{op: opJz, b: cond})
		c.block(st.Then)
		if len(st.Else) > 0 {
			j := c.emit(instr{op: opJmp})
			c.code.ins[jz].a = c.here()
			c.block(st.Else)
			c.code.ins[j].a = c.here()
		} else {
			c.code.ins[jz].a = c.here()
		}
	case *ir.Break:
		c.emit(instr{op: opBurn})
		j := c.emit(instr{op: opJmp})
		if n := len(c.loopStack); n > 0 {
			lc := c.loopStack[n-1]
			lc.breaks = append(lc.breaks, j)
		} else {
			c.haltJumps = append(c.haltJumps, j)
		}
	case *ir.Continue:
		c.emit(instr{op: opBurn})
		j := c.emit(instr{op: opJmp})
		if n := len(c.loopStack); n > 0 {
			lc := c.loopStack[n-1]
			lc.continues = append(lc.continues, j)
		} else {
			c.haltJumps = append(c.haltJumps, j)
		}
	default:
		c.emit(instr{op: opBurn})
		c.emit(instr{op: opErr, a: c.errIdx(fmt.Errorf("ir: unknown statement %T", s))})
	}
}

func (c *compiler) forLoop(st *ir.For) {
	c.emit(instr{op: opBurn})
	base := c.temp() // cur
	hi := c.temp()
	step := c.temp()
	if hi != base+1 || step != base+2 {
		fail("non-contiguous loop registers")
	}
	m := c.mark()
	c.expr(st.Lo, base)
	c.expr(st.Hi, hi)
	c.expr(st.Step, step)
	c.release(m)
	c.ops(ir.ExprOpUnits(st.Lo) + ir.ExprOpUnits(st.Hi) + ir.ExprOpUnits(st.Step))
	loop := c.nextLoop
	c.nextLoop++
	c.code.loops = append(c.code.loops, loopInfo{ivar: c.varReg[st.IVar], limit: st.Trip, isFor: true})
	c.emit(instr{op: opForPrep, a: loop, b: base + 2})
	head := c.here()
	cond := c.emit(instr{op: opForCond, a: loop, b: base})
	lc := &loopCtx{}
	c.loopStack = append(c.loopStack, lc)
	c.block(st.Body)
	c.loopStack = c.loopStack[:len(c.loopStack)-1]
	stepPC := c.here()
	next := c.emit(instr{op: opForNext, a: loop, b: base, d: head + 1})
	exit := c.here()
	c.code.ins[cond].c = exit
	c.code.ins[next].c = exit
	for _, j := range lc.breaks {
		c.code.ins[j].a = exit
	}
	for _, j := range lc.continues {
		c.code.ins[j].a = stepPC
	}
	// The loop control registers stay reserved for the whole loop; free
	// them now.
	c.release(base)
}

func (c *compiler) whileLoop(st *ir.While) {
	c.emit(instr{op: opBurn})
	loop := c.nextLoop
	c.nextLoop++
	c.code.loops = append(c.code.loops, loopInfo{ivar: -1, limit: st.Bound})
	c.emit(instr{op: opLoopPrep, a: loop})
	head := c.here()
	c.emit(instr{op: opBurn}) // per-check fuel, as Exec's while loop
	m := c.mark()
	cond := c.temp()
	c.expr(st.Cond, cond)
	c.release(m)
	c.ops(ir.ExprOpUnits(st.Cond) + 1)
	test := c.emit(instr{op: opWhileTest, a: loop, b: cond})
	lc := &loopCtx{}
	c.loopStack = append(c.loopStack, lc)
	c.block(st.Body)
	c.loopStack = c.loopStack[:len(c.loopStack)-1]
	c.emit(instr{op: opJmp, a: head})
	exit := c.here()
	c.code.ins[test].c = exit
	for _, j := range lc.breaks {
		c.code.ins[j].a = exit
	}
	for _, j := range lc.continues {
		c.code.ins[j].a = head
	}
}

// storeOffset compiles the validated target-offset computation of a
// store (index conversion per subscript in evaluation order, then the
// combined range check), returning the register holding the offset.
func (c *compiler) storeOffset(mat int32, v *ir.Var, idx []ir.Expr) int32 {
	switch len(idx) {
	case 2:
		i := c.index(idx[0])
		j := c.index(idx[1])
		off := c.temp()
		c.emit(instr{op: opIdx2, a: off, b: mat, c: i, d: j})
		return off
	case 1:
		k := c.index(idx[0])
		off := c.temp()
		c.emit(instr{op: opIdx1, a: off, b: mat, c: k})
		return off
	}
	// The tree walker reports bad subscript arity when the statement
	// executes, before evaluating anything.
	c.emit(instr{op: opErr, a: c.errIdx(fmt.Errorf("ir: %d subscripts", len(idx)))})
	return c.temp()
}

// index compiles one subscript expression. Loads and offset ops apply
// the tree walker's tolerant integer conversion inline, so a VarRef or
// Const subscript forwards its home register with no instruction at all
// — exactly the fast path Exec.offset takes (no eval step, conversion
// only), so evaluation order and error order coincide. Any other
// expression keeps the standalone opToInt so that its evaluation and
// conversion stay interleaved per subscript as in the tree walker; the
// load's own re-conversion of the already-integral result is the
// identity and unobservable.
func (c *compiler) index(e ir.Expr) int32 {
	switch e.(type) {
	case *ir.VarRef, *ir.Const:
		return c.operand(e)
	}
	src := c.operand(e)
	r := c.temp()
	c.emit(instr{op: opToInt, a: r, b: src})
	return r
}

// operand compiles e as a read-only operand and returns the register
// holding its value: scalar variables and constants forward their home
// register with no instruction at all (the dominant case — this is what
// keeps the dispatch count per statement low); anything else
// materializes into a fresh temporary released by the caller's mark.
// Forwarding is safe because expressions are pure: no instruction
// emitted for a sibling operand can write a variable or constant
// register.
func (c *compiler) operand(e ir.Expr) int32 {
	switch x := e.(type) {
	case *ir.VarRef:
		if r, ok := c.varReg[x.V]; ok {
			return r
		}
	case *ir.Const:
		if r, ok := c.constReg[math.Float64bits(x.Val)]; ok {
			return r
		}
	}
	r := c.temp()
	c.expr(e, r)
	return r
}

// expr compiles e so its value lands in dst. Temporaries allocated for
// operands are released by the caller's mark.
func (c *compiler) expr(e ir.Expr, dst int32) {
	switch x := e.(type) {
	case *ir.Const:
		c.emit(instr{op: opConst, a: dst, b: c.constIdx(x.Val)})
	case *ir.VarRef:
		c.emit(instr{op: opMov, a: dst, b: c.varReg[x.V]})
	case *ir.Index:
		mat, ok := c.matID[x.V]
		if !ok {
			fail("load from unregistered matrix %s", x.V)
		}
		m := c.mark()
		switch len(x.Idx) {
		case 2:
			i := c.index(x.Idx[0])
			j := c.index(x.Idx[1])
			c.emit(instr{op: opLoad2, a: dst, b: mat, c: i, d: j})
		case 1:
			k := c.index(x.Idx[0])
			c.emit(instr{op: opLoad1, a: dst, b: mat, c: k})
		default:
			c.emit(instr{op: opErr, a: c.errIdx(fmt.Errorf("ir: %d subscripts", len(x.Idx)))})
		}
		c.release(m)
	case *ir.Bin:
		if c.fuseSuper(x, dst) {
			return
		}
		m := c.mark()
		a := c.operand(x.X)
		b := c.operand(x.Y)
		switch x.Op {
		case ir.OpAdd:
			c.emit(instr{op: opAdd, a: dst, b: a, c: b})
		case ir.OpSub:
			c.emit(instr{op: opSub, a: dst, b: a, c: b})
		case ir.OpMul:
			c.emit(instr{op: opMul, a: dst, b: a, c: b})
		case ir.OpDiv:
			c.emit(instr{op: opDiv, a: dst, b: a, c: b})
		case ir.OpPow:
			c.emit(instr{op: opPow, a: dst, b: a, c: b})
		case ir.OpEq:
			c.emit(instr{op: opEq, a: dst, b: a, c: b})
		case ir.OpNe:
			c.emit(instr{op: opNe, a: dst, b: a, c: b})
		case ir.OpLt:
			c.emit(instr{op: opLt, a: dst, b: a, c: b})
		case ir.OpLe:
			c.emit(instr{op: opLe, a: dst, b: a, c: b})
		case ir.OpGt:
			c.emit(instr{op: opGt, a: dst, b: a, c: b})
		case ir.OpGe:
			c.emit(instr{op: opGe, a: dst, b: a, c: b})
		case ir.OpAnd:
			c.emit(instr{op: opAnd, a: dst, b: a, c: b})
		case ir.OpOr:
			c.emit(instr{op: opOr, a: dst, b: a, c: b})
		default:
			c.emit(instr{op: opFold, a: dst, b: a, c: b, d: int32(x.Op)})
		}
		c.release(m)
	case *ir.Un:
		m := c.mark()
		a := c.operand(x.X)
		if x.Op == ir.OpNeg {
			c.emit(instr{op: opNeg, a: dst, b: a})
		} else {
			c.emit(instr{op: opNot, a: dst, b: a})
		}
		c.release(m)
	case *ir.Intrinsic:
		b := scil.LookupBuiltin(x.Name)
		if b == nil {
			// The tree walker errors at evaluation time, before the
			// arguments are evaluated.
			c.emit(instr{op: opErr, a: c.errIdx(fmt.Errorf("ir: unknown intrinsic %q", x.Name))})
			return
		}
		m := c.mark()
		switch {
		case len(x.Args) == 1 && b.Scalar1 != nil:
			a := c.operand(x.Args[0])
			c.emit(instr{op: opIntr1, a: dst, b: c.fn(b), c: a})
		case len(x.Args) == 2 && b.Scalar2 != nil:
			a := c.operand(x.Args[0])
			bb := c.operand(x.Args[1])
			c.emit(instr{op: opIntr2, a: dst, b: c.fn(b), c: a, d: bb})
		default:
			base := c.tempBase
			for _, arg := range x.Args {
				r := c.temp()
				c.expr(arg, r)
			}
			c.emit(instr{op: opIntrN, a: dst, b: c.fn(b), c: base, d: int32(len(x.Args))})
		}
		c.release(m)
	default:
		c.emit(instr{op: opErr, a: c.errIdx(fmt.Errorf("ir: unknown expression %T", e))})
	}
}

// fuseSuper emits one multiply-accumulate superinstruction for an
// Add/Sub whose X or Y operand is a Mul, when the matching fusion bit
// is enabled; reports whether it emitted. Equivalence with the unfused
// opMul + opAdd/opSub pair:
//
//   - Values: the dispatch case rounds the product to float64 through an
//     explicit conversion before the accumulate, the same two-rounding
//     sequence the separate instructions perform (no FMA contraction).
//   - Side-effect order: operands compile in exactly the order the
//     unfused form evaluates them (X's subexpressions, then Y's), so
//     every meter event and every fallible instruction keeps its
//     position. The multiply itself is pure, emits no meter event, and
//     cannot fail, so deferring it into the superinstruction — past the
//     other operand's materialization — is unobservable; the registers
//     it reads are stable because expression code never writes variable
//     or constant home registers and sibling temporaries are fresh.
//   - Fuel and meter charges: per-statement (opBurn, opOps from
//     ExprOpUnits on the IR tree), independent of instruction count.
//   - The elided product register was a pure single-use temporary.
func (c *compiler) fuseSuper(x *ir.Bin, dst int32) bool {
	if x.Op != ir.OpAdd && x.Op != ir.OpSub {
		return false
	}
	mask := superMask.Load()
	if mask == 0 {
		return false
	}
	if mx, ok := x.X.(*ir.Bin); ok && mx.Op == ir.OpMul {
		o, bit := opMulAdd, SuperMulAdd
		if x.Op == ir.OpSub {
			o, bit = opMulSub, SuperMulSub
		}
		if mask&bit == 0 {
			return false
		}
		m := c.mark()
		p := c.operand(mx.X)
		q := c.operand(mx.Y)
		z := c.operand(x.Y)
		c.emit(instr{op: o, a: dst, b: p, c: q, d: z})
		c.release(m)
		superFused.Add(1)
		return true
	}
	if my, ok := x.Y.(*ir.Bin); ok && my.Op == ir.OpMul {
		o, bit := opAddMul, SuperAddMul
		if x.Op == ir.OpSub {
			o, bit = opSubMul, SuperSubMul
		}
		if mask&bit == 0 {
			return false
		}
		m := c.mark()
		z := c.operand(x.X)
		p := c.operand(my.X)
		q := c.operand(my.Y)
		c.emit(instr{op: o, a: dst, b: z, c: p, d: q})
		c.release(m)
		superFused.Add(1)
		return true
	}
	return false
}
