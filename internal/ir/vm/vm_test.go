package vm_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"argo/internal/ir"
	"argo/internal/ir/vm"
	"argo/internal/scil"
	"argo/internal/usecases"
)

// recMeter records the full meter event sequence. Sequence equality (not
// just totals) is what guarantees the simulator's order-sensitive trace
// meter sees identical segment structure from both interpreters.
type recMeter struct {
	events []string
}

func (m *recMeter) Ops(n int)       { m.events = append(m.events, fmt.Sprintf("ops %d", n)) }
func (m *recMeter) Read(v *ir.Var)  { m.events = append(m.events, "read "+v.Name) }
func (m *recMeter) Write(v *ir.Var) { m.events = append(m.events, "write "+v.Name) }

func lower(t *testing.T, src, entry string, args ...ir.ArgSpec) *ir.Program {
	t.Helper()
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := scil.Check(p, scil.CheckWCET); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	prog, err := ir.Lower(p, entry, args)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

// assertSame runs prog under both interpreters with recording meters and
// requires bit-identical results, identical error strings, and identical
// meter event sequences.
func assertSame(t *testing.T, prog *ir.Program, inputs [][]float64) {
	t.Helper()
	tm := &recMeter{}
	ex := ir.NewExec(prog, tm)
	treeOut, treeErr := ex.Run(inputs)

	vmMeter := &recMeter{}
	vmOut, vmErr := vm.Run(prog, vmMeter, inputs)

	if (treeErr == nil) != (vmErr == nil) ||
		(treeErr != nil && treeErr.Error() != vmErr.Error()) {
		t.Fatalf("error mismatch: tree=%v vm=%v", treeErr, vmErr)
	}
	if treeErr == nil {
		if len(treeOut) != len(vmOut) {
			t.Fatalf("result arity: tree=%d vm=%d", len(treeOut), len(vmOut))
		}
		for i := range treeOut {
			if len(treeOut[i]) != len(vmOut[i]) {
				t.Fatalf("result %d length: tree=%d vm=%d", i, len(treeOut[i]), len(vmOut[i]))
			}
			for j := range treeOut[i] {
				if math.Float64bits(treeOut[i][j]) != math.Float64bits(vmOut[i][j]) {
					t.Fatalf("result[%d][%d]: tree=%v vm=%v", i, j, treeOut[i][j], vmOut[i][j])
				}
			}
		}
	}
	if len(tm.events) != len(vmMeter.events) {
		t.Fatalf("meter event count: tree=%d vm=%d\ntree tail: %v\nvm tail: %v",
			len(tm.events), len(vmMeter.events), tail(tm.events), tail(vmMeter.events))
	}
	for i := range tm.events {
		if tm.events[i] != vmMeter.events[i] {
			t.Fatalf("meter event %d: tree=%q vm=%q", i, tm.events[i], vmMeter.events[i])
		}
	}
}

func tail(ev []string) []string {
	if len(ev) > 8 {
		return ev[len(ev)-8:]
	}
	return ev
}

func TestVMScalarArithmetic(t *testing.T) {
	prog := lower(t, `
function r = f(a, b)
  r = (a + b) * 2 - b / 4 + a ^ 2
endfunction`, "f", ir.ScalarArg(), ir.ScalarArg())
	assertSame(t, prog, [][]float64{{3}, {8}})
	assertSame(t, prog, [][]float64{{-1.5}, {0}})
}

func TestVMForLoop(t *testing.T) {
	prog := lower(t, `
function r = f(x)
  r = 0
  for i = 1:50
    r = r + i * x
  end
endfunction`, "f", ir.ScalarArg())
	assertSame(t, prog, [][]float64{{2.5}})
}

func TestVMWhileBreakContinue(t *testing.T) {
	prog := lower(t, `
function r = f(x)
  r = 0
  i = 0
  //@bound 100
  while i < 50
    i = i + 1
    if i == 40 then
      break
    end
    if i - floor(i / 2) * 2 == 0 then
      continue
    end
    r = r + i * x
  end
endfunction`, "f", ir.ScalarArg())
	assertSame(t, prog, [][]float64{{3}})
}

func TestVMNestedLoops(t *testing.T) {
	prog := lower(t, `
function r = f(x)
  r = 0
  for i = 1:6
    for j = 1:6
      if j > i then
        break
      end
      r = r + i * 10 + j + x
    end
  end
endfunction`, "f", ir.ScalarArg())
	assertSame(t, prog, [][]float64{{0.25}})
}

func TestVMMatrixOps(t *testing.T) {
	prog := lower(t, `
function r = f(a, b)
  c = a * b
  d = abs(c - 3)
  s = sqrt(d)
  r = sum(s) + c(2, 2) * 100 + maxval(max(c, 0))
endfunction`, "f", ir.MatrixArg(2, 2), ir.MatrixArg(2, 2))
	assertSame(t, prog, [][]float64{{1, -2, 3, 4}, {5, 6, -7, 8}})
}

func TestVMLinearIndexing(t *testing.T) {
	prog := lower(t, `
function r = f(x)
  a = zeros(2, 3)
  for k = 1:6
    a(k) = k * x
  end
  r = a(2, 1) * 100 + a(5) + a(1, 3)
endfunction`, "f", ir.ScalarArg())
	assertSame(t, prog, [][]float64{{1.5}})
}

func TestVMRuntimeIndexOutOfRange(t *testing.T) {
	prog := lower(t, `
function r = f(x)
  a = zeros(2, 2)
  a(1, 1) = 7
  r = a(x)
endfunction`, "f", ir.ScalarArg())
	assertSame(t, prog, [][]float64{{3}})   // in range
	assertSame(t, prog, [][]float64{{9}})   // linear index out of range
	assertSame(t, prog, [][]float64{{1.5}}) // non-integer index
}

func TestVMRuntimeStoreOutOfRange(t *testing.T) {
	prog := lower(t, `
function r = f(x)
  a = zeros(2, 2)
  a(x, 1) = 5
  r = a(1, 1)
endfunction`, "f", ir.ScalarArg())
	assertSame(t, prog, [][]float64{{2}})
	assertSame(t, prog, [][]float64{{3}})
	assertSame(t, prog, [][]float64{{0.3}})
}

func TestVMWhileBoundExceeded(t *testing.T) {
	prog := lower(t, `
function r = f(x)
  r = 0
  //@bound 8
  while x > 0
    r = r + 1
  end
endfunction`, "f", ir.ScalarArg())
	assertSame(t, prog, [][]float64{{1}})
}

func TestVMArgValidation(t *testing.T) {
	prog := lower(t, `
function r = f(a, m)
  r = a + m(1, 1)
endfunction`, "f", ir.ScalarArg(), ir.MatrixArg(2, 2))
	assertSame(t, prog, [][]float64{{1}})                  // wrong arity
	assertSame(t, prog, [][]float64{{1, 2}, {1, 2, 3, 4}}) // non-scalar scalar arg
	assertSame(t, prog, [][]float64{{1}, {1, 2, 3}})       // wrong element count
	assertSame(t, prog, [][]float64{{1}, {1, 2, 3, 4}})    // valid
}

// TestVMDirectIR covers IR shapes the frontend cannot produce: top-level
// break/continue (the simulator executes arbitrary statement regions),
// unknown intrinsics in dead and live branches, and zero-step loops.
func TestVMDirectIR(t *testing.T) {
	build := func(body func(p *ir.Program, x, r *ir.Var) []ir.Stmt) *ir.Program {
		p := &ir.Program{}
		x := p.NewVar(&ir.Var{Name: "x", Scalar: true, Param: true})
		r := p.NewVar(&ir.Var{Name: "r", Scalar: true, Result: true})
		p.Entry = &ir.Func{
			Name:    "f",
			Params:  []*ir.Var{x},
			Results: []*ir.Var{r},
			Body:    body(p, x, r),
		}
		return p
	}

	t.Run("top-level break halts region", func(t *testing.T) {
		prog := build(func(p *ir.Program, x, r *ir.Var) []ir.Stmt {
			return []ir.Stmt{
				&ir.AssignScalar{Dst: r, Src: &ir.Const{Val: 1}},
				&ir.If{
					Cond: &ir.VarRef{V: x},
					Then: []ir.Stmt{&ir.Break{}},
				},
				&ir.AssignScalar{Dst: r, Src: &ir.Const{Val: 2}},
			}
		})
		assertSame(t, prog, [][]float64{{1}})
		assertSame(t, prog, [][]float64{{0}})
	})

	t.Run("top-level continue halts region", func(t *testing.T) {
		prog := build(func(p *ir.Program, x, r *ir.Var) []ir.Stmt {
			return []ir.Stmt{
				&ir.AssignScalar{Dst: r, Src: &ir.VarRef{V: x}},
				&ir.Continue{},
				&ir.AssignScalar{Dst: r, Src: &ir.Const{Val: -1}},
			}
		})
		assertSame(t, prog, [][]float64{{5}})
	})

	t.Run("unknown intrinsic", func(t *testing.T) {
		prog := build(func(p *ir.Program, x, r *ir.Var) []ir.Stmt {
			return []ir.Stmt{
				&ir.AssignScalar{Dst: r, Src: &ir.Intrinsic{Name: "nosuch", Args: []ir.Expr{&ir.VarRef{V: x}}}},
			}
		})
		assertSame(t, prog, [][]float64{{1}})
	})

	t.Run("unknown intrinsic in dead branch", func(t *testing.T) {
		prog := build(func(p *ir.Program, x, r *ir.Var) []ir.Stmt {
			return []ir.Stmt{
				&ir.If{
					Cond: &ir.VarRef{V: x},
					Then: []ir.Stmt{&ir.AssignScalar{Dst: r, Src: &ir.Intrinsic{Name: "nosuch"}}},
					Else: []ir.Stmt{&ir.AssignScalar{Dst: r, Src: &ir.Const{Val: 9}}},
				},
			}
		})
		assertSame(t, prog, [][]float64{{0}})
		assertSame(t, prog, [][]float64{{1}})
	})

	t.Run("zero step for loop", func(t *testing.T) {
		prog := build(func(p *ir.Program, x, r *ir.Var) []ir.Stmt {
			i := p.FreshVar("i", 1, 1, true)
			return []ir.Stmt{
				&ir.For{
					IVar: i,
					Lo:   &ir.Const{Val: 1}, Hi: &ir.Const{Val: 3}, Step: &ir.VarRef{V: x},
					Trip: 3,
					Body: []ir.Stmt{&ir.AssignScalar{Dst: r, Src: &ir.VarRef{V: i}}},
				},
			}
		})
		assertSame(t, prog, [][]float64{{1}})
		assertSame(t, prog, [][]float64{{0}})
	})

	t.Run("trip count exceeded", func(t *testing.T) {
		prog := build(func(p *ir.Program, x, r *ir.Var) []ir.Stmt {
			i := p.FreshVar("i", 1, 1, true)
			return []ir.Stmt{
				&ir.For{
					IVar: i,
					Lo:   &ir.Const{Val: 1}, Hi: &ir.VarRef{V: x}, Step: &ir.Const{Val: 1},
					Trip: 4,
					Body: []ir.Stmt{&ir.AssignScalar{Dst: r, Src: &ir.VarRef{V: i}}},
				},
			}
		})
		assertSame(t, prog, [][]float64{{4}})
		assertSame(t, prog, [][]float64{{10}})
	})

	t.Run("boxed intrinsic", func(t *testing.T) {
		// atan registers only a boxed Eval (no Scalar1/Scalar2), so both
		// interpreters take the boxed call path for either arity.
		prog := build(func(p *ir.Program, x, r *ir.Var) []ir.Stmt {
			return []ir.Stmt{
				&ir.AssignScalar{Dst: r, Src: &ir.Bin{
					Op: ir.OpAdd,
					X:  &ir.Intrinsic{Name: "atan", Args: []ir.Expr{&ir.VarRef{V: x}}},
					Y:  &ir.Intrinsic{Name: "atan", Args: []ir.Expr{&ir.VarRef{V: x}, &ir.Const{Val: 2}}},
				}},
			}
		})
		assertSame(t, prog, [][]float64{{3}})
		assertSame(t, prog, [][]float64{{-0.5}})
	})

	t.Run("induction variable clobbered by body", func(t *testing.T) {
		prog := build(func(p *ir.Program, x, r *ir.Var) []ir.Stmt {
			i := p.FreshVar("i", 1, 1, true)
			return []ir.Stmt{
				&ir.For{
					IVar: i,
					Lo:   &ir.Const{Val: 1}, Hi: &ir.Const{Val: 5}, Step: &ir.Const{Val: 1},
					Trip: 5,
					Body: []ir.Stmt{
						&ir.AssignScalar{Dst: r, Src: &ir.Bin{Op: ir.OpAdd, X: &ir.VarRef{V: r}, Y: &ir.VarRef{V: i}}},
						&ir.AssignScalar{Dst: i, Src: &ir.Const{Val: 100}},
					},
				},
			}
		})
		assertSame(t, prog, [][]float64{{0}})
	})
}

// TestVMFuelExhaustion pins the fuel semantics: both interpreters hit the
// budget at the same statement with the same meter prefix.
func TestVMFuelExhaustion(t *testing.T) {
	prog := lower(t, `
function r = f(x)
  r = 0
  for i = 1:1000
    r = r + x
  end
endfunction`, "f", ir.ScalarArg())
	inputs := [][]float64{{1}}

	for _, fuel := range []int{1, 2, 3, 50, 51, 52, 1000} {
		tm := &recMeter{}
		ex := ir.NewExec(prog, tm)
		var treeErr error
		if treeErr = ex.Init(inputs); treeErr == nil {
			ex.SetFuel(fuel)
			treeErr = ex.ExecBlock(prog.Entry.Body)
		}

		cp, err := vm.Compile(prog)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		vmMeter := &recMeter{}
		m := vm.NewMachine(cp, vmMeter)
		var vmErr error
		if vmErr = m.Init(inputs); vmErr == nil {
			m.SetFuel(fuel)
			vmErr = m.ExecEntry()
		}

		if (treeErr == nil) != (vmErr == nil) ||
			(treeErr != nil && treeErr.Error() != vmErr.Error()) {
			t.Fatalf("fuel=%d error mismatch: tree=%v vm=%v", fuel, treeErr, vmErr)
		}
		if strings.Join(tm.events, ";") != strings.Join(vmMeter.events, ";") {
			t.Fatalf("fuel=%d meter mismatch:\ntree: %v\nvm:   %v", fuel, tm.events, vmMeter.events)
		}
	}
}

// TestVMRegions splits a program body in two and executes the halves as
// separate regions with separate meters — the simulator's per-task
// execution shape — requiring identical per-region event sequences and
// carried scalar/matrix state.
func TestVMRegions(t *testing.T) {
	prog := lower(t, `
function r = f(x)
  a = zeros(2, 3)
  for k = 1:6
    a(k) = k * x
  end
  s = 0
  for k = 1:6
    s = s + a(k)
  end
  r = s + a(2, 2)
endfunction`, "f", ir.ScalarArg())
	body := prog.Entry.Body
	if len(body) < 2 {
		t.Fatalf("body too short to split: %d", len(body))
	}
	cut := len(body) / 2
	regions := [][]ir.Stmt{body[:cut], body[cut:]}
	inputs := [][]float64{{0.5}}

	ex := ir.NewExec(prog, nil)
	if err := ex.Init(inputs); err != nil {
		t.Fatal(err)
	}
	var treeEvents [][]string
	for _, r := range regions {
		rm := &recMeter{}
		ex.SetMeter(rm)
		if err := ex.ExecBlock(r); err != nil {
			t.Fatal(err)
		}
		treeEvents = append(treeEvents, rm.events)
	}
	treeOut := ex.Results()

	cp, err := vm.CompileRegions(prog, regions)
	if err != nil {
		t.Fatalf("compile regions: %v", err)
	}
	if cp.NumRegions() != 2 {
		t.Fatalf("regions = %d", cp.NumRegions())
	}
	m := vm.NewMachine(cp, nil)
	if err := m.Init(inputs); err != nil {
		t.Fatal(err)
	}
	for i := range regions {
		rm := &recMeter{}
		m.SetMeter(rm)
		if err := m.ExecRegion(i); err != nil {
			t.Fatal(err)
		}
		if strings.Join(rm.events, ";") != strings.Join(treeEvents[i], ";") {
			t.Fatalf("region %d meter mismatch:\ntree: %v\nvm:   %v", i, treeEvents[i], rm.events)
		}
	}
	vmOut := m.Results()

	for i := range treeOut {
		for j := range treeOut[i] {
			if math.Float64bits(treeOut[i][j]) != math.Float64bits(vmOut[i][j]) {
				t.Fatalf("result[%d][%d]: tree=%v vm=%v", i, j, treeOut[i][j], vmOut[i][j])
			}
		}
	}
}

// TestVMMachineReuse checks pooled reuse: the same Machine re-Init'd (and
// Reset onto a different program) keeps producing oracle-identical runs.
func TestVMMachineReuse(t *testing.T) {
	u := usecases.All()[0]
	sp, err := u.Program()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(sp, u.Entry, u.Args)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := vm.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.NewMachine(cp, nil)
	ex := ir.NewExec(prog, nil)
	for seed := int64(1); seed <= 3; seed++ {
		inputs := u.Inputs(seed)
		want, err := ex.Run(inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Init(inputs); err != nil {
			t.Fatal(err)
		}
		if err := m.ExecEntry(); err != nil {
			t.Fatal(err)
		}
		got := m.Results()
		for i := range want {
			for j := range want[i] {
				if math.Float64bits(want[i][j]) != math.Float64bits(got[i][j]) {
					t.Fatalf("seed %d result[%d][%d]: tree=%v vm=%v", seed, i, j, want[i][j], got[i][j])
				}
			}
		}
	}
}

// TestVMUseCases runs the full differential check (results + meter event
// sequences) over every validation application.
func TestVMUseCases(t *testing.T) {
	for _, u := range usecases.All() {
		t.Run(u.Name, func(t *testing.T) {
			sp, err := u.Program()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ir.Lower(sp, u.Entry, u.Args)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				assertSame(t, prog, u.Inputs(seed))
			}
		})
	}
}
