package vm_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"argo/internal/ir"
	"argo/internal/ir/vm"
	"argo/internal/scil"
	"argo/internal/usecases"
)

// fuzzFuel bounds execution in both engines so adversarial loop nests
// stay cheap; exhaustion itself is a differential outcome (both engines
// must run out at the same statement with the same meter prefix).
const fuzzFuel = 100_000

// FuzzVMExec is the differential fuzzer for the bytecode VM: any source
// the front end accepts is lowered and executed through both the tree
// walker (the oracle) and the compiled VM, which must agree exactly on
// results (bit-for-bit), error strings, and the complete meter event
// sequence. It extends the FuzzParseSCIL corpus — anything the parser
// fuzzer finds interesting is a candidate execution here.
//
// Run the full fuzzer with: go test -fuzz=FuzzVMExec ./internal/ir/vm
func FuzzVMExec(f *testing.F) {
	seeds := []string{
		"function r = f(a)\n  r = a\nendfunction",
		"function r = f(x)\n  r = 0\n  for i = 1:20\n    r = r + i * x\n  end\nendfunction",
		"//@entry\nfunction r = h(x)\n  //@bound 64\n  while x > 1\n    x = x / 2\n  end\n  r = x\nendfunction",
		"function r = f(m)\n  r = 0\n  for i = 1:2\n    for j = 1:2\n      r = r + m(i, j)\n    end\n  end\nendfunction",
		"function q = g(m)\n  q = m(5)\nendfunction", // runtime index error on a 2x2 argument
		"function r = f(a, b)\n  if a > b then\n    r = max(a, b)\n  else\n    r = atan(a, b)\n  end\nendfunction",
		"function r = f(x)\n  r = x / 0 + sqrt(-x)\nendfunction", // inf/nan propagation
	}
	for _, u := range usecases.All() {
		seeds = append(seeds, u.Source)
	}
	for s := int64(0); s < 6; s++ {
		seeds = append(seeds, scil.GenerateSource(rand.New(rand.NewSource(s)), scil.DefaultGenConfig()))
	}
	for i, s := range seeds {
		f.Add(s, int64(i))
	}
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		p, err := scil.Parse(src)
		if err != nil {
			return
		}
		if errs := scil.Check(p, scil.CheckWCET); len(errs) > 0 {
			return
		}
		for _, fn := range p.Funcs {
			// Two argument shapes per entry: all scalars and all 2x2
			// matrices. Lowering rejects the shape/usage mismatches;
			// whatever it accepts must execute identically.
			for shape := 0; shape < 2; shape++ {
				specs := make([]ir.ArgSpec, len(fn.Params))
				for i := range specs {
					if shape == 0 {
						specs[i] = ir.ScalarArg()
					} else {
						specs[i] = ir.MatrixArg(2, 2)
					}
				}
				prog, err := ir.Lower(p, fn.Name, specs)
				if err != nil {
					continue
				}
				cp, err := vm.Compile(prog)
				if err != nil {
					t.Fatalf("%s/%d: vm compile failed on lowered program: %v\n%s", fn.Name, shape, err, src)
				}
				rng := rand.New(rand.NewSource(seed))
				inputs := make([][]float64, len(specs))
				for i, sp := range specs {
					vals := make([]float64, sp.Rows*sp.Cols)
					for j := range vals {
						vals[j] = math.Round(rng.Float64()*40-20) / 2
					}
					inputs[i] = vals
				}
				diffExec(t, prog, cp, inputs, src)
			}
		}
	})
}

// diffExec runs one (program, inputs) pair through both engines under
// the fuzz fuel budget and reports any observable divergence.
func diffExec(t *testing.T, prog *ir.Program, cp *vm.Program, inputs [][]float64, src string) {
	t.Helper()
	tm := &recMeter{}
	ex := ir.NewExec(prog, tm)
	var treeOut [][]float64
	treeErr := ex.Init(inputs)
	if treeErr == nil {
		ex.SetFuel(fuzzFuel)
		treeErr = ex.ExecBlock(prog.Entry.Body)
	}
	if treeErr == nil {
		treeOut = ex.Results()
	}

	vmMeter := &recMeter{}
	m := vm.NewMachine(cp, vmMeter)
	var vmOut [][]float64
	vmErr := m.Init(inputs)
	if vmErr == nil {
		m.SetFuel(fuzzFuel)
		vmErr = m.ExecEntry()
	}
	if vmErr == nil {
		vmOut = m.Results()
	}

	if (treeErr == nil) != (vmErr == nil) ||
		(treeErr != nil && treeErr.Error() != vmErr.Error()) {
		t.Fatalf("error mismatch: tree=%v vm=%v\n%s", treeErr, vmErr, src)
	}
	if treeErr == nil {
		if len(treeOut) != len(vmOut) {
			t.Fatalf("result arity: tree=%d vm=%d\n%s", len(treeOut), len(vmOut), src)
		}
		for i := range treeOut {
			if len(treeOut[i]) != len(vmOut[i]) {
				t.Fatalf("result %d length: tree=%d vm=%d\n%s", i, len(treeOut[i]), len(vmOut[i]), src)
			}
			for j := range treeOut[i] {
				if math.Float64bits(treeOut[i][j]) != math.Float64bits(vmOut[i][j]) {
					t.Fatalf("result[%d][%d]: tree=%v vm=%v\n%s", i, j, treeOut[i][j], vmOut[i][j], src)
				}
			}
		}
	}
	if strings.Join(tm.events, ";") != strings.Join(vmMeter.events, ";") {
		t.Fatalf("meter divergence:\ntree tail: %v\nvm tail:   %v\n%s", tail(tm.events), tail(vmMeter.events), src)
	}
}
