package vm_test

import (
	"math"
	"testing"

	"argo/internal/ir"
	"argo/internal/ir/vm"
)

// superSrc exercises all four fusion shapes — Add/Sub with the Mul on
// either side — plus matrix operands (loads inside the fused operands)
// and values where an FMA contraction would change the result bits if
// the dispatch cases allowed one.
const superSrc = `
function r = f(x, y, M)
  r = 0
  acc = 0
  for i = 1:8
    acc = acc + M(i) * x
    acc = acc - M(i) * y
    acc = x * y + acc
    acc = x * acc - y
  end
  r = acc + 0.1 * x
  r = r - y * 0.3
endfunction`

func superProg(t *testing.T) *ir.Program {
	t.Helper()
	return lower(t, superSrc, "f", ir.ScalarArg(), ir.ScalarArg(), ir.MatrixArg(8, 1))
}

func superInputs() [][]float64 {
	m := make([]float64, 8)
	for i := range m {
		// Values chosen so x*y rounds: an FMA (single rounding) would
		// produce different bits than mul-then-add.
		m[i] = 1.0/3.0 + float64(i)*0.7
	}
	return [][]float64{{0.1}, {1.0 / 3.0}, m}
}

// TestSuperinstructionDifferential pins the bit-identity contract with
// the fusions on: the VM with fused multiply-accumulate opcodes matches
// the tree walker exactly (results, meter sequence, errors), fusions
// are actually emitted, and dispatches are counted.
func TestSuperinstructionDifferential(t *testing.T) {
	vm.SetSuperinstructions(true)
	t.Cleanup(func() { vm.SetSuperinstructions(true) })

	f0, d0 := vm.SuperCounters()
	assertSame(t, superProg(t), superInputs())
	f1, d1 := vm.SuperCounters()
	if f1 <= f0 {
		t.Errorf("argo_superinst_fused did not grow: %d -> %d", f0, f1)
	}
	if d1 <= d0 {
		t.Errorf("argo_superinst_dispatched did not grow: %d -> %d", d0, d1)
	}
}

// TestSuperinstructionOnOffIdentical pins the A-B lever: the same
// program compiled with fusions off produces bit-identical results to
// the fused build (and emits no superinstructions).
func TestSuperinstructionOnOffIdentical(t *testing.T) {
	t.Cleanup(func() { vm.SetSuperinstructions(true) })
	prog := superProg(t)
	in := superInputs()

	vm.SetSuperinstructions(true)
	on, errOn := vm.Run(prog, nil, in)

	vm.SetSuperinstructions(false)
	f0, _ := vm.SuperCounters()
	off, errOff := vm.Run(prog, nil, in)
	f1, _ := vm.SuperCounters()

	if errOn != nil || errOff != nil {
		t.Fatalf("run errors: on=%v off=%v", errOn, errOff)
	}
	if f1 != f0 {
		t.Errorf("fusions emitted with superinstructions off: %d -> %d", f0, f1)
	}
	for i := range on {
		for j := range on[i] {
			if math.Float64bits(on[i][j]) != math.Float64bits(off[i][j]) {
				t.Fatalf("result[%d][%d] differs: on=%v off=%v (FMA contraction?)", i, j, on[i][j], off[i][j])
			}
		}
	}
}

// TestTuneFromProfile pins the profile-guided loop: record a dispatch-
// pair profile with fusions off, tune the mask from it, and verify the
// retuned compile fuses (and still matches the unfused results).
func TestTuneFromProfile(t *testing.T) {
	t.Cleanup(func() { vm.SetSuperinstructions(true) })
	prog := superProg(t)
	in := superInputs()

	vm.SetSuperinstructions(false)
	cp, err := vm.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	prof := &vm.PairProfile{}
	m := vm.NewMachine(cp, nil)
	m.SetPairProfile(prof)
	if err := m.Init(in); err != nil {
		t.Fatal(err)
	}
	if err := m.ExecEntry(); err != nil {
		t.Fatal(err)
	}
	baseline := m.Results()
	if prof.Total() == 0 {
		t.Fatal("profile recorded nothing")
	}
	if tops := prof.TopPairs(5); len(tops) == 0 {
		t.Fatal("TopPairs empty on a non-empty profile")
	}

	mask := vm.TuneFromProfile(prof, 0)
	if mask&(vm.SuperMulAdd|vm.SuperAddMul) == 0 {
		t.Fatalf("mul->add pairs recorded but mask %#x lacks the Add fusions", mask)
	}
	if mask&(vm.SuperMulSub|vm.SuperSubMul) == 0 {
		t.Fatalf("mul->sub pairs recorded but mask %#x lacks the Sub fusions", mask)
	}
	if got := vm.SuperMask(); got != mask {
		t.Fatalf("SuperMask() = %#x, want installed %#x", got, mask)
	}

	_, d0 := vm.SuperCounters()
	tuned, err := vm.Run(prog, nil, in)
	if err != nil {
		t.Fatal(err)
	}
	_, d1 := vm.SuperCounters()
	if d1 <= d0 {
		t.Error("tuned compile dispatched no superinstructions")
	}
	for i := range baseline {
		for j := range baseline[i] {
			if math.Float64bits(baseline[i][j]) != math.Float64bits(tuned[i][j]) {
				t.Fatalf("tuned result[%d][%d] differs: %v vs %v", i, j, baseline[i][j], tuned[i][j])
			}
		}
	}

	// A profile of an all-fused run has no raw mul->add pairs left; the
	// aggregate path (nil profile) must still work.
	vm.ResetGlobalProfile()
	vm.RecordProfile(prof)
	if got := vm.TuneFromProfile(nil, 0); got != mask {
		t.Fatalf("aggregate tune = %#x, want %#x", got, mask)
	}
}

// TestSharedCacheBound pins the shared code cache's bound and the
// eviction counter: stores beyond the cap evict rather than grow.
func TestSharedCacheBound(t *testing.T) {
	vm.SharedReset()
	vm.SetSharedMax(16)
	t.Cleanup(func() {
		vm.SetSharedMax(0)
		vm.SharedReset()
	})

	cp, err := vm.Compile(superProg(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		var k vm.CacheKey
		k[0] = byte(i * 4) // spread across shards
		k[1] = byte(i)
		vm.SharedStore(k, cp)
	}
	if n := vm.SharedLen(); n > 16 {
		t.Errorf("shared cache holds %d entries, bound is 16", n)
	}
	var k vm.CacheKey
	k[0], k[1] = 252, 63
	if _, ok := vm.SharedLookup(k); !ok {
		t.Error("most recent store missing from shared cache")
	}
}
