package vm

import (
	"expvar"
	"sync"
)

// Shared compiled-code cache. CompileRegions is the dominant cold-path
// cost of the simulator's first run over a parallel program; identical
// IR compiled under the same region partition and fusion mask yields
// behaviourally identical code, so compiled Programs are shared process-
// wide — across par.Programs, interactive sessions, and argod requests
// — the same way internal/pass shares structural pass results.
//
// The cache is content-addressed: the caller derives the CacheKey from
// a fingerprint of everything compilation reads (internal/sim hashes
// the IR program fingerprint — vars in registration order with storage
// classes, the entry body — plus the per-region statement fingerprints
// in task order and the superinstruction mask). Equal keys therefore
// imply equal compiled behaviour. Sharing the *Program value itself is
// safe because a compiled Program is immutable and safe for concurrent
// Machines by construction.
//
// Like the pass cache, this is an accelerator, not a correctness
// mechanism: bounded (one arbitrary eviction per insert at capacity),
// sharded to keep lookup contention off the simulator hot path.

// CacheKey content-addresses one compiled Program (SHA-256 of the
// compilation inputs, computed by the caller).
type CacheKey [32]byte

const (
	vmShardBits = 4
	vmShards    = 1 << vmShardBits
	// vmShardMax bounds entries per shard by default (256 programs in
	// total). Compiled programs are a few instructions per source
	// statement; hundreds of cached programs are cheap, unbounded growth
	// in a long-running argod is not.
	vmShardMax = 16
)

type vmShard struct {
	mu sync.RWMutex
	m  map[CacheKey]*Program
}

var sharedCode struct {
	shards      [vmShards]vmShard
	mu          sync.Mutex // guards maxPerShard
	maxPerShard int
}

func vmShardOf(k CacheKey) *vmShard {
	return &sharedCode.shards[k[0]>>(8-vmShardBits)]
}

func vmShardMaxNow() int {
	sharedCode.mu.Lock()
	defer sharedCode.mu.Unlock()
	if sharedCode.maxPerShard > 0 {
		return sharedCode.maxPerShard
	}
	return vmShardMax
}

// SharedLookup returns the compiled Program cached under k, if any.
func SharedLookup(k CacheKey) (*Program, bool) {
	s := vmShardOf(k)
	s.mu.RLock()
	p, ok := s.m[k]
	s.mu.RUnlock()
	return p, ok
}

// SharedStore caches p under k. At capacity an arbitrary entry is
// evicted; which compiled program survives never affects results, only
// which future compilations are skipped.
func SharedStore(k CacheKey, p *Program) {
	max := vmShardMaxNow()
	s := vmShardOf(k)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[CacheKey]*Program)
	}
	if _, exists := s.m[k]; !exists {
		for len(s.m) >= max {
			for old := range s.m {
				delete(s.m, old)
				sharedEvictions.Add(1)
				break
			}
		}
	}
	s.m[k] = p
	s.mu.Unlock()
}

// SharedLen returns the number of cached compiled programs.
func SharedLen() int {
	n := 0
	for i := range sharedCode.shards {
		s := &sharedCode.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// SetSharedMax rebounds the cache to at most maxEntries compiled
// programs across all shards (maxEntries <= 0 restores the default
// bound). Shards above the new bound shrink lazily as inserts arrive.
// argod exposes this as -vm-cache-max.
func SetSharedMax(maxEntries int) {
	sharedCode.mu.Lock()
	defer sharedCode.mu.Unlock()
	if maxEntries <= 0 {
		sharedCode.maxPerShard = 0
		return
	}
	per := maxEntries / vmShards
	if per < 1 {
		per = 1
	}
	sharedCode.maxPerShard = per
}

// SharedReset drops every cached compiled program (tests and cold-path
// benchmarks). The eviction counter is preserved.
func SharedReset() {
	for i := range sharedCode.shards {
		s := &sharedCode.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}

// Shared-cache observability, served by argod's /debug/vars.
var sharedEvictions = expvar.NewInt("argo_vm_shared_evictions")

func init() {
	expvar.Publish("argo_vm_shared_entries", expvar.Func(func() any {
		return SharedLen()
	}))
}
