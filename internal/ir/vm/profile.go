package vm

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
)

// Profile-guided superinstructions. The compiler can fuse the two hot
// multiply-accumulate shapes (Add/Sub with a Mul operand, in either
// position) into single opcodes, halving the dispatch count of inner-
// product style statements. Which fusions are enabled is a process-wide
// mask: all on by default (the fusions are always profitable when the
// shape occurs), switchable off wholesale for A-B measurement, or tuned
// from a recorded opcode-pair profile so only pairs that actually
// dominate a workload's dispatch stream pay the (tiny) compile-time
// matching cost.
//
// Soundness does not depend on the mask: every superinstruction is
// bit-identical to the pair it replaces. The dispatch cases convert the
// product through an explicit float64() conversion, which the Go spec
// defines as rounding to float64 precision — this forbids the compiler
// from contracting the multiply-add into a hardware FMA (a real hazard
// on arm64/ppc64), so the fused form performs exactly the two roundings
// the separate opMul + opAdd/opSub pair performs. Operand evaluation
// order, meter event order, fuel, and error order are preserved (see
// fuseSuper); the elided intermediate register was a pure single-use
// temporary no other instruction could observe.

// Fusion mask bits, one per superinstruction shape.
const (
	SuperMulAdd uint32 = 1 << iota // Add(Mul(p,q), z)
	SuperAddMul                    // Add(z, Mul(p,q))
	SuperMulSub                    // Sub(Mul(p,q), z)
	SuperSubMul                    // Sub(z, Mul(p,q))

	// SuperAll enables every fusion (the default).
	SuperAll = SuperMulAdd | SuperAddMul | SuperMulSub | SuperSubMul
)

var superMask atomic.Uint32

func init() { superMask.Store(SuperAll) }

// SuperMask returns the active fusion mask. The mask is read at compile
// time only; already-compiled Programs keep the fusions they were built
// with (callers caching compiled code across mask changes must key by
// the mask — internal/sim's shared code cache does).
func SuperMask() uint32 { return superMask.Load() }

// SetSuperMask installs an explicit fusion mask.
func SetSuperMask(m uint32) { superMask.Store(m & SuperAll) }

// SetSuperinstructions switches every fusion on or off — the A-B lever
// for benchmarks and for recording an unfused pair profile.
func SetSuperinstructions(on bool) {
	if on {
		superMask.Store(SuperAll)
	} else {
		superMask.Store(0)
	}
}

// numOps is the number of base opcodes (burn twins peel to base before
// profiling records them).
const numOps = int(opSubMul) + 1

// PairProfile counts dynamically dispatched opcode pairs. Attach one to
// a Machine (SetPairProfile) to record; merge per-Machine profiles into
// an aggregate with Merge. Recording costs one predictable branch plus
// one counter increment per dispatch, cheap enough to leave on in a
// profiling build; a nil profile costs the branch only. A PairProfile
// is not safe for concurrent recording — profile per Machine and merge.
type PairProfile struct {
	counts [numOps][numOps]uint64
}

// Merge adds other's counts into p.
func (p *PairProfile) Merge(other *PairProfile) {
	for i := range other.counts {
		for j, n := range other.counts[i] {
			if n != 0 {
				p.counts[i][j] += n
			}
		}
	}
}

// Total returns the number of recorded pairs.
func (p *PairProfile) Total() uint64 {
	var t uint64
	for i := range p.counts {
		for _, n := range p.counts[i] {
			t += n
		}
	}
	return t
}

// Pair returns the recorded count of first immediately followed by
// second (base opcodes, as named in the bytecode listing).
func (p *PairProfile) pair(first, second op) uint64 {
	return p.counts[first][second]
}

// PairCount is one entry of TopPairs.
type PairCount struct {
	First, Second string
	Count         uint64
}

// TopPairs returns the n most frequent dispatched pairs, descending,
// ties broken by opcode order for determinism.
func (p *PairProfile) TopPairs(n int) []PairCount {
	type idxPair struct {
		i, j int
		n    uint64
	}
	var all []idxPair
	for i := range p.counts {
		for j, c := range p.counts[i] {
			if c != 0 {
				all = append(all, idxPair{i, j, c})
			}
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].n != all[b].n {
			return all[a].n > all[b].n
		}
		if all[a].i != all[b].i {
			return all[a].i < all[b].i
		}
		return all[a].j < all[b].j
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]PairCount, n)
	for k := 0; k < n; k++ {
		out[k] = PairCount{opName(op(all[k].i)), opName(op(all[k].j)), all[k].n}
	}
	return out
}

// opName gives stable human-readable opcode names for profile output.
func opName(o op) string {
	names := [...]string{
		opHalt: "halt", opConst: "const", opMov: "mov",
		opAdd: "add", opSub: "sub", opMul: "mul", opDiv: "div",
		opPow: "pow", opEq: "eq", opNe: "ne", opLt: "lt", opLe: "le",
		opGt: "gt", opGe: "ge", opAnd: "and", opOr: "or", opFold: "fold",
		opNeg: "neg", opNot: "not",
		opIntr1: "intr1", opIntr2: "intr2", opIntrN: "intrN",
		opToInt: "toint", opLoad1: "load1", opLoad2: "load2",
		opIdx1: "idx1", opIdx2: "idx2", opStore: "store",
		opBurn: "burn", opOps: "ops", opJmp: "jmp", opJz: "jz",
		opLoopPrep: "loopprep", opForPrep: "forprep", opForCond: "forcond",
		opWhileTest: "whiletest", opErr: "err", opForNext: "fornext",
		opMulAdd: "muladd", opAddMul: "addmul",
		opMulSub: "mulsub", opSubMul: "submul",
	}
	if int(o) < len(names) && names[o] != "" {
		return names[o]
	}
	return "op?"
}

// Global profile aggregation: Machines record privately, RecordProfile
// folds a finished Machine's profile into the process-wide aggregate
// that TuneFromProfile reads.
var (
	globalProfMu sync.Mutex
	globalProf   PairProfile
)

// RecordProfile merges p into the process-wide aggregate profile.
func RecordProfile(p *PairProfile) {
	globalProfMu.Lock()
	globalProf.Merge(p)
	globalProfMu.Unlock()
}

// GlobalProfile returns a copy of the process-wide aggregate.
func GlobalProfile() *PairProfile {
	globalProfMu.Lock()
	cp := globalProf
	globalProfMu.Unlock()
	return &cp
}

// ResetGlobalProfile clears the aggregate (tests, re-profiling).
func ResetGlobalProfile() {
	globalProfMu.Lock()
	globalProf = PairProfile{}
	globalProfMu.Unlock()
}

// TuneFromProfile installs the fusion mask implied by a recorded pair
// profile (typically collected with superinstructions off, so the raw
// mul→add / mul→sub pairs are visible in the dispatch stream): a fusion
// pair is enabled when it accounts for at least minShare of all
// recorded pairs (minShare <= 0 enables any pair seen at all). The
// mul→add frequency drives both Mul+Add shapes (which of the two
// operand orders occurs is a compile-time syntactic detail the dynamic
// stream cannot distinguish), likewise mul→sub. Returns the installed
// mask. Pass nil to tune from the process-wide aggregate.
func TuneFromProfile(p *PairProfile, minShare float64) uint32 {
	if p == nil {
		p = GlobalProfile()
	}
	total := p.Total()
	var mask uint32
	enable := func(n uint64) bool {
		if n == 0 {
			return false
		}
		if minShare <= 0 {
			return true
		}
		return float64(n) >= minShare*float64(total)
	}
	if enable(p.pair(opMul, opAdd)) {
		mask |= SuperMulAdd | SuperAddMul
	}
	if enable(p.pair(opMul, opSub)) {
		mask |= SuperMulSub | SuperSubMul
	}
	superMask.Store(mask)
	return mask
}

// Superinstruction observability, served by argod's /debug/vars:
// argo_superinst_fused counts fusions emitted at compile time (one per
// superinstruction in compiled code, cold path), and
// argo_superinst_dispatched counts superinstruction executions (batched
// per Machine run and flushed at exec exit, so the hot loop pays one
// field increment, not an atomic).
var (
	superFused      = expvar.NewInt("argo_superinst_fused")
	superDispatched = expvar.NewInt("argo_superinst_dispatched")
)

// SuperCounters returns the cumulative (fused, dispatched) totals.
func SuperCounters() (fused, dispatched int64) {
	return superFused.Value(), superDispatched.Value()
}
