package ir

import "math"

// Interval is a conservative integer value range; Lo > Hi encodes "no
// accesses" (empty).
type Interval struct {
	Lo, Hi float64
}

// Empty reports whether the interval contains nothing.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Disjoint reports whether two non-empty intervals cannot overlap.
func (iv Interval) Disjoint(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return true
	}
	return iv.Hi < other.Lo || other.Hi < iv.Lo
}

func (iv Interval) union(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{Lo: math.Min(iv.Lo, other.Lo), Hi: math.Max(iv.Hi, other.Hi)}
}

var fullInterval = Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}

var emptyInterval = Interval{Lo: 1, Hi: 0}

// AccessRange summarizes, per subscript dimension, the value range of all
// element accesses a region makes to one matrix variable. It is the basis
// of the interval dependence test: two regions are independent on v when
// some dimension's ranges are provably disjoint (e.g. two chunks of a
// parallelized loop writing rows 1..8 and 9..16).
type AccessRange struct {
	// Row and Col are the 2-D subscript ranges; linear (1-subscript)
	// accesses widen both.
	Row, Col Interval
	// Any is true if the region accesses v at all.
	Any bool
}

// DisjointFrom reports whether the two access sets cannot touch a common
// element.
func (a AccessRange) DisjointFrom(b AccessRange) bool {
	if !a.Any || !b.Any {
		return true
	}
	return a.Row.Disjoint(b.Row) || a.Col.Disjoint(b.Col)
}

// ivarBounds tracks the constant value range of induction variables in
// scope.
type ivarBounds map[*Var]Interval

// exprInterval evaluates a conservative value range of an index
// expression given the loop bounds in scope.
func exprInterval(e Expr, scope ivarBounds) Interval {
	switch x := e.(type) {
	case *Const:
		return Interval{Lo: x.Val, Hi: x.Val}
	case *VarRef:
		if iv, ok := scope[x.V]; ok {
			return iv
		}
		return fullInterval
	case *Bin:
		a := exprInterval(x.X, scope)
		b := exprInterval(x.Y, scope)
		switch x.Op {
		case OpAdd:
			return Interval{Lo: a.Lo + b.Lo, Hi: a.Hi + b.Hi}
		case OpSub:
			return Interval{Lo: a.Lo - b.Hi, Hi: a.Hi - b.Lo}
		case OpMul:
			// Only the common positive-constant scaling case is refined.
			if c, ok := x.Y.(*Const); ok && c.Val >= 0 {
				return Interval{Lo: a.Lo * c.Val, Hi: a.Hi * c.Val}
			}
			if c, ok := x.X.(*Const); ok && c.Val >= 0 {
				return Interval{Lo: b.Lo * c.Val, Hi: b.Hi * c.Val}
			}
			return fullInterval
		}
		return fullInterval
	}
	return fullInterval
}

// CollectAccessRanges computes per-variable access ranges of a region.
func CollectAccessRanges(stmts []Stmt) map[*Var]AccessRange {
	out := map[*Var]AccessRange{}
	collectRanges(stmts, ivarBounds{}, out)
	return out
}

func record(out map[*Var]AccessRange, v *Var, idx []Expr, scope ivarBounds) {
	ar, ok := out[v]
	if !ok {
		ar = AccessRange{Row: emptyInterval, Col: emptyInterval}
	}
	ar.Any = true
	if len(idx) == 2 {
		ar.Row = ar.Row.union(exprInterval(idx[0], scope))
		ar.Col = ar.Col.union(exprInterval(idx[1], scope))
	} else {
		ar.Row = fullInterval
		ar.Col = fullInterval
	}
	out[v] = ar
}

func rangesInExpr(e Expr, scope ivarBounds, out map[*Var]AccessRange) {
	WalkExprs(e, func(sub Expr) {
		if ix, ok := sub.(*Index); ok {
			record(out, ix.V, ix.Idx, scope)
		}
	})
}

func collectRanges(stmts []Stmt, scope ivarBounds, out map[*Var]AccessRange) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *AssignScalar:
			rangesInExpr(st.Src, scope, out)
		case *Store:
			for _, ix := range st.Idx {
				rangesInExpr(ix, scope, out)
			}
			rangesInExpr(st.Src, scope, out)
			record(out, st.Dst, st.Idx, scope)
		case *If:
			rangesInExpr(st.Cond, scope, out)
			collectRanges(st.Then, scope, out)
			collectRanges(st.Else, scope, out)
		case *While:
			rangesInExpr(st.Cond, scope, out)
			collectRanges(st.Body, scope, out)
		case *For:
			rangesInExpr(st.Lo, scope, out)
			rangesInExpr(st.Step, scope, out)
			rangesInExpr(st.Hi, scope, out)
			iv := exprInterval(st.Lo, scope).union(exprInterval(st.Hi, scope))
			inner := ivarBounds{}
			for k, v := range scope {
				inner[k] = v
			}
			inner[st.IVar] = iv
			collectRanges(st.Body, inner, out)
		}
	}
}
