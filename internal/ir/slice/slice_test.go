package slice_test

import (
	"testing"

	"argo/internal/ir"
	"argo/internal/ir/slice"
	"argo/internal/scil"
	"argo/internal/usecases"
)

func lower(t *testing.T, src, entry string, args ...ir.ArgSpec) *ir.Program {
	t.Helper()
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := scil.Check(p, scil.CheckWCET); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	prog, err := ir.Lower(p, entry, args)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func varByName(t *testing.T, prog *ir.Program, name string) *ir.Var {
	t.Helper()
	for _, v := range prog.Vars {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("no variable %q", name)
	return nil
}

// TestSliceDropsDataOnlyWork: pure data computation (stores to an
// output matrix, accumulators never read by control flow) is sliced
// away, while everything feeding a loop bound or branch stays.
func TestSliceDropsDataOnlyWork(t *testing.T) {
	prog := lower(t, `function r = f(m, k)
  n = k * 2
  acc = 0
  r = zeros(2, 2)
  for i = 1:8
    if i < n then
      acc = acc + 1
    end
    r(1, 1) = m(1, 1) * i + acc
  end
endfunction`, "f", ir.MatrixArg(2, 2), ir.ScalarArg())

	sl := slice.Analyze(prog.Entry.Body)
	if !sl.Scalars[varByName(t, prog, "n")] {
		t.Fatal("n bounds a branch; must be relevant")
	}
	if !sl.Scalars[varByName(t, prog, "k")] {
		t.Fatal("k feeds n; must be relevant")
	}
	if sl.Mats[varByName(t, prog, "r")] {
		t.Fatal("r is write-only data output; must be sliced away")
	}
	// acc feeds only the data store — irrelevant even though it is
	// assigned inside a branch.
	if sl.Scalars[varByName(t, prog, "acc")] {
		t.Fatal("acc never reaches control flow; must be sliced away")
	}
	total, relevant := sl.Stats(prog.Entry.Body)
	if relevant >= total {
		t.Fatalf("slice did not shrink the region: %d/%d statements relevant", relevant, total)
	}
}

// TestSliceKeepsMatrixControlDeps: a loop bound loaded from a matrix
// element makes that matrix — and every store into it, and those
// stores' operands — relevant.
func TestSliceKeepsMatrixControlDeps(t *testing.T) {
	prog := lower(t, `function r = f(a)
  t = zeros(1, 2)
  t(1, 1) = a * 3
  n = t(1, 1)
  r = 0
  //@bound 32
  while r < n
    r = r + 1
  end
endfunction`, "f", ir.ScalarArg())

	sl := slice.Analyze(prog.Entry.Body)
	if !sl.Mats[varByName(t, prog, "t")] {
		t.Fatal("t is loaded by a control-feeding assignment; must be relevant")
	}
	if !sl.Scalars[varByName(t, prog, "a")] {
		t.Fatal("a flows into t which bounds the while; must be relevant")
	}
}

// TestSliceDifferentialUseCases runs the FuzzSlice property
// deterministically over the three shipped use cases: the sliced
// execution must replay the full execution's fuel and meter trace.
func TestSliceDifferentialUseCases(t *testing.T) {
	for _, u := range usecases.All() {
		p, err := scil.Parse(u.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", u.Name, err)
		}
		prog, err := ir.Lower(p, u.Entry, u.Args)
		if err != nil {
			t.Fatalf("%s: lower: %v", u.Name, err)
		}
		inputs := make([][]float64, len(u.Args))
		for i, sp := range u.Args {
			vals := make([]float64, sp.Rows*sp.Cols)
			for j := range vals {
				vals[j] = float64((i+j)%7) - 2
			}
			inputs[i] = vals
		}
		diffSlice(t, prog, inputs, u.Name)
	}
}
