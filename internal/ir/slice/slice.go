// Package slice computes the timing-relevant slice of an IR region:
// the subset of statements whose values can affect timing-relevant
// control flow — loop headers (trip sequences), while/if conditions,
// and therefore which statements execute and how much fuel and meter
// traffic they consume.
//
// The slice is the shared substrate of the second WCET engine
// (internal/wcet/mc tracks abstract values only for relevant scalars)
// and of the differential slice executor (Executor), which replays a
// region's exact meter trace while skipping all sliced-away value
// computation. It belongs to the same conservative-dataflow family as
// ir.TraceEnv's input-invariance analysis: both over-approximate in the
// safe direction ("relevant"/"varying" is claimed unless the opposite
// is provable), and both close effects over loop bodies with a monotone
// fixpoint.
//
// Relevance is flow-insensitive and per-variable: control statements
// are always relevant (they are the control flow); an AssignScalar is
// relevant iff its destination scalar can reach a control expression;
// a Store is relevant iff its destination matrix can be loaded by a
// relevant expression. Everything else only contributes its fixed,
// path-independent meter charge.
package slice

import "argo/internal/ir"

// Slice is the timing-relevance classification of one region.
type Slice struct {
	// Scalars holds the scalars whose values can affect timing-relevant
	// control flow (directly in a control expression, or transitively
	// through assignments and relevant matrix stores).
	Scalars map[*ir.Var]bool
	// Mats holds the matrices whose element values can flow into a
	// relevant scalar or control expression.
	Mats map[*ir.Var]bool
}

// Analyze computes the timing-relevant slice of a region by a backward
// closure: control expressions seed the relevant sets, and a monotone
// fixpoint pulls in the definitions feeding them (assignments to
// relevant scalars, stores to relevant matrices — including their index
// expressions, which must be computed for real when the statement
// executes).
func Analyze(stmts []ir.Stmt) *Slice {
	sl := &Slice{Scalars: map[*ir.Var]bool{}, Mats: map[*ir.Var]bool{}}
	// Seed: everything a control expression reads is timing-relevant.
	ir.WalkStmts(stmts, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.For:
			sl.markExpr(st.Lo)
			sl.markExpr(st.Step)
			sl.markExpr(st.Hi)
		case *ir.While:
			sl.markExpr(st.Cond)
		case *ir.If:
			sl.markExpr(st.Cond)
		}
		return true
	})
	// Closure: definitions of relevant variables make their operands
	// relevant. Marks are only ever added, so the fixpoint terminates.
	for {
		changed := false
		ir.WalkStmts(stmts, func(s ir.Stmt) bool {
			switch st := s.(type) {
			case *ir.AssignScalar:
				if sl.Scalars[st.Dst] && sl.markExpr(st.Src) {
					changed = true
				}
			case *ir.Store:
				if sl.Mats[st.Dst] {
					if sl.markExpr(st.Src) {
						changed = true
					}
					for _, ix := range st.Idx {
						if sl.markExpr(ix) {
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return sl
}

// markExpr marks every variable e reads as relevant and reports whether
// any mark is new.
func (sl *Slice) markExpr(e ir.Expr) bool {
	changed := false
	ir.WalkExprs(e, func(sub ir.Expr) {
		switch x := sub.(type) {
		case *ir.VarRef:
			if !sl.Scalars[x.V] {
				sl.Scalars[x.V] = true
				changed = true
			}
		case *ir.Index:
			if !sl.Mats[x.V] {
				sl.Mats[x.V] = true
				changed = true
			}
		}
	})
	return changed
}

// Relevant reports whether a statement belongs to the timing-relevant
// slice. Control statements always do; assignments and stores only when
// their destination is relevant.
func (sl *Slice) Relevant(s ir.Stmt) bool {
	switch st := s.(type) {
	case *ir.AssignScalar:
		return sl.Scalars[st.Dst]
	case *ir.Store:
		return sl.Mats[st.Dst]
	}
	return true
}

// Stats counts the region's statements and how many are in the slice
// (control statements included in both counts).
func (sl *Slice) Stats(stmts []ir.Stmt) (total, relevant int) {
	ir.WalkStmts(stmts, func(s ir.Stmt) bool {
		total++
		if sl.Relevant(s) {
			relevant++
		}
		return true
	})
	return total, relevant
}
