package slice_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"argo/internal/ir"
	"argo/internal/ir/slice"
	"argo/internal/scil"
	"argo/internal/usecases"
)

// fuzzFuel bounds execution in both the full interpreter and the slice
// executor so adversarial loop nests stay cheap; exhaustion itself is a
// differential outcome (both must run out with the same meter prefix
// and the same remaining fuel).
const fuzzFuel = 100_000

// recMeter records the full meter event sequence. Sequence equality
// (not just totals) is the differential property: the slice executor
// must replay the exact trace of the full execution.
type recMeter struct {
	events []string
}

func (m *recMeter) Ops(n int)      { m.events = append(m.events, fmt.Sprintf("ops %d", n)) }
func (m *recMeter) Read(v *ir.Var) { m.events = append(m.events, "read "+v.Name) }
func (m *recMeter) Write(v *ir.Var) {
	m.events = append(m.events, "write "+v.Name)
}

func tail(ev []string) []string {
	if len(ev) > 12 {
		return ev[len(ev)-12:]
	}
	return ev
}

// FuzzSlice is the differential fuzzer for the timing-relevant slicer:
// for any program the front end accepts, executing the region's slice
// must consume the same fuel and emit the bit-identical meter event
// sequence as executing the full region. Divergence means the slicer
// dropped a statement that could affect timing — exactly the soundness
// bug the mc engine would then inherit.
//
// Run the full fuzzer with: go test -fuzz=FuzzSlice ./internal/ir/slice
func FuzzSlice(f *testing.F) {
	seeds := []string{
		"function r = f(a)\n  r = a\nendfunction",
		"function r = f(x)\n  r = 0\n  for i = 1:20\n    r = r + i * x\n  end\nendfunction",
		"//@entry\nfunction r = h(x)\n  //@bound 64\n  while x > 1\n    x = x / 2\n  end\n  r = x\nendfunction",
		"function r = f(m)\n  r = 0\n  for i = 1:2\n    for j = 1:2\n      r = r + m(i, j)\n    end\n  end\nendfunction",
		// The loop bound flows through a matrix element: the store to n
		// is timing-relevant even though n never reaches a result.
		"function r = f(m)\n  n = m(1, 1)\n  r = 0\n  for i = 1:8\n    if i < n then\n      r = r + 1\n    end\n  end\nendfunction",
		"function r = f(a, b)\n  if a > b then\n    r = max(a, b)\n  else\n    r = atan(a, b)\n  end\nendfunction",
		"function r = f(x)\n  r = x / 0 + sqrt(-x)\nendfunction",
	}
	for _, u := range usecases.All() {
		seeds = append(seeds, u.Source)
	}
	for s := int64(0); s < 6; s++ {
		seeds = append(seeds, scil.GenerateSource(rand.New(rand.NewSource(s)), scil.DefaultGenConfig()))
	}
	for i, s := range seeds {
		f.Add(s, int64(i))
	}
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		p, err := scil.Parse(src)
		if err != nil {
			return
		}
		if errs := scil.Check(p, scil.CheckWCET); len(errs) > 0 {
			return
		}
		for _, fn := range p.Funcs {
			// Two argument shapes per entry: all scalars and all 2x2
			// matrices; whatever lowering accepts must slice-execute
			// identically.
			for shape := 0; shape < 2; shape++ {
				specs := make([]ir.ArgSpec, len(fn.Params))
				for i := range specs {
					if shape == 0 {
						specs[i] = ir.ScalarArg()
					} else {
						specs[i] = ir.MatrixArg(2, 2)
					}
				}
				prog, err := ir.Lower(p, fn.Name, specs)
				if err != nil {
					continue
				}
				rng := rand.New(rand.NewSource(seed))
				inputs := make([][]float64, len(specs))
				for i, sp := range specs {
					vals := make([]float64, sp.Rows*sp.Cols)
					for j := range vals {
						vals[j] = math.Round(rng.Float64()*40-20) / 2
					}
					inputs[i] = vals
				}
				diffSlice(t, prog, inputs, src)
			}
		}
	})
}

// diffSlice runs one (program, inputs) pair through the full
// interpreter and through the slice executor and reports any observable
// timing divergence. A failing full execution is skipped: errors inside
// sliced-away computation are unobservable by design.
func diffSlice(t *testing.T, prog *ir.Program, inputs [][]float64, src string) {
	t.Helper()
	full := &recMeter{}
	ex := ir.NewExec(prog, full)
	if err := ex.Init(inputs); err != nil {
		return
	}
	ex.SetFuel(fuzzFuel)
	if err := ex.ExecBlock(prog.Entry.Body); err != nil {
		return
	}

	sliced := &recMeter{}
	sx := ir.NewExec(prog, sliced)
	if err := sx.Init(inputs); err != nil {
		t.Fatalf("slice init diverged: %v\n%s", err, src)
	}
	sx.SetFuel(fuzzFuel)
	sl := slice.Analyze(prog.Entry.Body)
	if err := slice.NewExecutor(sx, sl).ExecBlock(prog.Entry.Body); err != nil {
		t.Fatalf("slice execution failed where full execution succeeded: %v\n%s", err, src)
	}

	if ex.Fuel() != sx.Fuel() {
		t.Fatalf("fuel divergence: full=%d sliced=%d\n%s", ex.Fuel(), sx.Fuel(), src)
	}
	if strings.Join(full.events, ";") != strings.Join(sliced.events, ";") {
		t.Fatalf("meter divergence:\nfull tail:   %v\nsliced tail: %v\n%s", tail(full.events), tail(sliced.events), src)
	}
}
