package slice

import (
	"fmt"

	"argo/internal/ir"
)

// Executor runs a region's timing-relevant slice against an ir.Exec,
// reproducing the full region's fuel consumption and complete meter
// event sequence without computing any sliced-away value: relevant
// statements execute for real (their values feed control flow), while
// irrelevant assignments and stores only replay their meter effects —
// element reads in evaluation order, the ALU charge, the element write.
//
// The equivalence the differential fuzzer (FuzzSlice) enforces: for any
// region whose full execution succeeds, the sliced execution consumes
// the same fuel and emits the bit-identical meter event sequence. (A
// full execution that fails — index out of range inside a sliced-away
// store, say — has no such guarantee: the slice cannot observe errors
// in values it never computes.)
type Executor struct {
	ex  *ir.Exec
	sl  *Slice
	one [1]ir.Stmt // scratch for single-statement interpreter dispatch
}

// NewExecutor pairs a slice with the interpreter holding the region's
// state and meter.
func NewExecutor(ex *ir.Exec, sl *Slice) *Executor {
	return &Executor{ex: ex, sl: sl}
}

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
)

// ExecBlock executes the region's slice against the interpreter state.
func (e *Executor) ExecBlock(stmts []ir.Stmt) error {
	_, err := e.block(stmts)
	return err
}

func (e *Executor) block(stmts []ir.Stmt) (ctrl, error) {
	for _, s := range stmts {
		c, err := e.stmt(s)
		if err != nil {
			return ctrlNone, err
		}
		if c != ctrlNone {
			return c, nil
		}
	}
	return ctrlNone, nil
}

func (e *Executor) stmt(s ir.Stmt) (ctrl, error) {
	switch st := s.(type) {
	case *ir.AssignScalar, *ir.Store:
		if e.sl.Relevant(s) {
			// Relevant leaf statements go through the interpreter
			// verbatim: it burns fuel, meters, and assigns exactly as a
			// full execution would.
			e.one[0] = s
			return ctrlNone, e.ex.ExecBlock(e.one[:])
		}
		if err := e.ex.Burn(); err != nil {
			return ctrlNone, err
		}
		e.ghost(s)
		return ctrlNone, nil
	case *ir.For:
		if err := e.ex.Burn(); err != nil {
			return ctrlNone, err
		}
		return e.forStmt(st)
	case *ir.While:
		if err := e.ex.Burn(); err != nil {
			return ctrlNone, err
		}
		return e.whileStmt(st)
	case *ir.If:
		if err := e.ex.Burn(); err != nil {
			return ctrlNone, err
		}
		c, err := e.ex.EvalScalar(st.Cond)
		if err != nil {
			return ctrlNone, err
		}
		e.ex.MeterOps(ir.ExprOpUnits(st.Cond) + 1)
		if c != 0 {
			return e.block(st.Then)
		}
		return e.block(st.Else)
	case *ir.Break:
		if err := e.ex.Burn(); err != nil {
			return ctrlNone, err
		}
		return ctrlBreak, nil
	case *ir.Continue:
		if err := e.ex.Burn(); err != nil {
			return ctrlNone, err
		}
		return ctrlContinue, nil
	}
	return ctrlNone, fmt.Errorf("slice: unknown statement %T", s)
}

// forStmt mirrors the interpreter's for semantics exactly — evaluation
// order (lo, hi, step), the float continuation tolerance, the local
// iteration counter (body writes to the induction variable do not
// affect the sequence), the per-iteration fuel and increment+branch
// charges, and the trip-count guard.
func (e *Executor) forStmt(st *ir.For) (ctrl, error) {
	lo, err := e.ex.EvalScalar(st.Lo)
	if err != nil {
		return ctrlNone, err
	}
	hi, err := e.ex.EvalScalar(st.Hi)
	if err != nil {
		return ctrlNone, err
	}
	step, err := e.ex.EvalScalar(st.Step)
	if err != nil {
		return ctrlNone, err
	}
	e.ex.MeterOps(ir.ExprOpUnits(st.Lo) + ir.ExprOpUnits(st.Hi) + ir.ExprOpUnits(st.Step))
	if step == 0 {
		return ctrlNone, fmt.Errorf("ir: for loop with zero step")
	}
	iters := 0
	for v := lo; (step > 0 && v <= hi+1e-12) || (step < 0 && v >= hi-1e-12); v += step {
		if err := e.ex.Burn(); err != nil {
			return ctrlNone, err
		}
		iters++
		if iters > st.Trip {
			return ctrlNone, fmt.Errorf("ir: for loop exceeded its static trip count %d", st.Trip)
		}
		e.ex.SetScalarValue(st.IVar, v)
		e.ex.MeterOps(2) // increment + branch
		c, err := e.block(st.Body)
		if err != nil {
			return ctrlNone, err
		}
		if c == ctrlBreak {
			break
		}
	}
	return ctrlNone, nil
}

func (e *Executor) whileStmt(st *ir.While) (ctrl, error) {
	for iter := 0; ; iter++ {
		if err := e.ex.Burn(); err != nil {
			return ctrlNone, err
		}
		c, err := e.ex.EvalScalar(st.Cond)
		if err != nil {
			return ctrlNone, err
		}
		e.ex.MeterOps(ir.ExprOpUnits(st.Cond) + 1)
		if c == 0 {
			return ctrlNone, nil
		}
		if iter >= st.Bound {
			return ctrlNone, fmt.Errorf("ir: while loop exceeded its @bound %d", st.Bound)
		}
		ctl, err := e.block(st.Body)
		if err != nil {
			return ctrlNone, err
		}
		if ctl == ctrlBreak {
			return ctrlNone, nil
		}
	}
}

// ghost replays the meter effects of a sliced-away leaf statement
// without computing its value: element reads in evaluation order, the
// statement's ALU charge, and (for stores) the element write.
func (e *Executor) ghost(s ir.Stmt) {
	switch st := s.(type) {
	case *ir.AssignScalar:
		e.ghostExpr(st.Src)
		e.ex.MeterOps(ir.ExprOpUnits(st.Src) + 1)
	case *ir.Store:
		units := 1 + ir.ExprOpUnits(st.Src)
		for _, ix := range st.Idx {
			e.ghostExpr(ix)
			units += ir.ExprOpUnits(ix)
		}
		e.ghostExpr(st.Src)
		e.ex.MeterOps(units)
		e.ex.MeterWrite(st.Dst)
	}
}

// ghostExpr emits the Read events one evaluation of x would emit, in
// evaluation order: an Index resolves its subscripts first, then loads.
func (e *Executor) ghostExpr(x ir.Expr) {
	switch ex := x.(type) {
	case *ir.Index:
		for _, ix := range ex.Idx {
			e.ghostExpr(ix)
		}
		e.ex.MeterRead(ex.V)
	case *ir.Bin:
		e.ghostExpr(ex.X)
		e.ghostExpr(ex.Y)
	case *ir.Un:
		e.ghostExpr(ex.X)
	case *ir.Intrinsic:
		for _, a := range ex.Args {
			e.ghostExpr(a)
		}
	}
}
