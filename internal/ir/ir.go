// Package ir defines the ARGO intermediate representation: a structured,
// fully monomorphic imperative program over float64 scalars and
// statically-shaped dense matrices.
//
// The IR is produced by lowering a scil program for one entry point
// (package-level function Lower). Lowering
//
//   - resolves every matrix shape to compile-time constants,
//   - inlines every user-function call (the call graph is acyclic),
//   - scalarizes matrix operations into explicit loops, so every memory
//     access in the IR is an element load or store with index expressions,
//   - derives a static trip count for every for loop and takes while-loop
//     bounds from //@bound pragmas.
//
// These properties are exactly what the downstream stages need: the WCET
// analyses (internal/wcet, internal/syswcet) see every loop bound and
// every shared-memory access statically; the task extractor (internal/htg)
// computes read/write sets per statement region; the transformation engine
// (internal/transform) rewrites loops structurally.
package ir

import (
	"fmt"
	"strings"
	"sync"
)

// Storage classifies where a variable lives on the target.
type Storage int

// Storage classes.
const (
	// StorageReg is a core-private register: scalar values, free to access.
	StorageReg Storage = iota
	// StorageShared is the shared global memory: the default home of all
	// matrix data; accesses are shared-resource accesses for WCET.
	StorageShared
	// StorageSPM is the core-local scratchpad memory; accesses have a
	// small fixed latency and do not contend.
	StorageSPM
)

// String returns the storage class name.
func (s Storage) String() string {
	switch s {
	case StorageReg:
		return "reg"
	case StorageShared:
		return "shared"
	case StorageSPM:
		return "spm"
	}
	return fmt.Sprintf("storage(%d)", int(s))
}

// Var is an IR variable: a scalar register or a statically-shaped matrix
// buffer.
type Var struct {
	Name       string
	Rows, Cols int
	Scalar     bool
	Storage    Storage
	Param      bool
	Result     bool

	// tempOwner marks a lowering temporary that no source name refers to
	// yet; such values can be adopted by an assignment without a copy.
	tempOwner bool

	// slot is the 1-based index of the variable in its program's Vars
	// table (0 = unregistered) and owner is that program. The
	// interpreter uses them for dense, map-free storage: a slot is
	// trusted exactly when owner matches the executing program (one
	// pointer compare), falling back to a map for foreign variables.
	// Clone re-owns the copied variables, which keep the Vars order.
	slot  int
	owner *Program
}

// Elems returns the number of float64 elements the variable holds.
func (v *Var) Elems() int {
	if v.Scalar {
		return 1
	}
	return v.Rows * v.Cols
}

// SizeBytes returns the variable's memory footprint (8 bytes/element).
func (v *Var) SizeBytes() int { return v.Elems() * 8 }

// String renders the variable with its shape and storage.
func (v *Var) String() string {
	if v.Scalar {
		return fmt.Sprintf("%s:scalar", v.Name)
	}
	return fmt.Sprintf("%s:%dx%d@%s", v.Name, v.Rows, v.Cols, v.Storage)
}

// BinOp enumerates binary scalar operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpPow
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "^", "==", "~=", "<", "<=", ">", ">=", "&", "|"}

// String returns the operator's surface syntax.
func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota
	OpNot
)

// String returns the operator's surface syntax.
func (op UnOp) String() string {
	if op == OpNeg {
		return "-"
	}
	return "~"
}

// Expr is a pure scalar expression.
type Expr interface {
	irExpr()
}

// Const is a literal value.
type Const struct{ Val float64 }

// VarRef reads a scalar register variable.
type VarRef struct{ V *Var }

// Index reads one matrix element. Idx holds 1 or 2 scalar index
// expressions (1-based; a single index is Scilab column-major linear
// indexing).
type Index struct {
	V   *Var
	Idx []Expr
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	X, Y Expr
}

// Un applies a unary operator.
type Un struct {
	Op UnOp
	X  Expr
}

// Intrinsic calls a scalar builtin (abs, sqrt, sin, ... from the scil
// builtin table) on scalar arguments.
type Intrinsic struct {
	Name string
	Args []Expr
}

func (*Const) irExpr()     {}
func (*VarRef) irExpr()    {}
func (*Index) irExpr()     {}
func (*Bin) irExpr()       {}
func (*Un) irExpr()        {}
func (*Intrinsic) irExpr() {}

// Stmt is a structured statement.
type Stmt interface {
	irStmt()
}

// AssignScalar writes a scalar register.
type AssignScalar struct {
	Dst *Var
	Src Expr

	units int32 // memoized per-execution ALU charge (0 = unannotated)
}

// Store writes one matrix element; Idx as in Index.
type Store struct {
	Dst *Var
	Idx []Expr
	Src Expr

	units int32 // memoized per-execution ALU charge (0 = unannotated)
}

// For is a counted loop. Lo/Step/Hi are scalar expressions evaluated once
// on entry; Trip is the statically-derived worst-case trip count used by
// every analysis. IVar is the induction variable (a scalar register).
type For struct {
	IVar         *Var
	Lo, Step, Hi Expr
	Trip         int
	Body         []Stmt
	// Label optionally names the loop for reports and transformations.
	Label string

	units int32 // memoized loop-entry ALU charge (0 = unannotated)
}

// While is a bounded condition-controlled loop; Bound comes from the
// //@bound pragma and upper-bounds the iteration count.
type While struct {
	Cond  Expr
	Bound int
	Body  []Stmt

	units int32 // memoized per-check ALU charge (0 = unannotated)
}

// If branches on a scalar condition (nonzero = true).
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt

	units int32 // memoized per-check ALU charge (0 = unannotated)
}

// Break exits the innermost enclosing loop.
type Break struct{}

// Continue proceeds to the next iteration of the innermost loop.
type Continue struct{}

func (*AssignScalar) irStmt() {}
func (*Store) irStmt()        {}
func (*For) irStmt()          {}
func (*While) irStmt()        {}
func (*If) irStmt()           {}
func (*Break) irStmt()        {}
func (*Continue) irStmt()     {}

// Func is the single fully-inlined entry function of an IR program.
type Func struct {
	Name    string
	Params  []*Var
	Results []*Var
	Body    []Stmt
}

// Program is an IR compilation unit: one entry function plus the table of
// all variables (registers and matrix buffers) it uses.
type Program struct {
	Entry *Func
	Vars  []*Var

	nextTemp int
	// unitsDone records that AnnotateOpUnits already ran (guarded by
	// annotateMu; a plain bool keeps Program copyable by value).
	unitsDone bool
}

// annotateMu serializes AnnotateOpUnits across programs; the one-shot
// walk is far off any hot path.
var annotateMu sync.Mutex

// AnnotateOpUnits precomputes the per-execution ALU charge of every
// statement in the program (see ExprOpUnits), so metered interpretation
// reads a field instead of walking expression trees. Call it only once
// the program is final — structural rewrites after annotation would
// leave stale charges. Repeated and concurrent calls are safe, and the
// mutex publication makes the annotations visible to every caller that
// passed through it; clones start unannotated.
func (p *Program) AnnotateOpUnits() {
	annotateMu.Lock()
	defer annotateMu.Unlock()
	if p.unitsDone {
		return
	}
	p.unitsDone = true
	WalkStmts(p.Entry.Body, func(s Stmt) bool {
		switch st := s.(type) {
		case *AssignScalar:
			st.units = int32(ExprOpUnits(st.Src)) + 1
		case *Store:
			u := 1 + ExprOpUnits(st.Src)
			for _, ix := range st.Idx {
				u += ExprOpUnits(ix)
			}
			st.units = int32(u)
		case *While:
			st.units = int32(ExprOpUnits(st.Cond)) + 1
		case *If:
			st.units = int32(ExprOpUnits(st.Cond)) + 1
		case *For:
			st.units = int32(ExprOpUnits(st.Lo) + ExprOpUnits(st.Hi) + ExprOpUnits(st.Step))
		}
		return true
	})
}

// NewVar registers a new variable in the program. Names must be unique;
// use FreshVar for generated temporaries.
func (p *Program) NewVar(v *Var) *Var {
	p.Vars = append(p.Vars, v)
	v.slot = len(p.Vars)
	v.owner = p
	return v
}

// FreshVar creates a uniquely-named variable with the given prefix.
func (p *Program) FreshVar(prefix string, rows, cols int, scalar bool) *Var {
	p.nextTemp++
	v := &Var{
		Name:   fmt.Sprintf("%s_t%d", prefix, p.nextTemp),
		Rows:   rows,
		Cols:   cols,
		Scalar: scalar,
	}
	if !scalar {
		v.Storage = StorageShared
	}
	return p.NewVar(v)
}

// TempSeq returns the temporary-name counter FreshVar draws from.
// Content-addressed program fingerprints must include it: transforms
// generate variable names from the counter, so two structurally equal
// programs with different counters produce differently-named rewrites.
func (p *Program) TempSeq() int { return p.nextTemp }

// VarByName returns the variable with the given name, or nil.
func (p *Program) VarByName(name string) *Var {
	for _, v := range p.Vars {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// MatrixVars returns all matrix (memory-resident) variables.
func (p *Program) MatrixVars() []*Var {
	var out []*Var
	for _, v := range p.Vars {
		if !v.Scalar {
			out = append(out, v)
		}
	}
	return out
}

// TotalDataBytes sums the memory footprint of all matrix variables.
func (p *Program) TotalDataBytes() int {
	n := 0
	for _, v := range p.MatrixVars() {
		n += v.SizeBytes()
	}
	return n
}

// --- pretty printing -------------------------------------------------------

// Dump renders the program as pseudo-code for debugging and golden tests.
func (p *Program) Dump() string {
	var sb strings.Builder
	f := p.Entry
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, v := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteString(") -> (")
	for i, v := range f.Results {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteString(")\n")
	dumpBlock(&sb, f.Body, 1)
	return sb.String()
}

func indent(sb *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		sb.WriteString("  ")
	}
}

func dumpBlock(sb *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		dumpStmt(sb, s, depth)
	}
}

func dumpStmt(sb *strings.Builder, s Stmt, depth int) {
	indent(sb, depth)
	switch st := s.(type) {
	case *AssignScalar:
		fmt.Fprintf(sb, "%s = %s\n", st.Dst.Name, ExprString(st.Src))
	case *Store:
		fmt.Fprintf(sb, "%s[%s] = %s\n", st.Dst.Name, idxString(st.Idx), ExprString(st.Src))
	case *For:
		fmt.Fprintf(sb, "for %s = %s : %s : %s (trip %d)\n",
			st.IVar.Name, ExprString(st.Lo), ExprString(st.Step), ExprString(st.Hi), st.Trip)
		dumpBlock(sb, st.Body, depth+1)
		indent(sb, depth)
		sb.WriteString("end\n")
	case *While:
		fmt.Fprintf(sb, "while %s (bound %d)\n", ExprString(st.Cond), st.Bound)
		dumpBlock(sb, st.Body, depth+1)
		indent(sb, depth)
		sb.WriteString("end\n")
	case *If:
		fmt.Fprintf(sb, "if %s\n", ExprString(st.Cond))
		dumpBlock(sb, st.Then, depth+1)
		if len(st.Else) > 0 {
			indent(sb, depth)
			sb.WriteString("else\n")
			dumpBlock(sb, st.Else, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("end\n")
	case *Break:
		sb.WriteString("break\n")
	case *Continue:
		sb.WriteString("continue\n")
	default:
		fmt.Fprintf(sb, "?stmt %T\n", s)
	}
}

func idxString(idx []Expr) string {
	parts := make([]string, len(idx))
	for i, e := range idx {
		parts[i] = ExprString(e)
	}
	return strings.Join(parts, ", ")
}

// ExprString renders an expression as pseudo-code.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Const:
		return fmt.Sprintf("%g", x.Val)
	case *VarRef:
		return x.V.Name
	case *Index:
		return fmt.Sprintf("%s[%s]", x.V.Name, idxString(x.Idx))
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.X), x.Op, ExprString(x.Y))
	case *Un:
		return fmt.Sprintf("%s%s", x.Op, ExprString(x.X))
	case *Intrinsic:
		return fmt.Sprintf("%s(%s)", x.Name, idxString(x.Args))
	case nil:
		return "<nil>"
	}
	return fmt.Sprintf("?expr %T", e)
}

// --- structural helpers ----------------------------------------------------

// WalkStmts calls fn for every statement in stmts, recursively, in program
// order. If fn returns false the walk stops.
func WalkStmts(stmts []Stmt, fn func(Stmt) bool) bool {
	for _, s := range stmts {
		if !fn(s) {
			return false
		}
		switch st := s.(type) {
		case *For:
			if !WalkStmts(st.Body, fn) {
				return false
			}
		case *While:
			if !WalkStmts(st.Body, fn) {
				return false
			}
		case *If:
			if !WalkStmts(st.Then, fn) {
				return false
			}
			if !WalkStmts(st.Else, fn) {
				return false
			}
		}
	}
	return true
}

// WalkExprs calls fn for every sub-expression of e in evaluation order.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Bin:
		WalkExprs(x.X, fn)
		WalkExprs(x.Y, fn)
	case *Un:
		WalkExprs(x.X, fn)
	case *Index:
		for _, ix := range x.Idx {
			WalkExprs(ix, fn)
		}
	case *Intrinsic:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	}
}

// StmtExprs returns the expressions directly evaluated by s (not
// recursing into nested statements).
func StmtExprs(s Stmt) []Expr {
	switch st := s.(type) {
	case *AssignScalar:
		return []Expr{st.Src}
	case *Store:
		out := append([]Expr{}, st.Idx...)
		return append(out, st.Src)
	case *For:
		return []Expr{st.Lo, st.Step, st.Hi}
	case *While:
		return []Expr{st.Cond}
	case *If:
		return []Expr{st.Cond}
	}
	return nil
}

// CloneStmts deep-copies a statement list. Variables are shared (they are
// identities), structure is copied, so transformations can rewrite bodies
// without aliasing surprises.
func CloneStmts(stmts []Stmt) []Stmt {
	return cloneStmtsRemap(stmts, nil)
}

// CloneStmt deep-copies one statement (variables shared).
func CloneStmt(s Stmt) Stmt {
	return cloneStmtRemap(s, nil)
}

// cloneStmtsRemap deep-copies a statement list; mv (when non-nil) remaps
// every variable identity onto its replacement.
func cloneStmtsRemap(stmts []Stmt, mv func(*Var) *Var) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = cloneStmtRemap(s, mv)
	}
	return out
}

func cloneStmtRemap(s Stmt, mv func(*Var) *Var) Stmt {
	rv := func(v *Var) *Var {
		if mv == nil {
			return v
		}
		return mv(v)
	}
	switch st := s.(type) {
	case *AssignScalar:
		return &AssignScalar{Dst: rv(st.Dst), Src: cloneExprRemap(st.Src, mv)}
	case *Store:
		return &Store{Dst: rv(st.Dst), Idx: cloneExprsRemap(st.Idx, mv), Src: cloneExprRemap(st.Src, mv)}
	case *For:
		return &For{
			IVar: rv(st.IVar), Lo: cloneExprRemap(st.Lo, mv), Step: cloneExprRemap(st.Step, mv),
			Hi: cloneExprRemap(st.Hi, mv), Trip: st.Trip, Body: cloneStmtsRemap(st.Body, mv),
			Label: st.Label,
		}
	case *While:
		return &While{Cond: cloneExprRemap(st.Cond, mv), Bound: st.Bound, Body: cloneStmtsRemap(st.Body, mv)}
	case *If:
		return &If{Cond: cloneExprRemap(st.Cond, mv), Then: cloneStmtsRemap(st.Then, mv), Else: cloneStmtsRemap(st.Else, mv)}
	case *Break:
		return &Break{}
	case *Continue:
		return &Continue{}
	}
	panic(fmt.Sprintf("ir.CloneStmt: unknown statement %T", s))
}

func cloneExprs(es []Expr) []Expr {
	return cloneExprsRemap(es, nil)
}

func cloneExprsRemap(es []Expr, mv func(*Var) *Var) []Expr {
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = cloneExprRemap(e, mv)
	}
	return out
}

// CloneExpr deep-copies an expression (variables shared).
func CloneExpr(e Expr) Expr {
	return cloneExprRemap(e, nil)
}

func cloneExprRemap(e Expr, mv func(*Var) *Var) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Const:
		c := *x
		return &c
	case *VarRef:
		r := *x
		if mv != nil {
			r.V = mv(r.V)
		}
		return &r
	case *Index:
		v := x.V
		if mv != nil {
			v = mv(v)
		}
		return &Index{V: v, Idx: cloneExprsRemap(x.Idx, mv)}
	case *Bin:
		return &Bin{Op: x.Op, X: cloneExprRemap(x.X, mv), Y: cloneExprRemap(x.Y, mv)}
	case *Un:
		return &Un{Op: x.Op, X: cloneExprRemap(x.X, mv)}
	case *Intrinsic:
		return &Intrinsic{Name: x.Name, Args: cloneExprsRemap(x.Args, mv)}
	}
	panic(fmt.Sprintf("ir.CloneExpr: unknown expression %T", e))
}

// Clone deep-copies the whole program: fresh Var objects, a fresh entry
// function whose body remaps every variable reference onto the copies,
// and the temporary-name counter carried over. Mutations of the clone —
// storage (re)assignment by buffer placement, structural rewrites by the
// transformation engine — never touch the receiver, which is what lets
// one lowered front-end result feed many back-end runs (the iterative
// optimizer compiles every candidate from the same pristine IR).
func (p *Program) Clone() *Program {
	out := &Program{nextTemp: p.nextTemp}
	vmap := make(map[*Var]*Var, len(p.Vars))
	out.Vars = make([]*Var, len(p.Vars))
	for i, v := range p.Vars {
		c := *v
		c.owner = out // the copy keeps v's slot, which indexes out.Vars
		out.Vars[i] = &c
		vmap[v] = &c
	}
	mv := func(v *Var) *Var {
		if v == nil {
			return nil
		}
		if c, ok := vmap[v]; ok {
			return c
		}
		// A variable referenced by the body but absent from Vars (the
		// original was equally unregistered): copy it once so aliasing
		// inside the clone mirrors the original.
		c := *v
		vmap[v] = &c
		return &c
	}
	f := &Func{
		Name:    p.Entry.Name,
		Params:  make([]*Var, len(p.Entry.Params)),
		Results: make([]*Var, len(p.Entry.Results)),
	}
	for i, v := range p.Entry.Params {
		f.Params[i] = mv(v)
	}
	for i, v := range p.Entry.Results {
		f.Results[i] = mv(v)
	}
	f.Body = cloneStmtsRemap(p.Entry.Body, mv)
	out.Entry = f
	return out
}

// SubstituteVar returns e with every VarRef to v replaced by repl.
// Index bases are not substituted (v is assumed scalar).
func SubstituteVar(e Expr, v *Var, repl Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Const:
		return x
	case *VarRef:
		if x.V == v {
			return CloneExpr(repl)
		}
		return x
	case *Index:
		idx := make([]Expr, len(x.Idx))
		for i, ix := range x.Idx {
			idx[i] = SubstituteVar(ix, v, repl)
		}
		return &Index{V: x.V, Idx: idx}
	case *Bin:
		return &Bin{Op: x.Op, X: SubstituteVar(x.X, v, repl), Y: SubstituteVar(x.Y, v, repl)}
	case *Un:
		return &Un{Op: x.Op, X: SubstituteVar(x.X, v, repl)}
	case *Intrinsic:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = SubstituteVar(a, v, repl)
		}
		return &Intrinsic{Name: x.Name, Args: args}
	}
	panic(fmt.Sprintf("ir.SubstituteVar: unknown expression %T", e))
}

// SubstituteVarStmts applies SubstituteVar across a statement list in place
// of expressions (returns a rewritten deep copy).
func SubstituteVarStmts(stmts []Stmt, v *Var, repl Expr) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = substituteVarStmt(s, v, repl)
	}
	return out
}

func substituteVarStmt(s Stmt, v *Var, repl Expr) Stmt {
	switch st := s.(type) {
	case *AssignScalar:
		return &AssignScalar{Dst: st.Dst, Src: SubstituteVar(st.Src, v, repl)}
	case *Store:
		idx := make([]Expr, len(st.Idx))
		for i, ix := range st.Idx {
			idx[i] = SubstituteVar(ix, v, repl)
		}
		return &Store{Dst: st.Dst, Idx: idx, Src: SubstituteVar(st.Src, v, repl)}
	case *For:
		return &For{
			IVar:  st.IVar,
			Lo:    SubstituteVar(st.Lo, v, repl),
			Step:  SubstituteVar(st.Step, v, repl),
			Hi:    SubstituteVar(st.Hi, v, repl),
			Trip:  st.Trip,
			Body:  SubstituteVarStmts(st.Body, v, repl),
			Label: st.Label,
		}
	case *While:
		return &While{Cond: SubstituteVar(st.Cond, v, repl), Bound: st.Bound, Body: SubstituteVarStmts(st.Body, v, repl)}
	case *If:
		return &If{
			Cond: SubstituteVar(st.Cond, v, repl),
			Then: SubstituteVarStmts(st.Then, v, repl),
			Else: SubstituteVarStmts(st.Else, v, repl),
		}
	case *Break:
		return &Break{}
	case *Continue:
		return &Continue{}
	}
	panic(fmt.Sprintf("ir.substituteVarStmt: unknown statement %T", s))
}
