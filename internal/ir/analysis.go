package ir

// UseSets summarizes which variables a statement region may read and
// write. Matrix accesses are element accesses to the variable's buffer;
// scalar accesses are register reads/writes.
type UseSets struct {
	MatReads  map[*Var]bool
	MatWrites map[*Var]bool
	ScalReads map[*Var]bool
	ScalWrite map[*Var]bool
}

// NewUseSets returns empty use sets.
func NewUseSets() *UseSets {
	return &UseSets{
		MatReads:  map[*Var]bool{},
		MatWrites: map[*Var]bool{},
		ScalReads: map[*Var]bool{},
		ScalWrite: map[*Var]bool{},
	}
}

// AddExprUses records the variables read by one evaluation of e.
func (u *UseSets) AddExprUses(e Expr) {
	WalkExprs(e, func(sub Expr) {
		switch x := sub.(type) {
		case *VarRef:
			u.ScalReads[x.V] = true
		case *Index:
			u.MatReads[x.V] = true
		}
	})
}

// Union merges other into u.
func (u *UseSets) Union(other *UseSets) {
	for v := range other.MatReads {
		u.MatReads[v] = true
	}
	for v := range other.MatWrites {
		u.MatWrites[v] = true
	}
	for v := range other.ScalReads {
		u.ScalReads[v] = true
	}
	for v := range other.ScalWrite {
		u.ScalWrite[v] = true
	}
}

// ComputeUses returns the may-read / may-write sets of a statement region.
func ComputeUses(stmts []Stmt) *UseSets {
	u := NewUseSets()
	WalkStmts(stmts, func(s Stmt) bool {
		switch st := s.(type) {
		case *AssignScalar:
			u.AddExprUses(st.Src)
			u.ScalWrite[st.Dst] = true
		case *Store:
			for _, ix := range st.Idx {
				u.AddExprUses(ix)
			}
			u.AddExprUses(st.Src)
			u.MatWrites[st.Dst] = true
		case *For:
			u.AddExprUses(st.Lo)
			u.AddExprUses(st.Step)
			u.AddExprUses(st.Hi)
			u.ScalWrite[st.IVar] = true
		case *While:
			u.AddExprUses(st.Cond)
		case *If:
			u.AddExprUses(st.Cond)
		}
		return true
	})
	return u
}

// Conflicts reports whether two regions have a data dependence at
// variable granularity (read/write or write/write overlap on any matrix
// buffer or scalar register).
func Conflicts(a, b *UseSets) bool {
	for v := range a.MatWrites {
		if b.MatReads[v] || b.MatWrites[v] {
			return true
		}
	}
	for v := range b.MatWrites {
		if a.MatReads[v] {
			return true
		}
	}
	for v := range a.ScalWrite {
		if b.ScalReads[v] || b.ScalWrite[v] {
			return true
		}
	}
	for v := range b.ScalWrite {
		if a.ScalReads[v] {
			return true
		}
	}
	return false
}

// AccessCounts is a static worst-case count of element accesses per
// matrix variable for one execution of a statement region: loop bodies
// multiply by the loop's trip count (or @bound), if-branches take the
// per-variable maximum of the two sides.
type AccessCounts struct {
	Reads  map[*Var]int64
	Writes map[*Var]int64
}

// NewAccessCounts returns empty counts.
func NewAccessCounts() *AccessCounts {
	return &AccessCounts{Reads: map[*Var]int64{}, Writes: map[*Var]int64{}}
}

// Total returns reads+writes for variable v.
func (c *AccessCounts) Total(v *Var) int64 { return c.Reads[v] + c.Writes[v] }

// TotalAll sums all counted accesses.
func (c *AccessCounts) TotalAll() int64 {
	var n int64
	for _, k := range c.Reads {
		n += k
	}
	for _, k := range c.Writes {
		n += k
	}
	return n
}

func (c *AccessCounts) scale(f int64) {
	for v := range c.Reads {
		c.Reads[v] *= f
	}
	for v := range c.Writes {
		c.Writes[v] *= f
	}
}

func (c *AccessCounts) add(other *AccessCounts) {
	for v, k := range other.Reads {
		c.Reads[v] += k
	}
	for v, k := range other.Writes {
		c.Writes[v] += k
	}
}

// maxInto folds other into c taking per-variable maxima.
func (c *AccessCounts) maxInto(other *AccessCounts) *AccessCounts {
	out := NewAccessCounts()
	keys := map[*Var]bool{}
	for v := range c.Reads {
		keys[v] = true
	}
	for v := range other.Reads {
		keys[v] = true
	}
	for v := range keys {
		a, b := c.Reads[v], other.Reads[v]
		if b > a {
			a = b
		}
		if a > 0 {
			out.Reads[v] = a
		}
	}
	keys = map[*Var]bool{}
	for v := range c.Writes {
		keys[v] = true
	}
	for v := range other.Writes {
		keys[v] = true
	}
	for v := range keys {
		a, b := c.Writes[v], other.Writes[v]
		if b > a {
			a = b
		}
		if a > 0 {
			out.Writes[v] = a
		}
	}
	return out
}

func exprAccessCounts(e Expr, c *AccessCounts) {
	WalkExprs(e, func(sub Expr) {
		if ix, ok := sub.(*Index); ok {
			c.Reads[ix.V]++
		}
	})
}

// CountAccesses computes worst-case element access counts for a region.
func CountAccesses(stmts []Stmt) *AccessCounts {
	total := NewAccessCounts()
	for _, s := range stmts {
		total.add(countStmtAccesses(s))
	}
	return total
}

func countStmtAccesses(s Stmt) *AccessCounts {
	c := NewAccessCounts()
	switch st := s.(type) {
	case *AssignScalar:
		exprAccessCounts(st.Src, c)
	case *Store:
		for _, ix := range st.Idx {
			exprAccessCounts(ix, c)
		}
		exprAccessCounts(st.Src, c)
		c.Writes[st.Dst]++
	case *For:
		exprAccessCounts(st.Lo, c)
		exprAccessCounts(st.Step, c)
		exprAccessCounts(st.Hi, c)
		body := CountAccesses(st.Body)
		body.scale(int64(st.Trip))
		c.add(body)
	case *While:
		iter := NewAccessCounts()
		exprAccessCounts(st.Cond, iter)
		iter.add(CountAccesses(st.Body))
		iter.scale(int64(st.Bound))
		// The condition is evaluated once more on exit.
		exprAccessCounts(st.Cond, iter)
		c.add(iter)
	case *If:
		exprAccessCounts(st.Cond, c)
		thenC := CountAccesses(st.Then)
		elseC := CountAccesses(st.Else)
		c.add(thenC.maxInto(elseC))
	}
	return c
}

// --- trace staticity -------------------------------------------------------

// TraceEnv tracks, at a program point, which scalar registers hold
// values that are independent of the entry function's inputs ("static").
// The platform simulator uses it to decide which task regions have an
// input-invariant meter trace: a region whose executed control-flow path
// is the same on every run emits the same sequence of Ops/Read/Write
// events regardless of the argument values, so its timing trace can be
// cached and replayed instead of re-metered (internal/sim).
//
// The analysis is conservative in the safe direction: "static" is only
// claimed when provable, and anything data-dependent (matrix loads,
// scalar parameters, values computed from them) is treated as varying.
type TraceEnv struct {
	nonstatic map[*Var]bool
}

// NewTraceEnv starts the environment at the entry of prog: scalar
// parameters are the inputs, so they (and nothing else yet) vary.
// Unwritten registers read as 0.0 on every run and are static.
func NewTraceEnv(prog *Program) *TraceEnv {
	env := &TraceEnv{nonstatic: map[*Var]bool{}}
	for _, p := range prog.Entry.Params {
		if p.Scalar {
			env.nonstatic[p] = true
		}
	}
	return env
}

// staticExpr reports whether e provably evaluates to the same value on
// every run. Matrix element loads are always treated as varying; the
// builtin intrinsics are pure functions, so an intrinsic over static
// arguments is static.
func (env *TraceEnv) staticExpr(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *Const:
		return true
	case *VarRef:
		return !env.nonstatic[x.V]
	case *Index:
		return false
	case *Bin:
		return env.staticExpr(x.X) && env.staticExpr(x.Y)
	case *Un:
		return env.staticExpr(x.X)
	case *Intrinsic:
		for _, a := range x.Args {
			if !env.staticExpr(a) {
				return false
			}
		}
		return true
	}
	return false
}

// poison marks every scalar assigned anywhere in the region as varying —
// the catch-all effect summary for regions whose execution is
// data-dependent (if/while bodies).
func (env *TraceEnv) poison(stmts []Stmt) {
	for v := range ComputeUses(stmts).ScalWrite {
		env.nonstatic[v] = true
	}
}

// AdvanceRegion reports whether executing stmts from the current program
// point yields an input-invariant meter trace, and advances the
// environment past the region's scalar effects. Regions must be visited
// in execution order (the environment is the carrier of inter-region
// dataflow).
//
// A region's trace is invariant iff it contains no if/while (their path
// is data-dependent in general) and every for-loop's lo/hi/step are
// static at the loop's entry — then the loop runs the same iteration
// sequence on every run and every meter event inside is path-determined.
func (env *TraceEnv) AdvanceRegion(stmts []Stmt) bool {
	inv := true
	for _, s := range stmts {
		switch st := s.(type) {
		case *AssignScalar:
			env.nonstatic[st.Dst] = !env.staticExpr(st.Src)
		case *Store:
			// No scalar effects; the Read/Write events it emits are
			// path-determined.
		case *For:
			if !env.staticExpr(st.Lo) || !env.staticExpr(st.Hi) || !env.staticExpr(st.Step) {
				inv = false
				env.nonstatic[st.IVar] = true
			}
			// Iterated body effects: run monotone passes (marks only ever
			// added) until the environment stabilizes, so assignments
			// feeding back across iterations are accounted for; the final
			// pass then judges nested invariance under the stable set.
			for {
				before := len(env.nonstatic)
				bodyInv := env.advanceMonotone(st.Body)
				if len(env.nonstatic) == before {
					if !bodyInv {
						inv = false
					}
					break
				}
			}
		case *While, *If:
			inv = false
			env.poison([]Stmt{s})
		case *Break, *Continue:
			// Unconditional control transfer: deterministic, no effects.
		}
	}
	return inv
}

// advanceMonotone is AdvanceRegion restricted to monotone effects
// (static reassignment never clears a varying mark), which guarantees
// the loop-body fixpoint terminates.
func (env *TraceEnv) advanceMonotone(stmts []Stmt) bool {
	inv := true
	for _, s := range stmts {
		switch st := s.(type) {
		case *AssignScalar:
			if !env.staticExpr(st.Src) {
				env.nonstatic[st.Dst] = true
			}
		case *For:
			if !env.staticExpr(st.Lo) || !env.staticExpr(st.Hi) || !env.staticExpr(st.Step) {
				inv = false
				env.nonstatic[st.IVar] = true
			}
			if !env.advanceMonotone(st.Body) {
				inv = false
			}
		case *While, *If:
			inv = false
			env.poison([]Stmt{s})
		}
	}
	return inv
}
