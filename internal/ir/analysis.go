package ir

// UseSets summarizes which variables a statement region may read and
// write. Matrix accesses are element accesses to the variable's buffer;
// scalar accesses are register reads/writes.
type UseSets struct {
	MatReads  map[*Var]bool
	MatWrites map[*Var]bool
	ScalReads map[*Var]bool
	ScalWrite map[*Var]bool
}

// NewUseSets returns empty use sets.
func NewUseSets() *UseSets {
	return &UseSets{
		MatReads:  map[*Var]bool{},
		MatWrites: map[*Var]bool{},
		ScalReads: map[*Var]bool{},
		ScalWrite: map[*Var]bool{},
	}
}

// AddExprUses records the variables read by one evaluation of e.
func (u *UseSets) AddExprUses(e Expr) {
	WalkExprs(e, func(sub Expr) {
		switch x := sub.(type) {
		case *VarRef:
			u.ScalReads[x.V] = true
		case *Index:
			u.MatReads[x.V] = true
		}
	})
}

// Union merges other into u.
func (u *UseSets) Union(other *UseSets) {
	for v := range other.MatReads {
		u.MatReads[v] = true
	}
	for v := range other.MatWrites {
		u.MatWrites[v] = true
	}
	for v := range other.ScalReads {
		u.ScalReads[v] = true
	}
	for v := range other.ScalWrite {
		u.ScalWrite[v] = true
	}
}

// ComputeUses returns the may-read / may-write sets of a statement region.
func ComputeUses(stmts []Stmt) *UseSets {
	u := NewUseSets()
	WalkStmts(stmts, func(s Stmt) bool {
		switch st := s.(type) {
		case *AssignScalar:
			u.AddExprUses(st.Src)
			u.ScalWrite[st.Dst] = true
		case *Store:
			for _, ix := range st.Idx {
				u.AddExprUses(ix)
			}
			u.AddExprUses(st.Src)
			u.MatWrites[st.Dst] = true
		case *For:
			u.AddExprUses(st.Lo)
			u.AddExprUses(st.Step)
			u.AddExprUses(st.Hi)
			u.ScalWrite[st.IVar] = true
		case *While:
			u.AddExprUses(st.Cond)
		case *If:
			u.AddExprUses(st.Cond)
		}
		return true
	})
	return u
}

// Conflicts reports whether two regions have a data dependence at
// variable granularity (read/write or write/write overlap on any matrix
// buffer or scalar register).
func Conflicts(a, b *UseSets) bool {
	for v := range a.MatWrites {
		if b.MatReads[v] || b.MatWrites[v] {
			return true
		}
	}
	for v := range b.MatWrites {
		if a.MatReads[v] {
			return true
		}
	}
	for v := range a.ScalWrite {
		if b.ScalReads[v] || b.ScalWrite[v] {
			return true
		}
	}
	for v := range b.ScalWrite {
		if a.ScalReads[v] {
			return true
		}
	}
	return false
}

// AccessCounts is a static worst-case count of element accesses per
// matrix variable for one execution of a statement region: loop bodies
// multiply by the loop's trip count (or @bound), if-branches take the
// per-variable maximum of the two sides.
type AccessCounts struct {
	Reads  map[*Var]int64
	Writes map[*Var]int64
}

// NewAccessCounts returns empty counts.
func NewAccessCounts() *AccessCounts {
	return &AccessCounts{Reads: map[*Var]int64{}, Writes: map[*Var]int64{}}
}

// Total returns reads+writes for variable v.
func (c *AccessCounts) Total(v *Var) int64 { return c.Reads[v] + c.Writes[v] }

// TotalAll sums all counted accesses.
func (c *AccessCounts) TotalAll() int64 {
	var n int64
	for _, k := range c.Reads {
		n += k
	}
	for _, k := range c.Writes {
		n += k
	}
	return n
}

func (c *AccessCounts) scale(f int64) {
	for v := range c.Reads {
		c.Reads[v] *= f
	}
	for v := range c.Writes {
		c.Writes[v] *= f
	}
}

func (c *AccessCounts) add(other *AccessCounts) {
	for v, k := range other.Reads {
		c.Reads[v] += k
	}
	for v, k := range other.Writes {
		c.Writes[v] += k
	}
}

// maxInto folds other into c taking per-variable maxima.
func (c *AccessCounts) maxInto(other *AccessCounts) *AccessCounts {
	out := NewAccessCounts()
	keys := map[*Var]bool{}
	for v := range c.Reads {
		keys[v] = true
	}
	for v := range other.Reads {
		keys[v] = true
	}
	for v := range keys {
		a, b := c.Reads[v], other.Reads[v]
		if b > a {
			a = b
		}
		if a > 0 {
			out.Reads[v] = a
		}
	}
	keys = map[*Var]bool{}
	for v := range c.Writes {
		keys[v] = true
	}
	for v := range other.Writes {
		keys[v] = true
	}
	for v := range keys {
		a, b := c.Writes[v], other.Writes[v]
		if b > a {
			a = b
		}
		if a > 0 {
			out.Writes[v] = a
		}
	}
	return out
}

func exprAccessCounts(e Expr, c *AccessCounts) {
	WalkExprs(e, func(sub Expr) {
		if ix, ok := sub.(*Index); ok {
			c.Reads[ix.V]++
		}
	})
}

// CountAccesses computes worst-case element access counts for a region.
func CountAccesses(stmts []Stmt) *AccessCounts {
	total := NewAccessCounts()
	for _, s := range stmts {
		total.add(countStmtAccesses(s))
	}
	return total
}

func countStmtAccesses(s Stmt) *AccessCounts {
	c := NewAccessCounts()
	switch st := s.(type) {
	case *AssignScalar:
		exprAccessCounts(st.Src, c)
	case *Store:
		for _, ix := range st.Idx {
			exprAccessCounts(ix, c)
		}
		exprAccessCounts(st.Src, c)
		c.Writes[st.Dst]++
	case *For:
		exprAccessCounts(st.Lo, c)
		exprAccessCounts(st.Step, c)
		exprAccessCounts(st.Hi, c)
		body := CountAccesses(st.Body)
		body.scale(int64(st.Trip))
		c.add(body)
	case *While:
		iter := NewAccessCounts()
		exprAccessCounts(st.Cond, iter)
		iter.add(CountAccesses(st.Body))
		iter.scale(int64(st.Bound))
		// The condition is evaluated once more on exit.
		exprAccessCounts(st.Cond, iter)
		c.add(iter)
	case *If:
		exprAccessCounts(st.Cond, c)
		thenC := CountAccesses(st.Then)
		elseC := CountAccesses(st.Else)
		c.add(thenC.maxInto(elseC))
	}
	return c
}
