package ir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"argo/internal/scil"
)

// compile parses, checks and lowers src for entry with the given arg specs.
func compile(t *testing.T, src, entry string, args ...ArgSpec) *Program {
	t.Helper()
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := scil.Check(p, scil.CheckWCET); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	prog, err := Lower(p, entry, args)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

// assertEquiv runs the scil interpreter and the IR interpreter on the same
// inputs and requires identical results.
func assertEquiv(t *testing.T, src, entry string, specs []ArgSpec, inputs [][]float64) {
	t.Helper()
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := scil.Check(p, scil.CheckWCET); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	prog, err := Lower(p, entry, specs)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	// scil reference run.
	sargs := make([]scil.Value, len(specs))
	for i, sp := range specs {
		if sp.Scalar {
			sargs[i] = scil.Scalar(inputs[i][0])
		} else {
			sargs[i] = scil.MatrixOf(sp.Rows, sp.Cols, inputs[i])
		}
	}
	want, err := scil.NewInterp(p).Call(entry, sargs...)
	if err != nil {
		t.Fatalf("scil run: %v", err)
	}
	got, err := NewExec(prog, nil).Run(inputs)
	if err != nil {
		t.Fatalf("ir run: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("result count: ir %d vs scil %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		g := got[i]
		if len(g) != w.Len() {
			t.Fatalf("result %d: ir %d elems vs scil %d", i, len(g), w.Len())
		}
		for r := 1; r <= w.Rows; r++ {
			for c := 1; c <= w.Cols; c++ {
				wv := w.At(r, c)
				gv := g[(r-1)*w.Cols+(c-1)]
				if math.IsNaN(wv) && math.IsNaN(gv) {
					continue
				}
				if math.Abs(wv-gv) > 1e-9*(1+math.Abs(wv)) {
					t.Fatalf("result %d element (%d,%d): ir %g vs scil %g", i, r, c, gv, wv)
				}
			}
		}
	}
}

func TestLowerScalarArithmetic(t *testing.T) {
	src := `
function r = f(a, b)
  r = (a + b) * 2 - b / 4 + a ^ 2
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg(), ScalarArg()}, [][]float64{{3}, {8}})
}

func TestLowerForLoop(t *testing.T) {
	src := `
function r = f(x)
  r = 0
  for i = 1:50
    r = r + i * x
  end
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{2.5}})
}

func TestLowerConstSpecializedBounds(t *testing.T) {
	src := `
function r = f(n, x)
  r = 0
  for i = 1:n
    r = r + x
  end
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ConstArg(17), ScalarArg()}, [][]float64{{17}, {3}})
}

func TestLowerNonConstBoundRejected(t *testing.T) {
	src := `
function r = f(n)
  r = 0
  for i = 1:n
    r = r + i
  end
endfunction`
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Lower(p, "f", []ArgSpec{ScalarArg()})
	if err == nil || !strings.Contains(err.Error(), "compile-time constants") {
		t.Fatalf("err = %v", err)
	}
}

func TestLowerMatrixElementwise(t *testing.T) {
	src := `
function r = f(a, b)
  c = a + b .* a - 3
  r = sum(c)
endfunction`
	assertEquiv(t, src, "f",
		[]ArgSpec{MatrixArg(2, 3), MatrixArg(2, 3)},
		[][]float64{{1, 2, 3, 4, 5, 6}, {10, 20, 30, 40, 50, 60}})
}

func TestLowerMatMul(t *testing.T) {
	src := `
function r = f(a, b)
  c = a * b
  r = c(1, 1) + c(2, 2) * 1000
endfunction`
	assertEquiv(t, src, "f",
		[]ArgSpec{MatrixArg(2, 2), MatrixArg(2, 2)},
		[][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}})
}

func TestLowerMatMulRect(t *testing.T) {
	src := `
function r = f(a, b)
  c = a * b
  r = sum(c)
endfunction`
	assertEquiv(t, src, "f",
		[]ArgSpec{MatrixArg(2, 3), MatrixArg(3, 4)},
		[][]float64{
			{1, 2, 3, 4, 5, 6},
			{1, 0, 2, 0, 0, 1, 0, 2, 2, 0, 1, 0},
		})
}

func TestLowerZerosOnesEye(t *testing.T) {
	src := `
function r = f(x)
  z = zeros(3, 4)
  o = ones(2, 2)
  e = eye(3, 3)
  z(2, 2) = x
  r = sum(z) + sum(o) * 10 + sum(e) * 100
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{7}})
}

func TestLowerMatrixLiteralAndIndexing(t *testing.T) {
	src := `
function r = f(x)
  a = [1, 2, 3; 4, 5, 6]
  r = a(2, 3) * 10 + a(1, 2) + x
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{0.5}})
}

func TestLowerLinearIndexingColumnMajor(t *testing.T) {
	src := `
function r = f(x)
  a = [1, 2; 3, 4]
  v = [10, 20, 30]
  r = a(2) * 100 + a(3) * 10 + v(2) + x
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{0}})
}

func TestLowerLinearIndexedStore(t *testing.T) {
	src := `
function r = f(x)
  a = zeros(2, 2)
  a(3) = x
  r = a(1, 2)
endfunction`
	// Column-major: linear 3 on a 2x2 is row 1, col 2.
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{42}})
}

func TestLowerReductions(t *testing.T) {
	src := `
function r = f(m)
  r = sum(m) + prod(m) + mean(m) * 10 + minval(m) * 100 + maxval(m) * 1000
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{MatrixArg(2, 2)}, [][]float64{{1, 2, 3, 4}})
}

func TestLowerElementwiseBuiltins(t *testing.T) {
	src := `
function r = f(m)
  a = abs(m)
  s = sqrt(a)
  r = sum(s) + maxval(max(m, 0))
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{MatrixArg(2, 3)},
		[][]float64{{-1, 4, -9, 16, -25, 36}})
}

func TestLowerWhileLoop(t *testing.T) {
	src := `
function r = f(x)
  r = 0
  //@bound 64
  while x > 1
    x = x / 2
    r = r + 1
  end
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{1000}})
}

func TestLowerIfElse(t *testing.T) {
	src := `
function r = f(x)
  if x > 10 then
    r = x * 2
  elseif x > 5 then
    r = x * 3
  else
    r = -x
  end
endfunction`
	for _, in := range []float64{0, 6, 20} {
		assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{in}})
	}
}

func TestLowerBreakContinue(t *testing.T) {
	src := `
function r = f(x)
  r = 0
  for i = 1:20
    if i == 13 then
      break
    end
    if modulo(i, 2) == 0 then
      continue
    end
    r = r + i
  end
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{0}})
}

func TestLowerInlineUserCalls(t *testing.T) {
	src := `
function y = sq(v)
  y = v * v
endfunction

function [s, m] = stats(v)
  s = sum(v)
  m = s / length(v)
endfunction

function r = f(a)
  v = zeros(1, 4)
  for i = 1:4
    v(i) = sq(i) + a
  end
  [s, m] = stats(v)
  r = s * 10 + m
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{2}})
}

func TestLowerInlineMatrixParamCopySemantics(t *testing.T) {
	// g writes its parameter; the caller's matrix must not change.
	src := `
function y = g(m)
  m(1, 1) = 999
  y = m(1, 1)
endfunction

function r = f(a)
  v = [1, 2; 3, 4]
  y = g(v)
  r = y * 10 + v(1, 1) + a
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{0}})
}

func TestLowerValueSemanticsOnCopy(t *testing.T) {
	// x = y must copy: later writes to y do not affect x.
	src := `
function r = f(a)
  y = [1, 2; 3, 4]
  x = y
  y(1, 1) = 100
  r = x(1, 1) * 1000 + y(1, 1) + a
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{0}})
}

func TestLowerRangeMaterialization(t *testing.T) {
	src := `
function r = f(a)
  v = 1:10
  w = 0:0.5:2
  r = sum(v) + sum(w) * 100 + a
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{ScalarArg()}, [][]float64{{1}})
}

func TestLowerSizeAndLengthFold(t *testing.T) {
	src := `
function r = f(m)
  r = 0
  for i = 1:size(m, 1)
    for j = 1:size(m, 2)
      r = r + m(i, j)
    end
  end
  r = r + length(m)
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{MatrixArg(3, 5)},
		[][]float64{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}})
}

func TestLowerMatrixConditionTruthiness(t *testing.T) {
	src := `
function r = f(m)
  r = 0
  if m > 0 then
    r = 1
  end
endfunction`
	assertEquiv(t, src, "f", []ArgSpec{MatrixArg(2, 2)}, [][]float64{{1, 2, 3, 4}})
	assertEquiv(t, src, "f", []ArgSpec{MatrixArg(2, 2)}, [][]float64{{1, 0, 3, 4}})
}

func TestLowerShapeChangeRejected(t *testing.T) {
	src := `
function r = f(x)
  m = zeros(2, 2)
  m = zeros(3, 3)
  r = sum(m) + x
endfunction`
	p, _ := scil.Parse(src)
	_, err := Lower(p, "f", []ArgSpec{ScalarArg()})
	if err == nil || !strings.Contains(err.Error(), "changes shape") {
		t.Fatalf("err = %v", err)
	}
}

func TestLowerWhileWithoutBoundRejected(t *testing.T) {
	src := `
function r = f(x)
  r = x
  while r > 1
    r = r / 2
  end
endfunction`
	p, _ := scil.Parse(src)
	_, err := Lower(p, "f", []ArgSpec{ScalarArg()})
	if err == nil || !strings.Contains(err.Error(), "@bound") {
		t.Fatalf("err = %v", err)
	}
}

func TestLowerTripCounts(t *testing.T) {
	prog := compile(t, `
function r = f(x)
  r = 0
  for i = 1:10
    for j = 1:2:9
      r = r + x
    end
  end
endfunction`, "f", ScalarArg())
	var trips []int
	WalkStmts(prog.Entry.Body, func(s Stmt) bool {
		if f, ok := s.(*For); ok {
			trips = append(trips, f.Trip)
		}
		return true
	})
	if len(trips) != 2 || trips[0] != 10 || trips[1] != 5 {
		t.Fatalf("trips = %v", trips)
	}
}

func TestLowerDump(t *testing.T) {
	prog := compile(t, `
function r = f(x)
  r = 0
  for i = 1:3
    r = r + x * i
  end
endfunction`, "f", ScalarArg())
	d := prog.Dump()
	for _, want := range []string{"func f(", "for ", "(trip 3)", "end"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestLowerGaussEquivProperty(t *testing.T) {
	src := `
function r = f(x)
  r = 0
  for i = 1:40
    r = r + i * x
  end
endfunction`
	p, _ := scil.Parse(src)
	prog, err := Lower(p, "f", []ArgSpec{ScalarArg()})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		got, err := NewExec(prog, nil).Run([][]float64{{x}})
		if err != nil {
			return false
		}
		want := 0.0
		for i := 1; i <= 40; i++ {
			want += float64(i) * x
		}
		if math.IsInf(want, 0) || math.IsNaN(want) {
			return got[0][0] == want || (math.IsNaN(want) && math.IsNaN(got[0][0]))
		}
		return math.Abs(got[0][0]-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneStmtsIndependent(t *testing.T) {
	prog := compile(t, `
function r = f(x)
  r = 0
  for i = 1:5
    r = r + x
  end
endfunction`, "f", ScalarArg())
	orig := prog.Entry.Body
	cl := CloneStmts(orig)
	// Mutate the clone's loop trip and ensure the original is unchanged.
	for _, s := range cl {
		if f, ok := s.(*For); ok {
			f.Trip = 99
			f.Body = nil
		}
	}
	for _, s := range orig {
		if f, ok := s.(*For); ok {
			if f.Trip != 5 || len(f.Body) == 0 {
				t.Fatal("clone mutation leaked into original")
			}
		}
	}
}

func TestSubstituteVar(t *testing.T) {
	v := &Var{Name: "i", Scalar: true, Rows: 1, Cols: 1}
	w := &Var{Name: "m", Rows: 4, Cols: 4}
	e := &Bin{Op: OpAdd, X: &VarRef{V: v}, Y: &Index{V: w, Idx: []Expr{&VarRef{V: v}, &Const{Val: 2}}}}
	got := SubstituteVar(e, v, &Const{Val: 7})
	s := ExprString(got)
	if strings.Contains(s, "i") || !strings.Contains(s, "7") {
		t.Fatalf("substitute: %s", s)
	}
}

type countMeter struct {
	ops, reads, writes int
}

func (m *countMeter) Ops(n int)    { m.ops += n }
func (m *countMeter) Read(v *Var)  { m.reads++ }
func (m *countMeter) Write(v *Var) { m.writes++ }

func TestMeterCountsAccesses(t *testing.T) {
	prog := compile(t, `
function r = f(m)
  r = 0
  for i = 1:4
    for j = 1:4
      r = r + m(i, j)
    end
  end
endfunction`, "f", MatrixArg(4, 4))
	meter := &countMeter{}
	in := make([]float64, 16)
	if _, err := NewExec(prog, meter).Run([][]float64{in}); err != nil {
		t.Fatal(err)
	}
	if meter.reads != 16 {
		t.Fatalf("reads = %d, want 16", meter.reads)
	}
	if meter.writes != 0 {
		t.Fatalf("writes = %d, want 0", meter.writes)
	}
	if meter.ops == 0 {
		t.Fatal("no ops recorded")
	}
}

func TestMeterWriteCounts(t *testing.T) {
	prog := compile(t, `
function m = f(x)
  m = zeros(3, 3)
  for i = 1:3
    m(i, i) = x
  end
endfunction`, "f", ScalarArg())
	meter := &countMeter{}
	if _, err := NewExec(prog, meter).Run([][]float64{{5}}); err != nil {
		t.Fatal(err)
	}
	// 9 writes from zeros fill + 3 diagonal writes.
	if meter.writes != 12 {
		t.Fatalf("writes = %d, want 12", meter.writes)
	}
}

func TestTotalDataBytes(t *testing.T) {
	prog := compile(t, `
function r = f(a)
  m = zeros(10, 10)
  r = sum(m) + a
endfunction`, "f", ScalarArg())
	if got := prog.TotalDataBytes(); got < 800 {
		t.Fatalf("TotalDataBytes = %d, want >= 800", got)
	}
}
