package ir

import (
	"fmt"
	"math"

	"argo/internal/scil"
)

// ArgSpec describes one entry-point argument for lowering. Shapes must be
// compile-time constants; scalar arguments may additionally carry a known
// constant value (Const), which enables static loop bounds derived from
// them (specialization).
type ArgSpec struct {
	Rows, Cols int
	Scalar     bool
	Const      *float64
}

// ScalarArg describes a runtime scalar argument.
func ScalarArg() ArgSpec { return ArgSpec{Rows: 1, Cols: 1, Scalar: true} }

// ConstArg describes a scalar argument specialized to a known constant.
func ConstArg(v float64) ArgSpec {
	return ArgSpec{Rows: 1, Cols: 1, Scalar: true, Const: &v}
}

// MatrixArg describes a rows x cols matrix argument.
func MatrixArg(rows, cols int) ArgSpec { return ArgSpec{Rows: rows, Cols: cols} }

// Lower compiles the scil entry function (and transitively everything it
// calls, fully inlined) into an IR program. The scil program must already
// pass scil.Check in WCET mode.
func Lower(prog *scil.Program, entry string, args []ArgSpec) (*Program, error) {
	f := prog.Func(entry)
	if f == nil {
		return nil, fmt.Errorf("ir: entry function %q not found", entry)
	}
	if len(args) != len(f.Params) {
		return nil, fmt.Errorf("ir: entry %q has %d parameters, got %d arg specs", entry, len(f.Params), len(args))
	}
	lo := &lowerer{
		src: prog,
		out: &Program{},
	}
	lo.out.Entry = &Func{Name: entry}
	frame := lo.newFrame(entry)
	for i, pname := range f.Params {
		spec := args[i]
		v := &Var{Name: lo.unique(pname), Scalar: spec.Scalar, Rows: spec.Rows, Cols: spec.Cols, Param: true}
		if spec.Scalar {
			v.Rows, v.Cols = 1, 1
			v.Storage = StorageReg
		} else {
			v.Storage = StorageShared
		}
		lo.out.NewVar(v)
		b := &binding{v: v}
		if spec.Const != nil {
			if !spec.Scalar {
				return nil, fmt.Errorf("ir: constant arg spec only valid for scalars (param %q)", pname)
			}
			c := *spec.Const
			b.cval = &c
		}
		frame.vars[pname] = b
		lo.out.Entry.Params = append(lo.out.Entry.Params, v)
	}
	body := &[]Stmt{}
	lo.blocks = append(lo.blocks, body)
	if err := lo.stmts(f.Body, frame, true); err != nil {
		return nil, err
	}
	lo.out.Entry.Body = *body
	for _, rname := range f.Results {
		b, ok := frame.vars[rname]
		if !ok {
			return nil, fmt.Errorf("ir: entry result %q never assigned", rname)
		}
		b.v.Result = true
		lo.out.Entry.Results = append(lo.out.Entry.Results, b.v)
	}
	return lo.out, nil
}

// binding associates a scil variable name with its IR variable and, for
// scalars, an optional compile-time constant value.
type binding struct {
	v    *Var
	cval *float64
}

// frame is one (inlined) function activation during lowering.
type frame struct {
	name string
	vars map[string]*binding
}

// operand is the result of lowering an expression: either a scalar
// expression (expr != nil, possibly with a known constant) or a matrix
// variable.
type operand struct {
	expr Expr
	cval *float64
	mvar *Var
}

func (o operand) scalar() bool { return o.expr != nil }

func (o operand) rows() int {
	if o.scalar() {
		return 1
	}
	return o.mvar.Rows
}

func (o operand) cols() int {
	if o.scalar() {
		return 1
	}
	return o.mvar.Cols
}

func constOp(v float64) operand {
	c := v
	return operand{expr: &Const{Val: v}, cval: &c}
}

type lowerer struct {
	src    *scil.Program
	out    *Program
	blocks []*[]Stmt
	uniq   map[string]int
	depth  int
}

func (lo *lowerer) newFrame(name string) *frame {
	return &frame{name: name, vars: map[string]*binding{}}
}

// unique produces a program-unique IR variable name from a source name.
func (lo *lowerer) unique(name string) string {
	if lo.uniq == nil {
		lo.uniq = map[string]int{}
	}
	n := lo.uniq[name]
	lo.uniq[name] = n + 1
	if n == 0 {
		return name
	}
	return fmt.Sprintf("%s.%d", name, n)
}

func (lo *lowerer) emit(s Stmt) {
	blk := lo.blocks[len(lo.blocks)-1]
	*blk = append(*blk, s)
}

// inBlock lowers fn with a fresh statement block and returns it.
func (lo *lowerer) inBlock(fn func() error) ([]Stmt, error) {
	blk := &[]Stmt{}
	lo.blocks = append(lo.blocks, blk)
	err := fn()
	lo.blocks = lo.blocks[:len(lo.blocks)-1]
	if err != nil {
		return nil, err
	}
	return *blk, nil
}

func lowErr(pos scil.Pos, format string, args ...any) error {
	return fmt.Errorf("ir:%s: %s", pos, fmt.Sprintf(format, args...))
}

// --- statements -------------------------------------------------------------

func (lo *lowerer) stmts(stmts []scil.Stmt, fr *frame, topLevel bool) error {
	for i, s := range stmts {
		if _, ok := s.(*scil.ReturnStmt); ok {
			if topLevel && i == len(stmts)-1 {
				return nil // trailing return is a no-op
			}
			return lowErr(s.StmtPos(), "return is only supported as the final statement of a function in the compiled subset")
		}
		if err := lo.stmt(s, fr); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) stmt(s scil.Stmt, fr *frame) error {
	switch st := s.(type) {
	case *scil.AssignStmt:
		return lo.assign(st, fr)
	case *scil.ExprStmt:
		_, err := lo.expr(st.X, fr)
		return err
	case *scil.ForStmt:
		return lo.forStmt(st, fr)
	case *scil.WhileStmt:
		return lo.whileStmt(st, fr)
	case *scil.IfStmt:
		return lo.ifStmt(st, fr)
	case *scil.BreakStmt:
		lo.emit(&Break{})
		return nil
	case *scil.ContinueStmt:
		lo.emit(&Continue{})
		return nil
	}
	return lowErr(s.StmtPos(), "unsupported statement %T", s)
}

func (lo *lowerer) assign(st *scil.AssignStmt, fr *frame) error {
	if len(st.LHS) > 1 {
		call := st.RHS.(*scil.CallExpr)
		results, err := lo.inlineCall(call, fr, len(st.LHS))
		if err != nil {
			return err
		}
		for i, lv := range st.LHS {
			if err := lo.bindValue(lv.Name, results[i], fr, lv.Pos); err != nil {
				return err
			}
		}
		return nil
	}
	lv := st.LHS[0]
	if lv.Index != nil {
		return lo.indexedAssign(lv, st.RHS, fr)
	}
	rhs, err := lo.expr(st.RHS, fr)
	if err != nil {
		return err
	}
	return lo.bindValue(lv.Name, rhs, fr, lv.Pos)
}

// bindValue binds name to the value of op, emitting copies as required.
func (lo *lowerer) bindValue(name string, op operand, fr *frame, pos scil.Pos) error {
	existing := fr.vars[name]
	if op.scalar() {
		if existing != nil && !existing.v.Scalar {
			return lowErr(pos, "variable %q changes from matrix to scalar", name)
		}
		var v *Var
		if existing != nil {
			v = existing.v
		} else {
			v = lo.out.NewVar(&Var{Name: lo.unique(name), Scalar: true, Rows: 1, Cols: 1, Storage: StorageReg})
			fr.vars[name] = &binding{v: v}
		}
		lo.emit(&AssignScalar{Dst: v, Src: op.expr})
		b := fr.vars[name]
		b.cval = nil
		if op.cval != nil {
			c := *op.cval
			b.cval = &c
		}
		return nil
	}
	// Matrix value.
	if existing != nil {
		if existing.v.Scalar {
			return lowErr(pos, "variable %q changes from scalar to matrix", name)
		}
		if existing.v.Rows != op.mvar.Rows || existing.v.Cols != op.mvar.Cols {
			return lowErr(pos, "variable %q changes shape from %dx%d to %dx%d",
				name, existing.v.Rows, existing.v.Cols, op.mvar.Rows, op.mvar.Cols)
		}
		if existing.v == op.mvar {
			return nil // self-assignment
		}
		lo.emitCopy(existing.v, op.mvar)
		return nil
	}
	// Fresh name: alias temporaries, copy named variables.
	if lo.isTemp(op.mvar) {
		op.mvar.tempOwner = false
		op.mvar.Name = lo.unique(name)
		fr.vars[name] = &binding{v: op.mvar}
		return nil
	}
	dst := lo.out.NewVar(&Var{
		Name: lo.unique(name), Rows: op.mvar.Rows, Cols: op.mvar.Cols,
		Storage: StorageShared,
	})
	fr.vars[name] = &binding{v: dst}
	lo.emitCopy(dst, op.mvar)
	return nil
}

// isTemp reports whether v is a lowering-generated temporary that no scil
// name currently refers to — such values may be adopted without a copy.
func (lo *lowerer) isTemp(v *Var) bool {
	return v.tempOwner
}

// emitCopy emits element-by-element copy loops dst <- src.
func (lo *lowerer) emitCopy(dst, src *Var) {
	dst2, src2 := dst, src
	lo.emitElementwise(dst2, func(i, j Expr) Expr {
		return &Index{V: src2, Idx: []Expr{i, j}}
	})
}

// emitElementwise emits a dense 2-D loop nest writing every element of dst
// with fn(i, j).
func (lo *lowerer) emitElementwise(dst *Var, fn func(i, j Expr) Expr) {
	iv := lo.freshIVar("i")
	jv := lo.freshIVar("j")
	inner := &For{
		IVar: jv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(dst.Cols)},
		Trip: dst.Cols,
		Body: []Stmt{&Store{
			Dst: dst,
			Idx: []Expr{&VarRef{V: iv}, &VarRef{V: jv}},
			Src: fn(&VarRef{V: iv}, &VarRef{V: jv}),
		}},
	}
	outer := &For{
		IVar: iv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(dst.Rows)},
		Trip: dst.Rows,
		Body: []Stmt{inner},
	}
	lo.emit(outer)
}

func (lo *lowerer) freshIVar(prefix string) *Var {
	return lo.out.NewVar(&Var{Name: lo.unique("%" + prefix), Scalar: true, Rows: 1, Cols: 1, Storage: StorageReg})
}

// freshMatrix allocates a lowering temporary matrix.
func (lo *lowerer) freshMatrix(rows, cols int) *Var {
	v := lo.out.FreshVar("m", rows, cols, false)
	v.tempOwner = true
	return v
}

func (lo *lowerer) indexedAssign(lv *scil.LValue, rhs scil.Expr, fr *frame) error {
	b, ok := fr.vars[lv.Name]
	if !ok {
		return lowErr(lv.Pos, "indexed assignment to undefined variable %q (pre-allocate with zeros)", lv.Name)
	}
	if b.v.Scalar {
		return lowErr(lv.Pos, "cannot index scalar variable %q", lv.Name)
	}
	rop, err := lo.expr(rhs, fr)
	if err != nil {
		return err
	}
	if !rop.scalar() {
		return lowErr(lv.Pos, "indexed assignment requires a scalar right-hand side")
	}
	idx, err := lo.lowerIndices(lv.Index, b.v, fr, lv.Pos)
	if err != nil {
		return err
	}
	lo.emit(&Store{Dst: b.v, Idx: idx, Src: rop.expr})
	return nil
}

// lowerIndices lowers subscripts and converts linear indexing into 2-D
// indexing using the static shape.
func (lo *lowerer) lowerIndices(subs []scil.Expr, v *Var, fr *frame, pos scil.Pos) ([]Expr, error) {
	ops := make([]operand, len(subs))
	for i, s := range subs {
		op, err := lo.expr(s, fr)
		if err != nil {
			return nil, err
		}
		if !op.scalar() {
			return nil, lowErr(pos, "subscripts must be scalar")
		}
		ops[i] = op
	}
	switch len(ops) {
	case 2:
		return []Expr{ops[0].expr, ops[1].expr}, nil
	case 1:
		k := ops[0]
		switch {
		case v.Rows == 1: // row vector: a(k) == a(1, k)
			return []Expr{&Const{Val: 1}, k.expr}, nil
		case v.Cols == 1: // column vector: a(k) == a(k, 1)
			return []Expr{k.expr, &Const{Val: 1}}, nil
		default:
			// General column-major linear indexing:
			//   row = modulo(k-1, rows) + 1 ; col = floor((k-1)/rows) + 1
			km1 := lo.materialize(&Bin{Op: OpSub, X: k.expr, Y: &Const{Val: 1}})
			rows := &Const{Val: float64(v.Rows)}
			row := &Bin{Op: OpAdd, X: &Intrinsic{Name: "modulo", Args: []Expr{km1, rows}}, Y: &Const{Val: 1}}
			col := &Bin{Op: OpAdd,
				X: &Intrinsic{Name: "floor", Args: []Expr{&Bin{Op: OpDiv, X: CloneExpr(km1), Y: &Const{Val: float64(v.Rows)}}}},
				Y: &Const{Val: 1}}
			return []Expr{row, col}, nil
		}
	}
	return nil, lowErr(pos, "indexing supports 1 or 2 subscripts, got %d", len(ops))
}

// materialize binds a non-trivial scalar expression to a fresh register so
// it is evaluated once, and returns a reference to it.
func (lo *lowerer) materialize(e Expr) Expr {
	switch e.(type) {
	case *Const, *VarRef:
		return e
	}
	t := lo.out.NewVar(&Var{Name: lo.unique("%s"), Scalar: true, Rows: 1, Cols: 1, Storage: StorageReg})
	lo.emit(&AssignScalar{Dst: t, Src: e})
	return &VarRef{V: t}
}

func (lo *lowerer) forStmt(st *scil.ForStmt, fr *frame) error {
	loOp, err := lo.expr(st.Lo, fr)
	if err != nil {
		return err
	}
	hiOp, err := lo.expr(st.Hi, fr)
	if err != nil {
		return err
	}
	stepOp := constOp(1)
	if st.Step != nil {
		stepOp, err = lo.expr(st.Step, fr)
		if err != nil {
			return err
		}
	}
	for _, op := range []operand{loOp, hiOp, stepOp} {
		if !op.scalar() {
			return lowErr(st.Pos, "for-loop bounds must be scalar")
		}
	}
	if loOp.cval == nil || hiOp.cval == nil || stepOp.cval == nil {
		return lowErr(st.Pos, "for-loop bounds must be compile-time constants for WCET analysis (loop over %q)", st.Var)
	}
	step := *stepOp.cval
	if step == 0 {
		return lowErr(st.Pos, "for-loop step is zero")
	}
	trip := int(math.Floor((*hiOp.cval-*loOp.cval)/step)) + 1
	if trip < 0 {
		trip = 0
	}
	// Bounds are compile-time constants: materialize them as constants so
	// downstream loop transformations (unroll, split, chunking, tiling)
	// see them structurally.
	loOp.expr = &Const{Val: *loOp.cval}
	hiOp.expr = &Const{Val: *hiOp.cval}
	stepOp.expr = &Const{Val: step}
	// Bind the induction variable.
	b, ok := fr.vars[st.Var]
	if !ok {
		v := lo.out.NewVar(&Var{Name: lo.unique(st.Var), Scalar: true, Rows: 1, Cols: 1, Storage: StorageReg})
		b = &binding{v: v}
		fr.vars[st.Var] = b
	} else if !b.v.Scalar {
		return lowErr(st.Pos, "loop variable %q was a matrix", st.Var)
	}
	b.cval = nil
	lo.demoteAssigned(st.Body, fr)
	body, err := lo.inBlock(func() error { return lo.stmts(st.Body, fr, false) })
	if err != nil {
		return err
	}
	lo.emit(&For{
		IVar: b.v, Lo: loOp.expr, Step: stepOp.expr, Hi: hiOp.expr,
		Trip: trip, Body: body,
	})
	return nil
}

func (lo *lowerer) whileStmt(st *scil.WhileStmt, fr *frame) error {
	if st.Bound <= 0 {
		return lowErr(st.Pos, "while loop requires a //@bound N pragma for WCET analysis")
	}
	lo.demoteAssigned(st.Body, fr)
	condOp, err := lo.expr(st.Cond, fr)
	if err != nil {
		return err
	}
	cond, err := lo.truthiness(condOp, st.Pos)
	if err != nil {
		return err
	}
	body, err := lo.inBlock(func() error { return lo.stmts(st.Body, fr, false) })
	if err != nil {
		return err
	}
	lo.emit(&While{Cond: cond, Bound: st.Bound, Body: body})
	return nil
}

// truthiness converts an operand to a scalar condition expression
// (matrices use Scilab all-nonzero semantics via a reduction loop).
func (lo *lowerer) truthiness(op operand, pos scil.Pos) (Expr, error) {
	if op.scalar() {
		return op.expr, nil
	}
	acc := lo.out.NewVar(&Var{Name: lo.unique("%all"), Scalar: true, Rows: 1, Cols: 1, Storage: StorageReg})
	lo.emit(&AssignScalar{Dst: acc, Src: &Const{Val: 1}})
	m := op.mvar
	iv := lo.freshIVar("i")
	jv := lo.freshIVar("j")
	upd := &AssignScalar{Dst: acc, Src: &Bin{
		Op: OpAnd,
		X:  &VarRef{V: acc},
		Y:  &Bin{Op: OpNe, X: &Index{V: m, Idx: []Expr{&VarRef{V: iv}, &VarRef{V: jv}}}, Y: &Const{Val: 0}},
	}}
	inner := &For{IVar: jv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(m.Cols)}, Trip: m.Cols, Body: []Stmt{upd}}
	lo.emit(&For{IVar: iv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(m.Rows)}, Trip: m.Rows, Body: []Stmt{inner}})
	return &VarRef{V: acc}, nil
}

func (lo *lowerer) ifStmt(st *scil.IfStmt, fr *frame) error {
	condOp, err := lo.expr(st.Cond, fr)
	if err != nil {
		return err
	}
	cond, err := lo.truthiness(condOp, st.Pos)
	if err != nil {
		return err
	}
	// Constants assigned in either branch become unknown afterwards; the
	// branches themselves may still fold internally.
	snapshot := func() map[string]*float64 {
		m := make(map[string]*float64, len(fr.vars))
		for n, b := range fr.vars {
			m[n] = b.cval
		}
		return m
	}
	before := snapshot()
	thenB, err := lo.inBlock(func() error { return lo.stmts(st.Then, fr, false) })
	if err != nil {
		return err
	}
	afterThen := snapshot()
	// Restore pre-branch constants for the else branch.
	for n, b := range fr.vars {
		if c, ok := before[n]; ok {
			b.cval = c
		} else {
			b.cval = nil
		}
	}
	elseB, err := lo.inBlock(func() error { return lo.stmts(st.Else, fr, false) })
	if err != nil {
		return err
	}
	// Merge: a constant survives only if both paths agree.
	for n, b := range fr.vars {
		tc := afterThen[n]
		ec := b.cval
		if tc != nil && ec != nil && *tc == *ec {
			c := *tc
			b.cval = &c
		} else {
			b.cval = nil
		}
	}
	lo.emit(&If{Cond: cond, Then: thenB, Else: elseB})
	return nil
}

// demoteAssigned clears constant tracking for every frame variable that
// the given scil statements may assign (used before loop bodies).
func (lo *lowerer) demoteAssigned(stmts []scil.Stmt, fr *frame) {
	names := map[string]bool{}
	var walk func(ss []scil.Stmt)
	walk = func(ss []scil.Stmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case *scil.AssignStmt:
				for _, lv := range st.LHS {
					names[lv.Name] = true
				}
			case *scil.ForStmt:
				names[st.Var] = true
				walk(st.Body)
			case *scil.WhileStmt:
				walk(st.Body)
			case *scil.IfStmt:
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(stmts)
	for n := range names {
		if b, ok := fr.vars[n]; ok {
			b.cval = nil
		}
	}
}
