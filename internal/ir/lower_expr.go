package ir

import (
	"fmt"
	"math"

	"argo/internal/scil"
)

var binOpMap = map[scil.Kind]BinOp{
	scil.PLUS: OpAdd, scil.MINUS: OpSub, scil.STAR: OpMul, scil.DOTSTAR: OpMul,
	scil.SLASH: OpDiv, scil.DOTSLASH: OpDiv, scil.CARET: OpPow,
	scil.EQ: OpEq, scil.NEQ: OpNe, scil.LT: OpLt, scil.LE: OpLe,
	scil.GT: OpGt, scil.GE: OpGe, scil.AND: OpAnd, scil.OR: OpOr,
}

// FoldBin evaluates a binary op on constants.
func FoldBin(op BinOp, a, b float64) float64 {
	t := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return a / b
	case OpPow:
		return math.Pow(a, b)
	case OpEq:
		return t(a == b)
	case OpNe:
		return t(a != b)
	case OpLt:
		return t(a < b)
	case OpLe:
		return t(a <= b)
	case OpGt:
		return t(a > b)
	case OpGe:
		return t(a >= b)
	case OpAnd:
		return t(a != 0 && b != 0)
	case OpOr:
		return t(a != 0 || b != 0)
	}
	panic(fmt.Sprintf("ir.FoldBin: unknown op %v", op))
}

// expr lowers a scil expression to an operand, emitting statements for any
// matrix materialization required.
func (lo *lowerer) expr(e scil.Expr, fr *frame) (operand, error) {
	switch x := e.(type) {
	case *scil.NumberLit:
		return constOp(x.Value), nil
	case *scil.StringLit:
		return operand{}, lowErr(x.Pos, "string values are not supported in compiled code")
	case *scil.Ident:
		b, ok := fr.vars[x.Name]
		if !ok {
			return operand{}, lowErr(x.Pos, "undefined variable %q", x.Name)
		}
		if b.v.Scalar {
			op := operand{expr: &VarRef{V: b.v}}
			if b.cval != nil {
				c := *b.cval
				op.cval = &c
			}
			return op, nil
		}
		return operand{mvar: b.v}, nil
	case *scil.UnExpr:
		return lo.unExpr(x, fr)
	case *scil.BinExpr:
		return lo.binExpr(x, fr)
	case *scil.MatrixLit:
		return lo.matrixLit(x, fr)
	case *scil.RangeExpr:
		return lo.rangeExpr(x, fr)
	case *scil.CallExpr:
		return lo.callExpr(x, fr)
	}
	return operand{}, lowErr(e.ExprPos(), "unsupported expression %T", e)
}

func (lo *lowerer) unExpr(x *scil.UnExpr, fr *frame) (operand, error) {
	op, err := lo.expr(x.X, fr)
	if err != nil {
		return operand{}, err
	}
	irop := OpNeg
	if x.Op == scil.NOT {
		irop = OpNot
	}
	if op.scalar() {
		out := operand{expr: &Un{Op: irop, X: op.expr}}
		if op.cval != nil {
			var c float64
			if irop == OpNeg {
				c = -*op.cval
			} else if *op.cval == 0 {
				c = 1
			}
			out.cval = &c
			out.expr = &Const{Val: c}
		}
		return out, nil
	}
	dst := lo.freshMatrix(op.rows(), op.cols())
	src := op.mvar
	lo.emitElementwise(dst, func(i, j Expr) Expr {
		return &Un{Op: irop, X: &Index{V: src, Idx: []Expr{i, j}}}
	})
	return operand{mvar: dst}, nil
}

func (lo *lowerer) binExpr(x *scil.BinExpr, fr *frame) (operand, error) {
	a, err := lo.expr(x.X, fr)
	if err != nil {
		return operand{}, err
	}
	b, err := lo.expr(x.Y, fr)
	if err != nil {
		return operand{}, err
	}
	op, ok := binOpMap[x.Op]
	if !ok {
		return operand{}, lowErr(x.Pos, "unsupported operator %s", x.Op)
	}
	if a.scalar() && b.scalar() {
		if a.cval != nil && b.cval != nil {
			return constOp(FoldBin(op, *a.cval, *b.cval)), nil
		}
		return operand{expr: &Bin{Op: op, X: a.expr, Y: b.expr}}, nil
	}
	// True matrix product.
	if x.Op == scil.STAR && !a.scalar() && !b.scalar() {
		return lo.matMul(a, b, x.Pos)
	}
	return lo.broadcast(op, a, b, x.Pos)
}

// broadcast emits an elementwise loop applying op with scalar broadcasting.
func (lo *lowerer) broadcast(op BinOp, a, b operand, pos scil.Pos) (operand, error) {
	rows, cols := a.rows(), a.cols()
	if a.scalar() {
		rows, cols = b.rows(), b.cols()
	} else if !b.scalar() && (a.rows() != b.rows() || a.cols() != b.cols()) {
		return operand{}, lowErr(pos, "shape mismatch %dx%d vs %dx%d", a.rows(), a.cols(), b.rows(), b.cols())
	}
	// Hoist non-trivial scalar operands so they are evaluated once.
	if a.scalar() {
		a.expr = lo.materialize(a.expr)
	}
	if b.scalar() {
		b.expr = lo.materialize(b.expr)
	}
	dst := lo.freshMatrix(rows, cols)
	elemA := lo.elemFn(a)
	elemB := lo.elemFn(b)
	lo.emitElementwise(dst, func(i, j Expr) Expr {
		return &Bin{Op: op, X: elemA(i, j), Y: elemB(i, j)}
	})
	return operand{mvar: dst}, nil
}

// elemFn returns an element accessor for an operand (broadcasting scalars).
func (lo *lowerer) elemFn(op operand) func(i, j Expr) Expr {
	if op.scalar() {
		e := op.expr
		return func(i, j Expr) Expr { return CloneExpr(e) }
	}
	v := op.mvar
	return func(i, j Expr) Expr { return &Index{V: v, Idx: []Expr{CloneExpr(i), CloneExpr(j)}} }
}

// matMul emits a classic triple loop for the matrix product.
func (lo *lowerer) matMul(a, b operand, pos scil.Pos) (operand, error) {
	if a.cols() != b.rows() {
		return operand{}, lowErr(pos, "matrix product dimension mismatch %dx%d * %dx%d", a.rows(), a.cols(), b.rows(), b.cols())
	}
	dst := lo.freshMatrix(a.rows(), b.cols())
	am, bm := a.mvar, b.mvar
	iv := lo.freshIVar("i")
	jv := lo.freshIVar("j")
	kv := lo.freshIVar("k")
	acc := lo.out.NewVar(&Var{Name: lo.unique("%acc"), Scalar: true, Rows: 1, Cols: 1, Storage: StorageReg})
	kLoop := &For{
		IVar: kv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(a.cols())}, Trip: a.cols(),
		Body: []Stmt{&AssignScalar{Dst: acc, Src: &Bin{
			Op: OpAdd,
			X:  &VarRef{V: acc},
			Y: &Bin{Op: OpMul,
				X: &Index{V: am, Idx: []Expr{&VarRef{V: iv}, &VarRef{V: kv}}},
				Y: &Index{V: bm, Idx: []Expr{&VarRef{V: kv}, &VarRef{V: jv}}},
			},
		}}},
	}
	jLoop := &For{
		IVar: jv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(dst.Cols)}, Trip: dst.Cols,
		Body: []Stmt{
			&AssignScalar{Dst: acc, Src: &Const{Val: 0}},
			kLoop,
			&Store{Dst: dst, Idx: []Expr{&VarRef{V: iv}, &VarRef{V: jv}}, Src: &VarRef{V: acc}},
		},
	}
	lo.emit(&For{
		IVar: iv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(dst.Rows)}, Trip: dst.Rows,
		Body: []Stmt{jLoop},
	})
	return operand{mvar: dst}, nil
}

func (lo *lowerer) matrixLit(x *scil.MatrixLit, fr *frame) (operand, error) {
	rows := len(x.Rows)
	if rows == 0 {
		return operand{}, lowErr(x.Pos, "empty matrix literals are not supported in compiled code")
	}
	cols := len(x.Rows[0])
	dst := lo.freshMatrix(rows, cols)
	for i, row := range x.Rows {
		if len(row) != cols {
			return operand{}, lowErr(x.Pos, "ragged matrix literal")
		}
		for j, el := range row {
			op, err := lo.expr(el, fr)
			if err != nil {
				return operand{}, err
			}
			if !op.scalar() {
				return operand{}, lowErr(el.ExprPos(), "matrix literal elements must be scalar")
			}
			lo.emit(&Store{Dst: dst, Idx: []Expr{&Const{Val: float64(i + 1)}, &Const{Val: float64(j + 1)}}, Src: op.expr})
		}
	}
	return operand{mvar: dst}, nil
}

func (lo *lowerer) rangeExpr(x *scil.RangeExpr, fr *frame) (operand, error) {
	loOp, err := lo.expr(x.Lo, fr)
	if err != nil {
		return operand{}, err
	}
	hiOp, err := lo.expr(x.Hi, fr)
	if err != nil {
		return operand{}, err
	}
	stepOp := constOp(1)
	if x.Step != nil {
		stepOp, err = lo.expr(x.Step, fr)
		if err != nil {
			return operand{}, err
		}
	}
	if loOp.cval == nil || hiOp.cval == nil || stepOp.cval == nil {
		return operand{}, lowErr(x.Pos, "range bounds must be compile-time constants")
	}
	step := *stepOp.cval
	if step == 0 {
		return operand{}, lowErr(x.Pos, "range with zero step")
	}
	n := int(math.Floor((*hiOp.cval-*loOp.cval)/step)) + 1
	if n < 0 {
		n = 0
	}
	if n == 0 {
		return operand{}, lowErr(x.Pos, "empty range is not supported in compiled code")
	}
	dst := lo.freshMatrix(1, n)
	kv := lo.freshIVar("k")
	// dst(1, k) = lo + (k-1)*step
	val := &Bin{Op: OpAdd,
		X: &Const{Val: *loOp.cval},
		Y: &Bin{Op: OpMul, X: &Bin{Op: OpSub, X: &VarRef{V: kv}, Y: &Const{Val: 1}}, Y: &Const{Val: step}},
	}
	lo.emit(&For{
		IVar: kv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(n)}, Trip: n,
		Body: []Stmt{&Store{Dst: dst, Idx: []Expr{&Const{Val: 1}, &VarRef{V: kv}}, Src: val}},
	})
	return operand{mvar: dst}, nil
}

func (lo *lowerer) callExpr(x *scil.CallExpr, fr *frame) (operand, error) {
	// Indexing?
	if b, ok := fr.vars[x.Name]; ok {
		if b.v.Scalar {
			return operand{}, lowErr(x.Pos, "cannot index scalar variable %q", x.Name)
		}
		idx, err := lo.lowerIndices(x.Args, b.v, fr, x.Pos)
		if err != nil {
			return operand{}, err
		}
		return operand{expr: &Index{V: b.v, Idx: idx}}, nil
	}
	if scil.LookupBuiltin(x.Name) != nil {
		return lo.builtinCall(x, fr)
	}
	if lo.src.Func(x.Name) != nil {
		res, err := lo.inlineCall(x, fr, 1)
		if err != nil {
			return operand{}, err
		}
		return res[0], nil
	}
	return operand{}, lowErr(x.Pos, "undefined variable or function %q", x.Name)
}

// scalarIntrinsics are builtins that map directly to IR Intrinsic nodes on
// scalar arguments and can be const-folded through the scil evaluator.
var scalarIntrinsics = map[string]bool{
	"abs": true, "sqrt": true, "floor": true, "ceil": true, "round": true,
	"sign": true, "sin": true, "cos": true, "tan": true, "exp": true,
	"log": true, "min": true, "max": true, "modulo": true, "atan2": true,
	"atan": true,
}

// reductions maps reduction builtins to (initial value, combining op).
type reductionSpec struct {
	init    float64
	combine func(acc, x Expr) Expr
	post    func(acc Expr, n int) Expr
}

var reductionSpecs = map[string]reductionSpec{
	"sum": {init: 0, combine: func(a, x Expr) Expr { return &Bin{Op: OpAdd, X: a, Y: x} }},
	"prod": {init: 1, combine: func(a, x Expr) Expr {
		return &Bin{Op: OpMul, X: a, Y: x}
	}},
	"mean": {init: 0,
		combine: func(a, x Expr) Expr { return &Bin{Op: OpAdd, X: a, Y: x} },
		post: func(a Expr, n int) Expr {
			return &Bin{Op: OpDiv, X: a, Y: &Const{Val: float64(n)}}
		}},
	"minval": {init: math.Inf(1), combine: func(a, x Expr) Expr {
		return &Intrinsic{Name: "min", Args: []Expr{a, x}}
	}},
	"maxval": {init: math.Inf(-1), combine: func(a, x Expr) Expr {
		return &Intrinsic{Name: "max", Args: []Expr{a, x}}
	}},
}

func (lo *lowerer) builtinCall(x *scil.CallExpr, fr *frame) (operand, error) {
	args := make([]operand, len(x.Args))
	allConst := true
	anyMatrix := false
	for i, a := range x.Args {
		op, err := lo.expr(a, fr)
		if err != nil {
			return operand{}, err
		}
		args[i] = op
		if !op.scalar() {
			anyMatrix = true
			allConst = false
		} else if op.cval == nil {
			allConst = false
		}
	}
	switch x.Name {
	case "zeros", "ones", "eye":
		return lo.fillBuiltin(x, args)
	case "size":
		if len(args) == 1 {
			dst := lo.freshMatrix(1, 2)
			lo.emit(&Store{Dst: dst, Idx: []Expr{&Const{Val: 1}, &Const{Val: 1}}, Src: &Const{Val: float64(args[0].rows())}})
			lo.emit(&Store{Dst: dst, Idx: []Expr{&Const{Val: 1}, &Const{Val: 2}}, Src: &Const{Val: float64(args[0].cols())}})
			return operand{mvar: dst}, nil
		}
		if args[1].cval == nil {
			return operand{}, lowErr(x.Pos, "size dimension must be a constant")
		}
		switch int(*args[1].cval) {
		case 1:
			return constOp(float64(args[0].rows())), nil
		case 2:
			return constOp(float64(args[0].cols())), nil
		}
		return operand{}, lowErr(x.Pos, "size dimension must be 1 or 2")
	case "length":
		return constOp(float64(args[0].rows() * args[0].cols())), nil
	}
	if spec, ok := reductionSpecs[x.Name]; ok {
		if !anyMatrix {
			// Reduction of a scalar is the identity (mean(x) == x etc.).
			return args[0], nil
		}
		return lo.reduction(x.Name, spec, args[0])
	}
	if !scalarIntrinsics[x.Name] {
		return operand{}, lowErr(x.Pos, "builtin %q is not supported in compiled code", x.Name)
	}
	if !anyMatrix {
		if allConst {
			vals := make([]scil.Value, len(args))
			for i, a := range args {
				vals[i] = scil.Scalar(*a.cval)
			}
			v, err := scil.LookupBuiltin(x.Name).Eval(vals)
			if err != nil {
				return operand{}, lowErr(x.Pos, "constant folding %s: %v", x.Name, err)
			}
			return constOp(v.ScalarVal()), nil
		}
		exprs := make([]Expr, len(args))
		for i, a := range args {
			exprs[i] = a.expr
		}
		return operand{expr: &Intrinsic{Name: x.Name, Args: exprs}}, nil
	}
	// Elementwise matrix application with scalar broadcasting.
	rows, cols := 0, 0
	for _, a := range args {
		if !a.scalar() {
			if rows == 0 {
				rows, cols = a.rows(), a.cols()
			} else if a.rows() != rows || a.cols() != cols {
				return operand{}, lowErr(x.Pos, "shape mismatch in %s", x.Name)
			}
		}
	}
	for i := range args {
		if args[i].scalar() {
			args[i].expr = lo.materialize(args[i].expr)
		}
	}
	dst := lo.freshMatrix(rows, cols)
	accessors := make([]func(i, j Expr) Expr, len(args))
	for i, a := range args {
		accessors[i] = lo.elemFn(a)
	}
	name := x.Name
	lo.emitElementwise(dst, func(i, j Expr) Expr {
		es := make([]Expr, len(accessors))
		for k, fn := range accessors {
			es[k] = fn(i, j)
		}
		return &Intrinsic{Name: name, Args: es}
	})
	return operand{mvar: dst}, nil
}

func (lo *lowerer) fillBuiltin(x *scil.CallExpr, args []operand) (operand, error) {
	dims := make([]int, len(args))
	for i, a := range args {
		if a.cval == nil {
			return operand{}, lowErr(x.Pos, "%s dimensions must be compile-time constants", x.Name)
		}
		dims[i] = int(*a.cval)
		if dims[i] < 0 {
			return operand{}, lowErr(x.Pos, "%s dimension must be non-negative", x.Name)
		}
	}
	rows := dims[0]
	cols := rows
	if len(dims) == 2 {
		cols = dims[1]
	}
	if rows == 0 || cols == 0 {
		return operand{}, lowErr(x.Pos, "zero-sized matrices are not supported in compiled code")
	}
	dst := lo.freshMatrix(rows, cols)
	switch x.Name {
	case "zeros":
		lo.emitElementwise(dst, func(i, j Expr) Expr { return &Const{Val: 0} })
	case "ones":
		lo.emitElementwise(dst, func(i, j Expr) Expr { return &Const{Val: 1} })
	case "eye":
		lo.emitElementwise(dst, func(i, j Expr) Expr {
			return &Bin{Op: OpEq, X: i, Y: j}
		})
	}
	return operand{mvar: dst}, nil
}

// reduction emits an accumulator loop over all elements of the operand.
func (lo *lowerer) reduction(name string, spec reductionSpec, src operand) (operand, error) {
	acc := lo.out.NewVar(&Var{Name: lo.unique("%" + name), Scalar: true, Rows: 1, Cols: 1, Storage: StorageReg})
	lo.emit(&AssignScalar{Dst: acc, Src: &Const{Val: spec.init}})
	m := src.mvar
	iv := lo.freshIVar("i")
	jv := lo.freshIVar("j")
	upd := &AssignScalar{Dst: acc, Src: spec.combine(
		&VarRef{V: acc},
		&Index{V: m, Idx: []Expr{&VarRef{V: iv}, &VarRef{V: jv}}},
	)}
	inner := &For{IVar: jv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(m.Cols)}, Trip: m.Cols, Body: []Stmt{upd}}
	lo.emit(&For{IVar: iv, Lo: &Const{Val: 1}, Step: &Const{Val: 1}, Hi: &Const{Val: float64(m.Rows)}, Trip: m.Rows, Body: []Stmt{inner}})
	var out Expr = &VarRef{V: acc}
	if spec.post != nil {
		out = spec.post(out, m.Rows*m.Cols)
	}
	return operand{expr: out}, nil
}

// inlineCall lowers a user-function call by inlining its body into the
// current instruction stream and returns its first nresults results.
func (lo *lowerer) inlineCall(x *scil.CallExpr, caller *frame, nresults int) ([]operand, error) {
	lo.depth++
	defer func() { lo.depth-- }()
	if lo.depth > 64 {
		return nil, lowErr(x.Pos, "inlining depth limit exceeded (recursion?)")
	}
	callee := lo.src.Func(x.Name)
	if callee == nil {
		return nil, lowErr(x.Pos, "undefined function %q", x.Name)
	}
	if len(x.Args) != len(callee.Params) {
		return nil, lowErr(x.Pos, "%q expects %d arguments, got %d", x.Name, len(callee.Params), len(x.Args))
	}
	if len(callee.Results) < nresults {
		return nil, lowErr(x.Pos, "%q returns %d values, %d requested", x.Name, len(callee.Results), nresults)
	}
	written := assignedTargets(callee.Body)
	fr := lo.newFrame(x.Name)
	for i, pname := range callee.Params {
		op, err := lo.expr(x.Args[i], caller)
		if err != nil {
			return nil, err
		}
		if op.scalar() {
			v := lo.out.NewVar(&Var{Name: lo.unique(x.Name + "." + pname), Scalar: true, Rows: 1, Cols: 1, Storage: StorageReg})
			lo.emit(&AssignScalar{Dst: v, Src: op.expr})
			b := &binding{v: v}
			if op.cval != nil {
				c := *op.cval
				b.cval = &c
			}
			fr.vars[pname] = b
			continue
		}
		// Matrix argument: alias when the callee never writes the
		// parameter (Scilab value semantics are then unobservable),
		// otherwise copy.
		if !written[pname] {
			fr.vars[pname] = &binding{v: op.mvar}
			continue
		}
		dst := lo.out.NewVar(&Var{
			Name: lo.unique(x.Name + "." + pname), Rows: op.rows(), Cols: op.cols(),
			Storage: StorageShared,
		})
		lo.emitCopy(dst, op.mvar)
		fr.vars[pname] = &binding{v: dst}
	}
	if err := lo.stmts(callee.Body, fr, true); err != nil {
		return nil, err
	}
	out := make([]operand, nresults)
	for i := 0; i < nresults; i++ {
		rname := callee.Results[i]
		b, ok := fr.vars[rname]
		if !ok {
			return nil, lowErr(x.Pos, "%q result %q never assigned", x.Name, rname)
		}
		if b.v.Scalar {
			op := operand{expr: &VarRef{V: b.v}}
			if b.cval != nil {
				c := *b.cval
				op.cval = &c
			}
			out[i] = op
		} else {
			out[i] = operand{mvar: b.v}
		}
	}
	return out, nil
}

// assignedTargets collects names assigned anywhere in stmts (loop vars and
// all assignment targets).
func assignedTargets(stmts []scil.Stmt) map[string]bool {
	names := map[string]bool{}
	var walk func(ss []scil.Stmt)
	walk = func(ss []scil.Stmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case *scil.AssignStmt:
				for _, lv := range st.LHS {
					names[lv.Name] = true
				}
			case *scil.ForStmt:
				names[st.Var] = true
				walk(st.Body)
			case *scil.WhileStmt:
				walk(st.Body)
			case *scil.IfStmt:
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(stmts)
	return names
}
