// Package pass is the explicit pass manager of the ARGO tool-chain: it
// models the compile/optimize pipeline as a sequence of named passes
// over a typed artifact store, with per-pass context-cancellation
// checks, per-pass wall-time/alloc instrumentation, and content-
// addressed pass-level result caching.
//
// The paper's cross-layer flow (Figure 1: model import →
// parallelization → multi-core WCET analysis → code generation)
// iterates in a feedback loop; making every stage an observable,
// reorderable, cacheable pass is what lets the iterative optimizer skip
// stages whose inputs did not change between candidates or feedback
// rounds, and what gives argocc/argod per-stage timing visibility.
//
// The package is pure mechanism: it knows nothing about the concrete
// artifact types. internal/core defines the actual pipeline (which
// passes exist, what they read and write, how their inputs are
// fingerprinted); internal/transform contributes the registry of
// predictability transformations.
package pass

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"runtime"
	"time"
)

// Key is a typed handle into a Context's artifact store. Two keys with
// the same name address the same slot; the type parameter makes reads
// and writes statically typed at every use site.
type Key[T any] struct{ name string }

// NewKey declares a typed artifact slot.
func NewKey[T any](name string) Key[T] { return Key[T]{name: name} }

// Name returns the artifact slot's name.
func (k Key[T]) Name() string { return k.name }

// Context is the artifact store one pipeline execution threads through
// its passes, together with the execution's cancellation context and
// instrumentation trace. A Context is confined to one pipeline run and
// is not safe for concurrent use.
type Context struct {
	ctx  context.Context
	vals map[string]any

	// Round is the current feedback-loop round (0 for passes outside the
	// loop); the driver sets it, timings record it.
	Round int

	trace Trace
}

// NewContext returns an empty artifact store bound to ctx.
func NewContext(ctx context.Context) *Context {
	return &Context{ctx: ctx, vals: make(map[string]any, 16)}
}

// Ctx returns the execution's cancellation context.
func (c *Context) Ctx() context.Context { return c.ctx }

// Trace returns the instrumentation trace accumulated so far.
func (c *Context) Trace() *Trace { return &c.trace }

// SeedTrace prepends already-recorded timings (e.g. the shared
// front-end's) to the trace of this execution.
func (c *Context) SeedTrace(timings []Timing) {
	c.trace.Passes = append(append([]Timing(nil), timings...), c.trace.Passes...)
}

// Put stores an artifact.
func Put[T any](c *Context, k Key[T], v T) { c.vals[k.name] = v }

// Get reads an artifact; ok is false when the slot is empty.
func Get[T any](c *Context, k Key[T]) (v T, ok bool) {
	raw, ok := c.vals[k.name]
	if !ok {
		return v, false
	}
	v, ok = raw.(T)
	return v, ok
}

// Need reads an artifact that a pass's declared inputs guarantee is
// present; a missing or mistyped slot is a pipeline-construction bug
// and panics with the slot name.
func Need[T any](c *Context, k Key[T]) T {
	v, ok := Get(c, k)
	if !ok {
		panic(fmt.Sprintf("pass: required artifact %q missing or mistyped", k.name))
	}
	return v
}

// Pass is one named stage of a pipeline.
type Pass struct {
	// Name identifies the pass in errors ("pass \"schedule\": ..."),
	// metrics, traces, and the -passes listing.
	Name string
	// Input and Output name the artifact slots the pass reads and
	// writes (documentation for the -passes listing; Run uses typed
	// keys directly).
	Input, Output string
	// Run executes the pass against the artifact store.
	Run func(c *Context) error

	// Fingerprint content-addresses the pass's inputs; ok=false opts
	// this execution out of caching. Nil means the pass is never cached.
	Fingerprint func(c *Context) (fp []byte, ok bool)
	// Snapshot freezes the pass's outputs into an immutable cache value
	// (deep-copying anything the pipeline may later mutate).
	Snapshot func(c *Context) any
	// Restore installs a cached snapshot into the store (deep-copying
	// anything the pipeline may later mutate).
	Restore func(c *Context, snap any)

	// Dump renders the pass's primary output artifact (argocc
	// -dump-after); nil means no dump is available.
	Dump func(c *Context) string
}

// Cacheable reports whether the pass participates in pass-level caching.
func (p *Pass) Cacheable() bool {
	return p.Fingerprint != nil && p.Snapshot != nil && p.Restore != nil
}

// CacheOutcome records how the cache treated one pass execution.
type CacheOutcome int8

// Cache outcomes.
const (
	// CacheNone: the pass is not cacheable (or caching is disabled).
	CacheNone CacheOutcome = iota
	// CacheMiss: the pass ran and its result was stored.
	CacheMiss
	// CacheHit: the pass was skipped and its result restored.
	CacheHit
)

// String returns "", "miss", or "hit".
func (o CacheOutcome) String() string {
	switch o {
	case CacheMiss:
		return "miss"
	case CacheHit:
		return "hit"
	}
	return ""
}

// Timing is the instrumentation record of one pass execution.
type Timing struct {
	// Pass is the pass name.
	Pass string
	// Round is the feedback-loop round the execution belonged to
	// (0 outside the loop).
	Round int
	// Wall is the execution's wall-clock duration (for a cache hit: the
	// restore cost).
	Wall time.Duration
	// AllocBytes is the heap allocated during the pass, when the
	// manager measures allocations (process-wide counter delta: under
	// concurrent pipeline executions the attribution is approximate).
	AllocBytes int64
	// Cache records the pass-cache outcome.
	Cache CacheOutcome
}

// Trace is the ordered instrumentation record of one pipeline
// execution; it is attached to core.Artifacts as PassTrace.
type Trace struct {
	Passes []Timing
}

// CacheCounts sums a trace's cache outcomes: skipped is the number of
// executions served by snapshot restore (the clean prefix/suffix an
// incremental re-analysis did not re-run), reran the number that
// actually executed (cache misses plus uncacheable passes). This is the
// per-edit dirty-suffix accounting interactive sessions report.
func (t *Trace) CacheCounts() (skipped, reran int) {
	if t == nil {
		return 0, 0
	}
	for _, tm := range t.Passes {
		if tm.Cache == CacheHit {
			skipped++
		} else {
			reran++
		}
	}
	return skipped, reran
}

// Aggregate is the per-pass rollup of a trace.
type Aggregate struct {
	Pass        string
	Runs        int
	Wall        time.Duration
	AllocBytes  int64
	CacheHits   int
	CacheMisses int
}

// Aggregate rolls the trace up by pass name, preserving first-execution
// order (the pipeline order).
func (t *Trace) Aggregate() []Aggregate {
	if t == nil {
		return nil
	}
	idx := make(map[string]int, 16)
	var out []Aggregate
	for _, tm := range t.Passes {
		i, ok := idx[tm.Pass]
		if !ok {
			i = len(out)
			idx[tm.Pass] = i
			out = append(out, Aggregate{Pass: tm.Pass})
		}
		a := &out[i]
		a.Runs++
		a.Wall += tm.Wall
		a.AllocBytes += tm.AllocBytes
		switch tm.Cache {
		case CacheHit:
			a.CacheHits++
		case CacheMiss:
			a.CacheMisses++
		}
	}
	return out
}

// Process-wide pass observability, served by argod's /debug/vars:
// cumulative per-pass wall time and execution counts, plus pass-cache
// hit/miss counters.
var (
	passNS      = expvar.NewMap("argo_pass_ns")
	passRuns    = expvar.NewMap("argo_pass_runs")
	cacheHits   = expvar.NewInt("argo_pass_cache_hits")
	cacheMisses = expvar.NewInt("argo_pass_cache_misses")
)

// CacheCounters returns the cumulative process-wide pass-cache hit and
// miss counts (also exported as expvars argo_pass_cache_{hits,misses}).
func CacheCounters() (hits, misses int64) {
	return cacheHits.Value(), cacheMisses.Value()
}

// Runs returns the cumulative number of actual executions of the named
// pass (cache hits excluded), as exported per pass in argo_pass_runs.
// Acceptance tests use the delta across a compilation to prove a pass
// was served entirely from cache.
func Runs(name string) int64 {
	if v, ok := passRuns.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// Manager executes passes: it checks cancellation at every pass
// boundary, serves cacheable passes from the content-addressed cache,
// records per-pass timings into the context's trace and the process
// expvars, and prefixes pass failures with the failing pass name.
type Manager struct {
	// Cache enables pass-level caching when non-nil.
	Cache *Cache
	// MeasureAllocs additionally records per-pass heap allocation
	// deltas (runtime.ReadMemStats per pass: cheap for interactive use,
	// skewed under concurrent executions — leave off on hot paths).
	MeasureAllocs bool
	// AfterPass, when set, observes every completed pass (argocc
	// -dump-after and tests hook here).
	AfterPass func(p *Pass, c *Context)
	// OnTiming, when set, observes every completed pass's timing record
	// as soon as it is appended to the trace. Interactive sessions hook
	// here to stream one event per completed pass.
	OnTiming func(tm Timing)
}

// Run executes the passes in order against c. It returns ctx.Err()
// unwrapped as soon as the context is cancelled — at most the pass in
// flight completes, nothing after it starts — and wraps any pass
// failure as `pass "<name>": <err>`.
func (m *Manager) Run(c *Context, passes ...*Pass) error {
	for _, p := range passes {
		if err := m.runOne(c, p); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) runOne(c *Context, p *Pass) error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	tm := Timing{Pass: p.Name, Round: c.Round}
	var mem0 runtime.MemStats
	if m.MeasureAllocs {
		runtime.ReadMemStats(&mem0)
	}
	start := time.Now()
	if err := m.execute(c, p, &tm); err != nil {
		// Cancellation surfacing from inside a pass propagates as the
		// plain context error, not as a pass failure.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return fmt.Errorf("pass %q: %w", p.Name, err)
	}
	tm.Wall = time.Since(start)
	if m.MeasureAllocs {
		var mem1 runtime.MemStats
		runtime.ReadMemStats(&mem1)
		tm.AllocBytes = int64(mem1.TotalAlloc - mem0.TotalAlloc)
	}
	passNS.Add(p.Name, tm.Wall.Nanoseconds())
	// argo_pass_runs counts actual executions only: a cache hit restores
	// a snapshot without running the pass, and the warm-path contract
	// ("a second identical compile reruns zero structural passes") is
	// asserted against exactly this counter. Hits are visible separately
	// as argo_pass_cache_hits.
	if tm.Cache != CacheHit {
		passRuns.Add(p.Name, 1)
	}
	c.trace.Passes = append(c.trace.Passes, tm)
	if m.OnTiming != nil {
		m.OnTiming(tm)
	}
	// A cancellation that arrived while the pass ran aborts here, one
	// pass boundary after the cancel, before any later pass starts.
	if err := c.ctx.Err(); err != nil {
		return err
	}
	if m.AfterPass != nil {
		m.AfterPass(p, c)
	}
	return c.ctx.Err()
}

// execute runs one pass through the cache (when eligible).
func (m *Manager) execute(c *Context, p *Pass, tm *Timing) error {
	if m.Cache == nil || !p.Cacheable() {
		return p.Run(c)
	}
	fp, ok := p.Fingerprint(c)
	if !ok {
		return p.Run(c)
	}
	key := cacheAddress(p.Name, fp)
	if snap, hit := m.Cache.get(key); hit {
		p.Restore(c, snap)
		tm.Cache = CacheHit
		cacheHits.Add(1)
		return nil
	}
	if err := p.Run(c); err != nil {
		return err
	}
	// A nil snapshot means the result cannot be frozen safely; the pass
	// still ran, the result just isn't stored.
	if snap := p.Snapshot(c); snap != nil {
		m.Cache.put(key, snap)
	}
	tm.Cache = CacheMiss
	cacheMisses.Add(1)
	return nil
}

// Desc describes one pass of a registered pipeline (the argocc -passes
// listing and the DESIGN.md pass table).
type Desc struct {
	Name   string
	Input  string
	Output string
	// Cacheable reports pass-level caching eligibility.
	Cacheable bool
	// Loop marks passes that run once per placement/analysis feedback
	// round.
	Loop bool
}

// Describe renders a pass as a Desc.
func (p *Pass) Describe(loop bool) Desc {
	return Desc{Name: p.Name, Input: p.Input, Output: p.Output, Cacheable: p.Cacheable(), Loop: loop}
}

// FormatDescs renders a pipeline description as the fixed-width table
// `argocc -passes` (and `make passes`) prints.
func FormatDescs(ds []Desc) string {
	nameW, inW, outW := len("pass"), len("input"), len("output")
	for _, d := range ds {
		nameW = max(nameW, len(d.Name))
		inW = max(inW, len(d.Input))
		outW = max(outW, len(d.Output))
	}
	out := fmt.Sprintf("%-*s  %-*s  %-*s  %-9s  %s\n", nameW, "pass", inW, "input", outW, "output", "cacheable", "loop")
	for _, d := range ds {
		cacheable, loop := "-", "-"
		if d.Cacheable {
			cacheable = "yes"
		}
		if d.Loop {
			loop = "per-round"
		}
		out += fmt.Sprintf("%-*s  %-*s  %-*s  %-9s  %s\n", nameW, d.Name, inW, d.Input, outW, d.Output, cacheable, loop)
	}
	return out
}
