package pass

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

var keyN = NewKey[int]("n")

func incPass(name string, by int) *Pass {
	return &Pass{
		Name: name, Input: "n", Output: "n",
		Run: func(c *Context) error {
			v, _ := Get(c, keyN)
			Put(c, keyN, v+by)
			return nil
		},
	}
}

func TestRunOrderAndTrace(t *testing.T) {
	c := NewContext(context.Background())
	m := &Manager{}
	if err := m.Run(c, incPass("a", 1), incPass("b", 10), incPass("c", 100)); err != nil {
		t.Fatal(err)
	}
	if v := Need(c, keyN); v != 111 {
		t.Fatalf("artifact = %d, want 111", v)
	}
	tr := c.Trace()
	if len(tr.Passes) != 3 {
		t.Fatalf("trace has %d entries, want 3", len(tr.Passes))
	}
	for i, want := range []string{"a", "b", "c"} {
		if tr.Passes[i].Pass != want {
			t.Fatalf("trace[%d] = %q, want %q", i, tr.Passes[i].Pass, want)
		}
	}
}

func TestErrorPrefixedWithPassName(t *testing.T) {
	boom := errors.New("boom")
	failing := &Pass{Name: "schedule", Run: func(*Context) error { return boom }}
	err := (&Manager{}).Run(NewContext(context.Background()), incPass("a", 1), failing)
	if err == nil || !strings.HasPrefix(err.Error(), `pass "schedule": `) {
		t.Fatalf("err = %v, want pass %q prefix", err, "schedule")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v does not wrap the pass failure", err)
	}
}

func TestCancellationAbortsWithinOnePassBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewContext(ctx)
	ran := []string{}
	mk := func(name string) *Pass {
		return &Pass{Name: name, Run: func(*Context) error {
			ran = append(ran, name)
			if name == "b" {
				cancel() // cancellation arrives while b is executing
			}
			return nil
		}}
	}
	err := (&Manager{}).Run(c, mk("a"), mk("b"), mk("c"))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled (unwrapped)", err)
	}
	// b completes (it was in flight), c never starts.
	if got := strings.Join(ran, ","); got != "a,b" {
		t.Fatalf("ran %q, want a,b", got)
	}
	// The in-flight pass's timing is still recorded.
	if n := len(c.Trace().Passes); n != 2 {
		t.Fatalf("trace has %d entries, want 2", n)
	}
}

func TestContextErrorFromInsidePassStaysUnwrapped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	inner := &Pass{Name: "simulate", Run: func(c *Context) error {
		cancel()
		return c.Ctx().Err()
	}}
	err := (&Manager{}).Run(NewContext(ctx), inner)
	if err != context.Canceled {
		t.Fatalf("err = %v, want bare context.Canceled", err)
	}
}

type snapInt struct{ v int }

func cacheablePass(name string, fp []byte, runs *int) *Pass {
	return &Pass{
		Name: name, Input: "n", Output: "n",
		Run: func(c *Context) error {
			*runs++
			v, _ := Get(c, keyN)
			Put(c, keyN, v*2+1)
			return nil
		},
		Fingerprint: func(c *Context) ([]byte, bool) { return fp, true },
		Snapshot:    func(c *Context) any { return &snapInt{v: Need(c, keyN)} },
		Restore:     func(c *Context, s any) { Put(c, keyN, s.(*snapInt).v) },
	}
}

func TestCacheHitRestoresWithoutRunning(t *testing.T) {
	cache := &Cache{}
	runs := 0
	run := func(seed int) int {
		c := NewContext(context.Background())
		Put(c, keyN, seed)
		if err := (&Manager{Cache: cache}).Run(c, cacheablePass("double", []byte{byte(seed)}, &runs)); err != nil {
			t.Fatal(err)
		}
		return Need(c, keyN)
	}
	if v := run(3); v != 7 {
		t.Fatalf("first run = %d, want 7", v)
	}
	if v := run(3); v != 7 {
		t.Fatalf("cached run = %d, want 7", v)
	}
	if runs != 1 {
		t.Fatalf("pass ran %d times, want 1 (second execution served from cache)", runs)
	}
	if v := run(4); v != 9 {
		t.Fatalf("different fingerprint = %d, want 9", v)
	}
	if runs != 2 {
		t.Fatalf("pass ran %d times, want 2", runs)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d snapshots, want 2", cache.Len())
	}
	cache.Reset()
	if cache.Len() != 0 {
		t.Fatalf("cache holds %d snapshots after Reset, want 0", cache.Len())
	}
}

func TestTraceAggregate(t *testing.T) {
	tr := &Trace{Passes: []Timing{
		{Pass: "a", Wall: 5, Cache: CacheMiss},
		{Pass: "b", Wall: 7},
		{Pass: "a", Wall: 3, Cache: CacheHit, Round: 2},
	}}
	ag := tr.Aggregate()
	if len(ag) != 2 || ag[0].Pass != "a" || ag[1].Pass != "b" {
		t.Fatalf("aggregate order = %+v, want [a b]", ag)
	}
	if ag[0].Runs != 2 || ag[0].Wall != 8 || ag[0].CacheHits != 1 || ag[0].CacheMisses != 1 {
		t.Fatalf("aggregate[a] = %+v", ag[0])
	}
	var nilTrace *Trace
	if nilTrace.Aggregate() != nil {
		t.Fatal("nil trace should aggregate to nil")
	}
}

func TestFormatDescs(t *testing.T) {
	out := FormatDescs([]Desc{
		{Name: "fold", Input: "ir", Output: "ir", Cacheable: true},
		{Name: "schedule", Input: "sched-input", Output: "schedule+syswcet", Cacheable: true, Loop: true},
		{Name: "validate", Input: "par-program", Output: "par-program"},
	})
	for _, want := range []string{"pass", "input", "output", "cacheable", "loop", "fold", "schedule", "per-round", "yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("listing missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("listing has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestSeedTracePrepends(t *testing.T) {
	c := NewContext(context.Background())
	if err := (&Manager{}).Run(c, incPass("own", 1)); err != nil {
		t.Fatal(err)
	}
	c.SeedTrace([]Timing{{Pass: "check"}, {Pass: "lower"}})
	got := make([]string, len(c.Trace().Passes))
	for i, tm := range c.Trace().Passes {
		got[i] = tm.Pass
	}
	if fmt.Sprint(got) != "[check lower own]" {
		t.Fatalf("trace order = %v", got)
	}
}
