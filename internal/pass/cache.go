package pass

import (
	"crypto/sha256"
	"expvar"
	"sync"
	"sync/atomic"
)

// The pass cache is content-addressed: a key is the SHA-256 of the pass
// name plus the pass's own input fingerprint, so two executions with
// equal keys are guaranteed (by the fingerprint contract) to produce
// identical outputs, and a hit restores a deep copy of the frozen
// snapshot. Like the code-level bound cache in internal/wcet, the cache
// is an accelerator, not a correctness mechanism: it is sharded to keep
// contention low under parallel candidate evaluation and bounded so a
// long-running argod cannot grow it without limit (at capacity, one
// arbitrary entry is evicted per insert).

type cacheAddr [sha256.Size]byte

// cacheAddress derives the cache key for one pass execution.
func cacheAddress(passName string, fp []byte) cacheAddr {
	h := sha256.New()
	h.Write([]byte(passName))
	h.Write([]byte{0})
	h.Write(fp)
	var a cacheAddr
	h.Sum(a[:0])
	return a
}

const (
	cacheShardBits = 5
	cacheShards    = 1 << cacheShardBits
	// cacheShardMax is the default bound on entries per shard. Snapshots
	// can be whole cloned IR programs, so the bound is much smaller than
	// the wcet bound cache's.
	cacheShardMax = 128
)

type cacheShard struct {
	mu sync.RWMutex
	m  map[cacheAddr]any
}

// Cache is a sharded, bounded, content-addressed pass-result store.
// Snapshots stored in it must be immutable (the Snapshot/Restore
// contract deep-copies anything mutable). The zero value is ready to
// use with the default per-shard bound.
type Cache struct {
	shards [cacheShards]cacheShard
	// maxPerShard overrides cacheShardMax when positive (set via
	// NewCache or SetMax).
	maxPerShard int

	// fallback is an optional read-through tier consulted on a local
	// miss (session-private caches fall back to Global). Stores dedupe
	// against it: a snapshot the fallback already holds is not stored
	// again locally — the same content-addressed key yields the same
	// immutable snapshot, so double-storing it only wastes memory and
	// pressures the local bound into needless evictions.
	fallback *Cache

	evictions atomic.Int64
	deferrals atomic.Int64
}

// Global is the process-wide pass cache shared by every pipeline
// execution (candidates of one optimizer ladder, feedback rounds, and
// argod requests all reuse each other's pass results). Its entry count
// and eviction total are exported as the expvars
// argo_pass_cache_entries and argo_pass_cache_evictions.
var Global = &Cache{}

// NewCache returns a private pass cache bounded to at most maxEntries
// snapshots (maxEntries <= 0: the default bound). Interactive sessions
// use private caches so one session's artifact history cannot evict
// another's, and evicting the session frees its snapshots.
func NewCache(maxEntries int) *Cache {
	c := &Cache{}
	c.SetMax(maxEntries)
	return c
}

// SetMax rebounds the cache to at most maxEntries snapshots across all
// shards (maxEntries <= 0 restores the default bound). Shards already
// above the new bound shrink lazily as inserts arrive.
func (c *Cache) SetMax(maxEntries int) {
	if maxEntries <= 0 {
		c.maxPerShard = 0
		return
	}
	per := maxEntries / cacheShards
	if per < 1 {
		per = 1
	}
	c.maxPerShard = per
}

func (c *Cache) shardMax() int {
	if c.maxPerShard > 0 {
		return c.maxPerShard
	}
	return cacheShardMax
}

func (c *Cache) shard(a cacheAddr) *cacheShard {
	return &c.shards[a[0]>>(8-cacheShardBits)]
}

// SetFallback chains a read-through tier behind c: gets consult it on a
// local miss, puts skip snapshots it already holds. Both are counted as
// deferrals — requests this cache deferred to the shared tier instead
// of holding its own copy. Safe because snapshots are immutable and
// restores deep-clone — the tiers can share entries freely.
func (c *Cache) SetFallback(f *Cache) { c.fallback = f }

// Deferrals returns how many requests were deferred to the fallback
// tier (local misses it served, plus stores it made redundant).
func (c *Cache) Deferrals() int64 { return c.deferrals.Load() }

func (c *Cache) get(a cacheAddr) (any, bool) {
	s := c.shard(a)
	s.mu.RLock()
	v, ok := s.m[a]
	s.mu.RUnlock()
	if !ok && c.fallback != nil {
		if v, ok = c.fallback.get(a); ok {
			c.deferrals.Add(1)
		}
	}
	return v, ok
}

func (c *Cache) put(a cacheAddr, v any) {
	if c.fallback != nil {
		if _, held := c.fallback.get(a); held {
			c.deferrals.Add(1)
			return
		}
	}
	s := c.shard(a)
	max := c.shardMax()
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[cacheAddr]any)
	}
	if _, exists := s.m[a]; !exists {
		// Evict arbitrary entries down to the bound. The cache is a pure
		// accelerator: which snapshot survives never affects results,
		// only which future executions hit.
		for len(s.m) >= max {
			for k := range s.m {
				delete(s.m, k)
				c.evictions.Add(1)
				globalEvictions.Add(1)
				break
			}
		}
	}
	s.m[a] = v
	s.mu.Unlock()
}

// Reset drops every cached pass result (tests and benchmarks measuring
// the cold path). Eviction counters are preserved.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}

// Len returns the number of cached snapshots.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// CacheStats is a point-in-time snapshot of one cache's size counters
// (hit/miss totals are process-wide, see CacheCounters).
type CacheStats struct {
	Entries   int   `json:"entries"`
	Evictions int64 `json:"evictions"`
	// Deferrals counts stores deduplicated against the fallback tier
	// (zero for caches without one).
	Deferrals int64 `json:"deferrals,omitempty"`
}

// Stats snapshots the cache's entry count, eviction total, and
// fallback-deferral total.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Entries: c.Len(), Evictions: c.evictions.Load(), Deferrals: c.deferrals.Load()}
}

// Process-wide pass-cache growth observability: entries currently held
// by the Global cache and cumulative evictions across all caches
// (session-private caches included), served by argod's /debug/vars.
var globalEvictions = expvar.NewInt("argo_pass_cache_evictions")

func init() {
	expvar.Publish("argo_pass_cache_entries", expvar.Func(func() any {
		return Global.Len()
	}))
}
