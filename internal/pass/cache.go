package pass

import (
	"crypto/sha256"
	"sync"
)

// The pass cache is content-addressed: a key is the SHA-256 of the pass
// name plus the pass's own input fingerprint, so two executions with
// equal keys are guaranteed (by the fingerprint contract) to produce
// identical outputs, and a hit restores a deep copy of the frozen
// snapshot. Like the code-level bound cache in internal/wcet, the cache
// is an accelerator, not a correctness mechanism: it is sharded to keep
// contention low under parallel candidate evaluation and bounded so a
// long-running argod cannot grow it without limit (a full shard is
// simply reset).

type cacheAddr [sha256.Size]byte

// cacheAddress derives the cache key for one pass execution.
func cacheAddress(passName string, fp []byte) cacheAddr {
	h := sha256.New()
	h.Write([]byte(passName))
	h.Write([]byte{0})
	h.Write(fp)
	var a cacheAddr
	h.Sum(a[:0])
	return a
}

const (
	cacheShardBits = 5
	cacheShards    = 1 << cacheShardBits
	// cacheShardMax bounds entries per shard. Snapshots can be whole
	// cloned IR programs, so the bound is much smaller than the
	// wcet bound cache's.
	cacheShardMax = 128
)

type cacheShard struct {
	mu sync.RWMutex
	m  map[cacheAddr]any
}

// Cache is a sharded, bounded, content-addressed pass-result store.
// Snapshots stored in it must be immutable (the Snapshot/Restore
// contract deep-copies anything mutable).
type Cache struct {
	shards [cacheShards]cacheShard
}

// Global is the process-wide pass cache shared by every pipeline
// execution (candidates of one optimizer ladder, feedback rounds, and
// argod requests all reuse each other's pass results).
var Global = &Cache{}

func (c *Cache) shard(a cacheAddr) *cacheShard {
	return &c.shards[a[0]>>(8-cacheShardBits)]
}

func (c *Cache) get(a cacheAddr) (any, bool) {
	s := c.shard(a)
	s.mu.RLock()
	v, ok := s.m[a]
	s.mu.RUnlock()
	return v, ok
}

func (c *Cache) put(a cacheAddr, v any) {
	s := c.shard(a)
	s.mu.Lock()
	if s.m == nil || len(s.m) >= cacheShardMax {
		s.m = make(map[cacheAddr]any)
	}
	s.m[a] = v
	s.mu.Unlock()
}

// Reset drops every cached pass result (tests and benchmarks measuring
// the cold path).
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}

// Len returns the number of cached snapshots.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
