package pass

import (
	"fmt"
	"testing"
)

func TestCacheBoundEvictsPerInsert(t *testing.T) {
	c := NewCache(cacheShards) // one entry per shard
	for i := 0; i < 10*cacheShards; i++ {
		c.put(cacheAddress("p", []byte(fmt.Sprintf("fp-%d", i))), i)
	}
	if n := c.Len(); n > cacheShards {
		t.Fatalf("cache holds %d entries, bound is %d", n, cacheShards)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("inserts beyond the bound evicted nothing")
	}
	if st.Entries != c.Len() {
		t.Fatalf("Stats.Entries %d != Len %d", st.Entries, c.Len())
	}

	// Re-inserting an existing key replaces in place: no eviction.
	a := cacheAddress("p", []byte("stable"))
	c.put(a, 1)
	before := c.Stats().Evictions
	c.put(a, 2)
	if got := c.Stats().Evictions; got != before {
		t.Fatalf("overwrite evicted: %d -> %d", before, got)
	}
	if v, ok := c.get(a); !ok || v.(int) != 2 {
		t.Fatalf("overwrite lost the entry: %v %v", v, ok)
	}
}

func TestCacheSetMaxAndReset(t *testing.T) {
	c := &Cache{}
	if c.shardMax() != cacheShardMax {
		t.Fatalf("zero-value shard bound %d, want default %d", c.shardMax(), cacheShardMax)
	}
	c.SetMax(5 * cacheShards)
	if c.shardMax() != 5 {
		t.Fatalf("shard bound %d after SetMax, want 5", c.shardMax())
	}
	c.SetMax(1) // below one per shard: clamps to 1
	if c.shardMax() != 1 {
		t.Fatalf("shard bound %d, want 1", c.shardMax())
	}
	c.SetMax(0) // restores the default
	if c.shardMax() != cacheShardMax {
		t.Fatalf("shard bound %d after SetMax(0), want default", c.shardMax())
	}

	for i := 0; i < 64; i++ {
		c.put(cacheAddress("p", []byte(fmt.Sprintf("%d", i))), i)
	}
	if c.Len() == 0 {
		t.Fatal("nothing cached")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Reset left %d entries", c.Len())
	}
}
