package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := New("Title line", "name", "value", "ratio")
	tab.Add("short", 1, 1.5)
	tab.Add("a-much-longer-name", 123456, 0.333333)
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "Title line" {
		t.Fatalf("title: %q", lines[0])
	}
	// Header, separator and rows must share the same width.
	w := len(lines[1])
	for i := 2; i < len(lines); i++ {
		if len(strings.TrimRight(lines[i], " ")) > w {
			t.Fatalf("row %d wider than header:\n%s", i, s)
		}
	}
	if !strings.Contains(s, "a-much-longer-name") || !strings.Contains(s, "123456") {
		t.Fatalf("content missing:\n%s", s)
	}
	// Floats format with three decimals.
	if !strings.Contains(s, "0.333") {
		t.Fatalf("float formatting:\n%s", s)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tab := New("", "a", "b")
	tab.Add(1, 2)
	s := tab.String()
	if strings.HasPrefix(s, "\n") {
		t.Fatalf("leading blank line:\n%q", s)
	}
	if !strings.HasPrefix(s, "a") {
		t.Fatalf("should start with header:\n%q", s)
	}
}

func TestSeparatorMatchesHeaders(t *testing.T) {
	tab := New("t", "col", "x")
	tab.Add("yyyyyyyy", 1)
	s := tab.String()
	if !strings.Contains(s, "--------") {
		t.Fatalf("separator should widen to data:\n%s", s)
	}
}
