// Package report renders fixed-width text tables and simple series for
// the experiment harness (cmd/argobench) and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}
