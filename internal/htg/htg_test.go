package htg

import (
	"strings"
	"testing"

	"argo/internal/adl"
	"argo/internal/ir"
	"argo/internal/scil"
	"argo/internal/transform"
	"argo/internal/wcet"
)

func compile(t *testing.T, src, entry string, args ...ir.ArgSpec) *ir.Program {
	t.Helper()
	p, err := scil.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := scil.Check(p, scil.CheckWCET); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	prog, err := ir.Lower(p, entry, args)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

const pipelineSrc = `
function [outa, outb] = f(img)
  h = size(img, 1)
  w = size(img, 2)
  tmp = zeros(h, w)
  outa = zeros(h, w)
  outb = zeros(h, w)
  for i = 1:h
    for j = 1:w
      tmp(i, j) = img(i, j) * 2
    end
  end
  for i = 1:h
    for j = 1:w
      outa(i, j) = tmp(i, j) + 1
    end
  end
  for i = 1:h
    for j = 1:w
      outb(i, j) = tmp(i, j) - 1
    end
  end
endfunction`

func models(n int) []wcet.CostModel {
	p := adl.XentiumPlatform(n)
	ms := make([]wcet.CostModel, n)
	for i := range ms {
		ms[i] = wcet.ModelFor(p, i)
	}
	return ms
}

func TestBuildProducerConsumers(t *testing.T) {
	prog := compile(t, pipelineSrc, "f", ir.MatrixArg(6, 6))
	g := Build(prog)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) < 4 {
		t.Fatalf("nodes: %d\n%s", len(g.Nodes), g.Dump())
	}
	// The two consumer loops must depend on the producer loop but not on
	// each other.
	var producer, consA, consB *Node
	for _, n := range g.Nodes {
		u := n.Uses
		for v := range u.MatWrites {
			switch {
			case strings.HasPrefix(v.Name, "tmp"):
				producer = n
			case strings.HasPrefix(v.Name, "outa") && n.Kind == KindLoop:
				consA = n
			case strings.HasPrefix(v.Name, "outb") && n.Kind == KindLoop:
				consB = n
			}
		}
	}
	if producer == nil || consA == nil || consB == nil {
		t.Fatalf("missing tasks:\n%s", g.Dump())
	}
	if g.EdgeBetween(producer.ID, consA.ID) == nil && !g.reaches(producer.ID, consA.ID) {
		t.Fatal("missing dependence producer -> consA")
	}
	if g.EdgeBetween(consA.ID, consB.ID) != nil {
		t.Fatal("independent consumers must not depend on each other")
	}
}

func TestEdgesCarryVolumes(t *testing.T) {
	prog := compile(t, pipelineSrc, "f", ir.MatrixArg(4, 4))
	g := Build(prog)
	found := false
	for _, e := range g.Edges {
		for _, v := range e.Vars {
			if strings.HasPrefix(v.Name, "tmp") {
				found = true
				if e.VolumeBytes < 4*4*8 {
					t.Fatalf("volume %d too small", e.VolumeBytes)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no edge carries tmp:\n%s", g.Dump())
	}
}

func TestHierarchyLevels(t *testing.T) {
	prog := compile(t, `
function r = f(m)
  r = 0
  for i = 1:4
    s = 0
    for j = 1:4
      s = s + m(i, j)
    end
    r = r + s
  end
endfunction`, "f", ir.MatrixArg(4, 4))
	g := Build(prog)
	var loopNode *Node
	for _, n := range g.Nodes {
		if n.Kind == KindLoop {
			loopNode = n
		}
	}
	if loopNode == nil {
		t.Fatalf("no loop node:\n%s", g.Dump())
	}
	if loopNode.Children == nil || len(loopNode.Children.Nodes) < 2 {
		t.Fatal("loop node should carry a child hierarchy level")
	}
}

func TestAnnotateWCETAndAccesses(t *testing.T) {
	prog := compile(t, pipelineSrc, "f", ir.MatrixArg(8, 8))
	g := Build(prog)
	Annotate(g, models(4))
	for _, n := range g.Nodes {
		if len(n.WCET) != 4 {
			t.Fatalf("node %d has %d WCETs", n.ID, len(n.WCET))
		}
		if n.WCET[0] <= 0 {
			t.Fatalf("node %d WCET %d", n.ID, n.WCET[0])
		}
	}
	seq := g.SequentialWCET(0)
	cp := g.CriticalPathWCET(0)
	if cp <= 0 || cp > seq {
		t.Fatalf("critical path %d vs sequential %d", cp, seq)
	}
	if cp == seq {
		t.Fatal("pipeline graph should have parallelism (cp < seq)")
	}
}

func TestTransitiveReduction(t *testing.T) {
	prog := compile(t, pipelineSrc, "f", ir.MatrixArg(4, 4))
	g := Build(prog)
	// Snapshot reachability before reduction.
	n := len(g.Nodes)
	before := make([][]bool, n)
	for i := range before {
		before[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if i != j {
				before[i][j] = g.reaches(i, j)
			}
		}
	}
	edgesBefore := len(g.Edges)
	g.TransitiveReduction()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) > edgesBefore {
		t.Fatal("reduction added edges")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			after := g.reaches(i, j)
			if before[i][j] != after {
				t.Fatalf("reachability %d->%d changed from %v to %v:\n%s", i, j, before[i][j], after, g.Dump())
			}
		}
	}
}

func TestCoarsenChains(t *testing.T) {
	prog := compile(t, `
function out = f(v)
  n = length(v)
  a = zeros(1, n)
  b = zeros(1, n)
  out = zeros(1, n)
  for i = 1:n
    a(1, i) = v(1, i) * 2
  end
  for i = 1:n
    b(1, i) = a(1, i) + 1
  end
  for i = 1:n
    out(1, i) = b(1, i) * 3
  end
endfunction`, "f", ir.MatrixArg(1, 8))
	g := Build(prog)
	Annotate(g, models(2))
	nodesBefore := len(g.Nodes)
	merges := g.CoarsenChains()
	if merges == 0 || len(g.Nodes) >= nodesBefore {
		t.Fatalf("merges=%d nodes %d -> %d\n%s", merges, nodesBefore, len(g.Nodes), g.Dump())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeUntil(t *testing.T) {
	prog := compile(t, pipelineSrc, "f", ir.MatrixArg(8, 8))
	// Fission creates even more tasks first.
	transform.Apply(prog, transform.Options{Fission: true})
	g := Build(prog)
	Annotate(g, models(2))
	g.MergeUntil(3)
	if len(g.Nodes) > 3 {
		t.Fatalf("nodes after merge: %d", len(g.Nodes))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergePreservesSemantics(t *testing.T) {
	// Execute all node regions in ID order after merging; results must
	// match the original program (merging must respect dependences).
	prog := compile(t, pipelineSrc, "f", ir.MatrixArg(5, 5))
	in := make([]float64, 25)
	for i := range in {
		in[i] = float64(i) * 1.5
	}
	want, err := ir.NewExec(prog, nil).Run([][]float64{in})
	if err != nil {
		t.Fatal(err)
	}
	g := Build(prog)
	Annotate(g, models(2))
	g.MergeUntil(2)
	var stmts []ir.Stmt
	for _, n := range g.Nodes {
		stmts = append(stmts, n.Stmts...)
	}
	merged := &ir.Program{Entry: &ir.Func{
		Name: "merged", Params: prog.Entry.Params, Results: prog.Entry.Results, Body: stmts,
	}, Vars: prog.Vars}
	got, err := ir.NewExec(merged, nil).Run([][]float64{in})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for k := range want[i] {
			if want[i][k] != got[i][k] {
				t.Fatalf("result %d elem %d: %g vs %g", i, k, got[i][k], want[i][k])
			}
		}
	}
}

func TestDumpContainsTasksAndEdges(t *testing.T) {
	prog := compile(t, pipelineSrc, "f", ir.MatrixArg(4, 4))
	g := Build(prog)
	Annotate(g, models(1))
	d := g.Dump()
	if !strings.Contains(d, "task 0") || !strings.Contains(d, "->") {
		t.Fatalf("dump:\n%s", d)
	}
}

func TestCloneIsolatesAnnotateAndMerge(t *testing.T) {
	// The optimizer builds the graph once per candidate and clones it per
	// feedback round; annotating and merging the clone must leave the
	// original untouched and produce the same result as a fresh build.
	prog := compile(t, pipelineSrc, "f", ir.MatrixArg(8, 8))
	transform.Apply(prog, transform.Options{Fission: true})
	base := Build(prog)
	before := base.Dump()

	clone := base.Clone()
	Annotate(clone, models(2))
	clone.MergeUntil(3)
	if err := clone.Validate(); err != nil {
		t.Fatal(err)
	}

	if base.Dump() != before {
		t.Fatalf("mutating clone changed original dump:\n%s", base.Dump())
	}
	for i, n := range base.Nodes {
		if n.WCET != nil {
			t.Fatalf("clone annotate leaked WCET into original node %d", i)
		}
	}

	fresh := Build(prog)
	Annotate(fresh, models(2))
	fresh.MergeUntil(3)
	if got, want := clone.Dump(), fresh.Dump(); got != want {
		t.Fatalf("clone pipeline diverges from fresh build:\n--- clone ---\n%s\n--- fresh ---\n%s", got, want)
	}
}

func TestChunkedLoopsRecognizedIndependent(t *testing.T) {
	// A data-parallel loop split into chunks writing disjoint rows: the
	// interval dependence test must not create edges between the chunks.
	prog := compile(t, `
function out = f(img)
  h = size(img, 1)
  w = size(img, 2)
  out = zeros(h, w)
  for i = 1:h
    for j = 1:w
      out(i, j) = img(i, j) * 2
    end
  end
endfunction`, "f", ir.MatrixArg(8, 8))
	n := transform.ParallelizeLoops(prog, 4)
	if n == 0 {
		t.Fatal("loop did not chunk")
	}
	g := Build(prog)
	Annotate(g, models(4))
	// Find the chunk tasks (loop nodes writing `out` and reading img).
	var chunks []int
	for _, nd := range g.Nodes {
		if nd.Kind != KindLoop {
			continue
		}
		for v := range nd.Uses.MatWrites {
			if strings.HasPrefix(v.Name, "out") && nd.Uses.MatReads[prog.Entry.Params[0]] {
				chunks = append(chunks, nd.ID)
			}
		}
	}
	if len(chunks) < 4 {
		t.Fatalf("chunk tasks: %v\n%s", chunks, g.Dump())
	}
	for i := 0; i < len(chunks); i++ {
		for j := i + 1; j < len(chunks); j++ {
			if g.EdgeBetween(chunks[i], chunks[j]) != nil {
				t.Fatalf("false dependence between chunks %d and %d:\n%s", chunks[i], chunks[j], g.Dump())
			}
		}
	}
}

func TestHaloChunksStayDependent(t *testing.T) {
	// Stencil consumers read one row beyond their own chunk: producer and
	// consumer chunks with overlapping rows must keep their edges.
	prog := compile(t, `
function out = f(img)
  h = size(img, 1)
  w = size(img, 2)
  tmp = zeros(h, w)
  out = zeros(h, w)
  for i = 1:h
    for j = 1:w
      tmp(i, j) = img(i, j) * 2
    end
  end
  for i = 2:h-1
    for j = 1:w
      out(i, j) = tmp(i - 1, j) + tmp(i + 1, j)
    end
  end
endfunction`, "f", ir.MatrixArg(12, 6))
	transform.ParallelizeLoops(prog, 3)
	g := Build(prog)
	Annotate(g, models(2))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every stencil chunk must depend on at least one producer chunk.
	for _, nd := range g.Nodes {
		reads := false
		for v := range nd.Uses.MatReads {
			if strings.HasPrefix(v.Name, "tmp") {
				reads = true
			}
		}
		writesOut := false
		for v := range nd.Uses.MatWrites {
			if strings.HasPrefix(v.Name, "out") {
				writesOut = true
			}
		}
		if reads && writesOut && len(g.Preds(nd.ID)) == 0 {
			t.Fatalf("stencil chunk %d has no producers:\n%s", nd.ID, g.Dump())
		}
	}
}
