package htg

import "argo/internal/ir"

// Index-based freeze/thaw of a Graph (the ir snapshot codec applied to
// task graphs), which is what makes build-htg/annotate/coarsen results
// storable in the content-addressed pass cache: a frozen graph holds no
// pointers into any ir.Program, so it can be thawed against any program
// with the same content fingerprint — a later compilation of the same
// configuration, an argod request, another session.
//
// A frozen node stores its label, kind, statement traversal indices,
// annotation results (WCET, SharedAccesses), recursively frozen
// children, and the derived analysis state (Uses, Ranges) encoded by
// variable registration index. Every graph produced by
// Build/Clone/Annotate/MergeUntil maintains the invariant
// Uses == ir.ComputeUses(Stmts) and Ranges ==
// ir.CollectAccessRanges(Stmts) (addNode and mergeInto compute exactly
// those; Clone shares them; Annotate never touches them), so encoding
// the maps positionally and remapping them on thaw lands on the same
// analysis state a recomputation would — without paying the
// ComputeUses/CollectAccessRanges IR walks on every warm-compile
// restore, where they dominated the thaw cost.

// FrozenGraph is the pointer-free form of a Graph.
type FrozenGraph struct {
	Nodes []frozenNode
	Edges []frozenEdge
}

type frozenNode struct {
	Label          string
	Kind           NodeKind
	Stmts          []int32 // traversal indices into the source program
	Children       *FrozenGraph
	WCET           []int64
	SharedAccesses int64
	// Uses, encoded as registration-index sets (order irrelevant: the
	// thaw side rebuilds the maps).
	MatReads, MatWrites, ScalReads, ScalWrite []int32
	// Ranges, encoded as parallel (variable index, range) lists.
	RangeVars []int32
	RangeVals []ir.AccessRange
}

type frozenEdge struct {
	From, To    int
	Vars        []int32 // registration indices into Program.Vars
	VolumeBytes int
}

// freezeVarSet encodes one use set; ok is false if any member variable
// is unregistered.
func freezeVarSet(idx *ir.SnapshotIndex, set map[*ir.Var]bool) ([]int32, bool) {
	out := make([]int32, 0, len(set))
	for v := range set {
		i, ok := idx.Var(v)
		if !ok {
			return nil, false
		}
		out = append(out, i)
	}
	return out, true
}

// thawVarSet rebuilds one use set from its index encoding.
func thawVarSet(tab *ir.SnapshotTable, idx []int32) map[*ir.Var]bool {
	m := make(map[*ir.Var]bool, len(idx))
	for _, i := range idx {
		m[tab.Var(i)] = true
	}
	return m
}

// Freeze encodes the graph against idx. ok is false when any statement
// or variable (in edges, use sets, or access ranges) is not indexable
// (an unregistered straggler), in which case the graph must not be
// cached.
func (g *Graph) Freeze(idx *ir.SnapshotIndex) (*FrozenGraph, bool) {
	f := &FrozenGraph{
		Nodes: make([]frozenNode, len(g.Nodes)),
		Edges: make([]frozenEdge, len(g.Edges)),
	}
	for i, n := range g.Nodes {
		stmts, ok := idx.Stmts(n.Stmts)
		if !ok {
			return nil, false
		}
		if n.Uses == nil || n.Ranges == nil {
			// Violates the constructor invariant; decline to cache.
			return nil, false
		}
		fn := frozenNode{
			Label:          n.Label,
			Kind:           n.Kind,
			Stmts:          stmts,
			SharedAccesses: n.SharedAccesses,
		}
		if fn.MatReads, ok = freezeVarSet(idx, n.Uses.MatReads); !ok {
			return nil, false
		}
		if fn.MatWrites, ok = freezeVarSet(idx, n.Uses.MatWrites); !ok {
			return nil, false
		}
		if fn.ScalReads, ok = freezeVarSet(idx, n.Uses.ScalReads); !ok {
			return nil, false
		}
		if fn.ScalWrite, ok = freezeVarSet(idx, n.Uses.ScalWrite); !ok {
			return nil, false
		}
		fn.RangeVars = make([]int32, 0, len(n.Ranges))
		fn.RangeVals = make([]ir.AccessRange, 0, len(n.Ranges))
		for v, r := range n.Ranges {
			vi, ok := idx.Var(v)
			if !ok {
				return nil, false
			}
			fn.RangeVars = append(fn.RangeVars, vi)
			fn.RangeVals = append(fn.RangeVals, r)
		}
		if n.WCET != nil {
			fn.WCET = append([]int64(nil), n.WCET...)
		}
		if n.Children != nil {
			c, ok := n.Children.Freeze(idx)
			if !ok {
				return nil, false
			}
			fn.Children = c
		}
		f.Nodes[i] = fn
	}
	for i, e := range g.Edges {
		vars, ok := idx.Vars(e.Vars)
		if !ok {
			return nil, false
		}
		f.Edges[i] = frozenEdge{From: e.From, To: e.To, Vars: vars, VolumeBytes: e.VolumeBytes}
	}
	return f, true
}

// Thaw rebuilds a live graph against tab. Node IDs are positional (the
// invariant every Graph constructor maintains); Uses and Ranges are
// remapped from their index encodings, which reproduces the frozen
// graph's analysis state exactly (see the package comment above — the
// encoded maps are the ones ComputeUses/CollectAccessRanges produced on
// the freeze side, and remapping preserves contents).
func (f *FrozenGraph) Thaw(tab *ir.SnapshotTable) *Graph {
	g := &Graph{
		Nodes: make([]*Node, len(f.Nodes)),
		Edges: make([]Edge, len(f.Edges)),
	}
	for i := range f.Nodes {
		fn := &f.Nodes[i]
		rng := make(map[*ir.Var]ir.AccessRange, len(fn.RangeVars))
		for j, vi := range fn.RangeVars {
			rng[tab.Var(vi)] = fn.RangeVals[j]
		}
		n := &Node{
			ID:    i,
			Label: fn.Label,
			Kind:  fn.Kind,
			Stmts: tab.Stmts(fn.Stmts),
			Uses: &ir.UseSets{
				MatReads:  thawVarSet(tab, fn.MatReads),
				MatWrites: thawVarSet(tab, fn.MatWrites),
				ScalReads: thawVarSet(tab, fn.ScalReads),
				ScalWrite: thawVarSet(tab, fn.ScalWrite),
			},
			Ranges:         rng,
			SharedAccesses: fn.SharedAccesses,
		}
		if fn.WCET != nil {
			n.WCET = append([]int64(nil), fn.WCET...)
		}
		if fn.Children != nil {
			n.Children = fn.Children.Thaw(tab)
		}
		g.Nodes[i] = n
	}
	for i, e := range f.Edges {
		g.Edges[i] = Edge{From: e.From, To: e.To, Vars: tab.Vars(e.Vars), VolumeBytes: e.VolumeBytes}
	}
	return g
}
