// Package htg implements ARGO's Hierarchical Task Graph (paper §II-B):
// the task-level representation extracted from the lowered IR. Loops are
// enclosed in an additional hierarchy level, yielding a hierarchy of
// acyclic task graphs. Task dependencies carry the variables/buffers that
// must be communicated; task nodes carry their shared-resource access
// bounds (list of shared variables and worst-case access counts), exactly
// the information the scheduling/mapping and system-level WCET stages
// need.
package htg

import (
	"fmt"
	"sort"
	"strings"

	"argo/internal/ir"
	"argo/internal/wcet"
)

// NodeKind distinguishes task node flavours.
type NodeKind int

// Node kinds.
const (
	// KindRegion is a straight-line (or branchy, loop-free at top level)
	// statement region.
	KindRegion NodeKind = iota
	// KindLoop is a loop nest; Children holds the next hierarchy level.
	KindLoop
)

// Node is one task of the graph.
type Node struct {
	ID    int
	Label string
	Kind  NodeKind
	// Stmts is the IR region this task executes.
	Stmts []ir.Stmt
	// Children is the sub-graph of a loop body (hierarchy level below);
	// nil for region nodes and for collapsed loop nodes.
	Children *Graph
	// Uses are the task's may-read/may-write sets.
	Uses *ir.UseSets
	// Ranges are per-variable subscript intervals for the interval
	// dependence test (chunked loops over disjoint regions of one array
	// are recognized as independent).
	Ranges map[*ir.Var]ir.AccessRange
	// WCET is the isolated code-level bound per core id (filled by
	// Annotate).
	WCET []int64
	// SharedAccesses bounds the task's shared-memory accesses (filled by
	// Annotate; storage-aware).
	SharedAccesses int64
}

// Edge is a data dependence between tasks, carrying the set of
// communicated buffers and their total volume.
type Edge struct {
	From, To int
	// Vars are the matrix variables written by From and read by To.
	Vars []*ir.Var
	// VolumeBytes is the worst-case communicated volume.
	VolumeBytes int
}

// Graph is one hierarchy level: a DAG of task nodes in program order.
type Graph struct {
	Nodes []*Node
	Edges []Edge
}

// Succs returns the successor node ids of node id.
func (g *Graph) Succs(id int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.From == id {
			out = append(out, e.To)
		}
	}
	return out
}

// Preds returns the predecessor node ids of node id.
func (g *Graph) Preds(id int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.To == id {
			out = append(out, e.From)
		}
	}
	return out
}

// EdgeBetween returns the edge from a to b, or nil.
func (g *Graph) EdgeBetween(a, b int) *Edge {
	for i := range g.Edges {
		if g.Edges[i].From == a && g.Edges[i].To == b {
			return &g.Edges[i]
		}
	}
	return nil
}

// Build extracts the hierarchical task graph of a lowered program.
// Top-level loops become loop nodes (with one hierarchy level for their
// bodies); maximal runs of non-loop statements become region nodes.
func Build(prog *ir.Program) *Graph {
	return buildLevel(prog.Entry.Body, 0)
}

// maxHierarchyDepth bounds the hierarchy (paper: loops get one extra
// level each; in practice two levels suffice for scheduling).
const maxHierarchyDepth = 3

func buildLevel(stmts []ir.Stmt, depth int) *Graph {
	g := &Graph{}
	var pending []ir.Stmt
	flush := func() {
		if len(pending) == 0 {
			return
		}
		g.addNode(&Node{Kind: KindRegion, Stmts: pending})
		pending = nil
	}
	for _, s := range stmts {
		if loop, ok := s.(*ir.For); ok {
			flush()
			n := &Node{Kind: KindLoop, Stmts: []ir.Stmt{loop}}
			if depth+1 < maxHierarchyDepth && len(loop.Body) > 1 {
				n.Children = buildLevel(loop.Body, depth+1)
			}
			g.addNode(n)
			continue
		}
		pending = append(pending, s)
	}
	flush()
	g.connect()
	return g
}

func (g *Graph) addNode(n *Node) {
	n.ID = len(g.Nodes)
	n.Uses = ir.ComputeUses(n.Stmts)
	n.Ranges = ir.CollectAccessRanges(n.Stmts)
	if n.Label == "" {
		switch n.Kind {
		case KindLoop:
			if f, ok := n.Stmts[0].(*ir.For); ok && f.Label != "" {
				n.Label = "loop:" + f.Label
			} else {
				n.Label = fmt.Sprintf("loop%d", n.ID)
			}
		default:
			n.Label = fmt.Sprintf("region%d", n.ID)
		}
	}
	g.Nodes = append(g.Nodes, n)
}

// connect adds dependence edges between all conflicting node pairs in
// program order, annotated with communicated buffers.
//
// Scalar registers that every using task defines before reading (loop
// induction variables, iteration-local temporaries) are privatizable: they
// carry no real dependence and are excluded, which is what exposes the
// task-level parallelism between independent loop nests.
func (g *Graph) connect() {
	liveScalars := g.liveOutScalars()
	// Flatten each node's write sets once: dependsOn runs for every node
	// pair, and starting map iterators per pair dominates graph
	// construction on larger regions. Iteration order does not matter —
	// dependsOn is a pure predicate and edge Vars are sorted below.
	matW := make([][]*ir.Var, len(g.Nodes))
	scalW := make([][]*ir.Var, len(g.Nodes))
	for i, n := range g.Nodes {
		for v := range n.Uses.MatWrites {
			matW[i] = append(matW[i], v)
		}
		for v := range n.Uses.ScalWrite {
			scalW[i] = append(scalW[i], v)
		}
	}
	for i := 0; i < len(g.Nodes); i++ {
		for j := i + 1; j < len(g.Nodes); j++ {
			a, b := g.Nodes[i], g.Nodes[j]
			if !dependsOn(a, b, matW[i], matW[j], scalW[i], scalW[j], liveScalars) {
				continue
			}
			e := Edge{From: a.ID, To: b.ID}
			for _, v := range matW[i] {
				if b.Uses.MatReads[v] || b.Uses.MatWrites[v] {
					e.Vars = append(e.Vars, v)
					e.VolumeBytes += v.SizeBytes()
				}
			}
			sort.Slice(e.Vars, func(x, y int) bool { return e.Vars[x].Name < e.Vars[y].Name })
			g.Edges = append(g.Edges, e)
		}
	}
}

// liveOutScalars returns scalars that some node reads without defining
// first — only these carry real cross-task scalar dependences.
func (g *Graph) liveOutScalars() map[*ir.Var]bool {
	out := map[*ir.Var]bool{}
	for _, n := range g.Nodes {
		for v := range n.Uses.ScalReads {
			if !definesScalarBeforeUse(n.Stmts, v) {
				out[v] = true
			}
		}
		// Entry results are read after the program ends: their final
		// value matters, so writes to them must stay ordered.
		for v := range n.Uses.ScalWrite {
			if v.Result {
				out[v] = true
			}
		}
	}
	return out
}

// definesScalarBeforeUse reports whether the region unconditionally
// assigns v (by AssignScalar or as a loop induction variable) before any
// possible read.
func definesScalarBeforeUse(stmts []ir.Stmt, v *ir.Var) bool {
	for _, s := range stmts {
		if as, ok := s.(*ir.AssignScalar); ok && as.Dst == v {
			return !exprReadsScalar(as.Src, v)
		}
		if f, ok := s.(*ir.For); ok {
			if exprReadsScalar(f.Lo, v) || exprReadsScalar(f.Step, v) || exprReadsScalar(f.Hi, v) {
				return false
			}
			if f.IVar == v {
				return true
			}
			// Recurse: v may be defined before use inside the loop body
			// (e.g. the induction variable of a nested loop), which makes
			// it iteration-private there too.
			if !regionTouchesScalar(f.Body, v) {
				continue
			}
			return definesScalarBeforeUse(f.Body, v)
		}
		if stmtTouchesScalar(s, v) {
			return false
		}
	}
	return false
}

// exprReadsScalar reports whether one evaluation of e reads the scalar v
// (including inside matrix subscripts) — UseSets.AddExprUses restricted
// to a single variable, without materializing the sets.
func exprReadsScalar(e ir.Expr, v *ir.Var) bool {
	found := false
	ir.WalkExprs(e, func(sub ir.Expr) {
		if r, ok := sub.(*ir.VarRef); ok && r.V == v {
			found = true
		}
	})
	return found
}

// stmtTouchesScalar reports whether s, recursively, reads or writes the
// scalar v — ComputeUses restricted to a single variable, without
// materializing the sets.
func stmtTouchesScalar(s ir.Stmt, v *ir.Var) bool {
	touched := false
	ir.WalkStmts([]ir.Stmt{s}, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.AssignScalar:
			touched = st.Dst == v || exprReadsScalar(st.Src, v)
		case *ir.Store:
			for _, ix := range st.Idx {
				if exprReadsScalar(ix, v) {
					touched = true
				}
			}
			touched = touched || exprReadsScalar(st.Src, v)
		case *ir.For:
			touched = st.IVar == v || exprReadsScalar(st.Lo, v) ||
				exprReadsScalar(st.Step, v) || exprReadsScalar(st.Hi, v)
		case *ir.While:
			touched = exprReadsScalar(st.Cond, v)
		case *ir.If:
			touched = exprReadsScalar(st.Cond, v)
		}
		return !touched
	})
	return touched
}

// regionTouchesScalar reports whether any statement in the region reads
// or writes the scalar v.
func regionTouchesScalar(stmts []ir.Stmt, v *ir.Var) bool {
	for _, s := range stmts {
		if stmtTouchesScalar(s, v) {
			return true
		}
	}
	return false
}

// dependsOn reports a real dependence a -> b (a precedes b in program
// order): any matrix conflict, or a conflict on a live-out scalar.
// aMatW/bMatW and aScalW/bScalW are the flattened write sets of a and b.
func dependsOn(a, b *Node, aMatW, bMatW, aScalW, bScalW []*ir.Var, live map[*ir.Var]bool) bool {
	matConflict := func(v *ir.Var) bool {
		// Interval dependence test: disjoint subscript ranges on some
		// dimension prove independence (e.g. parallelized loop chunks).
		return !a.Ranges[v].DisjointFrom(b.Ranges[v])
	}
	for _, v := range aMatW {
		if (b.Uses.MatReads[v] || b.Uses.MatWrites[v]) && matConflict(v) {
			return true
		}
	}
	for _, v := range bMatW {
		if a.Uses.MatReads[v] && matConflict(v) {
			return true
		}
	}
	for _, v := range aScalW {
		if live[v] && (b.Uses.ScalReads[v] || b.Uses.ScalWrite[v]) {
			return true
		}
	}
	for _, v := range bScalW {
		if live[v] && a.Uses.ScalReads[v] {
			return true
		}
	}
	return false
}

// Clone returns a copy of the graph that shares the immutable per-node
// analysis state (Stmts, Uses, Ranges — all storage-independent
// and never mutated in place) but copies every Node, Edge, and edge
// variable list. Annotating or coarsening the copy never touches the
// receiver, which lets the compile driver build the task graph once per
// candidate and re-derive a fresh schedulable graph per feedback round.
func (g *Graph) Clone() *Graph {
	out := &Graph{Nodes: make([]*Node, len(g.Nodes)), Edges: make([]Edge, len(g.Edges))}
	for i, n := range g.Nodes {
		c := *n
		if n.Children != nil {
			c.Children = n.Children.Clone()
		}
		if n.WCET != nil {
			c.WCET = append([]int64(nil), n.WCET...)
		}
		out.Nodes[i] = &c
	}
	for i, e := range g.Edges {
		e.Vars = append([]*ir.Var(nil), e.Vars...)
		out.Edges[i] = e
	}
	return out
}

// Annotate fills per-core WCET bounds and shared access counts for every
// node, using the platform cost models and the default (IPET) engine.
// Each node's region is fingerprinted once and every unique cost model
// is analyzed through the content-addressed bound cache, so
// re-annotation across feedback rounds and optimizer candidates only
// pays for regions whose content (or variable storage) actually
// changed. The access counts ride along in the same cached report —
// they are model-independent, so the first core's report supplies them.
func Annotate(g *Graph, models []wcet.CostModel) {
	// The default selection has no cross-check engine, so no error path.
	_ = AnnotateWith(g, models, wcet.DefaultSelection())
}

// AnnotateWith is Annotate under an explicit engine selection. Bounds
// used downstream come from sel.Primary; when sel.Check is set (the
// "both" selector), every (region, model) pair is additionally analyzed
// by the check engine and an exact bound exceeding the primary bound
// fails the annotation loudly — that invariant breaking means one of
// the two analyses is unsound, and no schedule built on it can be
// trusted.
func AnnotateWith(g *Graph, models []wcet.CostModel, sel wcet.Selection) error {
	for _, n := range g.Nodes {
		n.WCET = make([]int64, len(models))
		fp := wcet.FingerprintRegion(n.Stmts)
		var rep0 wcet.Report
		for c, m := range models {
			// Homogeneous cores share a cost model: reuse the bound
			// computed for the first core with the same model.
			dup := -1
			for p := 0; p < c; p++ {
				if models[p] == m {
					dup = p
					break
				}
			}
			if dup >= 0 {
				n.WCET[c] = n.WCET[dup]
				continue
			}
			rep := wcet.AnalyzeFP(sel.Primary, fp, n.Stmts, m)
			if sel.Check != nil {
				chk := wcet.AnalyzeFP(sel.Check, fp, n.Stmts, m)
				if chk.Cycles > rep.Cycles {
					return fmt.Errorf("htg: wcet cross-check failed for task %q core %d: %s bound %d exceeds %s bound %d",
						n.Label, c, sel.Check.Name(), chk.Cycles, sel.Primary.Name(), rep.Cycles)
				}
			}
			if c == 0 {
				rep0 = rep
			}
			n.WCET[c] = rep.Cycles
		}
		n.SharedAccesses = rep0.SharedAccesses
		if n.Children != nil {
			if err := AnnotateWith(n.Children, models, sel); err != nil {
				return err
			}
		}
	}
	return nil
}

// Validate checks the graph is a DAG consistent with program order.
func (g *Graph) Validate() error {
	for _, e := range g.Edges {
		if e.From >= e.To {
			return fmt.Errorf("htg: edge %d->%d violates program order", e.From, e.To)
		}
		if e.From < 0 || e.To >= len(g.Nodes) {
			return fmt.Errorf("htg: edge %d->%d out of range", e.From, e.To)
		}
	}
	return nil
}

// TransitiveReduction removes edges implied by longer paths (for reports;
// schedulers tolerate redundant edges).
func (g *Graph) TransitiveReduction() {
	n := len(g.Nodes)
	reach := make([][]bool, n)
	adj := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		adj[i] = make([]bool, n)
	}
	for _, e := range g.Edges {
		adj[e.From][e.To] = true
	}
	// Longest-path style reachability via >= 2 hops.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if adj[i][k] || reach[i][k] {
				for j := 0; j < n; j++ {
					if adj[k][j] || reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
	}
	var kept []Edge
	for _, e := range g.Edges {
		if !reach[e.From][e.To] {
			kept = append(kept, e)
		}
	}
	g.Edges = kept
}

// CriticalPathWCET returns the longest path through the graph using the
// given core's WCET annotation (communication ignored): a lower bound on
// any schedule's makespan and the sequential-WCET when summed.
func (g *Graph) CriticalPathWCET(core int) int64 {
	dist := make([]int64, len(g.Nodes))
	var best int64
	for _, n := range g.Nodes { // nodes are topologically ordered by ID
		d := dist[n.ID] + n.WCET[core]
		for _, s := range g.Succs(n.ID) {
			if d > dist[s] {
				dist[s] = d
			}
		}
		if d > best {
			best = d
		}
	}
	return best
}

// SequentialWCET sums all node WCETs on the given core (the single-core
// bound).
func (g *Graph) SequentialWCET(core int) int64 {
	var total int64
	for _, n := range g.Nodes {
		total += n.WCET[core]
	}
	return total
}

// Dump renders the graph for reports.
func (g *Graph) Dump() string {
	var sb strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "task %d (%s)", n.ID, n.Label)
		if len(n.WCET) > 0 {
			fmt.Fprintf(&sb, " wcet=%d shared=%d", n.WCET[0], n.SharedAccesses)
		}
		sb.WriteString("\n")
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&sb, "  %d -> %d (%d bytes", e.From, e.To, e.VolumeBytes)
		for _, v := range e.Vars {
			fmt.Fprintf(&sb, " %s", v.Name)
		}
		sb.WriteString(")\n")
	}
	return sb.String()
}

// CoarsenChains merges single-successor/single-predecessor chains to
// reduce graph size (granularity control). Returns the number of merges.
func (g *Graph) CoarsenChains() int {
	merges := 0
	for {
		merged := false
		for _, e := range g.Edges {
			if len(g.Succs(e.From)) == 1 && g.mergeLegal(e.From, e.To) {
				g.mergeInto(e.From, e.To)
				merges++
				merged = true
				break
			}
		}
		if !merged {
			return merges
		}
	}
}

// mergeLegal reports whether node b's statements may be moved up to run
// right after node a's: no node strictly between them (in program order)
// may have a dependence path into b.
func (g *Graph) mergeLegal(a, b int) bool {
	for m := a + 1; m < b; m++ {
		if g.reaches(m, b) {
			return false
		}
	}
	return true
}

// reaches reports whether a dependence path x -> ... -> y exists.
func (g *Graph) reaches(x, y int) bool {
	if x == y {
		return true
	}
	seen := map[int]bool{}
	var dfs func(n int) bool
	dfs = func(n int) bool {
		if n == y {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, s := range g.Succs(n) {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(x)
}

// MergeUntil coarsens the graph (chains first, then smallest-WCET pairs
// linked by an edge) until at most maxNodes remain. Requires Annotate.
func (g *Graph) MergeUntil(maxNodes int) {
	g.CoarsenChains()
	for len(g.Nodes) > maxNodes {
		// Merge the edge whose endpoints have the smallest combined
		// WCET, provided the merge keeps the graph a DAG (no other path
		// From -> To).
		bestIdx := -1
		var bestCost int64
		for i, e := range g.Edges {
			if g.hasOtherPath(e.From, e.To) || !g.mergeLegal(e.From, e.To) {
				continue
			}
			c := g.Nodes[e.From].WCET[0] + g.Nodes[e.To].WCET[0]
			if bestIdx < 0 || c < bestCost {
				bestIdx, bestCost = i, c
			}
		}
		if bestIdx < 0 {
			return
		}
		g.mergeInto(g.Edges[bestIdx].From, g.Edges[bestIdx].To)
	}
}

// hasOtherPath reports whether a path a->...->b exists avoiding the
// direct edge.
func (g *Graph) hasOtherPath(a, b int) bool {
	seen := map[int]bool{}
	var dfs func(n int) bool
	dfs = func(n int) bool {
		if n == b {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, s := range g.Succs(n) {
			if n == a && s == b {
				continue // skip the direct edge
			}
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(a)
}

// mergeInto merges node b into node a (a before b), rebuilding ids/edges.
func (g *Graph) mergeInto(a, b int) {
	na, nb := g.Nodes[a], g.Nodes[b]
	na.Stmts = append(append([]ir.Stmt{}, na.Stmts...), nb.Stmts...)
	na.Kind = KindRegion
	na.Children = nil
	na.Uses = ir.ComputeUses(na.Stmts)
	na.Ranges = ir.CollectAccessRanges(na.Stmts)
	if na.WCET != nil && nb.WCET != nil {
		for c := range na.WCET {
			na.WCET[c] += nb.WCET[c]
		}
		na.SharedAccesses += nb.SharedAccesses
	}
	na.Label = na.Label + "+" + nb.Label
	// Remap: remove b, shift ids.
	newID := make([]int, len(g.Nodes))
	var nodes []*Node
	for _, n := range g.Nodes {
		if n.ID == b {
			newID[n.ID] = newID[a]
			continue
		}
		newID[n.ID] = len(nodes)
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.ID = newID[n.ID]
	}
	seen := map[[2]int]int{} // (from,to) -> index into edges
	var edges []Edge
	for _, e := range g.Edges {
		f, t := newID[e.From], newID[e.To]
		if f == t {
			continue
		}
		key := [2]int{f, t}
		if i, ok := seen[key]; ok {
			edges[i].VolumeBytes += e.VolumeBytes
			edges[i].Vars = append(edges[i].Vars, e.Vars...)
			continue
		}
		seen[key] = len(edges)
		edges = append(edges, Edge{From: f, To: t, Vars: e.Vars, VolumeBytes: e.VolumeBytes})
	}
	g.Nodes = nodes
	g.Edges = edges
	g.sortEdges()
}

func (g *Graph) sortEdges() {
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].From != g.Edges[j].From {
			return g.Edges[i].From < g.Edges[j].From
		}
		return g.Edges[i].To < g.Edges[j].To
	})
}
