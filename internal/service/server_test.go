package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"argo/pkg/argo"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestCompileEndpointCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"usecase":"weaa","platform":"xentium2"}`

	resp1, data1 := post(t, ts.URL+"/v1/compile", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, data1)
	}
	if h := resp1.Header.Get("X-Argo-Cache"); h != "miss" {
		t.Errorf("first request cache header %q, want miss", h)
	}
	resp2, data2 := post(t, ts.URL+"/v1/compile", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, data2)
	}
	if h := resp2.Header.Get("X-Argo-Cache"); h != "hit" {
		t.Errorf("second request cache header %q, want hit", h)
	}
	if !bytes.Equal(data1, data2) {
		t.Error("identical requests returned different artifacts")
	}
	var sum CompileSummary
	if err := json.Unmarshal(data1, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.UseCase != "weaa" || sum.Cores != 2 || sum.TotalBound <= 0 || len(sum.Tasks) == 0 {
		t.Errorf("summary %+v", sum)
	}
	st := s.cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("cache stats %+v, want 1 miss + 1 hit", st)
	}
}

// TestCompileCacheKeyCanonicalization: naming a built-in platform and
// inlining its ADL description must hit the same cache entry.
func TestCompileCacheKeyCanonicalization(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	adl, err := argo.EncodePlatform(argo.Platform("xentium2"))
	if err != nil {
		t.Fatal(err)
	}
	resp1, _ := post(t, ts.URL+"/v1/compile", `{"usecase":"weaa","platform":"xentium2"}`)
	inline := fmt.Sprintf(`{"usecase":"weaa","platform_adl":%s}`, adl)
	resp2, _ := post(t, ts.URL+"/v1/compile", inline)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("status %d / %d", resp1.StatusCode, resp2.StatusCode)
	}
	if h := resp2.Header.Get("X-Argo-Cache"); h != "hit" {
		t.Errorf("inline-ADL request cache header %q, want hit (canonicalization)", h)
	}
}

// TestSingleflightDedup: concurrent identical requests run the pipeline
// once; all callers get the shared result.
func TestSingleflightDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 8})
	var executions atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	real := s.compile
	s.compile = func(ctx context.Context, job *compileJob) (*argo.Artifacts, error) {
		if executions.Add(1) == 1 {
			close(started)
		}
		<-release
		return real(ctx, job)
	}

	const clients = 6
	results := make(chan string, clients)
	var wg sync.WaitGroup
	leaderGone := make(chan struct{})
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		defer close(leaderGone)
		resp, _ := post(t, ts.URL+"/v1/compile", `{"usecase":"weaa"}`)
		results <- resp.Header.Get("X-Argo-Cache")
	}()
	<-started
	for i := 1; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := post(t, ts.URL+"/v1/compile", `{"usecase":"weaa"}`)
			results <- resp.Header.Get("X-Argo-Cache")
		}()
	}
	// Wait until all followers are attached to the in-flight call, then
	// let the single execution finish.
	deadline := time.After(5 * time.Second)
	for s.cache.Stats().Dedups < clients-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d followers attached", s.cache.Stats().Dedups)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()
	close(results)

	if n := executions.Load(); n != 1 {
		t.Errorf("pipeline executed %d times for %d concurrent identical requests", n, clients)
	}
	counts := map[string]int{}
	for h := range results {
		counts[h]++
	}
	if counts["miss"] != 1 || counts["dedup"] != clients-1 {
		t.Errorf("cache headers %v, want 1 miss + %d dedup", counts, clients-1)
	}
}

// TestTimeout: a pipeline run exceeding the request budget returns 504.
func TestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Timeout: 30 * time.Millisecond})
	s.compile = func(ctx context.Context, job *compileJob) (*argo.Artifacts, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	resp, data := post(t, ts.URL+"/v1/compile", `{"usecase":"weaa"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Errorf("error body %q: %v", data, err)
	}
}

// TestPoolSaturation: with one worker busy, a different request that
// cannot get a slot within its budget returns 503.
func TestPoolSaturation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Timeout: 50 * time.Millisecond})
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock()
	started := make(chan struct{})
	s.compile = func(ctx context.Context, job *compileJob) (*argo.Artifacts, error) {
		close(started)
		<-release
		return nil, fmt.Errorf("held")
	}
	holdDone := make(chan struct{})
	go func() {
		defer close(holdDone)
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json",
			strings.NewReader(`{"usecase":"weaa"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	// A *different* request (different key — no dedup) must queue for
	// the worker slot and give up at its deadline.
	resp, data := post(t, ts.URL+"/v1/compile", `{"usecase":"polka"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, data)
	}
	if s.pool.Stats().Rejected != 1 {
		t.Errorf("pool stats %+v, want 1 rejected", s.pool.Stats())
	}
	unblock()
	<-holdDone
}

func TestSimulateEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, data := post(t, ts.URL+"/v1/simulate", `{"usecase":"weaa","platform":"xentium2","runs":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sim SimulateResponse
	if err := json.Unmarshal(data, &sim); err != nil {
		t.Fatal(err)
	}
	if len(sim.Runs) != 3 {
		t.Fatalf("%d runs, want 3", len(sim.Runs))
	}
	for _, run := range sim.Runs {
		if !run.WithinBound {
			t.Errorf("seed %d exceeded bound: %s", run.Seed, run.BoundError)
		}
		if run.Makespan <= 0 || run.Makespan > run.TotalBound {
			t.Errorf("seed %d: makespan %d vs bound %d", run.Seed, run.Makespan, run.TotalBound)
		}
	}
	// The compile went through the shared cache: a following /v1/compile
	// of the same model must hit.
	resp2, _ := post(t, ts.URL+"/v1/compile", `{"usecase":"weaa","platform":"xentium2"}`)
	if h := resp2.Header.Get("X-Argo-Cache"); h != "hit" {
		t.Errorf("compile after simulate: cache header %q, want hit", h)
	}
	if st := s.cache.Stats(); st.Misses != 1 {
		t.Errorf("cache stats %+v, want exactly 1 miss", st)
	}
}

func TestOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts.URL+"/v1/optimize", `{"usecase":"weaa","platform":"xentium2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var opt OptimizeResponse
	if err := json.Unmarshal(data, &opt); err != nil {
		t.Fatal(err)
	}
	if opt.Best == nil || len(opt.History) == 0 {
		t.Fatalf("optimize response %+v", opt)
	}
	if opt.Best.TotalBound <= 0 {
		t.Errorf("best bound %d", opt.Best.TotalBound)
	}
	resp2, _ := post(t, ts.URL+"/v1/optimize", `{"usecase":"weaa","platform":"xentium2"}`)
	if h := resp2.Header.Get("X-Argo-Cache"); h != "hit" {
		t.Errorf("second optimize cache header %q, want hit", h)
	}
	// Parallelism is excluded from the content address (results are
	// deterministic), so a request differing only in parallelism hits
	// the same entry.
	resp3, _ := post(t, ts.URL+"/v1/optimize", `{"usecase":"weaa","platform":"xentium2","parallelism":2}`)
	if h := resp3.Header.Get("X-Argo-Cache"); h != "hit" {
		t.Errorf("parallelism=2 optimize cache header %q, want hit", h)
	}
	resp4, data4 := post(t, ts.URL+"/v1/optimize", `{"usecase":"weaa","platform":"xentium2","parallelism":-1}`)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("negative parallelism: status %d (%s), want 400", resp4.StatusCode, data4)
	}
}

func TestListEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, data := get(t, ts.URL+"/v1/platforms")
	if resp.StatusCode != 200 {
		t.Fatalf("platforms status %d", resp.StatusCode)
	}
	var plats []PlatformInfo
	if err := json.Unmarshal(data, &plats); err != nil {
		t.Fatal(err)
	}
	if len(plats) == 0 {
		t.Error("no platforms listed")
	}
	for _, p := range plats {
		if p.Name == "" || p.Cores <= 0 || p.Interconnect == "" {
			t.Errorf("platform entry %+v", p)
		}
	}

	resp, data = get(t, ts.URL+"/v1/usecases")
	if resp.StatusCode != 200 {
		t.Fatalf("usecases status %d", resp.StatusCode)
	}
	var ucs []UseCaseInfo
	if err := json.Unmarshal(data, &ucs); err != nil {
		t.Fatal(err)
	}
	if len(ucs) != 3 {
		t.Errorf("%d use cases, want 3", len(ucs))
	}

	resp, data = get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 || !bytes.Contains(data, []byte(`"ok"`)) {
		t.Errorf("healthz %d %s", resp.StatusCode, data)
	}
}

func TestDebugVars(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/compile", `{"usecase":"weaa"}`)
	post(t, ts.URL+"/v1/compile", `{"usecase":"weaa"}`)

	resp, data := get(t, ts.URL+"/debug/vars")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var vars struct {
		Service struct {
			Requests map[string]int64 `json:"requests"`
			Cache    Stats            `json:"cache"`
			Pool     PoolStats        `json:"pool"`
			Latency  map[string]any   `json:"latency_us"`
		} `json:"service"`
	}
	if err := json.Unmarshal(data, &vars); err != nil {
		t.Fatalf("invalid /debug/vars JSON: %v\n%s", err, data)
	}
	sv := vars.Service
	if sv.Requests["compile"] != 2 {
		t.Errorf("compile requests %d, want 2", sv.Requests["compile"])
	}
	if sv.Cache.Misses != 1 || sv.Cache.Hits != 1 {
		t.Errorf("cache %+v, want 1 miss + 1 hit", sv.Cache)
	}
	if _, ok := sv.Latency["compile"]; !ok {
		t.Error("no compile latency histogram")
	}
	if sv.Pool.Workers <= 0 {
		t.Errorf("pool %+v", sv.Pool)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"empty", "/v1/compile", `{}`, 400},
		{"both model sources", "/v1/compile", `{"usecase":"weaa","source":"x"}`, 400},
		{"unknown usecase", "/v1/compile", `{"usecase":"nope"}`, 404},
		{"unknown platform", "/v1/compile", `{"usecase":"weaa","platform":"nope"}`, 404},
		{"unknown policy", "/v1/compile", `{"usecase":"weaa","policy":"nope"}`, 400},
		{"unknown field", "/v1/compile", `{"usecase":"weaa","bogus":1}`, 400},
		{"source without entry", "/v1/compile", `{"source":"function y = f(x)\ny = x\nendfunction"}`, 400},
		{"bad arg kind", "/v1/compile", `{"source":"x","entry":"f","args":[{"kind":"cube"}]}`, 400},
		{"invalid json", "/v1/compile", `{`, 400},
		{"simulate without usecase", "/v1/simulate", `{"source":"x","entry":"f"}`, 400},
		{"too many runs", "/v1/simulate", `{"usecase":"weaa","runs":500}`, 400},
		{"unanalyzable source", "/v1/compile", `{"source":"function y = f(x)\ny = undefined_call(x)\nendfunction","entry":"f","args":[{"kind":"scalar"}]}`, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d (%s), want %d", resp.StatusCode, data, tc.want)
			}
			var e ErrorResponse
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Errorf("error body %q", data)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := get(t, ts.URL+"/v1/compile")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compile status %d, want 405", resp.StatusCode)
	}
}
