package service

// /v1/session: interactive what-if sessions. A session pins a compiled
// model server-side; each edit re-runs only the dirty pass suffix on the
// session's private pass cache and reports exactly what it changed
// (passes skipped/reran, tasks moved, bound delta). Edits on one session
// are serialized by the session itself; edits on distinct sessions run
// concurrently, each holding one worker-pool slot like any compile.
// Streaming edits ("stream": true) answer with Server-Sent Events —
// one "pass" event per completed pipeline pass, then "result" and
// "done" — and are terminated with a "shutdown" event when the
// server starts draining, so graceful shutdown never leaves a client
// hanging on a silent long-lived connection.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"argo/pkg/argo"
)

// sessionUC returns the use case a session was created from (nil for
// raw-source sessions).
func sessionUC(sess *argo.Session) *argo.UseCase {
	uc, _ := sess.Meta.(*argo.UseCase)
	return uc
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("session_create")
	var req SessionCreateRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	job, err := s.resolve(&req.CompileRequest)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	var faults argo.FaultSpec
	if req.Faults != nil {
		faults = req.Faults.ToSpec()
		if err := faults.Validate(); err != nil {
			s.writeErr(w, badRequest("faults: %v", err))
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(&req.CompileRequest))
	defer cancel()
	if err := s.pool.Acquire(ctx); err != nil {
		s.writeErr(w, err)
		return
	}
	t0 := time.Now()
	sess, res, err := s.sessions.Create(ctx, job.source, job.options(), faults,
		argo.SessionApplyOptions{Verify: req.Verify})
	s.pool.Release()
	s.metrics.Observe("session_create", time.Since(t0))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	// Meta is set exactly once, before the id leaves the server, so
	// every later handler may read it without locking.
	sess.Meta = job.usecase
	s.writeJSON(w, OutcomeMiss, sessionSummary(sess.ID, job.usecase, res))
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("session_list")
	infos := s.sessions.List()
	out := make([]SessionInfoJSON, 0, len(infos))
	for _, in := range infos {
		out = append(out, SessionInfoJSON{
			ID:           in.ID,
			Edits:        in.Edits,
			IdleMS:       in.IdleFor.Milliseconds(),
			AgeMS:        in.Age.Milliseconds(),
			CacheEntries: in.CacheLen,
		})
	}
	s.writeJSON(w, OutcomeMiss, out)
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("session_get")
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, argo.ErrSessionNotFound)
		return
	}
	source, art, _, edits := sess.Snapshot()
	uc := sessionUC(sess)
	name, period := "", int64(0)
	if uc != nil {
		name, period = uc.Name, uc.Period
	}
	s.writeJSON(w, OutcomeMiss, &SessionGetResponse{
		Session:     sess.ID,
		Source:      source,
		Fingerprint: sess.Fingerprint(),
		Edits:       edits,
		Compile:     Summarize(name, period, art),
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("session_delete")
	if !s.sessions.Delete(r.PathValue("id")) {
		s.writeErr(w, argo.ErrSessionNotFound)
		return
	}
	s.writeJSON(w, OutcomeMiss, map[string]string{"status": "deleted"})
}

func (s *Server) handleSessionEdit(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("session_edit")
	id := r.PathValue("id")
	var req SessionEditRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	edit, err := req.toEdit()
	if err != nil {
		s.writeErr(w, badRequest("%v", err))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.clampTimeout(req.TimeoutMS))
	defer cancel()
	if err := s.pool.Acquire(ctx); err != nil {
		s.writeErr(w, err)
		return
	}
	if req.Stream {
		s.streamSessionEdit(w, r, ctx, cancel, id, edit, req.Verify)
		return
	}
	t0 := time.Now()
	res, err := s.sessionApply(ctx, id, edit, argo.SessionApplyOptions{Verify: req.Verify})
	s.pool.Release()
	s.metrics.Observe("session_edit", time.Since(t0))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, OutcomeMiss, s.editSummary(id, res))
}

// editSummary labels an edit result with the session's use case.
func (s *Server) editSummary(id string, res *argo.SessionEditResult) *SessionSummary {
	var uc *argo.UseCase
	if sess, ok := s.sessions.Get(id); ok {
		uc = sessionUC(sess)
	}
	return sessionSummary(id, uc, res)
}

// sseWrite emits one Server-Sent Event with a JSON payload.
func sseWrite(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// streamSessionEdit answers a streaming edit with Server-Sent Events.
// The caller has already acquired a worker-pool slot; the apply
// goroutine releases it. The handler returns promptly when the server
// starts draining (terminal "shutdown" event) or the client goes away —
// the in-flight analysis is cancelled via ctx and its result discarded
// (a cancelled edit is never committed to the session).
func (s *Server) streamSessionEdit(w http.ResponseWriter, r *http.Request, ctx context.Context, cancel context.CancelFunc, id string, edit argo.SessionEdit, verify bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.pool.Release()
		s.writeErr(w, badRequest("streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Pass timings flow from the applying goroutine; the buffer covers a
	// full pipeline so the producer never blocks on a live consumer. The
	// ctx arm unblocks it when the handler has already returned.
	events := make(chan argo.PassTiming, 64)
	type applyOut struct {
		res *argo.SessionEditResult
		err error
	}
	resCh := make(chan applyOut, 1)
	t0 := time.Now()
	go func() {
		defer s.pool.Release()
		res, err := s.sessionApply(ctx, id, edit, argo.SessionApplyOptions{
			Verify: verify,
			OnTiming: func(tm argo.PassTiming) {
				select {
				case events <- tm:
				case <-ctx.Done():
				}
			},
		})
		resCh <- applyOut{res, err}
	}()

	passEvent := func(tm argo.PassTiming) {
		ev := SessionPassEvent{Pass: tm.Pass, WallNS: tm.Wall.Nanoseconds()}
		if c := tm.Cache.String(); c != "" {
			ev.Cache = c
		}
		sseWrite(w, "pass", ev)
		fl.Flush()
	}
	for {
		select {
		case tm := <-events:
			passEvent(tm)
		case out := <-resCh:
			// All pass events were sent before the result (same
			// goroutine); drain whatever the select raced past.
			for {
				select {
				case tm := <-events:
					passEvent(tm)
					continue
				default:
				}
				break
			}
			s.metrics.Observe("session_edit", time.Since(t0))
			if out.err != nil {
				sseWrite(w, "error", ErrorResponse{Error: out.err.Error()})
			} else {
				sseWrite(w, "result", s.editSummary(id, out.res))
			}
			sseWrite(w, "done", map[string]string{"status": "done"})
			fl.Flush()
			return
		case <-s.drainCh:
			// Graceful shutdown: terminate the stream with an explicit
			// event and return so http.Server.Shutdown can complete. The
			// analysis is cancelled; nothing is committed.
			cancel()
			sseWrite(w, "shutdown", ErrorResponse{Error: "server draining; edit aborted"})
			fl.Flush()
			return
		case <-r.Context().Done():
			cancel()
			return
		}
	}
}

func (s *Server) handleSessionSimulate(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("session_simulate")
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, argo.ErrSessionNotFound)
		return
	}
	var req SessionSimulateRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	uc := sessionUC(sess)
	if uc == nil {
		s.writeErr(w, badRequest("session was created from raw source; simulate needs a use-case session (input generators)"))
		return
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		runs := req.Runs
		if runs <= 0 {
			runs = 1
		}
		for seed := int64(1); seed <= int64(runs); seed++ {
			seeds = append(seeds, seed)
		}
	}
	if len(seeds) > maxSimRuns {
		s.writeErr(w, badRequest("at most %d runs per request (got %d)", maxSimRuns, len(seeds)))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.clampTimeout(req.TimeoutMS))
	defer cancel()

	_, _, spec, _ := sess.Snapshot()
	injecting := spec.Enabled()
	resp := &SimulateResponse{}
	t0 := time.Now()
	for _, seed := range seeds {
		rep, art, err := sess.Simulate(ctx, uc.Inputs(seed), seed)
		if err != nil {
			s.writeErr(w, fmt.Errorf("seed %d: %w", seed, err))
			return
		}
		if resp.Compile == nil {
			resp.Compile = Summarize(uc.Name, uc.Period, art)
		}
		run := SimRun{
			Seed:          seed,
			Makespan:      rep.Makespan,
			ExecSpan:      rep.ExecSpan,
			BusWaitCycles: rep.BusWaitCycles,
			TotalBound:    art.Bound(),
			WithinBound:   true,
		}
		if err := argo.CheckBounds(art, rep); err != nil {
			run.WithinBound = false
			run.BoundError = err.Error()
		}
		if injecting {
			st := rep.Faults
			run.Faults = &st
			run.Violations = argo.Violations(art, rep)
		}
		resp.Runs = append(resp.Runs, run)
	}
	s.metrics.Observe("simulate", time.Since(t0))
	s.writeJSON(w, OutcomeMiss, resp)
}
