package service

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"

	"argo/internal/cluster"
)

// soakIndex hands out globally unique request indices so every compile
// in every phase is a genuine cache miss (the generated sources embed
// the index as a constant, which flows into the content-addressed job
// key and the IR fingerprints the pass cache is keyed by).
var soakIndex atomic.Int64

// runSoakPhase drives a closed-loop unique-compile load against url and
// returns the report.
func runSoakPhase(t *testing.T, url string, requests, concurrency int) *cluster.LoadReport {
	t.Helper()
	rep, err := cluster.RunLoad(context.Background(), cluster.LoadConfig{
		URL:         url,
		Concurrency: concurrency,
		Requests:    requests,
		Body: func(int) []byte {
			return cluster.UniqueCompileBody(int(soakIndex.Add(1)), "xentium4")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != requests || rep.Shed != 0 || rep.Errors != 0 {
		t.Fatalf("soak phase against %s: %s", url, rep)
	}
	return rep
}

// TestClusterSoakThroughput is the scale-out smoke: on a cache-miss
// workload (every request a unique source), a coordinator over two
// single-worker replicas must beat one single-worker replica by >= 1.5x
// requests/second — the sharding actually buys parallel capacity, not
// just correctness. Constrained replicas (Workers: 1) make the
// comparison about topology rather than the host's core count; the
// whole test is skipped on single-core hosts where no speedup is
// physically available.
func TestClusterSoakThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("soak: needs >= 2 CPUs for a scale-out signal")
	}
	const requests = 24
	replicaCfg := Config{Workers: 1, MaxQueue: 64}

	single, _ := startReplicas(t, 1, replicaCfg, nil)
	duo, _ := startReplicas(t, 2, replicaCfg, nil)
	_, coordURL := startCoordinator(t, duo, Config{})

	// One retry absorbs scheduler noise on busy CI hosts; the ratio must
	// clear the bar on at least one attempt.
	const want = 1.5
	var ratio float64
	for attempt := 0; attempt < 2; attempt++ {
		rep1 := runSoakPhase(t, single[0], requests, 4)
		rep2 := runSoakPhase(t, coordURL, requests, 4)
		ratio = rep2.RPS / rep1.RPS
		t.Logf("attempt %d: single %.1f rps, 2-replica cluster %.1f rps (%.2fx)",
			attempt, rep1.RPS, rep2.RPS, ratio)
		if ratio >= want {
			return
		}
	}
	t.Fatalf("2-replica cluster is %.2fx a single replica on a cache-miss workload; want >= %.1fx", ratio, want)
}
