package service

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestClusterRoutesAroundKilledReplica kills one replica mid-batch (its
// handler starts returning 500 after two requests) and requires the
// coordinator to route around it with zero silent drops: every cell
// still succeeds and every fingerprint is still the single-process
// oracle's, because retried work is recomputed deterministically on a
// surviving replica.
func TestClusterRoutesAroundKilledReplica(t *testing.T) {
	_, oracleURL := startCoordinatorlessOracle(t)

	var killedHits atomic.Int64
	wrap := func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if killedHits.Add(1) > 2 {
				http.Error(w, "replica down", http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	// Unbounded queues: a routed-around replica death concentrates the
	// whole batch on the survivors, and shedding is not under test here.
	peers, _ := startReplicas(t, 3, Config{MaxQueue: -1}, wrap)
	coord, coordURL := startCoordinator(t, peers, Config{MaxQueue: -1})

	usecases, platforms := matrixCells()
	var req BatchRequest
	for _, u := range usecases {
		for _, p := range platforms {
			req.Cells = append(req.Cells, BatchCell{
				CompileRequest: CompileRequest{UseCase: u, Platform: p},
			})
		}
	}
	got := postBatch(t, coordURL, &req)
	if got.Failed != 0 || got.OK != len(req.Cells) {
		t.Fatalf("ok/failed = %d/%d with a dead replica, want %d/0",
			got.OK, got.Failed, len(req.Cells))
	}
	for i, res := range got.Cells {
		cell := req.Cells[i]
		want := compileCell(t, oracleURL, cell.UseCase, cell.Platform)
		if res.Compile == nil || res.Compile.Fingerprint != want.Fingerprint {
			t.Errorf("%s x %s: fingerprint diverged after replica death: %+v",
				cell.UseCase, cell.Platform, res)
		}
	}
	// The dead replica was actually consulted, marked down, and the
	// failures were counted.
	if killedHits.Load() <= 2 {
		t.Fatalf("killed replica saw only %d requests; the kill never fired", killedHits.Load())
	}
	// Quarantine timing itself is pinned in internal/cluster (the 1s
	// window can expire before a slow -race batch finishes, so Down is
	// not asserted here).
	if st := coord.Cluster().Stats(); st.ReplicaErrors == 0 {
		t.Errorf("no replica errors recorded: %+v", st)
	}
}

// TestClusterHangingReplicaTimesOut wedges one replica (its handler
// blocks until the test ends) and requires forwards to time out after
// ForwardTimeout and retry on the next preference — still returning
// the oracle result, never hanging the client.
func TestClusterHangingReplicaTimesOut(t *testing.T) {
	_, oracleURL := startCoordinatorlessOracle(t)

	release := make(chan struct{})
	defer close(release)
	wrap := func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-release
		})
	}
	peers, _ := startReplicas(t, 3, Config{}, wrap)
	_, coordURL := startCoordinator(t, peers, Config{ForwardTimeout: 100 * time.Millisecond})

	usecases, platforms := matrixCells()
	start := time.Now()
	for _, u := range usecases {
		for _, p := range platforms[:3] {
			want := compileCell(t, oracleURL, u, p)
			got := compileCell(t, coordURL, u, p)
			if got.Fingerprint != want.Fingerprint {
				t.Errorf("%s x %s: fingerprint diverged with a hung replica", u, p)
			}
		}
	}
	// 9 cells, at most one 100ms timeout before the hung replica is
	// quarantined (plus a possible re-probe after quarantine expiry):
	// nothing here may block for the full client default.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("compiles took %v with a hung replica; timeout/retry is not working", elapsed)
	}
}

// TestClusterReadinessFlipsDuringRebalance grows the membership while
// the new replica is unreachable-slow, and checks the documented
// lifecycle: /readyz flips to 503 {"status":"rebalancing"} while hot
// entries are being replicated, traffic keeps being served during the
// rebalance, and readiness returns once warm replication drains.
func TestClusterReadinessFlipsDuringRebalance(t *testing.T) {
	peers, _ := startReplicas(t, 2, Config{}, nil)
	coord, coordURL := startCoordinator(t, peers, Config{ForwardTimeout: 200 * time.Millisecond})

	// Build a hot set worth replicating.
	usecases, platforms := matrixCells()
	for _, u := range usecases {
		for _, p := range platforms {
			compileCell(t, coordURL, u, p)
		}
	}
	if coord.Cluster().HotKeys() == 0 {
		t.Fatal("no hot keys after the warm-up pass")
	}

	// The new member is gated: warm replication to it stalls until we
	// open it, holding the cluster in the rebalancing state.
	gate := make(chan struct{})
	gated := func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-gate
			h.ServeHTTP(w, r)
		})
	}
	newPeer, _ := startReplicas(t, 1, Config{}, gated)

	body, _ := json.Marshal(&MembersRequest{Members: append(append([]string{}, peers...), newPeer[0])})
	resp, data := post(t, coordURL+"/v1/cluster/members", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("members swap: status %d: %s", resp.StatusCode, data)
	}
	var swap struct {
		Members     []string `json:"members"`
		Rebalancing bool     `json:"rebalancing"`
	}
	if err := json.Unmarshal(data, &swap); err != nil {
		t.Fatal(err)
	}
	if len(swap.Members) != 3 {
		t.Fatalf("membership after swap: %v", swap.Members)
	}

	// While the gate is closed the coordinator must report not-ready
	// with the rebalancing status...
	resp, data = get(t, coordURL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during rebalance: status %d: %s", resp.StatusCode, data)
	}
	var ready map[string]string
	if err := json.Unmarshal(data, &ready); err != nil {
		t.Fatal(err)
	}
	if ready["status"] != "rebalancing" {
		t.Fatalf("readyz status %q, want \"rebalancing\"", ready["status"])
	}
	// ...while continuing to serve analysis traffic (the gated member is
	// routed around via its timeout).
	if sum := compileCell(t, coordURL, "polka", "xentium4"); sum.Fingerprint == "" {
		t.Fatal("compile failed during rebalance")
	}

	// Open the gate: warm replication drains and readiness returns.
	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ = get(t, coordURL+"/readyz")
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("still not ready after rebalance: status %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if reb := coord.Cluster().Stats().Rebalances; reb == 0 {
		t.Error("no rebalance moves counted for a membership change with a hot set")
	}
}
