package service

import (
	"fmt"

	"argo/pkg/argo"
)

// SessionCreateRequest is the body of POST /v1/session: a compile
// request (the session's initial model and platform) plus an optional
// fault spec for /v1/session/{id}/simulate and an optional differential
// verification of the creating compile.
type SessionCreateRequest struct {
	CompileRequest
	// Faults is the session's fault-injection spec for simulate calls
	// (change it later with a set-faults edit).
	Faults *FaultSpecJSON `json:"faults,omitempty"`
	// Verify re-runs the creation as a cold cache-free compile and fails
	// unless both results are bit-identical.
	Verify bool `json:"verify,omitempty"`
}

// SessionEditRequest is the body of POST /v1/session/{id}/edit: one
// typed what-if operation. Exactly the fields of the selected op are
// read.
type SessionEditRequest struct {
	// Op is "replace-func", "set-param", "toggle-transform",
	// "set-policy", or "set-faults".
	Op string `json:"op"`

	// Func and Source select a replace-func edit: Source holds exactly
	// one function definition; Func (optional) names the function it must
	// replace.
	Func   string `json:"func,omitempty"`
	Source string `json:"source,omitempty"`

	// Param and Value select a set-param edit (ADL parameter path, e.g.
	// "shared.access_cycles").
	Param string  `json:"param,omitempty"`
	Value float64 `json:"value,omitempty"`

	// Transform and Disable select a toggle-transform edit.
	Transform string `json:"transform,omitempty"`
	Disable   bool   `json:"disable,omitempty"`

	// Policy selects a set-policy edit ("aware", "oblivious", "exact").
	Policy string `json:"policy,omitempty"`

	// Faults selects a set-faults edit (affects simulate only; no
	// re-analysis).
	Faults *FaultSpecJSON `json:"faults,omitempty"`

	// Verify runs the differential check: the incremental result must be
	// bit-identical to a cold compile of the edited source.
	Verify bool `json:"verify,omitempty"`
	// Stream switches the response to Server-Sent Events: one "pass"
	// event per completed pipeline pass, then "result" and "done" (or
	// "error"; "shutdown" if the server starts draining mid-edit).
	Stream bool `json:"stream,omitempty"`
	// TimeoutMS caps the edit's pipeline budget (clamped to the server
	// default, like CompileRequest.TimeoutMS).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// toEdit converts the wire form to the session edit op.
func (r *SessionEditRequest) toEdit() (argo.SessionEdit, error) {
	e := argo.SessionEdit{
		Op:        r.Op,
		Func:      r.Func,
		Source:    r.Source,
		Param:     r.Param,
		Value:     r.Value,
		Transform: r.Transform,
		Disable:   r.Disable,
	}
	if r.Op == argo.SessionOpSetPolicy {
		pol, err := ParsePolicy(r.Policy)
		if err != nil {
			return e, err
		}
		e.Policy = pol
	}
	if r.Op == argo.SessionOpSetFaults {
		if r.Faults == nil {
			return e, fmt.Errorf("set-faults needs faults")
		}
		e.Faults = r.Faults.ToSpec()
	}
	return e, nil
}

// SessionSummary is the JSON result of a session creation or edit: the
// incremental-analysis accounting plus the full compile summary.
type SessionSummary struct {
	// Session is the session id (path segment of the per-session routes).
	Session string `json:"session"`
	// Fingerprint content-addresses the analysis result; an edit that
	// does not change it was semantically a no-op.
	Fingerprint string `json:"fingerprint"`
	// PassesSkipped / PassesReran split the pipeline into the clean set
	// (restored from the session's pass cache) and the dirty suffix that
	// actually re-ran.
	PassesSkipped int `json:"passes_skipped"`
	PassesReran   int `json:"passes_reran"`
	// ChangedTasks lists the tasks the edit moved (window, bound, or
	// interference); omitted when nothing moved.
	ChangedTasks []int `json:"changed_tasks,omitempty"`
	// BoundDelta is newTotalBound - oldTotalBound (0 on creation).
	BoundDelta int64 `json:"bound_delta"`
	// WallNS is the re-analysis wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Verified reports that the differential cold compile ran and
	// matched bit-identically.
	Verified bool `json:"verified"`
	// Compile is the full result summary (same shape as /v1/compile).
	Compile *CompileSummary `json:"compile"`
}

// sessionSummary builds the wire form of one session analysis.
func sessionSummary(id string, uc *argo.UseCase, res *argo.SessionEditResult) *SessionSummary {
	name, period := "", int64(0)
	if uc != nil {
		name, period = uc.Name, uc.Period
	}
	return &SessionSummary{
		Session:       id,
		Fingerprint:   res.Fingerprint,
		PassesSkipped: res.PassesSkipped,
		PassesReran:   res.PassesReran,
		ChangedTasks:  res.ChangedTasks,
		BoundDelta:    res.BoundDelta,
		WallNS:        res.Wall.Nanoseconds(),
		Verified:      res.Verified,
		Compile:       Summarize(name, period, res.Artifacts),
	}
}

// SessionPassEvent is the payload of one SSE "pass" event of a
// streaming edit: a pipeline pass just finished (or restored from the
// session cache).
type SessionPassEvent struct {
	Pass   string `json:"pass"`
	WallNS int64  `json:"wall_ns"`
	// Cache is "hit" (restored, skipped), "miss" (ran, stored), or
	// omitted for uncacheable passes.
	Cache string `json:"cache,omitempty"`
}

// SessionInfoJSON is one row of GET /v1/session.
type SessionInfoJSON struct {
	ID           string `json:"id"`
	Edits        int    `json:"edits"`
	IdleMS       int64  `json:"idle_ms"`
	AgeMS        int64  `json:"age_ms"`
	CacheEntries int    `json:"cache_entries"`
}

// SessionGetResponse is the body of GET /v1/session/{id}: the session's
// current canonical source (a cold compile of exactly this text
// reproduces the session result bit-identically), its fingerprint, and
// the current compile summary.
type SessionGetResponse struct {
	Session     string          `json:"session"`
	Source      string          `json:"source"`
	Fingerprint string          `json:"fingerprint"`
	Edits       int             `json:"edits"`
	Compile     *CompileSummary `json:"compile"`
}

// SessionSimulateRequest is the body of POST /v1/session/{id}/simulate.
// The model, platform, and fault spec come from the session; only the
// input seeds are per-request. Seeds/Runs expand like /v1/simulate.
type SessionSimulateRequest struct {
	Seeds     []int64 `json:"seeds,omitempty"`
	Runs      int     `json:"runs,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}
