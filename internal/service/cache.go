package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
)

// Outcome classifies how a cache request was served.
type Outcome int

// Cache request outcomes.
const (
	// OutcomeMiss: the value was computed by this request.
	OutcomeMiss Outcome = iota
	// OutcomeHit: the value was already cached.
	OutcomeHit
	// OutcomeDedup: an identical request was already in flight and this
	// one attached to it (singleflight).
	OutcomeDedup
)

// String returns the outcome label used in headers and metrics.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeDedup:
		return "dedup"
	}
	return "miss"
}

// HashKey derives a content address from the canonicalized parts of a
// request: the parts are JSON-encoded in order and hashed with SHA-256.
// Callers must canonicalize free-form inputs first (in particular,
// platform descriptions are re-encoded through the ADL codec so that a
// built-in name and an equivalent inline description hash identically).
func HashKey(parts ...any) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			// Only service-controlled types are hashed; an encode error
			// is a programming bug, not an input error.
			panic(fmt.Sprintf("service: unhashable cache key part: %v", err))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// call is one in-flight computation followers can attach to.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a bounded, content-addressed result cache with singleflight
// deduplication: Do computes the value for a key at most once at a time,
// concurrent requests for the same key share the one execution, and
// successful results are retained under LRU eviction.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	calls   map[string]*call

	hits      atomic.Int64
	misses    atomic.Int64
	dedups    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns a cache retaining up to max entries (max <= 0 means
// an unbounded cache).
func NewCache(max int) *Cache {
	return &Cache{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		calls:   make(map[string]*call),
	}
}

// Do returns the cached value for key, or computes it with fn. If an
// identical computation is already in flight, Do waits for it and shares
// its result instead of starting a second one. Errors are returned but
// never cached. A follower whose ctx expires while waiting stops waiting
// and returns ctx's error; the in-flight computation itself keeps
// running under the leader's context.
func (c *Cache) Do(ctx context.Context, key string, fn func() (any, error)) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		c.hits.Add(1)
		return val, OutcomeHit, nil
	}
	if cl, ok := c.calls[key]; ok {
		c.mu.Unlock()
		c.dedups.Add(1)
		select {
		case <-cl.done:
			return cl.val, OutcomeDedup, cl.err
		case <-ctx.Done():
			return nil, OutcomeDedup, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	c.mu.Unlock()
	c.misses.Add(1)

	cl.val, cl.err = fn()

	c.mu.Lock()
	delete(c.calls, key)
	if cl.err == nil {
		c.insert(key, cl.val)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.val, OutcomeMiss, cl.err
}

// insert adds a value under LRU eviction. Caller holds c.mu.
func (c *Cache) insert(key string, val any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	if c.max > 0 && c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Get returns the cached value for key without computing anything (a
// peek — it still counts as a hit and refreshes the entry's LRU
// position). The coordinator uses it to serve its forwarded-response
// tier before routing.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key directly, bypassing singleflight (the
// coordinator uses it to retain forwarded replica responses; the value
// was computed remotely, so there is no local call to deduplicate).
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, val)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Dedups    int64 `json:"dedups"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Dedups:    c.dedups.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
