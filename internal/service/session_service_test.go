package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"argo/pkg/argo"
)

func createSession(t *testing.T, url, body string) *SessionSummary {
	t.Helper()
	resp, data := post(t, url+"/v1/session", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d: %s", resp.StatusCode, data)
	}
	var sum SessionSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Session == "" {
		t.Fatal("create returned no session id")
	}
	return &sum
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	sum := createSession(t, ts.URL, `{"usecase":"polka","platform":"xentium4","verify":true}`)
	if !sum.Verified {
		t.Fatal("create with verify:true not verified")
	}
	if sum.Compile == nil || sum.Compile.TotalBound <= 0 {
		t.Fatalf("create summary incomplete: %+v", sum.Compile)
	}
	id := sum.Session

	// GET returns the canonical source and current state.
	resp, data := get(t, ts.URL+"/v1/session/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d: %s", resp.StatusCode, data)
	}
	var got SessionGetResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Source == "" || got.Fingerprint != sum.Fingerprint {
		t.Fatalf("get mismatch: fingerprint %s vs create %s", got.Fingerprint, sum.Fingerprint)
	}

	// Edit: the incremental path must skip clean passes and report the
	// bound move; verify makes it differentially checked server-side.
	resp, data = post(t, ts.URL+"/v1/session/"+id+"/edit",
		`{"op":"set-param","param":"shared.access_cycles","value":40,"verify":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit: %d: %s", resp.StatusCode, data)
	}
	var edited SessionSummary
	if err := json.Unmarshal(data, &edited); err != nil {
		t.Fatal(err)
	}
	if !edited.Verified {
		t.Fatal("edit with verify:true not verified")
	}
	if edited.PassesSkipped == 0 {
		t.Fatalf("edit skipped no passes (reran %d): session cache ineffective", edited.PassesReran)
	}
	if edited.BoundDelta == 0 || len(edited.ChangedTasks) == 0 {
		t.Fatalf("edit reported no effect: delta=%d changed=%v", edited.BoundDelta, edited.ChangedTasks)
	}

	// The listing shows the session with one edit.
	resp, data = get(t, ts.URL+"/v1/session")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d: %s", resp.StatusCode, data)
	}
	var infos []SessionInfoJSON
	if err := json.Unmarshal(data, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != id || infos[0].Edits != 1 {
		t.Fatalf("listing wrong: %+v", infos)
	}

	// Delete, then every per-session route answers 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+id, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp2.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/session/"+id)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: %d, want 404", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/session/"+id+"/edit", `{"op":"set-policy","policy":"oblivious"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("edit after delete: %d, want 404", resp.StatusCode)
	}
}

func TestSessionEvictionOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1})
	first := createSession(t, ts.URL, `{"usecase":"polka"}`)
	second := createSession(t, ts.URL, `{"usecase":"polka"}`)
	resp, _ := get(t, ts.URL+"/v1/session/"+first.Session)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still answers: %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/session/"+second.Session)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live session gone: %d", resp.StatusCode)
	}
}

func TestSessionSimulate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sum := createSession(t, ts.URL, `{"usecase":"polka","faults":{"seed":3,"access_jitter":0.5}}`)

	resp, data := post(t, ts.URL+"/v1/session/"+sum.Session+"/simulate", `{"runs":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d: %s", resp.StatusCode, data)
	}
	var sim SimulateResponse
	if err := json.Unmarshal(data, &sim); err != nil {
		t.Fatal(err)
	}
	if len(sim.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(sim.Runs))
	}
	for _, run := range sim.Runs {
		if !run.WithinBound {
			t.Fatalf("seed %d: in-budget fault injection broke the bound: %s", run.Seed, run.BoundError)
		}
		if run.Faults == nil || run.Faults.AccessFaults == 0 {
			t.Fatalf("seed %d: session fault spec not applied: %+v", run.Seed, run.Faults)
		}
	}

	// Raw-source sessions have no input generators: simulate is a 400.
	raw := createSession(t, ts.URL,
		`{"source":"function y = main(x)\n  y = x * 2\nendfunction","entry":"main","args":[{"kind":"matrix","rows":4,"cols":4}]}`)
	resp, _ = post(t, ts.URL+"/v1/session/"+raw.Session+"/simulate", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("raw-source simulate: %d, want 400", resp.StatusCode)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := sseEvent{}
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	return events
}

func TestSessionEditStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sum := createSession(t, ts.URL, `{"usecase":"polka"}`)

	resp, err := http.Post(ts.URL+"/v1/session/"+sum.Session+"/edit", "application/json",
		strings.NewReader(`{"op":"set-param","param":"shared.access_cycles","value":35,"stream":true,"verify":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	events := readSSE(t, bufio.NewScanner(resp.Body))

	passes, kinds := 0, map[string]int{}
	var result *SessionSummary
	for _, ev := range events {
		kinds[ev.event]++
		switch ev.event {
		case "pass":
			var pe SessionPassEvent
			if err := json.Unmarshal([]byte(ev.data), &pe); err != nil || pe.Pass == "" {
				t.Fatalf("bad pass event %q: %v", ev.data, err)
			}
			passes++
		case "result":
			var s SessionSummary
			if err := json.Unmarshal([]byte(ev.data), &s); err != nil {
				t.Fatalf("bad result event %q: %v", ev.data, err)
			}
			result = &s
		case "error", "shutdown":
			t.Fatalf("unexpected %s event: %s", ev.event, ev.data)
		}
	}
	if passes == 0 {
		t.Fatal("stream delivered no pass events")
	}
	if result == nil || !result.Verified {
		t.Fatalf("stream result missing or unverified: %+v", result)
	}
	if kinds["done"] != 1 {
		t.Fatalf("stream not terminated with done: %v", kinds)
	}
	// Every executed pass shows up as an event (hit or ran).
	if passes != result.PassesSkipped+result.PassesReran {
		t.Fatalf("%d pass events vs %d+%d accounted passes",
			passes, result.PassesSkipped, result.PassesReran)
	}
}

// TestSessionDrainClosesStream is the graceful-shutdown contract for
// long-lived streams: when the server starts draining mid-edit, the
// active SSE stream is flushed and closed with a terminal "shutdown"
// event instead of hanging until the shutdown grace expires.
func TestSessionDrainClosesStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sum := createSession(t, ts.URL, `{"usecase":"polka"}`)

	var once sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	orig := s.sessionApply
	s.sessionApply = func(ctx context.Context, id string, e argo.SessionEdit, aopt argo.SessionApplyOptions) (*argo.SessionEditResult, error) {
		once.Do(func() { close(entered) })
		select {
		case <-release:
		case <-ctx.Done():
		}
		return orig(ctx, id, e, aopt)
	}
	defer close(release)

	type streamOut struct {
		events []sseEvent
		err    error
	}
	outc := make(chan streamOut, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/session/"+sum.Session+"/edit", "application/json",
			strings.NewReader(`{"op":"set-policy","policy":"oblivious","stream":true}`))
		if err != nil {
			outc <- streamOut{err: err}
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
			outc <- streamOut{err: fmt.Errorf("content type %q", ct)}
			return
		}
		sc := bufio.NewScanner(resp.Body)
		outc <- streamOut{events: readSSE(t, sc)}
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("edit never reached the apply seam")
	}
	s.StartDraining()

	select {
	case out := <-outc:
		if out.err != nil {
			t.Fatal(out.err)
		}
		if len(out.events) == 0 {
			t.Fatal("stream closed without any event")
		}
		last := out.events[len(out.events)-1]
		if last.event != "shutdown" {
			t.Fatalf("stream ended with %q event, want shutdown (events: %+v)", last.event, out.events)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after StartDraining")
	}

	// Draining is also visible to the load balancer.
	resp, _ := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", resp.StatusCode)
	}
}

func TestSessionEditBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sum := createSession(t, ts.URL, `{"usecase":"polka"}`)

	cases := []struct {
		body string
		want int
	}{
		{`{"op":"frobnicate"}`, http.StatusUnprocessableEntity},
		{`{"op":"set-param","param":"nope","value":1}`, http.StatusUnprocessableEntity},
		{`{"op":"set-policy","policy":"warp-speed"}`, http.StatusBadRequest},
		{`{"op":"set-faults"}`, http.StatusBadRequest},
		{`{"op":"set-param","param":"shared.access_cycles","value":30,"bogus":true}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, data := post(t, ts.URL+"/v1/session/"+sum.Session+"/edit", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: got %d want %d (%s)", c.body, resp.StatusCode, c.want, data)
		}
	}
	// The session survived all of it.
	resp, _ := get(t, ts.URL+"/v1/session/"+sum.Session)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session gone after bad edits: %d", resp.StatusCode)
	}
}

func TestSessionMetricsExported(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	liveBefore, _, _, editsBefore := argo.SessionCounters()
	sum := createSession(t, ts.URL, `{"usecase":"polka"}`)
	resp, _ := post(t, ts.URL+"/v1/session/"+sum.Session+"/edit",
		`{"op":"set-param","param":"shared.access_cycles","value":25}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit: %d", resp.StatusCode)
	}
	live, _, _, edits := argo.SessionCounters()
	if live != liveBefore+1 || edits != editsBefore+1 {
		t.Fatalf("counters did not move: live %d->%d edits %d->%d", liveBefore, live, editsBefore, edits)
	}

	// /debug/vars serves the session and pass-cache expvars.
	resp, data := get(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars: %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(data, &vars); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"argo_session_live", "argo_session_evicted", "argo_session_edits",
		"argo_session_passes_skipped", "argo_session_passes_reran",
		"argo_pass_cache_entries", "argo_pass_cache_evictions",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %s", key)
		}
	}
}
