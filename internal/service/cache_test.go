package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCacheHitAndMiss(t *testing.T) {
	c := NewCache(4)
	ctx := context.Background()
	calls := 0
	fn := func() (any, error) { calls++; return 42, nil }

	v, outcome, err := c.Do(ctx, "k", fn)
	if err != nil || v != 42 || outcome != OutcomeMiss {
		t.Fatalf("first Do: v=%v outcome=%v err=%v", v, outcome, err)
	}
	v, outcome, err = c.Do(ctx, "k", fn)
	if err != nil || v != 42 || outcome != OutcomeHit {
		t.Fatalf("second Do: v=%v outcome=%v err=%v", v, outcome, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	ctx := context.Background()
	calls := 0
	boom := errors.New("boom")
	fn := func() (any, error) { calls++; return nil, boom }

	if _, _, err := c.Do(ctx, "k", fn); !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	if _, _, err := c.Do(ctx, "k", fn); !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (errors must not be cached)", calls)
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("cache holds %d entries after errors, want 0", n)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	ctx := context.Background()
	mk := func(v int) func() (any, error) { return func() (any, error) { return v, nil } }

	c.Do(ctx, "a", mk(1))
	c.Do(ctx, "b", mk(2))
	c.Do(ctx, "a", mk(0)) // touch a: b becomes LRU
	c.Do(ctx, "c", mk(3)) // evicts b

	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions %d, want 1", ev)
	}
	if _, outcome, _ := c.Do(ctx, "a", mk(0)); outcome != OutcomeHit {
		t.Errorf("a evicted, want retained")
	}
	if _, outcome, _ := c.Do(ctx, "b", mk(2)); outcome != OutcomeMiss {
		t.Errorf("b retained, want evicted")
	}
}

// TestCacheSingleflight checks that concurrent identical requests share
// one computation: N-1 followers attach to the leader's in-flight call.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(4)
	ctx := context.Background()
	const followers = 5

	started := make(chan struct{})
	release := make(chan struct{})
	var calls int
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do(ctx, "k", func() (any, error) {
			calls++
			close(started)
			<-release
			return "shared", nil
		})
	}()
	<-started

	var wg sync.WaitGroup
	results := make(chan Outcome, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, outcome, err := c.Do(ctx, "k", func() (any, error) {
				t.Error("follower executed fn")
				return nil, nil
			})
			if err != nil || v != "shared" {
				t.Errorf("follower: v=%v err=%v", v, err)
			}
			results <- outcome
		}()
	}
	// Let followers attach, then release the leader.
	deadline := time.After(2 * time.Second)
	for c.Stats().Dedups < followers {
		select {
		case <-deadline:
			t.Fatalf("only %d followers attached", c.Stats().Dedups)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()
	<-leaderDone
	close(results)
	for outcome := range results {
		if outcome != OutcomeDedup {
			t.Errorf("follower outcome %v, want dedup", outcome)
		}
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
}

// TestCacheFollowerTimeout checks a follower stops waiting when its own
// context expires while the leader keeps computing.
func TestCacheFollowerTimeout(t *testing.T) {
	c := NewCache(4)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.Do(context.Background(), "k", func() (any, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, outcome, err := c.Do(ctx, "k", func() (any, error) { return nil, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", err)
	}
	if outcome != OutcomeDedup {
		t.Fatalf("outcome %v, want dedup", outcome)
	}
}

func TestHashKeyCanonical(t *testing.T) {
	a := HashKey("argo/v1", "compile", "src", "entry")
	b := HashKey("argo/v1", "compile", "src", "entry")
	if a != b {
		t.Error("identical parts hash differently")
	}
	if HashKey("argo/v1", "optimize", "src", "entry") == a {
		t.Error("different kinds hash identically")
	}
	// Concatenation must not be ambiguous across part boundaries.
	if HashKey("ab", "c") == HashKey("a", "bc") {
		t.Error("part boundaries are ambiguous")
	}
	if len(a) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(a))
	}
}
