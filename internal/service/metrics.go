package service

import (
	"encoding/json"
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in microseconds
// (exponential 1-2-5 ladder up to 10 s, plus +Inf).
var latencyBuckets = [...]int64{
	100, 200, 500,
	1_000, 2_000, 5_000,
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
	10_000_000,
}

// Histogram is a fixed-bucket latency histogram. It implements
// expvar.Var: String renders {"count":..,"sum_us":..,"max_us":..,
// "buckets":{"le_100us":..,...,"le_inf":..}} with cumulative bucket
// counts (Prometheus-style).
type Histogram struct {
	count  atomic.Int64
	sumUS  atomic.Int64
	maxUS  atomic.Int64
	bucket [len(latencyBuckets) + 1]atomic.Int64 // last = +Inf
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
	for i, ub := range latencyBuckets {
		if us <= ub {
			h.bucket[i].Add(1)
			return
		}
	}
	h.bucket[len(latencyBuckets)].Add(1)
}

// snapshot renders the histogram as a JSON-marshalable map.
func (h *Histogram) snapshot() map[string]any {
	buckets := make(map[string]int64, len(latencyBuckets)+1)
	var cum int64
	for i, ub := range latencyBuckets {
		cum += h.bucket[i].Load()
		buckets[bucketLabel(ub)] = cum
	}
	cum += h.bucket[len(latencyBuckets)].Load()
	buckets["le_inf"] = cum
	return map[string]any{
		"count":   h.count.Load(),
		"sum_us":  h.sumUS.Load(),
		"max_us":  h.maxUS.Load(),
		"buckets": buckets,
	}
}

func bucketLabel(us int64) string {
	switch {
	case us >= 1_000_000:
		return "le_" + itoa(us/1_000_000) + "s"
	case us >= 1_000:
		return "le_" + itoa(us/1_000) + "ms"
	}
	return "le_" + itoa(us) + "us"
}

func itoa(v int64) string {
	// Tiny positive-int formatter (avoids strconv import noise in the
	// hot path; values are bucket bounds, always < 1000).
	if v == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// String implements expvar.Var.
func (h *Histogram) String() string {
	b, _ := json.Marshal(h.snapshot())
	return string(b)
}

// Metrics aggregates the service's observability state. It implements
// expvar.Var, rendering one JSON object with request counters, error
// counters, cache statistics, pool gauges, and per-stage latency
// histograms, so it can be published into the process-global expvar
// registry and served at /debug/vars.
type Metrics struct {
	mu        sync.Mutex
	requests  map[string]*atomic.Int64 // per endpoint
	errors    map[string]*atomic.Int64 // per status class, e.g. "4xx"
	latencies map[string]*Histogram    // per pipeline stage
	retries   atomic.Int64
	cache     *Cache
	pool      *Pool
	started   time.Time

	// cluster, when set, contributes the coordinator's counters to the
	// snapshot under the "cluster" key.
	cluster func() any
}

// SetCluster installs a cluster-stats source (coordinator mode only).
// Call before the server starts serving; the snapshot reads it without
// further synchronization.
func (m *Metrics) SetCluster(fn func() any) { m.cluster = fn }

// NewMetrics returns metrics bound to a cache and pool.
func NewMetrics(cache *Cache, pool *Pool, started time.Time) *Metrics {
	return &Metrics{
		requests:  make(map[string]*atomic.Int64),
		errors:    make(map[string]*atomic.Int64),
		latencies: make(map[string]*Histogram),
		cache:     cache,
		pool:      pool,
		started:   started,
	}
}

// Request counts one request to an endpoint.
func (m *Metrics) Request(endpoint string) {
	m.counter(m.requests, endpoint).Add(1)
}

// Error counts one error reply by status class ("4xx", "5xx").
func (m *Metrics) Error(class string) {
	m.counter(m.errors, class).Add(1)
}

// Retry counts one transient-failure retry.
func (m *Metrics) Retry() { m.retries.Add(1) }

// Observe records one stage latency.
func (m *Metrics) Observe(stage string, d time.Duration) {
	m.mu.Lock()
	h, ok := m.latencies[stage]
	if !ok {
		h = &Histogram{}
		m.latencies[stage] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

func (m *Metrics) counter(set map[string]*atomic.Int64, key string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := set[key]
	if !ok {
		c = &atomic.Int64{}
		set[key] = c
	}
	return c
}

// snapshot renders all metrics as a JSON-marshalable map.
func (m *Metrics) snapshot() map[string]any {
	m.mu.Lock()
	requests := make(map[string]int64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v.Load()
	}
	errors := make(map[string]int64, len(m.errors))
	for k, v := range m.errors {
		errors[k] = v.Load()
	}
	latencies := make(map[string]any, len(m.latencies))
	for k, h := range m.latencies {
		latencies[k] = h.snapshot()
	}
	m.mu.Unlock()
	snap := map[string]any{
		"uptime_s":   int64(time.Since(m.started).Seconds()),
		"requests":   requests,
		"errors":     errors,
		"retries":    m.retries.Load(),
		"cache":      m.cache.Stats(),
		"pool":       m.pool.Stats(),
		"latency_us": latencies,
	}
	if m.cluster != nil {
		snap["cluster"] = m.cluster()
	}
	return snap
}

// String implements expvar.Var.
func (m *Metrics) String() string {
	b, _ := json.Marshal(m.snapshot())
	return string(b)
}

// compile-time interface checks
var (
	_ expvar.Var = (*Histogram)(nil)
	_ expvar.Var = (*Metrics)(nil)
)
