package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"argo/internal/conc"
	"argo/pkg/argo"
)

// This file is the coordinator side of the sharded analysis cluster
// (internal/cluster): compile keys are consistent-hash routed to the
// owning replica with a local forwarded-response cache tier in front,
// /v1/optimize fans whole optimizer-ladder candidates out to remote
// candidate workers (/v1/candidate) and reduces exactly like the
// in-process ladder, and GET /v1/cluster + POST /v1/cluster/members
// expose and change the topology. Sessions and simulation stay local:
// both need live artifacts in this process's memory, not a wire
// summary, so sharding them would buy nothing.

// forwarded is what the coordinator caches (under "fwd:"-prefixed keys,
// a distinct namespace from the local *compileResult entries) for a
// response served by a replica.
type forwarded struct {
	status  int
	outcome string
	replica string
	body    []byte
}

// writeForwarded relays a replica's response: its status and body
// verbatim, the cache outcome, and the serving replica in
// X-Argo-Replica.
func (s *Server) writeForwarded(w http.ResponseWriter, f *forwarded) {
	if f.status >= 400 {
		s.metrics.Error(fmt.Sprintf("%dxx", f.status/100))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Argo-Cache", f.outcome)
	w.Header().Set("X-Argo-Replica", f.replica)
	w.WriteHeader(f.status)
	_, _ = w.Write(f.body)
}

// clusterRoute serves one request kind for job through the coordinator:
// the local forwarded-response tier first, then a forward to the replica
// owning the job's content address. The error return means every replica
// failed — the caller falls back to local execution so the request is
// never dropped.
func (s *Server) clusterRoute(ctx context.Context, kind, path string, req any, job *compileJob) (*forwarded, error) {
	key := job.key(kind)
	fkey := "fwd:" + key
	if v, ok := s.cache.Get(fkey); ok {
		f := *v.(*forwarded)
		f.outcome = OutcomeHit.String()
		s.cluster.CountLocalHit()
		return &f, nil
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode forward body: %w", err)
	}
	res, err := s.cluster.Forward(ctx, key, path, body)
	if err != nil {
		return nil, err
	}
	f := &forwarded{status: res.Status, outcome: res.Outcome, replica: res.Replica, body: res.Body}
	if f.status == http.StatusOK {
		s.cache.Put(fkey, f)
	}
	return f, nil
}

// --- remote candidate workers ----------------------------------------------

// CandidateJSON is the wire form of one optimizer-ladder candidate. The
// scheduler policy travels as its enum value (stable on both sides);
// transform options marshal by field name.
type CandidateJSON struct {
	Name       string                `json:"name"`
	Transforms argo.TransformOptions `json:"transforms"`
	AutoSPM    bool                  `json:"auto_spm,omitempty"`
	Policy     int                   `json:"policy"`
	MaxTasks   int                   `json:"max_tasks,omitempty"`
}

// FromCandidate converts a ladder candidate to its wire form.
func FromCandidate(c argo.Candidate) CandidateJSON {
	return CandidateJSON{
		Name:       c.Name,
		Transforms: c.Transforms,
		AutoSPM:    c.AutoSPM,
		Policy:     int(c.Policy),
		MaxTasks:   c.MaxTasks,
	}
}

// ToCandidate converts the wire form back to a ladder candidate.
func (c CandidateJSON) ToCandidate() (argo.Candidate, error) {
	if c.Policy < int(argo.PolicyOblivious) || c.Policy > int(argo.PolicyBranchBound) {
		return argo.Candidate{}, fmt.Errorf("candidate policy %d out of range", c.Policy)
	}
	return argo.Candidate{
		Name:       c.Name,
		Transforms: c.Transforms,
		AutoSPM:    c.AutoSPM,
		Policy:     argo.Policy(c.Policy),
		MaxTasks:   c.MaxTasks,
	}, nil
}

// CandidateRequest is the body of POST /v1/candidate: a compile request
// plus the ladder candidate to evaluate on it.
type CandidateRequest struct {
	CompileRequest
	Candidate CandidateJSON `json:"candidate"`
}

// candidateKey is the content address of one candidate evaluation. The
// base job's policy/max-tasks are excluded — the candidate overrides
// them — while the candidate itself is hashed in.
func (s *Server) candidateKey(job *compileJob, cj CandidateJSON) string {
	args := make([]ArgSpecJSON, len(job.args))
	for i, a := range job.args {
		args[i] = FromArgSpec(a)
	}
	return HashKey("argo/v1", "candidate", job.source, job.entry, args,
		job.canonicalADL, cj, job.wcetEngine)
}

// cachedCandidate evaluates one ladder candidate on this process through
// cache, singleflight, and the worker pool. It is both the replica side
// of POST /v1/candidate and the coordinator's local fallback when a
// remote worker is unreachable.
func (s *Server) cachedCandidate(ctx context.Context, job *compileJob, cj CandidateJSON, cand argo.Candidate) (*CompileSummary, Outcome, error) {
	cjob := *job
	cjob.candidate = &cand
	val, outcome, err := retryTransient(ctx, s.metrics, func() (any, Outcome, error) {
		return s.cache.Do(ctx, s.candidateKey(job, cj), func() (any, error) {
			if err := s.pool.Acquire(ctx); err != nil {
				return nil, err
			}
			defer s.pool.Release()
			t0 := time.Now()
			art, err := s.compile(ctx, &cjob)
			s.metrics.Observe("candidate", time.Since(t0))
			if err != nil {
				return nil, err
			}
			return Summarize(job.usecaseName(), job.period(), art), nil
		})
	})
	if err != nil {
		return nil, outcome, err
	}
	return val.(*CompileSummary), outcome, nil
}

// handleCandidate is the replica side of the remote candidate worker
// seam: it compiles one optimizer-ladder candidate and returns its
// summary (fingerprint included), bit-identical to the in-process
// ladder's evaluation of the same candidate.
func (s *Server) handleCandidate(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("candidate")
	var req CandidateRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	job, err := s.resolve(&req.CompileRequest)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	cand, err := req.Candidate.ToCandidate()
	if err != nil {
		s.writeErr(w, badRequest("%v", err))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(&req.CompileRequest))
	defer cancel()
	sum, outcome, err := s.cachedCandidate(ctx, job, req.Candidate, cand)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, outcome, sum)
}

// --- distributed optimize ---------------------------------------------------

// candOutcome is one candidate's evaluation result during a distributed
// optimize: a summary on success, the deterministic pipeline error
// message on a failed candidate, or a fatal transient error (replica
// shed, timeout) that aborts the whole request rather than corrupting
// the deterministic history.
type candOutcome struct {
	sum    *CompileSummary
	errMsg string
	fatal  error
}

// distributedOptimize fans the default candidate ladder out to the
// replica set over /v1/candidate and reduces the outcomes in candidate
// index order with the exact comparison core.OptimizeContext uses
// (strict <, ties to the lowest index, best-so-far -1 until the first
// success) — so the response is bit-identical to the in-process ladder
// at any replica count, any per-replica width, and under replica
// failure with local fallback.
func (s *Server) distributedOptimize(ctx context.Context, req *CompileRequest, job *compileJob) (*OptimizeResponse, Outcome, error) {
	val, outcome, err := retryTransient(ctx, s.metrics, func() (any, Outcome, error) {
		return s.cache.Do(ctx, "dopt:"+job.key("optimize"), func() (any, error) {
			return s.runDistributedOptimize(ctx, req, job)
		})
	})
	if err != nil {
		return nil, outcome, err
	}
	return val.(*OptimizeResponse), outcome, nil
}

func (s *Server) runDistributedOptimize(ctx context.Context, req *CompileRequest, job *compileJob) (*OptimizeResponse, error) {
	t0 := time.Now()
	defer func() { s.metrics.Observe("optimize", time.Since(t0)) }()

	cands := argo.DefaultCandidates(job.plat.NumCores())
	members := s.cluster.Members()
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: no replicas")
	}
	// Per-replica candidate slots: the request's parallelism when set,
	// else a modest pipeline depth of 2. The reduction is deterministic
	// at any width, so this only tunes wall-clock time.
	width := job.parallelism
	if width <= 0 {
		width = 2
	}
	widths := make([]int, len(members))
	for i := range widths {
		widths[i] = width
	}

	// The forwarded request carries everything but the candidate; the
	// candidate overrides policy/max-tasks on the replica exactly like
	// the in-process ladder overrides them per candidate.
	wire := *req
	wire.Parallelism = 0

	outs := make([]candOutcome, len(cands))
	if err := conc.ForEachOn(ctx, widths, len(cands), func(w, i int) {
		outs[i] = s.evalCandidate(ctx, members[w], &wire, job, cands[i])
	}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, o := range outs {
		if o.fatal != nil {
			return nil, o.fatal
		}
	}

	resp := &OptimizeResponse{}
	var bestBound int64 = -1
	for i, c := range cands {
		it := IterationJSON{Iteration: i + 1, Candidate: c.Name, Error: outs[i].errMsg}
		if outs[i].sum != nil {
			it.Bound = outs[i].sum.TotalBound
			if bestBound < 0 || it.Bound < bestBound {
				bestBound = it.Bound
				resp.Best = outs[i].sum
			}
		}
		it.BestSoFar = bestBound
		resp.History = append(resp.History, it)
	}
	if resp.Best == nil {
		// The in-process ladder's exact wording (core.OptimizeContext).
		return nil, fmt.Errorf("core: no candidate compiled successfully")
	}
	return resp, nil
}

// evalCandidate evaluates one ladder candidate on member, falling back
// to local evaluation when the member is unreachable so no candidate is
// ever silently dropped.
func (s *Server) evalCandidate(ctx context.Context, member string, wire *CompileRequest, job *compileJob, cand argo.Candidate) candOutcome {
	cj := FromCandidate(cand)
	body, err := json.Marshal(&CandidateRequest{CompileRequest: *wire, Candidate: cj})
	if err != nil {
		return candOutcome{fatal: fmt.Errorf("cluster: encode candidate: %w", err)}
	}
	res, err := s.cluster.Call(ctx, member, "/v1/candidate", body)
	if err != nil {
		// Unreachable worker: evaluate locally. Transient local failures
		// (pool shed, deadline) abort the request instead of being
		// recorded as candidate failures — the history must only ever
		// contain deterministic pipeline errors.
		sum, _, lerr := s.cachedCandidate(ctx, job, cj, cand)
		if lerr != nil {
			if statusFor(lerr) == http.StatusUnprocessableEntity {
				return candOutcome{errMsg: lerr.Error()}
			}
			return candOutcome{fatal: lerr}
		}
		return candOutcome{sum: sum}
	}
	switch res.Status {
	case http.StatusOK:
		var sum CompileSummary
		if err := json.Unmarshal(res.Body, &sum); err != nil {
			return candOutcome{fatal: fmt.Errorf("cluster: %s: candidate reply: %w", member, err)}
		}
		return candOutcome{sum: &sum}
	case http.StatusUnprocessableEntity:
		// Deterministic pipeline rejection: this candidate fails the
		// same way everywhere, record it in the history.
		var er ErrorResponse
		if err := json.Unmarshal(res.Body, &er); err != nil || er.Error == "" {
			er.Error = fmt.Sprintf("candidate rejected: %.200s", res.Body)
		}
		return candOutcome{errMsg: er.Error}
	default:
		return candOutcome{fatal: fmt.Errorf("cluster: %s: candidate status %d: %.200s", member, res.Status, res.Body)}
	}
}

// --- topology ---------------------------------------------------------------

// MembersRequest is the body of POST /v1/cluster/members.
type MembersRequest struct {
	Members []string `json:"members"`
}

// handleClusterInfo reports the process's cluster role and, for a
// coordinator, its membership, per-replica health, and counters.
func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("cluster")
	if s.cluster == nil {
		s.writeJSON(w, OutcomeMiss, map[string]any{"mode": "single"})
		return
	}
	s.writeJSON(w, OutcomeMiss, map[string]any{
		"mode":    "coordinator",
		"members": s.cluster.Members(),
		"health":  s.cluster.Health(),
		"stats":   s.cluster.Stats(),
	})
}

// handleClusterMembers swaps the coordinator's member set (scale up or
// down); hot keys whose owner changed are warm-replicated to their new
// owner in the background and readiness reports 503 until that pass
// finishes.
func (s *Server) handleClusterMembers(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("cluster")
	if s.cluster == nil {
		s.writeErr(w, &httpError{status: http.StatusConflict,
			msg: "not a coordinator (start argod with -peers)"})
		return
	}
	var req MembersRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	if len(req.Members) == 0 {
		s.writeErr(w, badRequest("members must be non-empty"))
		return
	}
	for i, m := range req.Members {
		if !strings.HasPrefix(m, "http://") && !strings.HasPrefix(m, "https://") {
			s.writeErr(w, badRequest("members[%d]: %q is not an http(s) URL", i, m))
			return
		}
	}
	s.cluster.SetMembers(req.Members)
	s.writeJSON(w, OutcomeMiss, map[string]any{
		"members":     s.cluster.Members(),
		"rebalancing": s.cluster.Rebalancing(),
	})
}
