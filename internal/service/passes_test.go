package service

import (
	"encoding/json"
	"testing"
)

// TestCompileResponseIncludesPassTimings pins the /v1/compile wire
// contract: the summary carries the per-pass instrumentation rollup.
func TestCompileResponseIncludesPassTimings(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts.URL+"/v1/compile", `{"usecase":"weaa","platform":"xentium2"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sum CompileSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Passes) == 0 {
		t.Fatalf("summary has no pass timings: %s", data)
	}
	byName := map[string]PassTimingJSON{}
	for _, p := range sum.Passes {
		byName[p.Pass] = p
	}
	for _, name := range []string{"check", "lower", "build-htg", "schedule", "par-build"} {
		if byName[name].Runs == 0 {
			t.Errorf("pass %q missing from summary (have %v)", name, sum.Passes)
		}
	}
	if sched := byName["schedule"]; sched.Runs != sum.FeedbackRounds {
		t.Errorf("schedule runs %d, want one per feedback round (%d)", sched.Runs, sum.FeedbackRounds)
	}
}

// TestDebugVarsExposesPassCounters pins that the process-wide pass
// expvars are served by /debug/vars alongside the service metrics.
func TestDebugVarsExposesPassCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/compile", `{"usecase":"weaa","platform":"xentium2"}`)

	resp, data := get(t, ts.URL+"/debug/vars")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(data, &vars); err != nil {
		t.Fatalf("invalid /debug/vars JSON: %v", err)
	}
	for _, key := range []string{"argo_pass_ns", "argo_pass_runs", "argo_pass_cache_hits", "argo_pass_cache_misses"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
	var passRuns map[string]int64
	if err := json.Unmarshal(vars["argo_pass_runs"], &passRuns); err != nil {
		t.Fatalf("argo_pass_runs not a map: %v", err)
	}
	if passRuns["schedule"] == 0 {
		t.Errorf("argo_pass_runs has no schedule executions: %v", passRuns)
	}
}
