package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"argo/internal/cluster"
	"argo/internal/sched"
	"argo/pkg/argo"
)

// Config tunes one analysis server.
type Config struct {
	// Workers bounds concurrent pipeline executions (default: NumCPU).
	Workers int
	// CacheEntries is the LRU capacity of the result cache (default
	// 256; <0 disables the bound).
	CacheEntries int
	// Timeout is the per-request pipeline budget (default 60s). It
	// covers queueing for a worker slot plus the pipeline run. Requests
	// may lower it per call via timeout_ms, never raise it.
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies (default 4 MiB).
	MaxBodyBytes int64
	// MaxQueue bounds how many requests may wait for a worker slot
	// before new arrivals are shed with 429 + Retry-After (default
	// 4x Workers; <0 disables shedding).
	MaxQueue int
	// MaxSessions bounds live interactive sessions; the least recently
	// used session is evicted when a creation would exceed it (default
	// argo.DefaultMaxSessions).
	MaxSessions int
	// SessionTTL expires sessions idle longer than this (default
	// argo.DefaultSessionTTL).
	SessionTTL time.Duration
	// WCETEngine is the code-level WCET engine every compile uses:
	// "" or "ipet" (default), "mc", or "both" (IPET bounds with the
	// exact engine cross-checked on every region). Part of each job's
	// cache key — engines legitimately produce different bounds.
	WCETEngine string
	// Peers are replica base URLs. Non-empty puts the server in
	// coordinator mode: compile and optimize work is consistent-hash
	// sharded across the peers (see internal/cluster) while sessions and
	// simulation stay local.
	Peers []string
	// ForwardTimeout bounds each forwarded attempt in coordinator mode
	// (default 30s).
	ForwardTimeout time.Duration
	// MaxPerReplica is the coordinator's bounded-load fallback: a replica
	// with this many forwards in flight is skipped for the next one in
	// preference order (0: unbounded).
	MaxPerReplica int
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0 // unbounded
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.Workers
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0 // unbounded queue, no shedding
	}
	return c
}

// Server is the ARGO analysis service: the compile→schedule→WCET→
// simulate pipeline behind an HTTP/JSON API with caching, deduplication,
// admission control, and metrics.
type Server struct {
	cfg      Config
	cache    *Cache
	pool     *Pool
	metrics  *Metrics
	mux      *http.ServeMux
	sessions *argo.SessionManager

	// cluster is non-nil in coordinator mode: compile/optimize keys are
	// consistent-hash sharded across the replica set and misses forwarded
	// to the owning replica (see cluster.go in this package).
	cluster *cluster.Cluster

	// draining flips once shutdown begins: /readyz turns 503 so load
	// balancers stop routing, while /healthz stays 200 (the process is
	// alive and still finishing in-flight requests). drainCh closes at
	// the same moment so long-lived streams (SSE session edits) can
	// terminate with an explicit final event instead of blocking the
	// graceful shutdown until the grace budget expires.
	draining atomic.Bool
	drainCh  chan struct{}

	// compile runs one pipeline execution; tests may replace it to
	// count or delay executions.
	compile func(ctx context.Context, job *compileJob) (*argo.Artifacts, error)
	// sessionApply routes one session edit; tests may replace it to
	// block an edit mid-flight (drain-under-stream coverage).
	sessionApply func(ctx context.Context, id string, e argo.SessionEdit, aopt argo.SessionApplyOptions) (*argo.SessionEditResult, error)
}

// NewServer builds a server from cfg (zero values take defaults).
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cache := NewCache(cfg.CacheEntries)
	pool := NewPool(cfg.Workers, cfg.MaxQueue)
	s := &Server{
		cfg:      cfg,
		cache:    cache,
		pool:     pool,
		metrics:  NewMetrics(cache, pool, time.Now()),
		sessions: argo.NewSessionManager(cfg.MaxSessions, cfg.SessionTTL),
		drainCh:  make(chan struct{}),
	}
	s.compile = s.runCompile
	s.sessionApply = s.sessions.Apply
	if len(cfg.Peers) > 0 {
		s.cluster = cluster.New(cluster.Options{
			Peers:          cfg.Peers,
			ForwardTimeout: cfg.ForwardTimeout,
			MaxInflight:    cfg.MaxPerReplica,
		})
		s.metrics.SetCluster(func() any { return s.cluster.Stats() })
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/candidate", s.handleCandidate)
	s.mux.HandleFunc("GET /v1/cluster", s.handleClusterInfo)
	s.mux.HandleFunc("POST /v1/cluster/members", s.handleClusterMembers)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/session", s.handleSessionList)
	s.mux.HandleFunc("GET /v1/session/{id}", s.handleSessionGet)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/session/{id}/edit", s.handleSessionEdit)
	s.mux.HandleFunc("POST /v1/session/{id}/simulate", s.handleSessionSimulate)
	s.mux.HandleFunc("GET /v1/platforms", s.handlePlatforms)
	s.mux.HandleFunc("GET /v1/usecases", s.handleUseCases)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cluster returns the coordinator state, or nil in single-process mode.
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// Metrics exposes the server's metrics (an expvar.Var) so embedders can
// publish them into the process-global expvar registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// --- request resolution -----------------------------------------------------

// compileJob is a fully resolved, validated compile request.
type compileJob struct {
	usecase *argo.UseCase // nil for raw-source jobs
	source  string
	entry   string
	args    []argo.ArgSpec
	plat    *argo.PlatformDesc
	// canonicalADL is the platform re-encoded through the ADL codec, so
	// equivalent name- and inline-specified platforms key identically.
	canonicalADL string
	policy       sched.Policy
	maxTasks     int
	// parallelism bounds optimizer candidate evaluation. NOT part of the
	// cache key: optimization results are deterministic across
	// parallelism degrees.
	parallelism int
	// wcetEngine is the server-wide engine selection (Config.WCETEngine).
	// Part of the cache key: bounds differ between engines.
	wcetEngine string
	// candidate, when non-nil, overrides the transform/mapping knobs the
	// optimizer ladder varies — exactly the overrides OptimizeContext
	// applies per candidate, so a remote candidate worker compiles the
	// same configuration the in-process ladder would.
	candidate *argo.Candidate
}

// key is the job's content address: SHA-256 over the canonicalized
// request under a kind tag ("compile", "optimize", ...).
func (j *compileJob) key(kind string) string {
	args := make([]ArgSpecJSON, len(j.args))
	for i, a := range j.args {
		args[i] = FromArgSpec(a)
	}
	return HashKey("argo/v1", kind, j.source, j.entry, args,
		j.canonicalADL, j.policy.String(), j.maxTasks, j.wcetEngine)
}

func (j *compileJob) usecaseName() string {
	if j.usecase == nil {
		return ""
	}
	return j.usecase.Name
}

func (j *compileJob) period() int64 {
	if j.usecase == nil {
		return 0
	}
	return j.usecase.Period
}

// httpError carries a status code with a request-handling error.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// requestTimeout resolves a request's pipeline budget: the server
// default, lowered (never raised) by a positive timeout_ms.
func (s *Server) requestTimeout(req *CompileRequest) time.Duration {
	return s.clampTimeout(req.TimeoutMS)
}

// clampTimeout lowers (never raises) the server's pipeline budget by a
// positive per-request timeout in milliseconds.
func (s *Server) clampTimeout(ms int64) time.Duration {
	if ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < s.cfg.Timeout {
			return d
		}
	}
	return s.cfg.Timeout
}

// resolve validates a compile request into a runnable job.
func (s *Server) resolve(req *CompileRequest) (*compileJob, error) {
	if req.Parallelism < 0 {
		return nil, badRequest("parallelism must be >= 0")
	}
	if req.TimeoutMS < 0 {
		return nil, badRequest("timeout_ms must be >= 0")
	}
	j := &compileJob{maxTasks: req.MaxTasks, parallelism: req.Parallelism, wcetEngine: s.cfg.WCETEngine}
	switch {
	case req.UseCase != "" && req.Source != "":
		return nil, badRequest("set exactly one of usecase and source")
	case req.UseCase != "":
		uc := argo.UseCaseByName(req.UseCase)
		if uc == nil {
			return nil, &httpError{status: http.StatusNotFound,
				msg: fmt.Sprintf("unknown use case %q (see GET /v1/usecases)", req.UseCase)}
		}
		j.usecase = uc
		j.source, j.entry, j.args = uc.Source, uc.Entry, uc.Args
	case req.Source != "":
		if req.Entry == "" {
			return nil, badRequest("source compiles need entry")
		}
		j.source, j.entry = req.Source, req.Entry
		for i, a := range req.Args {
			spec, err := a.ToArgSpec()
			if err != nil {
				return nil, badRequest("args[%d]: %v", i, err)
			}
			j.args = append(j.args, spec)
		}
	default:
		return nil, badRequest("set one of usecase and source")
	}

	switch {
	case req.Platform != "" && len(req.PlatformADL) > 0:
		return nil, badRequest("set exactly one of platform and platform_adl")
	case len(req.PlatformADL) > 0:
		p, err := argo.DecodePlatform(req.PlatformADL)
		if err != nil {
			return nil, badRequest("platform_adl: %v", err)
		}
		j.plat = p
	default:
		name := req.Platform
		if name == "" {
			name = "xentium4"
		}
		p := argo.Platform(name)
		if p == nil {
			return nil, &httpError{status: http.StatusNotFound,
				msg: fmt.Sprintf("unknown platform %q (see GET /v1/platforms)", name)}
		}
		j.plat = p
	}
	canon, err := argo.EncodePlatform(j.plat)
	if err != nil {
		return nil, badRequest("platform: %v", err)
	}
	j.canonicalADL = string(canon)

	j.policy, err = ParsePolicy(req.Policy)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return j, nil
}

// options builds the compiler options for a job.
func (j *compileJob) options() argo.Options {
	opt := argo.DefaultOptions(j.entry, j.args, j.plat)
	opt.Policy = j.policy
	opt.MaxTasks = j.maxTasks
	opt.WCETEngine = j.wcetEngine
	if c := j.candidate; c != nil {
		// Mirror core.OptimizeContext's per-candidate overrides so the
		// result is bit-identical to the in-process ladder's evaluation.
		opt.Transforms = c.Transforms
		opt.AutoSPM = c.AutoSPM
		opt.Policy = c.Policy
		opt.MaxTasks = c.MaxTasks
	}
	return opt
}

// runCompile is the real pipeline execution (the default s.compile).
func (s *Server) runCompile(ctx context.Context, job *compileJob) (*argo.Artifacts, error) {
	return argo.CompileSourceContext(ctx, job.source, job.options())
}

// compileResult is what the cache stores for a compile key: the full
// artifacts (simulation needs them) plus the wire summary.
type compileResult struct {
	art *argo.Artifacts
	sum *CompileSummary
}

// cachedCompile serves a compile job through cache, singleflight, and
// the worker pool, retrying transient shared-fate failures (a leader's
// cancellation aborting a follower's attached computation) with backoff.
func (s *Server) cachedCompile(ctx context.Context, job *compileJob) (*compileResult, Outcome, error) {
	val, outcome, err := retryTransient(ctx, s.metrics, func() (any, Outcome, error) {
		return s.cache.Do(ctx, job.key("compile"), func() (any, error) {
			if err := s.pool.Acquire(ctx); err != nil {
				return nil, err
			}
			defer s.pool.Release()
			t0 := time.Now()
			art, err := s.compile(ctx, job)
			s.metrics.Observe("compile", time.Since(t0))
			if err != nil {
				return nil, err
			}
			return &compileResult{art: art, sum: Summarize(job.usecaseName(), job.period(), art)}, nil
		})
	})
	if err != nil {
		return nil, outcome, err
	}
	return val.(*compileResult), outcome, nil
}

// --- handlers ---------------------------------------------------------------

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("compile")
	var req CompileRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	job, err := s.resolve(&req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(&req))
	defer cancel()
	if s.cluster != nil {
		if f, err := s.clusterRoute(ctx, "compile", "/v1/compile", &req, job); err == nil {
			s.writeForwarded(w, f)
			return
		}
		// Every replica failed: fall through to local execution so the
		// request is served, never dropped.
	}
	res, outcome, err := s.cachedCompile(ctx, job)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, outcome, res.sum)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("optimize")
	var req CompileRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	job, err := s.resolve(&req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(&req))
	defer cancel()
	if s.cluster != nil {
		resp, outcome, err := s.distributedOptimize(ctx, &req, job)
		if err != nil {
			s.writeErr(w, err)
			return
		}
		s.writeJSON(w, outcome, resp)
		return
	}
	resp, outcome, err := s.optimizeLocal(ctx, job)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, outcome, resp)
}

// optimizeLocal runs the in-process optimizer ladder through cache,
// singleflight, and the worker pool (the single-process /v1/optimize
// path, and a batch cell's optimize op).
func (s *Server) optimizeLocal(ctx context.Context, job *compileJob) (*OptimizeResponse, Outcome, error) {
	val, outcome, err := retryTransient(ctx, s.metrics, func() (any, Outcome, error) {
		return s.cache.Do(ctx, job.key("optimize"), func() (any, error) {
			if err := s.pool.Acquire(ctx); err != nil {
				return nil, err
			}
			defer s.pool.Release()
			t0 := time.Now()
			opt := job.options()
			opt.Parallelism = job.parallelism
			res, err := argo.OptimizeSourceContext(ctx, job.source, opt, nil)
			s.metrics.Observe("optimize", time.Since(t0))
			if err != nil {
				return nil, err
			}
			return SummarizeOptimize(job.usecaseName(), job.period(), res), nil
		})
	})
	if err != nil {
		return nil, outcome, err
	}
	return val.(*OptimizeResponse), outcome, nil
}

// maxSimRuns bounds the number of simulated input variants per request.
const maxSimRuns = 100

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("simulate")
	var req SimulateRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	job, err := s.resolve(&req.CompileRequest)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if job.usecase == nil {
		s.writeErr(w, badRequest("simulate needs a usecase (input generators)"))
		return
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		runs := req.Runs
		if runs <= 0 {
			runs = 1
		}
		for seed := int64(1); seed <= int64(runs); seed++ {
			seeds = append(seeds, seed)
		}
	}
	if len(seeds) > maxSimRuns {
		s.writeErr(w, badRequest("at most %d runs per request (got %d)", maxSimRuns, len(seeds)))
		return
	}
	var faults argo.FaultSpec
	if req.Faults != nil {
		faults = req.Faults.ToSpec()
		if err := faults.Validate(); err != nil {
			s.writeErr(w, badRequest("faults: %v", err))
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(&req.CompileRequest))
	defer cancel()
	// The compile goes through the shared cache (same key as
	// /v1/compile), so a prior compile of the same model is reused and
	// concurrent simulate requests dedup the pipeline run.
	res, outcome, err := s.cachedCompile(ctx, job)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	resp := &SimulateResponse{Compile: res.sum}
	t0 := time.Now()
	for _, seed := range seeds {
		var rep *argo.SimReport
		var err error
		injecting := req.Faults != nil && faults.Enabled()
		if injecting {
			// Re-seed per run so a sweep over input seeds also sweeps
			// fault patterns; the combination stays deterministic.
			spec := faults
			spec.Seed += seed
			rep, err = argo.SimulateFaultyContext(ctx, res.art, job.usecase.Inputs(seed), spec)
		} else {
			rep, err = argo.SimulateContext(ctx, res.art, job.usecase.Inputs(seed))
		}
		if err != nil {
			s.writeErr(w, fmt.Errorf("seed %d: %w", seed, err))
			return
		}
		run := SimRun{
			Seed:          seed,
			Makespan:      rep.Makespan,
			ExecSpan:      rep.ExecSpan,
			BusWaitCycles: rep.BusWaitCycles,
			TotalBound:    res.art.Bound(),
			WithinBound:   true,
		}
		if err := argo.CheckBounds(res.art, rep); err != nil {
			run.WithinBound = false
			run.BoundError = err.Error()
		}
		if injecting {
			st := rep.Faults
			run.Faults = &st
			run.Violations = argo.Violations(res.art, rep)
		}
		resp.Runs = append(resp.Runs, run)
	}
	s.metrics.Observe("simulate", time.Since(t0))
	s.writeJSON(w, outcome, resp)
}

func (s *Server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("platforms")
	names := argo.PlatformNames()
	sort.Strings(names)
	out := make([]PlatformInfo, 0, len(names))
	for _, name := range names {
		p := argo.Platform(name)
		info := PlatformInfo{Name: name, Cores: p.NumCores()}
		switch {
		case p.NoC != nil:
			info.Interconnect = fmt.Sprintf("noc:%dx%d", p.NoC.Width, p.NoC.Height)
		case p.Bus != nil:
			info.Interconnect = "bus:" + string(p.Bus.Arbitration)
		}
		out = append(out, info)
	}
	s.writeJSON(w, OutcomeMiss, out)
}

func (s *Server) handleUseCases(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("usecases")
	var out []UseCaseInfo
	for _, u := range argo.UseCases() {
		info := UseCaseInfo{
			Name:        u.Name,
			Description: u.Description,
			Entry:       u.Entry,
			Period:      u.Period,
		}
		for _, a := range u.Args {
			info.Args = append(info.Args, FromArgSpec(a))
		}
		out = append(out, info)
	}
	s.writeJSON(w, OutcomeMiss, out)
}

// handleHealthz is liveness: it stays 200 for the process's whole life,
// including the graceful-shutdown drain — restarting a pod because it is
// draining would defeat the drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, OutcomeMiss, map[string]any{
		"status":   "ok",
		"version":  argo.Version,
		"draining": s.draining.Load(),
	})
}

// handleReadyz is readiness: 503 once draining so load balancers stop
// routing new requests while in-flight ones finish, and 503 while a
// coordinator is warm-replicating moved shards after a membership change
// (requests are still served — readiness only pauses new routing until
// the moved shards are warm).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	notReady := func(status string) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": status})
	}
	if s.draining.Load() {
		notReady("draining")
		return
	}
	if s.cluster != nil && s.cluster.Rebalancing() {
		notReady("rebalancing")
		return
	}
	s.writeJSON(w, OutcomeMiss, map[string]any{"status": "ready"})
}

// StartDraining marks the server not-ready (see handleReadyz) and
// closes the drain channel so active session streams flush a terminal
// event and return. It is idempotent and does not interrupt in-flight
// plain requests; ListenAndServe calls it when shutdown begins.
func (s *Server) StartDraining() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
}

// handleVars serves the process-global expvar registry plus this
// server's metrics under the "service" key, in the standard /debug/vars
// JSON shape.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	write := func(key, val string) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", key, val)
	}
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "service" {
			return // ours below, always current
		}
		write(kv.Key, kv.Value.String())
	})
	write("service", s.metrics.String())
	fmt.Fprintf(w, "\n}\n")
}

// --- plumbing ---------------------------------------------------------------

// decode reads a JSON request body strictly (unknown fields rejected).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return badRequest("invalid JSON body: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

func (s *Server) writeJSON(w http.ResponseWriter, outcome Outcome, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Argo-Cache", outcome.String())
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing to do but drop the conn.
		_ = err
	}
}

// statusFor maps a request-handling error to its HTTP status. Batch
// cells use it too, so a cell fails with the same status its request
// would have gotten stand-alone.
func statusFor(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, argo.ErrSessionNotFound):
		return http.StatusNotFound
	case IsShed(err):
		return http.StatusTooManyRequests
	case IsSaturated(err):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; 499-style, use 408 from the standard set.
		return http.StatusRequestTimeout
	}
	// Pipeline rejections (bad model, unschedulable, ...) are client
	// errors: the request was well-formed but unanalyzable.
	return http.StatusUnprocessableEntity
}

func (s *Server) writeErr(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests {
		// Queue at capacity: tell well-behaved clients when to retry.
		w.Header().Set("Retry-After", "1")
	}
	s.metrics.Error(fmt.Sprintf("%dxx", status/100))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

// ListenAndServe runs the service on addr until ctx is cancelled, then
// shuts down gracefully within grace. It is the daemon entry point.
func (s *Server) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Expire idle sessions in the background for the server's lifetime
	// (Create also sweeps inline, so the interval only bounds how long
	// an idle process pins expired sessions).
	sweepEvery := s.sessions.TTL() / 4
	if sweepEvery > time.Minute {
		sweepEvery = time.Minute
	}
	if sweepEvery < time.Second {
		sweepEvery = time.Second
	}
	go func() {
		t := time.NewTicker(sweepEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.sessions.Sweep()
			case <-ctx.Done():
				return
			}
		}
	}()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip readiness before shutting the listener down: load balancers
	// polling /readyz stop routing while in-flight requests drain, and
	// /healthz keeps answering 200 the whole time.
	s.StartDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return srv.Close()
	}
	return nil
}
