// Package service implements the ARGO analysis service: the full
// compile→schedule→WCET→simulate pipeline behind an HTTP/JSON API, with
// a content-addressed result cache (SHA-256 over the canonicalized
// request), singleflight deduplication of concurrent identical requests,
// a bounded worker pool, and expvar-based observability.
//
// The paper's tool-chain is interactive and iterative (§II, Figure 1):
// developers re-run parallelization and multi-core WCET analysis while
// tuning their model. The service turns the one-shot CLI pipeline into
// long-lived infrastructure for that loop — repeated identical analyses
// are served from the cache, concurrent identical analyses run once,
// and heavy traffic degrades gracefully under the worker-pool limit.
package service

import (
	"encoding/json"
	"fmt"

	"argo/internal/sched"
	"argo/pkg/argo"
)

// ArgSpecJSON is the wire form of an entry-argument specification.
type ArgSpecJSON struct {
	// Kind is "matrix", "scalar", or "const".
	Kind string `json:"kind"`
	// Rows and Cols give the shape of a matrix argument.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Value is the specialization value of a const argument.
	Value float64 `json:"value,omitempty"`
}

// ToArgSpec converts the wire form to the compiler's ArgSpec.
func (a ArgSpecJSON) ToArgSpec() (argo.ArgSpec, error) {
	switch a.Kind {
	case "matrix":
		if a.Rows <= 0 || a.Cols <= 0 {
			return argo.ArgSpec{}, fmt.Errorf("matrix argument needs positive rows and cols")
		}
		return argo.MatrixArg(a.Rows, a.Cols), nil
	case "scalar":
		return argo.ScalarArg(), nil
	case "const":
		return argo.ConstArg(a.Value), nil
	}
	return argo.ArgSpec{}, fmt.Errorf("unknown argument kind %q (matrix, scalar, const)", a.Kind)
}

// FromArgSpec converts a compiler ArgSpec to the wire form.
func FromArgSpec(a argo.ArgSpec) ArgSpecJSON {
	switch {
	case a.Scalar && a.Const != nil:
		return ArgSpecJSON{Kind: "const", Value: *a.Const}
	case a.Scalar:
		return ArgSpecJSON{Kind: "scalar"}
	}
	return ArgSpecJSON{Kind: "matrix", Rows: a.Rows, Cols: a.Cols}
}

// CompileRequest is the body of POST /v1/compile and /v1/optimize, and
// the compile section of POST /v1/simulate. Exactly one of UseCase or
// Source selects the model; Source additionally needs Entry and Args
// unless UseCase is also set (then the use case supplies them). Exactly
// one of Platform (built-in name) or PlatformADL (inline ADL JSON)
// selects the target.
type CompileRequest struct {
	UseCase string `json:"usecase,omitempty"`
	Source  string `json:"source,omitempty"`
	Entry   string `json:"entry,omitempty"`
	// Args are the entry argument specs for a raw-source compile.
	Args []ArgSpecJSON `json:"args,omitempty"`
	// Platform names a built-in platform (see GET /v1/platforms).
	Platform string `json:"platform,omitempty"`
	// PlatformADL is an inline ADL JSON description.
	PlatformADL json.RawMessage `json:"platform_adl,omitempty"`
	// Policy is "aware" (default), "oblivious", or "exact".
	Policy string `json:"policy,omitempty"`
	// MaxTasks caps task-graph size via coarsening (0: no cap).
	MaxTasks int `json:"max_tasks,omitempty"`
	// Parallelism bounds concurrent candidate evaluation for
	// /v1/optimize (0: GOMAXPROCS, 1: serial). Results are bit-identical
	// at every setting, so it is deliberately excluded from the content
	// address: requests differing only in parallelism share one cache
	// entry. Ignored by /v1/compile and /v1/simulate.
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMS caps this request's pipeline budget in milliseconds. It
	// is clamped to the server's configured timeout (a client may ask
	// for less time, never more) and, like Parallelism, excluded from
	// the content address: deadlines don't change results. 0 means the
	// server default; negative values are rejected.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ParsePolicy maps a wire policy name to the scheduler policy.
func ParsePolicy(name string) (sched.Policy, error) {
	switch name {
	case "", "aware":
		return argo.PolicyContentionAware, nil
	case "oblivious":
		return argo.PolicyOblivious, nil
	case "exact":
		return argo.PolicyBranchBound, nil
	}
	return 0, fmt.Errorf("unknown policy %q (aware, oblivious, exact)", name)
}

// TaskSummary is one task's row in a compile summary.
type TaskSummary struct {
	ID    int    `json:"id"`
	Label string `json:"label"`
	Core  int    `json:"core"`
	// Start and Finish are the analyzed time-triggered window.
	Start  int64 `json:"start"`
	Finish int64 `json:"finish"`
	// WCET is the isolated code-level bound on the assigned core.
	WCET int64 `json:"wcet"`
	// SharedAccesses bounds the task's shared-memory accesses.
	SharedAccesses int64 `json:"shared_accesses"`
	// Interference is the system-level interference delay added.
	Interference int64 `json:"interference"`
	// Bound is the inflated per-task execution bound.
	Bound int64 `json:"bound"`
}

// CompileSummary is the machine-readable result of one compilation —
// the serialization shared by the service API and `argocc -json`.
type CompileSummary struct {
	UseCase  string `json:"usecase,omitempty"`
	Entry    string `json:"entry"`
	Platform string `json:"platform"`
	Cores    int    `json:"cores"`
	Policy   string `json:"policy"`
	// SequentialWCET is the single-core code-level bound (baseline).
	SequentialWCET int64 `json:"sequential_wcet"`
	// ScheduleMakespan is the contention-free schedule length.
	ScheduleMakespan int64 `json:"schedule_makespan"`
	// SystemBound is the system-level bound of the task phase
	// (interference-aware makespan).
	SystemBound int64 `json:"system_bound"`
	// Interference is the total system-level interference delay.
	Interference int64 `json:"interference"`
	// PrologueCycles / EpilogueCycles bound the DMA staging phases.
	PrologueCycles int64 `json:"prologue_cycles"`
	EpilogueCycles int64 `json:"epilogue_cycles"`
	// TotalBound is the end-to-end system WCET bound (incl. DMA).
	TotalBound int64 `json:"total_bound"`
	// WCETSpeedup is SequentialWCET / TotalBound.
	WCETSpeedup float64 `json:"wcet_speedup"`
	// Fingerprint content-addresses everything the compilation decided
	// (schedule, bounds, parallel program, transformed IR). Equal
	// fingerprints mean bit-identical results for every value above —
	// the equality the cluster equivalence suite is stated in: any
	// replica, and the single-process oracle, must produce the same
	// fingerprint for the same request.
	Fingerprint string `json:"fingerprint"`
	// PeriodBudget is the use case's activation period (0 if none).
	PeriodBudget int64 `json:"period_budget,omitempty"`
	// FeedbackRounds is how many placement/analysis rounds ran.
	FeedbackRounds int           `json:"feedback_rounds"`
	Tasks          []TaskSummary `json:"tasks"`
	// Passes is the per-pass instrumentation rollup of this compilation
	// (pipeline order; wall time covers every execution of the pass, so
	// loop passes accumulate one entry per feedback round).
	Passes []PassTimingJSON `json:"passes,omitempty"`
}

// PassTimingJSON is one pass's instrumentation rollup in a compile
// summary. Process-cumulative counterparts are served by /debug/vars as
// argo_pass_ns, argo_pass_runs, and argo_pass_cache_{hits,misses}.
type PassTimingJSON struct {
	Pass string `json:"pass"`
	// Runs counts executions (loop passes run once per feedback round).
	Runs int `json:"runs"`
	// WallNS is the accumulated wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// CacheHits/CacheMisses report the pass-level cache outcomes
	// (omitted for passes that are not cacheable).
	CacheHits   int `json:"cache_hits,omitempty"`
	CacheMisses int `json:"cache_misses,omitempty"`
}

// Summarize builds the shared machine-readable summary of a compilation.
// usecase and period may be zero values for raw-source compiles.
func Summarize(usecase string, period int64, art *argo.Artifacts) *CompileSummary {
	s := &CompileSummary{
		UseCase:          usecase,
		Entry:            art.Options.Entry,
		Platform:         art.Options.Platform.Name,
		Cores:            art.Options.Platform.NumCores(),
		Policy:           art.Schedule.Policy.String(),
		SequentialWCET:   art.SequentialWCET,
		ScheduleMakespan: art.Schedule.Makespan,
		SystemBound:      art.System.Makespan,
		Interference:     art.System.TotalInterference(),
		PrologueCycles:   art.Parallel.PrologueCycles,
		EpilogueCycles:   art.Parallel.EpilogueCycles,
		TotalBound:       art.Bound(),
		WCETSpeedup:      art.WCETSpeedup(),
		Fingerprint:      argo.SessionResultFingerprint(art),
		PeriodBudget:     period,
		FeedbackRounds:   art.FeedbackRounds,
	}
	for _, n := range art.Graph.Nodes {
		pl := art.Schedule.Placements[n.ID]
		s.Tasks = append(s.Tasks, TaskSummary{
			ID:             n.ID,
			Label:          n.Label,
			Core:           pl.Core,
			Start:          art.System.Start[n.ID],
			Finish:         art.System.Finish[n.ID],
			WCET:           n.WCET[pl.Core],
			SharedAccesses: n.SharedAccesses,
			Interference:   art.System.InterferencePerTask[n.ID],
			Bound:          art.System.TaskBound[n.ID],
		})
	}
	for _, ag := range art.PassTrace.Aggregate() {
		s.Passes = append(s.Passes, PassTimingJSON{
			Pass:        ag.Pass,
			Runs:        ag.Runs,
			WallNS:      ag.Wall.Nanoseconds(),
			CacheHits:   ag.CacheHits,
			CacheMisses: ag.CacheMisses,
		})
	}
	return s
}

// IterationJSON is one step of an optimization history.
type IterationJSON struct {
	Iteration int    `json:"iteration"`
	Candidate string `json:"candidate"`
	Bound     int64  `json:"bound,omitempty"`
	BestSoFar int64  `json:"best_so_far"`
	Error     string `json:"error,omitempty"`
}

// OptimizeResponse is the body of a POST /v1/optimize reply.
type OptimizeResponse struct {
	Best    *CompileSummary `json:"best"`
	History []IterationJSON `json:"history"`
}

// SummarizeOptimize builds the wire form of an optimization result.
func SummarizeOptimize(usecase string, period int64, res *argo.OptimizeResult) *OptimizeResponse {
	out := &OptimizeResponse{Best: Summarize(usecase, period, res.Best)}
	for _, rec := range res.History {
		it := IterationJSON{
			Iteration: rec.Iteration,
			Candidate: rec.Candidate.Name,
			Bound:     rec.Bound,
			BestSoFar: rec.BestSoFar,
		}
		if rec.Err != nil {
			it.Error = rec.Err.Error()
		}
		out.History = append(out.History, it)
	}
	return out
}

// FaultSpecJSON is the wire form of a fault-injection scenario (see
// internal/fault): seed-driven, deterministic interference injected into
// the platform simulation. Levels are fractions of the statically
// analyzed worst-case budgets; exec_inflation > 1 is the negative-test
// mode that deliberately exceeds the per-task bound and surfaces as
// structured violations in the response.
type FaultSpecJSON struct {
	Seed          int64   `json:"seed,omitempty"`
	AccessJitter  float64 `json:"access_jitter,omitempty"`
	ExecInflation float64 `json:"exec_inflation,omitempty"`
	NoCStall      float64 `json:"noc_stall,omitempty"`
}

// ToSpec converts the wire form to the simulator's fault spec.
func (f FaultSpecJSON) ToSpec() argo.FaultSpec {
	return argo.FaultSpec{
		Seed:          f.Seed,
		AccessJitter:  f.AccessJitter,
		ExecInflation: f.ExecInflation,
		NoCStall:      f.NoCStall,
	}
}

// SimulateRequest is the body of POST /v1/simulate: a compile request
// plus the input seeds to execute. Runs expands to seeds 1..Runs when
// Seeds is empty; with both empty a single run with seed 1 executes.
// Simulation needs a use case (the input generators live there).
// Faults optionally injects deterministic platform interference into
// every run; each run's fault pattern is re-seeded with the run's input
// seed so a sweep over seeds also sweeps fault patterns.
type SimulateRequest struct {
	CompileRequest
	Seeds  []int64        `json:"seeds,omitempty"`
	Runs   int            `json:"runs,omitempty"`
	Faults *FaultSpecJSON `json:"faults,omitempty"`
}

// SimRun is one simulated execution.
type SimRun struct {
	Seed int64 `json:"seed"`
	// Makespan is the measured end-to-end time (incl. DMA phases).
	Makespan int64 `json:"makespan"`
	// ExecSpan is the measured task-phase span.
	ExecSpan int64 `json:"exec_span"`
	// BusWaitCycles is the accumulated arbitration waiting.
	BusWaitCycles int64 `json:"bus_wait_cycles"`
	// TotalBound repeats the static bound the run is compared against.
	TotalBound int64 `json:"total_bound"`
	// WithinBound reports the soundness check (measured <= bound).
	WithinBound bool `json:"within_bound"`
	// BoundError is the soundness-violation detail, if any.
	BoundError string `json:"bound_error,omitempty"`
	// Faults reports what the run's fault injection actually did
	// (omitted for fault-free runs).
	Faults *argo.FaultStats `json:"faults,omitempty"`
	// Violations lists every detected breach of the analytic bounds as
	// structured records; in-budget injection must leave it empty.
	Violations []argo.Violation `json:"violations,omitempty"`
}

// SimulateResponse is the body of a POST /v1/simulate reply.
type SimulateResponse struct {
	Compile *CompileSummary `json:"compile"`
	Runs    []SimRun        `json:"runs"`
}

// PlatformInfo is one entry of GET /v1/platforms.
type PlatformInfo struct {
	Name  string `json:"name"`
	Cores int    `json:"cores"`
	// Interconnect is "bus:<arbitration>" or "noc:<WxH>".
	Interconnect string `json:"interconnect"`
}

// UseCaseInfo is one entry of GET /v1/usecases.
type UseCaseInfo struct {
	Name        string        `json:"name"`
	Description string        `json:"description"`
	Entry       string        `json:"entry"`
	Period      int64         `json:"period"`
	Args        []ArgSpecJSON `json:"args"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
