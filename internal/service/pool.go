package service

import (
	"context"
	"fmt"
	"sync/atomic"
)

// ErrSaturated wraps a context error raised while a request was queued
// for a worker slot: the pool was full for the request's whole budget.
// The server maps it to 503 instead of the plain-timeout 504.
type saturatedError struct{ cause error }

func (e *saturatedError) Error() string {
	return fmt.Sprintf("worker pool saturated: %v", e.cause)
}
func (e *saturatedError) Unwrap() error { return e.cause }

// IsSaturated reports whether err came from a full worker pool.
func IsSaturated(err error) bool {
	_, ok := err.(*saturatedError)
	return ok
}

// shedError marks a request rejected up front because the pool's wait
// queue is already at capacity: admitting it could only add latency for
// everyone. The server maps it to 429 with a Retry-After hint.
type shedError struct{ depth int }

func (e *shedError) Error() string {
	return fmt.Sprintf("load shed: %d requests already queued", e.depth)
}

// IsShed reports whether err is a load-shedding rejection.
func IsShed(err error) bool {
	_, ok := err.(*shedError)
	return ok
}

// Pool bounds the number of concurrently executing pipeline runs. Beyond
// the limit, requests queue inside their context budget and fail with a
// saturation error once it expires — heavy traffic degrades into bounded
// latency plus explicit rejections instead of unbounded thrashing. A
// queue bound adds load shedding on top: once maxQueue requests are
// already waiting, new arrivals are rejected immediately instead of
// piling onto a queue they would time out in anyway.
type Pool struct {
	sem      chan struct{}
	maxQueue int // <= 0: unbounded queue

	inflight atomic.Int64
	queued   atomic.Int64
	rejected atomic.Int64
	shed     atomic.Int64
}

// NewPool returns a pool allowing up to workers concurrent executions
// (workers <= 0 is clamped to 1) and at most maxQueue waiting requests
// (maxQueue <= 0: unbounded queue, no shedding).
func NewPool(workers, maxQueue int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers), maxQueue: maxQueue}
}

// Acquire blocks until a worker slot is free or ctx is done. The caller
// must Release after a successful Acquire. When the wait queue is at
// capacity, Acquire sheds the request immediately (IsShed reports the
// error) without waiting.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		p.inflight.Add(1)
		return nil
	default:
	}
	// The depth check admits at most maxQueue waiters modulo races; a
	// momentary overshoot only queues a request we could have shed, never
	// the reverse, so an exact (locked) count is not worth the
	// contention on this path.
	if depth := p.queued.Load(); p.maxQueue > 0 && depth >= int64(p.maxQueue) {
		p.shed.Add(1)
		return &shedError{depth: int(depth)}
	}
	p.queued.Add(1)
	defer p.queued.Add(-1)
	select {
	case p.sem <- struct{}{}:
		p.inflight.Add(1)
		return nil
	case <-ctx.Done():
		p.rejected.Add(1)
		return &saturatedError{cause: ctx.Err()}
	}
}

// Release frees a worker slot.
func (p *Pool) Release() {
	p.inflight.Add(-1)
	<-p.sem
}

// PoolStats is a point-in-time snapshot of the pool gauges.
type PoolStats struct {
	Workers  int   `json:"workers"`
	MaxQueue int   `json:"max_queue,omitempty"`
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
	Shed     int64 `json:"shed"`
}

// Stats snapshots the pool gauges and counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:  cap(p.sem),
		MaxQueue: p.maxQueue,
		InFlight: p.inflight.Load(),
		Queued:   p.queued.Load(),
		Rejected: p.rejected.Load(),
		Shed:     p.shed.Load(),
	}
}
