package service

import (
	"context"
	"fmt"
	"sync/atomic"
)

// ErrSaturated wraps a context error raised while a request was queued
// for a worker slot: the pool was full for the request's whole budget.
// The server maps it to 503 instead of the plain-timeout 504.
type saturatedError struct{ cause error }

func (e *saturatedError) Error() string {
	return fmt.Sprintf("worker pool saturated: %v", e.cause)
}
func (e *saturatedError) Unwrap() error { return e.cause }

// IsSaturated reports whether err came from a full worker pool.
func IsSaturated(err error) bool {
	_, ok := err.(*saturatedError)
	return ok
}

// Pool bounds the number of concurrently executing pipeline runs. Beyond
// the limit, requests queue inside their context budget and fail with a
// saturation error once it expires — heavy traffic degrades into bounded
// latency plus explicit rejections instead of unbounded thrashing.
type Pool struct {
	sem chan struct{}

	inflight atomic.Int64
	queued   atomic.Int64
	rejected atomic.Int64
}

// NewPool returns a pool allowing up to workers concurrent executions
// (workers <= 0 is clamped to 1).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Acquire blocks until a worker slot is free or ctx is done. The caller
// must Release after a successful Acquire.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		p.inflight.Add(1)
		return nil
	default:
	}
	p.queued.Add(1)
	defer p.queued.Add(-1)
	select {
	case p.sem <- struct{}{}:
		p.inflight.Add(1)
		return nil
	case <-ctx.Done():
		p.rejected.Add(1)
		return &saturatedError{cause: ctx.Err()}
	}
}

// Release frees a worker slot.
func (p *Pool) Release() {
	p.inflight.Add(-1)
	<-p.sem
}

// PoolStats is a point-in-time snapshot of the pool gauges.
type PoolStats struct {
	Workers  int   `json:"workers"`
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
}

// Stats snapshots the pool gauges and counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:  cap(p.sem),
		InFlight: p.inflight.Load(),
		Queued:   p.queued.Load(),
		Rejected: p.rejected.Load(),
	}
}
