package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"argo/internal/cluster"
	"argo/pkg/argo"
)

// startReplicas starts n in-process analysis replicas. wrap, when
// non-nil, wraps replica i's handler (fault injection).
func startReplicas(t *testing.T, n int, cfg Config, wrap func(i int, h http.Handler) http.Handler) ([]string, []*Server) {
	t.Helper()
	urls := make([]string, n)
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		s := NewServer(cfg)
		var h http.Handler = s.Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		servers[i] = s
	}
	return urls, servers
}

// startCoordinator starts a coordinator server over the given peers.
func startCoordinator(t *testing.T, peers []string, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Peers = peers
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

// compileCell fetches one compile and returns its summary (fatal on
// non-200).
func compileCell(t *testing.T, baseURL, usecase, platform string) *CompileSummary {
	t.Helper()
	body := fmt.Sprintf(`{"usecase":%q,"platform":%q}`, usecase, platform)
	resp, data := post(t, baseURL+"/v1/compile", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s x %s: status %d: %s", usecase, platform, resp.StatusCode, data)
	}
	var sum CompileSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("%s x %s: %v", usecase, platform, err)
	}
	if sum.Fingerprint == "" {
		t.Fatalf("%s x %s: empty fingerprint", usecase, platform)
	}
	return &sum
}

func matrixCells() (usecases, platforms []string) {
	for _, u := range argo.UseCases() {
		usecases = append(usecases, u.Name)
	}
	return usecases, argo.PlatformNames()
}

// TestClusterEquivalenceMatrix is the differential proof at the heart
// of this layer: for the full use-case×platform matrix, a 3-replica
// cluster behind a coordinator returns the exact ResultFingerprint the
// single-process oracle returns — the summaries are decided bit-for-bit
// identically no matter which replica computed them. Cells are fetched
// both sequentially and with a concurrent client burst (parallelism 1
// and N), and a refetch must hit the coordinator's local tier with the
// same fingerprint.
func TestClusterEquivalenceMatrix(t *testing.T) {
	_, oracleURL := startCoordinatorlessOracle(t)
	// Unbounded queues: the point here is equivalence under a full-matrix
	// burst, not load shedding (that behavior has its own tests).
	peers, _ := startReplicas(t, 3, Config{MaxQueue: -1}, nil)
	coord, coordURL := startCoordinator(t, peers, Config{MaxQueue: -1})

	usecases, platforms := matrixCells()
	type cell struct{ u, p string }
	var cells []cell
	for _, u := range usecases {
		for _, p := range platforms {
			cells = append(cells, cell{u, p})
		}
	}

	// Oracle pass (sequential) and cluster pass (concurrent burst:
	// every cell in flight at once exercises the sharded fan-out under
	// -race).
	oracle := make(map[cell]*CompileSummary, len(cells))
	for _, c := range cells {
		oracle[c] = compileCell(t, oracleURL, c.u, c.p)
	}
	got := make(map[cell]*CompileSummary, len(cells))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, c := range cells {
		wg.Add(1)
		go func(c cell) {
			defer wg.Done()
			sum := compileCell(t, coordURL, c.u, c.p)
			mu.Lock()
			got[c] = sum
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	for _, c := range cells {
		want, have := oracle[c], got[c]
		if have == nil {
			continue // that cell's fetch already failed the test
		}
		if have.Fingerprint != want.Fingerprint {
			t.Errorf("%s x %s: cluster fingerprint %.12s != oracle %.12s",
				c.u, c.p, have.Fingerprint, want.Fingerprint)
		}
		if have.TotalBound != want.TotalBound || have.WCETSpeedup != want.WCETSpeedup {
			t.Errorf("%s x %s: bound %d/%f != oracle %d/%f",
				c.u, c.p, have.TotalBound, have.WCETSpeedup, want.TotalBound, want.WCETSpeedup)
		}
	}

	// Sequential refetch: now served from the coordinator's local tier,
	// still the oracle fingerprint.
	for _, c := range cells[:6] {
		again := compileCell(t, coordURL, c.u, c.p)
		if again.Fingerprint != oracle[c].Fingerprint {
			t.Errorf("%s x %s: refetch fingerprint diverged", c.u, c.p)
		}
	}
	if st := coord.Cluster().Stats(); st.LocalHits == 0 {
		t.Errorf("refetches never hit the coordinator tier: %+v", st)
	}
}

// startCoordinatorlessOracle is a plain single-process server — the
// ground truth every cluster result is compared against.
func startCoordinatorlessOracle(t *testing.T) (*Server, string) {
	t.Helper()
	s, ts := newTestServer(t, Config{})
	return s, ts.URL
}

// testServerURL boots a plain single-process server and returns its URL.
func testServerURL(t *testing.T) string {
	t.Helper()
	_, ts := newTestServer(t, Config{})
	return ts.URL
}

// optimizeCell fetches one optimize response.
func optimizeCell(t *testing.T, baseURL, usecase, platform string, parallelism int) *OptimizeResponse {
	t.Helper()
	body := fmt.Sprintf(`{"usecase":%q,"platform":%q,"parallelism":%d}`, usecase, platform, parallelism)
	resp, data := post(t, baseURL+"/v1/optimize", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize %s x %s: status %d: %s", usecase, platform, resp.StatusCode, data)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestClusterOptimizeEquivalence proves the remote candidate worker
// seam: a coordinator fanning whole optimizer-ladder candidates out to
// replicas over /v1/candidate reduces to the exact response the
// in-process ladder produces — same best fingerprint, same bound, same
// iteration history — at per-replica width 1 and the default width.
func TestClusterOptimizeEquivalence(t *testing.T) {
	_, oracleURL := startCoordinatorlessOracle(t)
	peers, _ := startReplicas(t, 3, Config{}, nil)

	cells := []struct{ u, p string }{
		{"polka", "xentium4"},
		{"weaa", "xentium2"},
		{"egpws", "leon3-2x2"},
	}
	for _, par := range []int{1, 0} {
		// A fresh coordinator per parallelism degree so the distributed
		// ladder actually re-runs instead of hitting the first run's
		// coordinator cache (the replicas' candidate caches stay warm —
		// that is the production shape).
		_, coordURL := startCoordinator(t, peers, Config{})
		for _, c := range cells {
			want := optimizeCell(t, oracleURL, c.u, c.p, 1)
			got := optimizeCell(t, coordURL, c.u, c.p, par)
			if got.Best.Fingerprint != want.Best.Fingerprint {
				t.Errorf("par %d, %s x %s: best fingerprint %.12s != oracle %.12s",
					par, c.u, c.p, got.Best.Fingerprint, want.Best.Fingerprint)
			}
			if got.Best.TotalBound != want.Best.TotalBound {
				t.Errorf("par %d, %s x %s: best bound %d != %d",
					par, c.u, c.p, got.Best.TotalBound, want.Best.TotalBound)
			}
			if !reflect.DeepEqual(got.History, want.History) {
				t.Errorf("par %d, %s x %s: history diverged:\n got %+v\nwant %+v",
					par, c.u, c.p, got.History, want.History)
			}
		}
	}
}

// TestCandidateEndpointMatchesLadder pins the replica side of the seam
// on a single process: evaluating each default candidate through
// POST /v1/candidate reproduces the in-process ladder's per-iteration
// bounds exactly.
func TestCandidateEndpointMatchesLadder(t *testing.T) {
	ts := testServerURL(t)
	want := optimizeCell(t, ts, "polka", "xentium4", 1)

	plat := argo.Platform("xentium4")
	cands := argo.DefaultCandidates(plat.NumCores())
	if len(cands) != len(want.History) {
		t.Fatalf("%d candidates vs %d history rows", len(cands), len(want.History))
	}
	var bestFP string
	var bestBound int64 = -1
	for i, cand := range cands {
		cj := FromCandidate(cand)
		body, err := json.Marshal(&CandidateRequest{
			CompileRequest: CompileRequest{UseCase: "polka", Platform: "xentium4"},
			Candidate:      cj,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, data := post(t, ts+"/v1/candidate", string(body))
		row := want.History[i]
		if row.Error != "" {
			if resp.StatusCode == http.StatusOK {
				t.Fatalf("candidate %q succeeded; ladder recorded error %q", cand.Name, row.Error)
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("candidate %q: status %d: %s", cand.Name, resp.StatusCode, data)
		}
		var sum CompileSummary
		if err := json.Unmarshal(data, &sum); err != nil {
			t.Fatal(err)
		}
		if sum.TotalBound != row.Bound {
			t.Errorf("candidate %q: bound %d, ladder recorded %d", cand.Name, sum.TotalBound, row.Bound)
		}
		if bestBound < 0 || sum.TotalBound < bestBound {
			bestBound, bestFP = sum.TotalBound, sum.Fingerprint
		}
	}
	if bestFP != want.Best.Fingerprint {
		t.Errorf("reduced best fingerprint %.12s != ladder best %.12s", bestFP, want.Best.Fingerprint)
	}

	// Round-trip sanity for the candidate wire form.
	for _, cand := range cands {
		back, err := FromCandidate(cand).ToCandidate()
		if err != nil {
			t.Fatalf("round-trip %q: %v", cand.Name, err)
		}
		if !reflect.DeepEqual(back, cand) {
			t.Errorf("candidate %q round-trip mismatch: %+v vs %+v", cand.Name, back, cand)
		}
	}
	if _, err := (CandidateJSON{Policy: 99}).ToCandidate(); err == nil {
		t.Error("out-of-range policy accepted")
	}
}

// postBatch posts one batch request.
func postBatch(t *testing.T, baseURL string, req *BatchRequest) *BatchResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := post(t, baseURL+"/v1/batch", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestBatchEqualsSequential proves batch semantics against the
// cell-by-cell endpoints on both a single process and a cluster:
// identical summaries for good cells, per-cell failures (unknown use
// case, unknown platform) with stand-alone statuses for bad ones, and
// the envelope itself always 200.
func TestBatchEqualsSequential(t *testing.T) {
	_, oracleURL := startCoordinatorlessOracle(t)
	peers, _ := startReplicas(t, 3, Config{}, nil)
	_, coordURL := startCoordinator(t, peers, Config{})

	req := &BatchRequest{Cells: []BatchCell{
		{CompileRequest: CompileRequest{UseCase: "polka", Platform: "xentium4"}},
		{CompileRequest: CompileRequest{UseCase: "weaa", Platform: "xentium2"}, Op: "compile"},
		{CompileRequest: CompileRequest{UseCase: "no-such-usecase", Platform: "xentium4"}},
		{CompileRequest: CompileRequest{UseCase: "polka", Platform: "xentium4"}, Op: "optimize"},
		{CompileRequest: CompileRequest{UseCase: "egpws", Platform: "no-such-platform"}},
		{CompileRequest: CompileRequest{UseCase: "egpws", Platform: "leon3-2x2"}},
	}}

	for name, url := range map[string]string{"single": oracleURL, "cluster": coordURL} {
		t.Run(name, func(t *testing.T) {
			got := postBatch(t, url, req)
			if len(got.Cells) != len(req.Cells) {
				t.Fatalf("%d cell results for %d cells", len(got.Cells), len(req.Cells))
			}
			if got.OK != 4 || got.Failed != 2 {
				t.Fatalf("ok/failed = %d/%d, want 4/2", got.OK, got.Failed)
			}
			// Good compile cells: bit-identical to the stand-alone call.
			for _, i := range []int{0, 1, 5} {
				cell := req.Cells[i]
				want := compileCell(t, oracleURL, cell.UseCase, cell.Platform)
				res := got.Cells[i]
				if res.Status != http.StatusOK || res.Compile == nil {
					t.Fatalf("cell %d: %+v", i, res)
				}
				if res.Compile.Fingerprint != want.Fingerprint {
					t.Errorf("cell %d: fingerprint %.12s != sequential %.12s",
						i, res.Compile.Fingerprint, want.Fingerprint)
				}
				if res.Index != i || res.Op != "compile" {
					t.Errorf("cell %d: index/op %d/%q", i, res.Index, res.Op)
				}
			}
			// Optimize cell: matches the stand-alone optimizer.
			wantOpt := optimizeCell(t, oracleURL, "polka", "xentium4", 1)
			if res := got.Cells[3]; res.Optimize == nil ||
				res.Optimize.Best.Fingerprint != wantOpt.Best.Fingerprint ||
				!reflect.DeepEqual(res.Optimize.History, wantOpt.History) {
				t.Errorf("optimize cell diverged from sequential: %+v", res)
			}
			// Failed cells: stand-alone status, populated error, no result.
			for _, i := range []int{2, 4} {
				res := got.Cells[i]
				if res.Status != http.StatusNotFound || res.Error == "" ||
					res.Compile != nil || res.Optimize != nil {
					t.Errorf("bad cell %d: %+v", i, res)
				}
			}
		})
	}
}

// TestBatchValidation pins the envelope-level failure modes.
func TestBatchValidation(t *testing.T) {
	ts := testServerURL(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{"cells":[]}`},
		{"missing", `{}`},
		{"badop", `{"cells":[{"usecase":"polka","op":"simulate"}]}`},
		{"negpar", `{"cells":[{"usecase":"polka"}],"parallelism":-1}`},
		{"negtimeout", `{"cells":[{"usecase":"polka"}],"timeout_ms":-5}`},
	} {
		resp, data := post(t, ts+"/v1/batch", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", tc.name, resp.StatusCode, data)
		}
	}
	big := &BatchRequest{Cells: make([]BatchCell, maxBatchCells+1)}
	for i := range big.Cells {
		big.Cells[i] = BatchCell{CompileRequest: CompileRequest{UseCase: "polka"}}
	}
	body, _ := json.Marshal(big)
	resp, _ := post(t, ts+"/v1/batch", string(body))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d", resp.StatusCode)
	}
}

// TestClusterInfoEndpoints pins the topology surface in both modes.
func TestClusterInfoEndpoints(t *testing.T) {
	single := testServerURL(t)
	resp, data := get(t, single+"/v1/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var info map[string]any
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info["mode"] != "single" {
		t.Fatalf("mode = %v", info["mode"])
	}
	// Membership changes are a coordinator-only operation.
	resp, _ = post(t, single+"/v1/cluster/members", `{"members":["http://x"]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("single-mode members swap: status %d, want 409", resp.StatusCode)
	}

	peers, _ := startReplicas(t, 2, Config{}, nil)
	_, coordURL := startCoordinator(t, peers, Config{})
	resp, data = get(t, coordURL+"/v1/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cinfo struct {
		Mode    string                  `json:"mode"`
		Members []string                `json:"members"`
		Health  []cluster.ReplicaHealth `json:"health"`
	}
	if err := json.Unmarshal(data, &cinfo); err != nil {
		t.Fatal(err)
	}
	if cinfo.Mode != "coordinator" || len(cinfo.Members) != 2 || len(cinfo.Health) != 2 {
		t.Fatalf("cluster info %+v", cinfo)
	}
	for _, tc := range []string{`{"members":[]}`, `{"members":["ftp://x"]}`} {
		resp, _ = post(t, coordURL+"/v1/cluster/members", tc)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", tc, resp.StatusCode)
		}
	}
}
