package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"argo/internal/conc"
)

// maxBatchCells bounds one batch request.
const maxBatchCells = 256

// BatchCell is one use-case×platform cell of a batch: a compile request
// plus the operation to run on it.
type BatchCell struct {
	CompileRequest
	// Op is "compile" (default) or "optimize".
	Op string `json:"op,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: many cells evaluated
// concurrently with per-cell status — one cell failing (unknown use
// case, unschedulable model, shed) never fails the batch.
type BatchRequest struct {
	Cells []BatchCell `json:"cells"`
	// Parallelism bounds concurrent cell evaluation (0: GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMS caps the whole batch's budget (clamped to the server
	// timeout); each cell may lower its own budget further via its
	// timeout_ms.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchCellResult is one cell's outcome. Status is the HTTP status the
// cell's request would have gotten stand-alone; exactly one of Compile,
// Optimize, or Error is populated.
type BatchCellResult struct {
	Index int    `json:"index"`
	Op    string `json:"op"`
	// Status is the cell's HTTP-equivalent status (200 on success).
	Status int `json:"status"`
	// Outcome is the cache outcome (hit/miss/dedup) for successful cells.
	Outcome string `json:"outcome,omitempty"`
	// Replica is the replica that served the cell (coordinator mode).
	Replica string `json:"replica,omitempty"`
	// Compile is the result of a compile cell.
	Compile *CompileSummary `json:"compile,omitempty"`
	// Optimize is the result of an optimize cell.
	Optimize *OptimizeResponse `json:"optimize,omitempty"`
	// Error is the failure message of a failed cell.
	Error string `json:"error,omitempty"`
}

// BatchResponse is the body of a POST /v1/batch reply.
type BatchResponse struct {
	Cells []BatchCellResult `json:"cells"`
	// OK and Failed count cells by outcome (OK: 2xx status).
	OK     int `json:"ok"`
	Failed int `json:"failed"`
}

// handleBatch evaluates many cells concurrently — locally in
// single-process mode, sharded across the replica set in coordinator
// mode — with partial-failure semantics: the batch itself only fails on
// malformed envelopes, never on cell-level errors.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("batch")
	var req BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	if len(req.Cells) == 0 {
		s.writeErr(w, badRequest("cells must be non-empty"))
		return
	}
	if len(req.Cells) > maxBatchCells {
		s.writeErr(w, badRequest("at most %d cells per batch (got %d)", maxBatchCells, len(req.Cells)))
		return
	}
	if req.Parallelism < 0 {
		s.writeErr(w, badRequest("parallelism must be >= 0"))
		return
	}
	if req.TimeoutMS < 0 {
		s.writeErr(w, badRequest("timeout_ms must be >= 0"))
		return
	}
	for i := range req.Cells {
		switch req.Cells[i].Op {
		case "", "compile", "optimize":
		default:
			s.writeErr(w, badRequest("cells[%d]: unknown op %q (compile, optimize)", i, req.Cells[i].Op))
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.clampTimeout(req.TimeoutMS))
	defer cancel()
	t0 := time.Now()
	results := make([]BatchCellResult, len(req.Cells))
	// Deterministic fan-out over cells; each cell's own errors land in
	// its result row, so a ctx-cancel abort is the only way ForEach can
	// fail, and even then every started cell has a filled row.
	_ = conc.ForEach(ctx, req.Parallelism, len(req.Cells), func(i int) {
		results[i] = s.runBatchCell(ctx, i, &req.Cells[i])
	})
	s.metrics.Observe("batch", time.Since(t0))

	resp := &BatchResponse{Cells: results}
	for i := range results {
		if results[i].Status == 0 {
			// The batch deadline expired before this cell started.
			results[i] = s.failedCell(i, &req.Cells[i], context.DeadlineExceeded)
		}
		if results[i].Status >= 200 && results[i].Status < 300 {
			resp.OK++
		} else {
			resp.Failed++
		}
	}
	s.writeJSON(w, OutcomeMiss, resp)
}

func cellOp(cell *BatchCell) string {
	if cell.Op == "" {
		return "compile"
	}
	return cell.Op
}

// failedCell builds a failed result row with the status the cell's
// request would have gotten stand-alone.
func (s *Server) failedCell(i int, cell *BatchCell, err error) BatchCellResult {
	status := statusFor(err)
	s.metrics.Error(fmt.Sprintf("%dxx", status/100))
	return BatchCellResult{Index: i, Op: cellOp(cell), Status: status, Error: err.Error()}
}

// runBatchCell evaluates one cell. In coordinator mode whole cells are
// forwarded to the replica owning their content address (cache
// affinity); if every replica fails the cell falls back to local
// evaluation, so a batch never silently drops cells.
func (s *Server) runBatchCell(ctx context.Context, i int, cell *BatchCell) BatchCellResult {
	op := cellOp(cell)
	job, err := s.resolve(&cell.CompileRequest)
	if err != nil {
		return s.failedCell(i, cell, err)
	}
	cctx, cancel := context.WithTimeout(ctx, s.clampTimeout(cell.TimeoutMS))
	defer cancel()

	if s.cluster != nil {
		if res := s.forwardBatchCell(cctx, i, cell, job, op); res != nil {
			return *res
		}
		// Every replica failed: evaluate locally below.
	}

	out := BatchCellResult{Index: i, Op: op, Status: http.StatusOK}
	switch op {
	case "optimize":
		resp, outcome, err := s.optimizeLocal(cctx, job)
		if err != nil {
			return s.failedCell(i, cell, err)
		}
		out.Optimize, out.Outcome = resp, outcome.String()
	default:
		res, outcome, err := s.cachedCompile(cctx, job)
		if err != nil {
			return s.failedCell(i, cell, err)
		}
		out.Compile, out.Outcome = res.sum, outcome.String()
	}
	return out
}

// forwardBatchCell routes one cell through the cluster; nil means every
// replica failed and the caller should run the cell locally.
func (s *Server) forwardBatchCell(ctx context.Context, i int, cell *BatchCell, job *compileJob, op string) *BatchCellResult {
	kind, path := "compile", "/v1/compile"
	if op == "optimize" {
		kind, path = "optimize", "/v1/optimize"
	}
	f, err := s.clusterRoute(ctx, kind, path, &cell.CompileRequest, job)
	if err != nil {
		return nil
	}
	out := BatchCellResult{Index: i, Op: op, Status: f.status, Outcome: f.outcome, Replica: f.replica}
	if f.status != http.StatusOK {
		s.metrics.Error(fmt.Sprintf("%dxx", f.status/100))
		var er ErrorResponse
		if jerr := json.Unmarshal(f.body, &er); jerr == nil && er.Error != "" {
			out.Error = er.Error
		} else {
			out.Error = fmt.Sprintf("replica status %d: %.200s", f.status, f.body)
		}
		out.Outcome = ""
		return &out
	}
	switch op {
	case "optimize":
		var resp OptimizeResponse
		if jerr := json.Unmarshal(f.body, &resp); jerr != nil {
			return nil // corrupt reply: recompute locally
		}
		out.Optimize = &resp
	default:
		var sum CompileSummary
		if jerr := json.Unmarshal(f.body, &sum); jerr != nil {
			return nil
		}
		out.Compile = &sum
	}
	return &out
}
