package service

import (
	"context"
	"errors"
	"time"
)

// Retry policy for transient request failures. Attempts counts total
// tries (1 = no retry); backoff doubles per retry starting at retryBase.
const (
	retryAttempts = 3
	retryBase     = 5 * time.Millisecond
)

// isTransient classifies an error from the cache/pool path as retryable
// for a request whose own context ctx is still live.
//
// The one genuinely transient failure in this stack is shared-fate
// singleflight cancellation: a follower attaches to an in-flight
// identical computation, the leader's client disconnects, the leader's
// context cancels the shared execution, and every follower sees a
// context error that has nothing to do with its own budget. Retrying
// promotes the follower to leader and the work proceeds. Everything
// else is not retryable here: our own expired deadline stays expired,
// load shedding must propagate immediately (retrying against a
// saturated pool makes the overload worse), and pipeline errors are
// deterministic.
func isTransient(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	if IsShed(err) || IsSaturated(err) {
		return false
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// retryTransient runs fn up to retryAttempts times, backing off
// exponentially between tries, retrying only errors isTransient accepts.
// The value and outcome of the last attempt are returned.
func retryTransient(ctx context.Context, m *Metrics, fn func() (any, Outcome, error)) (any, Outcome, error) {
	backoff := retryBase
	for attempt := 1; ; attempt++ {
		val, outcome, err := fn()
		if err == nil || attempt >= retryAttempts || !isTransient(ctx, err) {
			return val, outcome, err
		}
		if m != nil {
			m.Retry()
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return val, outcome, err
		}
		backoff *= 2
	}
}
