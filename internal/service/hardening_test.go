package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"argo/pkg/argo"
)

func jsonBody(s string) *strings.Reader { return strings.NewReader(s) }

// TestReadyzSplitFromHealthz: once draining begins, /readyz must turn
// 503 so load balancers stop routing, while /healthz stays 200 and an
// in-flight request still completes (the drain must not kill it).
func TestReadyzSplitFromHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	started := make(chan struct{})
	release := make(chan struct{})
	real := s.compile
	s.compile = func(ctx context.Context, job *compileJob) (*argo.Artifacts, error) {
		close(started)
		<-release
		return real(ctx, job)
	}

	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d, want 200", resp.StatusCode)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var inflightStatus int
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json",
			jsonBody(`{"usecase":"weaa","platform":"xentium2"}`))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		inflightStatus = resp.StatusCode
	}()
	<-started

	s.StartDraining()
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d (%s), want 503", resp.StatusCode, body)
	}
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200 (liveness must not flip)", resp.StatusCode)
	}
	var health map[string]any
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health["draining"] != true {
		t.Errorf("healthz body %v, want draining=true", health)
	}

	close(release)
	wg.Wait()
	if inflightStatus != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200 (drain must not abort it)", inflightStatus)
	}
}

// TestLoadSheddingWith429: once Workers slots are busy and MaxQueue
// requests are waiting, further arrivals must be rejected immediately
// with 429 + Retry-After instead of queueing toward a timeout.
func TestLoadSheddingWith429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1, Timeout: 30 * time.Second})
	release := make(chan struct{})
	occupied := make(chan struct{}, 8)
	s.compile = func(ctx context.Context, job *compileJob) (*argo.Artifacts, error) {
		occupied <- struct{}{}
		<-release
		return nil, fmt.Errorf("unused")
	}
	defer close(release)

	// Distinct bodies defeat cache/singleflight sharing so each request
	// needs its own pool slot.
	body := func(i int) string {
		return fmt.Sprintf(`{"usecase":"weaa","platform":"xentium%d"}`, i)
	}
	go func() { // occupies the single worker
		resp, _ := http.Post(ts.URL+"/v1/compile", "application/json", jsonBody(body(1)))
		if resp != nil {
			resp.Body.Close()
		}
	}()
	<-occupied
	go func() { // fills the one queue slot
		resp, _ := http.Post(ts.URL+"/v1/compile", "application/json", jsonBody(body(2)))
		if resp != nil {
			resp.Body.Close()
		}
	}()
	// Wait until the queue gauge shows the waiter, then overload.
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, data := post(t, ts.URL+"/v1/compile", body(4))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 reply missing Retry-After header")
	}
	if s.pool.Stats().Shed == 0 {
		t.Error("shed counter not incremented")
	}
}

// TestPerRequestTimeout: a request-level timeout_ms below the server
// budget must bound the request; negative values are rejected.
func TestPerRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Timeout: 30 * time.Second})
	release := make(chan struct{})
	s.compile = func(ctx context.Context, job *compileJob) (*argo.Artifacts, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("unused")
	}
	defer close(release)

	t0 := time.Now()
	resp, data := post(t, ts.URL+"/v1/compile",
		`{"usecase":"weaa","platform":"xentium2","timeout_ms":50}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, data)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("timeout_ms=50 request took %v — the per-request deadline was ignored", d)
	}

	resp, data = post(t, ts.URL+"/v1/compile",
		`{"usecase":"weaa","platform":"xentium2","timeout_ms":-1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative timeout_ms: status %d (%s), want 400", resp.StatusCode, data)
	}
}

// TestSimulateWithFaults: in-budget injection must stay within bounds
// and report its stats; the over-bound negative mode must surface
// structured violations; malformed specs are 400s.
func TestSimulateWithFaults(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, data := post(t, ts.URL+"/v1/simulate",
		`{"usecase":"weaa","platform":"xentium2","seeds":[1,2],
		  "faults":{"seed":7,"access_jitter":1,"exec_inflation":1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Runs) != 2 {
		t.Fatalf("runs %d, want 2", len(sr.Runs))
	}
	for _, run := range sr.Runs {
		if !run.WithinBound || len(run.Violations) > 0 {
			t.Fatalf("in-budget injection broke bounds: %+v", run)
		}
		if run.Faults == nil || run.Faults.Total() == 0 {
			t.Fatalf("run %d reports no injected interference: %+v", run.Seed, run)
		}
	}
	if sr.Runs[0].Makespan > sr.Runs[0].TotalBound {
		t.Fatalf("makespan %d > bound %d", sr.Runs[0].Makespan, sr.Runs[0].TotalBound)
	}

	resp, data = post(t, ts.URL+"/v1/simulate",
		`{"usecase":"weaa","platform":"xentium2",
		  "faults":{"seed":1,"exec_inflation":1.25}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("negative mode status %d: %s", resp.StatusCode, data)
	}
	var neg SimulateResponse
	if err := json.Unmarshal(data, &neg); err != nil {
		t.Fatal(err)
	}
	run := neg.Runs[0]
	if run.WithinBound || len(run.Violations) == 0 {
		t.Fatalf("over-bound injection silently absorbed: %+v", run)
	}
	if run.Violations[0].Kind == "" || run.Violations[0].Observed <= run.Violations[0].Bound {
		t.Fatalf("malformed violation record: %+v", run.Violations[0])
	}

	resp, _ = post(t, ts.URL+"/v1/simulate",
		`{"usecase":"weaa","faults":{"access_jitter":2}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid faults spec: status %d, want 400", resp.StatusCode)
	}
}

// TestRetryTransient: shared-fate singleflight cancellations retry;
// own-deadline and load-shed errors must not.
func TestRetryTransient(t *testing.T) {
	m := NewMetrics(NewCache(4), NewPool(1, 0), time.Now())
	calls := 0
	val, _, err := retryTransient(context.Background(), m, func() (any, Outcome, error) {
		calls++
		if calls == 1 {
			return nil, OutcomeDedup, context.Canceled // leader died, we're alive
		}
		return "ok", OutcomeMiss, nil
	})
	if err != nil || val != "ok" || calls != 2 {
		t.Fatalf("transient not retried: val=%v err=%v calls=%d", val, err, calls)
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	calls = 0
	_, _, err = retryTransient(expired, m, func() (any, Outcome, error) {
		calls++
		return nil, OutcomeDedup, context.Canceled
	})
	if err == nil || calls != 1 {
		t.Fatalf("own-context cancellation must not retry (calls=%d, err=%v)", calls, err)
	}

	calls = 0
	_, _, err = retryTransient(context.Background(), m, func() (any, Outcome, error) {
		calls++
		return nil, OutcomeMiss, &shedError{depth: 9}
	})
	if !IsShed(err) || calls != 1 {
		t.Fatalf("load shedding must propagate immediately (calls=%d, err=%v)", calls, err)
	}
}

// TestRetryPromotesFollowerAfterLeaderCancel drives the real cache path:
// a follower attached to a leader whose context dies must transparently
// retry and produce the value itself.
func TestRetryPromotesFollowerAfterLeaderCancel(t *testing.T) {
	c := NewCache(4)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		_, _, _ = c.Do(leaderCtx, "k", func() (any, error) {
			close(started)
			<-leaderCtx.Done()
			return nil, leaderCtx.Err()
		})
	}()
	<-started

	followerCtx := context.Background()
	done := make(chan struct{})
	var val any
	var err error
	go func() {
		defer close(done)
		val, _, err = retryTransient(followerCtx, nil, func() (any, Outcome, error) {
			return c.Do(followerCtx, "k", func() (any, error) { return 42, nil })
		})
	}()
	time.Sleep(10 * time.Millisecond) // let the follower attach
	cancelLeader()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never completed")
	}
	if err != nil || val != 42 {
		t.Fatalf("follower not promoted: val=%v err=%v", val, err)
	}
}
