package session

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"expvar"
	"fmt"
	"sync"
	"time"

	"argo/internal/core"
	"argo/internal/fault"
)

// Process-wide session observability, served by argod's /debug/vars.
// All Managers in the process share the counters (one daemon runs one
// manager; tests read deltas).
var (
	sessLive    = expvar.NewInt("argo_session_live")
	sessEvicted = expvar.NewInt("argo_session_evicted")
	sessExpired = expvar.NewInt("argo_session_expired")
	sessEdits   = expvar.NewInt("argo_session_edits")
	// Cumulative dirty-suffix accounting across all session analyses:
	// how many pass executions the incremental machinery skipped
	// (snapshot restore) vs actually re-ran.
	sessPassesSkipped = expvar.NewInt("argo_session_passes_skipped")
	sessPassesReran   = expvar.NewInt("argo_session_passes_reran")
	// memoHits counts analyses served whole from a session's result
	// memo (a revisited configuration: the empty-dirty-suffix case).
	memoHits = expvar.NewInt("argo_session_memo_hits")
)

// Counters returns the process-wide session counters (live, evicted,
// expired, edits) — the expvar values, snapshot for tests.
func Counters() (live, evicted, expired, edits int64) {
	return sessLive.Value(), sessEvicted.Value(), sessExpired.Value(), sessEdits.Value()
}

// Manager owns the live sessions of one service process: bounded count
// with LRU eviction, TTL expiry, and id allocation. All methods are
// safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

type managerEntry struct {
	s        *Session
	lastUsed time.Time
	created  time.Time
}

// Default manager bounds.
const (
	DefaultMaxSessions = 64
	DefaultTTL         = 30 * time.Minute
)

// NewManager returns a manager holding at most max sessions (<= 0:
// DefaultMaxSessions), expiring sessions idle longer than ttl (<= 0:
// DefaultTTL).
func NewManager(max int, ttl time.Duration) *Manager {
	if max <= 0 {
		max = DefaultMaxSessions
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Manager{
		max:     max,
		ttl:     ttl,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// newID allocates a session id ("s-" + 12 hex chars).
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("session: id entropy: %v", err)) // crypto/rand never fails on supported platforms
	}
	return "s-" + hex.EncodeToString(b[:])
}

// Create cold-compiles a new session and registers it, evicting the
// least-recently-used session if the manager is full.
func (m *Manager) Create(ctx context.Context, source string, opt core.Options, faults fault.Spec, aopt ApplyOptions) (*Session, *EditResult, error) {
	s, res, err := newSession(ctx, source, opt, faults, aopt)
	if err != nil {
		return nil, nil, err
	}
	m.observe(res)

	m.mu.Lock()
	now := time.Now()
	m.sweepLocked(now)
	for m.lru.Len() >= m.max {
		m.removeLocked(m.lru.Back(), sessEvicted)
	}
	s.ID = newID()
	for m.entries[s.ID] != nil { // vanishing collision odds, but ids must be unique
		s.ID = newID()
	}
	m.entries[s.ID] = m.lru.PushFront(&managerEntry{s: s, lastUsed: now, created: now})
	m.mu.Unlock()
	sessLive.Add(1)
	return s, res, nil
}

// Get returns a live session and touches its LRU/TTL clock. A session
// idle past the TTL is expired on access.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[id]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*managerEntry)
	if time.Since(ent.lastUsed) > m.ttl {
		m.removeLocked(el, sessExpired)
		return nil, false
	}
	ent.lastUsed = time.Now()
	m.lru.MoveToFront(el)
	return ent.s, true
}

// Delete removes a session; it reports whether the id was live.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[id]
	if !ok {
		return false
	}
	m.removeLocked(el, nil)
	return true
}

// Sweep expires every session idle past the TTL and returns how many it
// removed. The service runs it periodically; Create runs it inline so a
// burst of creations cannot pin expired sessions in memory.
func (m *Manager) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked(time.Now())
}

func (m *Manager) sweepLocked(now time.Time) int {
	n := 0
	for el := m.lru.Back(); el != nil; {
		prev := el.Prev()
		if now.Sub(el.Value.(*managerEntry).lastUsed) > m.ttl {
			m.removeLocked(el, sessExpired)
			n++
		}
		el = prev
	}
	return n
}

// removeLocked drops one session, counting it against the given expvar
// (nil for explicit deletes). Caller holds m.mu.
func (m *Manager) removeLocked(el *list.Element, counter *expvar.Int) {
	ent := el.Value.(*managerEntry)
	ent.s.close()
	m.lru.Remove(el)
	delete(m.entries, ent.s.ID)
	if counter != nil {
		counter.Add(1)
	}
	sessLive.Add(-1)
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// Apply routes one edit to a live session, touching its clock and
// feeding the process-wide counters.
func (m *Manager) Apply(ctx context.Context, id string, e Edit, aopt ApplyOptions) (*EditResult, error) {
	s, ok := m.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	res, err := s.Apply(ctx, e, aopt)
	if err != nil {
		return nil, err
	}
	sessEdits.Add(1)
	m.observe(res)
	return res, nil
}

// observe feeds one analysis's dirty-suffix split into the counters.
func (m *Manager) observe(res *EditResult) {
	sessPassesSkipped.Add(int64(res.PassesSkipped))
	sessPassesReran.Add(int64(res.PassesReran))
}

// Info is one session's row in a listing.
type Info struct {
	ID       string
	Edits    int
	IdleFor  time.Duration
	Age      time.Duration
	CacheLen int
}

// List snapshots the live sessions, most recently used first.
func (m *Manager) List() []Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	out := make([]Info, 0, m.lru.Len())
	for el := m.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*managerEntry)
		_, _, _, edits := ent.s.Snapshot()
		out = append(out, Info{
			ID:       ent.s.ID,
			Edits:    edits,
			IdleFor:  now.Sub(ent.lastUsed),
			Age:      now.Sub(ent.created),
			CacheLen: ent.s.CacheStats().Entries,
		})
	}
	return out
}

// TTL returns the manager's idle expiry.
func (m *Manager) TTL() time.Duration { return m.ttl }

// Max returns the manager's session-count bound.
func (m *Manager) Max() int { return m.max }

// ErrNotFound marks a session id that is not (or no longer) live.
var ErrNotFound = fmt.Errorf("session: not found (expired, evicted, or never created)")
