package session

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"argo/internal/adl"
	"argo/internal/fault"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/transform"
)

// Edit operation names (the wire `op` discriminator).
const (
	// OpReplaceFunc swaps one scil function body: Source must hold
	// exactly one function...endfunction definition whose name matches
	// Func (or, when Func is empty, names the function to replace).
	OpReplaceFunc = "replace-func"
	// OpSetParam changes one ADL platform parameter on the session's
	// private platform copy (see ParamNames for the paths).
	OpSetParam = "set-param"
	// OpToggleTransform disables (Disable=true) or re-enables one
	// predictability transformation pass by name.
	OpToggleTransform = "toggle-transform"
	// OpSetPolicy switches the scheduling policy.
	OpSetPolicy = "set-policy"
	// OpSetFaults replaces the session's fault-injection spec. The spec
	// only affects subsequent Simulate calls, so this edit does not
	// trigger re-analysis.
	OpSetFaults = "set-faults"
)

// Edit is one typed what-if operation against a session. Exactly the
// fields of the selected Op are read; the rest are ignored.
type Edit struct {
	Op string

	// OpReplaceFunc
	Func   string
	Source string

	// OpSetParam
	Param string
	Value float64

	// OpToggleTransform
	Transform string
	Disable   bool

	// OpSetPolicy
	Policy sched.Policy

	// OpSetFaults
	Faults fault.Spec
}

// String renders the edit for logs and error messages.
func (e Edit) String() string {
	switch e.Op {
	case OpReplaceFunc:
		return fmt.Sprintf("replace-func %s (%d bytes)", e.Func, len(e.Source))
	case OpSetParam:
		return fmt.Sprintf("set-param %s=%v", e.Param, e.Value)
	case OpToggleTransform:
		state := "on"
		if e.Disable {
			state = "off"
		}
		return fmt.Sprintf("toggle-transform %s=%s", e.Transform, state)
	case OpSetPolicy:
		return "set-policy " + e.Policy.String()
	case OpSetFaults:
		return "set-faults"
	}
	return "edit " + e.Op
}

// Reanalyzes reports whether applying the edit changes analysis inputs
// (everything except a fault-spec swap does).
func (e Edit) Reanalyzes() bool { return e.Op != OpSetFaults }

// applyReplaceFunc splices the replacement function into source and
// returns the new canonical source text. The session's source is
// re-rendered through the formatter so that the differential contract —
// session result ≡ cold compile of Session.Source() — holds by
// construction: the analyzed program IS Parse(Source()).
func applyReplaceFunc(source string, e Edit) (string, error) {
	prog, err := scil.Parse(source)
	if err != nil {
		return "", fmt.Errorf("session source no longer parses: %v", err)
	}
	repl, err := scil.Parse(e.Source)
	if err != nil {
		return "", fmt.Errorf("replacement source: %v", err)
	}
	if len(repl.Funcs) != 1 {
		return "", fmt.Errorf("replacement source must hold exactly one function, got %d", len(repl.Funcs))
	}
	decl := repl.Funcs[0]
	name := e.Func
	if name == "" {
		name = decl.Name
	}
	if decl.Name != name {
		return "", fmt.Errorf("replacement defines %q, edit names %q", decl.Name, name)
	}
	replaced := false
	for i, f := range prog.Funcs {
		if f.Name == name {
			prog.Funcs[i] = decl
			replaced = true
			break
		}
	}
	if !replaced {
		return "", fmt.Errorf("no function %q in session source (functions: %s)", name, strings.Join(funcNames(prog), ", "))
	}
	if errs := scil.Check(prog, scil.CheckWCET); len(errs) > 0 {
		return "", fmt.Errorf("edited model fails check: %v", errs[0])
	}
	return scil.Format(prog), nil
}

func funcNames(p *scil.Program) []string {
	names := make([]string, len(p.Funcs))
	for i, f := range p.Funcs {
		names[i] = f.Name
	}
	return names
}

// paramSetter writes one ADL parameter; integer parameters reject
// fractional values.
type paramSetter func(p *adl.Platform, v float64) error

func intSetter(name string, set func(p *adl.Platform, v int)) paramSetter {
	return func(p *adl.Platform, v float64) error {
		if v != math.Trunc(v) {
			return fmt.Errorf("parameter %s takes an integer, got %v", name, v)
		}
		set(p, int(v))
		return nil
	}
}

// paramSetters maps ADL parameter paths to their setters. Core-level
// parameters apply to every core (per-core what-ifs would change the
// platform shape, not a parameter).
var paramSetters = map[string]paramSetter{
	"shared.access_cycles": intSetter("shared.access_cycles", func(p *adl.Platform, v int) { p.Shared.AccessCycles = v }),
	"shared.size_bytes":    intSetter("shared.size_bytes", func(p *adl.Platform, v int) { p.Shared.SizeBytes = v }),
	"core.op_cycles": intSetter("core.op_cycles", func(p *adl.Platform, v int) {
		for i := range p.Cores {
			p.Cores[i].OpCycles = v
		}
	}),
	"core.spm.size_bytes": intSetter("core.spm.size_bytes", func(p *adl.Platform, v int) {
		for i := range p.Cores {
			p.Cores[i].SPM.SizeBytes = v
		}
	}),
	"core.spm.latency_cycles": intSetter("core.spm.latency_cycles", func(p *adl.Platform, v int) {
		for i := range p.Cores {
			p.Cores[i].SPM.LatencyCycles = v
		}
	}),
	"bus.slot_cycles": intSetter("bus.slot_cycles", func(p *adl.Platform, v int) {
		if p.Bus != nil {
			p.Bus.SlotCycles = v
		}
	}),
	"noc.link_cycles": intSetter("noc.link_cycles", func(p *adl.Platform, v int) {
		if p.NoC != nil {
			p.NoC.LinkCycles = v
		}
	}),
	"noc.router_cycles": intSetter("noc.router_cycles", func(p *adl.Platform, v int) {
		if p.NoC != nil {
			p.NoC.RouterCycles = v
		}
	}),
	"noc.wrr_weight": intSetter("noc.wrr_weight", func(p *adl.Platform, v int) {
		if p.NoC != nil {
			p.NoC.WRRWeight = v
		}
	}),
	"dma.setup_cycles": intSetter("dma.setup_cycles", func(p *adl.Platform, v int) { p.DMA.SetupCycles = v }),
	"dma.cycles_per_byte": func(p *adl.Platform, v float64) error {
		p.DMA.CyclesPerByte = v
		return nil
	},
}

// ParamNames lists the editable ADL parameter paths, sorted.
func ParamNames() []string {
	names := make([]string, 0, len(paramSetters))
	for n := range paramSetters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// applySetParam mutates the (session-private) platform and re-validates
// it. Interconnect parameters require the matching interconnect.
func applySetParam(p *adl.Platform, e Edit) error {
	set, ok := paramSetters[e.Param]
	if !ok {
		return fmt.Errorf("unknown ADL parameter %q (parameters: %s)", e.Param, strings.Join(ParamNames(), ", "))
	}
	if strings.HasPrefix(e.Param, "bus.") && p.Bus == nil {
		return fmt.Errorf("platform %s has no bus", p.Name)
	}
	if strings.HasPrefix(e.Param, "noc.") && p.NoC == nil {
		return fmt.Errorf("platform %s has no NoC", p.Name)
	}
	if err := set(p, e.Value); err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("edit leaves platform invalid: %v", err)
	}
	return nil
}

// applyToggleTransform rewrites the disabled-pass list. Disabling is
// idempotent; enabling a never-disabled pass is a no-op.
func applyToggleTransform(disabled []string, e Edit) ([]string, error) {
	known := false
	for _, n := range transform.PassNames() {
		if n == e.Transform {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("unknown transformation pass %q (passes: %s)", e.Transform, strings.Join(transform.PassNames(), ", "))
	}
	out := make([]string, 0, len(disabled)+1)
	for _, n := range disabled {
		if n != e.Transform {
			out = append(out, n)
		}
	}
	if e.Disable {
		out = append(out, e.Transform)
		sort.Strings(out)
	}
	return out, nil
}

// validate rejects malformed edits before any state is touched.
func (e Edit) validate() error {
	switch e.Op {
	case OpReplaceFunc:
		if e.Source == "" {
			return fmt.Errorf("replace-func needs source")
		}
	case OpSetParam:
		if e.Param == "" {
			return fmt.Errorf("set-param needs param")
		}
	case OpToggleTransform:
		if e.Transform == "" {
			return fmt.Errorf("toggle-transform needs transform")
		}
	case OpSetPolicy:
		switch e.Policy {
		case sched.ListOblivious, sched.ListContentionAware, sched.BranchBound:
		default:
			return fmt.Errorf("unknown policy %v", e.Policy)
		}
	case OpSetFaults:
		if err := e.Faults.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown edit op %q (ops: %s, %s, %s, %s, %s)", e.Op,
			OpReplaceFunc, OpSetParam, OpToggleTransform, OpSetPolicy, OpSetFaults)
	}
	return nil
}
