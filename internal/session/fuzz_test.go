package session

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/fault"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/transform"
	"argo/internal/usecases"
)

// FuzzSessionEdit drives a session through an arbitrary byte-derived
// edit sequence with the differential verifier armed: every applied
// edit's incremental result must be bit-identical to a cold compile of
// the edited source, and the final session state is re-checked
// independently. Rejected edits are fine (they must leave the session
// untouched); a verify mismatch is the bug this target hunts.
func FuzzSessionEdit(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x20})
	f.Add([]byte{0x06, 0x11, 0x03, 0xff, 0x04, 0x02})
	f.Add([]byte{0x07, 0x40, 0x00, 0x00, 0x05, 0x01, 0x02, 0x7f})
	f.Add([]byte{0x04, 0x01, 0x04, 0x01, 0x06, 0x22, 0x01, 0x08})

	uc := usecases.ByName("polka")
	plat := adl.Builtin("xentium4")
	names := transform.PassNames()

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		opt := core.DefaultOptions(uc.Entry, uc.Args, plat)
		s, _, err := New(context.Background(), uc.Source, opt, fault.Spec{})
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		varN := 0
		// Two bytes per edit (op selector, value), at most 5 edits.
		for i := 0; i+1 < len(data) && i < 10; i += 2 {
			op, val := data[i]%8, data[i+1]
			var e Edit
			switch op {
			case 0:
				e = Edit{Op: OpSetParam, Param: "shared.access_cycles", Value: float64(val) - 8}
			case 1:
				e = Edit{Op: OpSetParam, Param: "core.op_cycles", Value: float64(1 + val%8)}
			case 2:
				e = Edit{Op: OpSetParam, Param: "dma.cycles_per_byte", Value: float64(val) / 32}
			case 3:
				e = Edit{Op: OpSetParam, Param: "bus.slot_cycles", Value: float64(val) - 8}
			case 4:
				e = Edit{Op: OpToggleTransform, Transform: names[int(val)%len(names)], Disable: val&0x80 == 0}
			case 5:
				pol := sched.ListContentionAware
				if val%2 == 0 {
					pol = sched.ListOblivious
				}
				e = Edit{Op: OpSetPolicy, Policy: pol}
			case 6:
				prog, err := scil.Parse(s.Source())
				if err != nil {
					t.Fatalf("session source stopped parsing: %v", err)
				}
				fn := prog.Funcs[int(val)%len(prog.Funcs)]
				text := scil.Format(&scil.Program{Funcs: []*scil.FuncDecl{fn}})
				varN++
				stmt := fmt.Sprintf("  wif%d = %d + 1\nendfunction", varN, int(val)%13)
				text = strings.Replace(text, "endfunction", stmt, 1)
				e = Edit{Op: OpReplaceFunc, Func: fn.Name, Source: text}
			case 7:
				e = Edit{Op: OpSetFaults, Faults: fault.Spec{Seed: int64(val), AccessJitter: float64(val%100) / 100}}
			}
			before := s.Fingerprint()
			if _, err := s.Apply(context.Background(), e, ApplyOptions{Verify: true}); err != nil {
				if strings.Contains(err.Error(), "verify FAILED") {
					t.Fatalf("edit %s: %v", e, err)
				}
				if got := s.Fingerprint(); got != before {
					t.Fatalf("rejected edit %s changed the session: %s -> %s", e, before[:16], got[:16])
				}
			}
		}
		// Independent final check: a cold compile of the canonical source
		// reproduces the session state bit for bit.
		opt = s.Options()
		opt.Passes.Cache = nil
		opt.Passes.NoCache = true
		art, err := core.CompileSourceContext(context.Background(), s.Source(), opt)
		if err != nil {
			t.Fatalf("cold compile of session source: %v", err)
		}
		if got, want := ResultFingerprint(art), s.Fingerprint(); got != want {
			t.Fatalf("final state diverged: cold %s != session %s", got[:16], want[:16])
		}
	})
}
