// Package session implements interactive what-if sessions: a persistent
// per-session store of compiled artifacts (source text, options, last
// analysis result, fault spec) with a typed edit API, so that IDE-style
// traffic — each small edit a request — pays only for the dirty pass
// suffix instead of a cold compile.
//
// The paper's tool flow (§II, Figure 1) is explicitly iterative:
// developers tune the model, the mapping, and the platform until the
// WCET bound meets the deadline. A session keeps the machinery of that
// loop warm across requests: every re-analysis runs on a session-private
// content-addressed pass cache (internal/pass), so passes whose input
// fingerprints are unchanged restore their recorded snapshots instead
// of re-running, and the system-level interference fixed point
// (internal/syswcet) re-converges incrementally over its dirty task
// sets. On top of the pass cache sits a bounded result memo: revisiting
// a configuration the session has already analyzed (A/B-ing two
// parameter values, toggling a transform back) restores the finished
// artifacts whole — the empty-dirty-suffix limit case, no pass runs at
// all. Correctness is differential by construction: after every edit
// the session result is bit-identical to a cold compile of the edited
// source — Verify asserts it on demand, the tests assert it over
// randomized and fuzzed edit sequences.
package session

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/fault"
	"argo/internal/pass"
	"argo/internal/sim"
	"argo/internal/syswcet"
)

// Session is one interactive what-if session: the current source text
// and options, the last analysis, and a private pass cache holding the
// snapshots incremental re-analysis restores from. All methods are
// safe for concurrent use; edits on one session are serialized.
type Session struct {
	// ID is the session handle (assigned by the Manager; empty for
	// sessions created directly via New).
	ID string
	// Meta is opaque embedder state attached to the session (the service
	// stores the originating use case here so simulate requests can
	// regenerate inputs). Set it once, right after creation, before the
	// session is shared.
	Meta any

	mu     sync.Mutex
	source string
	opt    core.Options // Platform is a session-private copy
	faults fault.Spec
	cache  *pass.Cache
	art    *core.Artifacts
	fp     string
	edits  int

	// memo is the session's result memo: finished artifacts keyed by
	// configuration fingerprint (source, platform, policy, disabled
	// passes — exactly the state edits can move). Revisiting an already
	// analyzed configuration (toggling a transform back, A/B-ing two
	// parameter values) is the empty-dirty-suffix limit case of
	// incremental re-analysis: nothing re-runs, the finished result is
	// restored whole. memoOrder is the FIFO eviction order.
	memo      map[string]memoEntry
	memoOrder []string

	closed atomic.Bool
}

// memoEntry is one memoized analysis: the immutable artifacts and their
// result fingerprint.
type memoEntry struct {
	art *core.Artifacts
	fp  string
}

// EditResult reports one analysis of a session (creation or edit).
type EditResult struct {
	// Artifacts is the (re-)analysis result. Callers must treat it as
	// read-only; it is shared with the session until the next edit.
	Artifacts *core.Artifacts
	// Fingerprint content-addresses the full result (schedule, bounds,
	// windows, IR); two analyses with equal fingerprints are
	// bit-identical.
	Fingerprint string
	// PassesSkipped / PassesReran split the pipeline's passes into the
	// clean set (restored from the session cache without running) and
	// the dirty suffix that actually re-ran.
	PassesSkipped, PassesReran int
	// ChangedTasks lists the tasks whose analyzed window, bound, or
	// interference the edit moved (all tasks for a creation or a
	// graph-shape change).
	ChangedTasks []int
	// BoundDelta is newBound - oldBound (0 for creation).
	BoundDelta int64
	// Wall is the re-analysis wall time.
	Wall time.Duration
	// Verified reports that a differential cold compile was run and
	// matched bit-identically.
	Verified bool
}

// ApplyOptions tunes one Apply call.
type ApplyOptions struct {
	// OnTiming observes every completed pass (streaming: one event per
	// pass). Called on the applying goroutine.
	OnTiming func(pass.Timing)
	// Verify re-runs the edited source as a cold, cache-free compile and
	// fails the edit if the result is not bit-identical to the
	// incremental re-analysis (the differential soundness contract).
	Verify bool
}

// sessionCacheEntries bounds each session's private pass cache. The
// cache holds deep-frozen pass outputs (cloned IR programs, schedules),
// so the bound is deliberately small; a busy session evicts its oldest
// what-if variants first.
const sessionCacheEntries = 256

// sessionMemoEntries bounds the per-session result memo. Each entry
// pins one full artifact set, so the bound is small: it covers the
// handful of configurations an interactive A/B comparison ping-pongs
// between, not the session's whole history.
const sessionMemoEntries = 16

// New creates a session by cold-compiling source under opt. The
// platform is deep-copied so ADL edits never alias the caller's value.
func New(ctx context.Context, source string, opt core.Options, faults fault.Spec) (*Session, *EditResult, error) {
	return newSession(ctx, source, opt, faults, ApplyOptions{})
}

func newSession(ctx context.Context, source string, opt core.Options, faults fault.Spec, aopt ApplyOptions) (*Session, *EditResult, error) {
	if opt.Platform == nil {
		return nil, nil, fmt.Errorf("session: no platform")
	}
	if err := faults.Validate(); err != nil {
		return nil, nil, fmt.Errorf("session: faults: %v", err)
	}
	s := &Session{
		source: source,
		opt:    opt,
		faults: faults,
		cache:  pass.NewCache(sessionCacheEntries),
		memo:   make(map[string]memoEntry),
	}
	// Tier the private cache over the process-wide one: a configuration
	// the global tier already analyzed (an argod compile request, another
	// session, a prior compile of the same cell) restores read-through,
	// and its snapshots are not double-stored into the session's bounded
	// private cache (they'd only displace session-local history).
	s.cache.SetFallback(pass.Global)
	s.opt.Platform = clonePlatform(opt.Platform)
	res, err := s.analyzeLocked(ctx, s.source, s.opt, aopt)
	if err != nil {
		return nil, nil, err
	}
	s.art = res.Artifacts
	s.fp = res.Fingerprint
	return s, res, nil
}

// Apply performs one edit: it validates the op, applies it to copies of
// the session state, re-analyzes (only the dirty pass suffix runs; the
// clean set restores from the session cache), and commits the new state
// atomically on success. A failed edit leaves the session untouched.
// Edits on one session are serialized; distinct sessions apply
// concurrently.
func (s *Session) Apply(ctx context.Context, e Edit, aopt ApplyOptions) (*EditResult, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("session: closed")
	}
	if err := e.validate(); err != nil {
		return nil, fmt.Errorf("session: %s: %v", e.Op, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Work on copies; commit only after a successful re-analysis.
	source := s.source
	opt := s.opt
	opt.Platform = clonePlatform(s.opt.Platform)
	opt.Passes.Disable = append([]string(nil), s.opt.Passes.Disable...)
	faults := s.faults

	var err error
	switch e.Op {
	case OpReplaceFunc:
		source, err = applyReplaceFunc(source, e)
	case OpSetParam:
		err = applySetParam(opt.Platform, e)
	case OpToggleTransform:
		opt.Passes.Disable, err = applyToggleTransform(opt.Passes.Disable, e)
	case OpSetPolicy:
		opt.Policy = e.Policy
	case OpSetFaults:
		faults = e.Faults
	}
	if err != nil {
		return nil, fmt.Errorf("session: %s: %v", e.Op, err)
	}

	if !e.Reanalyzes() {
		// Fault-spec edits change future simulations, not the analysis:
		// commit without touching the artifacts.
		s.faults = faults
		s.edits++
		return &EditResult{
			Artifacts:   s.art,
			Fingerprint: s.fp,
		}, nil
	}

	res, err := s.analyzeLocked(ctx, source, opt, aopt)
	if err != nil {
		return nil, err
	}
	res.ChangedTasks = syswcet.DiffTasks(s.art.System, res.Artifacts.System)
	res.BoundDelta = res.Artifacts.Bound() - s.art.Bound()
	s.source, s.opt, s.faults = source, opt, faults
	s.art, s.fp = res.Artifacts, res.Fingerprint
	s.edits++
	return res, nil
}

// analyzeLocked runs the pipeline on the session's private pass cache
// and, when requested, the differential cold compile. A configuration
// the session has already analyzed is restored whole from the result
// memo (every pass skipped, nothing re-runs). Caller holds s.mu (or
// owns s exclusively during creation).
func (s *Session) analyzeLocked(ctx context.Context, source string, opt core.Options, aopt ApplyOptions) (*EditResult, error) {
	t0 := time.Now()
	key := configKey(source, opt)
	var art *core.Artifacts
	var skipped, reran int
	if ent, ok := s.memo[key]; ok {
		memoHits.Add(1)
		art = ent.art
		skipped = len(art.PassTrace.Passes)
		if aopt.OnTiming != nil {
			// Streaming observers still see one event per pass; a memo
			// restore is a cache hit for every one of them.
			for _, tm := range art.PassTrace.Passes {
				aopt.OnTiming(pass.Timing{Pass: tm.Pass, Round: tm.Round, Cache: pass.CacheHit})
			}
		}
	} else {
		opt.Passes.Cache = s.cache
		opt.Passes.NoCache = false
		opt.Passes.OnTiming = aopt.OnTiming
		var err error
		art, err = core.CompileSourceContext(ctx, source, opt)
		if err != nil {
			return nil, err
		}
		skipped, reran = art.PassTrace.CacheCounts()
		s.memoPut(key, memoEntry{art: art, fp: ResultFingerprint(art)})
	}
	res := &EditResult{
		Artifacts:     art,
		Fingerprint:   s.memo[key].fp,
		PassesSkipped: skipped,
		PassesReran:   reran,
		Wall:          time.Since(t0),
	}
	if aopt.Verify {
		coldFP, err := coldFingerprint(ctx, source, opt)
		if err != nil {
			return nil, fmt.Errorf("session: differential verify compile: %w", err)
		}
		if coldFP != res.Fingerprint {
			return nil, fmt.Errorf("session: differential verify FAILED: incremental %s != cold %s (pass-cache soundness bug)",
				res.Fingerprint[:16], coldFP[:16])
		}
		res.Verified = true
	}
	return res, nil
}

// memoPut stores one finished analysis under its configuration key,
// evicting the oldest memoized configuration beyond the bound. The
// just-inserted key is never the eviction victim.
func (s *Session) memoPut(key string, ent memoEntry) {
	if _, ok := s.memo[key]; !ok {
		s.memoOrder = append(s.memoOrder, key)
		if len(s.memoOrder) > sessionMemoEntries {
			delete(s.memo, s.memoOrder[0])
			s.memoOrder = s.memoOrder[1:]
		}
	}
	s.memo[key] = ent
}

// configKey content-addresses everything the pipeline's result depends
// on that a session edit can move: the source text, the platform
// description, the scheduling policy, and the disabled-pass set. The
// remaining options (entry, argument specs, transform tuning, loop
// caps) are fixed at session creation and hashed for completeness.
func configKey(source string, opt core.Options) string {
	h := sha256.New()
	wstr := func(v string) { io.WriteString(h, v); h.Write([]byte{0}) }
	wstr(source)
	wstr(opt.Entry)
	fmt.Fprintf(h, "%v|%v|%v|%d|%d", opt.Args, opt.Transforms, opt.AutoSPM, opt.MaxTasks, opt.FeedbackRounds)
	if canon, err := adl.Encode(opt.Platform); err == nil {
		h.Write(canon)
	}
	wstr(opt.Policy.String())
	disabled := append([]string(nil), opt.Passes.Disable...)
	sort.Strings(disabled)
	for _, name := range disabled {
		wstr(name)
	}
	return string(h.Sum(nil))
}

// coldFingerprint compiles source from scratch with pass caching off —
// the reference result the incremental session must match bit for bit.
func coldFingerprint(ctx context.Context, source string, opt core.Options) (string, error) {
	opt.Passes.Cache = nil
	opt.Passes.NoCache = true
	opt.Passes.OnTiming = nil
	art, err := core.CompileSourceContext(ctx, source, opt)
	if err != nil {
		return "", err
	}
	return ResultFingerprint(art), nil
}

// Simulate executes the session's compiled program on the given inputs
// under its stored fault spec (a zero spec simulates fault-free; an
// enabled spec is re-seeded with seed so input sweeps also sweep fault
// patterns). The compiled artifacts are reused — no recompile — which
// is the point of keeping them in a session.
func (s *Session) Simulate(ctx context.Context, inputs [][]float64, seed int64) (*sim.Report, *core.Artifacts, error) {
	s.mu.Lock()
	art := s.art
	spec := s.faults
	s.mu.Unlock()
	var rep *sim.Report
	var err error
	if spec.Enabled() {
		runSpec := spec
		runSpec.Seed += seed
		rep, err = core.SimulateFaultyContext(ctx, art, inputs, runSpec)
	} else {
		rep, err = core.SimulateContext(ctx, art, inputs)
	}
	return rep, art, err
}

// Snapshot returns the session's current state for read-only reporting:
// the source text, the last artifacts (do not mutate), the fault spec,
// and the edit count.
func (s *Session) Snapshot() (source string, art *core.Artifacts, faults fault.Spec, edits int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.source, s.art, s.faults, s.edits
}

// Source returns the session's current canonical source text. A cold
// compile of exactly this text under the session's options reproduces
// the session's last result bit-identically.
func (s *Session) Source() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.source
}

// Fingerprint returns the content address of the last analysis result.
func (s *Session) Fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fp
}

// Options returns a copy of the session's current compile options (the
// platform is the session's private copy; treat it as read-only).
func (s *Session) Options() core.Options {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opt
}

// CacheStats reports the session-private pass cache's size counters.
func (s *Session) CacheStats() pass.CacheStats { return s.cache.Stats() }

// close marks the session evicted; subsequent Apply calls fail. An
// in-flight edit finishes normally (its client still gets the result;
// the session is simply no longer reachable).
func (s *Session) close() { s.closed.Store(true) }

// clonePlatform deep-copies an ADL platform so session edits never
// alias a built-in or a caller-owned description.
func clonePlatform(p *adl.Platform) *adl.Platform {
	c := *p
	c.Cores = append([]adl.Core(nil), p.Cores...)
	if p.Bus != nil {
		b := *p.Bus
		c.Bus = &b
	}
	if p.NoC != nil {
		n := *p.NoC
		c.NoC = &n
	}
	return &c
}

// ResultFingerprint content-addresses everything a compilation decided:
// options that shape the result, the schedule, the system-level
// analysis, the parallel program's phase bounds, and the transformed IR
// itself. Two runs with equal fingerprints are bit-identical for every
// value the service reports. This is the equality the differential
// session contract is stated in.
func ResultFingerprint(art *core.Artifacts) string {
	h := sha256.New()
	var b [8]byte
	w64 := func(v int64) { binary.LittleEndian.PutUint64(b[:], uint64(v)); h.Write(b[:]) }
	wstr := func(s string) { io.WriteString(h, s); h.Write([]byte{0}) }

	wstr(art.Options.Entry)
	if canon, err := adl.Encode(art.Options.Platform); err == nil {
		h.Write(canon)
	}
	wstr(art.Schedule.Policy.String())
	w64(int64(art.FeedbackRounds))
	w64(art.SequentialWCET)
	w64(art.Schedule.Makespan)
	w64(int64(art.Schedule.Cores))
	for _, pl := range art.Schedule.Placements {
		w64(int64(pl.Task))
		w64(int64(pl.Core))
		w64(pl.Start)
		w64(pl.Finish)
	}
	sys := art.System
	w64(sys.Makespan)
	w64(int64(sys.Iterations))
	for i := range sys.Start {
		w64(sys.Start[i])
		w64(sys.Finish[i])
		w64(sys.TaskBound[i])
		w64(sys.InterferencePerTask[i])
		w64(int64(sys.Contenders[i]))
	}
	w64(art.Parallel.PrologueCycles)
	w64(art.Parallel.EpilogueCycles)
	w64(art.Parallel.BoundMakespan())
	w64(int64(art.Parallel.Signals))
	w64(int64(len(art.Parallel.Buffers)))
	w64(int64(len(art.Parallel.Demoted)))
	wstr(art.IR.Dump())
	return hex.EncodeToString(h.Sum(nil))
}
