package session

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/fault"
	"argo/internal/pass"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/transform"
	"argo/internal/usecases"
)

func testOptions(t testing.TB, ucName, platName string) (*usecases.UseCase, core.Options) {
	t.Helper()
	uc := usecases.ByName(ucName)
	if uc == nil {
		t.Fatalf("unknown use case %q", ucName)
	}
	plat := adl.Builtin(platName)
	if plat == nil {
		t.Fatalf("unknown platform %q", platName)
	}
	return uc, core.DefaultOptions(uc.Entry, uc.Args, plat)
}

func newTestSession(t testing.TB, ucName, platName string) *Session {
	t.Helper()
	uc, opt := testOptions(t, ucName, platName)
	s, res, err := New(context.Background(), uc.Source, opt, fault.Spec{})
	if err != nil {
		t.Fatalf("create %s/%s: %v", ucName, platName, err)
	}
	if res.Fingerprint == "" || res.Artifacts == nil {
		t.Fatalf("creation result incomplete: %+v", res)
	}
	return s
}

// coldCheck independently cold-compiles the session's canonical source
// under its options and asserts bit-identity with the session's last
// result — the differential contract, checked from outside the package's
// own Verify machinery.
func coldCheck(t *testing.T, s *Session) {
	t.Helper()
	opt := s.Options()
	opt.Passes.Cache = nil
	opt.Passes.NoCache = true
	opt.Passes.OnTiming = nil
	art, err := core.CompileSourceContext(context.Background(), s.Source(), opt)
	if err != nil {
		t.Fatalf("cold compile of session source: %v", err)
	}
	if got, want := ResultFingerprint(art), s.Fingerprint(); got != want {
		t.Fatalf("cold compile fingerprint %s != session fingerprint %s", got[:16], want[:16])
	}
}

// TestEditOpsDifferential applies one edit of every kind with Verify on:
// each apply internally cold-compiles the edited source and fails unless
// the incremental result is bit-identical.
func TestEditOpsDifferential(t *testing.T) {
	s := newTestSession(t, "polka", "xentium4")
	ctx := context.Background()
	vopt := ApplyOptions{Verify: true}

	// replace-func: append a fresh-variable statement to a function.
	prog, err := scil.Parse(s.Source())
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs[1]
	text := scil.Format(&scil.Program{Funcs: []*scil.FuncDecl{f}})
	text = strings.Replace(text, "endfunction", "  wif0 = 1 + 2\nendfunction", 1)
	res, err := s.Apply(ctx, Edit{Op: OpReplaceFunc, Func: f.Name, Source: text}, vopt)
	if err != nil {
		t.Fatalf("replace-func: %v", err)
	}
	if !res.Verified {
		t.Fatal("replace-func: not verified")
	}

	res, err = s.Apply(ctx, Edit{Op: OpSetParam, Param: "shared.access_cycles", Value: 40}, vopt)
	if err != nil {
		t.Fatalf("set-param: %v", err)
	}
	if !res.Verified {
		t.Fatal("set-param: not verified")
	}
	// A platform edit leaves the program untouched: the pure program
	// passes (parse/lower/transform prefix) must restore from the
	// session cache instead of re-running.
	if res.PassesSkipped == 0 {
		t.Fatalf("set-param re-ran everything (skipped=0, reran=%d); session cache not effective", res.PassesReran)
	}
	if res.BoundDelta == 0 {
		t.Fatal("raising shared.access_cycles did not move the bound")
	}

	res, err = s.Apply(ctx, Edit{Op: OpToggleTransform, Transform: "fission", Disable: true}, vopt)
	if err != nil {
		t.Fatalf("toggle-transform: %v", err)
	}
	if !res.Verified {
		t.Fatal("toggle-transform: not verified")
	}

	res, err = s.Apply(ctx, Edit{Op: OpSetPolicy, Policy: sched.ListOblivious}, vopt)
	if err != nil {
		t.Fatalf("set-policy: %v", err)
	}
	if !res.Verified {
		t.Fatal("set-policy: not verified")
	}

	coldCheck(t, s)
}

// editGen produces deterministic pseudo-random valid edits against a
// session's evolving state.
type editGen struct {
	rng *rand.Rand
	n   int
}

func (g *editGen) next(t testing.TB, s *Session) Edit {
	t.Helper()
	hasBus := s.Options().Platform.Bus != nil
	for {
		switch g.rng.Intn(7) {
		case 0: // replace-func: append a fresh-variable statement
			prog, err := scil.Parse(s.Source())
			if err != nil {
				t.Fatalf("session source stopped parsing: %v", err)
			}
			f := prog.Funcs[g.rng.Intn(len(prog.Funcs))]
			text := scil.Format(&scil.Program{Funcs: []*scil.FuncDecl{f}})
			g.n++
			stmt := fmt.Sprintf("  wif%d = %d + %d\nendfunction", g.n, 1+g.rng.Intn(9), 1+g.rng.Intn(9))
			text = strings.Replace(text, "endfunction", stmt, 1)
			return Edit{Op: OpReplaceFunc, Func: f.Name, Source: text}
		case 1:
			return Edit{Op: OpSetParam, Param: "shared.access_cycles", Value: float64(5 + g.rng.Intn(56))}
		case 2:
			return Edit{Op: OpSetParam, Param: "core.op_cycles", Value: float64(1 + g.rng.Intn(6))}
		case 3:
			return Edit{Op: OpSetParam, Param: "dma.cycles_per_byte", Value: 0.5 + 3*g.rng.Float64()}
		case 4:
			names := transform.PassNames()
			return Edit{Op: OpToggleTransform, Transform: names[g.rng.Intn(len(names))], Disable: g.rng.Intn(2) == 0}
		case 5:
			pol := sched.ListContentionAware
			if g.rng.Intn(2) == 0 {
				pol = sched.ListOblivious
			}
			return Edit{Op: OpSetPolicy, Policy: pol}
		case 6:
			if !hasBus {
				continue
			}
			return Edit{Op: OpSetParam, Param: "bus.slot_cycles", Value: float64(4 + g.rng.Intn(37))}
		}
	}
}

// TestRandomizedEditSequences drives sessions through random edit
// sequences on several use-case × platform cells, verifying the
// differential contract at every step and independently at the end.
func TestRandomizedEditSequences(t *testing.T) {
	cells := []struct{ uc, plat string }{
		{"polka", "xentium4"},
		{"egpws", "xentium4-tdm"},
		{"weaa", "leon3-2x2"},
	}
	edits := 8
	if testing.Short() {
		cells = cells[:1]
		edits = 4
	}
	for i, cell := range cells {
		cell := cell
		seed := int64(100 + i)
		t.Run(cell.uc+"/"+cell.plat, func(t *testing.T) {
			s := newTestSession(t, cell.uc, cell.plat)
			g := &editGen{rng: rand.New(rand.NewSource(seed))}
			for k := 0; k < edits; k++ {
				e := g.next(t, s)
				before := s.Fingerprint()
				res, err := s.Apply(context.Background(), e, ApplyOptions{Verify: true})
				if err != nil {
					// A rejected edit must leave the session untouched.
					if got := s.Fingerprint(); got != before {
						t.Fatalf("failed edit %s changed the session: %s -> %s", e, before[:16], got[:16])
					}
					t.Logf("edit %d (%s) rejected (session unchanged): %v", k, e, err)
					continue
				}
				if !res.Verified {
					t.Fatalf("edit %d (%s): verify did not run", k, e)
				}
			}
			coldCheck(t, s)
		})
	}
}

// TestEditErrorsLeaveSessionUntouched exercises the rejection paths of
// every op: malformed edits fail fast and commit nothing.
func TestEditErrorsLeaveSessionUntouched(t *testing.T) {
	s := newTestSession(t, "polka", "xentium4")
	fp := s.Fingerprint()
	_, _, _, edits := s.Snapshot()
	ctx := context.Background()

	bad := []Edit{
		{Op: "frobnicate"},
		{Op: OpReplaceFunc}, // no source
		{Op: OpReplaceFunc, Func: "nope", Source: "function y = f(x)\n  y = x\nendfunction"}, // name mismatch
		{Op: OpReplaceFunc, Source: "function y = no_such_func(x)\n  y = x\nendfunction"},    // not in program
		{Op: OpReplaceFunc, Source: "not scil at all ("},
		{Op: OpSetParam}, // no param
		{Op: OpSetParam, Param: "nope.nope", Value: 1},              // unknown path
		{Op: OpSetParam, Param: "shared.access_cycles", Value: 1.5}, // fractional int
		{Op: OpSetParam, Param: "shared.access_cycles", Value: -4},  // invalid platform
		{Op: OpSetParam, Param: "noc.link_cycles", Value: 2},        // xentium4 has no NoC
		{Op: OpToggleTransform, Transform: "no-such-pass"},
		{Op: OpSetPolicy, Policy: sched.Policy(99)},
		{Op: OpSetFaults, Faults: fault.Spec{AccessJitter: -1}},
	}
	for _, e := range bad {
		if _, err := s.Apply(ctx, e, ApplyOptions{}); err == nil {
			t.Errorf("edit %s: expected error", e)
		}
	}
	if got := s.Fingerprint(); got != fp {
		t.Fatalf("rejected edits changed the session: %s -> %s", fp[:16], got[:16])
	}
	if _, _, _, after := s.Snapshot(); after != edits {
		t.Fatalf("rejected edits bumped the edit count: %d -> %d", edits, after)
	}
}

// TestSetFaultsSkipsReanalysis checks that a fault-spec edit commits
// without recompiling and only affects subsequent simulations.
func TestSetFaultsSkipsReanalysis(t *testing.T) {
	s := newTestSession(t, "polka", "xentium4")
	fp := s.Fingerprint()
	spec := fault.Spec{Seed: 7, AccessJitter: 0.5}
	res, err := s.Apply(context.Background(), Edit{Op: OpSetFaults, Faults: spec}, ApplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != fp {
		t.Fatal("set-faults changed the analysis fingerprint")
	}
	if res.PassesReran != 0 || res.PassesSkipped != 0 {
		t.Fatalf("set-faults ran passes: skipped=%d reran=%d", res.PassesSkipped, res.PassesReran)
	}
	if _, _, got, _ := s.Snapshot(); got != spec {
		t.Fatalf("fault spec not committed: %+v", got)
	}

	uc := usecases.ByName("polka")
	rep, art, err := s.Simulate(context.Background(), uc.Inputs(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if art == nil || rep == nil {
		t.Fatal("simulate returned nothing")
	}
	if rep.Faults.AccessFaults == 0 {
		t.Fatal("fault spec enabled but simulation injected nothing")
	}
	if rep.Makespan > art.Bound() {
		t.Fatalf("in-budget injection broke the bound: measured %d > bound %d", rep.Makespan, art.Bound())
	}
}

// TestManagerEvictionAndTTL covers the LRU bound, idle expiry (both
// lazy Get expiry and Sweep), and the closed-session error.
func TestManagerEvictionAndTTL(t *testing.T) {
	uc, opt := testOptions(t, "polka", "xentium4")
	m := NewManager(2, 80*time.Millisecond)
	ctx := context.Background()

	_, evictedBefore, expiredBefore, _ := Counters()

	var ids []string
	var first *Session
	for i := 0; i < 3; i++ {
		s, _, err := m.Create(ctx, uc.Source, opt, fault.Spec{}, ApplyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = s
		}
		ids = append(ids, s.ID)
	}
	if m.Len() != 2 {
		t.Fatalf("manager holds %d sessions, want 2", m.Len())
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("LRU session survived eviction")
	}
	if _, evicted, _, _ := Counters(); evicted != evictedBefore+1 {
		t.Fatalf("eviction counter moved %d, want 1", evicted-evictedBefore)
	}
	// The evicted session is closed: edits fail, in-flight reads are fine.
	if _, err := first.Apply(ctx, Edit{Op: OpSetParam, Param: "shared.access_cycles", Value: 30}, ApplyOptions{}); err == nil {
		t.Fatal("edit on evicted session succeeded")
	}

	// Idle past the TTL: Get expires lazily.
	time.Sleep(100 * time.Millisecond)
	if _, ok := m.Get(ids[1]); ok {
		t.Fatal("idle session survived its TTL")
	}
	// And Sweep expires the rest.
	if n := m.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d sessions, want 1", n)
	}
	if m.Len() != 0 {
		t.Fatalf("manager holds %d sessions after sweep, want 0", m.Len())
	}
	if _, _, expired, _ := Counters(); expired != expiredBefore+2 {
		t.Fatalf("expiry counter moved %d, want 2", expired-expiredBefore)
	}
	if _, err := m.Apply(ctx, ids[2], Edit{Op: OpSetPolicy, Policy: sched.ListOblivious}, ApplyOptions{}); err != ErrNotFound {
		t.Fatalf("Apply on expired session: got %v, want ErrNotFound", err)
	}
}

// TestConcurrentSessionsMatchSerialReplay runs N goroutines editing
// distinct sessions concurrently (under -race this is also the data-race
// check) and asserts every final state is bit-identical to a serial
// replay of the same edit script on a fresh session.
func TestConcurrentSessionsMatchSerialReplay(t *testing.T) {
	const n = 4
	edits := 5
	if testing.Short() {
		edits = 3
	}
	uc, opt := testOptions(t, "polka", "xentium4")
	m := NewManager(n, time.Minute)
	ctx := context.Background()

	run := func(s *Session, seed int64) (string, error) {
		g := &editGen{rng: rand.New(rand.NewSource(seed))}
		for k := 0; k < edits; k++ {
			e := g.next(t, s)
			if _, err := s.Apply(ctx, e, ApplyOptions{}); err != nil {
				// Rejected edits are deterministic too: the serial replay
				// sees the identical rejection, so just continue.
				continue
			}
		}
		return s.Fingerprint(), nil
	}

	// Concurrent pass.
	concurrent := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		s, _, err := m.Create(ctx, uc.Source, opt, fault.Spec{}, ApplyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			fp, err := run(s, int64(i))
			if err != nil {
				errs <- err
				return
			}
			concurrent[i] = fp
		}(i, s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Serial replay.
	for i := 0; i < n; i++ {
		s, _, err := New(ctx, uc.Source, opt, fault.Spec{})
		if err != nil {
			t.Fatal(err)
		}
		fp, err := run(s, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if fp != concurrent[i] {
			t.Fatalf("session %d: concurrent fingerprint %s != serial replay %s", i, concurrent[i][:16], fp[:16])
		}
	}
}

// TestSessionSoak is the make-check smoke of the whole subsystem: a
// small manager under edit churn across eviction and reuse, with the
// differential verifier sampled along the way.
func TestSessionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	uc, opt := testOptions(t, "polka", "xentium4")
	m := NewManager(3, time.Minute)
	ctx := context.Background()
	g := &editGen{rng: rand.New(rand.NewSource(42))}

	// Warm the process-wide pass cache with this exact configuration:
	// session compiles must then defer to the Global tier (read through
	// it instead of holding private copies), which the Deferrals counter
	// asserts below.
	prog, err := scil.Parse(uc.Source)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Compile(prog, opt); err != nil {
		t.Fatal(err)
	}

	var ids []string
	for i := 0; i < 5; i++ {
		s, _, err := m.Create(ctx, uc.Source, opt, fault.Spec{}, ApplyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	applied, rejected, gone := 0, 0, 0
	for k := 0; k < 40; k++ {
		id := ids[g.rng.Intn(len(ids))]
		s, ok := m.Get(id)
		if !ok {
			gone++ // evicted by a later creation; expected
			continue
		}
		e := g.next(t, s)
		aopt := ApplyOptions{Verify: k%10 == 0}
		if _, err := m.Apply(ctx, id, e, aopt); err != nil {
			if err == ErrNotFound {
				gone++
				continue
			}
			rejected++
			continue
		}
		applied++
	}
	if applied == 0 {
		t.Fatal("soak applied no edits")
	}
	t.Logf("soak: %d applied, %d rejected, %d on dead sessions; cache stats per live session:", applied, rejected, gone)
	var deferrals int64
	for _, in := range m.List() {
		s, ok := m.Get(in.ID)
		if !ok {
			continue
		}
		coldCheck(t, s)
		st := s.CacheStats()
		deferrals += st.Deferrals
		t.Logf("  %s: %d edits, %d cached snapshots, %d deferred to Global", in.ID, in.Edits, st.Entries, st.Deferrals)
	}
	if deferrals == 0 {
		t.Error("no session deferred to the warmed Global tier (double-store dedupe broken)")
	}
}

// TestDiffTasks pins the dirty-task diff semantics.
func TestDiffTasks(t *testing.T) {
	s := newTestSession(t, "polka", "xentium4")
	res, err := s.Apply(context.Background(), Edit{Op: OpSetParam, Param: "shared.access_cycles", Value: 55}, ApplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ChangedTasks) == 0 {
		t.Fatal("raising the shared access latency moved no task")
	}
	// A no-op edit (setting the parameter to its current value) changes
	// nothing: same fingerprint, no changed tasks, zero delta.
	res2, err := s.Apply(context.Background(), Edit{Op: OpSetParam, Param: "shared.access_cycles", Value: 55}, ApplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fingerprint != res.Fingerprint {
		t.Fatal("no-op edit changed the fingerprint")
	}
	if len(res2.ChangedTasks) != 0 || res2.BoundDelta != 0 {
		t.Fatalf("no-op edit reported changes: tasks=%v delta=%d", res2.ChangedTasks, res2.BoundDelta)
	}
}

// TestResultMemoRevisit exercises the session result memo: revisiting
// an already analyzed configuration restores the finished artifacts
// whole (every pass skipped, fingerprints identical), while the memo
// bound keeps long-evicted configurations honest (they re-analyze).
func TestResultMemoRevisit(t *testing.T) {
	s := newTestSession(t, "polka", "xentium4")
	ctx := context.Background()
	edit := func(v float64) *EditResult {
		res, err := s.Apply(ctx, Edit{Op: OpSetParam, Param: "shared.access_cycles", Value: v}, ApplyOptions{Verify: true})
		if err != nil {
			t.Fatalf("set-param %v: %v", v, err)
		}
		return res
	}
	first := edit(20)
	if first.PassesReran == 0 {
		t.Fatal("fresh configuration ran no passes")
	}
	edit(40)
	back := edit(20)
	if back.PassesReran != 0 {
		t.Fatalf("revisit re-ran %d passes, want 0 (memo restore)", back.PassesReran)
	}
	if back.PassesSkipped == 0 {
		t.Fatal("revisit reports no skipped passes")
	}
	if back.Fingerprint != first.Fingerprint {
		t.Fatalf("revisit fingerprint %s != original %s", back.Fingerprint[:16], first.Fingerprint[:16])
	}
	if !back.Verified {
		t.Fatal("revisit skipped the differential verify")
	}
	if len(back.ChangedTasks) == 0 {
		t.Fatal("40 -> 20 moved no task windows")
	}

	// Streaming observers still get one event per pass on a memo hit.
	events := 0
	res, err := s.Apply(ctx, Edit{Op: OpSetParam, Param: "shared.access_cycles", Value: 40},
		ApplyOptions{OnTiming: func(pass.Timing) { events++ }})
	if err != nil {
		t.Fatal(err)
	}
	if events != res.PassesSkipped+res.PassesReran {
		t.Fatalf("memo hit streamed %d events, result counts %d", events, res.PassesSkipped+res.PassesReran)
	}

	// Push the first configuration out of the bounded memo: it must
	// re-analyze (and still match differentially).
	for v := 0; v < sessionMemoEntries+2; v++ {
		edit(float64(50 + v))
	}
	if res := edit(20); res.PassesReran == 0 {
		t.Fatal("evicted configuration still restored from the memo")
	}
	coldCheck(t, s)
}
