package usecases

import (
	"testing"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/ir"
	"argo/internal/sim"
	"argo/internal/wcet"
)

func TestAllUseCasesParseCheckAndLower(t *testing.T) {
	for _, u := range All() {
		t.Run(u.Name, func(t *testing.T) {
			p, err := u.Program()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ir.Lower(p, u.Entry, u.Args)
			if err != nil {
				t.Fatal(err)
			}
			if prog.TotalDataBytes() == 0 {
				t.Fatal("no data")
			}
		})
	}
}

func TestUseCaseInputsDeterministic(t *testing.T) {
	for _, u := range All() {
		a := u.Inputs(42)
		b := u.Inputs(42)
		c := u.Inputs(43)
		if len(a) != len(u.Args) {
			t.Fatalf("%s: %d inputs for %d args", u.Name, len(a), len(u.Args))
		}
		differs := false
		for i := range a {
			if len(a[i]) != len(b[i]) {
				t.Fatalf("%s: nondeterministic input sizes", u.Name)
			}
			for k := range a[i] {
				if a[i][k] != b[i][k] {
					t.Fatalf("%s: nondeterministic inputs", u.Name)
				}
				if a[i][k] != c[i][k] {
					differs = true
				}
			}
		}
		if !differs {
			t.Fatalf("%s: seed has no effect", u.Name)
		}
	}
}

func TestUseCasesExecuteMeaningfully(t *testing.T) {
	for _, u := range All() {
		t.Run(u.Name, func(t *testing.T) {
			p, err := u.Program()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ir.Lower(p, u.Entry, u.Args)
			if err != nil {
				t.Fatal(err)
			}
			nonzero := false
			for seed := int64(0); seed < 5; seed++ {
				out, err := ir.NewExec(prog, nil).Run(u.Inputs(seed))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, res := range out {
					for _, v := range res {
						if v != 0 {
							nonzero = true
						}
					}
				}
			}
			if !nonzero {
				t.Fatal("all outputs were zero across seeds — generator or model broken")
			}
		})
	}
}

func TestEGPWSAlertsOnDescentIntoTerrain(t *testing.T) {
	u := EGPWS()
	p, err := u.Program()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(p, u.Entry, u.Args)
	if err != nil {
		t.Fatal(err)
	}
	in := u.Inputs(1)
	// Force a steep descent close to the ground: alert must trip.
	in[1][2] = 120 // low altitude
	in[1][5] = -12 // steep descent
	out, err := ir.NewExec(prog, nil).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	alert := out[2][0]
	if alert < 1 {
		t.Fatalf("no alert on steep low descent (worst=%g)", out[1][0])
	}
	// And a high cruise must be quieter than the dive.
	in2 := u.Inputs(1)
	in2[1][2] = 2000
	in2[1][5] = 0.5
	out2, err := ir.NewExec(prog, nil).Run(in2)
	if err != nil {
		t.Fatal(err)
	}
	if out2[1][0] >= out[1][0] {
		t.Fatalf("cruise risk %g should be below dive risk %g", out2[1][0], out[1][0])
	}
}

func TestWEAAPicksLowestScore(t *testing.T) {
	u := WEAA()
	p, err := u.Program()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(p, u.Entry, u.Args)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ir.NewExec(prog, nil).Run(u.Inputs(7))
	if err != nil {
		t.Fatal(err)
	}
	scores, best, minhaz := out[0], out[1][0], out[2][0]
	bi := int(best) - 1
	if bi < 0 || bi >= len(scores) {
		t.Fatalf("best index %g", best)
	}
	for _, s := range scores {
		if scores[bi] > s {
			t.Fatalf("best %g is not minimal: %v", scores[bi], scores)
		}
	}
	if minhaz != scores[bi] {
		t.Fatalf("minhaz %g != best score %g", minhaz, scores[bi])
	}
}

func TestPOLKADetectsStressedRegion(t *testing.T) {
	u := POLKA()
	p, err := u.Program()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(p, u.Entry, u.Args)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for seed := int64(0); seed < 6; seed++ {
		out, err := ir.NewExec(prog, nil).Run(u.Inputs(seed))
		if err != nil {
			t.Fatal(err)
		}
		peak := out[2][0]
		if peak <= 0 {
			t.Fatalf("seed %d: zero peak DoLP", seed)
		}
		if out[1][0] > 0 {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("stress never detected across seeds")
	}
}

func TestUseCasesCompileAndSimulateWithinBounds(t *testing.T) {
	platform := adl.XentiumPlatform(4)
	for _, u := range All() {
		t.Run(u.Name, func(t *testing.T) {
			p, err := u.Program()
			if err != nil {
				t.Fatal(err)
			}
			art, err := core.Compile(p, core.DefaultOptions(u.Entry, u.Args, platform))
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 3; seed++ {
				rep, err := sim.Run(art.Parallel, u.Inputs(seed))
				if err != nil {
					t.Fatal(err)
				}
				if err := sim.CheckAgainstBounds(art.Parallel, rep); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			if art.Bound() > u.Period {
				t.Logf("note: %s bound %d exceeds period %d on this platform", u.Name, art.Bound(), u.Period)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if ByName("egpws") == nil || ByName("weaa") == nil || ByName("polka") == nil {
		t.Fatal("lookup failed")
	}
	if ByName("nope") != nil {
		t.Fatal("unknown name")
	}
}

// TestPerTaskStructuralEqualsIPETOnUseCases cross-checks the two
// code-level analyses on every task of every compiled use case — the
// strongest end-to-end consistency check of the WCET machinery.
func TestPerTaskStructuralEqualsIPETOnUseCases(t *testing.T) {
	platform := adl.XentiumPlatform(2)
	for _, u := range All() {
		t.Run(u.Name, func(t *testing.T) {
			p, err := u.Program()
			if err != nil {
				t.Fatal(err)
			}
			art, err := core.Compile(p, core.DefaultOptions(u.Entry, u.Args, platform))
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range art.Graph.Nodes {
				c := art.Schedule.Placements[n.ID].Core
				m := wcet.ModelFor(platform, c)
				st := wcet.Structural(n.Stmts, m)
				ip, err := wcet.IPET(n.Stmts, m)
				if err != nil {
					t.Fatalf("task %d: IPET: %v", n.ID, err)
				}
				if st != ip {
					t.Fatalf("task %d (%s): structural %d != IPET %d", n.ID, n.Label, st, ip)
				}
			}
		})
	}
}
