// Package usecases provides the ARGO validation applications (paper §IV)
// as scil/Xcos models plus deterministic synthetic input generators:
//
//   - EGPWS: Enhanced Ground Proximity Warning System (aerospace) —
//     terrain smoothing, slope analysis, and a multi-bearing look-ahead
//     clearance sweep over a terrain database, producing per-sector risk
//     and alert levels.
//   - WEAA: Wake Encounter Avoidance and Advisory (aerospace) — induced
//     velocity prediction from a set of wake vortex segments, conflict
//     detection, and scoring of candidate evasion trajectories.
//   - POLKA: polarization-camera inspection (industrial image
//     processing) — 2x2 polarization demosaic, Stokes parameters,
//     degree/angle of linear polarization, and tile-level stress
//     detection for in-line glass inspection.
//
// The original project used proprietary terrain databases, flight data
// and camera frames on FPGA platforms; here the computational pipelines
// are reproduced faithfully in the scil subset and the inputs are
// replaced by deterministic synthetic generators with the same structure
// (see DESIGN.md, substitutions table).
package usecases

import (
	"fmt"
	"math"

	"argo/internal/ir"
	"argo/internal/scil"
)

// UseCase bundles one validation application.
type UseCase struct {
	Name        string
	Description string
	// Source is the scil model; Entry its top-level function.
	Source string
	Entry  string
	// Args are the entry argument specs (shapes fixed by Size).
	Args []ir.ArgSpec
	// Inputs generates a deterministic input set for a seed.
	Inputs func(seed int64) [][]float64
	// Period is the real-time activation period in cycles (the deadline
	// the system bound is compared against in reports).
	Period int64
}

// Program parses and checks the use case's source.
func (u *UseCase) Program() (*scil.Program, error) {
	p, err := scil.Parse(u.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", u.Name, err)
	}
	if errs := scil.Check(p, scil.CheckWCET); len(errs) > 0 {
		return nil, fmt.Errorf("%s: %v", u.Name, errs[0])
	}
	return p, nil
}

// All returns the three ARGO use cases at their default sizes.
func All() []*UseCase {
	return []*UseCase{EGPWS(), WEAA(), POLKA()}
}

// ByName returns a use case by (lower-case) name, or nil.
func ByName(name string) *UseCase {
	for _, u := range All() {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// lcg is a small deterministic generator for synthetic inputs.
type lcg struct{ s uint64 }

func newLCG(seed int64) *lcg { return &lcg{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (r *lcg) next() float64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11) / float64(1<<53)
}

// --- EGPWS -------------------------------------------------------------------

// egpwsGrid is the terrain database edge length.
const egpwsGrid = 48

// egpwsSrc: terrain conditioning + look-ahead clearance sweep.
const egpwsSrc = `
// Enhanced Ground Proximity Warning System: terrain-ahead alerting.
// terrain: G x G elevation grid (metres); state: 1 x 6 vector
// [x, y, altitude, vx, vy, vz] in grid units / metres.

function s = egpws_smooth(t)
  g = size(t, 1)
  s = zeros(g, g)
  for i = 1:g
    for j = 1:g
      acc = 0
      cnt = 0
      for di = -1:1
        for dj = -1:1
          ii = i + di
          jj = j + dj
          if ii >= 1 & ii <= g & jj >= 1 & jj <= g then
            acc = acc + t(ii, jj)
            cnt = cnt + 1
          end
        end
      end
      s(i, j) = acc / cnt
    end
  end
endfunction

function m = egpws_slope(t)
  g = size(t, 1)
  m = zeros(g, g)
  for i = 2:g-1
    for j = 2:g-1
      gx = (t(i, j + 1) - t(i, j - 1)) / 2
      gy = (t(i + 1, j) - t(i - 1, j)) / 2
      m(i, j) = sqrt(gx * gx + gy * gy)
    end
  end
endfunction

function e = egpws_sample(t, x, y)
  // Bilinear terrain sample with edge clamping.
  g = size(t, 1)
  ix = min(max(floor(x), 1), g - 1)
  iy = min(max(floor(y), 1), g - 1)
  fx = min(max(x - ix, 0), 1)
  fy = min(max(y - iy, 0), 1)
  e00 = t(iy, ix)
  e01 = t(iy, ix + 1)
  e10 = t(iy + 1, ix)
  e11 = t(iy + 1, ix + 1)
  e = e00 * (1 - fx) * (1 - fy) + e01 * fx * (1 - fy) + e10 * (1 - fx) * fy + e11 * fx * fy
endfunction

function risk = egpws_sweep(terrain, slope, state)
  // Sweep 8 bearings around the velocity vector, 20 look-ahead steps
  // each; risk per sector combines clearance deficit and terrain slope.
  // The bearing loop is data-parallel: each sector writes only its own
  // risk entry (the worst-sector reduction is a separate stage).
  nb = 8
  ns = 20
  risk = zeros(1, nb)
  x0 = state(1, 1)
  y0 = state(1, 2)
  alt = state(1, 3)
  vx = state(1, 4)
  vy = state(1, 5)
  vz = state(1, 6)
  speed = sqrt(vx * vx + vy * vy) + 0.001
  hdg = atan2(vy, vx)
  for b = 1:nb
    bearing = hdg + (b - (nb + 1) / 2) * 0.15
    cb = cos(bearing)
    sb = sin(bearing)
    sector = 0
    for s = 1:ns
      dist = s * 0.75
      px = x0 + cb * speed * dist
      py = y0 + sb * speed * dist
      palt = alt + vz * dist
      elev = egpws_sample(terrain, px, py)
      grad = egpws_sample(slope, px, py)
      clearance = palt - elev
      required = 60 + 8 * dist + 4 * grad
      deficit = required - clearance
      if deficit > 0 then
        contrib = deficit * (1 + 1 / (0.2 + dist * 0.05))
        if contrib > sector then
          sector = contrib
        end
      end
    end
    risk(1, b) = sector
  end
endfunction

function [risk, worst, alert] = egpws(terrain, state)
  sm = egpws_smooth(terrain)
  sl = egpws_slope(sm)
  risk = egpws_sweep(sm, sl, state)
  worst = maxval(risk)
  alert = 0
  if worst > 40 then
    alert = 1
  end
  if worst > 120 then
    alert = 2
  end
endfunction`

// EGPWS returns the ground-proximity warning use case.
func EGPWS() *UseCase {
	g := egpwsGrid
	return &UseCase{
		Name: "egpws",
		Description: "Enhanced Ground Proximity Warning System: terrain " +
			"conditioning, slope analysis, 8-sector look-ahead clearance sweep",
		Source: egpwsSrc,
		Entry:  "egpws",
		Args:   []ir.ArgSpec{ir.MatrixArg(g, g), ir.MatrixArg(1, 6)},
		Period: 3_000_000,
		Inputs: func(seed int64) [][]float64 {
			rng := newLCG(seed)
			terrain := make([]float64, g*g)
			// Deterministic ridge-and-valley terrain: sums of sines plus
			// noise, like a coarse DEM tile.
			p1 := rng.next() * 6
			p2 := rng.next() * 6
			amp := 120 + rng.next()*120
			for i := 0; i < g; i++ {
				for j := 0; j < g; j++ {
					x, y := float64(j)/float64(g), float64(i)/float64(g)
					h := amp * (0.5*math.Sin(4*x*math.Pi+p1)*math.Cos(3*y*math.Pi+p2) +
						0.3*math.Sin(9*(x+y)*math.Pi+p1))
					h += 250 + 60*rng.next()
					if h < 0 {
						h = 0
					}
					terrain[i*g+j] = h
				}
			}
			state := []float64{
				4 + rng.next()*float64(g-8), // x
				4 + rng.next()*float64(g-8), // y
				280 + rng.next()*320,        // altitude
				-1 + 2*rng.next(),           // vx
				-1 + 2*rng.next(),           // vy
				-6 + 4*rng.next(),           // vz (descending bias)
			}
			return [][]float64{terrain, state}
		},
	}
}

// --- WEAA --------------------------------------------------------------------

const (
	weaaVortices   = 6
	weaaCandidates = 8
	weaaSteps      = 16
)

const weaaSrc = `
// Wake Encounter Avoidance and Advisory: predict wake-vortex induced
// hazard along candidate evasion trajectories and pick the safest one.
// vortices: M x 5 rows [x, y, z, circulation, decay]; state: 1 x 6
// [x, y, z, vx, vy, vz]; cands: K x 3 rows [dheading, dclimb, speedf].

function h = weaa_hazard(vortices, px, py, pz)
  m = size(vortices, 1)
  h = 0
  for v = 1:m
    dx = px - vortices(v, 1)
    dy = py - vortices(v, 2)
    dz = pz - vortices(v, 3)
    r2 = dx * dx + dy * dy + dz * dz + 0.25
    r = sqrt(r2)
    circ = vortices(v, 4)
    decay = vortices(v, 5)
    induced = circ / (6.2831853 * r) * (1 - exp(-1.2566 * r2 / (decay + 0.05)))
    if induced > h then
      h = induced
    end
  end
endfunction

function [scores, best, minhaz] = weaa(vortices, state, cands)
  k = size(cands, 1)
  ns = 16
  scores = zeros(1, k)
  x0 = state(1, 1)
  y0 = state(1, 2)
  z0 = state(1, 3)
  vx = state(1, 4)
  vy = state(1, 5)
  vz = state(1, 6)
  hdg0 = atan2(vy, vx)
  spd0 = sqrt(vx * vx + vy * vy) + 0.001
  for c = 1:k
    dh = cands(c, 1)
    dc = cands(c, 2)
    sf = cands(c, 3)
    hdg = hdg0 + dh
    spd = spd0 * sf
    chdg = cos(hdg)
    shdg = sin(hdg)
    hazard = 0
    for s = 1:ns
      dt = s * 0.5
      px = x0 + chdg * spd * dt
      py = y0 + shdg * spd * dt
      pz = z0 + (vz + dc) * dt
      h = weaa_hazard(vortices, px, py, pz)
      if h > hazard then
        hazard = h
      end
    end
    // Deviation penalty keeps the advisory close to the nominal path.
    penalty = 2 * abs(dh) + 0.5 * abs(dc) + 3 * abs(1 - sf)
    scores(1, c) = hazard * 10 + penalty
  end
  best = 1
  minhaz = scores(1, 1)
  for c = 2:k
    if scores(1, c) < minhaz then
      minhaz = scores(1, c)
      best = c
    end
  end
endfunction`

// WEAA returns the wake-encounter avoidance use case.
func WEAA() *UseCase {
	return &UseCase{
		Name: "weaa",
		Description: "Wake Encounter Avoidance and Advisory: vortex-induced " +
			"hazard prediction, conflict detection, evasion trajectory scoring",
		Source: weaaSrc,
		Entry:  "weaa",
		Args: []ir.ArgSpec{
			ir.MatrixArg(weaaVortices, 5),
			ir.MatrixArg(1, 6),
			ir.MatrixArg(weaaCandidates, 3),
		},
		Period: 1_500_000,
		Inputs: func(seed int64) [][]float64 {
			rng := newLCG(seed)
			vort := make([]float64, weaaVortices*5)
			for v := 0; v < weaaVortices; v++ {
				vort[v*5+0] = 5 + rng.next()*40   // x
				vort[v*5+1] = -20 + rng.next()*40 // y
				vort[v*5+2] = -8 + rng.next()*16  // z
				vort[v*5+3] = 80 + rng.next()*220 // circulation
				vort[v*5+4] = 0.5 + rng.next()*4  // decay age
			}
			state := []float64{0, 0, 0, 6 + rng.next()*4, -2 + rng.next()*4, -0.5 + rng.next()}
			cands := make([]float64, weaaCandidates*3)
			for c := 0; c < weaaCandidates; c++ {
				cands[c*3+0] = -0.6 + 1.2*float64(c)/float64(weaaCandidates-1) // heading delta
				cands[c*3+1] = -2 + rng.next()*4                               // climb delta
				cands[c*3+2] = 0.85 + rng.next()*0.3                           // speed factor
			}
			return [][]float64{vort, state, cands}
		},
	}
}

// --- POLKA -------------------------------------------------------------------

// polkaSize is the mosaic frame edge (sub-images are half this).
const polkaSize = 96

const polkaSrc = `
// POLKA polarization-camera inspection: 2x2 polarization mosaic
// (0/45/90/135 degrees), Stokes parameters, degree of linear
// polarization, and tile-level residual-stress detection for in-line
// glass container inspection.

function [dolp, aop] = polka_polarimetry(frame)
  h = size(frame, 1) / 2
  w = size(frame, 2) / 2
  dolp = zeros(h, w)
  aop = zeros(h, w)
  for i = 1:h
    for j = 1:w
      i0 = frame(2 * i - 1, 2 * j - 1)
      i45 = frame(2 * i - 1, 2 * j)
      i90 = frame(2 * i, 2 * j - 1)
      i135 = frame(2 * i, 2 * j)
      s0 = (i0 + i45 + i90 + i135) / 2
      s1 = i0 - i90
      s2 = i45 - i135
      dolp(i, j) = sqrt(s1 * s1 + s2 * s2) / max(s0, 0.001)
      aop(i, j) = atan2(s2, s1) / 2
    end
  end
endfunction

function s = polka_smooth(u)
  h = size(u, 1)
  w = size(u, 2)
  s = zeros(h, w)
  for i = 1:h
    for j = 1:w
      acc = 0
      cnt = 0
      for di = -1:1
        for dj = -1:1
          ii = i + di
          jj = j + dj
          if ii >= 1 & ii <= h & jj >= 1 & jj <= w then
            acc = acc + u(ii, jj)
            cnt = cnt + 1
          end
        end
      end
      s(i, j) = acc / cnt
    end
  end
endfunction

function tiles = polka_tiles(dolp)
  // 4x4 pixel tiles: per-tile mean smoothed DoLP (data-parallel).
  h = size(dolp, 1)
  w = size(dolp, 2)
  th = h / 4
  tw = w / 4
  tiles = zeros(th, tw)
  for ti = 1:th
    for tj = 1:tw
      acc = 0
      for di = 1:4
        for dj = 1:4
          acc = acc + dolp((ti - 1) * 4 + di, (tj - 1) * 4 + dj)
        end
      end
      tiles(ti, tj) = acc / 16
    end
  end
endfunction

function [defect, peak] = polka_classify(tiles)
  // Reduction stage: defect count and peak tile stress.
  th = size(tiles, 1)
  tw = size(tiles, 2)
  defect = 0
  peak = 0
  for ti = 1:th
    for tj = 1:tw
      m = tiles(ti, tj)
      if m > peak then
        peak = m
      end
      if m > 0.18 then
        defect = defect + 1
      end
    end
  end
endfunction

function [tiles, defect, peak, aop] = polka(frame)
  [dolp, aop] = polka_polarimetry(frame)
  sm = polka_smooth(dolp)
  tiles = polka_tiles(sm)
  [defect, peak] = polka_classify(tiles)
endfunction`

// POLKA returns the industrial polarization-inspection use case.
func POLKA() *UseCase {
	n := polkaSize
	return &UseCase{
		Name: "polka",
		Description: "POLKA polarization camera: demosaic, Stokes/DoLP/AoP " +
			"polarimetry, tile-level residual-stress detection",
		Source: polkaSrc,
		Entry:  "polka",
		Args:   []ir.ArgSpec{ir.MatrixArg(n, n)},
		Period: 2_000_000,
		Inputs: func(seed int64) [][]float64 {
			rng := newLCG(seed)
			frame := make([]float64, n*n)
			// Synthetic glass container frame: unpolarized background
			// with an elliptical stressed region of elevated, oriented
			// polarization.
			cx := 0.3 + 0.4*rng.next()
			cy := 0.3 + 0.4*rng.next()
			strength := 0.04 + 0.55*rng.next() // some containers are clean, some defective
			angle := rng.next() * math.Pi
			for i := 0; i < n/2; i++ {
				for j := 0; j < n/2; j++ {
					x := float64(j) / float64(n/2)
					y := float64(i) / float64(n/2)
					d := math.Hypot((x-cx)*1.3, y-cy)
					pol := strength * math.Exp(-d*d*18)
					s0 := 120 + 30*rng.next()
					s1 := pol * s0 * math.Cos(2*angle)
					s2 := pol * s0 * math.Sin(2*angle)
					noise := func() float64 { return rng.next()*4 - 2 }
					// Inverse of the Stokes extraction above.
					frame[(2*i)*n+(2*j)] = (s0+s1)/2 + noise()     // I0
					frame[(2*i)*n+(2*j+1)] = (s0+s2)/2 + noise()   // I45
					frame[(2*i+1)*n+(2*j)] = (s0-s1)/2 + noise()   // I90
					frame[(2*i+1)*n+(2*j+1)] = (s0-s2)/2 + noise() // I135
				}
			}
			return [][]float64{frame}
		},
	}
}
