// Package experiments implements the quantitative evaluation suite of
// this reproduction (DESIGN.md §4): the paper itself is a project
// overview without numeric tables, so each experiment validates one of
// its stated objectives and produces the table a full ARGO evaluation
// would have reported. cmd/argobench and bench_test.go drive these;
// EXPERIMENTS.md records the outcomes.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"argo/internal/adl"
	"argo/internal/conc"
	"argo/internal/core"
	"argo/internal/noc"
	"argo/internal/report"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/sim"
	"argo/internal/syswcet"
	"argo/internal/transform"
	"argo/internal/usecases"
)

// Parallelism bounds how many (use case, configuration) cells the
// experiment tables evaluate concurrently (0: GOMAXPROCS, 1: serial).
// Table contents are deterministic at every setting: cells are
// precomputed, workers store results by cell index, and rows are emitted
// in index order. E5–E7 stay serial — E6 measures wall-clock scheduler
// runtimes, and E7's optimizer ladder already fans out internally.
var Parallelism int

// forEachCell fans n independent experiment cells out on the shared
// worker pool.
func forEachCell(n int, fn func(i int)) {
	// The context is never cancelled, so the error can only be nil.
	_ = conc.ForEach(context.Background(), Parallelism, n, fn)
}

// firstErr returns the lowest-index error, keeping failure reporting
// deterministic under parallel evaluation.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Result is one experiment's rendered output plus structured data used
// by tests and EXPERIMENTS.md.
type Result struct {
	ID     string
	Claim  string
	Tables []*report.Table
	Notes  []string
}

// String renders the result.
func (r *Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Claim)
	for _, t := range r.Tables {
		s += "\n" + t.String()
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

func compileUC(u *usecases.UseCase, platform *adl.Platform) (*core.Artifacts, error) {
	p, err := u.Program()
	if err != nil {
		return nil, err
	}
	return core.Compile(p, core.DefaultOptions(u.Entry, u.Args, platform))
}

// --- E1: WCET speedup from automatic parallelization ------------------------

// E1Row is one (use case, cores) observation.
type E1Row struct {
	UseCase string
	Cores   int
	Bound   int64
	Speedup float64
}

// E1 measures the guaranteed-performance (WCET-bound) speedup of the
// automatically parallelized programs over the single-core bound, per
// use case and core count.
func E1(coreCounts []int) (*Result, []E1Row, error) {
	if len(coreCounts) == 0 {
		coreCounts = []int{1, 2, 4, 8, 16}
	}
	res := &Result{
		ID:    "E1",
		Claim: "automatic WCET-aware parallelization improves guaranteed performance (paper §I, §II)",
	}
	tab := report.New("System WCET bound (cycles) and speedup vs 1 core, recore-xentium platform",
		"usecase", "cores", "bound", "speedup")
	type cell struct {
		u *usecases.UseCase
		k int
	}
	var cells []cell
	for _, u := range usecases.All() {
		for _, k := range coreCounts {
			cells = append(cells, cell{u, k})
		}
	}
	bounds := make([]int64, len(cells))
	errs := make([]error, len(cells))
	forEachCell(len(cells), func(i int) {
		art, err := compileUC(cells[i].u, adl.XentiumPlatform(cells[i].k))
		if err != nil {
			errs[i] = fmt.Errorf("E1 %s/%d: %v", cells[i].u.Name, cells[i].k, err)
			return
		}
		bounds[i] = art.Bound()
	})
	if err := firstErr(errs); err != nil {
		return nil, nil, err
	}
	var rows []E1Row
	var base int64
	for i, c := range cells {
		b := bounds[i]
		if c.k == coreCounts[0] {
			base = b
		}
		sp := float64(base) / float64(b)
		tab.Add(c.u.Name, c.k, b, sp)
		rows = append(rows, E1Row{UseCase: c.u.Name, Cores: c.k, Bound: b, Speedup: sp})
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"speedups are sub-linear and flatten as shared-memory interference grows with core count")
	return res, rows, nil
}

// --- E2: bound tightness -----------------------------------------------------

// E2Row is one use case's tightness observation.
type E2Row struct {
	UseCase   string
	Bound     int64
	WorstSim  int64
	Tightness float64 // Bound / WorstSim, >= 1 when sound
	// WorkTightness compares summed per-task bounds against the worst
	// summed actual task durations — the makespan ratio alone hides
	// slack because time-triggered release pins task start times.
	WorkTightness float64
	Runs          int
}

// E2 compares the static system bound against the worst simulated
// execution over a set of deterministic input variants.
func E2(runs int, cores int) (*Result, []E2Row, error) {
	if runs <= 0 {
		runs = 25
	}
	if cores <= 0 {
		cores = 4
	}
	res := &Result{
		ID:    "E2",
		Claim: "WCET bounds are sound and tight vs the platform simulator (paper §I, §III-C)",
	}
	tab := report.New(fmt.Sprintf("Bound vs worst of %d simulated runs, xentium%d", runs, cores),
		"usecase", "bound", "worst-sim", "tightness", "work-tightness", "sound")
	ucs := usecases.All()
	results := make([]E2Row, len(ucs))
	errs := make([]error, len(ucs))
	forEachCell(len(ucs), func(i int) {
		u := ucs[i]
		art, err := compileUC(u, adl.XentiumPlatform(cores))
		if err != nil {
			errs[i] = fmt.Errorf("E2 %s: %v", u.Name, err)
			return
		}
		var boundWork int64
		for _, tb := range art.System.TaskBound {
			boundWork += tb
		}
		var worst, worstWork int64
		for seed := 0; seed < runs; seed++ {
			rep, err := sim.Run(art.Parallel, u.Inputs(int64(seed)))
			if err != nil {
				errs[i] = fmt.Errorf("E2 %s seed %d: %v", u.Name, seed, err)
				return
			}
			if err := sim.CheckAgainstBounds(art.Parallel, rep); err != nil {
				errs[i] = fmt.Errorf("E2 %s seed %d UNSOUND: %v", u.Name, seed, err)
				return
			}
			if rep.Makespan > worst {
				worst = rep.Makespan
			}
			var work int64
			for t := range rep.TaskStart {
				work += rep.TaskFinish[t] - rep.TaskStart[t]
			}
			if work > worstWork {
				worstWork = work
			}
		}
		bound := art.Parallel.BoundMakespan()
		results[i] = E2Row{
			UseCase: u.Name, Bound: bound, WorstSim: worst,
			Tightness:     float64(bound) / float64(worst),
			WorkTightness: float64(boundWork) / float64(worstWork),
			Runs:          runs,
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, nil, err
	}
	var rows []E2Row
	for _, r := range results {
		tab.Add(r.UseCase, r.Bound, r.WorstSim, r.Tightness, r.WorkTightness, r.Bound >= r.WorstSim)
		rows = append(rows, r)
	}
	res.Tables = append(res.Tables, tab)
	return res, rows, nil
}

// --- E3: contention-aware scheduling ----------------------------------------

// E3Row is one (use case, platform, cores) comparison.
type E3Row struct {
	UseCase          string
	Platform         string
	Cores            int
	ObliviousBound   int64
	AwareBound       int64
	ImprovementRatio float64 // oblivious / aware
}

// E3 compares the contention-aware scheduler against the oblivious
// (average-case HEFT) baseline on the system-level bound.
func E3(coreCounts []int) (*Result, []E3Row, error) {
	if len(coreCounts) == 0 {
		coreCounts = []int{4, 8, 16}
	}
	res := &Result{
		ID:    "E3",
		Claim: "reducing shared-resource contenders avoids pessimistic WCET (paper §II, §III-C)",
	}
	tab := report.New("System bound: contention-oblivious vs contention-aware (WCET-guided) scheduling",
		"usecase", "platform", "cores", "oblivious", "aware", "oblivious/aware")
	// The standard bus (slot 8) has mild interference; the congested
	// variant (slot 48, e.g. a narrow memory port) makes contenders
	// expensive — where contention-aware mapping matters most.
	mkPlatforms := func(k int) []*adl.Platform {
		std := adl.XentiumPlatform(k)
		congested := adl.XentiumPlatform(k)
		congested.Name = fmt.Sprintf("xentium%d-congested", k)
		congested.Bus.SlotCycles = 48
		return []*adl.Platform{std, congested}
	}
	type cell struct {
		u        *usecases.UseCase
		prog     *scil.Program
		k        int
		platform *adl.Platform
	}
	var cells []cell
	for _, u := range usecases.All() {
		p, err := u.Program()
		if err != nil {
			return nil, nil, err
		}
		for _, k := range coreCounts {
			for _, platform := range mkPlatforms(k) {
				cells = append(cells, cell{u, p, k, platform})
			}
		}
	}
	results := make([]E3Row, len(cells))
	errs := make([]error, len(cells))
	forEachCell(len(cells), func(i int) {
		c := cells[i]
		optO := core.DefaultOptions(c.u.Entry, c.u.Args, c.platform)
		optO.Policy = sched.ListOblivious
		artO, err := core.Compile(c.prog, optO)
		if err != nil {
			errs[i] = err
			return
		}
		optA := core.DefaultOptions(c.u.Entry, c.u.Args, c.platform)
		artA, err := core.Compile(c.prog, optA)
		if err != nil {
			errs[i] = err
			return
		}
		r := E3Row{
			UseCase: c.u.Name, Platform: c.platform.Name, Cores: c.k,
			ObliviousBound: artO.Bound(), AwareBound: artA.Bound(),
		}
		r.ImprovementRatio = float64(r.ObliviousBound) / float64(r.AwareBound)
		results[i] = r
	})
	if err := firstErr(errs); err != nil {
		return nil, nil, err
	}
	var rows []E3Row
	for _, r := range results {
		tab.Add(r.UseCase, r.Platform, r.Cores, r.ObliviousBound, r.AwareBound, r.ImprovementRatio)
		rows = append(rows, r)
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"the aware policy is WCET-guided (it never selects a schedule with a worse analyzed bound)")
	return res, rows, nil
}

// --- E4: transformation ablation ----------------------------------------------

// E4Row is one (use case, config) bound.
type E4Row struct {
	UseCase string
	Config  string
	Bound   int64
}

// E4 ablates the predictability transformations: none, +fission, +SPM,
// +both.
func E4(cores int) (*Result, []E4Row, error) {
	if cores <= 0 {
		cores = 4
	}
	res := &Result{
		ID:    "E4",
		Claim: "predictability-oriented transformations reduce the WCET bound (paper §II-B, §III-C)",
	}
	tab := report.New(fmt.Sprintf("Transformation ablation, xentium%d", cores),
		"usecase", "config", "bound")
	configs := []struct {
		name    string
		tr      transform.Options
		autoSPM bool
	}{
		{"none", transform.Options{Fold: true}, false},
		{"+fission", transform.Options{Fold: true, Fission: true}, false},
		{"+spm", transform.Options{Fold: true}, true},
		{"+fission+spm", transform.Options{Fold: true, Fission: true}, true},
	}
	type cell struct {
		u    *usecases.UseCase
		prog *scil.Program
		cfg  int
	}
	var cells []cell
	for _, u := range usecases.All() {
		p, err := u.Program()
		if err != nil {
			return nil, nil, err
		}
		for c := range configs {
			cells = append(cells, cell{u, p, c})
		}
	}
	bounds := make([]int64, len(cells))
	errs := make([]error, len(cells))
	forEachCell(len(cells), func(i int) {
		c := cells[i]
		cfg := configs[c.cfg]
		opt := core.DefaultOptions(c.u.Entry, c.u.Args, adl.XentiumPlatform(cores))
		opt.Transforms = cfg.tr
		opt.AutoSPM = cfg.autoSPM
		art, err := core.Compile(c.prog, opt)
		if err != nil {
			errs[i] = fmt.Errorf("E4 %s/%s: %v", c.u.Name, cfg.name, err)
			return
		}
		bounds[i] = art.Bound()
	})
	if err := firstErr(errs); err != nil {
		return nil, nil, err
	}
	var rows []E4Row
	for i, c := range cells {
		tab.Add(c.u.Name, configs[c.cfg].name, bounds[i])
		rows = append(rows, E4Row{UseCase: c.u.Name, Config: configs[c.cfg].name, Bound: bounds[i]})
	}
	res.Tables = append(res.Tables, tab)
	return res, rows, nil
}

// --- E5: NoC latency guarantees ------------------------------------------------

// E5Row is one (load, flow) observation.
type E5Row struct {
	LoadFactor float64
	FlowID     int
	Bound      int64
	SimMax     int64
	Delivered  int
}

// E5 validates the NoC worst-case latency analysis against cycle-level
// simulation across rising load.
func E5(horizon int64) (*Result, []E5Row, error) {
	if horizon <= 0 {
		horizon = 30000
	}
	res := &Result{
		ID:    "E5",
		Claim: "the NoC provides the bandwidth/latency guarantees system-level WCET needs (paper §III-B, §IV-C)",
	}
	spec := adl.Leon3TilePlatform(4, 4).NoC
	baseFlows := []noc.Flow{
		{ID: 0, Src: noc.Coord{X: 0, Y: 0}, Dst: noc.Coord{X: 3, Y: 3}, PacketFlits: 4, PeriodCycles: 400},
		{ID: 1, Src: noc.Coord{X: 1, Y: 0}, Dst: noc.Coord{X: 3, Y: 3}, PacketFlits: 8, PeriodCycles: 520},
		{ID: 2, Src: noc.Coord{X: 2, Y: 0}, Dst: noc.Coord{X: 3, Y: 3}, PacketFlits: 2, PeriodCycles: 360},
		{ID: 3, Src: noc.Coord{X: 0, Y: 1}, Dst: noc.Coord{X: 3, Y: 1}, PacketFlits: 4, PeriodCycles: 440},
		{ID: 4, Src: noc.Coord{X: 0, Y: 2}, Dst: noc.Coord{X: 3, Y: 2}, PacketFlits: 8, PeriodCycles: 620},
	}
	tab := report.New("Analytic worst-case vs simulated max packet latency (cycles), 4x4 WRR mesh",
		"load", "flow", "bound", "sim-max", "delivered", "sound")
	var rows []E5Row
	for _, load := range []float64{0.25, 0.5, 1.0} {
		flows := make([]noc.Flow, len(baseFlows))
		copy(flows, baseFlows)
		for i := range flows {
			flows[i].PeriodCycles = int(float64(flows[i].PeriodCycles) / load)
		}
		cfg := &noc.Config{Spec: *spec, Flows: flows}
		simres, err := noc.Simulate(cfg, horizon)
		if err != nil {
			return nil, nil, err
		}
		for _, f := range flows {
			wc, err := cfg.WorstCaseLatency(f.ID)
			if err != nil {
				return nil, nil, err
			}
			r := E5Row{
				LoadFactor: load, FlowID: f.ID, Bound: wc,
				SimMax: simres.MaxLatency[f.ID], Delivered: simres.Delivered[f.ID],
			}
			tab.Add(fmt.Sprintf("%.2f", load), f.ID, wc, r.SimMax, r.Delivered, wc >= r.SimMax)
			rows = append(rows, r)
		}
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes, "load scales injection rate; bounds hold at every schedulable load level")
	return res, rows, nil
}

// --- E6: exact vs heuristic mapping ---------------------------------------------

// E6Row is one problem-size observation (averaged over instances).
type E6Row struct {
	Tasks         int
	Cores         int
	MeanGap       float64 // heuristic makespan / optimal makespan
	MaxGap        float64
	HeuristicUS   int64 // mean microseconds
	BranchBoundUS int64
}

// E6 quantifies the optimality gap of the list-scheduling heuristic vs
// the branch-and-bound mapper on random layered task graphs, and their
// runtimes.
func E6(instances int) (*Result, []E6Row, error) {
	if instances <= 0 {
		instances = 10
	}
	res := &Result{
		ID:    "E6",
		Claim: "NP-hard mapping: exact techniques + heuristics combination (paper §III-C)",
	}
	tab := report.New("Heuristic vs exact (branch-and-bound) mapping on random task graphs",
		"tasks", "cores", "mean-gap", "max-gap", "heur-us", "bb-us")
	var rows []E6Row
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{6, 8, 10, 12} {
		for _, k := range []int{2, 3} {
			var sumGap, maxGap float64
			var heurDur, bbDur time.Duration
			for inst := 0; inst < instances; inst++ {
				in := randomDAG(rng, n, k)
				t0 := time.Now()
				h, err := sched.Run(in, sched.ListContentionAware)
				if err != nil {
					return nil, nil, err
				}
				heurDur += time.Since(t0)
				t1 := time.Now()
				b, err := sched.Run(in, sched.BranchBound)
				if err != nil {
					return nil, nil, err
				}
				bbDur += time.Since(t1)
				gap := float64(h.Makespan) / float64(b.Makespan)
				sumGap += gap
				if gap > maxGap {
					maxGap = gap
				}
			}
			r := E6Row{
				Tasks: n, Cores: k,
				MeanGap:       sumGap / float64(instances),
				MaxGap:        maxGap,
				HeuristicUS:   heurDur.Microseconds() / int64(instances),
				BranchBoundUS: bbDur.Microseconds() / int64(instances),
			}
			tab.Add(n, k, r.MeanGap, r.MaxGap, r.HeuristicUS, r.BranchBoundUS)
			rows = append(rows, r)
		}
	}
	res.Tables = append(res.Tables, tab)
	return res, rows, nil
}

// randomDAG builds a random layered scheduling problem.
func randomDAG(rng *rand.Rand, n, cores int) *sched.Input {
	platform := adl.XentiumPlatform(cores)
	in := &sched.Input{Platform: platform}
	for i := 0; i < n; i++ {
		t := sched.Task{ID: i, WCET: make([]int64, cores), SharedAccesses: int64(rng.Intn(200))}
		w := int64(20 + rng.Intn(300))
		for c := range t.WCET {
			t.WCET[c] = w
		}
		in.Tasks = append(in.Tasks, t)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				in.Deps = append(in.Deps, sched.Dep{From: i, To: j, VolumeBytes: rng.Intn(512)})
			}
		}
	}
	return in
}

// --- E7: iterative cross-layer optimization --------------------------------------

// E7Row is one iteration of the optimizer for one use case.
type E7Row struct {
	UseCase   string
	Iteration int
	Config    string
	Bound     int64
	BestSoFar int64
}

// E7 records the iterative optimization trajectory per use case: the
// best-so-far bound must be monotone non-increasing.
func E7(cores int) (*Result, []E7Row, error) {
	if cores <= 0 {
		cores = 4
	}
	res := &Result{
		ID:    "E7",
		Claim: "iterative WCET feedback resolves the phase-ordering problem (paper §II-E)",
	}
	tab := report.New(fmt.Sprintf("Iterative cross-layer optimization, xentium%d", cores),
		"usecase", "iter", "config", "bound", "best-so-far")
	var rows []E7Row
	for _, u := range usecases.All() {
		p, err := u.Program()
		if err != nil {
			return nil, nil, err
		}
		opt := core.DefaultOptions(u.Entry, u.Args, adl.XentiumPlatform(cores))
		ores, err := core.Optimize(p, opt, nil, 0)
		if err != nil {
			return nil, nil, err
		}
		for _, rec := range ores.History {
			bound := rec.Bound
			if rec.Err != nil {
				bound = -1
			}
			tab.Add(u.Name, rec.Iteration, rec.Candidate.Name, bound, rec.BestSoFar)
			rows = append(rows, E7Row{
				UseCase: u.Name, Iteration: rec.Iteration,
				Config: rec.Candidate.Name, Bound: bound, BestSoFar: rec.BestSoFar,
			})
		}
	}
	res.Tables = append(res.Tables, tab)
	return res, rows, nil
}

// --- E8: arbitration policy comparison (bonus ablation) ---------------------------

// E8Row compares bus arbitration policies.
type E8Row struct {
	UseCase  string
	RRBound  int64
	TDMBound int64
}

// E8 contrasts round-robin and TDM arbitration (the architecture-design
// guideline trade-off of paper §III-B): TDM is fully composable but
// pays for every access; RR is load-dependent but tighter here.
func E8(cores int) (*Result, []E8Row, error) {
	if cores <= 0 {
		cores = 4
	}
	res := &Result{
		ID:    "E8",
		Claim: "predictable-interconnect design choices change the bound (paper §III-B)",
	}
	tab := report.New(fmt.Sprintf("Round-robin vs TDM shared bus, %d cores", cores),
		"usecase", "rr-bound", "tdm-bound", "tdm/rr")
	ucs := usecases.All()
	results := make([]E8Row, len(ucs))
	errs := make([]error, len(ucs))
	forEachCell(len(ucs), func(i int) {
		u := ucs[i]
		artRR, err := compileUC(u, adl.XentiumPlatform(cores))
		if err != nil {
			errs[i] = err
			return
		}
		artTDM, err := compileUC(u, adl.XentiumTDMPlatform(cores))
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = E8Row{UseCase: u.Name, RRBound: artRR.Bound(), TDMBound: artTDM.Bound()}
	})
	if err := firstErr(errs); err != nil {
		return nil, nil, err
	}
	var rows []E8Row
	for _, r := range results {
		tab.Add(r.UseCase, r.RRBound, r.TDMBound, float64(r.TDMBound)/float64(r.RRBound))
		rows = append(rows, r)
	}
	res.Tables = append(res.Tables, tab)
	return res, rows, nil
}

// Fixpoint re-exported helper so argobench can show syswcet convergence.
var _ = syswcet.Analyze

// All runs every experiment at default sizes.
func All() ([]*Result, error) {
	var out []*Result
	r1, _, err := E1(nil)
	if err != nil {
		return nil, err
	}
	out = append(out, r1)
	r2, _, err := E2(0, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, r2)
	r3, _, err := E3(nil)
	if err != nil {
		return nil, err
	}
	out = append(out, r3)
	r4, _, err := E4(0)
	if err != nil {
		return nil, err
	}
	out = append(out, r4)
	r5, _, err := E5(0)
	if err != nil {
		return nil, err
	}
	out = append(out, r5)
	r6, _, err := E6(0)
	if err != nil {
		return nil, err
	}
	out = append(out, r6)
	r7, _, err := E7(0)
	if err != nil {
		return nil, err
	}
	out = append(out, r7)
	r8, _, err := E8(0)
	if err != nil {
		return nil, err
	}
	out = append(out, r8)
	r9, _, err := E9(nil)
	if err != nil {
		return nil, err
	}
	out = append(out, r9)
	r10, _, _, _, err := E10(nil)
	if err != nil {
		return nil, err
	}
	out = append(out, r10)
	r11, _, _, err := E11(nil)
	if err != nil {
		return nil, err
	}
	out = append(out, r11)
	return out, nil
}
