package experiments

import (
	"fmt"

	"argo/internal/adl"
	"argo/internal/ir"
	"argo/internal/report"
	"argo/internal/scil"
	"argo/internal/usecases"
	"argo/internal/wcet"
)

// e11Kernels are synthetic regions isolating the two program shapes
// where value-aware analysis tightens the bound: a value-determined
// dead branch (the expensive path is provably unreachable) and a
// @bound-annotated while loop whose condition goes false long before
// the annotation. The live-branch control pins the other side: without
// either shape, the exact engine agrees with IPET to the cycle.
var e11Kernels = []struct {
	name, src string
	// tighter states whether the exact bound must be strictly below
	// IPET's (asserted, like the soundness direction).
	tighter bool
}{
	{"dead-branch", `function r = f(a)
  x = 0
  if x > 0 then
    r = 0
    for i = 1:50
      r = r + a * i
    end
  else
    r = 1
  end
endfunction`, true},
	{"early-exit-while", `function r = f(a)
  r = 16
  //@bound 1000
  while r > 1
    r = r / 2
  end
endfunction`, true},
	{"live-branch (control)", `function r = f(a)
  x = 1
  if x > 0 then
    r = 0
    for i = 1:50
      r = r + a * i
    end
  else
    r = 1
  end
endfunction`, false},
}

// E11Row is one (platform, use case) tightness-gap observation: summed
// per-task code-level bounds under the IPET and exact engines.
type E11Row struct {
	Platform string
	UseCase  string
	Tasks    int
	// IPETSum / MCSum are the per-task code-level bounds on the placed
	// core, summed over the task graph.
	IPETSum int64
	MCSum   int64
	// GapPct is the tightening the exact engine achieves, in percent of
	// the IPET sum (0 when both agree everywhere).
	GapPct float64
	// TighterTasks counts tasks where the exact bound is strictly below
	// IPET's.
	TighterTasks int
}

// E11KernelRow is one synthetic-kernel observation.
type E11KernelRow struct {
	Kernel string
	IPET   int64
	MC     int64
	GapPct float64
}

// E11 quantifies the tightness gap between the structural/IPET engine
// and the exact slicing+model-checking engine (internal/wcet/mc):
// table 1 sweeps every built-in platform and use case (the shipped
// applications have no value-determined dead paths at task granularity,
// so the engines agree — itself a result: IPET is already exact there);
// table 2 isolates the program shapes where the exact engine provably
// tightens. Soundness of the comparison is asserted, not tabulated: any
// region where the exact bound exceeds IPET's fails the experiment —
// the same invariant `-wcet-engine=both` enforces per compilation.
func E11(platformNames []string) (*Result, []E11Row, []E11KernelRow, error) {
	if len(platformNames) == 0 {
		platformNames = adl.BuiltinNames()
	}
	res := &Result{
		ID:    "E11",
		Claim: "value-aware exact WCET analysis tightens per-task bounds without weakening soundness (paper §II-D)",
	}
	mcEng, ok := wcet.EngineByName("mc")
	if !ok {
		return nil, nil, nil, fmt.Errorf("E11: mc engine not registered")
	}
	type cell struct {
		platform string
		u        *usecases.UseCase
	}
	var cells []cell
	for _, name := range platformNames {
		for _, u := range usecases.All() {
			cells = append(cells, cell{name, u})
		}
	}
	rows := make([]E11Row, len(cells))
	errs := make([]error, len(cells))
	forEachCell(len(cells), func(i int) {
		c := cells[i]
		platform := adl.Builtin(c.platform)
		if platform == nil {
			errs[i] = fmt.Errorf("E11: unknown platform %q", c.platform)
			return
		}
		art, err := compileUC(c.u, platform)
		if err != nil {
			errs[i] = fmt.Errorf("E11 %s/%s: %v", c.platform, c.u.Name, err)
			return
		}
		r := E11Row{Platform: c.platform, UseCase: c.u.Name, Tasks: len(art.Graph.Nodes)}
		for _, n := range art.Graph.Nodes {
			model := wcet.ModelFor(platform, art.Schedule.Placements[n.ID].Core)
			ipet := wcet.Analyze(n.Stmts, model)
			exact := wcet.AnalyzeMemo(mcEng, n.Stmts, model)
			if exact.Cycles > ipet.Cycles {
				errs[i] = fmt.Errorf("E11 %s/%s task %q UNSOUND: exact %d > ipet %d",
					c.platform, c.u.Name, n.Label, exact.Cycles, ipet.Cycles)
				return
			}
			r.IPETSum += ipet.Cycles
			r.MCSum += exact.Cycles
			if exact.Cycles < ipet.Cycles {
				r.TighterTasks++
			}
		}
		if r.IPETSum > 0 {
			r.GapPct = 100 * float64(r.IPETSum-r.MCSum) / float64(r.IPETSum)
		}
		rows[i] = r
	})
	if err := firstErr(errs); err != nil {
		return nil, nil, nil, err
	}
	tab := report.New("Per-task code-level bounds: IPET vs exact engine (summed over tasks, placed cores)",
		"platform", "usecase", "tasks", "ipet-sum", "mc-sum", "gap%", "tighter-tasks")
	for _, r := range rows {
		tab.Add(r.Platform, r.UseCase, r.Tasks, r.IPETSum, r.MCSum,
			fmt.Sprintf("%.2f", r.GapPct), r.TighterTasks)
	}
	res.Tables = append(res.Tables, tab)

	// --- Table 2: synthetic kernels isolating the tightening shapes. ---
	m := wcet.ModelFor(adl.Builtin("xentium4"), 0)
	ktab := report.New("Synthetic tightness kernels: IPET vs exact engine (xentium4 core model)",
		"kernel", "ipet", "mc", "gap%", "strictly-tighter")
	var krows []E11KernelRow
	for _, k := range e11Kernels {
		p, err := scil.Parse(k.src)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("E11 kernel %s: %v", k.name, err)
		}
		prog, err := ir.Lower(p, "f", []ir.ArgSpec{ir.ScalarArg()})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("E11 kernel %s: %v", k.name, err)
		}
		ipet := wcet.Analyze(prog.Entry.Body, m)
		exact := mcEng.Analyze(prog.Entry.Body, m)
		if exact.Cycles > ipet.Cycles {
			return nil, nil, nil, fmt.Errorf("E11 kernel %s UNSOUND: exact %d > ipet %d", k.name, exact.Cycles, ipet.Cycles)
		}
		if k.tighter && exact.Cycles >= ipet.Cycles {
			return nil, nil, nil, fmt.Errorf("E11 kernel %s: exact %d not strictly below ipet %d", k.name, exact.Cycles, ipet.Cycles)
		}
		if !k.tighter && exact.Cycles != ipet.Cycles {
			return nil, nil, nil, fmt.Errorf("E11 kernel %s: control must agree exactly, got exact %d ipet %d", k.name, exact.Cycles, ipet.Cycles)
		}
		kr := E11KernelRow{
			Kernel: k.name, IPET: ipet.Cycles, MC: exact.Cycles,
			GapPct: 100 * float64(ipet.Cycles-exact.Cycles) / float64(ipet.Cycles),
		}
		ktab.Add(kr.Kernel, kr.IPET, kr.MC, fmt.Sprintf("%.2f", kr.GapPct), k.tighter)
		krows = append(krows, kr)
	}
	res.Tables = append(res.Tables, ktab)
	res.Notes = append(res.Notes,
		"exact > IPET anywhere fails the experiment — the cross-check of -wcet-engine=both over the full matrix",
		"the shipped use cases have no value-determined dead paths at task granularity, so table 1 gaps are 0 — IPET is already exact there; table 2 shows the shapes where value awareness pays")
	return res, rows, krows, nil
}
