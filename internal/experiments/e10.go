package experiments

import (
	"context"
	"fmt"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/fault"
	"argo/internal/noc"
	"argo/internal/report"
	"argo/internal/sim"
	"argo/internal/usecases"
)

// E10Row is one (platform, use case, level, seed) fault-injection cell.
type E10Row struct {
	Platform       string
	UseCase        string
	Level          float64
	Seed           int64
	Bound          int64
	Makespan       int64
	InjectedCycles int64
	Violations     int
}

// E10NegRow is one over-bound (negative-mode) injection observation.
type E10NegRow struct {
	UseCase    string
	Level      float64
	Makespan   int64
	Bound      int64
	Violations []fault.Violation
	Flagged    bool
}

// E10NoCRow is one (stall level, seed, flow) NoC stress observation.
type E10NoCRow struct {
	Level  float64
	Seed   int64
	FlowID int
	Bound  int64
	SimMax int64
	Stalls int64
}

// e10Levels are the bound-preserving interference levels swept by E10:
// each scales every injection site's draw within its analytic budget.
var e10Levels = []float64{0.25, 0.75, 1.0}

// e10Seeds are the fault seeds per cell; determinism per seed is covered
// by the sim differential tests, so two independent patterns suffice.
var e10Seeds = []int64{1, 2}

// E10 stress-tests the central soundness claim under adversarial — but
// modeled — platform interference: deterministic fault injection sweeps
// access jitter, execution inflation and NoC link stalls up to the
// analytic worst case across all platforms x use cases, asserting the
// observed makespan never exceeds the static bound; a negative mode
// injects beyond the per-task bounds and must be flagged with a
// structured violation report, not silently absorbed.
func E10(platformNames []string) (*Result, []E10Row, []E10NegRow, []E10NoCRow, error) {
	if len(platformNames) == 0 {
		platformNames = []string{"xentium2", "xentium4", "xentium4-tdm", "xentium8", "leon3-2x2", "leon3-4x4"}
	}
	res := &Result{
		ID:    "E10",
		Claim: "static bounds stay sound under any injected interference <= the modeled worst case; over-bound injection is detected (paper §I, §III-C)",
	}

	// --- Table 1: bound-preserving sweep over platforms x use cases. ---
	type cell struct {
		platform string
		u        *usecases.UseCase
		level    float64
		seed     int64
	}
	var cells []cell
	for _, name := range platformNames {
		for _, u := range usecases.All() {
			for _, lv := range e10Levels {
				for _, seed := range e10Seeds {
					cells = append(cells, cell{name, u, lv, seed})
				}
			}
		}
	}
	rows := make([]E10Row, len(cells))
	errs := make([]error, len(cells))
	// Compiling is the expensive part and is shared across the level x
	// seed sweep of a (platform, use case) pair, so compile once per pair
	// up front (also fanned out) and only simulate per cell.
	type pairKey struct {
		platform, usecase string
	}
	arts := map[pairKey]*core.Artifacts{}
	var pairs []cell
	for _, name := range platformNames {
		for _, u := range usecases.All() {
			pairs = append(pairs, cell{platform: name, u: u})
		}
	}
	partErrs := make([]error, len(pairs))
	partArts := make([]*core.Artifacts, len(pairs))
	forEachCell(len(pairs), func(i int) {
		p := pairs[i]
		platform := adl.Builtin(p.platform)
		if platform == nil {
			partErrs[i] = fmt.Errorf("E10: unknown platform %q", p.platform)
			return
		}
		art, err := compileUC(p.u, platform)
		if err != nil {
			partErrs[i] = fmt.Errorf("E10 %s/%s: %v", p.platform, p.u.Name, err)
			return
		}
		partArts[i] = art
	})
	if err := firstErr(partErrs); err != nil {
		return nil, nil, nil, nil, err
	}
	for i, p := range pairs {
		arts[pairKey{p.platform, p.u.Name}] = partArts[i]
	}
	forEachCell(len(cells), func(i int) {
		c := cells[i]
		art := arts[pairKey{c.platform, c.u.Name}]
		spec := fault.Spec{Seed: c.seed, AccessJitter: c.level, ExecInflation: c.level, NoCStall: c.level}
		rep, err := sim.RunFaulty(context.Background(), art.Parallel, c.u.Inputs(c.seed), spec)
		if err != nil {
			errs[i] = fmt.Errorf("E10 %s/%s level %.2f seed %d: %v", c.platform, c.u.Name, c.level, c.seed, err)
			return
		}
		viol := sim.Violations(art.Parallel, rep)
		if len(viol) > 0 {
			errs[i] = fmt.Errorf("E10 %s/%s level %.2f seed %d UNSOUND under in-budget injection: %v",
				c.platform, c.u.Name, c.level, c.seed, viol[0])
			return
		}
		rows[i] = E10Row{
			Platform: c.platform, UseCase: c.u.Name, Level: c.level, Seed: c.seed,
			Bound: art.Parallel.BoundMakespan(), Makespan: rep.Makespan,
			InjectedCycles: rep.Faults.Total(), Violations: len(viol),
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, nil, nil, nil, err
	}
	tab := report.New("Makespan under injected interference <= modeled worst case (worst over seeds per level)",
		"platform", "usecase", "bound", "ms@0.25", "ms@0.75", "ms@1.00", "max-inj-cycles", "sound")
	type agg struct {
		bound    int64
		byLevel  map[float64]int64
		inj      int64
		unsound  bool
		platform string
		usecase  string
	}
	var order []pairKey
	aggs := map[pairKey]*agg{}
	for _, r := range rows {
		k := pairKey{r.Platform, r.UseCase}
		a := aggs[k]
		if a == nil {
			a = &agg{bound: r.Bound, byLevel: map[float64]int64{}, platform: r.Platform, usecase: r.UseCase}
			aggs[k] = a
			order = append(order, k)
		}
		if r.Makespan > a.byLevel[r.Level] {
			a.byLevel[r.Level] = r.Makespan
		}
		if r.InjectedCycles > a.inj {
			a.inj = r.InjectedCycles
		}
		if r.Violations > 0 {
			a.unsound = true
		}
	}
	for _, k := range order {
		a := aggs[k]
		tab.Add(a.platform, a.usecase, a.bound,
			a.byLevel[0.25], a.byLevel[0.75], a.byLevel[1.0], a.inj, !a.unsound)
	}
	res.Tables = append(res.Tables, tab)

	// --- Table 2: over-bound injection must be flagged, not absorbed. ---
	negTab := report.New("Negative mode: exec inflation beyond the per-task bound (xentium4)",
		"usecase", "level", "bound", "makespan", "violations", "first", "flagged")
	var negRows []E10NegRow
	for _, u := range usecases.All() {
		art := arts[pairKey{"xentium4", u.Name}]
		if art == nil {
			platform := adl.Builtin("xentium4")
			a, err := compileUC(u, platform)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			art = a
		}
		spec := fault.Spec{Seed: 1, ExecInflation: 1.25}
		rep, err := sim.RunFaulty(context.Background(), art.Parallel, u.Inputs(1), spec)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("E10 negative %s: %v", u.Name, err)
		}
		viol := sim.Violations(art.Parallel, rep)
		r := E10NegRow{
			UseCase: u.Name, Level: spec.ExecInflation,
			Makespan: rep.Makespan, Bound: art.Parallel.BoundMakespan(),
			Violations: viol, Flagged: len(viol) > 0,
		}
		if !r.Flagged {
			return nil, nil, nil, nil, fmt.Errorf("E10 negative %s: over-bound injection silently absorbed", u.Name)
		}
		negTab.Add(u.Name, r.Level, r.Bound, r.Makespan, len(viol), viol[0].Kind, r.Flagged)
		negRows = append(negRows, r)
	}
	res.Tables = append(res.Tables, negTab)

	// --- Table 3: NoC link stalls within the per-hop WRR allowance. ---
	nocTab := report.New("NoC stress: analytic bound vs simulated max latency under injected link stalls, 4x4 WRR mesh",
		"stall", "seed", "flow", "bound", "sim-max", "stalls", "sound")
	nspec := adl.Leon3TilePlatform(4, 4).NoC
	flows := []noc.Flow{
		{ID: 0, Src: noc.Coord{X: 0, Y: 0}, Dst: noc.Coord{X: 3, Y: 3}, PacketFlits: 4, PeriodCycles: 400},
		{ID: 1, Src: noc.Coord{X: 1, Y: 0}, Dst: noc.Coord{X: 3, Y: 3}, PacketFlits: 8, PeriodCycles: 520},
		{ID: 2, Src: noc.Coord{X: 2, Y: 0}, Dst: noc.Coord{X: 3, Y: 3}, PacketFlits: 2, PeriodCycles: 360},
		{ID: 3, Src: noc.Coord{X: 0, Y: 1}, Dst: noc.Coord{X: 3, Y: 1}, PacketFlits: 4, PeriodCycles: 440},
		{ID: 4, Src: noc.Coord{X: 0, Y: 2}, Dst: noc.Coord{X: 3, Y: 2}, PacketFlits: 8, PeriodCycles: 620},
	}
	var nocRows []E10NoCRow
	for _, lv := range []float64{0.5, 1.0} {
		for _, seed := range e10Seeds {
			cfg := &noc.Config{Spec: *nspec, Flows: flows}
			simres, err := noc.SimulateFaulty(cfg, 30000, fault.Spec{Seed: seed, NoCStall: lv})
			if err != nil {
				return nil, nil, nil, nil, err
			}
			for _, f := range flows {
				wc, err := cfg.WorstCaseLatency(f.ID)
				if err != nil {
					return nil, nil, nil, nil, err
				}
				r := E10NoCRow{
					Level: lv, Seed: seed, FlowID: f.ID,
					Bound: wc, SimMax: simres.MaxLatency[f.ID],
					Stalls: simres.Faults.LinkStalls,
				}
				if r.SimMax > r.Bound {
					return nil, nil, nil, nil, fmt.Errorf(
						"E10 NoC stall %.2f seed %d flow %d UNSOUND: sim %d > bound %d",
						lv, seed, f.ID, r.SimMax, r.Bound)
				}
				nocTab.Add(fmt.Sprintf("%.2f", lv), seed, f.ID, r.Bound, r.SimMax, r.Stalls, r.SimMax <= r.Bound)
				nocRows = append(nocRows, r)
			}
		}
	}
	res.Tables = append(res.Tables, nocTab)
	res.Notes = append(res.Notes,
		"every injection site draws within an analysis-derived cycle budget, so soundness here is the paper's claim, not a tautology",
		"zero-fault injection is bit-identical to the uninjected simulator (internal/sim differential goldens)")
	return res, rows, negRows, nocRows, nil
}
