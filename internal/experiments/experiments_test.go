package experiments

import (
	"strings"
	"testing"
)

func TestE1ShapesHold(t *testing.T) {
	res, rows, err := E1([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "speedup") {
		t.Fatal("table missing")
	}
	// Per use case: the multi-core bound must not be catastrophically
	// worse, and at least one use case must show real speedup.
	improved := 0
	byUC := map[string]map[int]int64{}
	for _, r := range rows {
		if byUC[r.UseCase] == nil {
			byUC[r.UseCase] = map[int]int64{}
		}
		byUC[r.UseCase][r.Cores] = r.Bound
	}
	for uc, m := range byUC {
		if m[1] <= 0 || m[4] <= 0 {
			t.Fatalf("%s: missing bounds", uc)
		}
		if float64(m[4]) > 1.3*float64(m[1]) {
			t.Fatalf("%s: 4-core bound %d catastrophically worse than 1-core %d", uc, m[4], m[1])
		}
		if m[4] < m[1] {
			improved++
		}
	}
	if improved < 2 {
		t.Fatalf("only %d/3 use cases improved with 4 cores", improved)
	}
}

func TestE2SoundAndReasonablyTight(t *testing.T) {
	_, rows, err := E2(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Tightness < 1 {
			t.Fatalf("%s: unsound (tightness %f)", r.UseCase, r.Tightness)
		}
		if r.WorkTightness < 1 {
			t.Fatalf("%s: work bound below observed (%f)", r.UseCase, r.WorkTightness)
		}
		if r.WorkTightness > 3 {
			t.Fatalf("%s: suspiciously loose work bound (%f)", r.UseCase, r.WorkTightness)
		}
	}
}

func TestE3AwareNeverWorse(t *testing.T) {
	_, rows, err := E3([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	strictlyBetter := 0
	for _, r := range rows {
		// By construction (WCET-guided selection) the aware policy never
		// yields a worse analyzed bound. Allow a tiny tolerance for DMA
		// phase differences after placement feedback.
		if float64(r.AwareBound) > 1.01*float64(r.ObliviousBound) {
			t.Fatalf("%s/%s: aware %d worse than oblivious %d", r.UseCase, r.Platform, r.AwareBound, r.ObliviousBound)
		}
		if r.AwareBound < r.ObliviousBound {
			strictlyBetter++
		}
	}
	if strictlyBetter == 0 {
		t.Log("note: aware never strictly beat oblivious at this size (expected on mild-contention platforms)")
	}
}

func TestE4TransformsPayOff(t *testing.T) {
	_, rows, err := E4(4)
	if err != nil {
		t.Fatal(err)
	}
	byUC := map[string]map[string]int64{}
	for _, r := range rows {
		if byUC[r.UseCase] == nil {
			byUC[r.UseCase] = map[string]int64{}
		}
		byUC[r.UseCase][r.Config] = r.Bound
	}
	for uc, m := range byUC {
		if m["+spm"] >= m["none"] {
			t.Fatalf("%s: SPM promotion did not help (%d vs %d)", uc, m["+spm"], m["none"])
		}
		best := m["none"]
		for _, b := range m {
			if b < best {
				best = b
			}
		}
		if best == m["none"] {
			t.Fatalf("%s: no transformation configuration beat 'none'", uc)
		}
	}
}

func TestE5BoundsHoldAtAllLoads(t *testing.T) {
	_, rows, err := E5(15000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Delivered == 0 {
			t.Fatalf("flow %d at load %.2f delivered nothing", r.FlowID, r.LoadFactor)
		}
		if r.SimMax > r.Bound {
			t.Fatalf("flow %d at load %.2f: sim %d > bound %d", r.FlowID, r.LoadFactor, r.SimMax, r.Bound)
		}
	}
}

func TestE6HeuristicGapAndRuntime(t *testing.T) {
	_, rows, err := E6(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MeanGap < 1 {
			t.Fatalf("gap below 1: %+v (B&B worse than heuristic?)", r)
		}
		if r.MeanGap > 3 {
			t.Fatalf("heuristic gap too large: %+v", r)
		}
	}
	// Exponential growth: the largest B&B case must be slower than the
	// smallest.
	if rows[len(rows)-1].BranchBoundUS <= rows[0].BranchBoundUS {
		t.Skip("timing noise; skipping runtime growth check")
	}
}

func TestE7MonotoneBestSoFar(t *testing.T) {
	_, rows, err := E7(4)
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]int64{}
	for _, r := range rows {
		if prev, ok := last[r.UseCase]; ok && r.BestSoFar > prev {
			t.Fatalf("%s: best-so-far increased %d -> %d", r.UseCase, prev, r.BestSoFar)
		}
		last[r.UseCase] = r.BestSoFar
	}
	for uc, b := range last {
		if b <= 0 {
			t.Fatalf("%s: no successful candidate", uc)
		}
	}
}

func TestE8TDMAtLeastAsPessimistic(t *testing.T) {
	_, rows, err := E8(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TDMBound < r.RRBound {
			t.Fatalf("%s: TDM bound %d below RR %d (TDM pays per access regardless of load)", r.UseCase, r.TDMBound, r.RRBound)
		}
	}
}

func TestE9DeploymentShape(t *testing.T) {
	_, rows, err := E9([]string{"xentium2", "xentium8"})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E9Row{}
	for _, r := range rows {
		byName[r.Platform] = r
	}
	small, big := byName["xentium2"], byName["xentium8"]
	if big.Utilization >= small.Utilization {
		t.Fatalf("more cores should lower utilization: %f vs %f", big.Utilization, small.Utilization)
	}
	if !big.Schedulable {
		t.Fatal("8-core deployment must be schedulable")
	}
}

func TestE10FaultInjectionSoundness(t *testing.T) {
	// Small platform subset keeps the test fast; the full sweep runs via
	// argobench. E10 itself errors out on any in-budget violation or any
	// silently absorbed over-bound injection, so reaching row checks
	// already means the soundness assertions held.
	res, rows, negRows, nocRows, err := E10([]string{"xentium2", "xentium4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 {
		t.Fatalf("expected 3 tables, got %d", len(res.Tables))
	}
	if len(rows) == 0 || len(negRows) == 0 || len(nocRows) == 0 {
		t.Fatal("empty row sets")
	}
	injected := false
	for _, r := range rows {
		if r.Violations != 0 {
			t.Fatalf("in-budget cell has violations: %+v", r)
		}
		if r.Makespan > r.Bound {
			t.Fatalf("makespan %d exceeds bound %d: %+v", r.Makespan, r.Bound, r)
		}
		if r.InjectedCycles > 0 {
			injected = true
		}
	}
	if !injected {
		t.Fatal("no cell injected anything — the sweep is vacuous")
	}
	for _, r := range negRows {
		if !r.Flagged || len(r.Violations) == 0 {
			t.Fatalf("over-bound injection not flagged: %+v", r)
		}
	}
	stalled := false
	for _, r := range nocRows {
		if r.SimMax > r.Bound {
			t.Fatalf("NoC latency %d exceeds bound %d: %+v", r.SimMax, r.Bound, r)
		}
		if r.Stalls > 0 {
			stalled = true
		}
	}
	if !stalled {
		t.Fatal("no NoC stalls injected — the stress table is vacuous")
	}
}

func TestE11TightnessGapShape(t *testing.T) {
	// Small platform subset keeps the test fast; the full 9-platform
	// sweep runs via argobench. E11 itself errors out on any region
	// where the exact bound exceeds IPET's, so reaching row checks
	// means the engine-ordering invariant held.
	_, rows, krows, err := E11([]string{"xentium2", "xentium4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty row set")
	}
	// E11 itself asserts strict tightening on the dead-branch and
	// early-exit kernels and exact agreement on the live control, so
	// reaching here means those held; pin the shape.
	if len(krows) != 3 {
		t.Fatalf("expected 3 kernel rows, got %d", len(krows))
	}
	for _, kr := range krows[:2] {
		if kr.MC >= kr.IPET || kr.GapPct <= 0 {
			t.Fatalf("kernel %s: no tightening (ipet %d, mc %d)", kr.Kernel, kr.IPET, kr.MC)
		}
	}
	for _, r := range rows {
		if r.MCSum > r.IPETSum {
			t.Fatalf("%s/%s: mc sum %d exceeds ipet sum %d", r.Platform, r.UseCase, r.MCSum, r.IPETSum)
		}
		if r.GapPct < 0 || r.GapPct > 100 {
			t.Fatalf("%s/%s: gap %.2f%% out of range", r.Platform, r.UseCase, r.GapPct)
		}
		if r.Tasks == 0 {
			t.Fatalf("%s/%s: no tasks", r.Platform, r.UseCase)
		}
	}
}

func TestETablesDeterministicUnderParallelism(t *testing.T) {
	// The fan-out must not change any table: cells are reduced in index
	// order, so serial and parallel runs render identically.
	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 1
	s1, rows1, err := E1([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s8, rows8, err := E8(2)
	if err != nil {
		t.Fatal(err)
	}

	Parallelism = 4
	p1, prow1, err := E1([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	p8, prow8, err := E8(2)
	if err != nil {
		t.Fatal(err)
	}

	if s1.String() != p1.String() {
		t.Fatalf("E1 diverges under parallelism:\n--- serial ---\n%s--- parallel ---\n%s", s1, p1)
	}
	if s8.String() != p8.String() {
		t.Fatalf("E8 diverges under parallelism:\n--- serial ---\n%s--- parallel ---\n%s", s8, p8)
	}
	if len(rows1) != len(prow1) || len(rows8) != len(prow8) {
		t.Fatal("row counts diverge under parallelism")
	}
	for i := range rows1 {
		if rows1[i] != prow1[i] {
			t.Fatalf("E1 row %d: serial %+v, parallel %+v", i, rows1[i], prow1[i])
		}
	}
}
