package experiments

import (
	"fmt"
	"sort"

	"argo/internal/adl"
	"argo/internal/core"
	"argo/internal/report"
	"argo/internal/rt"
	"argo/internal/usecases"
)

// E9Row is one platform's deployment verdict.
type E9Row struct {
	Platform    string
	Utilization float64
	Schedulable bool
	// MinSlack is the smallest deadline margin across all job instances
	// (only meaningful when schedulable).
	MinSlack int64
}

// E9 evaluates the deployment scenario the guaranteed bounds exist for:
// all three ARGO applications activated periodically on ONE shared
// platform under a static cyclic executive. More capable platforms must
// yield lower utilization and larger slack.
func E9(platformNames []string) (*Result, []E9Row, error) {
	if len(platformNames) == 0 {
		platformNames = []string{"xentium2", "xentium4", "xentium8", "leon3-2x2"}
	}
	res := &Result{
		ID:    "E9",
		Claim: "guaranteed bounds enable verified periodic deployment of all use cases on one platform (§I, §IV)",
	}
	tab := report.New("Cyclic-executive deployment of egpws + weaa + polka",
		"platform", "utilization", "schedulable", "min-slack")
	var rows []E9Row
	for _, name := range platformNames {
		platform := adl.Builtin(name)
		if platform == nil {
			return nil, nil, fmt.Errorf("E9: unknown platform %q", name)
		}
		var jobs []rt.Job
		for _, u := range usecases.All() {
			p, err := u.Program()
			if err != nil {
				return nil, nil, err
			}
			art, err := core.Compile(p, core.DefaultOptions(u.Entry, u.Args, platform))
			if err != nil {
				return nil, nil, fmt.Errorf("E9 %s/%s: %v", name, u.Name, err)
			}
			jobs = append(jobs, rt.Job{Name: u.Name, BoundCycles: art.Bound(), PeriodCycles: u.Period})
		}
		r := E9Row{Platform: name, Utilization: rt.Utilization(jobs)}
		cs, err := rt.BuildCyclicExecutive(jobs)
		if err == nil {
			if verr := cs.Validate(); verr != nil {
				return nil, nil, fmt.Errorf("E9 %s: invalid executive: %v", name, verr)
			}
			r.Schedulable = true
			slacks := cs.SlackReport()
			var names []string
			for n := range slacks {
				names = append(names, n)
			}
			sort.Strings(names)
			r.MinSlack = slacks[names[0]]
			for _, n := range names {
				if slacks[n] < r.MinSlack {
					r.MinSlack = slacks[n]
				}
			}
		}
		tab.Add(name, r.Utilization, r.Schedulable, r.MinSlack)
		rows = append(rows, r)
	}
	res.Tables = append(res.Tables, tab)
	return res, rows, nil
}
