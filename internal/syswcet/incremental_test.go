package syswcet

import (
	"math/rand"
	"reflect"
	"testing"

	"argo/internal/adl"
	"argo/internal/sched"
)

func assertSameResult(t *testing.T, inc, full *Result) {
	t.Helper()
	if !reflect.DeepEqual(inc, full) {
		t.Fatalf("incremental Analyze differs from AnalyzeFull:\n inc:  %+v\n full: %+v", inc, full)
	}
}

// TestIncrementalMatchesFullStaircase pins a staircase fixture whose
// fixed point takes six rounds: a chain of shared tasks on core 4 whose
// windows are pushed rightward round after round as interference
// inflates their predecessors, creating one new overlap (and one more
// dirty contender recomputation) per round. The incremental analysis
// must reproduce the full recompute bit for bit — bounds, windows,
// contender counts, and the Iterations count.
func TestIncrementalMatchesFullStaircase(t *testing.T) {
	p := adl.XentiumPlatform(5)
	type slot struct {
		wcet, shared int64
		core         int
		start        int64
	}
	slots := []slot{
		{254, 15, 0, 91},
		{156, 0, 4, 140},
		{138, 31, 4, 321},
		{145, 47, 4, 535},
		{106, 2, 4, 785},
		{55, 1, 2, 17},
		{45, 29, 3, 28},
		{194, 45, 0, 482},
	}
	in := &sched.Input{Platform: p}
	s := &sched.Schedule{Cores: p.NumCores()}
	for i, sl := range slots {
		tk := sched.Task{ID: i, WCET: make([]int64, p.NumCores()), SharedAccesses: sl.shared}
		for c := range tk.WCET {
			tk.WCET[c] = sl.wcet
		}
		in.Tasks = append(in.Tasks, tk)
		s.Placements = append(s.Placements, sched.Placement{
			Task: i, Core: sl.core, Start: sl.start, Finish: sl.start + sl.wcet,
		})
	}
	inc, err := Analyze(in, s)
	if err != nil {
		t.Fatal(err)
	}
	full, err := AnalyzeFull(in, s)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, inc, full)
	if inc.Iterations != 6 {
		t.Fatalf("fixture converged in %d rounds; the pinned staircase takes 6", inc.Iterations)
	}
	// The staircase must actually exercise incremental recomputation:
	// some task ends with more contenders than another.
	minC, maxC := inc.Contenders[0], inc.Contenders[0]
	for _, c := range inc.Contenders {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if minC == maxC {
		t.Fatalf("all tasks share contender count %d; fixture too uniform", maxC)
	}
}

// TestIncrementalMatchesFullRandom cross-checks Analyze against
// AnalyzeFull on randomized task systems and both scheduling policies.
func TestIncrementalMatchesFullRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 60; trial++ {
		cores := 2 + rng.Intn(7)
		p := adl.XentiumPlatform(cores)
		n := 2 + rng.Intn(14)
		wcets := make([]int64, n)
		shared := make([]int64, n)
		for i := range wcets {
			wcets[i] = int64(10 + rng.Intn(500))
			if rng.Intn(3) > 0 {
				shared[i] = int64(rng.Intn(60))
			}
		}
		var deps []sched.Dep
		for j := 1; j < n; j++ {
			for i := 0; i < j; i++ {
				if rng.Intn(5) == 0 {
					deps = append(deps, sched.Dep{From: i, To: j, VolumeBytes: rng.Intn(256)})
				}
			}
		}
		in := mkInput(p, wcets, deps, shared)
		for _, pol := range []sched.Policy{sched.ListOblivious, sched.ListContentionAware} {
			s := schedule(t, in, pol)
			inc, err := Analyze(in, s)
			if err != nil {
				t.Fatal(err)
			}
			full, err := AnalyzeFull(in, s)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, inc, full)
		}
	}
}

// TestAnalyzeScratchReuse runs the same analysis many times (recycling
// the pooled scratch) and asserts the results stay identical — reused
// buffers must not leak state between calls.
func TestAnalyzeScratchReuse(t *testing.T) {
	p := adl.XentiumPlatform(3)
	in := mkInput(p, []int64{120, 80, 200, 60}, []sched.Dep{{From: 0, To: 2}}, []int64{10, 20, 0, 5})
	s := schedule(t, in, sched.ListOblivious)
	first, err := Analyze(in, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		again, err := Analyze(in, s)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, again, first)
	}
}
