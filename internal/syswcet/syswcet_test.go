package syswcet

import (
	"testing"

	"argo/internal/adl"
	"argo/internal/mhp"
	"argo/internal/sched"
)

func mkInput(p *adl.Platform, wcets []int64, deps []sched.Dep, shared []int64) *sched.Input {
	in := &sched.Input{Platform: p}
	for i, w := range wcets {
		t := sched.Task{ID: i, WCET: make([]int64, p.NumCores())}
		for c := range t.WCET {
			t.WCET[c] = w
		}
		if shared != nil {
			t.SharedAccesses = shared[i]
		}
		in.Tasks = append(in.Tasks, t)
	}
	in.Deps = deps
	return in
}

func schedule(t *testing.T, in *sched.Input, pol sched.Policy) *sched.Schedule {
	t.Helper()
	s, err := sched.Run(in, pol)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNoSharedAccessesNoInflation(t *testing.T) {
	p := adl.XentiumPlatform(4)
	in := mkInput(p, []int64{100, 100, 100, 100}, nil, nil)
	s := schedule(t, in, sched.ListOblivious)
	r, err := Analyze(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != s.Makespan {
		t.Fatalf("makespan inflated without shared accesses: %d vs %d", r.Makespan, s.Makespan)
	}
	if r.TotalInterference() != 0 {
		t.Fatalf("interference: %d", r.TotalInterference())
	}
}

func TestParallelSharedTasksInflate(t *testing.T) {
	p := adl.XentiumPlatform(2)
	in := mkInput(p, []int64{100, 100}, nil, []int64{10, 10})
	s := schedule(t, in, sched.ListOblivious)
	// Both tasks run in parallel on 2 cores, each with 10 accesses.
	r, err := Analyze(in, s)
	if err != nil {
		t.Fatal(err)
	}
	perAccess := int64(p.AccessInterferenceDelay(1))
	want := s.Makespan + 10*perAccess
	if r.Makespan != want {
		t.Fatalf("makespan = %d, want %d", r.Makespan, want)
	}
	for tsk := 0; tsk < 2; tsk++ {
		if r.Contenders[tsk] != 1 {
			t.Fatalf("task %d contenders = %d", tsk, r.Contenders[tsk])
		}
	}
}

func TestSequentializedTasksDoNotInterfere(t *testing.T) {
	p := adl.XentiumPlatform(2)
	// Dependent chain: never parallel, no inflation even with shared
	// accesses.
	in := mkInput(p, []int64{100, 100}, []sched.Dep{{From: 0, To: 1}}, []int64{50, 50})
	s := schedule(t, in, sched.ListOblivious)
	r, err := Analyze(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalInterference() != 0 {
		t.Fatalf("chain should not self-interfere: %d", r.TotalInterference())
	}
}

func TestMoreContendersMoreDelayRR(t *testing.T) {
	mk := func(cores int) int64 {
		p := adl.XentiumPlatform(cores)
		wcets := make([]int64, cores)
		shared := make([]int64, cores)
		for i := range wcets {
			wcets[i] = 100
			shared[i] = 20
		}
		in := mkInput(p, wcets, nil, shared)
		s, _ := sched.Run(in, sched.ListOblivious)
		r, err := Analyze(in, s)
		if err != nil {
			panic(err)
		}
		return r.Makespan
	}
	if !(mk(2) < mk(4) && mk(4) < mk(8)) {
		t.Fatalf("RR inflation should grow with cores: %d %d %d", mk(2), mk(4), mk(8))
	}
}

func TestTDMIndependentOfContention(t *testing.T) {
	p := adl.XentiumTDMPlatform(4)
	// TDM grants only at slot starts: even a lonely task pays the full
	// period per access (fully composable, load-independent).
	in := mkInput(p, []int64{100}, nil, []int64{10})
	s := schedule(t, in, sched.ListOblivious)
	r, err := Analyze(in, s)
	if err != nil {
		t.Fatal(err)
	}
	perAccess := int64(4 * p.Bus.SlotCycles)
	if r.TotalInterference() != 10*perAccess {
		t.Fatalf("single task: %d, want %d", r.TotalInterference(), 10*perAccess)
	}
	// And the charge does not grow with contention.
	in2 := mkInput(p, []int64{100, 100}, nil, []int64{10, 10})
	s2 := schedule(t, in2, sched.ListOblivious)
	r2, err := Analyze(in2, s2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.InterferencePerTask[0] != 10*perAccess {
		t.Fatalf("tdm interference = %d, want %d", r2.InterferencePerTask[0], 10*perAccess)
	}
}

func TestFixpointConvergesAndIsMonotone(t *testing.T) {
	p := adl.XentiumPlatform(4)
	// Staggered tasks where inflation extends windows into new overlaps:
	// t0 [0,100) core0; t1 [0,100) core1 -> both inflate; t2 starts at
	// 100 on core0 and may newly overlap t1's inflated window.
	in := mkInput(p, []int64{100, 100, 100}, []sched.Dep{{From: 0, To: 2}}, []int64{50, 50, 50})
	s := schedule(t, in, sched.ListOblivious)
	r, err := Analyze(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations < 2 {
		t.Fatalf("expected multi-round fixpoint, got %d", r.Iterations)
	}
	if r.Makespan < s.Makespan {
		t.Fatal("system bound below schedule makespan")
	}
	// Windows must cover the schedule's.
	for i := range in.Tasks {
		if r.Start[i] < s.Placements[i].Start {
			t.Fatalf("task %d start shrank", i)
		}
		if r.Finish[i]-r.Start[i] < s.Placements[i].Finish-s.Placements[i].Start {
			t.Fatalf("task %d duration shrank", i)
		}
	}
}

func TestContentionAwareBeatsObliviousSystemBound(t *testing.T) {
	p := adl.XentiumPlatform(4)
	// Many independent, memory-heavy tasks: the aware scheduler should
	// yield a lower system-level bound than the oblivious one.
	n := 8
	wcets := make([]int64, n)
	shared := make([]int64, n)
	for i := range wcets {
		wcets[i] = 200
		shared[i] = 400
	}
	in := mkInput(p, wcets, nil, shared)
	obl := schedule(t, in, sched.ListOblivious)
	aware := schedule(t, in, sched.ListContentionAware)
	rObl, err := Analyze(in, obl)
	if err != nil {
		t.Fatal(err)
	}
	rAware, err := Analyze(in, aware)
	if err != nil {
		t.Fatal(err)
	}
	if rAware.Makespan >= rObl.Makespan {
		t.Fatalf("aware %d should beat oblivious %d", rAware.Makespan, rObl.Makespan)
	}
}

func TestMHPBasics(t *testing.T) {
	p := adl.XentiumPlatform(2)
	in := mkInput(p, []int64{100, 100, 100}, []sched.Dep{{From: 0, To: 2}}, []int64{1, 1, 1})
	s := schedule(t, in, sched.ListOblivious)
	an := mhp.New(in, s)
	if an.MayHappenInParallel(0, 2, nil, nil) {
		t.Fatal("dependent tasks cannot be parallel")
	}
	if an.MayHappenInParallel(0, 0, nil, nil) {
		t.Fatal("task parallel with itself")
	}
	// Same-core tasks never parallel.
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			if s.Placements[a].Core == s.Placements[b].Core && an.MayHappenInParallel(a, b, nil, nil) {
				t.Fatalf("same-core tasks %d,%d flagged parallel", a, b)
			}
		}
	}
}

func TestMHPTransitiveOrdering(t *testing.T) {
	p := adl.XentiumPlatform(4)
	in := mkInput(p, []int64{10, 10, 10}, []sched.Dep{{From: 0, To: 1}, {From: 1, To: 2}}, nil)
	s := schedule(t, in, sched.ListOblivious)
	an := mhp.New(in, s)
	if !an.Ordered(0, 2) {
		t.Fatal("transitive dependence not detected")
	}
}
