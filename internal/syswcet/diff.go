package syswcet

// DiffTasks returns the ids of tasks whose analyzed window, bound,
// interference, or contender count differs between two Results — the
// dirty-task set an interactive edit actually moved. Interactive
// sessions report it per edit so a what-if client can highlight exactly
// the tasks an edit affected instead of re-rendering everything.
//
// Results of different sizes (the edit changed the task graph shape)
// diff as "everything changed": every id of the larger result is
// returned. A nil prev (first analysis) likewise marks all tasks.
func DiffTasks(prev, next *Result) []int {
	if next == nil {
		return nil
	}
	n := len(next.TaskBound)
	if prev != nil && len(prev.TaskBound) > n {
		n = len(prev.TaskBound)
	}
	if prev == nil || len(prev.TaskBound) != len(next.TaskBound) {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	var out []int
	for t := 0; t < n; t++ {
		if prev.Start[t] != next.Start[t] ||
			prev.Finish[t] != next.Finish[t] ||
			prev.TaskBound[t] != next.TaskBound[t] ||
			prev.InterferencePerTask[t] != next.InterferencePerTask[t] ||
			prev.Contenders[t] != next.Contenders[t] {
			out = append(out, t)
		}
	}
	return out
}
