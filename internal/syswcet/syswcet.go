// Package syswcet implements ARGO's system-level WCET analysis (paper
// §II-D): it combines the isolated code-level bounds of all tasks with a
// shared-resource interference cost model derived from the platform's
// abstract (ADL) model, using the may-happen-in-parallel analysis to
// identify resource conflicts precisely.
//
// Because the platform is fully timing compositional (paper §III-B), the
// per-task bound decomposes as
//
//	bound(t) = codeWCET(t) + sharedAccesses(t) * delay(contenders(t))
//
// where contenders(t) is the number of other cores running potentially
// parallel, shared-memory-active tasks. Task windows and contender sets
// are interdependent, so a monotone fixed point is computed: contender
// counts only ever grow, durations and windows only ever grow, and the
// iteration terminates (bounded by the core count).
package syswcet

import (
	"fmt"

	"argo/internal/mhp"
	"argo/internal/sched"
)

// Result is the outcome of the system-level analysis.
type Result struct {
	// Start/Finish are the inflated, interference-aware task windows
	// (release times for the time-triggered execution).
	Start, Finish []int64
	// TaskBound is the inflated per-task execution bound.
	TaskBound []int64
	// InterferencePerTask is the added interference delay per task.
	InterferencePerTask []int64
	// Contenders is the final contender-core count per task.
	Contenders []int
	// Makespan is the end-to-end system WCET bound.
	Makespan int64
	// Iterations is the number of fixed-point rounds used.
	Iterations int
}

// TotalInterference sums the interference cycles across tasks.
func (r *Result) TotalInterference() int64 {
	var n int64
	for _, x := range r.InterferencePerTask {
		n += x
	}
	return n
}

// maxRounds bounds the fixed point defensively (the monotone contender
// counts converge in at most NumCores rounds).
const maxRounds = 64

// Analyze computes the system-level WCET bound of a schedule.
func Analyze(in *sched.Input, s *sched.Schedule) (*Result, error) {
	n := len(in.Tasks)
	an := mhp.New(in, s)
	res := &Result{
		Start:               make([]int64, n),
		Finish:              make([]int64, n),
		TaskBound:           make([]int64, n),
		InterferencePerTask: make([]int64, n),
		Contenders:          make([]int, n),
	}
	// Initial windows: the schedule's own (isolated durations).
	for t, pl := range s.Placements {
		res.Start[t] = pl.Start
		res.Finish[t] = pl.Finish
	}
	coreOrders := make([][]int, in.Platform.NumCores())
	for c := range coreOrders {
		coreOrders[c] = s.CoreOrder(c)
	}
	for round := 1; round <= maxRounds; round++ {
		res.Iterations = round
		changed := false
		// 1. Contender counts (monotone: keep maxima).
		for t := range in.Tasks {
			c := an.ContenderCores(t, res.Start, res.Finish)
			if c > res.Contenders[t] {
				res.Contenders[t] = c
				changed = true
			}
		}
		// 2. Durations.
		for t, task := range in.Tasks {
			delay := int64(in.Platform.AccessInterferenceDelay(res.Contenders[t]))
			res.InterferencePerTask[t] = task.SharedAccesses * delay
			res.TaskBound[t] = task.WCET[s.Placements[t].Core] + res.InterferencePerTask[t]
		}
		// 3. Windows: earliest-start respecting the per-core order and
		// the dependences, but never earlier than the previous round
		// (monotonicity => soundness of the MHP windows).
		newStart := make([]int64, n)
		newFinish := make([]int64, n)
		coreAvail := make([]int64, in.Platform.NumCores())
		done := make([]bool, n)
		idx := make([]int, in.Platform.NumCores())
		remaining := n
		for remaining > 0 {
			progressed := false
			for c := range coreOrders {
				for idx[c] < len(coreOrders[c]) {
					t := coreOrders[c][idx[c]]
					ready := coreAvail[c]
					ok := true
					for _, d := range in.Deps {
						if d.To != t {
							continue
						}
						if !done[d.From] {
							ok = false
							break
						}
						r := newFinish[d.From] + in.CommCycles(d, s.Placements[d.From].Core, c)
						if r > ready {
							ready = r
						}
					}
					if !ok {
						break
					}
					if ready < res.Start[t] {
						ready = res.Start[t] // monotone windows
					}
					newStart[t] = ready
					newFinish[t] = ready + res.TaskBound[t]
					coreAvail[c] = newFinish[t]
					done[t] = true
					idx[c]++
					remaining--
					progressed = true
				}
			}
			if !progressed {
				return nil, fmt.Errorf("syswcet: schedule deadlock (cyclic core order vs dependences)")
			}
		}
		for t := 0; t < n; t++ {
			if newStart[t] != res.Start[t] || newFinish[t] != res.Finish[t] {
				changed = true
			}
			res.Start[t] = newStart[t]
			res.Finish[t] = newFinish[t]
		}
		if !changed {
			break
		}
	}
	res.Makespan = 0
	for t := 0; t < n; t++ {
		if res.Finish[t] > res.Makespan {
			res.Makespan = res.Finish[t]
		}
	}
	return res, nil
}
