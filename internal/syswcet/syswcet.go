// Package syswcet implements ARGO's system-level WCET analysis (paper
// §II-D): it combines the isolated code-level bounds of all tasks with a
// shared-resource interference cost model derived from the platform's
// abstract (ADL) model, using the may-happen-in-parallel analysis to
// identify resource conflicts precisely.
//
// Because the platform is fully timing compositional (paper §III-B), the
// per-task bound decomposes as
//
//	bound(t) = codeWCET(t) + sharedAccesses(t) * delay(contenders(t))
//
// where contenders(t) is the number of other cores running potentially
// parallel, shared-memory-active tasks. Task windows and contender sets
// are interdependent, so a monotone fixed point is computed: contender
// counts only ever grow, durations and windows only ever grow, and the
// iteration terminates (bounded by the core count).
//
// Analyze evaluates the fixed point incrementally: a task's contender
// count is recomputed only when its own window or the window of a
// potential contender changed in the previous round (round one starts
// with everything dirty), and the window pass is skipped entirely once
// both the contender counts and the windows are stable. AnalyzeFull is
// the straightforward recompute-everything formulation; both return
// bit-identical Results, including the Iterations count.
package syswcet

import (
	"fmt"
	"sort"
	"sync"

	"argo/internal/mhp"
	"argo/internal/sched"
)

// Result is the outcome of the system-level analysis.
type Result struct {
	// Start/Finish are the inflated, interference-aware task windows
	// (release times for the time-triggered execution).
	Start, Finish []int64
	// TaskBound is the inflated per-task execution bound.
	TaskBound []int64
	// InterferencePerTask is the added interference delay per task.
	InterferencePerTask []int64
	// Contenders is the final contender-core count per task.
	Contenders []int
	// Makespan is the end-to-end system WCET bound.
	Makespan int64
	// Iterations is the number of fixed-point rounds used.
	Iterations int
}

// TotalInterference sums the interference cycles across tasks.
func (r *Result) TotalInterference() int64 {
	var n int64
	for _, x := range r.InterferencePerTask {
		n += x
	}
	return n
}

// maxRounds bounds the fixed point defensively (the monotone contender
// counts converge in at most NumCores rounds).
const maxRounds = 64

// scratch is the reusable working memory of one Analyze call, pooled so
// the steady state allocates only the returned Result.
type scratch struct {
	coreOrders [][]int
	incoming   [][]sched.Dep // deps grouped by To, in Deps order
	cand       [][]int32     // per task: shared-access tasks that may ever contend
	rcand      [][]int32     // reverse of cand: whose count does my window affect
	dirty      []bool
	grown      []int32
	changedW   []int32
	newStart   []int64
	newFinish  []int64
	coreAvail  []int64
	done       []bool
	idx        []int
	coreSeen   []bool
	sorter     coreSorter
}

// coreSorter sorts one core's task ids by schedule start time without
// the per-call closure of sort.Slice.
type coreSorter struct {
	ids []int
	pl  []sched.Placement
}

func (cs *coreSorter) Len() int      { return len(cs.ids) }
func (cs *coreSorter) Swap(i, j int) { cs.ids[i], cs.ids[j] = cs.ids[j], cs.ids[i] }
func (cs *coreSorter) Less(i, j int) bool {
	return cs.pl[cs.ids[i]].Start < cs.pl[cs.ids[j]].Start
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

func grow2D[T any](s [][]T, n int) [][]T {
	if cap(s) < n {
		s = append(s[:cap(s)], make([][]T, n-cap(s))...)
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

func growTo[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// prepare builds the static query structures: per-core orders, incoming
// dependence lists, and the candidate-contender lists. cand[t] holds
// every task that could ever enter t's contender count (different core,
// no dependence order, shared-memory active); rcand is its reverse.
func (sc *scratch) prepare(in *sched.Input, s *sched.Schedule, an *mhp.Analysis) {
	n := len(in.Tasks)
	nc := in.Platform.NumCores()
	sc.coreOrders = grow2D(sc.coreOrders, nc)
	for _, pl := range s.Placements {
		sc.coreOrders[pl.Core] = append(sc.coreOrders[pl.Core], pl.Task)
	}
	sc.sorter.pl = s.Placements
	for c := range sc.coreOrders {
		sc.sorter.ids = sc.coreOrders[c]
		sort.Sort(&sc.sorter)
	}
	sc.sorter.ids, sc.sorter.pl = nil, nil
	sc.incoming = grow2D(sc.incoming, n)
	for _, d := range in.Deps {
		sc.incoming[d.To] = append(sc.incoming[d.To], d)
	}
	sc.cand = grow2D(sc.cand, n)
	sc.rcand = grow2D(sc.rcand, n)
	for t := 0; t < n; t++ {
		ct := s.Placements[t].Core
		for o := 0; o < n; o++ {
			if o == t || s.Placements[o].Core == ct || in.Tasks[o].SharedAccesses <= 0 {
				continue
			}
			if an.Ordered(t, o) {
				continue
			}
			sc.cand[t] = append(sc.cand[t], int32(o))
			sc.rcand[o] = append(sc.rcand[o], int32(t))
		}
	}
	sc.dirty = growTo(sc.dirty, n)
	sc.grown = sc.grown[:0]
	sc.changedW = sc.changedW[:0]
	sc.newStart = growTo(sc.newStart, n)
	sc.newFinish = growTo(sc.newFinish, n)
	sc.coreAvail = growTo(sc.coreAvail, nc)
	sc.done = growTo(sc.done, n)
	sc.idx = growTo(sc.idx, nc)
}

// contenders counts the distinct cores among t's candidate contenders
// whose current windows overlap t's — ContenderCores restricted to the
// precomputed static candidate list, allocation-free. seen is dedicated
// per-core scratch, reset on entry.
func (sc *scratch) contenders(t int, start, finish []int64, placements []sched.Placement, seen []bool) int {
	clear(seen)
	cnt := 0
	st, ft := start[t], finish[t]
	for _, o := range sc.cand[t] {
		if start[o] < ft && st < finish[o] {
			if c := placements[o].Core; !seen[c] {
				seen[c] = true
				cnt++
			}
		}
	}
	return cnt
}

// windowPass recomputes all task windows from the current TaskBounds:
// earliest-start respecting the per-core order and the dependences, but
// never earlier than the previous round (monotonicity => soundness of
// the MHP windows).
func (sc *scratch) windowPass(in *sched.Input, s *sched.Schedule, res *Result) error {
	n := len(in.Tasks)
	newStart, newFinish := sc.newStart, sc.newFinish
	coreAvail := sc.coreAvail
	clear(coreAvail)
	done := sc.done
	clear(done)
	idx := sc.idx
	clear(idx)
	remaining := n
	for remaining > 0 {
		progressed := false
		for c := range sc.coreOrders {
			for idx[c] < len(sc.coreOrders[c]) {
				t := sc.coreOrders[c][idx[c]]
				ready := coreAvail[c]
				ok := true
				for _, d := range sc.incoming[t] {
					if !done[d.From] {
						ok = false
						break
					}
					r := newFinish[d.From] + in.CommCycles(d, s.Placements[d.From].Core, c)
					if r > ready {
						ready = r
					}
				}
				if !ok {
					break
				}
				if ready < res.Start[t] {
					ready = res.Start[t] // monotone windows
				}
				newStart[t] = ready
				newFinish[t] = ready + res.TaskBound[t]
				coreAvail[c] = newFinish[t]
				done[t] = true
				idx[c]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return fmt.Errorf("syswcet: schedule deadlock (cyclic core order vs dependences)")
		}
	}
	return nil
}

// Analyze computes the system-level WCET bound of a schedule with the
// incremental fixed point. The Result is bit-identical to AnalyzeFull.
func Analyze(in *sched.Input, s *sched.Schedule) (*Result, error) {
	n := len(in.Tasks)
	an := mhp.New(in, s)
	// One backing array for the four int64 result columns: the Result
	// is the only steady-state allocation of the pooled analysis, so it
	// is kept to three objects.
	block := make([]int64, 4*n)
	res := &Result{
		Start:               block[0*n : 1*n : 1*n],
		Finish:              block[1*n : 2*n : 2*n],
		TaskBound:           block[2*n : 3*n : 3*n],
		InterferencePerTask: block[3*n : 4*n : 4*n],
		Contenders:          make([]int, n),
	}
	// Initial windows: the schedule's own (isolated durations).
	for t, pl := range s.Placements {
		res.Start[t] = pl.Start
		res.Finish[t] = pl.Finish
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.prepare(in, s, an)
	sc.coreSeen = growTo(sc.coreSeen, in.Platform.NumCores())
	coreSeen := sc.coreSeen
	for round := 1; round <= maxRounds; round++ {
		res.Iterations = round
		changed := false
		// 1. Contender counts (monotone: keep maxima), recomputed only
		// for tasks whose count could have changed: round one seeds
		// everything dirty, later rounds mark a task dirty when its own
		// window or a candidate contender's window moved last round.
		dirty := sc.dirty
		if round == 1 {
			for i := range dirty {
				dirty[i] = true
			}
		} else {
			clear(dirty)
			for _, o := range sc.changedW {
				dirty[o] = true
				for _, t := range sc.rcand[o] {
					dirty[t] = true
				}
			}
		}
		sc.grown = sc.grown[:0]
		for t := 0; t < n; t++ {
			if !dirty[t] {
				continue
			}
			c := sc.contenders(t, res.Start, res.Finish, s.Placements, coreSeen)
			if c > res.Contenders[t] {
				res.Contenders[t] = c
				changed = true
				sc.grown = append(sc.grown, int32(t))
			}
		}
		// 2. Durations: a pure function of the contender count, so only
		// grown tasks change (round one initializes everything).
		if round == 1 {
			for t, task := range in.Tasks {
				delay := int64(in.Platform.AccessInterferenceDelay(res.Contenders[t]))
				res.InterferencePerTask[t] = task.SharedAccesses * delay
				res.TaskBound[t] = task.WCET[s.Placements[t].Core] + res.InterferencePerTask[t]
			}
		} else {
			for _, t32 := range sc.grown {
				t := int(t32)
				delay := int64(in.Platform.AccessInterferenceDelay(res.Contenders[t]))
				res.InterferencePerTask[t] = in.Tasks[t].SharedAccesses * delay
				res.TaskBound[t] = in.Tasks[t].WCET[s.Placements[t].Core] + res.InterferencePerTask[t]
			}
		}
		// 3. Windows. Once no duration changed and the previous pass was
		// already a no-op, re-running it would reproduce the same windows
		// (it is a deterministic function of TaskBound and the previous
		// windows): the fixed point is reached.
		if round > 1 && len(sc.grown) == 0 && len(sc.changedW) == 0 {
			break
		}
		if err := sc.windowPass(in, s, res); err != nil {
			return nil, err
		}
		sc.changedW = sc.changedW[:0]
		for t := 0; t < n; t++ {
			if sc.newStart[t] != res.Start[t] || sc.newFinish[t] != res.Finish[t] {
				changed = true
				sc.changedW = append(sc.changedW, int32(t))
			}
			res.Start[t] = sc.newStart[t]
			res.Finish[t] = sc.newFinish[t]
		}
		if !changed {
			break
		}
	}
	res.Makespan = 0
	for t := 0; t < n; t++ {
		if res.Finish[t] > res.Makespan {
			res.Makespan = res.Finish[t]
		}
	}
	return res, nil
}

// AnalyzeFull is the non-incremental reference formulation: every round
// recomputes every task's contender count, duration, and window. It is
// kept as the differential-testing and benchmarking baseline for
// Analyze; both return bit-identical Results.
func AnalyzeFull(in *sched.Input, s *sched.Schedule) (*Result, error) {
	n := len(in.Tasks)
	an := mhp.New(in, s)
	res := &Result{
		Start:               make([]int64, n),
		Finish:              make([]int64, n),
		TaskBound:           make([]int64, n),
		InterferencePerTask: make([]int64, n),
		Contenders:          make([]int, n),
	}
	for t, pl := range s.Placements {
		res.Start[t] = pl.Start
		res.Finish[t] = pl.Finish
	}
	coreOrders := make([][]int, in.Platform.NumCores())
	for c := range coreOrders {
		coreOrders[c] = s.CoreOrder(c)
	}
	for round := 1; round <= maxRounds; round++ {
		res.Iterations = round
		changed := false
		// 1. Contender counts (monotone: keep maxima).
		for t := range in.Tasks {
			c := an.ContenderCores(t, res.Start, res.Finish)
			if c > res.Contenders[t] {
				res.Contenders[t] = c
				changed = true
			}
		}
		// 2. Durations.
		for t, task := range in.Tasks {
			delay := int64(in.Platform.AccessInterferenceDelay(res.Contenders[t]))
			res.InterferencePerTask[t] = task.SharedAccesses * delay
			res.TaskBound[t] = task.WCET[s.Placements[t].Core] + res.InterferencePerTask[t]
		}
		// 3. Windows: earliest-start respecting the per-core order and
		// the dependences, but never earlier than the previous round
		// (monotonicity => soundness of the MHP windows).
		newStart := make([]int64, n)
		newFinish := make([]int64, n)
		coreAvail := make([]int64, in.Platform.NumCores())
		done := make([]bool, n)
		idx := make([]int, in.Platform.NumCores())
		remaining := n
		for remaining > 0 {
			progressed := false
			for c := range coreOrders {
				for idx[c] < len(coreOrders[c]) {
					t := coreOrders[c][idx[c]]
					ready := coreAvail[c]
					ok := true
					for _, d := range in.Deps {
						if d.To != t {
							continue
						}
						if !done[d.From] {
							ok = false
							break
						}
						r := newFinish[d.From] + in.CommCycles(d, s.Placements[d.From].Core, c)
						if r > ready {
							ready = r
						}
					}
					if !ok {
						break
					}
					if ready < res.Start[t] {
						ready = res.Start[t] // monotone windows
					}
					newStart[t] = ready
					newFinish[t] = ready + res.TaskBound[t]
					coreAvail[c] = newFinish[t]
					done[t] = true
					idx[c]++
					remaining--
					progressed = true
				}
			}
			if !progressed {
				return nil, fmt.Errorf("syswcet: schedule deadlock (cyclic core order vs dependences)")
			}
		}
		for t := 0; t < n; t++ {
			if newStart[t] != res.Start[t] || newFinish[t] != res.Finish[t] {
				changed = true
			}
			res.Start[t] = newStart[t]
			res.Finish[t] = newFinish[t]
		}
		if !changed {
			break
		}
	}
	res.Makespan = 0
	for t := 0; t < n; t++ {
		if res.Finish[t] > res.Makespan {
			res.Makespan = res.Finish[t]
		}
	}
	return res, nil
}
