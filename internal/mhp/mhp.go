// Package mhp implements the may-happen-in-parallel analysis of ARGO's
// system-level WCET stage (paper §II-D): a static analysis that
// determines, as accurately as possible, whether two code snippets
// (tasks) may execute concurrently on the platform.
//
// Three facts refute parallelism, and the analysis uses all of them:
//
//  1. same core — execution on one core is sequential;
//  2. dependence order — a (transitive) dependence path between the
//     tasks orders them;
//  3. disjoint time windows — the schedule is time-triggered (tasks are
//     released no earlier than their static start), so two tasks with
//     non-overlapping [start, finish) windows never overlap.
package mhp

import (
	"argo/internal/sched"
)

// Analysis is a prepared MHP query structure for one schedule.
type Analysis struct {
	in *sched.Input
	s  *sched.Schedule
	// reach is the transitive dependence reachability as one flat n×n
	// row-major matrix (a single allocation instead of n row slices).
	reach []bool
	n     int
}

// New builds the analysis (computes dependence reachability).
func New(in *sched.Input, s *sched.Schedule) *Analysis {
	n := len(in.Tasks)
	reach := make([]bool, n*n)
	for _, d := range in.Deps {
		reach[d.From*n+d.To] = true
	}
	// Warshall over the topological (id) order, row-sliced.
	for k := 0; k < n; k++ {
		kr := reach[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			if reach[i*n+k] {
				ir := reach[i*n : (i+1)*n]
				for j, r := range kr {
					if r {
						ir[j] = true
					}
				}
			}
		}
	}
	return &Analysis{in: in, s: s, reach: reach, n: n}
}

// Ordered reports whether a dependence path orders tasks a and b.
func (an *Analysis) Ordered(a, b int) bool {
	return an.reach[a*an.n+b] || an.reach[b*an.n+a]
}

// MayHappenInParallel reports whether tasks a and b may overlap in time.
// Windows may be overridden (e.g. by the interference fixpoint) via the
// start/finish slices; pass nil to use the schedule's own windows.
func (an *Analysis) MayHappenInParallel(a, b int, start, finish []int64) bool {
	if a == b {
		return false
	}
	pa, pb := an.s.Placements[a], an.s.Placements[b]
	if pa.Core == pb.Core {
		return false
	}
	if an.Ordered(a, b) {
		return false
	}
	sa, fa, sb, fb := pa.Start, pa.Finish, pb.Start, pb.Finish
	if start != nil {
		sa, fa, sb, fb = start[a], finish[a], start[b], finish[b]
	}
	return sa < fb && sb < fa
}

// ParallelSet returns all tasks that may happen in parallel with task t.
func (an *Analysis) ParallelSet(t int, start, finish []int64) []int {
	var out []int
	for o := range an.in.Tasks {
		if an.MayHappenInParallel(t, o, start, finish) {
			out = append(out, o)
		}
	}
	return out
}

// ContenderCores returns the number of distinct other cores that host at
// least one task which may happen in parallel with t and performs shared
// accesses — the contender count for the interference cost model.
func (an *Analysis) ContenderCores(t int, start, finish []int64) int {
	cores := map[int]bool{}
	for _, o := range an.ParallelSet(t, start, finish) {
		if an.in.Tasks[o].SharedAccesses > 0 {
			cores[an.s.Placements[o].Core] = true
		}
	}
	return len(cores)
}

// ContenderCoresScratch is ContenderCores without allocations: seen must
// be a caller-owned scratch slice of at least NumCores length; it is
// reset on entry. The count matches ContenderCores exactly.
func (an *Analysis) ContenderCoresScratch(t int, start, finish []int64, seen []bool) int {
	clear(seen)
	cnt := 0
	for o := range an.in.Tasks {
		if an.in.Tasks[o].SharedAccesses > 0 && an.MayHappenInParallel(t, o, start, finish) {
			if c := an.s.Placements[o].Core; !seen[c] {
				seen[c] = true
				cnt++
			}
		}
	}
	return cnt
}
