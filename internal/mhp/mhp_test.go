package mhp

import (
	"testing"

	"argo/internal/adl"
	"argo/internal/sched"
)

// fixedSchedule builds a hand-written schedule for direct MHP testing.
func fixedSchedule(p *adl.Platform, placements []sched.Placement, deps []sched.Dep, shared []int64) (*sched.Input, *sched.Schedule) {
	in := &sched.Input{Platform: p}
	for i := range placements {
		t := sched.Task{ID: i, WCET: make([]int64, p.NumCores())}
		for c := range t.WCET {
			t.WCET[c] = placements[i].Finish - placements[i].Start
		}
		if shared != nil {
			t.SharedAccesses = shared[i]
		}
		in.Tasks = append(in.Tasks, t)
	}
	in.Deps = deps
	s := &sched.Schedule{Placements: placements, Cores: p.NumCores()}
	for _, pl := range placements {
		if pl.Finish > s.Makespan {
			s.Makespan = pl.Finish
		}
	}
	return in, s
}

func TestWindowOverlapDetection(t *testing.T) {
	p := adl.XentiumPlatform(3)
	in, s := fixedSchedule(p, []sched.Placement{
		{Task: 0, Core: 0, Start: 0, Finish: 100},
		{Task: 1, Core: 1, Start: 50, Finish: 150},  // overlaps 0
		{Task: 2, Core: 2, Start: 100, Finish: 200}, // touches 0's end only
	}, nil, nil)
	an := New(in, s)
	if !an.MayHappenInParallel(0, 1, nil, nil) {
		t.Fatal("overlapping windows on distinct cores must be MHP")
	}
	// Half-open windows: [0,100) and [100,200) do not overlap.
	if an.MayHappenInParallel(0, 2, nil, nil) {
		t.Fatal("back-to-back windows must not be MHP")
	}
	if !an.MayHappenInParallel(1, 2, nil, nil) {
		t.Fatal("1 and 2 overlap")
	}
}

func TestSameCoreNeverParallel(t *testing.T) {
	p := adl.XentiumPlatform(2)
	in, s := fixedSchedule(p, []sched.Placement{
		{Task: 0, Core: 0, Start: 0, Finish: 100},
		{Task: 1, Core: 0, Start: 100, Finish: 200},
	}, nil, nil)
	an := New(in, s)
	if an.MayHappenInParallel(0, 1, nil, nil) {
		t.Fatal("same-core tasks flagged parallel")
	}
}

func TestDependencePathRefutesParallelism(t *testing.T) {
	p := adl.XentiumPlatform(3)
	// Overlapping windows (deliberately inconsistent with the deps —
	// MHP must use the dependence refutation regardless).
	in, s := fixedSchedule(p, []sched.Placement{
		{Task: 0, Core: 0, Start: 0, Finish: 100},
		{Task: 1, Core: 1, Start: 0, Finish: 100},
		{Task: 2, Core: 2, Start: 0, Finish: 100},
	}, []sched.Dep{{From: 0, To: 1}, {From: 1, To: 2}}, nil)
	an := New(in, s)
	if !an.Ordered(0, 1) || !an.Ordered(0, 2) {
		t.Fatal("transitive order missing")
	}
	if an.MayHappenInParallel(0, 2, nil, nil) {
		t.Fatal("transitively ordered tasks must not be MHP")
	}
}

func TestWindowOverride(t *testing.T) {
	p := adl.XentiumPlatform(2)
	in, s := fixedSchedule(p, []sched.Placement{
		{Task: 0, Core: 0, Start: 0, Finish: 10},
		{Task: 1, Core: 1, Start: 100, Finish: 110},
	}, nil, nil)
	an := New(in, s)
	if an.MayHappenInParallel(0, 1, nil, nil) {
		t.Fatal("disjoint static windows")
	}
	// Inflated windows (from the interference fixpoint) overlap.
	start := []int64{0, 50}
	finish := []int64{60, 160}
	if !an.MayHappenInParallel(0, 1, start, finish) {
		t.Fatal("overridden windows must be used")
	}
}

func TestContenderCoresCountsDistinctCoresWithSharedTraffic(t *testing.T) {
	p := adl.XentiumPlatform(4)
	in, s := fixedSchedule(p, []sched.Placement{
		{Task: 0, Core: 0, Start: 0, Finish: 100},
		{Task: 1, Core: 1, Start: 0, Finish: 100},
		{Task: 2, Core: 1, Start: 100, Finish: 200}, // same core as 1, later
		{Task: 3, Core: 2, Start: 0, Finish: 100},   // no shared accesses
		{Task: 4, Core: 3, Start: 0, Finish: 100},
	}, nil, []int64{10, 10, 10, 0, 10})
	an := New(in, s)
	// Task 0's contenders: core 1 (task 1 overlaps) and core 3 (task 4);
	// core 2 hosts only a task with no shared traffic.
	if got := an.ContenderCores(0, nil, nil); got != 2 {
		t.Fatalf("contenders = %d, want 2", got)
	}
	ps := an.ParallelSet(0, nil, nil)
	if len(ps) != 3 { // tasks 1, 3, 4 overlap on other cores
		t.Fatalf("parallel set: %v", ps)
	}
}
