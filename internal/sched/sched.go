// Package sched implements ARGO's static scheduling/mapping stage (paper
// §II-B, §III-C): mapping the task graph onto the multi-core platform and
// computing a static order per core, optimizing the worst-case makespan.
//
// The NP-hard mapping problem is attacked with the combination the paper
// envisions: fast WCET-based list-scheduling heuristics (an upward-rank /
// HEFT-style scheduler, plus a contention-aware variant that penalizes
// co-scheduling shared-memory-heavy tasks) and an exact branch-and-bound
// search for small graphs.
package sched

import (
	"fmt"
	"sort"

	"argo/internal/adl"
	"argo/internal/htg"
)

// Task is one schedulable unit.
type Task struct {
	ID    int
	Label string
	// WCET is the isolated code-level bound per core id.
	WCET []int64
	// SharedAccesses bounds the task's shared-memory accesses.
	SharedAccesses int64
}

// Dep is a precedence edge with its communication volume.
type Dep struct {
	From, To    int
	VolumeBytes int
}

// Input is a scheduling problem.
type Input struct {
	Tasks    []Task
	Deps     []Dep
	Platform *adl.Platform
}

// FromHTG converts an annotated task graph into a scheduling problem.
func FromHTG(g *htg.Graph, p *adl.Platform) *Input {
	in := &Input{Platform: p}
	for _, n := range g.Nodes {
		in.Tasks = append(in.Tasks, Task{
			ID: n.ID, Label: n.Label, WCET: n.WCET, SharedAccesses: n.SharedAccesses,
		})
	}
	for _, e := range g.Edges {
		in.Deps = append(in.Deps, Dep{From: e.From, To: e.To, VolumeBytes: e.VolumeBytes})
	}
	return in
}

// CommCycles bounds the cost of transferring a dependence's buffers when
// producer and consumer run on different cores (DMA through the shared
// memory / NoC); zero on the same core.
func (in *Input) CommCycles(d Dep, fromCore, toCore int) int64 {
	if fromCore == toCore {
		return 0
	}
	return int64(in.Platform.DMACycles(toCore, d.VolumeBytes))
}

// adjacency holds per-task predecessor and successor dependence lists,
// built once per scheduling run so the inner loops of the list scheduler
// and the branch-and-bound search never rescan the full dependence list.
// Per-task lists preserve Deps order, so all iteration orders — and
// therefore all schedules — are identical to the former O(E) scans.
type adjacency struct {
	preds, succs [][]Dep
}

// buildAdjacency groups in.Deps by target and by source in O(V+E),
// packing both groupings into two shared backing arrays.
func buildAdjacency(in *Input) *adjacency {
	n := len(in.Tasks)
	predCnt := make([]int, n)
	succCnt := make([]int, n)
	for _, d := range in.Deps {
		predCnt[d.To]++
		succCnt[d.From]++
	}
	predBuf := make([]Dep, len(in.Deps))
	succBuf := make([]Dep, len(in.Deps))
	adj := &adjacency{preds: make([][]Dep, n), succs: make([][]Dep, n)}
	po, so := 0, 0
	for i := 0; i < n; i++ {
		adj.preds[i] = predBuf[po : po : po+predCnt[i]]
		po += predCnt[i]
		adj.succs[i] = succBuf[so : so : so+succCnt[i]]
		so += succCnt[i]
	}
	for _, d := range in.Deps {
		adj.preds[d.To] = append(adj.preds[d.To], d)
		adj.succs[d.From] = append(adj.succs[d.From], d)
	}
	return adj
}

// Placement is one task's slot in a schedule.
type Placement struct {
	Task   int
	Core   int
	Start  int64
	Finish int64
}

// Schedule is a static time-triggered schedule.
type Schedule struct {
	// Placements is indexed by task id.
	Placements []Placement
	Makespan   int64
	Cores      int
	// Policy records which algorithm produced the schedule.
	Policy Policy
}

// CoreOrder returns task ids on one core in start order.
func (s *Schedule) CoreOrder(core int) []int {
	var ids []int
	for _, pl := range s.Placements {
		if pl.Core == core {
			ids = append(ids, pl.Task)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return s.Placements[ids[i]].Start < s.Placements[ids[j]].Start })
	return ids
}

// Validate checks precedence (with communication) and core exclusivity.
func (s *Schedule) Validate(in *Input) error {
	if len(s.Placements) != len(in.Tasks) {
		return fmt.Errorf("sched: %d placements for %d tasks", len(s.Placements), len(in.Tasks))
	}
	for _, pl := range s.Placements {
		if pl.Core < 0 || pl.Core >= in.Platform.NumCores() {
			return fmt.Errorf("sched: task %d on invalid core %d", pl.Task, pl.Core)
		}
		dur := in.Tasks[pl.Task].WCET[pl.Core]
		if pl.Finish-pl.Start < dur {
			return fmt.Errorf("sched: task %d window %d shorter than WCET %d", pl.Task, pl.Finish-pl.Start, dur)
		}
		if pl.Finish > s.Makespan {
			return fmt.Errorf("sched: task %d finishes at %d after makespan %d", pl.Task, pl.Finish, s.Makespan)
		}
	}
	for _, d := range in.Deps {
		from, to := s.Placements[d.From], s.Placements[d.To]
		need := from.Finish + in.CommCycles(d, from.Core, to.Core)
		if to.Start < need {
			return fmt.Errorf("sched: dependence %d->%d violated: start %d < %d", d.From, d.To, to.Start, need)
		}
	}
	for c := 0; c < in.Platform.NumCores(); c++ {
		order := s.CoreOrder(c)
		for i := 1; i < len(order); i++ {
			prev, cur := s.Placements[order[i-1]], s.Placements[order[i]]
			if cur.Start < prev.Finish {
				return fmt.Errorf("sched: tasks %d and %d overlap on core %d", prev.Task, cur.Task, c)
			}
		}
	}
	return nil
}

// Policy selects the scheduling algorithm.
type Policy int

// Scheduling policies.
const (
	// ListOblivious is HEFT-style list scheduling that ignores
	// shared-resource contention (the average-case-oriented baseline).
	ListOblivious Policy = iota
	// ListContentionAware penalizes placements that overlap
	// shared-memory-heavy tasks on other cores (the ARGO approach:
	// reduce the number of contenders at any point in time).
	ListContentionAware
	// BranchBound searches core assignments exhaustively with
	// branch-and-bound, seeded by the contention-aware heuristic.
	BranchBound
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case ListOblivious:
		return "list-oblivious"
	case ListContentionAware:
		return "list-contention-aware"
	case BranchBound:
		return "branch-and-bound"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Run schedules the input with the selected policy.
func Run(in *Input, pol Policy) (*Schedule, error) {
	if err := checkInput(in); err != nil {
		return nil, err
	}
	adj := buildAdjacency(in)
	switch pol {
	case ListOblivious:
		return listSchedule(in, adj, false), nil
	case ListContentionAware:
		return listSchedule(in, adj, true), nil
	case BranchBound:
		return branchBound(in, adj), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %v", pol)
}

func checkInput(in *Input) error {
	k := in.Platform.NumCores()
	for i, t := range in.Tasks {
		if t.ID != i {
			return fmt.Errorf("sched: task %d has id %d (must be dense)", i, t.ID)
		}
		if len(t.WCET) != k {
			return fmt.Errorf("sched: task %d has %d WCETs for %d cores", i, len(t.WCET), k)
		}
	}
	for _, d := range in.Deps {
		if d.From < 0 || d.To >= len(in.Tasks) || d.From >= d.To {
			return fmt.Errorf("sched: bad dependence %d->%d", d.From, d.To)
		}
	}
	return nil
}

// meanCommCycles is the mean communication cost of a dependence over all
// ordered pairs of distinct cores: sum over from != to of
// CommCycles(d, from, to), divided by k(k-1). CommCycles depends only on
// the destination core (DMA cost is charged where the data lands), so
// every destination contributes k-1 equal terms and the mean collapses
// to the destination average.
func meanCommCycles(in *Input, d Dep) float64 {
	k := in.Platform.NumCores()
	if k == 1 {
		return 0
	}
	var sum float64
	for to := 0; to < k; to++ {
		sum += float64(in.CommCycles(d, (to+1)%k, to))
	}
	return sum / float64(k)
}

// upwardRanks computes HEFT upward ranks with mean WCET and mean
// communication cost.
func upwardRanks(in *Input, adj *adjacency) []float64 {
	k := in.Platform.NumCores()
	meanW := func(t Task) float64 {
		s := 0.0
		for _, w := range t.WCET {
			s += float64(w)
		}
		return s / float64(k)
	}
	ranks := make([]float64, len(in.Tasks))
	for i := len(in.Tasks) - 1; i >= 0; i-- {
		best := 0.0
		for _, d := range adj.succs[i] {
			r := meanCommCycles(in, d) + ranks[d.To]
			if r > best {
				best = r
			}
		}
		ranks[i] = meanW(in.Tasks[i]) + best
	}
	return ranks
}

// listSchedule is insertion-based HEFT: tasks in decreasing upward rank,
// each placed on the core and idle slot minimizing its (optionally
// contention-penalized) finish time. Insertion lets a later-ranked task
// fill a gap a communication delay left open.
func listSchedule(in *Input, adj *adjacency, aware bool) *Schedule {
	k := in.Platform.NumCores()
	ranks := upwardRanks(in, adj)
	order := make([]int, len(in.Tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if ranks[order[a]] != ranks[order[b]] {
			return ranks[order[a]] > ranks[order[b]]
		}
		return order[a] < order[b]
	})
	s := &Schedule{Placements: make([]Placement, len(in.Tasks)), Cores: k}
	if aware {
		s.Policy = ListContentionAware
	}
	// busy[c] holds the core's placements sorted by start time;
	// sharedBusy[c] only those with shared-memory accesses, so the
	// contention penalty can probe overlap in O(log n) per core instead
	// of rescanning every placed task.
	busy := make([][]Placement, k)
	var sharedBusy [][]Placement
	if aware {
		sharedBusy = make([][]Placement, k)
	}
	for _, t := range order {
		bestCore, bestStart, bestScore := -1, int64(0), int64(0)
		for c := 0; c < k; c++ {
			ready := int64(0)
			for _, d := range adj.preds[t] {
				p := s.Placements[d.From]
				r := p.Finish + in.CommCycles(d, p.Core, c)
				if r > ready {
					ready = r
				}
			}
			est := earliestSlot(busy[c], ready, in.Tasks[t].WCET[c])
			finish := est + in.Tasks[t].WCET[c]
			score := finish
			if aware {
				score += contentionPenalty(in, sharedBusy, t, c, est, finish)
			}
			if bestCore < 0 || score < bestScore {
				bestCore, bestStart, bestScore = c, est, score
			}
		}
		fin := bestStart + in.Tasks[t].WCET[bestCore]
		pl := Placement{Task: t, Core: bestCore, Start: bestStart, Finish: fin}
		s.Placements[t] = pl
		busy[bestCore] = insertSorted(busy[bestCore], pl)
		if aware && in.Tasks[t].SharedAccesses > 0 {
			sharedBusy[bestCore] = insertSorted(sharedBusy[bestCore], pl)
		}
		if fin > s.Makespan {
			s.Makespan = fin
		}
	}
	return s
}

// earliestSlot returns the earliest start >= ready at which a task of the
// given duration fits into the core's idle gaps (busy sorted by start).
func earliestSlot(busy []Placement, ready, dur int64) int64 {
	start := ready
	for _, b := range busy {
		if start+dur <= b.Start {
			return start // fits in the gap before b
		}
		if b.Finish > start {
			start = b.Finish
		}
	}
	return start
}

// insertSorted inserts pl keeping the slice sorted by start time.
func insertSorted(busy []Placement, pl Placement) []Placement {
	i := sort.Search(len(busy), func(i int) bool { return busy[i].Start >= pl.Start })
	busy = append(busy, Placement{})
	copy(busy[i+1:], busy[i:])
	busy[i] = pl
	return busy
}

// contentionPenalty estimates the system-level inflation of placing task
// t on core c in [start, finish): t's own shared accesses delayed by the
// distinct other cores running overlapping shared-memory-active tasks
// (the same model the system-level analysis applies afterwards).
// sharedBusy holds, per core, the shared-memory-active placements sorted
// by start time; a core contends iff any of its intervals overlaps the
// window, which one binary search decides.
func contentionPenalty(in *Input, sharedBusy [][]Placement, t, c int, start, finish int64) int64 {
	if in.Tasks[t].SharedAccesses == 0 {
		return 0
	}
	contenders := 0
	for oc := range sharedBusy {
		if oc != c && overlapsWindow(sharedBusy[oc], start, finish) {
			contenders++
		}
	}
	if contenders == 0 {
		return 0
	}
	delay := int64(in.Platform.AccessInterferenceDelay(contenders))
	return in.Tasks[t].SharedAccesses * delay
}

// overlapsWindow reports whether any placement intersects [start, finish).
// busy is sorted by start and pairwise non-overlapping (one core's
// timeline), so it is also sorted by finish: the first interval ending
// after the window opens is the only overlap candidate.
func overlapsWindow(busy []Placement, start, finish int64) bool {
	i := sort.Search(len(busy), func(i int) bool { return busy[i].Finish > start })
	return i < len(busy) && busy[i].Start < finish
}

// branchBound searches all core assignments (tasks in topological id
// order, earliest-start placement) with pruning, seeded by the
// contention-aware heuristic as incumbent.
func branchBound(in *Input, adj *adjacency) *Schedule {
	k := in.Platform.NumCores()
	incumbent := listSchedule(in, adj, true)
	best := incumbent.Makespan
	bestAssign := make([]int, len(in.Tasks))
	for i, pl := range incumbent.Placements {
		bestAssign[i] = pl.Core
	}
	// Remaining-work lower bound: sum of min WCET of remaining tasks / k.
	minW := make([]int64, len(in.Tasks))
	for i, t := range in.Tasks {
		m := t.WCET[0]
		for _, w := range t.WCET {
			if w < m {
				m = w
			}
		}
		minW[i] = m
	}
	suffix := make([]int64, len(in.Tasks)+1)
	for i := len(in.Tasks) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + minW[i]
	}
	assign := make([]int, len(in.Tasks))
	finish := make([]int64, len(in.Tasks))
	coreAvail := make([]int64, k)
	nodes := 0
	const nodeCap = 2_000_000
	var dfs func(i int, makespan int64)
	dfs = func(i int, makespan int64) {
		nodes++
		if nodes > nodeCap {
			return
		}
		if i == len(in.Tasks) {
			if makespan < best {
				best = makespan
				copy(bestAssign, assign)
			}
			return
		}
		// Lower bound: even spreading the cheapest remaining work over
		// all cores cannot finish before this.
		lb := makespan
		var minAvail int64 = 1<<62 - 1
		for _, a := range coreAvail {
			if a < minAvail {
				minAvail = a
			}
		}
		if l := minAvail + suffix[i]/int64(k); l > lb {
			lb = l
		}
		if lb >= best {
			return
		}
		for c := 0; c < k; c++ {
			est := coreAvail[c]
			for _, d := range adj.preds[i] {
				ready := finish[d.From] + in.CommCycles(d, assign[d.From], c)
				if ready > est {
					est = ready
				}
			}
			fin := est + in.Tasks[i].WCET[c]
			if fin >= best {
				continue
			}
			assign[i] = c
			finish[i] = fin
			savedAvail := coreAvail[c]
			coreAvail[c] = fin
			m2 := makespan
			if fin > m2 {
				m2 = fin
			}
			dfs(i+1, m2)
			coreAvail[c] = savedAvail
		}
	}
	dfs(0, 0)
	// Rebuild the schedule from the best assignment. The search places
	// tasks append-only in id order; the insertion-based incumbent may
	// still be better — keep whichever wins.
	s := replay(in, adj, bestAssign)
	if incumbent.Makespan < s.Makespan {
		s = incumbent
	}
	s.Policy = BranchBound
	return s
}

// replay builds the earliest-start schedule for a fixed core assignment
// with tasks placed in id (topological) order.
func replay(in *Input, adj *adjacency, assign []int) *Schedule {
	k := in.Platform.NumCores()
	s := &Schedule{Placements: make([]Placement, len(in.Tasks)), Cores: k}
	coreAvail := make([]int64, k)
	for t := range in.Tasks {
		c := assign[t]
		est := coreAvail[c]
		for _, d := range adj.preds[t] {
			p := s.Placements[d.From]
			ready := p.Finish + in.CommCycles(d, p.Core, c)
			if ready > est {
				est = ready
			}
		}
		fin := est + in.Tasks[t].WCET[c]
		s.Placements[t] = Placement{Task: t, Core: c, Start: est, Finish: fin}
		coreAvail[c] = fin
		if fin > s.Makespan {
			s.Makespan = fin
		}
	}
	return s
}
