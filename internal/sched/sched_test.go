package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"argo/internal/adl"
)

// mkInput builds a scheduling problem with uniform task WCETs.
func mkInput(p *adl.Platform, wcets []int64, deps []Dep, shared []int64) *Input {
	in := &Input{Platform: p}
	for i, w := range wcets {
		t := Task{ID: i, WCET: make([]int64, p.NumCores())}
		for c := range t.WCET {
			t.WCET[c] = w
		}
		if shared != nil {
			t.SharedAccesses = shared[i]
		}
		in.Tasks = append(in.Tasks, t)
	}
	in.Deps = deps
	return in
}

func TestIndependentTasksSpread(t *testing.T) {
	p := adl.XentiumPlatform(4)
	in := mkInput(p, []int64{100, 100, 100, 100}, nil, nil)
	s, err := Run(in, ListOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 100 {
		t.Fatalf("makespan = %d, want 100 (perfect spread)", s.Makespan)
	}
	used := map[int]bool{}
	for _, pl := range s.Placements {
		used[pl.Core] = true
	}
	if len(used) != 4 {
		t.Fatalf("used %d cores", len(used))
	}
}

func TestChainStaysSequential(t *testing.T) {
	p := adl.XentiumPlatform(4)
	in := mkInput(p, []int64{50, 60, 70}, []Dep{{From: 0, To: 1}, {From: 1, To: 2}}, nil)
	s, err := Run(in, ListOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 180 {
		t.Fatalf("makespan = %d, want 180", s.Makespan)
	}
	// Zero-volume chain: everything should land on one core (no comm
	// advantage in moving).
	c0 := s.Placements[0].Core
	for _, pl := range s.Placements {
		if pl.Core != c0 {
			t.Fatalf("chain split across cores: %+v", s.Placements)
		}
	}
}

func TestCommunicationCostRespected(t *testing.T) {
	p := adl.XentiumPlatform(2)
	// Producer -> consumer with a large buffer: scheduling the consumer
	// on the other core must include DMA cycles in its start.
	in := mkInput(p, []int64{100, 100}, []Dep{{From: 0, To: 1, VolumeBytes: 1 << 16}}, nil)
	s, err := Run(in, ListOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if s.Placements[1].Core != s.Placements[0].Core {
		t.Fatal("with huge comm cost the consumer should stay on the producer's core")
	}
}

func TestForkJoinSpeedup(t *testing.T) {
	p := adl.XentiumPlatform(4)
	// 0 -> {1,2,3,4} -> 5 diamond.
	deps := []Dep{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}, {From: 0, To: 4},
		{From: 1, To: 5}, {From: 2, To: 5}, {From: 3, To: 5}, {From: 4, To: 5},
	}
	in := mkInput(p, []int64{10, 100, 100, 100, 100, 10}, deps, nil)
	s, err := Run(in, ListOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	// Sequential would be 420; 4 cores should be 120.
	if s.Makespan != 120 {
		t.Fatalf("makespan = %d, want 120", s.Makespan)
	}
}

func TestContentionAwareAvoidsOverlappingHeavyTasks(t *testing.T) {
	p := adl.XentiumPlatform(4)
	// Four independent tasks, all hammering shared memory. Oblivious
	// spreads them maximally (4-way overlap); the aware scheduler should
	// accept some serialization to reduce contenders.
	shared := []int64{1000, 1000, 1000, 1000}
	in := mkInput(p, []int64{100, 100, 100, 100}, nil, shared)
	obl, _ := Run(in, ListOblivious)
	aware, _ := Run(in, ListContentionAware)
	if err := aware.Validate(in); err != nil {
		t.Fatal(err)
	}
	overlapCores := func(s *Schedule) int {
		// Count max simultaneous distinct cores running heavy tasks.
		best := 0
		for _, pl := range s.Placements {
			n := 0
			seen := map[int]bool{}
			for _, q := range s.Placements {
				if q.Start < pl.Finish && pl.Start < q.Finish && !seen[q.Core] {
					seen[q.Core] = true
					n++
				}
			}
			if n > best {
				best = n
			}
		}
		return best
	}
	if overlapCores(aware) >= overlapCores(obl) {
		t.Fatalf("aware overlap %d should be < oblivious %d", overlapCores(aware), overlapCores(obl))
	}
}

func TestBranchBoundNeverWorseThanHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		p := adl.XentiumPlatform(2 + rng.Intn(2))
		n := 4 + rng.Intn(5)
		wcets := make([]int64, n)
		for i := range wcets {
			wcets[i] = int64(20 + rng.Intn(200))
		}
		var deps []Dep
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					deps = append(deps, Dep{From: i, To: j, VolumeBytes: rng.Intn(256)})
				}
			}
		}
		in := mkInput(p, wcets, deps, nil)
		h, err := Run(in, ListContentionAware)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(in, BranchBound)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Validate(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if b.Makespan > h.Makespan {
			t.Fatalf("trial %d: B&B %d worse than heuristic %d", trial, b.Makespan, h.Makespan)
		}
	}
}

func TestBranchBoundFindsOptimum(t *testing.T) {
	p := adl.XentiumPlatform(2)
	// Partition problem in disguise: {8, 7, 6, 5, 4} on 2 cores; optimum
	// makespan is 15 (8+7 | 6+5+4).
	in := mkInput(p, []int64{8, 7, 6, 5, 4}, nil, nil)
	s, err := Run(in, BranchBound)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 15 {
		t.Fatalf("makespan = %d, want 15", s.Makespan)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	p := adl.XentiumPlatform(2)
	in := mkInput(p, []int64{10, 10}, []Dep{{From: 0, To: 1}}, nil)
	s, err := Run(in, ListOblivious)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: start consumer before producer finishes.
	s.Placements[1].Start = 0
	s.Placements[1].Finish = 10
	if err := s.Validate(in); err == nil {
		t.Fatal("corrupted schedule must fail validation")
	}
}

func TestSingleCoreIsSequential(t *testing.T) {
	p := adl.XentiumPlatform(1)
	in := mkInput(p, []int64{10, 20, 30}, nil, nil)
	for _, pol := range []Policy{ListOblivious, ListContentionAware, BranchBound} {
		s, err := Run(in, pol)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan != 60 {
			t.Fatalf("%v: makespan = %d, want 60", pol, s.Makespan)
		}
		if err := s.Validate(in); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInputValidation(t *testing.T) {
	p := adl.XentiumPlatform(2)
	in := mkInput(p, []int64{10, 10}, []Dep{{From: 1, To: 0}}, nil)
	if _, err := Run(in, ListOblivious); err == nil {
		t.Fatal("backward dependence must be rejected")
	}
	in2 := &Input{Platform: p, Tasks: []Task{{ID: 0, WCET: []int64{1}}}}
	if _, err := Run(in2, ListOblivious); err == nil {
		t.Fatal("wrong WCET arity must be rejected")
	}
}

// Property: every policy yields a valid schedule on random DAGs, and
// more cores never hurt the list schedulers' makespan... (not guaranteed
// for HEFT in theory, so we only check validity plus makespan >= critical
// path lower bound).
func TestSchedulesValidOnRandomDAGsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		p := adl.XentiumPlatform(k)
		n := 2 + rng.Intn(8)
		wcets := make([]int64, n)
		for i := range wcets {
			wcets[i] = int64(1 + rng.Intn(100))
		}
		var deps []Dep
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.25 {
					deps = append(deps, Dep{From: i, To: j, VolumeBytes: rng.Intn(64)})
				}
			}
		}
		in := mkInput(p, wcets, deps, nil)
		// Critical path (no comm) is a lower bound for any schedule.
		dist := make([]int64, n)
		var cp int64
		for i := 0; i < n; i++ {
			d := dist[i] + wcets[i]
			for _, dep := range deps {
				if dep.From == i && d > dist[dep.To] {
					dist[dep.To] = d
				}
			}
			if d > cp {
				cp = d
			}
		}
		for _, pol := range []Policy{ListOblivious, ListContentionAware, BranchBound} {
			s, err := Run(in, pol)
			if err != nil {
				return false
			}
			if s.Validate(in) != nil {
				return false
			}
			if s.Makespan < cp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	if ListOblivious.String() == "" || ListContentionAware.String() == "" || BranchBound.String() == "" {
		t.Fatal("policy names")
	}
}

func TestHeterogeneousMappingPrefersFastCores(t *testing.T) {
	p := adl.Builtin("hetero-1f3s")
	// One long task and three short ones; per-core WCETs reflect core speed.
	in := &Input{Platform: p}
	long := Task{ID: 0, WCET: []int64{300, 900, 900, 900}}
	in.Tasks = append(in.Tasks, long)
	for i := 1; i < 4; i++ {
		in.Tasks = append(in.Tasks, Task{ID: i, WCET: []int64{50, 150, 150, 150}})
	}
	for _, pol := range []Policy{ListOblivious, ListContentionAware, BranchBound} {
		s, err := Run(in, pol)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(in); err != nil {
			t.Fatal(err)
		}
		if s.Placements[0].Core != 0 {
			t.Fatalf("%v: long task on slow core %d", pol, s.Placements[0].Core)
		}
	}
	// And a heterogeneous platform must beat an all-slow one.
	allSlow := adl.Builtin("hetero-0f4s")
	inSlow := &Input{Platform: allSlow}
	inSlow.Tasks = append(inSlow.Tasks, Task{ID: 0, WCET: []int64{900, 900, 900, 900}})
	for i := 1; i < 4; i++ {
		inSlow.Tasks = append(inSlow.Tasks, Task{ID: i, WCET: []int64{150, 150, 150, 150}})
	}
	sh, _ := Run(in, BranchBound)
	ss, _ := Run(inSlow, BranchBound)
	if sh.Makespan >= ss.Makespan {
		t.Fatalf("hetero %d should beat all-slow %d", sh.Makespan, ss.Makespan)
	}
}

func TestMeanCommCyclesIsTrueMean(t *testing.T) {
	// On a NoC platform the DMA cost depends on the destination tile, so
	// the mean over all ordered distinct-core pairs differs from any
	// single pair. Pin the semantics against the brute-force definition.
	for _, p := range []*adl.Platform{
		adl.Leon3TilePlatform(2, 2),
		adl.Leon3TilePlatform(3, 2),
		adl.XentiumPlatform(4),
		adl.XentiumPlatform(1),
	} {
		in := &Input{Platform: p}
		d := Dep{From: 0, To: 1, VolumeBytes: 4096}
		k := p.NumCores()
		want := 0.0
		if k > 1 {
			sum := 0.0
			pairs := 0
			for from := 0; from < k; from++ {
				for to := 0; to < k; to++ {
					if from == to {
						continue
					}
					sum += float64(in.CommCycles(d, from, to))
					pairs++
				}
			}
			want = sum / float64(pairs)
		}
		if got := meanCommCycles(in, d); got != want {
			t.Fatalf("%d cores: meanCommCycles = %g, brute-force mean = %g", k, got, want)
		}
	}
}

func TestMeanCommCyclesVariesByDestinationOnNoC(t *testing.T) {
	// Guard against regressing to a single-pair "mean": on a 3x2 tile
	// NoC, the mean hop distance is fractional, so the true mean cannot
	// equal the 0->1 pair cost. (On a 2x2 grid the mean hop count
	// happens to coincide with the 0->1 hop count, so that grid cannot
	// distinguish the implementations.)
	p := adl.Leon3TilePlatform(3, 2)
	in := &Input{Platform: p}
	d := Dep{From: 0, To: 1, VolumeBytes: 4096}
	distinct := map[int64]bool{}
	for to := 0; to < p.NumCores(); to++ {
		distinct[in.CommCycles(d, (to+1)%p.NumCores(), to)] = true
	}
	if len(distinct) < 2 {
		t.Skip("platform has uniform DMA costs; nothing to distinguish")
	}
	mean := meanCommCycles(in, d)
	if mean == float64(in.CommCycles(d, 0, 1)) {
		t.Fatalf("mean %g equals the single 0->1 pair cost; true mean expected", mean)
	}
}
