package sched

import (
	"math/rand"
	"sort"
	"testing"

	"argo/internal/adl"
)

// This file holds the property-based schedule-validity layer (see
// docs/TESTING.md): seeded random DAGs across shared-bus and NoC
// platforms, checked against an oracle written independently of
// Schedule.Validate so a bug in the production checker cannot mask a
// bug in the schedulers.

// propertyPlatforms mixes shared-bus Xentium clusters with NoC-based
// Leon3 tiles, so the dependence oracle also exercises DMA-through-NoC
// transfer costs.
var propertyPlatforms = []string{"xentium2", "xentium4", "leon3-2x2", "leon3-4x4"}

// randomProblem draws a layered DAG with per-core-heterogeneous WCETs,
// mixed communication volumes, and a spread of shared-access weights.
func randomProblem(rng *rand.Rand, p *adl.Platform) *Input {
	k := p.NumCores()
	n := 2 + rng.Intn(9)
	in := &Input{Platform: p}
	for i := 0; i < n; i++ {
		t := Task{ID: i, WCET: make([]int64, k), SharedAccesses: int64(rng.Intn(300))}
		base := int64(10 + rng.Intn(200))
		for c := range t.WCET {
			t.WCET[c] = base + int64(rng.Intn(40))
		}
		in.Tasks = append(in.Tasks, t)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				in.Deps = append(in.Deps, Dep{From: i, To: j, VolumeBytes: rng.Intn(4096)})
			}
		}
	}
	return in
}

// checkScheduleOracle re-derives validity from first principles:
// dense one-placement-per-task indexing, windows at least as long as
// the assigned core's WCET, no two tasks overlapping on one core,
// every dependence delayed by the producer finish plus the transfer
// cost between the assigned cores, and a makespan that is exactly the
// latest finish.
func checkScheduleOracle(t *testing.T, in *Input, s *Schedule) {
	t.Helper()
	if len(s.Placements) != len(in.Tasks) {
		t.Fatalf("%d placements for %d tasks", len(s.Placements), len(in.Tasks))
	}
	var latest int64
	for i, pl := range s.Placements {
		if pl.Task != i {
			t.Fatalf("placement %d holds task %d (index must be task id)", i, pl.Task)
		}
		if pl.Core < 0 || pl.Core >= in.Platform.NumCores() {
			t.Fatalf("task %d on core %d of %d", i, pl.Core, in.Platform.NumCores())
		}
		if pl.Start < 0 {
			t.Fatalf("task %d starts at %d", i, pl.Start)
		}
		if got, need := pl.Finish-pl.Start, in.Tasks[i].WCET[pl.Core]; got < need {
			t.Fatalf("task %d window %d < WCET %d on core %d", i, got, need, pl.Core)
		}
		if pl.Finish > latest {
			latest = pl.Finish
		}
	}
	if s.Makespan != latest {
		t.Fatalf("makespan %d, latest finish %d", s.Makespan, latest)
	}
	// Core exclusivity: sort each core's placements by start and demand
	// disjoint half-open windows.
	perCore := make([][]Placement, in.Platform.NumCores())
	for _, pl := range s.Placements {
		perCore[pl.Core] = append(perCore[pl.Core], pl)
	}
	for c, pls := range perCore {
		sort.Slice(pls, func(i, j int) bool { return pls[i].Start < pls[j].Start })
		for i := 1; i < len(pls); i++ {
			if pls[i].Start < pls[i-1].Finish {
				t.Fatalf("core %d runs tasks %d and %d at once ([%d,%d) vs [%d,%d))",
					c, pls[i-1].Task, pls[i].Task,
					pls[i-1].Start, pls[i-1].Finish, pls[i].Start, pls[i].Finish)
			}
		}
	}
	// Dependences: the consumer may not start before the producer's
	// finish plus the cross-core transfer (DMA through the shared
	// memory or the NoC; zero when co-located).
	for _, d := range in.Deps {
		from, to := s.Placements[d.From], s.Placements[d.To]
		comm := int64(0)
		if from.Core != to.Core {
			comm = int64(in.Platform.DMACycles(to.Core, d.VolumeBytes))
		}
		if to.Start < from.Finish+comm {
			t.Fatalf("dependence %d->%d violated: consumer starts %d, producer finishes %d + %d transfer cycles",
				d.From, d.To, to.Start, from.Finish, comm)
		}
	}
}

// TestScheduleValidityProperties: every policy must produce a schedule
// the independent oracle accepts, on seeded random DAGs over every
// property platform. Branch-and-bound is restricted to instances small
// enough for the exact search.
func TestScheduleValidityProperties(t *testing.T) {
	for _, name := range propertyPlatforms {
		p := adl.Builtin(name)
		if p == nil {
			t.Fatalf("unknown builtin platform %q", name)
		}
		rng := rand.New(rand.NewSource(int64(len(name)) * 1009))
		for trial := 0; trial < 30; trial++ {
			in := randomProblem(rng, p)
			policies := []Policy{ListOblivious, ListContentionAware}
			if p.NumCores() <= 4 && len(in.Tasks) <= 8 {
				policies = append(policies, BranchBound)
			}
			for _, pol := range policies {
				s, err := Run(in, pol)
				if err != nil {
					t.Fatalf("%s trial %d %v: %v", name, trial, pol, err)
				}
				checkScheduleOracle(t, in, s)
				// The production checker must agree with the oracle.
				if err := s.Validate(in); err != nil {
					t.Fatalf("%s trial %d %v: Validate rejects an oracle-valid schedule: %v",
						name, trial, pol, err)
				}
			}
		}
	}
}

// TestContentionPenaltyMonotoneInContenders: adding another core with
// an overlapping shared-memory-active placement must never lower the
// contention penalty, and the penalty must match the platform's
// interference model exactly at each contender count.
func TestContentionPenaltyMonotoneInContenders(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(7)
		p := adl.XentiumPlatform(k)
		accesses := int64(1 + rng.Intn(500))
		in := &Input{Platform: p, Tasks: []Task{{ID: 0, WCET: make([]int64, k), SharedAccesses: accesses}}}
		start := int64(rng.Intn(1000))
		finish := start + int64(1+rng.Intn(1000))

		sharedBusy := make([][]Placement, k)
		if pen := contentionPenalty(in, sharedBusy, 0, 0, start, finish); pen != 0 {
			t.Fatalf("no contenders must cost 0, got %d", pen)
		}
		prev := int64(0)
		for oc := 1; oc < k; oc++ {
			sharedBusy[oc] = []Placement{{
				Task: oc, Core: oc,
				Start:  start - int64(rng.Intn(50)),
				Finish: finish + int64(rng.Intn(50)),
			}}
			pen := contentionPenalty(in, sharedBusy, 0, 0, start, finish)
			want := accesses * int64(p.AccessInterferenceDelay(oc))
			if pen != want {
				t.Fatalf("trial %d: %d contenders: penalty %d, model says %d", trial, oc, pen, want)
			}
			if pen < prev {
				t.Fatalf("trial %d: penalty dropped from %d to %d when contender %d joined",
					trial, prev, pen, oc)
			}
			if pen <= 0 {
				t.Fatalf("trial %d: overlapping contender %d yields non-positive penalty %d", trial, oc, pen)
			}
			prev = pen
		}

		// Placements that do not intersect the window contribute nothing:
		// pushing every contender's interval past the window must zero
		// the penalty again.
		for oc := 1; oc < k; oc++ {
			sharedBusy[oc] = []Placement{{Task: oc, Core: oc, Start: finish, Finish: finish + 10}}
		}
		if pen := contentionPenalty(in, sharedBusy, 0, 0, start, finish); pen != 0 {
			t.Fatalf("trial %d: non-overlapping contenders must cost 0, got %d", trial, pen)
		}
		// A task with no shared accesses pays nothing regardless.
		in.Tasks[0].SharedAccesses = 0
		sharedBusy[1] = []Placement{{Task: 1, Core: 1, Start: start, Finish: finish}}
		if pen := contentionPenalty(in, sharedBusy, 0, 0, start, finish); pen != 0 {
			t.Fatalf("trial %d: zero-access task penalized %d", trial, pen)
		}
	}
}
