package par

// RuntimeHeader is the C header of the WCET-aware programming model the
// generated code targets (argo_rt.h): time-triggered release, counting
// signals, DMA staging, barriers, and the math intrinsics. On the real
// platforms these map to the board support package; the reference
// implementation below is plain C so the generated code is inspectable
// and compilable off-target.
const RuntimeHeader = `/* argo_rt.h — ARGO WCET-aware programming model runtime interface. */
#ifndef ARGO_RT_H
#define ARGO_RT_H

#include <math.h>

/* Column-major linear indexing helper (Scilab semantics). */
#define ARGO_LIN(buf, rows, cols, k) \
    ((buf)[((k) - 1) % (rows)][((k) - 1) / (rows)])

/* Synchronization: one counting signal per cross-core dependence. */
void argo_signal(int sig);
void argo_wait(int sig);

/* All cores rendezvous (used around the DMA staging phases). */
void argo_barrier(void);

/* Time-triggered release: spin until the core-local cycle counter
 * reaches the statically computed release time. */
void argo_release_at(long long cycles);

/* DMA staging between shared memory and the core-local scratchpad. */
void argo_dma_in(void *buf, int bytes);
void argo_dma_out(void *buf, int bytes);

/* Math intrinsics with fixed worst-case latency on the target cores. */
static inline double argo_abs(double x)    { return fabs(x); }
static inline double argo_sqrt(double x)   { return sqrt(x); }
static inline double argo_floor(double x)  { return floor(x); }
static inline double argo_ceil(double x)   { return ceil(x); }
static inline double argo_round(double x)  { return round(x); }
static inline double argo_sign(double x)   { return (x > 0) - (x < 0); }
static inline double argo_sin(double x)    { return sin(x); }
static inline double argo_cos(double x)    { return cos(x); }
static inline double argo_tan(double x)    { return tan(x); }
static inline double argo_exp(double x)    { return exp(x); }
static inline double argo_log(double x)    { return log(x); }
static inline double argo_atan(double x)   { return atan(x); }
static inline double argo_atan2(double y, double x) { return atan2(y, x); }
static inline double argo_min(double a, double b)   { return a < b ? a : b; }
static inline double argo_max(double a, double b)   { return a > b ? a : b; }
static inline double argo_modulo(double a, double b) { return fmod(a, b); }

#endif /* ARGO_RT_H */
`
