package par

import (
	"fmt"
	"strings"
	"testing"

	"argo/internal/adl"
	"argo/internal/htg"
	"argo/internal/ir"
	"argo/internal/sched"
	"argo/internal/scil"
	"argo/internal/syswcet"
	"argo/internal/transform"
	"argo/internal/wcet"
)

const pipelineSrc = `
function [outa, outb] = f(img)
  h = size(img, 1)
  w = size(img, 2)
  tmp = zeros(h, w)
  outa = zeros(h, w)
  outb = zeros(h, w)
  for i = 1:h
    for j = 1:w
      tmp(i, j) = img(i, j) * 2
    end
  end
  for i = 1:h
    for j = 1:w
      outa(i, j) = tmp(i, j) + 1
    end
  end
  for i = 1:h
    for j = 1:w
      outb(i, j) = tmp(i, j) - 1
    end
  end
endfunction`

// buildAll runs the full pipeline up to the parallel program.
func buildAll(t *testing.T, src string, platform *adl.Platform, spm bool, args ...ir.ArgSpec) *Program {
	t.Helper()
	sp, err := scil.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if errs := scil.Check(sp, scil.CheckWCET); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	prog, err := ir.Lower(sp, "f", args)
	if err != nil {
		t.Fatal(err)
	}
	opt := transform.Options{Fold: true}
	if spm {
		opt.SPM = &transform.SPMOptions{
			CapacityBytes:  platform.Cores[0].SPM.SizeBytes,
			SharedLatency:  platform.MaxSharedAccessIsolated(),
			SPMLatency:     platform.Cores[0].SPM.LatencyCycles,
			DMACostPerByte: platform.DMA.CyclesPerByte,
		}
	}
	transform.Apply(prog, opt)
	g := htg.Build(prog)
	models := make([]wcet.CostModel, platform.NumCores())
	for c := range models {
		models[c] = wcet.ModelFor(platform, c)
	}
	htg.Annotate(g, models)
	in := sched.FromHTG(g, platform)
	s, err := sched.Run(in, sched.ListContentionAware)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := syswcet.Analyze(in, s)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Build(prog, g, in, s, sys, platform)
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func TestBuildValidates(t *testing.T) {
	pp := buildAll(t, pipelineSrc, adl.XentiumPlatform(4), false, ir.MatrixArg(8, 8))
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossCoreDependencesSynchronized(t *testing.T) {
	pp := buildAll(t, pipelineSrc, adl.XentiumPlatform(4), false, ir.MatrixArg(8, 8))
	crossCore := 0
	for _, d := range pp.Input.Deps {
		if pp.Schedule.Placements[d.From].Core != pp.Schedule.Placements[d.To].Core {
			crossCore++
		}
	}
	if crossCore == 0 {
		t.Skip("schedule put everything on one core")
	}
	if pp.Signals != crossCore {
		t.Fatalf("signals = %d, cross-core deps = %d", pp.Signals, crossCore)
	}
	waits, signals := 0, 0
	for _, entries := range pp.CoreEntries {
		for _, e := range entries {
			switch e.Kind {
			case EntryWait:
				waits++
			case EntrySignal:
				signals++
			}
		}
	}
	if waits != crossCore || signals != crossCore {
		t.Fatalf("waits=%d signals=%d want %d", waits, signals, crossCore)
	}
}

func TestBufferPlacementDisjointAddresses(t *testing.T) {
	pp := buildAll(t, pipelineSrc, adl.XentiumPlatform(2), true, ir.MatrixArg(8, 8))
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	type region struct{ lo, hi int }
	spaces := map[string][]region{}
	for _, b := range pp.Buffers {
		key := "shared"
		if b.Spc == SpaceSPM {
			key = "spm" + string(rune('0'+b.Core))
		}
		spaces[key] = append(spaces[key], region{b.Addr, b.Addr + b.V.SizeBytes()})
	}
	for key, regs := range spaces {
		for i := 0; i < len(regs); i++ {
			for j := i + 1; j < len(regs); j++ {
				if regs[i].lo < regs[j].hi && regs[j].lo < regs[i].hi {
					t.Fatalf("%s: overlapping buffers %v %v", key, regs[i], regs[j])
				}
			}
		}
	}
}

func TestSPMDemotionWhenShared(t *testing.T) {
	// Promote everything aggressively, then check cross-core buffers got
	// demoted and the program still validates.
	platform := adl.XentiumPlatform(4)
	pp := buildAll(t, pipelineSrc, platform, true, ir.MatrixArg(8, 8))
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, b := range pp.Buffers {
		if b.Spc == SpaceSPM {
			if len(pp.accessingCores(b.V)) != 1 {
				t.Fatalf("SPM buffer %s not single-core", b.V.Name)
			}
		}
	}
}

func TestDMAPhasesForSPMParamsAndResults(t *testing.T) {
	// Single core: everything can live in SPM; params DMA in, results
	// DMA out.
	platform := adl.XentiumPlatform(1)
	pp := buildAll(t, pipelineSrc, platform, true, ir.MatrixArg(8, 8))
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	var hasIn, hasOut bool
	for _, op := range pp.DMAIns {
		if op.V.Param {
			hasIn = true
		}
	}
	for _, op := range pp.DMAOuts {
		if op.V.Result {
			hasOut = true
		}
	}
	if len(pp.DMAIns) > 0 && !hasIn {
		t.Fatal("no param DMA-in")
	}
	if len(pp.DMAOuts) > 0 && !hasOut {
		t.Fatal("no result DMA-out")
	}
	if len(pp.DMAIns) > 0 && pp.PrologueCycles <= 0 {
		t.Fatal("prologue cycles missing")
	}
	if pp.BoundMakespan() < pp.System.Makespan {
		t.Fatal("bound must include DMA phases")
	}
}

func TestEmitC(t *testing.T) {
	pp := buildAll(t, pipelineSrc, adl.XentiumPlatform(4), false, ir.MatrixArg(6, 6))
	c := pp.EmitC()
	for _, want := range []string{
		"core_0_main", "core_3_main", "task_0", "argo_barrier",
		"static double", "for (", "System WCET bound",
	} {
		if !strings.Contains(c, want) {
			t.Fatalf("emitted C missing %q:\n%s", want, c[:min(len(c), 2000)])
		}
	}
	if strings.Contains(c, "%") {
		// IR temp names like %i must be sanitized away.
		for _, line := range strings.Split(c, "\n") {
			if strings.Contains(line, "%") && !strings.Contains(line, "/*") {
				t.Fatalf("unsanitized identifier in: %s", line)
			}
		}
	}
}

func TestReleaseTimesMatchSystemAnalysis(t *testing.T) {
	pp := buildAll(t, pipelineSrc, adl.XentiumPlatform(4), false, ir.MatrixArg(8, 8))
	for _, entries := range pp.CoreEntries {
		for _, e := range entries {
			if e.Kind == EntryCompute && e.Release != pp.System.Start[e.Task] {
				t.Fatalf("task %d release %d != system start %d", e.Task, e.Release, pp.System.Start[e.Task])
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestEmitCWellFormed checks structural sanity of the generated C:
// balanced braces/parens and one function per task and core.
func TestEmitCWellFormed(t *testing.T) {
	pp := buildAll(t, pipelineSrc, adl.XentiumPlatform(3), true, ir.MatrixArg(8, 8))
	c := pp.EmitC()
	// Strip comments before counting nesting (the half-open interval
	// notation in comments contains lone parens).
	var code strings.Builder
	for i := 0; i < len(c); i++ {
		if i+1 < len(c) && c[i] == '/' && c[i+1] == '*' {
			end := strings.Index(c[i+2:], "*/")
			if end < 0 {
				t.Fatal("unterminated block comment")
			}
			i += 2 + end + 1
			continue
		}
		code.WriteByte(c[i])
	}
	stripped := code.String()
	braces, parens := 0, 0
	for _, r := range stripped {
		switch r {
		case '{':
			braces++
		case '}':
			braces--
		case '(':
			parens++
		case ')':
			parens--
		}
		if braces < 0 || parens < 0 {
			t.Fatal("unbalanced nesting")
		}
	}
	if braces != 0 || parens != 0 {
		t.Fatalf("unbalanced: braces %d, parens %d", braces, parens)
	}
	for tsk := range pp.Input.Tasks {
		if !strings.Contains(c, fmt.Sprintf("void task_%d(void)", tsk)) {
			t.Fatalf("missing task_%d", tsk)
		}
	}
	for core := 0; core < 3; core++ {
		if !strings.Contains(c, fmt.Sprintf("void core_%d_main(void)", core)) {
			t.Fatalf("missing core_%d_main", core)
		}
	}
	// Every referenced runtime symbol must exist in the header.
	for _, sym := range []string{"argo_wait", "argo_signal", "argo_barrier", "argo_release_at"} {
		if strings.Contains(c, sym) && !strings.Contains(RuntimeHeader, sym) {
			t.Fatalf("runtime header missing %s", sym)
		}
	}
}
