// Package par implements ARGO's parallel program model construction
// (paper §II-C): the scheduling/mapping result is turned into an
// explicitly parallel program in which synchronizations are explicit
// (signal/wait pairs per cross-core dependence), the final memory address
// mapping of variables and buffers is computed (shared memory and
// per-core scratchpads), and C code following the WCET-aware programming
// model is generated.
//
// The explicit model is what both the system-level WCET analysis and the
// platform simulator consume: tasks are released no earlier than their
// statically computed (interference-inflated) start times, making the
// may-happen-in-parallel windows sound.
package par

import (
	"fmt"
	"sort"
	"sync/atomic"

	"argo/internal/adl"
	"argo/internal/htg"
	"argo/internal/ir"
	"argo/internal/sched"
	"argo/internal/syswcet"
)

// Space is an address space.
type Space int

// Address spaces.
const (
	SpaceShared Space = iota
	SpaceSPM
)

// Buffer is the placement of one matrix variable. A read-only variable
// promoted to scratchpad and needed by several cores is replicated: one
// Buffer per core, flagged Replica.
type Buffer struct {
	V       *ir.Var
	Spc     Space
	Core    int // owning core for SPM buffers; -1 for shared
	Addr    int // byte offset within its space
	Replica bool
}

// EntryKind tags per-core program entries.
type EntryKind int

// Entry kinds.
const (
	// EntryCompute executes one task (released no earlier than Release).
	EntryCompute EntryKind = iota
	// EntryWait blocks until a signal is posted.
	EntryWait
	// EntrySignal posts a signal.
	EntrySignal
)

// Entry is one element of a core's static program.
type Entry struct {
	Kind EntryKind
	// Task is the task id (EntryCompute).
	Task int
	// Release is the time-triggered earliest start (EntryCompute).
	Release int64
	// Sig is the signal id (EntryWait / EntrySignal).
	Sig int
}

// DMAOp stages one buffer between shared memory and a scratchpad.
type DMAOp struct {
	V     *ir.Var
	Core  int
	Bytes int
	In    bool // true: shared -> SPM (prologue); false: SPM -> shared
}

// Program is the explicitly parallel program.
type Program struct {
	Platform *adl.Platform
	IR       *ir.Program
	Graph    *htg.Graph
	Input    *sched.Input
	Schedule *sched.Schedule
	System   *syswcet.Result

	CoreEntries [][]Entry
	Buffers     []Buffer
	// Demoted lists SPM-promoted variables that had to be placed back in
	// shared memory (accessed by more than one core, or SPM overflow) —
	// the cross-layer feedback the transformation stage gets back.
	Demoted []*ir.Var
	// Signals is the number of allocated signals.
	Signals int
	// PrologueCycles / EpilogueCycles bound the DMA staging phases
	// (serialized on the shared DMA engine).
	PrologueCycles int64
	EpilogueCycles int64
	// DMAIns / DMAOuts are the staging operations in execution order.
	DMAIns  []DMAOp
	DMAOuts []DMAOp

	// cacheSlot is an opaque per-program cache attachment point for
	// downstream consumers (the simulator stores its derived per-task
	// trace cache here), so cached state shares the program's lifetime
	// instead of leaking through package-global registries.
	cacheSlot atomic.Value
}

// CacheSlot returns the program's opaque cache slot. Consumers must
// store a single concrete type and synchronize their own initialization.
func (p *Program) CacheSlot() *atomic.Value { return &p.cacheSlot }

// BoundMakespan is the end-to-end bound including DMA staging phases.
func (p *Program) BoundMakespan() int64 {
	return p.PrologueCycles + p.System.Makespan + p.EpilogueCycles
}

// Build constructs the parallel program model.
func Build(irProg *ir.Program, g *htg.Graph, in *sched.Input, s *sched.Schedule, sys *syswcet.Result, platform *adl.Platform) (*Program, error) {
	p := &Program{
		Platform: platform, IR: irProg, Graph: g, Input: in, Schedule: s, System: sys,
		CoreEntries: make([][]Entry, platform.NumCores()),
	}
	if err := p.placeBuffers(); err != nil {
		return nil, err
	}
	p.buildEntries()
	p.buildDMA()
	return p, nil
}

// accessingCores returns the set of cores whose tasks access v.
func (p *Program) accessingCores(v *ir.Var) map[int]bool {
	cores := map[int]bool{}
	for _, n := range p.Graph.Nodes {
		if n.Uses.MatReads[v] || n.Uses.MatWrites[v] {
			cores[p.Schedule.Placements[n.ID].Core] = true
		}
	}
	return cores
}

// placeBuffers assigns every matrix variable an address in shared memory
// or in exactly one core's scratchpad, demoting SPM variables that are
// shared between cores or overflow the scratchpad.
func (p *Program) placeBuffers() error {
	vars := p.IR.MatrixVars()
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	spmUsed := make([]int, p.Platform.NumCores())
	sharedUsed := 0
	for _, v := range vars {
		cores := p.accessingCores(v)
		place := v.Storage
		owner := -1
		replicate := false
		if place == ir.StorageSPM {
			switch {
			case len(cores) == 1:
				for c := range cores {
					owner = c
				}
				if spmUsed[owner]+v.SizeBytes() > p.Platform.Cores[owner].SPM.SizeBytes {
					place = ir.StorageShared
					p.Demoted = append(p.Demoted, v)
				}
			case len(cores) == 0:
				// Dead buffer (task merging can orphan temporaries);
				// keep it in shared memory.
				place = ir.StorageShared
				p.Demoted = append(p.Demoted, v)
			case p.readOnly(v):
				// Read-only data needed on several cores: replicate one
				// scratchpad copy per accessing core (classic constant /
				// input-table replication) — if every replica fits.
				replicate = true
				for c := range cores {
					if spmUsed[c]+v.SizeBytes() > p.Platform.Cores[c].SPM.SizeBytes {
						replicate = false
					}
				}
				if !replicate {
					place = ir.StorageShared
					p.Demoted = append(p.Demoted, v)
				}
			default:
				place = ir.StorageShared
				p.Demoted = append(p.Demoted, v)
			}
		}
		switch {
		case replicate:
			var cs []int
			for c := range cores {
				cs = append(cs, c)
			}
			sort.Ints(cs)
			for _, c := range cs {
				p.Buffers = append(p.Buffers, Buffer{V: v, Spc: SpaceSPM, Core: c, Addr: spmUsed[c], Replica: true})
				spmUsed[c] += v.SizeBytes()
			}
		case place == ir.StorageSPM:
			p.Buffers = append(p.Buffers, Buffer{V: v, Spc: SpaceSPM, Core: owner, Addr: spmUsed[owner]})
			spmUsed[owner] += v.SizeBytes()
		default:
			v.Storage = ir.StorageShared
			p.Buffers = append(p.Buffers, Buffer{V: v, Spc: SpaceShared, Core: -1, Addr: sharedUsed})
			sharedUsed += v.SizeBytes()
		}
	}
	if sharedUsed > p.Platform.Shared.SizeBytes {
		return fmt.Errorf("par: shared memory overflow: %d > %d bytes", sharedUsed, p.Platform.Shared.SizeBytes)
	}
	return nil
}

// readOnly reports whether no task writes v.
func (p *Program) readOnly(v *ir.Var) bool {
	for _, n := range p.Graph.Nodes {
		if n.Uses.MatWrites[v] {
			return false
		}
	}
	return true
}

// BufferFor returns the placement of v, or nil.
func (p *Program) BufferFor(v *ir.Var) *Buffer {
	for i := range p.Buffers {
		if p.Buffers[i].V == v {
			return &p.Buffers[i]
		}
	}
	return nil
}

// buildEntries lays out each core's static program with explicit
// synchronization for every cross-core dependence.
func (p *Program) buildEntries() {
	sig := 0
	// Allocate one signal per cross-core dependence.
	type depSig struct {
		d   sched.Dep
		sig int
	}
	var depSigs []depSig
	for _, d := range p.Input.Deps {
		if p.Schedule.Placements[d.From].Core != p.Schedule.Placements[d.To].Core {
			depSigs = append(depSigs, depSig{d: d, sig: sig})
			sig++
		}
	}
	p.Signals = sig
	for c := 0; c < p.Platform.NumCores(); c++ {
		var entries []Entry
		for _, t := range p.Schedule.CoreOrder(c) {
			for _, ds := range depSigs {
				if ds.d.To == t {
					entries = append(entries, Entry{Kind: EntryWait, Sig: ds.sig})
				}
			}
			entries = append(entries, Entry{Kind: EntryCompute, Task: t, Release: p.System.Start[t]})
			for _, ds := range depSigs {
				if ds.d.From == t {
					entries = append(entries, Entry{Kind: EntrySignal, Sig: ds.sig})
				}
			}
		}
		p.CoreEntries[c] = entries
	}
}

// buildDMA creates the staging operations for SPM-resident parameters and
// results, and the serialized worst-case bounds of the two phases.
func (p *Program) buildDMA() {
	for _, b := range p.Buffers {
		if b.Spc != SpaceSPM {
			continue
		}
		if b.V.Param {
			op := DMAOp{V: b.V, Core: b.Core, Bytes: b.V.SizeBytes(), In: true}
			p.DMAIns = append(p.DMAIns, op)
			p.PrologueCycles += int64(p.Platform.DMACycles(b.Core, op.Bytes))
		}
		if b.V.Result {
			op := DMAOp{V: b.V, Core: b.Core, Bytes: b.V.SizeBytes(), In: false}
			p.DMAOuts = append(p.DMAOuts, op)
			p.EpilogueCycles += int64(p.Platform.DMACycles(b.Core, op.Bytes))
		}
	}
}

// Validate checks structural sanity: each task appears exactly once, all
// cross-core dependences are synchronized, releases respect the system
// analysis.
func (p *Program) Validate() error {
	seen := make(map[int]int)
	for c, entries := range p.CoreEntries {
		for _, e := range entries {
			if e.Kind != EntryCompute {
				continue
			}
			if p.Schedule.Placements[e.Task].Core != c {
				return fmt.Errorf("par: task %d on core %d but mapped to %d", e.Task, c, p.Schedule.Placements[e.Task].Core)
			}
			seen[e.Task]++
		}
	}
	for t := range p.Input.Tasks {
		if seen[t] != 1 {
			return fmt.Errorf("par: task %d appears %d times", t, seen[t])
		}
	}
	// Every cross-core dependence must have a wait on the consumer core
	// before the consumer task.
	for _, d := range p.Input.Deps {
		cf := p.Schedule.Placements[d.From].Core
		ct := p.Schedule.Placements[d.To].Core
		if cf == ct {
			continue
		}
		// Find matching signal/wait pair.
		found := false
		for _, e := range p.CoreEntries[ct] {
			if e.Kind == EntryWait {
				// Match by scanning the producer core for the signal.
				for _, pe := range p.CoreEntries[cf] {
					if pe.Kind == EntrySignal && pe.Sig == e.Sig {
						found = true
					}
				}
			}
			if e.Kind == EntryCompute && e.Task == d.To {
				break
			}
		}
		if !found {
			return fmt.Errorf("par: unsynchronized cross-core dependence %d->%d", d.From, d.To)
		}
	}
	// SPM buffers must be single-core unless they are read-only replicas.
	for _, b := range p.Buffers {
		if b.Spc == SpaceSPM && !b.Replica {
			if cores := p.accessingCores(b.V); len(cores) > 1 {
				return fmt.Errorf("par: SPM buffer %s accessed by %d cores", b.V.Name, len(cores))
			}
		}
		if b.Replica && !p.readOnly(b.V) {
			return fmt.Errorf("par: replicated SPM buffer %s is written", b.V.Name)
		}
	}
	return nil
}
